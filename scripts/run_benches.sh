#!/usr/bin/env bash
# Build the perf-regression suite in Release mode and refresh
# BENCH_perf.json at the repo root.  If a previous BENCH_perf.json
# exists it is passed as the baseline, so the new file carries
# per-benchmark speedup_vs_baseline annotations — and the run acts as a
# regression gate: the script exits non-zero when any benchmark is more
# than ${NTC_BENCH_REGRESSION_PCT:-20}% slower than its baseline entry.
#
# Usage: scripts/run_benches.sh [extra perf_suite args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${repo_root}/BENCH_perf.json"
regression_pct="${NTC_BENCH_REGRESSION_PCT:-20}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${build_dir}" -j --target perf_suite > /dev/null

baseline_args=()
if [[ -f "${out_json}" ]]; then
  cp "${out_json}" "${out_json}.baseline.tmp"
  baseline_args=(--baseline "${out_json}.baseline.tmp"
                 --check-regression "${regression_pct}")
fi

status=0
"${build_dir}/bench/perf_suite" --out "${out_json}.tmp" \
  "${baseline_args[@]}" "$@" || status=$?
# Refresh the tracked results even when the gate trips, so the failing
# numbers are visible in the diff; the non-zero exit still propagates.
if [[ -f "${out_json}.tmp" ]]; then
  mv "${out_json}.tmp" "${out_json}"
  echo "wrote ${out_json}"
fi
rm -f "${out_json}.baseline.tmp"
exit "${status}"
