#!/usr/bin/env bash
# Build the perf-regression suite in Release mode and refresh
# BENCH_perf.json at the repo root.  The tracked BENCH_perf.json is the
# baseline: the new numbers are annotated with speedup_vs_baseline and
# the run acts as a regression gate — the script exits non-zero when any
# benchmark is more than ${NTC_BENCH_REGRESSION_PCT:-20}% slower than
# its baseline entry.
#
# A missing or malformed baseline is an error, not a silent skip: a
# regression gate that quietly runs ungated is worse than one that
# fails loudly.  Bootstrapping a fresh checkout without a tracked
# baseline is the one legitimate exception — opt into it explicitly
# with NTC_BENCH_ALLOW_NO_BASELINE=1.
#
# Usage: scripts/run_benches.sh [extra perf_suite args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${repo_root}/BENCH_perf.json"
regression_pct="${NTC_BENCH_REGRESSION_PCT:-20}"
allow_no_baseline="${NTC_BENCH_ALLOW_NO_BASELINE:-0}"

die() {
  echo "error: $*" >&2
  exit 1
}

baseline_args=()
if [[ -f "${out_json}" ]]; then
  # Sanity-check the baseline before trusting it: perf_suite's
  # annotate_baseline quietly matches nothing on garbage input, which
  # would disable the gate without a word.
  grep -q '"name"' "${out_json}" && grep -q '"ns_per_op"' "${out_json}" ||
    die "baseline ${out_json} is malformed (no \"name\"/\"ns_per_op\" entries);
       restore it from git (git checkout -- BENCH_perf.json) or delete it and
       re-bootstrap with NTC_BENCH_ALLOW_NO_BASELINE=1"
  cp "${out_json}" "${out_json}.baseline.tmp"
  baseline_args=(--baseline "${out_json}.baseline.tmp"
                 --check-regression "${regression_pct}")
elif [[ "${allow_no_baseline}" != "1" ]]; then
  die "baseline ${out_json} not found — the regression gate needs the tracked
       baseline. Restore it (git checkout -- BENCH_perf.json) or, for a first
       run on a fresh tree, set NTC_BENCH_ALLOW_NO_BASELINE=1"
else
  echo "warning: no baseline ${out_json}; running ungated (bootstrap)" >&2
fi

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${build_dir}" -j --target perf_suite > /dev/null

echo "detected cpu features: $("${build_dir}/bench/perf_suite" --features)"

status=0
"${build_dir}/bench/perf_suite" --out "${out_json}.tmp" \
  "${baseline_args[@]}" "$@" || status=$?
# Refresh the tracked results even when the gate trips, so the failing
# numbers are visible in the diff; the non-zero exit still propagates.
if [[ -f "${out_json}.tmp" ]]; then
  mv "${out_json}.tmp" "${out_json}"
  echo "wrote ${out_json}"
fi
rm -f "${out_json}.baseline.tmp"
exit "${status}"
