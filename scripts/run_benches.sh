#!/usr/bin/env bash
# Build the perf-regression suite in Release mode and refresh
# BENCH_perf.json at the repo root.  If a previous BENCH_perf.json
# exists it is passed as the baseline, so the new file carries
# per-benchmark speedup_vs_baseline annotations.
#
# Usage: scripts/run_benches.sh [extra perf_suite args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${repo_root}/BENCH_perf.json"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${build_dir}" -j --target perf_suite > /dev/null

baseline_args=()
if [[ -f "${out_json}" ]]; then
  cp "${out_json}" "${out_json}.baseline.tmp"
  baseline_args=(--baseline "${out_json}.baseline.tmp")
fi

"${build_dir}/bench/perf_suite" --out "${out_json}.tmp" \
  "${baseline_args[@]}" "$@"
mv "${out_json}.tmp" "${out_json}"
rm -f "${out_json}.baseline.tmp"
echo "wrote ${out_json}"
