#!/usr/bin/env bash
# Multi-process work-queue driver for the crash-safe campaign service.
#
# Splits the campaign grid into shards (via `ntc_campaign --plan`),
# launches N worker processes that claim shards from a shared queue
# (atomic `mkdir` lock directories — exactly one process serves a shard
# at a time), and merges the resulting binary segments into the
# canonical CSV/JSON ledgers.  Because every shard checkpoints into its
# own append-only segment, the whole driver is crash-safe: kill it (or
# any worker) at any point and re-running the same command resumes from
# the exact trial where each shard stopped; completed shards are never
# re-executed.
#
# Usage:
#   scripts/run_campaign.sh [-j WORKERS] [-d LEDGER_DIR] [-b BUILD_DIR] \
#       [-- extra ntc_campaign grid/service options]
#
# Examples:
#   scripts/run_campaign.sh -j 4 -d /tmp/campaign
#   scripts/run_campaign.sh -j 8 -d /tmp/big -- --seeds 64 --seeds-per-shard 8
set -euo pipefail

jobs=4
ledger_dir="campaign_ledger"
build_dir="build"
while getopts "j:d:b:h" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    d) ledger_dir="$OPTARG" ;;
    b) build_dir="$OPTARG" ;;
    h) sed -n '2,22p' "$0"; exit 0 ;;
    *) exit 1 ;;
  esac
done
shift $((OPTIND - 1))
extra_args=("$@")

campaign="$build_dir/tools/ntc_campaign"
merge="$build_dir/tools/ledger_merge"
for tool in "$campaign" "$merge"; do
  if [[ ! -x "$tool" ]]; then
    echo "error: $tool not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

mkdir -p "$ledger_dir"
# The lock queue is scoped to one driver invocation: stale claims from a
# previous (possibly killed) run are cleared — committed shards are
# skipped by the tool itself, so clearing locks never redoes work.
locks="$ledger_dir/locks"
rm -rf "$locks"
mkdir -p "$locks"

# Stable shard queue from the deterministic plan.
mapfile -t shard_ids < <("$campaign" --plan "${extra_args[@]}" | grep -v '^#')
echo "run_campaign: ${#shard_ids[@]} shards -> $ledger_dir with $jobs workers"

worker() {
  local wid="$1"
  local served=0
  for id in "${shard_ids[@]}"; do
    # mkdir is atomic on POSIX filesystems: exactly one worker wins.
    mkdir "$locks/$id" 2>/dev/null || continue
    "$campaign" --ledger-dir "$ledger_dir" --shards "$id" --quiet \
      "${extra_args[@]}"
    served=$((served + 1))
  done
  echo "run_campaign: worker $wid served $served shard(s)"
}

pids=()
for ((w = 0; w < jobs; ++w)); do
  worker "$w" &
  pids+=($!)
done
status=0
for pid in "${pids[@]}"; do
  wait "$pid" || status=$?
done
if [[ $status -ne 0 ]]; then
  echo "run_campaign: a worker failed (exit $status); segments are intact —" \
       "re-run the same command to resume" >&2
  exit "$status"
fi

"$merge" --dir "$ledger_dir" \
  --csv "$ledger_dir/ledger.csv" --json "$ledger_dir/ledger.json"
echo "run_campaign: merged ledger at $ledger_dir/ledger.{csv,json}"
