#include "common/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ntc::sim {

namespace {

bool simd_env_default() {
  const char* env = std::getenv("NTC_SIMD");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

// Function-local so a static initializer in another TU that consults
// the switch sees the env-derived default rather than a zero.
std::atomic<bool>& simd_flag() {
  static std::atomic<bool> flag{simd_env_default()};
  return flag;
}

}  // namespace

void set_simd_enabled(bool enabled) {
  simd_flag().store(enabled, std::memory_order_relaxed);
}

bool simd_enabled() {
  return simd_flag().load(std::memory_order_relaxed);
}

}  // namespace ntc::sim
