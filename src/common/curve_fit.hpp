// Nonlinear least-squares fitting (Levenberg-Marquardt with a numeric
// Jacobian).  The characterisation flows use this to recover the paper's
// model constants — Eq. (4) retention parameters d0..d2 and Eq. (5)
// access parameters (A, V0, k) — from (virtual) silicon measurements.
#pragma once

#include <functional>
#include <vector>

namespace ntc {

struct FitOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;   ///< LM damping start value
  double lambda_up = 10.0;        ///< damping growth on rejected step
  double lambda_down = 0.35;      ///< damping decay on accepted step
  double tolerance = 1e-12;       ///< relative cost-improvement stop
  double jacobian_step = 1e-6;    ///< relative finite-difference step
};

struct FitResult {
  std::vector<double> params;
  double cost = 0.0;        ///< final sum of squared residuals
  int iterations = 0;
  bool converged = false;
};

/// Model signature: y = f(x, params).
using FitModel = std::function<double(double x, const std::vector<double>& params)>;

/// Minimise sum_i w_i * (y_i - f(x_i, p))^2 over p starting from
/// `initial`.  `weights` may be empty (all ones).  Parameters can be
/// box-constrained with `lower`/`upper` (empty = unconstrained); steps
/// are clamped to the box.
FitResult levenberg_marquardt(const FitModel& model,
                              const std::vector<double>& x,
                              const std::vector<double>& y,
                              std::vector<double> initial,
                              const std::vector<double>& weights = {},
                              const std::vector<double>& lower = {},
                              const std::vector<double>& upper = {},
                              const FitOptions& options = {});

/// Solve the dense symmetric positive-definite system A x = b in place
/// via Cholesky; returns false if A is not positive definite.
bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n);

}  // namespace ntc
