#include "common/executor.hpp"

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc {

Executor::Executor(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_ = threads;
  deques_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w)
    deques_.push_back(std::make_unique<Deque>());
  // Worker 0 is the calling thread; only 1..workers_-1 are spawned.
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool Executor::pop_own(unsigned self, std::size_t& index) {
  Deque& d = *deques_[self];
  std::lock_guard<std::mutex> lock(d.mutex);
  if (d.head >= d.tail) return false;
  index = d.head++;
  return true;
}

bool Executor::steal(unsigned self, std::size_t& index) {
  // Scan victims round-robin from self+1 so thieves spread out instead
  // of all hammering worker 0's deque.
  for (unsigned off = 1; off < workers_; ++off) {
    Deque& d = *deques_[(self + off) % workers_];
    std::lock_guard<std::mutex> lock(d.mutex);
    if (d.head >= d.tail) continue;
    index = --d.tail;
    return true;
  }
  return false;
}

void Executor::work(unsigned self,
                    const std::function<void(std::size_t, unsigned)>& fn) {
  NTC_TELEM_SPAN(span, telemetry::EventKind::ExecutorJob, "executor_job");
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  std::size_t index;
  while (true) {
    if (pop_own(self, index)) {
      ++executed;
    } else if (steal(self, index)) {
      ++executed;
      ++stolen;
    } else {
      break;
    }
    // A throwing cell must not unwind through the worker loop (that
    // would terminate the process) or leave deques half-drained (the
    // caller's completion wait would hang).  Capture the first
    // exception for the join and keep draining — every index still
    // runs exactly once.
    try {
      fn(index, self);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
  }
  span.set_args(executed, stolen);
  NTC_TELEM_COUNT("ntc_executor_indices_total", executed);
  NTC_TELEM_COUNT("ntc_executor_steals_total", stolen);
}

void Executor::worker_loop(unsigned self) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_;
      idle_cv_.notify_all();
      job_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      --idle_;
    }
    // job_ is stable outside the parked window: the next overwrite
    // requires every spawned worker parked again first.
    work(self, job_);
    // Parking (++idle_) happens at the top of the next iteration; the
    // caller's completion wait requires idle_ == spawned workers, so it
    // cannot return — and thus cannot start the next job — while any
    // worker is still inside work().
  }
}

void Executor::parallel_for(
    std::size_t n, const std::function<void(std::size_t, unsigned)>& fn) {
  if (n == 0) return;
  if (workers_ == 1) {
    NTC_TELEM_SPAN(span, telemetry::EventKind::ExecutorJob, "executor_job");
    span.set_args(n, 0);
    // Same contract as the threaded path: every index runs, the first
    // exception is rethrown after the loop.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i, 0);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    NTC_TELEM_COUNT("ntc_executor_indices_total", n);
    if (error) std::rethrow_exception(error);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker late to park from the previous job would race the deque
    // refill below; generation g+1 is only published once all spawned
    // workers sit parked.
    idle_cv_.wait(lock, [&] { return idle_ == workers_ - 1; });
    for (unsigned w = 0; w < workers_; ++w) {
      Deque& d = *deques_[w];
      std::lock_guard<std::mutex> dlock(d.mutex);
      d.head = n * w / workers_;
      d.tail = n * (w + 1) / workers_;
    }
    job_ = fn;
    job_error_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();
  work(0, fn);
  // The caller found every deque empty; wait for in-flight stolen or
  // owned cells on the spawned workers to finish (they park after).
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return idle_ == workers_ - 1; });
  if (job_error_) {
    std::exception_ptr error = job_error_;
    job_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace ntc
