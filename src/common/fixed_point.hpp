// Q15 fixed-point arithmetic for the embedded-style workloads (the
// 1K-point FFT the paper evaluates runs in fixed point on the simulated
// scratchpad, exactly as it would on the ARM9-class target).
#pragma once

#include <cstdint>

namespace ntc {

/// Signed Q1.15: range [-1, 1), resolution 2^-15.
class Q15 {
 public:
  constexpr Q15() = default;
  constexpr explicit Q15(std::int16_t raw) : raw_(raw) {}

  /// Saturating conversion from double in [-1, 1).
  static constexpr Q15 from_double(double v) {
    double scaled = v * 32768.0;
    if (scaled >= 32767.0) return Q15{32767};
    if (scaled <= -32768.0) return Q15{-32768};
    return Q15{static_cast<std::int16_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5)};
  }

  constexpr std::int16_t raw() const { return raw_; }
  constexpr double to_double() const { return static_cast<double>(raw_) / 32768.0; }

  /// Saturating addition.
  friend constexpr Q15 operator+(Q15 a, Q15 b) {
    std::int32_t s = std::int32_t{a.raw_} + b.raw_;
    return Q15{saturate(s)};
  }
  friend constexpr Q15 operator-(Q15 a, Q15 b) {
    std::int32_t s = std::int32_t{a.raw_} - b.raw_;
    return Q15{saturate(s)};
  }
  /// Q15 x Q15 -> Q15 with rounding.
  friend constexpr Q15 operator*(Q15 a, Q15 b) {
    std::int32_t p = std::int32_t{a.raw_} * b.raw_;
    p += 1 << 14;  // round to nearest
    return Q15{saturate(p >> 15)};
  }
  /// Arithmetic shift right (divide by power of two), used for FFT
  /// per-stage scaling.
  constexpr Q15 shr(int n) const { return Q15{static_cast<std::int16_t>(raw_ >> n)}; }

  friend constexpr bool operator==(Q15 a, Q15 b) = default;

 private:
  static constexpr std::int16_t saturate(std::int32_t v) {
    if (v > 32767) return 32767;
    if (v < -32768) return -32768;
    return static_cast<std::int16_t>(v);
  }
  std::int16_t raw_ = 0;
};

/// Complex Q15 sample as stored in the scratchpad (packs to 32 bits).
struct ComplexQ15 {
  Q15 re;
  Q15 im;

  constexpr std::uint32_t pack() const {
    return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(re.raw()))) |
           (static_cast<std::uint32_t>(static_cast<std::uint16_t>(im.raw())) << 16);
  }
  static constexpr ComplexQ15 unpack(std::uint32_t word) {
    return ComplexQ15{Q15{static_cast<std::int16_t>(word & 0xffffu)},
                      Q15{static_cast<std::int16_t>(word >> 16)}};
  }
  friend constexpr bool operator==(ComplexQ15, ComplexQ15) = default;
};

}  // namespace ntc
