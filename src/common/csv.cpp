#include "common/csv.hpp"

#include <cstdio>

namespace ntc {

CsvWriter::CsvWriter(const std::string& path) : file_(path) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  return quoted + "\"";
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  std::string row;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) row += ',';
    row += escape(cells[i]);
  }
  row += '\n';
  file_.write(row);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  char buf[64];
  std::string row;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) row += ',';
    std::snprintf(buf, sizeof buf, "%.9g", cells[i]);
    row += buf;
  }
  row += '\n';
  file_.write(row);
}

}  // namespace ntc
