#include "common/csv.hpp"

#include <cstdio>

namespace ntc {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  return quoted + "\"";
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  char buf[64];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.9g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace ntc
