#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace ntc {

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  fd_ = ::open(tmp_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) failed_ = true;
}

AtomicFile::~AtomicFile() {
  if (fd_ >= 0 || (!committed_ && !failed_)) commit();
  if (fd_ >= 0) ::close(fd_);
}

bool AtomicFile::write(const void* data, std::size_t n) {
  if (failed_ || fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd_, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return false;
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool AtomicFile::write(std::string_view s) { return write(s.data(), s.size()); }

bool AtomicFile::commit() {
  if (committed_) return !failed_;
  if (failed_ || fd_ < 0) {
    failed_ = true;
    return false;
  }
  committed_ = true;
  if (::fsync(fd_) != 0) failed_ = true;
  if (::close(fd_) != 0) failed_ = true;
  fd_ = -1;
  if (!failed_ && std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
    failed_ = true;
  if (failed_) ::unlink(tmp_path_.c_str());
  return !failed_;
}

void AtomicFile::discard() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(tmp_path_.c_str());
  committed_ = true;  // nothing left to finalize at destruction
  failed_ = true;     // the target file was never produced
}

bool atomic_write_file(const std::string& path, std::string_view contents) {
  AtomicFile file(path);
  file.write(contents);
  return file.commit();
}

}  // namespace ntc
