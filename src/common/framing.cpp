#include "common/framing.hpp"

#include <cstring>

#include "common/cpu.hpp"
#include "common/simd.hpp"

namespace ntc {

namespace {

struct Crc32cTable {
  std::uint32_t entries[256];
  Crc32cTable() {
    constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (kPolyReflected ^ (c >> 1)) : (c >> 1);
      entries[i] = c;
    }
  }
};

const Crc32cTable& crc_table() {
  static const Crc32cTable table;
  return table;
}

/// Raw state update (pre/post XORs applied by the public wrappers).
std::uint32_t crc32c_state(std::uint32_t state,
                           std::span<const std::uint8_t> bytes) {
  if (simd_sse42_active())
    return simd::crc32c_hw(state, bytes.data(), bytes.size());
  const Crc32cTable& t = crc_table();
  for (std::uint8_t b : bytes)
    state = t.entries[(state ^ b) & 0xFFu] ^ (state >> 8);
  return state;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes) {
  return crc32c_state(0xFFFFFFFFu, bytes) ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c_update(std::uint32_t crc,
                            std::span<const std::uint8_t> bytes) {
  return crc32c_state(crc ^ 0xFFFFFFFFu, bytes) ^ 0xFFFFFFFFu;
}

void ByteWriter::put_u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void ByteWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> raw) {
  bytes_.insert(bytes_.end(), raw.begin(), raw.end());
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || bytes_.size() - offset_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + offset_;
  offset_ += n;
  return true;
}

std::uint8_t ByteReader::get_u8() {
  const std::uint8_t* p;
  return take(1, &p) ? p[0] : 0;
}

std::uint16_t ByteReader::get_u16() {
  const std::uint8_t* p;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t ByteReader::get_u32() {
  const std::uint8_t* p;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::get_u64() {
  const std::uint8_t* p;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  const std::uint8_t* p;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  ByteWriter header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(crc32c(payload));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), payload.begin(), payload.end());
}

bool next_frame(std::span<const std::uint8_t> bytes, std::size_t& offset,
                std::span<const std::uint8_t>& payload) {
  if (bytes.size() - offset < 8) return false;
  ByteReader header(bytes.subspan(offset, 8));
  const std::uint32_t len = header.get_u32();
  const std::uint32_t crc = header.get_u32();
  if (len > kMaxFramePayload) return false;
  if (bytes.size() - offset - 8 < len) return false;
  std::span<const std::uint8_t> body = bytes.subspan(offset + 8, len);
  if (crc32c(body) != crc) return false;
  payload = body;
  offset += 8 + len;
  return true;
}

}  // namespace ntc
