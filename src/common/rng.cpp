#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Rng::fill_u64(std::span<std::uint64_t> out) {
  // Hoist the engine state into locals so the hot loop runs out of
  // registers; the result stream is exactly out.size() next_u64 steps.
  std::uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  for (std::uint64_t& slot : out) {
    slot = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NTC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  NTC_REQUIRE(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  NTC_REQUIRE(sigma >= 0.0);
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) {
  NTC_REQUIRE(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth inversion in the log domain.
    const double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // large-count scrub/error-injection paths where lambda >> 1.
  double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::max_normal_magnitude() {
  // normal() draws u1 = 1 - uniform(), and uniform() is k * 2^-53 with
  // k < 2^53, so u1 >= 2^-53 exactly (the subtraction is lossless at
  // that magnitude).  The Box-Muller radius sqrt(-2 ln u1) is therefore
  // at most sqrt(106 ln 2), and |sin|, |cos| <= 1 keeps both deviates
  // of the pair inside it.  The absolute pad swallows several ulps of
  // libm rounding plus a float round-up by any consumer that narrows.
  static const double bound =
      std::sqrt(-2.0 * std::log(0x1.0p-53)) * (1.0 + 1e-12) + 1e-6;
  return bound;
}

Rng Rng::fork(std::uint64_t tag) const {
  std::uint64_t sm = seed_ ^ (0x5851f42d4c957f2dull * (tag + 1));
  return Rng(splitmix64(sm));
}

}  // namespace ntc
