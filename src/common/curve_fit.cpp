#include "common/curve_fit.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc {

bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  NTC_REQUIRE(a.size() == n * n && b.size() == n);
  // In-place Cholesky A = L L^T (lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a[k * n + ii] * b[k];
    b[ii] = s / a[ii * n + ii];
  }
  return true;
}

namespace {

double cost_of(const FitModel& model, const std::vector<double>& x,
               const std::vector<double>& y, const std::vector<double>& w,
               const std::vector<double>& p) {
  double c = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double r = y[i] - model(x[i], p);
    c += w[i] * r * r;
  }
  return c;
}

void clamp_to_box(std::vector<double>& p, const std::vector<double>& lo,
                  const std::vector<double>& hi) {
  if (!lo.empty())
    for (std::size_t j = 0; j < p.size(); ++j) p[j] = std::max(p[j], lo[j]);
  if (!hi.empty())
    for (std::size_t j = 0; j < p.size(); ++j) p[j] = std::min(p[j], hi[j]);
}

}  // namespace

FitResult levenberg_marquardt(const FitModel& model, const std::vector<double>& x,
                              const std::vector<double>& y,
                              std::vector<double> initial,
                              const std::vector<double>& weights,
                              const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const FitOptions& options) {
  NTC_REQUIRE(x.size() == y.size() && !x.empty());
  NTC_REQUIRE(!initial.empty());
  NTC_REQUIRE(lower.empty() || lower.size() == initial.size());
  NTC_REQUIRE(upper.empty() || upper.size() == initial.size());
  const std::size_t m = x.size();
  const std::size_t np = initial.size();

  std::vector<double> w = weights;
  if (w.empty()) w.assign(m, 1.0);
  NTC_REQUIRE(w.size() == m);

  clamp_to_box(initial, lower, upper);
  std::vector<double> p = initial;
  double cost = cost_of(model, x, y, w, p);
  double lambda = options.initial_lambda;

  std::vector<double> jac(m * np);       // Jacobian of residuals wrt params
  std::vector<double> residual(m);
  FitResult result;

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Residuals and numeric Jacobian at p.
    for (std::size_t i = 0; i < m; ++i) residual[i] = y[i] - model(x[i], p);
    for (std::size_t j = 0; j < np; ++j) {
      double h = options.jacobian_step * std::max(1.0, std::abs(p[j]));
      std::vector<double> pj = p;
      pj[j] += h;
      clamp_to_box(pj, lower, upper);
      double hj = pj[j] - p[j];
      if (hj == 0.0) {  // pinned at the upper bound: step backwards
        pj = p;
        pj[j] -= h;
        clamp_to_box(pj, lower, upper);
        hj = pj[j] - p[j];
      }
      NTC_REQUIRE_MSG(hj != 0.0, "parameter box has zero width");
      for (std::size_t i = 0; i < m; ++i) {
        // d(residual)/dp = -d(model)/dp
        jac[i * np + j] = -(model(x[i], pj) - model(x[i], p)) / hj;
      }
    }

    // Normal equations (J^T W J + lambda diag) dp = -J^T W r  — note the
    // residual convention r = y - f gives step dp added to p.
    std::vector<double> jtj(np * np, 0.0), jtr(np, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t a = 0; a < np; ++a) {
        jtr[a] += w[i] * jac[i * np + a] * residual[i];
        for (std::size_t b = 0; b <= a; ++b)
          jtj[a * np + b] += w[i] * jac[i * np + a] * jac[i * np + b];
      }
    }
    for (std::size_t a = 0; a < np; ++a)
      for (std::size_t b = a + 1; b < np; ++b) jtj[a * np + b] = jtj[b * np + a];

    bool improved = false;
    for (int attempt = 0; attempt < 25 && !improved; ++attempt) {
      std::vector<double> a_damped = jtj;
      for (std::size_t d = 0; d < np; ++d)
        a_damped[d * np + d] += lambda * std::max(jtj[d * np + d], 1e-12);
      std::vector<double> step(np);
      for (std::size_t d = 0; d < np; ++d) step[d] = -jtr[d];
      if (cholesky_solve(a_damped, step, np)) {
        std::vector<double> cand = p;
        for (std::size_t d = 0; d < np; ++d) cand[d] += step[d];
        clamp_to_box(cand, lower, upper);
        double cand_cost = cost_of(model, x, y, w, cand);
        if (std::isfinite(cand_cost) && cand_cost < cost) {
          double rel = (cost - cand_cost) / std::max(cost, 1e-300);
          p = cand;
          cost = cand_cost;
          lambda = std::max(lambda * options.lambda_down, 1e-12);
          improved = true;
          if (rel < options.tolerance) {
            result.converged = true;
          }
          break;
        }
      }
      lambda *= options.lambda_up;
    }
    if (!improved || result.converged) {
      result.converged = result.converged || !improved;
      ++iter;
      break;
    }
  }

  result.params = std::move(p);
  result.cost = cost;
  result.iterations = iter;
  return result;
}

}  // namespace ntc
