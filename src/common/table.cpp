#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace ntc {

void TextTable::set_header(std::vector<std::string> header) {
  NTC_REQUIRE(rows_.empty());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  NTC_REQUIRE_MSG(row.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto format_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  out << hline() << format_row(header_) << hline();
  for (const auto& row : rows_) out << format_row(row);
  out << hline();
  for (const auto& note : notes_) out << "  " << note << "\n";
  return out.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ntc
