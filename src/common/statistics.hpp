// Streaming statistics, histograms and simple regression used by the
// Monte-Carlo characterisation flows.
#pragma once

#include <cstdint>
#include <vector>

namespace ntc {

/// Welford-style running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< unbiased sample variance (n-1)
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so the total count is preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_center(std::size_t bin) const;
  /// Value below which `q` (in [0,1]) of the mass lies (linear within bin).
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Exact percentile of a sample (copies + nth_element); q in [0, 1].
double percentile(std::vector<double> samples, double q);

}  // namespace ntc
