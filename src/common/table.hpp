// ASCII table rendering for benchmark output.  Every bench binary prints
// the rows of its paper table/figure through this, so the output format
// is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace ntc {

/// Column-aligned text table with a title, header row and footnotes.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Append a footnote line rendered below the table.
  void add_note(std::string note);

  /// Render with box-drawing rules.
  std::string render() const;

  /// Render to stdout.
  void print() const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace ntc
