#include "common/simd.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/cpu.hpp"

#if NTC_X86_SIMD
#include <immintrin.h>
#endif

namespace ntc::simd {

std::uint64_t gate_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return std::uint64_t{1} << 53;
  // p * 2^53 is a power-of-two scaling, hence exact for every finite p
  // (subnormals included), so ceil() lands on the exact threshold.
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
}

namespace {

std::uint32_t find_first_gate_scalar(const std::uint64_t* gates,
                                     std::uint32_t n,
                                     std::uint64_t threshold) {
  for (std::uint32_t j = 0; j < n; ++j)
    if ((gates[j] >> 11) >= threshold) return j;
  return n;
}

std::uint64_t deviation_sweep_scalar(const std::uint64_t* golden,
                                     const std::uint64_t* werr,
                                     const std::uint64_t* mask,
                                     const std::uint64_t* value,
                                     const std::uint64_t* flip, std::size_t n,
                                     std::uint64_t* error) {
  std::uint64_t dirty = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t e =
        (werr[i] & ~mask[i]) ^ ((golden[i] & mask[i]) ^ value[i]) ^ flip[i];
    error[i] = e;
    if (e != 0) dirty |= std::uint64_t{1} << i;
  }
  return dirty;
}

#if NTC_X86_SIMD

__attribute__((target("avx2"))) std::uint32_t find_first_gate_avx2(
    const std::uint64_t* gates, std::uint32_t n, std::uint64_t threshold) {
  // threshold >= 1 here (0 is resolved by the dispatcher) and shifted
  // gate values are < 2^53, so the signed compare cannot wrap:
  // (g >> 11) >= T  <=>  (g >> 11) > T - 1.
  const __m256i limit =
      _mm256_set1_epi64x(static_cast<long long>(threshold - 1));
  std::uint32_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i g =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gates + j));
    g = _mm256_srli_epi64(g, 11);
    const __m256i hit = _mm256_cmpgt_epi64(g, limit);
    const int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(hit));
    if (lanes != 0)
      return j + static_cast<std::uint32_t>(__builtin_ctz(
                     static_cast<unsigned>(lanes)));
  }
  return j + find_first_gate_scalar(gates + j, n - j, threshold);
}

__attribute__((target("avx2"))) std::uint64_t deviation_sweep_avx2(
    const std::uint64_t* golden, const std::uint64_t* werr,
    const std::uint64_t* mask, const std::uint64_t* value,
    const std::uint64_t* flip, std::size_t n, std::uint64_t* error) {
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t dirty = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i g =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(golden + i));
    const __m256i we =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(werr + i));
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(value + i));
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flip + i));
    __m256i e = _mm256_andnot_si256(m, we);
    e = _mm256_xor_si256(e, _mm256_and_si256(g, m));
    e = _mm256_xor_si256(e, v);
    e = _mm256_xor_si256(e, f);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(error + i), e);
    const int clean =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(e, zero)));
    dirty |= static_cast<std::uint64_t>(~clean & 0xF) << i;
  }
  if (i < n)
    dirty |= deviation_sweep_scalar(golden + i, werr + i, mask + i, value + i,
                                    flip + i, n - i, error + i)
             << i;
  return dirty;
}

// ---------------------------------------------------------------------------
// CRC-32C stream kernel.  Advancing a reflected CRC state over one zero
// byte is a GF(2)-linear operator on the 32 state bits; shift tables
// for kCrcLane and 2*kCrcLane zero bytes (built once by squaring that
// operator) recombine three independently-accumulated lanes:
//   F(s, A||B||C) = L^(2B)(F(s,A)) ^ L^B(F(0,B)) ^ F(0,C).

constexpr std::size_t kCrcLane = 1024;  // bytes per interleaved stream
static_assert((kCrcLane & (kCrcLane - 1)) == 0, "squaring count below");

struct CrcShift {
  std::uint32_t by_lane[4][256];   // state advance over kCrcLane zeros
  std::uint32_t by_2lane[4][256];  // ... over 2 * kCrcLane zeros
};

std::uint32_t crc32c_byte_entry(std::uint32_t v) {
  std::uint32_t c = v;
  for (int k = 0; k < 8; ++k)
    c = (c & 1u) != 0 ? (c >> 1) ^ 0x82F63B78u : c >> 1;
  return c;
}

std::uint32_t apply32(const std::uint32_t m[32], std::uint32_t x) {
  std::uint32_t r = 0;
  for (int b = 0; x != 0; ++b, x >>= 1)
    if ((x & 1u) != 0) r ^= m[b];
  return r;
}

void mat_square(const std::uint32_t in[32], std::uint32_t out[32]) {
  for (int b = 0; b < 32; ++b) out[b] = apply32(in, in[b]);
}

void bake_tables(const std::uint32_t op[32], std::uint32_t tab[4][256]) {
  for (int k = 0; k < 4; ++k)
    for (std::uint32_t v = 0; v < 256; ++v)
      tab[k][v] = apply32(op, v << (8 * k));
}

const CrcShift& crc_shift_tables() {
  static const CrcShift tables = [] {
    // One-zero-byte step on unit vectors: bits 0..7 feed the byte
    // table, bits 8..31 shift down.
    std::uint32_t op[32];
    for (int b = 0; b < 8; ++b) op[b] = crc32c_byte_entry(1u << b);
    for (int b = 8; b < 32; ++b) op[b] = 1u << (b - 8);
    std::uint32_t tmp[32];
    for (std::size_t span = 1; span < kCrcLane; span *= 2) {
      mat_square(op, tmp);
      std::memcpy(op, tmp, sizeof op);
    }
    CrcShift t;
    bake_tables(op, t.by_lane);
    mat_square(op, tmp);
    std::memcpy(op, tmp, sizeof op);
    bake_tables(op, t.by_2lane);
    return t;
  }();
  return tables;
}

inline std::uint32_t apply_shift(const std::uint32_t tab[4][256],
                                 std::uint32_t c) {
  return tab[0][c & 0xFF] ^ tab[1][(c >> 8) & 0xFF] ^
         tab[2][(c >> 16) & 0xFF] ^ tab[3][c >> 24];
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw_impl(
    std::uint32_t state, const std::uint8_t* data, std::size_t len,
    const CrcShift& shift) {
  std::uint64_t c = state;
  while (len >= 3 * kCrcLane) {
    std::uint64_t a = c, b = 0, d = 0;
    for (std::size_t i = 0; i < kCrcLane; i += 8) {
      std::uint64_t wa, wb, wd;
      std::memcpy(&wa, data + i, 8);
      std::memcpy(&wb, data + kCrcLane + i, 8);
      std::memcpy(&wd, data + 2 * kCrcLane + i, 8);
      a = _mm_crc32_u64(a, wa);
      b = _mm_crc32_u64(b, wb);
      d = _mm_crc32_u64(d, wd);
    }
    c = apply_shift(shift.by_2lane, static_cast<std::uint32_t>(a)) ^
        apply_shift(shift.by_lane, static_cast<std::uint32_t>(b)) ^
        static_cast<std::uint32_t>(d);
    data += 3 * kCrcLane;
    len -= 3 * kCrcLane;
  }
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, data, 8);
    c = _mm_crc32_u64(c, w);
    data += 8;
    len -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (len > 0) {
    c32 = _mm_crc32_u8(c32, *data++);
    --len;
  }
  return c32;
}

#endif  // NTC_X86_SIMD

}  // namespace

std::uint32_t find_first_gate(const std::uint64_t* gates, std::uint32_t n,
                              std::uint64_t threshold) {
  if (threshold == 0) return 0;  // p <= 0: the first word always fires
#if NTC_X86_SIMD
  if (simd_avx2_active()) return find_first_gate_avx2(gates, n, threshold);
#endif
  return find_first_gate_scalar(gates, n, threshold);
}

std::uint64_t deviation_sweep(const std::uint64_t* golden,
                              const std::uint64_t* werr,
                              const std::uint64_t* mask,
                              const std::uint64_t* value,
                              const std::uint64_t* flip, std::size_t n,
                              std::uint64_t* error) {
  NTC_REQUIRE(n <= 64);
#if NTC_X86_SIMD
  if (simd_avx2_active())
    return deviation_sweep_avx2(golden, werr, mask, value, flip, n, error);
#endif
  return deviation_sweep_scalar(golden, werr, mask, value, flip, n, error);
}

std::uint32_t crc32c_hw(std::uint32_t state, const std::uint8_t* data,
                        std::size_t len) {
#if NTC_X86_SIMD
  return crc32c_hw_impl(state, data, len, crc_shift_tables());
#else
  (void)data, (void)len;
  NTC_REQUIRE_MSG(false, "crc32c_hw needs x86-64; gate on simd_sse42_active");
  return state;
#endif
}

}  // namespace ntc::simd
