// Runtime CPU feature detection plus the SIMD dispatch kill-switch.
//
// The kernel layers (ecc codecs, batch deviation algebra, injector gate
// scans, framing CRC-32C) each keep their scalar reference path and
// consult simd_avx2_active()/simd_sse42_active() to take a vector
// variant.  Three independent gates must pass:
//   * compiled for x86-64 under GCC/Clang (NTC_X86_SIMD),
//   * the CPU advertises the feature (probed once per process),
//   * the runtime kill-switch sim::simd_enabled() is on.
// The switch mirrors sim::set_burst_native / sim::set_batch_enabled:
// scalar is the oracle, and flipping it must never change observable
// results — every vector kernel is bit-exact by construction and the
// equivalence/byte-identity suites prove it.
//
// Detection is header-inline (no ntc_common link edge) so the
// bottom-layer telemetry library can stamp cpu_feature_string() into
// build_info records.
#pragma once

#include <cstdio>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NTC_X86_SIMD 1
#else
#define NTC_X86_SIMD 0
#endif

namespace ntc {

/// CPU features the kernels dispatch on, probed once per process.
struct CpuFeatures {
  bool sse42 = false;  ///< crc32 instruction (hardware CRC-32C)
  bool avx2 = false;   ///< 256-bit integer lanes (vpshufb nibble LUTs)
  bool bmi2 = false;   ///< pext/pdep (the Hamming lanes' run
                       ///< permutation); those kernels need avx2+bmi2
};

inline const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if NTC_X86_SIMD
    f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
#endif
    return f;
  }();
  return features;
}

/// "sse4.2+avx2+bmi2" on a full-featured host, "scalar" when nothing is
/// available.  Process-constant and kill-switch independent, so ledgers
/// stamped with it stay byte-identical across sim::set_simd_enabled.
inline const char* cpu_feature_string() {
  static const char* const str = [] {
    static char buf[32];
    const CpuFeatures& f = cpu_features();
    int n = 0;
    const auto append = [&](const char* name) {
      n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                         "%s%s", n > 0 ? "+" : "", name);
    };
    if (f.sse42) append("sse4.2");
    if (f.avx2) append("avx2");
    if (f.bmi2) append("bmi2");
    if (n == 0) std::snprintf(buf, sizeof buf, "scalar");
    return static_cast<const char*>(buf);
  }();
  return str;
}

namespace sim {

/// Runtime kill-switch over every SIMD kernel variant.  Defaults to on;
/// the NTC_SIMD environment knob ("0" disables, anything else enables)
/// sets the initial value, mirroring the burst/batch conventions.
void set_simd_enabled(bool enabled);
bool simd_enabled();

}  // namespace sim

/// Dispatch predicates: true when a vector variant should be taken.
inline bool simd_avx2_active() {
  return NTC_X86_SIMD != 0 && cpu_features().avx2 && sim::simd_enabled();
}

inline bool simd_sse42_active() {
  return NTC_X86_SIMD != 0 && cpu_features().sse42 && sim::simd_enabled();
}

}  // namespace ntc
