// Minimal CSV emitter; benches optionally dump their series for external
// plotting next to the ASCII tables.
#pragma once

#include <string>
#include <vector>

#include "common/atomic_file.hpp"

namespace ntc {

/// Writes rows to a CSV file; quoting is applied when a cell contains a
/// comma, quote or newline.  Finalization is atomic: rows accumulate in
/// `<path>.tmp` and the file appears under `path` only at commit()
/// (called by the destructor if not already) — a bench killed mid-dump
/// never leaves a truncated CSV that looks complete.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  bool ok() const { return file_.ok(); }

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for numeric series rows.
  void write_row(const std::vector<double>& cells);

  /// Publish the file; idempotent, returns success.
  bool commit() { return file_.commit(); }

 private:
  AtomicFile file_;
  static std::string escape(const std::string& cell);
};

}  // namespace ntc
