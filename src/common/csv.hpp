// Minimal CSV emitter; benches optionally dump their series for external
// plotting next to the ASCII tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ntc {

/// Writes rows to a CSV file; quoting is applied when a cell contains a
/// comma, quote or newline.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. ok() reports whether the stream is usable.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for numeric series rows.
  void write_row(const std::vector<double>& cells);

 private:
  std::ofstream out_;
  static std::string escape(const std::string& cell);
};

}  // namespace ntc
