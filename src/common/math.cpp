#include "common/math.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ntc {

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  NTC_REQUIRE(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation with one Halley refinement.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5, r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley's method against the true CDF.
  double e = normal_cdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double erf_inv(double x) {
  NTC_REQUIRE(x > -1.0 && x < 1.0);
  // erf(y) = 2*Phi(y*sqrt(2)) - 1  =>  erfinv(x) = Phi^-1((x+1)/2)/sqrt(2)
  return normal_quantile(0.5 * (x + 1.0)) / std::sqrt(2.0);
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  NTC_REQUIRE(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double log_sum_exp(double lx, double ly) {
  if (lx < ly) std::swap(lx, ly);
  if (ly <= kLogZero) return lx;
  return lx + std::log1p(std::exp(ly - lx));
}

double log1m_exp(double x) {
  NTC_REQUIRE(x <= 0.0);
  if (x == 0.0) return kLogZero;
  // Maechler's cutoff for the stable branch choice.
  return x > -M_LN2 ? std::log(-std::expm1(x)) : std::log1p(-std::exp(x));
}

double log_binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p) {
  NTC_REQUIRE(p >= 0.0 && p <= 1.0);
  if (k == 0) return 0.0;  // log(1)
  if (k > n || p == 0.0) return kLogZero;
  if (p == 1.0) return 0.0;
  const double logp = std::log(p);
  const double log1mp = std::log1p(-p);
  // Sum P(X = j) for j = k..n in the log domain.  For the tiny p this
  // library cares about the series decays geometrically, so stop once a
  // term is 40 nats below the running sum.
  double acc = kLogZero;
  for (std::uint64_t j = k; j <= n; ++j) {
    double term = log_binomial_coefficient(n, j) +
                  static_cast<double>(j) * logp +
                  static_cast<double>(n - j) * log1mp;
    acc = log_sum_exp(acc, term);
    if (term < acc - 40.0) break;
  }
  return std::min(acc, 0.0);
}

double binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p) {
  double l = log_binomial_tail_ge(n, k, p);
  return l <= kLogZero ? 0.0 : std::exp(l);
}

double any_of_n(std::uint64_t n, double p) {
  NTC_REQUIRE(p >= 0.0 && p <= 1.0);
  if (p == 0.0 || n == 0) return 0.0;
  if (p == 1.0) return 1.0;
  return -std::expm1(static_cast<double>(n) * std::log1p(-p));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  NTC_REQUIRE(n >= 2);
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  NTC_REQUIRE(lo > 0.0 && hi > 0.0);
  auto logs = linspace(std::log(lo), std::log(hi), n);
  for (auto& v : logs) v = std::exp(v);
  logs.back() = hi;
  return logs;
}

double clamp(double x, double lo, double hi) {
  NTC_REQUIRE(lo <= hi);
  return std::min(std::max(x, lo), hi);
}

}  // namespace ntc
