// Numerical primitives shared by the reliability and mitigation models.
//
// The failure-in-time arithmetic routinely handles probabilities around
// 1e-15..1e-30, far below where naive (1-p)^n style evaluation loses all
// precision, so the binomial machinery here works in the log domain.
#pragma once

#include <cstdint>
#include <vector>

namespace ntc {

inline constexpr double kLogZero = -1e300;  // stand-in for log(0)

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Inverse of the standard normal CDF (Acklam's algorithm, |err| < 1e-9).
double normal_quantile(double p);

/// Inverse error function; erfinv(erf(x)) == x to ~1e-9.
double erf_inv(double x);

/// log(n choose k) via lgamma; exact-enough for n up to millions.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// log(x + y) given lx = log(x), ly = log(y), without leaving log space.
double log_sum_exp(double lx, double ly);

/// log1p(-exp(x)) computed stably for x <= 0; log(1 - e^x).
double log1m_exp(double x);

/// P(X >= k) for X ~ Binomial(n, p), evaluated in the log domain.
/// Exact summation of the (few) dominant terms; handles p down to 1e-300.
double binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p);

/// log of binomial_tail_ge; preferred when the tail underflows double.
double log_binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p);

/// Probability that at least one of n independent events of probability
/// p occurs, computed stably: 1 - (1-p)^n = -expm1(n*log1p(-p)).
double any_of_n(std::uint64_t n, double p);

/// n evenly spaced samples from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n logarithmically spaced samples from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Clamp helper that tolerates an inverted range in debug contexts.
double clamp(double x, double lo, double hi);

/// Root of f on [lo, hi] by bisection; requires sign change. Returns the
/// midpoint after `iters` halvings (53 iterations ~= double precision).
template <class F>
double bisect(F&& f, double lo, double hi, int iters = 100) {
  double flo = f(lo);
  for (int i = 0; i < iters; ++i) {
    double mid = 0.5 * (lo + hi);
    double fm = f(mid);
    if ((fm < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Minimum of a unimodal function on [lo, hi] by golden-section search.
template <class F>
double golden_section_min(F&& f, double lo, double hi, int iters = 200) {
  constexpr double invphi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - (b - a) * invphi;
  double d = a + (b - a) * invphi;
  double fc = f(c), fd = f(d);
  for (int i = 0; i < iters; ++i) {
    if (fc < fd) {
      b = d; d = c; fd = fc;
      c = b - (b - a) * invphi;
      fc = f(c);
    } else {
      a = c; c = d; fc = fd;
      d = a + (b - a) * invphi;
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace ntc
