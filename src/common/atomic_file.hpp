// Atomic file finalization: write to `<path>.tmp`, fsync, rename.
//
// Every ledger-like artifact this project writes (campaign CSV/JSON,
// bench baselines, telemetry exports) is consumed by other tooling that
// treats file existence as completeness.  A plain ofstream that dies
// mid-write leaves a truncated file that *looks* finished; the pattern
// here guarantees a reader observes either the old content or the whole
// new content, never a prefix.  rename(2) on the same filesystem is
// atomic; the fsync before it ensures the data is durable before the
// name flips.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ntc {

/// Streaming variant for writers that produce rows incrementally (see
/// CsvWriter).  The temporary is visible as `<path>.tmp` while open;
/// commit() publishes it under `path`.  The destructor commits unless
/// discard() was called, so scope exit finalizes the file — but a
/// caller that wants the success/failure verdict calls commit() itself.
class AtomicFile {
 public:
  /// Opens (creates/truncates) `<path>.tmp`.
  explicit AtomicFile(std::string path);
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// False once the temporary failed to open or a write/commit failed.
  bool ok() const { return !failed_; }
  bool write(const void* data, std::size_t n);
  bool write(std::string_view s);

  /// Flush + fsync + rename over `path`.  Idempotent; returns success.
  bool commit();
  /// Abandon: close and unlink the temporary; `path` is untouched.
  void discard();

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool committed_ = false;
  bool failed_ = false;
};

/// One-shot convenience: atomically replace `path` with `contents`.
bool atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace ntc
