// Persistent work-stealing executor for index-parallel jobs.
//
// The Monte-Carlo campaign layer runs the same shape of job thousands
// of times: N independent grid cells, each writing its result to slot i.
// Spawning a fresh std::thread pool per run() wastes milliseconds per
// invocation and gives the OS no chance to keep workers warm, so this
// executor keeps its workers parked on a condition variable between
// jobs and hands each one a contiguous per-worker range (a deque of
// indices it pops from the front); a worker whose own deque drains
// steals from the back of a victim's range.  Determinism is structural:
// parallel_for(n, fn) promises only that fn(i, worker) runs exactly
// once per index, so callers that write results by index produce output
// independent of the worker count and of who stole what.
//
// The calling thread participates as worker 0, so an Executor built
// with `threads = 1` spawns nothing and runs inline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ntc {

class Executor {
 public:
  /// `threads` = total workers including the caller; 0 picks
  /// std::thread::hardware_concurrency().
  explicit Executor(unsigned threads = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  unsigned worker_count() const { return workers_; }

  /// Invoke fn(index, worker) exactly once for every index in [0, n),
  /// with worker in [0, worker_count()); blocks until all indices have
  /// completed.  Reusable: repeated calls reuse the parked workers.
  /// Not reentrant — one job at a time per Executor.
  ///
  /// Exception safety: a throwing fn never terminates the process or
  /// deadlocks the pool.  The exception is captured where it escapes
  /// (on any worker), every remaining index still runs — "exactly once
  /// per index" holds even on the failing path — and the first
  /// captured exception is rethrown here, on the calling thread, after
  /// all workers have parked.  The executor stays usable afterwards.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, unsigned)>& fn);

 private:
  /// One worker's share of [0, n): the owner pops `head` forward,
  /// thieves pull `tail` backward.  A mutex per deque keeps the
  /// two-ended protocol trivially correct; the per-index cost is
  /// negligible against the millisecond-scale cells it schedules.
  struct Deque {
    std::mutex mutex;
    std::size_t head = 0;
    std::size_t tail = 0;  ///< one past the last owned index
  };

  bool pop_own(unsigned self, std::size_t& index);
  bool steal(unsigned self, std::size_t& index);
  /// Drain every deque (own first, then steal) with the given function.
  void work(unsigned self, const std::function<void(std::size_t, unsigned)>& fn);
  void worker_loop(unsigned self);

  unsigned workers_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   ///< workers wait here between jobs
  std::condition_variable idle_cv_;  ///< caller waits for workers to park
  /// Held by value: a worker waking late (even spuriously) must never
  /// chase a pointer into a caller frame that already returned.  The
  /// publish overwrites it only while every spawned worker is parked.
  std::function<void(std::size_t, unsigned)> job_;
  /// First exception thrown by fn during the current job (guarded by
  /// mutex_); cleared at job publish, rethrown at join.
  std::exception_ptr job_error_;
  std::uint64_t generation_ = 0;
  unsigned idle_ = 0;  ///< spawned workers currently parked
  bool shutdown_ = false;
};

}  // namespace ntc
