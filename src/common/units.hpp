// Strong unit types for the physical quantities the library trades in.
//
// A Quantity<Tag> is a thin wrapper over double: same-unit addition,
// scalar multiplication, and ordered comparison are allowed; mixing two
// different units requires one of the explicit cross-unit operators
// below (e.g. Watt * Second -> Joule).  The goal is to make unit bugs
// (passing a voltage where an energy is expected, mJ-vs-pJ confusion)
// compile errors rather than wrong benchmark rows.
#pragma once

#include <cmath>
#include <compare>

namespace ntc {

template <class Tag>
struct Quantity {
  double value = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.value + b.value}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.value - b.value}; }
  constexpr Quantity operator-() const { return Quantity{-value}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.value * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{a.value * s}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.value / s}; }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.value / b.value; }
  constexpr Quantity& operator+=(Quantity o) { value += o.value; return *this; }
  constexpr Quantity& operator-=(Quantity o) { value -= o.value; return *this; }
  constexpr Quantity& operator*=(double s) { value *= s; return *this; }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;
};

using Volt = Quantity<struct VoltTag>;      // supply / threshold voltages
using Ampere = Quantity<struct AmpereTag>;  // currents
using Joule = Quantity<struct JouleTag>;    // energies
using Watt = Quantity<struct WattTag>;      // powers
using Second = Quantity<struct SecondTag>;  // times / delays
using Hertz = Quantity<struct HertzTag>;    // frequencies
using SquareMm = Quantity<struct AreaTag>;  // silicon area
using Celsius = Quantity<struct TempTag>;   // temperature

// Cross-unit physics that the models actually use.
inline constexpr Joule operator*(Watt p, Second t) { return Joule{p.value * t.value}; }
inline constexpr Joule operator*(Second t, Watt p) { return p * t; }
inline constexpr Watt operator/(Joule e, Second t) { return Watt{e.value / t.value}; }
inline constexpr Second operator/(Joule e, Watt p) { return Second{e.value / p.value}; }
inline constexpr Watt operator*(Volt v, Ampere i) { return Watt{v.value * i.value}; }
inline constexpr Watt operator*(Ampere i, Volt v) { return v * i; }
inline constexpr Second period(Hertz f) { return Second{1.0 / f.value}; }
inline constexpr Hertz frequency(Second t) { return Hertz{1.0 / t.value}; }
// Energy per cycle at a given clock.
inline constexpr Joule operator*(Watt p, Hertz f) = delete;  // common mistake: P*f is not energy
inline constexpr Joule energy_per_cycle(Watt p, Hertz f) { return Joule{p.value / f.value}; }

// Readability helpers for literals in calibration tables.
inline constexpr Volt volts(double v) { return Volt{v}; }
inline constexpr Volt millivolts(double v) { return Volt{v * 1e-3}; }
inline constexpr Joule picojoules(double v) { return Joule{v * 1e-12}; }
inline constexpr Joule femtojoules(double v) { return Joule{v * 1e-15}; }
inline constexpr Watt microwatts(double v) { return Watt{v * 1e-6}; }
inline constexpr Watt milliwatts(double v) { return Watt{v * 1e-3}; }
inline constexpr Second nanoseconds(double v) { return Second{v * 1e-9}; }
inline constexpr Second microseconds(double v) { return Second{v * 1e-6}; }
inline constexpr Second milliseconds(double v) { return Second{v * 1e-3}; }
inline constexpr Second seconds(double v) { return Second{v}; }
inline constexpr Second hours(double v) { return Second{v * 3600.0}; }
inline constexpr Second years(double v) { return Second{v * 3600.0 * 24.0 * 365.25}; }
inline constexpr Hertz kilohertz(double v) { return Hertz{v * 1e3}; }
inline constexpr Hertz megahertz(double v) { return Hertz{v * 1e6}; }

// Formatting conversions (for table printers).
inline constexpr double in_millivolts(Volt v) { return v.value * 1e3; }
inline constexpr double in_picojoules(Joule e) { return e.value * 1e12; }
inline constexpr double in_microwatts(Watt p) { return p.value * 1e6; }
inline constexpr double in_milliwatts(Watt p) { return p.value * 1e3; }
inline constexpr double in_megahertz(Hertz f) { return f.value * 1e-6; }
inline constexpr double in_nanoseconds(Second t) { return t.value * 1e9; }

}  // namespace ntc
