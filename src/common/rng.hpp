// Deterministic random number generation.
//
// Every stochastic component in the library (virtual test chip, fault
// injection, Monte-Carlo device variation) draws from an explicitly
// seeded Rng so that every experiment is bit-reproducible.  The engine
// is xoshiro256++ seeded through SplitMix64; independent substreams are
// derived with Rng::fork(tag) so parallel structures (dies, cells,
// modules) get decorrelated streams without global coordination.
#pragma once

#include <cstdint>
#include <span>

namespace ntc {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ pseudo-random generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Bulk generation: fills `out` with exactly out.size() consecutive
  /// next_u64() draws, leaving the engine in the same state as that
  /// many scalar calls.  The guarantee is bit-exact stream identity —
  /// batched consumers (SoA flip-mask generation, the batched campaign
  /// engine) may interleave fill_u64 with scalar draws freely without
  /// perturbing any downstream seed-reproducible experiment.
  void fill_u64(std::span<std::uint64_t> out);

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (inversion for small
  /// lambda, normal approximation above 64).
  std::uint64_t poisson(double lambda);

  /// Derive an independent substream. Deterministic in (this seed, tag).
  Rng fork(std::uint64_t tag) const;

  /// The seed this engine was constructed with: together with the draw
  /// history it identifies the stream, so immutable per-seed tables
  /// (e.g. the shared retention fingerprints) can key on it.
  std::uint64_t seed() const { return seed_; }

  /// Conservative upper bound on |normal()|: Box-Muller over 53-bit
  /// uniforms caps the radius at sqrt(-2 ln 2^-53) ~ 8.5716, so no
  /// deviate this class can ever produce exceeds the returned value
  /// (which pads that bound for the rounding of log/sqrt/sin/cos and a
  /// later float cast).  Lets consumers prove "no cell beyond k sigma"
  /// without drawing the population.
  static double max_normal_magnitude();

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ntc
