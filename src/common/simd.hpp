// Shared SIMD kernels with scalar twins: access-flip gate scans, batch
// deviation algebra, and the hardware CRC-32C stream.
//
// Dispatch convention (see common/cpu.hpp): every entry point here
// dispatches internally on the feature predicates, and the scalar twin
// it falls back to is bit-exact with the vector path by construction —
// the gate compare is proved exact in integer form below, the deviation
// sweep is pure GF(2) algebra, and the crc32 instruction implements the
// same reflected-Castagnoli recurrence as the byte table.  Flipping
// sim::set_simd_enabled therefore never changes observable results;
// tests/common_simd_test.cpp crosses every kernel over the switch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ntc::simd {

/// Exact integer threshold for the access-flip gate.  Gate draws are
/// 53-bit uniforms u = g >> 11, compared as (double)u * 0x1.0p-53 >= p.
/// Because scaling by 2^-53 is exact for u < 2^53, that holds iff
/// u >= ceil(p * 2^53), which this returns (clamped: p <= 0 maps to 0 —
/// every word fires — and p >= 1 maps to 2^53, which no draw reaches).
std::uint64_t gate_threshold(double p);

/// First index j in [0, n) with (gates[j] >> 11) >= threshold, or n.
/// AVX2 vpcmpgtq + movemask when active; integer scalar loop otherwise.
std::uint32_t find_first_gate(const std::uint64_t* gates, std::uint32_t n,
                              std::uint64_t threshold);

/// Batch-engine deviation algebra over SoA columns:
///   error[i] = (werr[i] & ~mask[i]) ^ ((golden[i] & mask[i]) ^ value[i])
///              ^ flip[i]
/// Returns the dirty bitmap (bit i set iff error[i] != 0).  n <= 64;
/// callers sweep longer traces in 64-word chunks.
std::uint64_t deviation_sweep(const std::uint64_t* golden,
                              const std::uint64_t* werr,
                              const std::uint64_t* mask,
                              const std::uint64_t* value,
                              const std::uint64_t* flip, std::size_t n,
                              std::uint64_t* error);

/// Raw CRC-32C state update (no init/final XOR) on the SSE4.2 crc32
/// instruction: three interleaved 1 KiB streams recombined through
/// precomputed GF(2) shift tables, sequential crc32q/crc32b remainder.
/// Callers guarantee simd_sse42_active(); bit-identical to the table
/// loop in common/framing.cpp.
std::uint32_t crc32c_hw(std::uint32_t state, const std::uint8_t* data,
                        std::size_t len);

}  // namespace ntc::simd
