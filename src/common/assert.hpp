// Contract-checking macros used across the ntcmem libraries.
//
// NTC_REQUIRE is for caller contract violations (bad arguments, protocol
// misuse).  It is always on — reliability modelling code that silently
// continues on a bad precondition produces plausible-looking garbage,
// which is worse than an abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ntc {

[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const char* msg) {
  std::fprintf(stderr, "ntcmem contract violation: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace ntc

#define NTC_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::ntc::contract_failure(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NTC_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) ::ntc::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
