// CRC-framed binary record streams for crash-safe append-only files.
//
// The campaign ledger (src/faultsim/ledger.*) streams one record per
// completed trial to disk; a process killed mid-write (kill -9, OOM,
// wall-clock limit) leaves at most one torn frame at the tail.  The
// framing here makes that tail detectable and removable: every frame is
//
//   [u32 payload length][u32 CRC-32C of payload][payload bytes]
//
// with all integers little-endian.  A reader walks frames until the
// file ends mid-frame or a CRC mismatches; everything before that point
// is intact (CRC-32C catches any burst up to 32 bits and all 1-3 bit
// errors), everything from it on is truncated by the writer before
// appending resumes.
//
// CRC-32C (Castagnoli) is used rather than the IEEE CRC-32 in
// src/ecc/crc.* deliberately: the ecc library models *simulated*
// hardware checksums and layers above common cannot be linked from
// here; the framing checksum is host-side file integrity and keeping
// the polynomials distinct means a ledger frame can never be confused
// with a simulated OCEAN chunk CRC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ntc {

/// CRC-32C (polynomial 0x1EDC6F41, reflected; RFC 3720 §B.4).
/// crc32c over "123456789" is 0xE3069283.  Dispatches to the SSE4.2
/// crc32 instruction (simd::crc32c_hw) when simd_sse42_active(); the
/// byte-table loop is the scalar oracle and both are bit-identical, so
/// ledger segments written under either dispatch mode interoperate.
std::uint32_t crc32c(std::span<const std::uint8_t> bytes);

/// Incremental form: crc32c(A || B) == crc32c_update(crc32c(A), B).
/// Seed the chain with crc32c({}) — i.e. 0 — or simply the first
/// chunk's crc32c.  Same dispatch rules as crc32c.
std::uint32_t crc32c_update(std::uint32_t crc,
                            std::span<const std::uint8_t> bytes);

/// Little-endian primitive serializer for record payloads.  All sizes
/// are explicit; doubles travel as IEEE-754 bit patterns so a
/// round-trip is bit-exact (NaN payloads included).
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  /// u32 length followed by the raw bytes.
  void put_string(const std::string& s);
  void put_bytes(std::span<const std::uint8_t> raw);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }
  /// Overwrite 4 bytes at `offset` (header length back-patching).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader.  A read past the end sets
/// ok() false and returns zero values; callers check ok() once at the
/// end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  std::string get_string();

  bool ok() const { return ok_; }
  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

/// Largest payload a well-formed frame may carry.  A torn or corrupt
/// length field would otherwise ask the reader to allocate gigabytes;
/// campaign records are a few hundred bytes.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Append one [len][crc][payload] frame to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Walk the next frame starting at `offset`.  On success advances
/// `offset` past the frame and fills `payload` (a view into `bytes`).
/// Returns false — leaving `offset` untouched — when the remaining
/// bytes do not contain one intact frame: clean end-of-stream, a tail
/// torn mid-frame, an oversized length, or a CRC mismatch all look the
/// same to the caller (valid prefix ends here).
bool next_frame(std::span<const std::uint8_t> bytes, std::size_t& offset,
                std::span<const std::uint8_t>& payload);

}  // namespace ntc
