#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ntc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  NTC_REQUIRE(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  NTC_REQUIRE(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  NTC_REQUIRE(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  NTC_REQUIRE(n_ > 0);
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NTC_REQUIRE(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  double f = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(f * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  NTC_REQUIRE(bin < counts_.size());
  double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::quantile(double q) const {
  NTC_REQUIRE(q >= 0.0 && q <= 1.0);
  NTC_REQUIRE(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac = counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * w;
    }
    cum = next;
  }
  return hi_;
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  NTC_REQUIRE(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  NTC_REQUIRE_MSG(std::abs(denom) > 1e-30, "degenerate x values in linear_fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double percentile(std::vector<double> samples, double q) {
  NTC_REQUIRE(!samples.empty());
  NTC_REQUIRE(q >= 0.0 && q <= 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx), samples.end());
  return samples[idx];
}

}  // namespace ntc
