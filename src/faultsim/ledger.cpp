#include "faultsim/ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/framing.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/metrics.hpp"

namespace ntc::faultsim {

namespace {

constexpr char kMagic[8] = {'N', 'T', 'C', 'L', 'D', 'G', 'R', '1'};
constexpr std::uint32_t kVersion = 1;

enum RecordType : std::uint8_t {
  kTrialRecord = 1,
  kShardCommitRecord = 2,
};

std::vector<std::uint8_t> read_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  exists = static_cast<bool>(in);
  if (!exists) return {};
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

/// Header = magic + framed fields + CRC over everything before the CRC.
std::vector<std::uint8_t> build_header(const ShardPlan& plan,
                                       const Shard& shard) {
  ByteWriter w;
  w.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic));
  w.put_u32(kVersion);
  const std::size_t len_offset = w.size();
  w.put_u32(0);  // total header length, patched below
  w.put_u64(plan.fingerprint);
  w.put_u64(shard.id);
  w.put_u64(shard.record_base);
  w.put_u64(shard.seed_begin);
  w.put_u32(shard.trial_count);
  w.put_u64(plan.total_records);
  w.put_string(telemetry::build_info_json());
  w.patch_u32(len_offset, static_cast<std::uint32_t>(w.size() + 4));
  w.put_u32(crc32c(std::span<const std::uint8_t>(w.bytes())));
  return w.take();
}

/// Parse the header into `scan`; returns the header length (0 = bad).
std::uint64_t parse_header(std::span<const std::uint8_t> bytes,
                           SegmentScan& scan) {
  if (bytes.size() < sizeof kMagic + 8) return 0;
  if (__builtin_memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return 0;
  ByteReader r(bytes.subspan(sizeof kMagic));
  const std::uint32_t version = r.get_u32();
  const std::uint32_t header_len = r.get_u32();
  if (!r.ok() || version != kVersion) return 0;
  if (header_len < sizeof kMagic + 12 || header_len > bytes.size()) return 0;
  ByteReader body(bytes.subspan(0, header_len));
  body.get_u64();  // magic (validated above)
  body.get_u32();  // version
  body.get_u32();  // header_len
  scan.fingerprint = body.get_u64();
  scan.shard_id = body.get_u64();
  scan.record_base = body.get_u64();
  scan.seed_begin = body.get_u64();
  scan.trial_count = body.get_u32();
  scan.total_records = body.get_u64();
  (void)body.get_string();  // build_info of the producing process
  const std::size_t crc_offset = body.offset();
  const std::uint32_t stored_crc = body.get_u32();
  if (!body.ok() || body.offset() != header_len) return 0;
  if (crc32c(bytes.subspan(0, crc_offset)) != stored_crc) return 0;
  scan.header_ok = true;
  return header_len;
}

int open_append(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_APPEND);
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      NTC_REQUIRE(false && "ledger segment write failed");
    }
    p += written;
    n -= static_cast<std::size_t>(written);
  }
}

}  // namespace

void serialize_run_record(ByteWriter& out, const RunRecord& record) {
  out.put_string(record.scenario);
  out.put_string(record.scheme);
  out.put_f64(record.vdd);
  out.put_u64(record.seed);
  out.put_u8(static_cast<std::uint8_t>(record.outcome));
  out.put_f64(record.snr_db);
  out.put_u64(record.corrected_words);
  out.put_u64(record.uncorrectable_words);
  out.put_u64(record.injected_flips);
  out.put_u64(record.stuck_bits);
  out.put_u64(record.scenario_events_fired);
  out.put_u64(record.ocean_restores);
  out.put_u64(record.ocean_voltage_escalations);
  out.put_u64(record.cycles);
  out.put_u64(record.contention_cycles);
}

RunRecord deserialize_run_record(ByteReader& in) {
  RunRecord r;
  r.scenario = in.get_string();
  r.scheme = in.get_string();
  r.vdd = in.get_f64();
  r.seed = in.get_u64();
  r.outcome = static_cast<RunOutcome>(in.get_u8());
  r.snr_db = in.get_f64();
  r.corrected_words = in.get_u64();
  r.uncorrectable_words = in.get_u64();
  r.injected_flips = in.get_u64();
  r.stuck_bits = in.get_u64();
  r.scenario_events_fired = in.get_u64();
  r.ocean_restores = in.get_u64();
  r.ocean_voltage_escalations = in.get_u64();
  r.cycles = in.get_u64();
  r.contention_cycles = in.get_u64();
  return r;
}

SegmentScan scan_segment(const std::string& path, bool with_records) {
  SegmentScan scan;
  std::vector<std::uint8_t> bytes = read_file(path, scan.exists);
  if (!scan.exists) return scan;
  const std::uint64_t header_len = parse_header(bytes, scan);
  if (header_len == 0) {
    scan.note = "unreadable or foreign header";
    scan.torn_bytes = bytes.size();
    return scan;
  }
  std::size_t offset = header_len;
  std::size_t valid = offset;
  std::span<const std::uint8_t> payload;
  while (next_frame(bytes, offset, payload)) {
    ByteReader r(payload);
    const std::uint8_t type = r.get_u8();
    if (type == kTrialRecord) {
      const std::uint32_t trial_offset = r.get_u32();
      RunRecord record = deserialize_run_record(r);
      // Trials are appended strictly in order by one writer; a frame
      // out of sequence (or trailing a commit) means the file was
      // tampered with or mis-assembled — the valid prefix ends before
      // it.
      if (!r.ok() || scan.completed || trial_offset != scan.trials_durable ||
          trial_offset >= scan.trial_count) {
        scan.note = "out-of-sequence trial frame";
        break;
      }
      ++scan.trials_durable;
      if (with_records) scan.records.push_back(std::move(record));
    } else if (type == kShardCommitRecord) {
      const std::uint32_t count = r.get_u32();
      if (!r.ok() || scan.completed || count != scan.trials_durable) {
        scan.note = "inconsistent commit frame";
        break;
      }
      scan.completed = true;
    } else {
      scan.note = "unknown record type";
      break;
    }
    valid = offset;
  }
  scan.valid_bytes = valid;
  scan.torn_bytes = bytes.size() - valid;
  if (scan.torn_bytes > 0 && scan.note.empty())
    scan.note = "torn trailing frame";
  return scan;
}

LedgerWriter::LedgerWriter(const std::string& path, const ShardPlan& plan,
                           const Shard& shard, bool fsync_each_record)
    : path_(path), fsync_each_record_(fsync_each_record) {
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) return;
  const std::vector<std::uint8_t> header = build_header(plan, shard);
  write_all(fd_, header.data(), header.size());
}

LedgerWriter::LedgerWriter(const std::string& path, std::uint64_t valid_bytes,
                           bool fsync_each_record)
    : path_(path), fsync_each_record_(fsync_each_record) {
  // Drop the torn tail first, then append after the valid prefix.
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) return;
  fd_ = open_append(path);
}

LedgerWriter::~LedgerWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void LedgerWriter::append_frame_bytes(const std::vector<std::uint8_t>& payload) {
  NTC_REQUIRE(fd_ >= 0);
  // One frame, one write(2): O_APPEND makes the append atomic with
  // respect to the file offset, and a crash tears at most this frame.
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 8);
  append_frame(framed, std::span<const std::uint8_t>(payload));
  write_all(fd_, framed.data(), framed.size());
  if (fsync_each_record_) ::fsync(fd_);
}

void LedgerWriter::append_trial(std::uint32_t offset,
                                const RunRecord& record) {
  ByteWriter w;
  w.put_u8(kTrialRecord);
  w.put_u32(offset);
  serialize_run_record(w, record);
  append_frame_bytes(w.bytes());
}

void LedgerWriter::commit(std::uint32_t trial_count) {
  ByteWriter w;
  w.put_u8(kShardCommitRecord);
  w.put_u32(trial_count);
  append_frame_bytes(w.bytes());
  NTC_REQUIRE(::fsync(fd_) == 0);
}

MergedLedger merge_segments(const std::vector<std::string>& paths) {
  MergedLedger merged;
  struct Slot {
    RunRecord record;
    bool present = false;
  };
  std::vector<Slot> slots;
  bool identity_set = false;
  for (const std::string& path : paths) {
    SegmentScan scan = scan_segment(path, /*with_records=*/true);
    if (!scan.exists) {
      merged.notes.push_back(path + ": missing");
      continue;
    }
    if (!scan.header_ok) {
      merged.notes.push_back(path + ": " + scan.note);
      continue;
    }
    if (!identity_set) {
      merged.fingerprint = scan.fingerprint;
      merged.total_records = scan.total_records;
      slots.resize(scan.total_records);
      identity_set = true;
    } else if (scan.fingerprint != merged.fingerprint ||
               scan.total_records != merged.total_records) {
      merged.notes.push_back(path + ": foreign campaign fingerprint");
      continue;
    }
    if (!scan.completed) merged.incomplete_shards.push_back(scan.shard_id);
    if (!scan.note.empty()) merged.notes.push_back(path + ": " + scan.note);
    for (std::uint32_t i = 0; i < scan.trials_durable; ++i) {
      const std::uint64_t index = scan.record_base + i;
      if (index >= slots.size()) {
        merged.notes.push_back(path + ": record index out of range");
        break;
      }
      if (slots[index].present) {
        ++merged.duplicate_records;  // deterministic re-delivery
      } else {
        slots[index].record = std::move(scan.records[i]);
        slots[index].present = true;
      }
    }
  }
  merged.records.reserve(slots.size());
  merged.present.reserve(slots.size());
  merged.complete = identity_set;
  for (Slot& slot : slots) {
    merged.present.push_back(slot.present);
    if (slot.present) merged.records.push_back(std::move(slot.record));
    else merged.complete = false;
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Canonical text exports (moved verbatim from CampaignRunner so the
// merge tool and the in-process runner share one formatter).

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// RFC 4180 quoting: scheme names such as "ECC (SECDED 39,32)" contain
// commas and would otherwise shift every following column.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CampaignSummary summarize_records(const std::vector<RunRecord>& records) {
  CampaignSummary s;
  s.runs = records.size();
  for (const RunRecord& r : records) {
    switch (r.outcome) {
      case RunOutcome::Clean: ++s.clean; break;
      case RunOutcome::Corrected: ++s.corrected; break;
      case RunOutcome::DetectedUncorrectable: ++s.detected_uncorrectable; break;
      case RunOutcome::SilentDataCorruption: ++s.silent_data_corruption; break;
      case RunOutcome::SystemFailure: ++s.system_failure; break;
    }
  }
  return s;
}

void write_ledger_csv(std::ostream& out,
                      const std::vector<RunRecord>& records) {
  // Build provenance rides along as '#' comment lines.  The values are
  // process constants, so ledgers stay byte-identical across thread
  // counts and repeated run() calls (faultsim_throughput_test relies on
  // that).
  out << telemetry::build_info_csv_comment();
  out << "scenario,scheme,vdd,seed,outcome,snr_db,corrected_words,"
         "uncorrectable_words,injected_flips,stuck_bits,"
         "scenario_events_fired,ocean_restores,ocean_voltage_escalations,"
         "cycles,contention_cycles\n";
  for (const RunRecord& r : records) {
    out << csv_field(r.scenario) << ',' << csv_field(r.scheme) << ','
        << r.vdd << ',' << r.seed
        << ',' << to_string(r.outcome) << ',' << r.snr_db << ','
        << r.corrected_words << ',' << r.uncorrectable_words << ','
        << r.injected_flips << ',' << r.stuck_bits << ','
        << r.scenario_events_fired << ',' << r.ocean_restores << ','
        << r.ocean_voltage_escalations << ',' << r.cycles << ','
        << r.contention_cycles << '\n';
  }
}

void write_ledger_json(std::ostream& out,
                       const std::vector<RunRecord>& records) {
  const CampaignSummary s = summarize_records(records);
  out << "{\n  \"build\": " << telemetry::build_info_json()
      << ",\n  \"summary\": {\"runs\": " << s.runs
      << ", \"clean\": " << s.clean << ", \"corrected\": " << s.corrected
      << ", \"detected_uncorrectable\": " << s.detected_uncorrectable
      << ", \"silent_data_corruption\": " << s.silent_data_corruption
      << ", \"system_failure\": " << s.system_failure << "},\n  \"runs\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"scenario\": \"" << escape_json(r.scenario)
        << "\", \"scheme\": \"" << escape_json(r.scheme)
        << "\", \"vdd\": " << r.vdd << ", \"seed\": " << r.seed
        << ", \"outcome\": \"" << to_string(r.outcome) << "\", \"snr_db\": ";
    // JSON has no nan/inf literal; a fully-destroyed output (zero or
    // NaN-adjacent SNR) must not render the whole ledger unparseable.
    if (std::isfinite(r.snr_db)) {
      out << r.snr_db;
    } else {
      out << "null";
    }
    out
        << ", \"corrected_words\": " << r.corrected_words
        << ", \"uncorrectable_words\": " << r.uncorrectable_words
        << ", \"injected_flips\": " << r.injected_flips
        << ", \"stuck_bits\": " << r.stuck_bits
        << ", \"scenario_events_fired\": " << r.scenario_events_fired
        << ", \"ocean_restores\": " << r.ocean_restores
        << ", \"ocean_voltage_escalations\": " << r.ocean_voltage_escalations
        << ", \"cycles\": " << r.cycles
        << ", \"contention_cycles\": " << r.contention_cycles << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace ntc::faultsim
