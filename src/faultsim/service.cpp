#include "faultsim/service.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/assert.hpp"
#include "faultsim/ledger.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::faultsim {

namespace {

/// Does this segment's header describe exactly this shard of exactly
/// this plan?  Anything else (foreign grid, different chunking, stale
/// layout) must not be resumed into — the shard restarts from zero.
bool matches_plan(const SegmentScan& scan, const ShardPlan& plan,
                  const Shard& shard) {
  return scan.header_ok && scan.fingerprint == plan.fingerprint &&
         scan.shard_id == shard.id && scan.record_base == shard.record_base &&
         scan.seed_begin == shard.seed_begin &&
         scan.trial_count == shard.trial_count &&
         scan.total_records == plan.total_records;
}

}  // namespace

CampaignService::CampaignService(CampaignConfig campaign,
                                 ServiceConfig service)
    : runner_(std::move(campaign)), service_(std::move(service)) {
  NTC_REQUIRE(!service_.ledger_dir.empty());
  NTC_REQUIRE(service_.max_attempts >= 1);
  // The runner normalizes the config (implicit background scenario);
  // plan from its copy so indices and fingerprint match execution.
  plan_ = runner_.shard_plan(service_.seeds_per_shard);
}

std::vector<std::string> CampaignService::segment_paths() const {
  std::vector<std::string> paths;
  paths.reserve(plan_.shards.size());
  for (const Shard& shard : plan_.shards)
    paths.push_back(service_.ledger_dir + "/" + shard_segment_name(shard.id));
  return paths;
}

ServiceReport CampaignService::run() { return serve(nullptr); }

ServiceReport CampaignService::run_shards(
    const std::vector<std::uint64_t>& ids) {
  return serve(&ids);
}

ServiceReport CampaignService::serve(
    const std::vector<std::uint64_t>* only_ids) {
  runner_.prepare();
  std::error_code ec;
  std::filesystem::create_directories(service_.ledger_dir, ec);
  NTC_REQUIRE(!ec && "cannot create ledger directory");

  ServiceReport report;
  report.shards.resize(plan_.shards.size());
  report.shards_total = plan_.shards.size();
  const std::vector<std::string> paths = segment_paths();

  // Serial pre-scan: committed shards are final (their checkpoint frame
  // is the proof) and are never dispatched again.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan_.shards.size(); ++i) {
    ShardReport& r = report.shards[i];
    r.shard_id = plan_.shards[i].id;
    const SegmentScan scan = scan_segment(paths[i], /*with_records=*/false);
    if (matches_plan(scan, plan_, plan_.shards[i]) && scan.completed) {
      r.completed = true;
      r.trials_durable = scan.trials_durable;
      r.trials_resumed = scan.trials_durable;
      continue;
    }
    const bool selected =
        only_ids == nullptr ||
        std::find(only_ids->begin(), only_ids->end(), plan_.shards[i].id) !=
            only_ids->end();
    if (selected) pending.push_back(i);
  }

  // One in-flight shard per worker; each shard owns its segment file
  // and its report slot, so the only shared state is the hook counter.
  std::atomic<std::uint64_t> appended_total{0};
  runner_.executor().parallel_for(
      pending.size(), [&](std::size_t i, unsigned worker) {
        serve_shard_impl(pending[i], worker, report.shards[pending[i]],
                         appended_total);
      });

  for (const ShardReport& r : report.shards) {
    if (r.completed) ++report.shards_completed;
    if (r.quarantined) ++report.shards_quarantined;
    if (r.attempts > 0 && r.trials_resumed > 0) ++report.shards_resumed;
    report.trials_skipped += r.trials_resumed;
    report.trials_run += r.trials_durable - r.trials_resumed;
    report.retries += r.attempts > 1 ? r.attempts - 1 : 0;
    report.torn_bytes_truncated += r.torn_bytes;
  }
  return report;
}

void CampaignService::serve_shard_impl(std::size_t shard_index,
                                       unsigned worker, ShardReport& report,
                                       std::atomic<std::uint64_t>& appended) {
  const Shard& shard = plan_.shards[shard_index];
  const std::string path =
      service_.ledger_dir + "/" + shard_segment_name(shard.id);
  NTC_TELEM_SPAN(span, telemetry::EventKind::CampaignShard, "campaign_shard");

  for (std::uint32_t attempt = 0; attempt < service_.max_attempts; ++attempt) {
    ++report.attempts;
    try {
      if (service_.attempt_hook) service_.attempt_hook(shard, attempt);

      // (Re)scan every attempt: a failed attempt's durable prefix is
      // progress the retry must not redo.
      const SegmentScan scan = scan_segment(path, /*with_records=*/false);
      std::uint32_t start = 0;
      std::unique_ptr<LedgerWriter> writer;
      if (scan.exists && matches_plan(scan, plan_, shard)) {
        if (scan.completed) {  // another process finished it meanwhile
          report.completed = true;
          report.trials_durable = scan.trials_durable;
          return;
        }
        report.torn_bytes += scan.torn_bytes;
        if (scan.torn_bytes > 0)
          NTC_TELEM_COUNT("ntc_ledger_torn_bytes_total", scan.torn_bytes);
        start = scan.trials_durable;
        writer = std::make_unique<LedgerWriter>(path, scan.valid_bytes,
                                                service_.fsync_each_record);
      } else {
        // Fresh shard — or a foreign/corrupt segment, rewritten whole.
        writer = std::make_unique<LedgerWriter>(path, plan_, shard,
                                                service_.fsync_each_record);
      }
      if (!writer->ok())
        throw std::runtime_error("cannot open ledger segment " + path);
      if (attempt == 0) report.trials_resumed = start;
      NTC_TELEM_COUNT("ntc_campaign_trials_resumed_total", start);

      const auto deadline = std::chrono::steady_clock::now() +
                            service_.shard_timeout;
      // Trials execute in batch-width chunks (the trace-replay engine's
      // unit of work) but stay durable one record at a time: each trial
      // is appended — and the hook fired — individually, so a crash or
      // timeout mid-chunk loses at most the not-yet-appended tail,
      // which the deterministic rerun reproduces byte-identically.
      const std::uint32_t width =
          std::max<std::uint32_t>(1, runner_.batch_chunk_width(shard));
      std::vector<RunRecord> chunk(std::min(width, shard.trial_count));
      for (std::uint32_t j = start; j < shard.trial_count;) {
        const std::uint32_t count = std::min(width, shard.trial_count - j);
        runner_.execute_shard_trials(shard, j, count, worker, chunk.data());
        for (std::uint32_t k = 0; k < count; ++k) {
          writer->append_trial(j + k, chunk[k]);
          report.trials_durable = j + k + 1;
          if (service_.record_hook)
            service_.record_hook(shard, appended.fetch_add(1) + 1, path);
          // Checked between appends only — a trial is never cut
          // mid-run, and a budget overrun after the last trial still
          // commits.
          if (service_.shard_timeout.count() > 0 &&
              j + k + 1 < shard.trial_count &&
              std::chrono::steady_clock::now() >= deadline)
            throw std::runtime_error("shard wall-clock budget exceeded");
        }
        j += count;
      }
      writer->commit(shard.trial_count);
      report.completed = true;
      span.set_args(shard.id, report.trials_durable - report.trials_resumed);
      NTC_TELEM_COUNT("ntc_campaign_shards_completed_total", 1);
      return;
    } catch (const std::exception& e) {
      report.last_error = e.what();
    } catch (...) {
      report.last_error = "unknown error";
    }
    if (attempt + 1 < service_.max_attempts) {
      NTC_TELEM_COUNT("ntc_campaign_shard_retries_total", 1);
      const unsigned shift = attempt < 20 ? attempt : 20;
      std::this_thread::sleep_for(service_.retry_backoff * (1u << shift));
    }
  }
  // Retry budget exhausted: quarantine and report — graceful
  // degradation, never abort the run.  The durable prefix stays on
  // disk; a later run (or a raised budget) picks up exactly there.
  report.quarantined = true;
  span.set_args(shard.id, report.trials_durable - report.trials_resumed);
  NTC_TELEM_COUNT("ntc_campaign_shards_quarantined_total", 1);
}

}  // namespace ntc::faultsim
