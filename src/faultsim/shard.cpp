#include "faultsim/shard.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "faultsim/campaign.hpp"

namespace ntc::faultsim {

namespace {

/// Incremental FNV-1a (64-bit).  Fed field-by-field below; every field
/// is hashed with its width so adjacent values cannot alias.
struct Fnv {
  std::uint64_t state = 0xcbf29ce484222325ull;
  void mix_byte(std::uint8_t b) {
    state ^= b;
    state *= 0x100000001b3ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }
};

void hash_events(Fnv& h, const std::vector<FaultEvent>& events) {
  h.u64(events.size());
  for (const FaultEvent& e : events) {
    h.u64(static_cast<std::uint64_t>(e.kind));
    h.u64(e.word);
    h.u64(e.span);
    h.u64(e.bit_mask);
    h.u64(e.stuck_value);
    h.u64(e.arm_at_access);
    h.u64(e.disarm_at_access);
    h.f64(e.heal_at_v);
    h.u64(e.once ? 1 : 0);
  }
}

}  // namespace

std::uint64_t config_fingerprint(const CampaignConfig& config) {
  Fnv h;
  h.u64(config.voltages.size());
  for (Volt v : config.voltages) h.f64(v.value);
  h.u64(config.schemes.size());
  for (mitigation::SchemeKind s : config.schemes)
    h.u64(static_cast<std::uint64_t>(s));
  // An empty scenario list runs the implicit background scenario; hash
  // both spellings identically so a fingerprint taken before
  // CampaignRunner normalizes the config still matches one taken after.
  if (config.scenarios.empty()) {
    h.u64(1);
    h.str("background");
    hash_events(h, {});
    hash_events(h, {});
    hash_events(h, {});
  } else {
    h.u64(config.scenarios.size());
    for (const Scenario& s : config.scenarios) {
      h.str(s.name);
      hash_events(h, s.spm_events);
      hash_events(h, s.imem_events);
      hash_events(h, s.pm_events);
    }
  }
  // Tile mixes extend the scheme axis; hashed only when present so
  // every classic (mix-free) campaign keeps its historical fingerprint
  // and its on-disk ledgers stay resumable.  Hashing the normalized
  // spelling makes fingerprints agree before and after CampaignRunner
  // fills in defaults.
  if (!config.tile_mixes.empty()) {
    h.u64(config.tile_mixes.size());
    for (const TileMixSpec& raw : config.tile_mixes) {
      const TileMixSpec mix = normalize_tile_mix(raw);
      h.u64(mix.tiles);
      h.u64(mix.banks);
      h.u64(mix.schemes.size());
      for (mitigation::SchemeKind s : mix.schemes)
        h.u64(static_cast<std::uint64_t>(s));
      h.str(mix.name);
    }
  }
  h.u64(config.base_seed);
  h.u64(config.seeds_per_cell);
  h.u64(config.fft_points);
  h.u64(static_cast<std::uint64_t>(config.style));
  h.f64(config.clock.value);
  h.u64(config.stochastic_background ? 1 : 0);
  h.u64(config.ocean.max_restore_attempts);
  h.u64(config.ocean.crc_cycles_per_word);
  h.f64(config.ocean.fetches_per_cycle);
  h.u64(config.ocean.max_voltage_escalations);
  h.f64(config.ocean.escalation_step.value);
  h.f64(config.ocean.escalation_vmax.value);
  return h.state;
}

ShardPlan make_shard_plan(const CampaignConfig& config,
                          std::uint32_t seeds_per_shard) {
  NTC_REQUIRE(config.seeds_per_cell >= 1);
  const std::uint32_t spc = config.seeds_per_cell;
  const std::uint32_t sps =
      seeds_per_shard == 0 ? spc : std::min(seeds_per_shard, spc);
  const std::uint32_t chunks_per_cell = (spc + sps - 1) / sps;
  const std::size_t n_scenarios =
      config.scenarios.empty() ? 1 : config.scenarios.size();
  // Scheme axis = classic schemes, then tile mixes (mix m at index
  // schemes.size() + m).
  const std::size_t n_schemes =
      config.schemes.size() + config.tile_mixes.size();

  ShardPlan plan;
  plan.seeds_per_shard = sps;
  {
    Fnv h;
    h.u64(config_fingerprint(config));
    h.u64(sps);
    plan.fingerprint = h.state;
  }

  std::uint64_t cell = 0;
  for (std::uint32_t scen = 0; scen < n_scenarios; ++scen) {
    for (std::uint32_t scheme = 0; scheme < n_schemes; ++scheme) {
      for (std::uint32_t volt = 0; volt < config.voltages.size(); ++volt) {
        for (std::uint32_t chunk = 0; chunk < chunks_per_cell; ++chunk) {
          Shard shard;
          shard.id = cell * chunks_per_cell + chunk;
          shard.scenario_index = scen;
          shard.scheme_index = scheme;
          shard.voltage_index = volt;
          shard.seed_begin = config.base_seed + chunk * sps;
          shard.trial_count = std::min(sps, spc - chunk * sps);
          shard.record_base = cell * spc + chunk * sps;
          plan.shards.push_back(shard);
        }
        ++cell;
      }
    }
  }
  plan.total_records = cell * spc;
  return plan;
}

std::string shard_segment_name(std::uint64_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%06llu.ntcl",
                static_cast<unsigned long long>(shard_id));
  return buf;
}

}  // namespace ntc::faultsim
