// Scripted fault scenarios for deterministic injection campaigns.
//
// MoRS (Yüksel et al.) shows reduced-voltage SRAM faults are spatially
// correlated — rows, columns and multi-bit bursts — rather than the
// i.i.d. flips of the analytic model, and retention instability drifts
// over a device's life.  A ScenarioInjector replays a script of such
// fault events on top of (or instead of) the stochastic background
// model: every event is deterministic, armed on the array's access
// counter, optionally confined to an address range, and — for stuck
// faults — active only below a healing supply so voltage-bump recovery
// can be exercised.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"

namespace ntc::faultsim {

/// One scripted fault. Build via the factory helpers below.
struct FaultEvent {
  enum class Kind {
    StuckAt,        ///< persistent forced cells in one word
    RowStuck,       ///< forced cells across a row of consecutive words
    ColumnStuck,    ///< one bit position forced in every word
    TransientFlip,  ///< one-shot flip on the first matching read
    ReadBurst,      ///< flip mask applied on every matching read
    WriteBurst,     ///< flip mask latched by every matching write
  };

  Kind kind = Kind::StuckAt;
  /// Target word (StuckAt/TransientFlip/bursts) or first word of the
  /// row (RowStuck).
  std::uint32_t word = 0;
  /// Words covered from `word` on (RowStuck row length; 1 otherwise).
  std::uint32_t span = 1;
  /// Affected bits within each covered word.
  std::uint64_t bit_mask = 0;
  /// Values forced onto `bit_mask` cells (stuck kinds only).
  std::uint64_t stuck_value = 0;
  /// Active while arm_at <= access_count < disarm_at (array reads +
  /// writes); lets scripts model faults appearing mid-run.
  std::uint64_t arm_at_access = 0;
  std::uint64_t disarm_at_access = std::numeric_limits<std::uint64_t>::max();
  /// The fault heals at/above this supply (aging-marginal cells stop
  /// misbehaving once the rail rises); the default never heals (hard
  /// defect). Applies to stuck kinds and bursts alike.
  double heal_at_v = std::numeric_limits<double>::infinity();
  /// One-shot events (TransientFlip) fire on the first match only.
  bool once = false;

  // --- factories ---------------------------------------------------
  static FaultEvent stuck_at(std::uint32_t word, std::uint64_t bit_mask,
                             std::uint64_t stuck_value,
                             double heal_at_v =
                                 std::numeric_limits<double>::infinity());
  static FaultEvent row_stuck(std::uint32_t first_word, std::uint32_t words,
                              std::uint64_t bit_mask, std::uint64_t stuck_value,
                              double heal_at_v =
                                  std::numeric_limits<double>::infinity());
  static FaultEvent column_stuck(std::uint32_t bit, bool value,
                                 double heal_at_v =
                                     std::numeric_limits<double>::infinity());
  static FaultEvent transient_flip(std::uint32_t word, std::uint64_t bit_mask,
                                   std::uint64_t at_access = 0);
  /// k consecutive bits starting at `first_bit` flip on every read of
  /// `word` — the multi-bit burst that defeats SECDED at k=3 and OCEAN's
  /// BCH at k=5.
  static FaultEvent read_burst(std::uint32_t word, std::uint32_t first_bit,
                               std::uint32_t k,
                               double heal_at_v =
                                   std::numeric_limits<double>::infinity());
  static FaultEvent write_burst(std::uint32_t word, std::uint64_t bit_mask,
                                bool once = false);
};

/// A named fault script targeting one platform memory each.
struct Scenario {
  std::string name;
  std::vector<FaultEvent> spm_events;   ///< scratchpad (data) faults
  std::vector<FaultEvent> imem_events;  ///< instruction memory faults
  std::vector<FaultEvent> pm_events;    ///< OCEAN protected-buffer faults
};

/// Replays a FaultEvent script through the SramModule injection seam.
/// Stateful (one instance per array per run): one-shot events are
/// consumed as they fire.
class ScenarioInjector final : public sim::FaultInjector {
 public:
  explicit ScenarioInjector(std::vector<FaultEvent> events);

  /// Replace the script and restart as freshly constructed: one-shot
  /// consumption and the fired counter are cleared.  Lets a pooled
  /// platform keep one injector attached per array and reprogram it per
  /// run instead of rebuilding the injector chain (the owning array's
  /// fault state must be re-derived afterwards — Platform::reset does).
  void rearm(std::vector<FaultEvent> events);

  std::string name() const override { return "scenario"; }
  void stuck_overlay(std::uint32_t index, const sim::FaultContext& ctx,
                     std::uint64_t& mask, std::uint64_t& value) override;
  std::uint64_t access_flips(sim::AccessKind kind, std::uint32_t index,
                             const sim::FaultContext& ctx) override;
  /// True when no stuck event is windowed on the access counter, so the
  /// overlay only changes with the supply (voltage healing is fine: the
  /// array re-derives its cache on every set_vdd).
  bool overlay_is_stationary() const override { return overlay_stationary_; }

  /// Number of transient/burst flip activations so far.
  std::uint64_t events_fired() const { return events_fired_; }
  /// Stuck cells active at the given operating point (for ledgers).
  std::uint64_t active_stuck_bits(const sim::FaultContext& ctx) const;

 private:
  struct Armed {
    FaultEvent event;
    bool consumed = false;
  };
  static bool stuck_kind(FaultEvent::Kind kind);
  static bool window_open(const FaultEvent& e, const sim::FaultContext& ctx);
  static bool covers(const FaultEvent& e, std::uint32_t index,
                     const sim::FaultContext& ctx);
  void overlay_for(std::uint32_t index, const sim::FaultContext& ctx,
                   std::uint64_t& mask, std::uint64_t& value) const;

  std::vector<Armed> events_;
  std::uint64_t events_fired_ = 0;
  bool overlay_stationary_ = true;
};

}  // namespace ntc::faultsim
