// Append-only binary ledger segments with checkpointed, exact resume.
//
// One segment file per shard.  Layout:
//
//   header   magic "NTCLDGR1", version, header length, plan
//            fingerprint, shard identity (id / record_base /
//            seed_begin / trial_count), campaign total_records, the
//            build_info JSON string, CRC-32C over all of it
//   frames   CRC-framed records (common/framing.hpp), one per event:
//              Trial       — trial offset + the full RunRecord
//              ShardCommit — shard completed; always the last frame
//
// Trials are appended strictly in offset order by the single worker
// that owns the shard, so the durable state of a segment is always a
// prefix: scan_segment() walks frames until the first torn/corrupt
// byte, and `trials_durable` is exactly the trial the shard resumes
// from.  A process killed mid-write (kill -9 included) leaves at most
// one torn frame; LedgerWriter::resume() truncates the file back to
// the valid prefix before appending continues.  The commit frame is
// the checkpoint: its presence means the shard never re-runs.
//
// merge_segments() reduces any set of segments — any shard count, any
// completion order, any interleaving of runs that produced them — to
// the single-process record order via each trial's record_base +
// offset, which is what keeps the merged CSV/JSON byte-identical to
// CampaignRunner's in-process exports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "faultsim/shard.hpp"

namespace ntc {
class ByteWriter;
class ByteReader;
}  // namespace ntc

namespace ntc::faultsim {

/// Serialize/deserialize one RunRecord payload body (shared by the
/// writer, the scanner and tests; doubles travel as bit patterns so
/// round-trips are bit-exact).  Deserialization reports malformed
/// input through the reader's ok() flag.
void serialize_run_record(ByteWriter& out, const RunRecord& record);
RunRecord deserialize_run_record(ByteReader& in);

/// What a segment file durably contains.  Never throws: every flavour
/// of damage (missing file, foreign header, torn tail) degrades to a
/// shorter valid prefix plus a diagnostic.
struct SegmentScan {
  bool exists = false;
  bool header_ok = false;   ///< magic/version/CRC of the header check out
  bool completed = false;   ///< commit frame present
  std::uint32_t trials_durable = 0;
  std::uint64_t valid_bytes = 0;  ///< resume append point
  std::uint64_t torn_bytes = 0;   ///< bytes dropped past the valid prefix
  // Header identity, valid when header_ok:
  std::uint64_t fingerprint = 0;
  std::uint64_t shard_id = 0;
  std::uint64_t record_base = 0;
  std::uint64_t seed_begin = 0;
  std::uint32_t trial_count = 0;
  std::uint64_t total_records = 0;
  std::vector<RunRecord> records;  ///< filled when with_records
  std::string note;                ///< human-readable damage diagnostic
};

SegmentScan scan_segment(const std::string& path, bool with_records);

/// Appends trial and commit frames to one shard's segment.  All writes
/// go straight to the file descriptor (O_APPEND); commit() fsyncs, and
/// fsync_each_record extends that durability to every trial.
class LedgerWriter {
 public:
  /// Create/truncate `path` and write a fresh header for `shard`.
  LedgerWriter(const std::string& path, const ShardPlan& plan,
               const Shard& shard, bool fsync_each_record);
  /// Resume an existing segment: truncate to `valid_bytes` (dropping
  /// any torn tail) and append from there.  The caller has already
  /// validated the header via scan_segment().
  LedgerWriter(const std::string& path, std::uint64_t valid_bytes,
               bool fsync_each_record);
  ~LedgerWriter();
  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  void append_trial(std::uint32_t offset, const RunRecord& record);
  /// Checkpoint: the shard is complete and durable.
  void commit(std::uint32_t trial_count);

 private:
  void append_frame_bytes(const std::vector<std::uint8_t>& payload);
  std::string path_;
  int fd_ = -1;
  bool fsync_each_record_ = false;
};

/// Merged view of a set of segments.
struct MergedLedger {
  std::vector<RunRecord> records;   ///< dense, single-process order
  std::vector<bool> present;        ///< per record index
  std::uint64_t total_records = 0;  ///< from the segment headers
  std::uint64_t fingerprint = 0;
  bool complete = false;  ///< every record index present
  std::uint64_t duplicate_records = 0;  ///< re-delivered identical trials
  std::vector<std::uint64_t> incomplete_shards;  ///< no commit frame
  std::vector<std::string> notes;  ///< damage / mismatch diagnostics
};

/// Reduce segments to record order.  Segments with unreadable or
/// foreign headers are skipped with a note; torn tails are dropped as
/// scan_segment does; duplicate deliveries of one record index (a
/// retried shard re-ran a trial another segment already holds) are
/// tolerated because trials are deterministic.  Throws nothing.
MergedLedger merge_segments(const std::vector<std::string>& paths);

/// The canonical text exports, shared verbatim by CampaignRunner and
/// the ledger_merge tool — the byte-identity of merged and in-process
/// ledgers rests on there being exactly one formatter.
void write_ledger_csv(std::ostream& out, const std::vector<RunRecord>& records);
void write_ledger_json(std::ostream& out,
                       const std::vector<RunRecord>& records);
CampaignSummary summarize_records(const std::vector<RunRecord>& records);

}  // namespace ntc::faultsim
