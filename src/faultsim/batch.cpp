#include "faultsim/batch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/fixed_point.hpp"
#include "common/simd.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"
#include "energy/memory_calculator.hpp"
#include "ocean/runtime.hpp"
#include "reliability/model_tables.hpp"
#include "sim/stochastic_injector.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/fft.hpp"
#include "workloads/golden.hpp"

namespace ntc::faultsim {

namespace {

/// The SECDED code instance used to encode golden raws and decode dirty
/// words during replay.  Platform keeps its own shared singleton, but
/// the codec is stateless and deterministic, so a second instance is
/// bit-identical; a function-local static spares rebuilding the decode
/// tables per engine.
const ecc::HammingSecded& replay_secded() {
  static const ecc::HammingSecded code(32);
  return code;
}

/// Bit-exact replica of one array's StochasticInjector flip-draw
/// sequence: one gate uniform per word access in order; a gate miss
/// draws the nonzero mask via the shared conditional-chain sampler.
/// The bulk scan mirrors StochasticInjector::access_flips_burst —
/// fill_u64 gate chunks with snapshot/rewind on a flip — so the
/// consumed stream is identical to per-word draw_flip_mask calls,
/// which is what the scalar trial's per-word chain walk performs
/// (scenario injectors pin the chain length above one, disabling the
/// array's own burst fast path).
class FlipStream {
 public:
  FlipStream(const Rng& rng, double p_access, std::uint32_t stored_bits)
      : rng_(rng),
        p_access_(p_access),
        threshold_(simd::gate_threshold(
            std::pow(1.0 - p_access, static_cast<double>(stored_bits)))),
        stored_bits_(stored_bits) {}

  /// Scan `count` consecutive word accesses; invoke on_flip(offset,
  /// mask) for every access that draws a (nonzero) flip mask.
  template <typename Fn>
  void scan(std::uint64_t count, Fn&& on_flip) {
    constexpr std::uint32_t kGateChunk = 128;
    std::uint64_t gates[kGateChunk];
    std::uint64_t i = 0;
    while (i < count) {
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(count - i, kGateChunk));
      const Rng snapshot = rng_;
      rng_.fill_u64({gates, n});
      // Integer-exact gate compare (see simd::gate_threshold); the
      // vector and scalar scans agree with the double compare bit for
      // bit, so the drawn stream is kill-switch-invariant.
      const std::uint32_t flip_at = simd::find_first_gate(gates, n, threshold_);
      if (flip_at == n) {
        i += n;
        continue;
      }
      rng_ = snapshot;
      for (std::uint32_t j = 0; j <= flip_at; ++j) rng_.next_u64();
      on_flip(i + flip_at, draw_nonzero());
      i += flip_at + 1;
    }
  }

 private:
  std::uint64_t draw_nonzero() {
    return sim::draw_conditional_nonzero_flips(rng_, p_access_, stored_bits_);
  }

  Rng rng_;
  double p_access_;
  std::uint64_t threshold_;  ///< gate fires when (u >> 11) >= threshold_
  std::uint32_t stored_bits_;
};

inline std::uint64_t popcount64(std::uint64_t x) {
  return static_cast<std::uint64_t>(__builtin_popcountll(x));
}

/// A retention-stuck word: `value` is already masked by `mask`.
struct StuckWord {
  std::uint32_t word = 0;
  std::uint64_t mask = 0;
  std::uint64_t value = 0;
};

}  // namespace

/// Everything seed-invariant about one array of the traced platform.
struct BatchEngine::ArrayParams {
  reliability::AccessErrorModel access;
  reliability::NoiseMarginModel retention;
  std::uint32_t words;
  std::uint32_t stored_bits;
  std::uint64_t salt;
  /// Supplies at or above this provably retain every cell (the
  /// StochasticInjector lazy-fingerprint bound).
  double lazy_safe_vdd;
};

/// One logical memory transaction of the golden trace.
struct BatchEngine::SchemeState {
  struct Txn {
    bool is_write = false;
    std::uint32_t base = 0;
    std::uint32_t count = 0;
    std::uint32_t offset = 0;  ///< index into spm_logical / spm_raw
  };

  std::once_flag once;
  bool valid = false;
  std::string scheme_name;
  bool coded_spm = false;  ///< SPM words carry the SECDED code
  std::uint64_t cycles = 0;

  /// SPM transactions in program order with the golden data: the
  /// logical word every read returned / every write stored, plus its
  /// raw (encoded) image for the error algebra.
  std::vector<Txn> spm_txns;
  std::vector<std::uint32_t> spm_logical;
  std::vector<std::uint64_t> spm_raw;

  /// The PM is write-only on the convergent OCEAN path (restores never
  /// run), so its replay needs only the flip-draw sequence length.
  std::uint64_t pm_write_words = 0;
  bool pm_read_seen = false;  ///< capture saw a PM read -> not batchable

  std::optional<ArrayParams> spm;
  std::optional<ArrayParams> imem;
  std::optional<ArrayParams> pm;

  void add_spm(bool is_write, std::uint32_t base, const std::uint32_t* data,
               std::uint32_t count) {
    spm_logical.insert(spm_logical.end(), data, data + count);
    if (!spm_txns.empty()) {
      Txn& prev = spm_txns.back();
      if (prev.is_write == is_write && base == prev.base + prev.count) {
        prev.count += count;
        return;
      }
    }
    spm_txns.push_back(Txn{is_write, base, count,
                           static_cast<std::uint32_t>(spm_logical.size()) -
                               count});
  }
};

namespace {

/// TraceSink adapter feeding SchemeState::add_spm.
struct SpmTraceSink final : sim::EccMemory::TraceSink {
  explicit SpmTraceSink(BatchEngine::SchemeState& state) : state(state) {}
  void on_access(bool is_write, std::uint32_t base, const std::uint32_t* data,
                 std::uint32_t count) override {
    state.add_spm(is_write, base, data, count);
  }
  BatchEngine::SchemeState& state;
};

/// PM sink: the convergent replay only needs the write-word sequence
/// length; any read disqualifies the trace (it would mean a restore ran
/// on the fault-free capture, i.e. the trace is not convergent).
struct PmTraceSink final : sim::EccMemory::TraceSink {
  explicit PmTraceSink(BatchEngine::SchemeState& state) : state(state) {}
  void on_access(bool is_write, std::uint32_t base, const std::uint32_t* data,
                 std::uint32_t count) override {
    (void)base, (void)data;
    if (is_write) {
      state.pm_write_words += count;
    } else {
      state.pm_read_seen = true;
    }
  }
  BatchEngine::SchemeState& state;
};

/// Fault-free in-memory scratchpad that records the transaction stream:
/// the capture vehicle for the non-OCEAN schemes, where no platform
/// machinery is needed at all — the FFT's address stream and data are
/// what the trace consists of.
struct RecordingPort final : sim::MemoryPort {
  RecordingPort(std::uint32_t words, BatchEngine::SchemeState& state)
      : store(words, 0), state(state) {}

  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override {
    data = store[word_index];
    state.add_spm(false, word_index, &data, 1);
    return sim::AccessStatus::Ok;
  }
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override {
    store[word_index] = data;
    state.add_spm(true, word_index, &data, 1);
    return sim::AccessStatus::Ok;
  }
  std::uint32_t word_count() const override {
    return static_cast<std::uint32_t>(store.size());
  }
  sim::AccessStatus read_burst(std::uint32_t word_index,
                               std::span<std::uint32_t> data) override {
    std::copy_n(store.begin() + word_index, data.size(), data.begin());
    state.add_spm(false, word_index, data.data(),
                  static_cast<std::uint32_t>(data.size()));
    return sim::AccessStatus::Ok;
  }
  sim::AccessStatus write_burst(std::uint32_t word_index,
                                std::span<const std::uint32_t> data) override {
    std::copy(data.begin(), data.end(), store.begin() + word_index);
    state.add_spm(true, word_index, data.data(),
                  static_cast<std::uint32_t>(data.size()));
    return sim::AccessStatus::Ok;
  }

  std::vector<std::uint32_t> store;
  BatchEngine::SchemeState& state;
};

/// Process-wide registry of captured traces (the ModelTableCache
/// pattern): a capture is seed-invariant, so runners over the same
/// workload shape and platform geometry share one immutable
/// SchemeState.  Entries are tiny (the trace of one workload run) and
/// the key space is bounded by the distinct configurations a process
/// runs, so nothing is ever evicted.
struct TraceCacheEntry {
  std::mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<BatchEngine::SchemeState>>
      traces;
};

TraceCacheEntry& trace_cache() {
  static TraceCacheEntry cache;
  return cache;
}

BatchEngine::ArrayParams make_array_params(energy::MemoryStyle style,
                                           std::uint32_t bytes,
                                           std::uint32_t stored_bits,
                                           std::uint64_t salt) {
  energy::MemoryCalculator calc(style, energy::MemoryGeometry{bytes / 4, 32});
  reliability::NoiseMarginModel retention = calc.retention_model();
  const double bound = Rng::max_normal_magnitude();
  const double lazy_safe =
      std::max(retention.cell_retention_vmin(-bound).value,
               retention.cell_retention_vmin(bound).value);
  return BatchEngine::ArrayParams{calc.access_model(), std::move(retention),
                                  bytes / 4, stored_bits, salt, lazy_safe};
}

}  // namespace

BatchEngine::BatchEngine(const CampaignConfig& config,
                         sim::PlatformConfig base_platform,
                         const std::vector<std::complex<double>>& signal,
                         const std::vector<std::complex<double>>& reference,
                         const std::vector<std::uint32_t>& golden,
                         std::shared_ptr<reliability::ModelTableCache> tables)
    : config_(config),
      base_platform_(std::move(base_platform)),
      signal_(signal),
      reference_(reference),
      golden_(golden),
      tables_(std::move(tables)) {
  NTC_REQUIRE(golden_.size() == config_.fft_points);
  // The convergent-trial SNR: every trial whose readback decodes to the
  // golden words measures exactly this value, computed with the same
  // unpack/scale expressions as the scalar readback loop.
  const double scale = 1.0 / static_cast<double>(config_.fft_points);
  std::vector<std::complex<double>> measured(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i) {
    const ComplexQ15 q = ComplexQ15::unpack(golden_[i]);
    measured[i] =
        std::complex<double>(q.re.to_double(), q.im.to_double()) / scale;
  }
  golden_snr_db_ = workloads::snr_db(measured, reference_);

  schemes_.reserve(config_.schemes.size());
  TraceCacheEntry& cache = trace_cache();
  for (std::size_t i = 0; i < config_.schemes.size(); ++i) {
    const std::string key = trace_key(config_.schemes[i]);
    std::lock_guard<std::mutex> lock(cache.mutex);
    std::shared_ptr<SchemeState>& slot = cache.traces[key];
    if (!slot) slot = std::make_shared<SchemeState>();
    schemes_.push_back(slot);
  }
}

std::string BatchEngine::trace_key(mitigation::SchemeKind kind) const {
  // Everything the capture reads must appear here: the workload shape
  // (fft_points determines the campaign signal and with it the golden
  // image), the platform geometry and technology the array models
  // derive from, the capture supply and clock (OCEAN cycle totals),
  // and the OCEAN protocol knobs that shape the checkpoint/CRC
  // transaction stream.  A config field the capture starts reading
  // later must join this key.
  const ocean::OceanConfig& oc = config_.ocean;
  char key[256];
  std::snprintf(
      key, sizeof key,
      "%d|%zu|%d|%a|%a|%u|%u|%u|%u|%llu|%a|%u|%a|%a", static_cast<int>(kind),
      config_.fft_points, static_cast<int>(base_platform_.memory_style),
      base_platform_.clock.value, base_platform_.vdd.value,
      base_platform_.spm_bytes, base_platform_.imem_bytes,
      base_platform_.pm_bytes, oc.max_restore_attempts,
      static_cast<unsigned long long>(oc.crc_cycles_per_word),
      oc.fetches_per_cycle, oc.max_voltage_escalations,
      oc.escalation_step.value, oc.escalation_vmax.value);
  return key;
}

BatchEngine::~BatchEngine() = default;

bool BatchEngine::eligible(const Shard& shard) const {
  // Tile-mix cells (scheme axis past the classic schemes) run the
  // sharded multi-tile path, which the single-platform trace replay
  // does not model.
  if (shard.scheme_index >= config_.schemes.size()) return false;
  // Scripted scenario events arm on array access counters and mutate
  // one-shot injector state the trace replay does not model; only the
  // implicit no-event "background" scenario is batchable.
  const Scenario& scenario = config_.scenarios[shard.scenario_index];
  return scenario.spm_events.empty() && scenario.imem_events.empty() &&
         scenario.pm_events.empty();
}

BatchEngine::SchemeState& BatchEngine::scheme_state(
    std::uint32_t scheme_index) {
  SchemeState& state = *schemes_[scheme_index];
  std::call_once(state.once, [&] {
    capture_scheme(state, config_.schemes[scheme_index]);
  });
  return state;
}

void BatchEngine::capture_scheme(SchemeState& state,
                                 mitigation::SchemeKind kind) {
  // The capture is infrastructure, not the simulation under observation
  // (same policy as the golden-reference pass).
  NTC_TELEM_MUTE(mute);
  if (kind == mitigation::SchemeKind::Ocean) {
    capture_ocean(state);
  } else {
    capture_plain(state, kind);
  }
  if (!state.valid) return;
  // Pre-encode the golden raw image of every traced word once: replay
  // only ever XORs per-trial errors onto these.
  state.spm_raw.resize(state.spm_logical.size());
  if (state.coded_spm) {
    replay_secded().encode_words(state.spm_logical.data(),
                                 state.spm_logical.size(),
                                 state.spm_raw.data());
  } else {
    std::copy(state.spm_logical.begin(), state.spm_logical.end(),
              state.spm_raw.begin());
  }
}

void BatchEngine::capture_plain(SchemeState& state,
                                mitigation::SchemeKind kind) {
  const bool secded = kind == mitigation::SchemeKind::Secded;
  state.scheme_name = secded ? mitigation::secded_scheme().name
                             : mitigation::no_mitigation().name;
  state.coded_spm = secded;
  state.spm = make_array_params(base_platform_.memory_style,
                                base_platform_.spm_bytes, secded ? 39 : 32,
                                0x20);
  state.imem = make_array_params(base_platform_.memory_style,
                                 base_platform_.imem_bytes, secded ? 39 : 32,
                                 0x10);

  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);
  RecordingPort port(base_platform_.spm_bytes / 4, state);
  fft.initialize(port);
  std::uint64_t cycles = 0;
  bool memory_fault = false;
  for (std::size_t phase = 0; phase < fft.phase_count(); ++phase) {
    const workloads::PhaseResult result = fft.run_phase(phase, port);
    cycles += result.compute_cycles;
    memory_fault = memory_fault || result.memory_fault;
  }
  // The scalar trial's readback pass traverses the memory path too —
  // synthesize the identical word-sequence read.
  std::vector<std::uint32_t> readback(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i)
    port.read_word(static_cast<std::uint32_t>(i), readback[i]);
  state.cycles = cycles;
  state.valid = !memory_fault && readback == golden_;
}

void BatchEngine::capture_ocean(SchemeState& state) {
  state.scheme_name = mitigation::ocean_scheme().name;
  state.coded_spm = true;  // SPM keeps SECDED under OCEAN
  state.spm = make_array_params(base_platform_.memory_style,
                                base_platform_.spm_bytes, 39, 0x20);
  state.imem = make_array_params(base_platform_.memory_style,
                                 base_platform_.imem_bytes, 39, 0x10);
  const std::uint32_t pm_bits =
      static_cast<std::uint32_t>(ecc::ocean_buffer_code().code_bits());
  state.pm = make_array_params(base_platform_.memory_style,
                               base_platform_.pm_bytes, pm_bits, 0x30);

  // The OCEAN protocol interleaves checkpoint DMA and CRC sweeps with
  // the workload, so the trace is captured from a real (fault-free)
  // platform run with sinks on both arrays.
  sim::PlatformConfig pc = base_platform_;
  pc.scheme = mitigation::SchemeKind::Ocean;
  pc.inject_faults = false;
  sim::Platform platform(pc);
  SpmTraceSink spm_sink(state);
  PmTraceSink pm_sink(state);
  platform.spm().set_trace_sink(&spm_sink);
  platform.pm()->set_trace_sink(&pm_sink);

  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);
  ocean::OceanRuntime runtime(platform, config_.ocean);
  const ocean::OceanRunOutcome outcome = runtime.run(fft);

  std::vector<std::uint32_t> readback(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i)
    platform.spm().read_word(static_cast<std::uint32_t>(i), readback[i]);
  platform.spm().set_trace_sink(nullptr);
  platform.pm()->set_trace_sink(nullptr);

  state.cycles = platform.total_cycles();
  state.valid = outcome.completed && !outcome.system_failure &&
                outcome.stats.crc_mismatches == 0 &&
                outcome.stats.restores == 0 && !state.pm_read_seen &&
                readback == golden_;
}

bool BatchEngine::replay_trial(const SchemeState& state, Volt vdd,
                               std::uint64_t seed, RunRecord& out) const {
  const bool stochastic = base_platform_.inject_faults;
  std::uint64_t stuck_bits = 0;
  std::uint64_t injected_flips = 0;
  std::uint64_t corrected_words = 0;

  // --- per-array fault-state derivation, exactly the scalar reset path:
  // stream = Rng(seed).fork(salt); sigma fingerprint via fork(0x51d3)
  // through the shared table cache; stuck values via fork(0x57).
  const auto derive =
      [&](const ArrayParams& ap, Rng& stream, double& p_access,
          std::shared_ptr<const reliability::RetentionVminTable>& table,
          std::size_t& failing) {
        stream = Rng(seed).fork(ap.salt);
        p_access = 0.0;
        table = nullptr;
        failing = 0;
        if (!stochastic) return;
        p_access = tables_->p_access(ap.access, vdd);
        if (vdd.value < ap.lazy_safe_vdd) {
          const std::uint64_t sigma_seed = stream.fork(0x51d3).seed();
          table = tables_->retention_vmin(
              ap.retention, sigma_seed,
              static_cast<std::size_t>(ap.words) * ap.stored_bits);
          failing = table->failing_count(vdd);
        }
      };

  Rng stream{0};
  double p_access = 0.0;
  std::shared_ptr<const reliability::RetentionVminTable> table;
  std::size_t failing = 0;

  // Instruction memory: never accessed by the execution-driven FFT
  // (fetches are charged as counts, not transactions), so it
  // contributes only its stuck-cell population to the record.
  derive(*state.imem, stream, p_access, table, failing);
  stuck_bits += failing;

  // Protected memory: write-only on the convergent path, so the replay
  // reduces to the write-flip draw sequence (masks are counted but no
  // word is ever read back).
  if (state.pm) {
    derive(*state.pm, stream, p_access, table, failing);
    stuck_bits += failing;
    if (p_access > 0.0 && state.pm_write_words > 0) {
      FlipStream flips(stream, p_access, state.pm->stored_bits);
      flips.scan(state.pm_write_words,
                 [&](std::uint64_t, std::uint64_t mask) {
                   injected_flips += popcount64(mask);
                 });
    }
  }

  // --- scratchpad: the traced transaction walk.
  derive(*state.spm, stream, p_access, table, failing);
  stuck_bits += failing;

  // Sparse stuck state, rebuilt exactly like rebuild_stuck_state: the
  // failing cells are the first `failing` of the descending-V_min table,
  // revisited in ascending cell order for the value redraw.
  std::vector<StuckWord> stuck;
  if (failing > 0) {
    std::vector<std::uint32_t> cells(table->cell_desc.begin(),
                                     table->cell_desc.begin() + failing);
    std::sort(cells.begin(), cells.end());
    Rng stuck_rng = stream.fork(0x57);
    const std::uint32_t bits = state.spm->stored_bits;
    for (const std::uint32_t cell : cells) {
      const std::uint32_t word = cell / bits;
      const std::uint64_t bit = std::uint64_t{1} << (cell % bits);
      if (stuck.empty() || stuck.back().word != word)
        stuck.push_back(StuckWord{word, 0, 0});
      stuck.back().mask |= bit;
      if (stuck_rng.bernoulli(0.5)) stuck.back().value |= bit;
    }
  }

  // Persistent word errors relative to the golden raw image.  The array
  // reset commits the stuck overlay into the zeroed words, so a stuck
  // word deviates by its stuck value until first (re)written; after a
  // write the deviation is exactly the write-flip mask.
  std::map<std::uint32_t, std::uint64_t> werr;
  for (const StuckWord& sw : stuck)
    if (sw.value != 0) werr.emplace(sw.word, sw.value);

  FlipStream flips(stream, p_access, state.spm->stored_bits);
  const bool draws = stochastic && p_access > 0.0;

  std::vector<std::pair<std::uint32_t, std::uint64_t>> txn_flips;
  std::vector<std::uint32_t> dirty_words;
  std::vector<std::uint64_t> dirty_raw;
  std::vector<std::uint32_t> dirty_data;
  std::vector<std::uint32_t> decode_words_idx;
  // Column (SoA) buffers for the vectorized deviation algebra.
  std::vector<std::uint64_t> dev_golden, dev_werr, dev_mask, dev_value,
      dev_flip, dev_error;

  const auto stuck_lower = [&](std::uint32_t word) {
    return std::lower_bound(stuck.begin(), stuck.end(), word,
                            [](const StuckWord& sw, std::uint32_t w) {
                              return sw.word < w;
                            });
  };

  for (const SchemeState::Txn& txn : state.spm_txns) {
    const std::uint32_t end = txn.base + txn.count;
    txn_flips.clear();
    if (draws) {
      flips.scan(txn.count, [&](std::uint64_t at, std::uint64_t mask) {
        txn_flips.emplace_back(static_cast<std::uint32_t>(at), mask);
        injected_flips += popcount64(mask);
      });
    }
    if (txn.is_write) {
      // Every written word latches cleanly except where a write flip
      // landed: clean writes erase the word's persistent error, flipped
      // ones replace it with the flip mask.
      if (!werr.empty())
        werr.erase(werr.lower_bound(txn.base), werr.lower_bound(end));
      for (const auto& [at, mask] : txn_flips) werr[txn.base + at] = mask;
      continue;
    }

    // Read: gather the words whose raw image can deviate from golden.
    const auto stuck_it = stuck_lower(txn.base);
    const bool stuck_in_range =
        stuck_it != stuck.end() && stuck_it->word < end;
    const auto werr_it = werr.lower_bound(txn.base);
    const bool werr_in_range = werr_it != werr.end() && werr_it->first < end;
    if (txn_flips.empty() && !stuck_in_range && !werr_in_range) continue;

    dirty_words.clear();
    for (auto it = stuck_it; it != stuck.end() && it->word < end; ++it)
      dirty_words.push_back(it->word);
    for (auto it = werr_it; it != werr.end() && it->first < end; ++it)
      dirty_words.push_back(it->first);
    for (const auto& [at, mask] : txn_flips)
      dirty_words.push_back(txn.base + at);
    std::sort(dirty_words.begin(), dirty_words.end());
    dirty_words.erase(std::unique(dirty_words.begin(), dirty_words.end()),
                      dirty_words.end());

    // Gather the algebra inputs into columns, then sweep them with the
    // vector kernel: raw-as-read = ((golden ^ werr) & ~m | v) ^ flip,
    // so its deviation from the golden raw is
    //   (we & ~m) ^ ((golden_raw & m) ^ v) ^ flip.
    const std::size_t total = dirty_words.size();
    dev_golden.resize(total);
    dev_werr.resize(total);
    dev_mask.resize(total);
    dev_value.resize(total);
    dev_flip.resize(total);
    dev_error.resize(total);
    for (std::size_t wi = 0; wi < total; ++wi) {
      const std::uint32_t word = dirty_words[wi];
      std::uint64_t m = 0, v = 0;
      const auto sit = stuck_lower(word);
      if (sit != stuck.end() && sit->word == word) {
        m = sit->mask;
        v = sit->value;
      }
      std::uint64_t we = 0;
      if (const auto wit = werr.find(word); wit != werr.end())
        we = wit->second;
      std::uint64_t flip = 0;
      const auto fit = std::lower_bound(
          txn_flips.begin(), txn_flips.end(), word - txn.base,
          [](const auto& a, std::uint32_t at) { return a.first < at; });
      if (fit != txn_flips.end() && fit->first == word - txn.base)
        flip = fit->second;
      dev_golden[wi] = state.spm_raw[txn.offset + (word - txn.base)];
      dev_werr[wi] = we;
      dev_mask[wi] = m;
      dev_value[wi] = v;
      dev_flip[wi] = flip;
    }
    dirty_raw.clear();
    decode_words_idx.clear();
    for (std::size_t base = 0; base < total; base += 64) {
      const std::size_t n = std::min<std::size_t>(64, total - base);
      const std::uint64_t dirty = simd::deviation_sweep(
          dev_golden.data() + base, dev_werr.data() + base,
          dev_mask.data() + base, dev_value.data() + base,
          dev_flip.data() + base, n, dev_error.data() + base);
      if (dirty == 0) continue;
      if (!state.coded_spm) return false;  // bare word corrupted -> peel
      for (std::uint64_t bits = dirty; bits != 0; bits &= bits - 1) {
        const std::size_t idx =
            base + static_cast<std::size_t>(std::countr_zero(bits));
        dirty_raw.push_back(dev_golden[idx] ^ dev_error[idx]);
        decode_words_idx.push_back(dirty_words[idx]);
      }
    }
    if (dirty_raw.empty()) continue;
    dirty_data.resize(dirty_raw.size());
    ecc::BatchDecodeSummary summary;
    replay_secded().decode_words(dirty_raw.data(), dirty_raw.size(),
                                 dirty_data.data(), summary);
    if (summary.uncorrectable_words > 0) return false;
    for (std::size_t i = 0; i < decode_words_idx.size(); ++i) {
      const std::uint32_t word = decode_words_idx[i];
      if (dirty_data[i] != state.spm_logical[txn.offset + (word - txn.base)])
        return false;  // miscorrection: downstream data diverges
    }
    corrected_words += summary.corrected_words;
  }

  // Convergent: every traced read returned the golden data, so the
  // outcome, SNR and cycle count are the trace's.
  out.vdd = vdd.value;
  out.seed = seed;
  out.snr_db = golden_snr_db_;
  out.cycles = state.cycles;
  out.corrected_words = corrected_words;
  out.uncorrectable_words = 0;
  out.injected_flips = injected_flips;
  out.stuck_bits = stuck_bits;
  out.scenario_events_fired = 0;
  out.ocean_restores = 0;
  out.ocean_voltage_escalations = 0;
  const bool any_fault_activity =
      corrected_words > 0 || injected_flips > 0 || stuck_bits > 0;
  out.outcome =
      any_fault_activity ? RunOutcome::Corrected : RunOutcome::Clean;
  return true;
}

void BatchEngine::run_batch(const Shard& shard, std::uint32_t offset,
                            std::uint32_t count, RunRecord* out,
                            std::vector<std::uint32_t>& peel) {
  NTC_REQUIRE(shard.scheme_index < config_.schemes.size());
  NTC_REQUIRE(static_cast<std::uint64_t>(offset) + count <=
              shard.trial_count);
  SchemeState& state = scheme_state(shard.scheme_index);
  batched_trials_.fetch_add(count, std::memory_order_relaxed);
  if (!state.valid) {
    for (std::uint32_t k = 0; k < count; ++k) peel.push_back(k);
    peeled_trials_.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  const Scenario& scenario = config_.scenarios[shard.scenario_index];
  const Volt vdd = config_.voltages[shard.voltage_index];
  std::uint32_t convergent = 0;
  for (std::uint32_t k = 0; k < count; ++k) {
    RunRecord record;
    if (replay_trial(state, vdd, shard.seed_begin + offset + k, record)) {
      record.scenario = scenario.name;
      record.scheme = state.scheme_name;
      out[k] = std::move(record);
      ++convergent;
    } else {
      peel.push_back(k);
    }
  }
  convergent_trials_.fetch_add(convergent, std::memory_order_relaxed);
  peeled_trials_.fetch_add(count - convergent, std::memory_order_relaxed);
  if (convergent > 0) {
    // Keep the one-trace-event-per-trial invariant the scalar path
    // establishes, but settle the whole chunk with a single bulk record
    // — a per-trial ScopedSpan inside the replay loop costs two clock
    // reads per trial, which showed up as >3% campaign overhead.
    // Peeled trials get their span from the scalar rerun.
    NTC_TELEM_EVENTS(telemetry::EventKind::CampaignTrial, "campaign_trial",
                     convergent, shard.seed_begin + offset, 0);
    // The scalar path counts trials one by one; the batch path settles
    // its convergent trials in bulk (peeled ones are re-counted by the
    // scalar rerun).
    NTC_TELEM_COUNT("ntc_campaign_trials_total", convergent);
    NTC_TELEM_COUNT("ntc_batch_trials_total", convergent);
  }
  if (count - convergent > 0)
    NTC_TELEM_COUNT("ntc_batch_peeled_trials_total", count - convergent);
}

BatchStats BatchEngine::stats() const {
  BatchStats stats;
  stats.batched_trials = batched_trials_.load(std::memory_order_relaxed);
  stats.convergent_trials =
      convergent_trials_.load(std::memory_order_relaxed);
  stats.peeled_trials = peeled_trials_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ntc::faultsim
