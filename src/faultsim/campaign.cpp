#include "faultsim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/atomic_file.hpp"
#include "common/fixed_point.hpp"
#include "faultsim/batch.hpp"
#include "faultsim/ledger.hpp"
#include "multitile/sharded_fft.hpp"
#include "multitile/tiled_pool.hpp"
#include "reliability/model_tables.hpp"
#include "sim/platform.hpp"
#include "sim/platform_pool.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/fft.hpp"
#include "workloads/golden.hpp"

namespace ntc::faultsim {

namespace {

/// The two-tone test signal of the Figure 8/9 benches.
std::vector<std::complex<double>> campaign_signal(std::size_t n) {
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    x[i] = 0.28 * std::sin(2.0 * M_PI * 17.0 * t) +
           0.18 * std::cos(2.0 * M_PI * 101.0 * t);
  }
  return x;
}

/// The scripted injectors living on a pooled platform's arrays, rearmed
/// per grid cell (kept alive through the pool slot's client_state).
struct InjectorSet {
  std::shared_ptr<ScenarioInjector> spm;
  std::shared_ptr<ScenarioInjector> imem;
  std::shared_ptr<ScenarioInjector> pm;  ///< null unless the platform has a PM
};

/// Per-array injectors of a pooled TiledPlatform: one per shared-memory
/// bank, one per tile I-mem, one per OCEAN tile PM.
struct TiledInjectorSet {
  std::vector<std::shared_ptr<ScenarioInjector>> banks;
  std::vector<std::shared_ptr<ScenarioInjector>> imems;
  std::vector<std::shared_ptr<ScenarioInjector>> pms;  ///< null per non-OCEAN tile
};

/// Translate a scenario's scratchpad script onto the banked arrays.
/// Word-addressed events land on the bank the interleave map assigns
/// their word (the event's word becomes the in-bank offset); column
/// faults are physical per-array defects and replicate on every bank.
/// At one bank the map is the identity, so the classic script arrives
/// verbatim — the 1x1 ledger-identity hinge.  Row spans are NOT split
/// across banks: a RowStuck models a physical row defect, which after
/// banking lives inside one array.
std::vector<std::vector<FaultEvent>> split_spm_events(
    const std::vector<FaultEvent>& events,
    const multitile::BankedMemory& banks) {
  std::vector<std::vector<FaultEvent>> out(banks.bank_count());
  for (const FaultEvent& e : events) {
    if (e.kind == FaultEvent::Kind::ColumnStuck) {
      for (auto& bank_events : out) bank_events.push_back(e);
    } else {
      const multitile::BankAddress a = banks.map(e.word);
      FaultEvent moved = e;
      moved.word = a.offset;
      out[a.bank].push_back(moved);
    }
  }
  return out;
}

const char* short_scheme_label(mitigation::SchemeKind kind) {
  switch (kind) {
    case mitigation::SchemeKind::NoMitigation: return "none";
    case mitigation::SchemeKind::Secded: return "secded";
    case mitigation::SchemeKind::Ocean: return "ocean";
    case mitigation::SchemeKind::Custom: return "custom";
  }
  return "?";
}

/// Plain array standing in for the reference platform's scratchpad: at
/// NoMitigation with injection off the memory path is bit-transparent
/// storage, so the golden pass needs no platform at all.
struct GoldenPort final : sim::MemoryPort {
  explicit GoldenPort(std::uint32_t words) : store(words, 0) {}
  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override {
    data = store[word_index];
    return sim::AccessStatus::Ok;
  }
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override {
    store[word_index] = data;
    return sim::AccessStatus::Ok;
  }
  std::uint32_t word_count() const override {
    return static_cast<std::uint32_t>(store.size());
  }
  std::vector<std::uint32_t> store;
};

}  // namespace

TileMixSpec normalize_tile_mix(TileMixSpec mix) {
  NTC_REQUIRE_MSG(mix.tiles >= 1 && (mix.tiles & (mix.tiles - 1)) == 0,
                  "tile count must be a power of two");
  NTC_REQUIRE_MSG(mix.banks >= 1 && (mix.banks & (mix.banks - 1)) == 0,
                  "bank count must be a power of two");
  if (mix.schemes.empty())
    mix.schemes.push_back(mitigation::SchemeKind::Secded);
  NTC_REQUIRE_MSG(mix.schemes.size() <= mix.tiles,
                  "more per-tile schemes than tiles");
  const std::size_t given = mix.schemes.size();
  for (std::size_t t = given; t < mix.tiles; ++t)
    mix.schemes.push_back(mix.schemes[t % given]);
  if (mix.name.empty()) {
    if (mix.tiles == 1 && mix.banks == 1) {
      // The degenerate mix IS the classic platform; carrying the classic
      // scheme name keeps its ledger rows byte-identical.
      switch (mix.schemes.front()) {
        case mitigation::SchemeKind::Secded:
          mix.name = mitigation::secded_scheme().name;
          break;
        case mitigation::SchemeKind::Ocean:
          mix.name = mitigation::ocean_scheme().name;
          break;
        default:
          mix.name = mitigation::no_mitigation().name;
          break;
      }
    } else {
      mix.name = "t" + std::to_string(mix.tiles) + "b" +
                 std::to_string(mix.banks) + ":";
      for (std::size_t t = 0; t < mix.schemes.size(); ++t) {
        if (t > 0) mix.name += '+';
        mix.name += short_scheme_label(mix.schemes[t]);
      }
    }
  }
  return mix;
}

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::Clean: return "clean";
    case RunOutcome::Corrected: return "corrected";
    case RunOutcome::DetectedUncorrectable: return "detected-uncorrectable";
    case RunOutcome::SilentDataCorruption: return "silent-data-corruption";
    case RunOutcome::SystemFailure: return "system-failure";
  }
  return "?";
}

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config)),
      tables_(std::make_shared<reliability::ModelTableCache>()) {
  NTC_REQUIRE(!config_.voltages.empty());
  NTC_REQUIRE(!config_.schemes.empty() || !config_.tile_mixes.empty());
  NTC_REQUIRE(config_.seeds_per_cell >= 1);
  NTC_REQUIRE(config_.fft_points >= 4 &&
              (config_.fft_points & (config_.fft_points - 1)) == 0);
  for (TileMixSpec& mix : config_.tile_mixes) {
    mix = normalize_tile_mix(std::move(mix));
    NTC_REQUIRE_MSG(config_.fft_points % mix.tiles == 0 &&
                        config_.fft_points / mix.tiles >= 4,
                    "tile mix needs at least 4 FFT points per tile");
  }
  if (config_.scenarios.empty())
    config_.scenarios.push_back(Scenario{"background", {}, {}, {}});
  signal_ = campaign_signal(config_.fft_points);
  reference_ = workloads::reference_fft(signal_);
}

CampaignRunner::~CampaignRunner() = default;

sim::PlatformConfig CampaignRunner::platform_base_config() const {
  sim::PlatformConfig pc;
  pc.memory_style = config_.style;
  pc.vdd = config_.voltages.front();
  pc.clock = config_.clock;
  pc.spm_bytes = std::max<std::uint32_t>(
      8 * 1024, static_cast<std::uint32_t>(config_.fft_points) * 4);
  pc.pm_bytes = static_cast<std::uint32_t>(config_.fft_points) * 8;
  pc.seed = config_.base_seed;
  pc.inject_faults = config_.stochastic_background;
  pc.tables = tables_;
  return pc;
}

void CampaignRunner::compute_golden() {
  // Fault-free reference pass: the fixed-point pipeline is
  // deterministic, so one golden image serves every grid cell (and, the
  // config being fixed at construction, every run() call).  A bare
  // array replaces the NoMitigation platform this used to build — the
  // fault-free raw path stores and returns words verbatim, so the image
  // is bit-identical and prepare() sheds a whole platform construction.
  if (golden_computed_) return;
  // Muted like the batch engine's golden record pass: the fault-free
  // reference run's workload spans are not campaign telemetry, and the
  // clock reads they cost show up as pure overhead on small grids.
  NTC_TELEM_MUTE(mute);
  GoldenPort port(platform_base_config().spm_bytes / 4);
  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);
  fft.initialize(port);
  for (std::size_t phase = 0; phase < fft.phase_count(); ++phase)
    (void)fft.run_phase(phase, port);

  golden_.resize(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i)
    port.read_word(static_cast<std::uint32_t>(i), golden_[i]);
  golden_computed_ = true;
}

RunRecord CampaignRunner::execute_one(const Scenario& scenario,
                                      mitigation::SchemeKind scheme, Volt vdd,
                                      std::uint64_t seed,
                                      sim::PlatformPool& pool) const {
  RunRecord record;
  record.scenario = scenario.name;
  record.vdd = vdd.value;
  record.seed = seed;
  NTC_TELEM_SPAN(trial_span, telemetry::EventKind::CampaignTrial,
                 "campaign_trial");

  // A pooled platform plus rearm/reset is observationally identical to
  // the fresh platform-per-run this replaces: the scripted injectors
  // are reprogrammed with this cell's script, then reset re-derives the
  // whole fault state over this cell's seed and supply.
  sim::PlatformPool::Slot& slot = pool.acquire(scheme);
  sim::Platform& platform = *slot.platform;
  if (!slot.client_state) {
    auto injectors = std::make_shared<InjectorSet>();
    injectors->spm =
        std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
    injectors->imem =
        std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
    platform.spm().array().attach_injector(injectors->spm);
    platform.imem().array().attach_injector(injectors->imem);
    if (platform.pm() != nullptr) {
      injectors->pm =
          std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
      platform.pm()->array().attach_injector(injectors->pm);
    }
    slot.client_state = injectors;
  }
  InjectorSet& injectors =
      *static_cast<InjectorSet*>(slot.client_state.get());
  ScenarioInjector& spm_injector = *injectors.spm;
  ScenarioInjector& imem_injector = *injectors.imem;
  ScenarioInjector* pm_injector = injectors.pm.get();
  spm_injector.rearm(scenario.spm_events);
  imem_injector.rearm(scenario.imem_events);
  if (pm_injector != nullptr) pm_injector->rearm(scenario.pm_events);
  platform.reset(seed, vdd);
  record.scheme = platform.scheme().name;

  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);

  bool system_failure = false;
  std::uint64_t faulted_phases = 0;
  if (scheme == mitigation::SchemeKind::Ocean) {
    ocean::OceanRuntime runtime(platform, config_.ocean);
    const ocean::OceanRunOutcome outcome = runtime.run(fft);
    system_failure = outcome.system_failure;
    record.ocean_restores = outcome.stats.restores;
    record.ocean_voltage_escalations = outcome.stats.voltage_escalations;
    faulted_phases = outcome.stats.crc_mismatches;
  } else {
    faulted_phases = ocean::run_unprotected(platform, fft);
  }

  // One readback pass serves both the golden comparison and the SNR —
  // it traverses the faulty memory path, so read-time corruption of the
  // result is classified like any other fault.
  std::vector<std::uint32_t> measured_words(config_.fft_points);
  std::vector<std::complex<double>> measured(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i) {
    platform.spm().read_word(static_cast<std::uint32_t>(i), measured_words[i]);
    const ComplexQ15 q = ComplexQ15::unpack(measured_words[i]);
    measured[i] = std::complex<double>(q.re.to_double(), q.im.to_double()) /
                  fft.output_scale();
  }
  record.snr_db = workloads::snr_db(measured, reference_);
  record.cycles = platform.total_cycles();

  auto tally = [&](const sim::EccMemory* mem) {
    if (mem == nullptr) return;
    record.corrected_words += mem->stats().corrected_words;
    record.uncorrectable_words += mem->stats().uncorrectable_words;
    record.injected_flips += mem->array().stats().injected_read_flips +
                             mem->array().stats().injected_write_flips;
    record.stuck_bits += mem->array().stats().stuck_bits;
  };
  tally(&platform.spm());
  tally(&platform.imem());
  tally(platform.pm());
  record.scenario_events_fired =
      spm_injector.events_fired() + imem_injector.events_fired() +
      (pm_injector != nullptr ? pm_injector->events_fired() : 0);

  const bool output_ok = measured_words == golden_;
  const bool detected = record.uncorrectable_words > 0 || faulted_phases > 0;
  const bool any_fault_activity =
      detected || record.corrected_words > 0 || record.injected_flips > 0 ||
      record.stuck_bits > 0 || record.scenario_events_fired > 0 ||
      record.ocean_restores > 0;
  if (system_failure) {
    record.outcome = RunOutcome::SystemFailure;
  } else if (!output_ok) {
    record.outcome = detected ? RunOutcome::DetectedUncorrectable
                              : RunOutcome::SilentDataCorruption;
  } else {
    record.outcome =
        any_fault_activity ? RunOutcome::Corrected : RunOutcome::Clean;
  }
  trial_span.set_args(seed, static_cast<std::uint64_t>(record.outcome));
  NTC_TELEM_COUNT("ntc_campaign_trials_total", 1);
  return record;
}

multitile::TiledPlatformConfig CampaignRunner::tiled_base_config(
    const TileMixSpec& mix) const {
  multitile::TiledPlatformConfig tc;
  tc.memory_style = config_.style;
  tc.tile_schemes = mix.schemes;
  tc.banks = mix.banks;
  tc.vdd = config_.voltages.front();
  tc.clock = config_.clock;
  // Same geometry rules as platform_base_config: a 1-tile/1-bank mix
  // must build byte-for-byte the arrays the classic platform builds.
  tc.shared_bytes = std::max<std::uint32_t>(
      8 * 1024, static_cast<std::uint32_t>(config_.fft_points) * 4);
  tc.pm_bytes = static_cast<std::uint32_t>(config_.fft_points) * 8;
  tc.seed = config_.base_seed;
  tc.inject_faults = config_.stochastic_background;
  tc.tables = tables_;
  return tc;
}

RunRecord CampaignRunner::execute_one_tiled(const Scenario& scenario,
                                            std::size_t mix_index, Volt vdd,
                                            std::uint64_t seed,
                                            multitile::TiledPool& pool) const {
  const TileMixSpec& mix = config_.tile_mixes[mix_index];
  RunRecord record;
  record.scenario = scenario.name;
  record.vdd = vdd.value;
  record.seed = seed;
  NTC_TELEM_SPAN(trial_span, telemetry::EventKind::CampaignTrial,
                 "campaign_trial");

  multitile::TiledPool::Slot& slot =
      pool.acquire(mix_index, [&] { return tiled_base_config(mix); });
  multitile::TiledPlatform& platform = *slot.platform;
  if (!slot.client_state) {
    auto injectors = std::make_shared<TiledInjectorSet>();
    injectors->banks.resize(platform.bank_count());
    for (std::uint32_t b = 0; b < platform.bank_count(); ++b) {
      injectors->banks[b] =
          std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
      platform.shared().banks().bank(b).attach_injector(injectors->banks[b]);
    }
    injectors->imems.resize(platform.tile_count());
    injectors->pms.resize(platform.tile_count());
    for (std::uint32_t t = 0; t < platform.tile_count(); ++t) {
      injectors->imems[t] =
          std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
      platform.imem(t).array().attach_injector(injectors->imems[t]);
      if (platform.pm(t) != nullptr) {
        injectors->pms[t] =
            std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
        platform.pm(t)->array().attach_injector(injectors->pms[t]);
      }
    }
    slot.client_state = injectors;
  }
  TiledInjectorSet& injectors =
      *static_cast<TiledInjectorSet*>(slot.client_state.get());
  // Scratchpad events route through the bank map; each private I-mem
  // (and each OCEAN PM) replays the classic per-array script, so every
  // tile faces the fault environment the single-core platform faced.
  const std::vector<std::vector<FaultEvent>> per_bank =
      split_spm_events(scenario.spm_events, platform.shared().banks());
  for (std::uint32_t b = 0; b < platform.bank_count(); ++b)
    injectors.banks[b]->rearm(per_bank[b]);
  for (std::uint32_t t = 0; t < platform.tile_count(); ++t) {
    injectors.imems[t]->rearm(scenario.imem_events);
    if (injectors.pms[t]) injectors.pms[t]->rearm(scenario.pm_events);
  }
  platform.reset(seed, vdd);
  record.scheme = mix.name;

  multitile::ShardedFft fft(platform, config_.fft_points, config_.ocean);
  fft.set_input(signal_);
  const multitile::ShardedFft::RunResult run = fft.run();
  record.ocean_restores = run.ocean_restores;
  record.ocean_voltage_escalations = run.ocean_voltage_escalations;
  // OCEAN tiles signal detection through CRC mismatches, unprotected
  // tiles (and the cross-shard stages) through faulted phases — the
  // union is the classic "detected" signal.
  const std::uint64_t faulted_phases = run.faulted_phases + run.crc_mismatches;

  // Readback in logical order through the decoding shared-memory path,
  // exactly like the classic readback through the scratchpad.
  std::vector<std::uint32_t> measured_words(config_.fft_points);
  std::vector<std::complex<double>> measured(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i) {
    platform.shared().read_word(
        fft.physical_index(static_cast<std::uint32_t>(i)), measured_words[i]);
    const ComplexQ15 q = ComplexQ15::unpack(measured_words[i]);
    measured[i] = std::complex<double>(q.re.to_double(), q.im.to_double()) /
                  fft.output_scale();
  }
  record.snr_db = workloads::snr_db(measured, reference_);
  record.cycles = platform.total_cycles();
  record.contention_cycles = platform.contention_cycles();

  for (std::size_t r = 0; r < platform.shared().region_count(); ++r) {
    const sim::EccMemoryStats& stats = platform.shared().region(r).stats;
    record.corrected_words += stats.corrected_words;
    record.uncorrectable_words += stats.uncorrectable_words;
  }
  for (std::uint32_t b = 0; b < platform.bank_count(); ++b) {
    const sim::SramStats& stats = platform.shared().banks().bank(b).stats();
    record.injected_flips +=
        stats.injected_read_flips + stats.injected_write_flips;
    record.stuck_bits += stats.stuck_bits;
  }
  auto tally = [&](const sim::EccMemory* mem) {
    if (mem == nullptr) return;
    record.corrected_words += mem->stats().corrected_words;
    record.uncorrectable_words += mem->stats().uncorrectable_words;
    record.injected_flips += mem->array().stats().injected_read_flips +
                             mem->array().stats().injected_write_flips;
    record.stuck_bits += mem->array().stats().stuck_bits;
  };
  for (std::uint32_t t = 0; t < platform.tile_count(); ++t) {
    tally(&platform.imem(t));
    tally(platform.pm(t));
  }
  for (const auto& injector : injectors.banks)
    record.scenario_events_fired += injector->events_fired();
  for (const auto& injector : injectors.imems)
    record.scenario_events_fired += injector->events_fired();
  for (const auto& injector : injectors.pms)
    if (injector) record.scenario_events_fired += injector->events_fired();

  const bool output_ok = measured_words == golden_;
  const bool detected = record.uncorrectable_words > 0 || faulted_phases > 0;
  const bool any_fault_activity =
      detected || record.corrected_words > 0 || record.injected_flips > 0 ||
      record.stuck_bits > 0 || record.scenario_events_fired > 0 ||
      record.ocean_restores > 0;
  if (run.system_failure) {
    record.outcome = RunOutcome::SystemFailure;
  } else if (!output_ok) {
    record.outcome = detected ? RunOutcome::DetectedUncorrectable
                              : RunOutcome::SilentDataCorruption;
  } else {
    record.outcome =
        any_fault_activity ? RunOutcome::Corrected : RunOutcome::Clean;
  }
  trial_span.set_args(seed, static_cast<std::uint64_t>(record.outcome));
  NTC_TELEM_COUNT("ntc_campaign_trials_total", 1);
  return record;
}

ShardPlan CampaignRunner::shard_plan(std::uint32_t seeds_per_shard) const {
  return make_shard_plan(config_, seeds_per_shard);
}

void CampaignRunner::prepare() {
  compute_golden();
  // Workers and their platform pools persist across run() calls: the
  // executor parks between jobs instead of being respawned, and each
  // worker resets its pooled platforms rather than rebuilding them.
  if (!executor_) {
    executor_ = std::make_unique<Executor>(config_.threads);
    pools_.resize(executor_->worker_count());
    tiled_pools_.resize(executor_->worker_count());
  }
  if (!batch_) {
    if (const char* env = std::getenv("NTC_BATCH_TRIALS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0)
        batch_width_ = static_cast<std::uint32_t>(
            std::min<unsigned long>(v, 4096));
    }
    batch_ = std::make_unique<BatchEngine>(config_, platform_base_config(),
                                           signal_, reference_, golden_,
                                           tables_);
  }
}

Executor& CampaignRunner::executor() {
  prepare();
  return *executor_;
}

RunRecord CampaignRunner::execute_shard_trial(const Shard& shard,
                                              std::uint32_t offset,
                                              unsigned worker) {
  NTC_REQUIRE(golden_computed_ && worker < pools_.size());
  NTC_REQUIRE(offset < shard.trial_count);
  NTC_REQUIRE(shard.scenario_index < config_.scenarios.size());
  NTC_REQUIRE(shard.scheme_index <
              config_.schemes.size() + config_.tile_mixes.size());
  NTC_REQUIRE(shard.voltage_index < config_.voltages.size());
  if (shard.scheme_index >= config_.schemes.size()) {
    auto& tiled_pool = tiled_pools_[worker];
    if (!tiled_pool) tiled_pool = std::make_unique<multitile::TiledPool>();
    return execute_one_tiled(config_.scenarios[shard.scenario_index],
                             shard.scheme_index - config_.schemes.size(),
                             config_.voltages[shard.voltage_index],
                             shard.seed_begin + offset, *tiled_pool);
  }
  auto& pool = pools_[worker];
  if (!pool)
    pool = std::make_unique<sim::PlatformPool>(platform_base_config());
  return execute_one(config_.scenarios[shard.scenario_index],
                     config_.schemes[shard.scheme_index],
                     config_.voltages[shard.voltage_index],
                     shard.seed_begin + offset, *pool);
}

void CampaignRunner::execute_shard_trials(const Shard& shard,
                                          std::uint32_t offset,
                                          std::uint32_t count, unsigned worker,
                                          RunRecord* out) {
  if (count == 0) return;
  if (!sim::batch_enabled() || !batch_ || !batch_->eligible(shard)) {
    for (std::uint32_t k = 0; k < count; ++k)
      out[k] = execute_shard_trial(shard, offset + k, worker);
    return;
  }
  std::vector<std::uint32_t> peel;
  batch_->run_batch(shard, offset, count, out, peel);
  for (const std::uint32_t k : peel)
    out[k] = execute_shard_trial(shard, offset + k, worker);
}

std::uint32_t CampaignRunner::batch_chunk_width(const Shard& shard) const {
  (void)shard;
  return batch_width_;
}

BatchStats CampaignRunner::batch_stats() const {
  return batch_ ? batch_->stats() : BatchStats{};
}

const std::vector<RunRecord>& CampaignRunner::run() {
  prepare();
  // One shard per grid cell: trial i of the flat grid is trial
  // i % seeds_per_cell of shard i / seeds_per_cell, and record_base
  // arithmetic makes the two enumerations coincide exactly — the
  // in-process ledger and a merged shard-service ledger are the same
  // bytes by construction, not by test luck.
  const ShardPlan plan = shard_plan();
  records_.assign(plan.total_records, RunRecord{});
  const std::uint32_t spc = config_.seeds_per_cell;
  // Work items are batch-width trial chunks so eligible cells go
  // through the trace-replay engine.  Each record remains a pure
  // function of its grid cell (batched trials are byte-identical to
  // scalar ones; platforms are reset to a seed-determined state before
  // every scalar run), so the ledger is identical whatever the worker
  // count, the chunking, and whoever stole what.
  const std::uint32_t width = std::min(batch_width_, spc);
  const std::size_t chunks_per_shard = (spc + width - 1) / width;
  executor_->parallel_for(
      plan.shards.size() * chunks_per_shard,
      [&](std::size_t i, unsigned worker) {
        const Shard& shard = plan.shards[i / chunks_per_shard];
        const std::uint32_t offset =
            static_cast<std::uint32_t>(i % chunks_per_shard) * width;
        const std::uint32_t count = std::min(width, spc - offset);
        execute_shard_trials(shard, offset, count, worker,
                             records_.data() + shard.record_base + offset);
      });
  return records_;
}

CampaignSummary CampaignRunner::summary() const {
  return summarize_records(records_);
}

// The formatters live in faultsim/ledger.cpp so the ledger_merge tool
// emits the exact same bytes from reduced binary segments.
void CampaignRunner::write_csv(std::ostream& out) const {
  write_ledger_csv(out, records_);
}

void CampaignRunner::write_json(std::ostream& out) const {
  write_ledger_json(out, records_);
}

void CampaignRunner::write_telemetry_jsonl(std::ostream& out) const {
  telemetry::export_jsonl(out);
}

namespace {

template <typename WriteFn>
bool save_atomically(const std::string& path, WriteFn&& write) {
  std::ostringstream out;
  write(out);
  return atomic_write_file(path, out.str());
}

}  // namespace

bool CampaignRunner::save_csv(const std::string& path) const {
  return save_atomically(path, [&](std::ostream& out) { write_csv(out); });
}

bool CampaignRunner::save_json(const std::string& path) const {
  return save_atomically(path, [&](std::ostream& out) { write_json(out); });
}

bool CampaignRunner::save_telemetry_jsonl(const std::string& path) const {
  return save_atomically(path,
                         [&](std::ostream& out) { write_telemetry_jsonl(out); });
}

}  // namespace ntc::faultsim
