#include "faultsim/campaign.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>

#include "common/assert.hpp"
#include "common/fixed_point.hpp"
#include "reliability/model_tables.hpp"
#include "sim/platform.hpp"
#include "sim/platform_pool.hpp"
#include "telemetry/build_info.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/fft.hpp"
#include "workloads/golden.hpp"

namespace ntc::faultsim {

namespace {

/// The two-tone test signal of the Figure 8/9 benches.
std::vector<std::complex<double>> campaign_signal(std::size_t n) {
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    x[i] = 0.28 * std::sin(2.0 * M_PI * 17.0 * t) +
           0.18 * std::cos(2.0 * M_PI * 101.0 * t);
  }
  return x;
}

std::string escape_json(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// The scripted injectors living on a pooled platform's arrays, rearmed
/// per grid cell (kept alive through the pool slot's client_state).
struct InjectorSet {
  std::shared_ptr<ScenarioInjector> spm;
  std::shared_ptr<ScenarioInjector> imem;
  std::shared_ptr<ScenarioInjector> pm;  ///< null unless the platform has a PM
};

}  // namespace

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::Clean: return "clean";
    case RunOutcome::Corrected: return "corrected";
    case RunOutcome::DetectedUncorrectable: return "detected-uncorrectable";
    case RunOutcome::SilentDataCorruption: return "silent-data-corruption";
    case RunOutcome::SystemFailure: return "system-failure";
  }
  return "?";
}

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config)),
      tables_(std::make_shared<reliability::ModelTableCache>()) {
  NTC_REQUIRE(!config_.voltages.empty());
  NTC_REQUIRE(!config_.schemes.empty());
  NTC_REQUIRE(config_.seeds_per_cell >= 1);
  NTC_REQUIRE(config_.fft_points >= 4 &&
              (config_.fft_points & (config_.fft_points - 1)) == 0);
  if (config_.scenarios.empty())
    config_.scenarios.push_back(Scenario{"background", {}, {}, {}});
  signal_ = campaign_signal(config_.fft_points);
  reference_ = workloads::reference_fft(signal_);
}

CampaignRunner::~CampaignRunner() = default;

sim::PlatformConfig CampaignRunner::platform_base_config() const {
  sim::PlatformConfig pc;
  pc.memory_style = config_.style;
  pc.vdd = config_.voltages.front();
  pc.clock = config_.clock;
  pc.spm_bytes = std::max<std::uint32_t>(
      8 * 1024, static_cast<std::uint32_t>(config_.fft_points) * 4);
  pc.pm_bytes = static_cast<std::uint32_t>(config_.fft_points) * 8;
  pc.seed = config_.base_seed;
  pc.inject_faults = config_.stochastic_background;
  pc.tables = tables_;
  return pc;
}

void CampaignRunner::compute_golden() {
  // Fault-free reference pass: the fixed-point pipeline is
  // deterministic, so one golden image serves every grid cell (and, the
  // config being fixed at construction, every run() call).
  if (golden_computed_) return;
  // The reference pass is infrastructure, not the simulation under
  // observation: recording its bursts would double the trace volume of
  // a one-trial run and pollute exports with fault-free traffic.
  NTC_TELEM_MUTE(mute);
  sim::PlatformConfig pc = platform_base_config();
  pc.scheme = mitigation::SchemeKind::NoMitigation;
  pc.pm_bytes = 1024;  // no PM in the reference platform
  pc.inject_faults = false;
  sim::Platform platform(pc);

  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);
  ocean::run_unprotected(platform, fft);

  golden_.resize(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i)
    platform.spm().read_word(static_cast<std::uint32_t>(i), golden_[i]);
  golden_computed_ = true;
}

RunRecord CampaignRunner::execute_one(const Scenario& scenario,
                                      mitigation::SchemeKind scheme, Volt vdd,
                                      std::uint64_t seed,
                                      sim::PlatformPool& pool) const {
  RunRecord record;
  record.scenario = scenario.name;
  record.vdd = vdd.value;
  record.seed = seed;
  NTC_TELEM_SPAN(trial_span, telemetry::EventKind::CampaignTrial,
                 "campaign_trial");

  // A pooled platform plus rearm/reset is observationally identical to
  // the fresh platform-per-run this replaces: the scripted injectors
  // are reprogrammed with this cell's script, then reset re-derives the
  // whole fault state over this cell's seed and supply.
  sim::PlatformPool::Slot& slot = pool.acquire(scheme);
  sim::Platform& platform = *slot.platform;
  if (!slot.client_state) {
    auto injectors = std::make_shared<InjectorSet>();
    injectors->spm =
        std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
    injectors->imem =
        std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
    platform.spm().array().attach_injector(injectors->spm);
    platform.imem().array().attach_injector(injectors->imem);
    if (platform.pm() != nullptr) {
      injectors->pm =
          std::make_shared<ScenarioInjector>(std::vector<FaultEvent>{});
      platform.pm()->array().attach_injector(injectors->pm);
    }
    slot.client_state = injectors;
  }
  InjectorSet& injectors =
      *static_cast<InjectorSet*>(slot.client_state.get());
  ScenarioInjector& spm_injector = *injectors.spm;
  ScenarioInjector& imem_injector = *injectors.imem;
  ScenarioInjector* pm_injector = injectors.pm.get();
  spm_injector.rearm(scenario.spm_events);
  imem_injector.rearm(scenario.imem_events);
  if (pm_injector != nullptr) pm_injector->rearm(scenario.pm_events);
  platform.reset(seed, vdd);
  record.scheme = platform.scheme().name;

  workloads::FixedPointFft fft(config_.fft_points);
  fft.set_input(signal_);

  bool system_failure = false;
  std::uint64_t faulted_phases = 0;
  if (scheme == mitigation::SchemeKind::Ocean) {
    ocean::OceanRuntime runtime(platform, config_.ocean);
    const ocean::OceanRunOutcome outcome = runtime.run(fft);
    system_failure = outcome.system_failure;
    record.ocean_restores = outcome.stats.restores;
    record.ocean_voltage_escalations = outcome.stats.voltage_escalations;
    faulted_phases = outcome.stats.crc_mismatches;
  } else {
    faulted_phases = ocean::run_unprotected(platform, fft);
  }

  // One readback pass serves both the golden comparison and the SNR —
  // it traverses the faulty memory path, so read-time corruption of the
  // result is classified like any other fault.
  std::vector<std::uint32_t> measured_words(config_.fft_points);
  std::vector<std::complex<double>> measured(config_.fft_points);
  for (std::size_t i = 0; i < config_.fft_points; ++i) {
    platform.spm().read_word(static_cast<std::uint32_t>(i), measured_words[i]);
    const ComplexQ15 q = ComplexQ15::unpack(measured_words[i]);
    measured[i] = std::complex<double>(q.re.to_double(), q.im.to_double()) /
                  fft.output_scale();
  }
  record.snr_db = workloads::snr_db(measured, reference_);
  record.cycles = platform.total_cycles();

  auto tally = [&](const sim::EccMemory* mem) {
    if (mem == nullptr) return;
    record.corrected_words += mem->stats().corrected_words;
    record.uncorrectable_words += mem->stats().uncorrectable_words;
    record.injected_flips += mem->array().stats().injected_read_flips +
                             mem->array().stats().injected_write_flips;
    record.stuck_bits += mem->array().stats().stuck_bits;
  };
  tally(&platform.spm());
  tally(&platform.imem());
  tally(platform.pm());
  record.scenario_events_fired =
      spm_injector.events_fired() + imem_injector.events_fired() +
      (pm_injector != nullptr ? pm_injector->events_fired() : 0);

  const bool output_ok = measured_words == golden_;
  const bool detected = record.uncorrectable_words > 0 || faulted_phases > 0;
  const bool any_fault_activity =
      detected || record.corrected_words > 0 || record.injected_flips > 0 ||
      record.stuck_bits > 0 || record.scenario_events_fired > 0 ||
      record.ocean_restores > 0;
  if (system_failure) {
    record.outcome = RunOutcome::SystemFailure;
  } else if (!output_ok) {
    record.outcome = detected ? RunOutcome::DetectedUncorrectable
                              : RunOutcome::SilentDataCorruption;
  } else {
    record.outcome =
        any_fault_activity ? RunOutcome::Corrected : RunOutcome::Clean;
  }
  trial_span.set_args(seed, static_cast<std::uint64_t>(record.outcome));
  NTC_TELEM_COUNT("ntc_campaign_trials_total", 1);
  return record;
}

const std::vector<RunRecord>& CampaignRunner::run() {
  compute_golden();

  struct Cell {
    const Scenario* scenario;
    mitigation::SchemeKind scheme;
    Volt vdd;
    std::uint64_t seed;
  };
  std::vector<Cell> grid;
  for (const Scenario& scenario : config_.scenarios)
    for (mitigation::SchemeKind scheme : config_.schemes)
      for (Volt vdd : config_.voltages)
        for (std::uint32_t s = 0; s < config_.seeds_per_cell; ++s)
          grid.push_back(Cell{&scenario, scheme, vdd, config_.base_seed + s});

  records_.assign(grid.size(), RunRecord{});

  // Workers and their platform pools persist across run() calls: the
  // executor parks between jobs instead of being respawned, and each
  // worker resets its pooled platforms rather than rebuilding them.
  if (!executor_) {
    executor_ = std::make_unique<Executor>(config_.threads);
    pools_.resize(executor_->worker_count());
  }
  // Each record is a pure function of its grid cell (platforms are
  // reset to a seed-determined state before every run), so the ledger
  // is identical whatever the worker count and whoever stole what.
  executor_->parallel_for(grid.size(), [&](std::size_t i, unsigned worker) {
    auto& pool = pools_[worker];
    if (!pool) pool = std::make_unique<sim::PlatformPool>(platform_base_config());
    const Cell& cell = grid[i];
    records_[i] =
        execute_one(*cell.scenario, cell.scheme, cell.vdd, cell.seed, *pool);
  });
  return records_;
}

CampaignSummary CampaignRunner::summary() const {
  CampaignSummary s;
  s.runs = records_.size();
  for (const RunRecord& r : records_) {
    switch (r.outcome) {
      case RunOutcome::Clean: ++s.clean; break;
      case RunOutcome::Corrected: ++s.corrected; break;
      case RunOutcome::DetectedUncorrectable: ++s.detected_uncorrectable; break;
      case RunOutcome::SilentDataCorruption: ++s.silent_data_corruption; break;
      case RunOutcome::SystemFailure: ++s.system_failure; break;
    }
  }
  return s;
}

namespace {

// RFC 4180 quoting: scheme names such as "ECC (SECDED 39,32)" contain
// commas and would otherwise shift every following column.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void CampaignRunner::write_csv(std::ostream& out) const {
  // Build provenance rides along as '#' comment lines.  The values are
  // process constants, so ledgers stay byte-identical across thread
  // counts and repeated run() calls (faultsim_throughput_test relies on
  // that).
  out << telemetry::build_info_csv_comment();
  out << "scenario,scheme,vdd,seed,outcome,snr_db,corrected_words,"
         "uncorrectable_words,injected_flips,stuck_bits,"
         "scenario_events_fired,ocean_restores,ocean_voltage_escalations,"
         "cycles\n";
  for (const RunRecord& r : records_) {
    out << csv_field(r.scenario) << ',' << csv_field(r.scheme) << ','
        << r.vdd << ',' << r.seed
        << ',' << to_string(r.outcome) << ',' << r.snr_db << ','
        << r.corrected_words << ',' << r.uncorrectable_words << ','
        << r.injected_flips << ',' << r.stuck_bits << ','
        << r.scenario_events_fired << ',' << r.ocean_restores << ','
        << r.ocean_voltage_escalations << ',' << r.cycles << '\n';
  }
}

void CampaignRunner::write_telemetry_jsonl(std::ostream& out) const {
  telemetry::export_jsonl(out);
}

void CampaignRunner::write_json(std::ostream& out) const {
  const CampaignSummary s = summary();
  out << "{\n  \"build\": " << telemetry::build_info_json()
      << ",\n  \"summary\": {\"runs\": " << s.runs
      << ", \"clean\": " << s.clean << ", \"corrected\": " << s.corrected
      << ", \"detected_uncorrectable\": " << s.detected_uncorrectable
      << ", \"silent_data_corruption\": " << s.silent_data_corruption
      << ", \"system_failure\": " << s.system_failure << "},\n  \"runs\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RunRecord& r = records_[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"scenario\": \"" << escape_json(r.scenario)
        << "\", \"scheme\": \"" << escape_json(r.scheme)
        << "\", \"vdd\": " << r.vdd << ", \"seed\": " << r.seed
        << ", \"outcome\": \"" << to_string(r.outcome) << "\", \"snr_db\": ";
    // JSON has no nan/inf literal; a fully-destroyed output (zero or
    // NaN-adjacent SNR) must not render the whole ledger unparseable.
    if (std::isfinite(r.snr_db)) {
      out << r.snr_db;
    } else {
      out << "null";
    }
    out
        << ", \"corrected_words\": " << r.corrected_words
        << ", \"uncorrectable_words\": " << r.uncorrectable_words
        << ", \"injected_flips\": " << r.injected_flips
        << ", \"stuck_bits\": " << r.stuck_bits
        << ", \"scenario_events_fired\": " << r.scenario_events_fired
        << ", \"ocean_restores\": " << r.ocean_restores
        << ", \"ocean_voltage_escalations\": " << r.ocean_voltage_escalations
        << ", \"cycles\": " << r.cycles << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace ntc::faultsim
