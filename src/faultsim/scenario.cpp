#include "faultsim/scenario.hpp"

#include "common/assert.hpp"

namespace ntc::faultsim {

FaultEvent FaultEvent::stuck_at(std::uint32_t word, std::uint64_t bit_mask,
                                std::uint64_t stuck_value, double heal_at_v) {
  FaultEvent e;
  e.kind = Kind::StuckAt;
  e.word = word;
  e.bit_mask = bit_mask;
  e.stuck_value = stuck_value & bit_mask;
  e.heal_at_v = heal_at_v;
  return e;
}

FaultEvent FaultEvent::row_stuck(std::uint32_t first_word, std::uint32_t words,
                                 std::uint64_t bit_mask,
                                 std::uint64_t stuck_value, double heal_at_v) {
  FaultEvent e = stuck_at(first_word, bit_mask, stuck_value, heal_at_v);
  e.kind = Kind::RowStuck;
  e.span = words;
  return e;
}

FaultEvent FaultEvent::column_stuck(std::uint32_t bit, bool value,
                                    double heal_at_v) {
  FaultEvent e;
  e.kind = Kind::ColumnStuck;
  e.bit_mask = std::uint64_t{1} << bit;
  e.stuck_value = value ? e.bit_mask : 0;
  e.heal_at_v = heal_at_v;
  return e;
}

FaultEvent FaultEvent::transient_flip(std::uint32_t word,
                                      std::uint64_t bit_mask,
                                      std::uint64_t at_access) {
  FaultEvent e;
  e.kind = Kind::TransientFlip;
  e.word = word;
  e.bit_mask = bit_mask;
  e.arm_at_access = at_access;
  e.once = true;
  return e;
}

FaultEvent FaultEvent::read_burst(std::uint32_t word, std::uint32_t first_bit,
                                  std::uint32_t k, double heal_at_v) {
  NTC_REQUIRE(k >= 1 && k <= 64 - first_bit);
  FaultEvent e;
  e.kind = Kind::ReadBurst;
  e.word = word;
  e.bit_mask = (k == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << k) - 1))
               << first_bit;
  e.heal_at_v = heal_at_v;
  return e;
}

FaultEvent FaultEvent::write_burst(std::uint32_t word, std::uint64_t bit_mask,
                                   bool once) {
  FaultEvent e;
  e.kind = Kind::WriteBurst;
  e.word = word;
  e.bit_mask = bit_mask;
  e.once = once;
  return e;
}

ScenarioInjector::ScenarioInjector(std::vector<FaultEvent> events) {
  rearm(std::move(events));
}

void ScenarioInjector::rearm(std::vector<FaultEvent> events) {
  events_.clear();
  events_.reserve(events.size());
  events_fired_ = 0;
  overlay_stationary_ = true;
  for (auto& e : events) {
    if (stuck_kind(e.kind) &&
        (e.arm_at_access != 0 ||
         e.disarm_at_access != std::numeric_limits<std::uint64_t>::max()))
      overlay_stationary_ = false;
    events_.push_back(Armed{std::move(e), false});
  }
}

bool ScenarioInjector::stuck_kind(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::StuckAt ||
         kind == FaultEvent::Kind::RowStuck ||
         kind == FaultEvent::Kind::ColumnStuck;
}

bool ScenarioInjector::window_open(const FaultEvent& e,
                                   const sim::FaultContext& ctx) {
  return ctx.access_count >= e.arm_at_access &&
         ctx.access_count < e.disarm_at_access;
}

bool ScenarioInjector::covers(const FaultEvent& e, std::uint32_t index,
                              const sim::FaultContext& ctx) {
  if (e.kind == FaultEvent::Kind::ColumnStuck) return index < ctx.words;
  return index >= e.word && index < e.word + e.span;
}

void ScenarioInjector::stuck_overlay(std::uint32_t index,
                                     const sim::FaultContext& ctx,
                                     std::uint64_t& mask,
                                     std::uint64_t& value) {
  overlay_for(index, ctx, mask, value);
}

void ScenarioInjector::overlay_for(std::uint32_t index,
                                   const sim::FaultContext& ctx,
                                   std::uint64_t& mask,
                                   std::uint64_t& value) const {
  mask = 0;
  value = 0;
  for (const Armed& armed : events_) {
    const FaultEvent& e = armed.event;
    if (!stuck_kind(e.kind)) continue;
    if (ctx.vdd.value >= e.heal_at_v) continue;  // healed at this supply
    if (!window_open(e, ctx) || !covers(e, index, ctx)) continue;
    value |= e.stuck_value & e.bit_mask & ~mask;
    mask |= e.bit_mask;
  }
}

std::uint64_t ScenarioInjector::access_flips(sim::AccessKind kind,
                                             std::uint32_t index,
                                             const sim::FaultContext& ctx) {
  std::uint64_t flips = 0;
  for (Armed& armed : events_) {
    const FaultEvent& e = armed.event;
    if (armed.consumed || ctx.vdd.value >= e.heal_at_v ||
        !window_open(e, ctx) || !covers(e, index, ctx))
      continue;
    const bool on_read = kind == sim::AccessKind::Read &&
                         (e.kind == FaultEvent::Kind::TransientFlip ||
                          e.kind == FaultEvent::Kind::ReadBurst);
    const bool on_write = kind == sim::AccessKind::Write &&
                          e.kind == FaultEvent::Kind::WriteBurst;
    if (!on_read && !on_write) continue;
    flips ^= e.bit_mask;
    ++events_fired_;
    if (e.once) armed.consumed = true;
  }
  return flips;
}

std::uint64_t ScenarioInjector::active_stuck_bits(
    const sim::FaultContext& ctx) const {
  std::uint64_t total = 0;
  for (std::uint32_t w = 0; w < ctx.words; ++w) {
    std::uint64_t mask = 0, value = 0;
    overlay_for(w, ctx, mask, value);
    total += static_cast<std::uint64_t>(__builtin_popcountll(mask));
  }
  return total;
}

}  // namespace ntc::faultsim
