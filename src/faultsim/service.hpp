// Crash-safe campaign service: resumable sharded execution with
// shard-level fault tolerance.
//
// CampaignService turns a campaign grid into first-class resumable
// work.  The grid is split by make_shard_plan() into deterministic
// shards; each shard streams its trials to an append-only CRC-framed
// segment in `ledger_dir` (faultsim/ledger.hpp) and commits a
// checkpoint frame on completion.  run() scans the directory first, so
// a process killed at any point — including kill -9 mid-write, which
// leaves a torn trailing frame the scan detects and the writer
// truncates — resumes from the exact trial where it stopped; committed
// shards are never re-executed.
//
// Shards execute on the runner's persistent Executor, one in-flight
// shard per worker.  Failure containment is per shard: an attempt that
// throws (a trial, the injected test hook, or the wall-clock budget)
// is retried with exponential backoff, resuming from the trials
// already durable, and a shard that exhausts its retry budget is
// *quarantined* — recorded in the report with its last error, counted
// in telemetry, and skipped — never allowed to abort the run.
//
// Multiple processes may serve one ledger_dir as long as each shard is
// claimed by at most one process at a time (scripts/run_campaign.sh
// does this with lock directories); segments are per-shard files, so
// processes never share an append target.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "faultsim/shard.hpp"

namespace ntc::faultsim {

struct ServiceConfig {
  /// Directory holding one segment per shard (created if absent).
  std::string ledger_dir;
  /// Seed-range chunk per shard; 0 = one shard per grid cell.
  std::uint32_t seeds_per_shard = 0;
  /// Attempts per shard before quarantine (>= 1).
  std::uint32_t max_attempts = 3;
  /// Sleep before retry k is backoff * 2^k (k = 0 for the first retry).
  std::chrono::milliseconds retry_backoff{5};
  /// Wall-clock budget per attempt, checked between trials (an attempt
  /// never cuts a trial mid-flight); 0 = unlimited.  A timed-out
  /// attempt keeps its durable trials, so retries make forward
  /// progress even when the budget only admits part of a shard.
  std::chrono::milliseconds shard_timeout{0};
  /// fsync after every trial frame (commit frames always fsync).
  /// Resume after kill -9 works either way — the page cache survives
  /// process death — this extends durability to power loss.
  bool fsync_each_record = false;

  // --- test / driver seams -----------------------------------------
  /// Invoked at the start of every attempt; throwing makes the attempt
  /// fail (deterministic transient-fault injection for tests).
  std::function<void(const Shard&, std::uint32_t attempt)> attempt_hook;
  /// Invoked after every durable trial frame with the running count of
  /// trials this process appended and the segment path (the kill
  /// harness uses it to die mid-shard at an exact record).
  std::function<void(const Shard&, std::uint64_t appended,
                     const std::string& segment_path)>
      record_hook;
};

struct ShardReport {
  std::uint64_t shard_id = 0;
  std::uint32_t attempts = 0;       ///< attempts made by this run
  std::uint32_t trials_durable = 0; ///< committed to the segment
  std::uint32_t trials_resumed = 0; ///< durable before this run touched it
  bool completed = false;
  bool quarantined = false;
  std::uint64_t torn_bytes = 0;  ///< damaged tail bytes truncated on open
  std::string last_error;
};

struct ServiceReport {
  std::vector<ShardReport> shards;  ///< plan order, every shard
  std::uint64_t shards_total = 0;
  std::uint64_t shards_completed = 0;    ///< committed (this run or before)
  std::uint64_t shards_resumed = 0;      ///< continued from durable trials
  std::uint64_t shards_quarantined = 0;
  std::uint64_t trials_run = 0;          ///< executed by this run
  std::uint64_t trials_skipped = 0;      ///< durable before this run
  std::uint64_t retries = 0;
  std::uint64_t torn_bytes_truncated = 0;
  bool all_completed() const {
    return shards_completed == shards_total;
  }
};

class CampaignService {
 public:
  CampaignService(CampaignConfig campaign, ServiceConfig service);

  const ShardPlan& plan() const { return plan_; }
  /// Segment paths in plan order (merge_segments input).
  std::vector<std::string> segment_paths() const;

  /// Serve every shard not yet checkpointed in ledger_dir.
  ServiceReport run();
  /// Serve only the given shard ids (a work-queue process's claim);
  /// unknown ids are ignored.  Reports still cover the whole plan.
  ServiceReport run_shards(const std::vector<std::uint64_t>& ids);

 private:
  ServiceReport serve(const std::vector<std::uint64_t>* only_ids);
  void serve_shard_impl(std::size_t shard_index, unsigned worker,
                        ShardReport& report,
                        std::atomic<std::uint64_t>& appended);

  CampaignRunner runner_;
  ServiceConfig service_;
  ShardPlan plan_;
};

}  // namespace ntc::faultsim
