// Batched Monte-Carlo engine for the campaign hot loop.
//
// A campaign grid cell runs the *same* deterministic workload (the
// fixed-point FFT's address stream and compute-cycle charges are
// data-independent) K times with only the Monte-Carlo seed varying, so
// almost everything a scalar trial does — platform construction, FFT
// arithmetic, per-word ECC decode of overwhelmingly clean words — is
// recomputation of seed-invariant state.  The engine factors a grid
// cell's execution into
//
//   * a golden transaction trace, captured once per mitigation scheme
//     from a fault-free run (EccMemory::TraceSink): the ordered list of
//     logical memory transactions the workload issues, the golden data
//     every read returns, and the deterministic cycle total;
//   * a per-trial replay that re-derives exactly the fault state the
//     scalar path would have drawn — the per-array RNG streams
//     (Platform::reset fork salts), the shared-ModelTableCache
//     retention fingerprint and stuck values, and the per-word access
//     flip draws in scalar order (bulk gate scan over Rng::fill_u64) —
//     and pushes it through the trace's error algebra.  Only *dirty*
//     words (nonzero raw error) are decoded, through the word-direct
//     decode_words kernels.
//
// A trial stays on the batch path while every traced read decodes to
// the golden data with status Ok/Corrected.  Anything else — an
// uncorrectable word, a miscorrection, a raw flip under NoMitigation —
// means downstream data, control flow (OCEAN restores) or the record
// would diverge from the trace, so the trial "peels": its batch state
// is discarded and the scalar execute_shard_trial path, which remains
// the reference implementation, reruns it authoritatively.
//
// Byte-identity contract: for every trial the engine either produces a
// RunRecord byte-identical to the scalar path's or peels.  The
// sim::set_batch_enabled kill-switch forces everything scalar; the
// equivalence suite diffs full ledgers across both settings.
//
// Captured traces are seed-invariant, so they live in a process-wide
// cache (the reliability::ModelTableCache pattern) keyed by every
// input the capture reads: runners over the same workload shape and
// platform geometry share one immutable capture instead of re-running
// the fault-free workload each.
#pragma once

#include <atomic>
#include <complex>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "faultsim/shard.hpp"
#include "sim/platform.hpp"

namespace ntc::reliability {
class ModelTableCache;
}
namespace ntc::ecc {
class BlockCode;
}

namespace ntc::faultsim {

/// Batch-path counters (process totals for this engine instance).
struct BatchStats {
  std::uint64_t batched_trials = 0;     ///< trials attempted on the batch path
  std::uint64_t convergent_trials = 0;  ///< completed without peeling
  std::uint64_t peeled_trials = 0;      ///< diverged, rerun scalar
};

class BatchEngine {
 public:
  /// `base_platform` is the runner's platform_base_config(): the engine
  /// derives array geometries/models from it and builds its fault-free
  /// capture platforms on it.  `golden` must already be computed.
  BatchEngine(const CampaignConfig& config, sim::PlatformConfig base_platform,
              const std::vector<std::complex<double>>& signal,
              const std::vector<std::complex<double>>& reference,
              const std::vector<std::uint32_t>& golden,
              std::shared_ptr<reliability::ModelTableCache> tables);
  ~BatchEngine();
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Is this shard's grid cell batchable at all?  Scripted scenario
  /// events arm on access counters and mutate injector state the trace
  /// replay does not model, so only the implicit no-event "background"
  /// scenario qualifies.
  bool eligible(const Shard& shard) const;

  /// Replay trials [offset, offset + count) of `shard` into
  /// out[0..count).  Trials that diverge are appended to `peel` (as
  /// offsets relative to `offset`) and their out slots left untouched —
  /// the caller reruns them on the scalar path.  Thread-safe after the
  /// first call per scheme has returned (per-scheme capture is
  /// internally serialized).
  void run_batch(const Shard& shard, std::uint32_t offset,
                 std::uint32_t count, RunRecord* out,
                 std::vector<std::uint32_t>& peel);

  BatchStats stats() const;

  // Implementation types, public so the capture helpers in batch.cpp's
  // anonymous namespace (trace sinks, the recording port) can reference
  // them; both are defined there and opaque to other translation units.
  struct SchemeState;
  struct ArrayParams;

 private:
  std::string trace_key(mitigation::SchemeKind kind) const;
  SchemeState& scheme_state(std::uint32_t scheme_index);
  void capture_scheme(SchemeState& state, mitigation::SchemeKind kind);
  void capture_plain(SchemeState& state, mitigation::SchemeKind kind);
  void capture_ocean(SchemeState& state);
  bool replay_trial(const SchemeState& state, Volt vdd, std::uint64_t seed,
                    RunRecord& out) const;

  const CampaignConfig& config_;
  sim::PlatformConfig base_platform_;
  const std::vector<std::complex<double>>& signal_;
  const std::vector<std::complex<double>>& reference_;
  const std::vector<std::uint32_t>& golden_;
  std::shared_ptr<reliability::ModelTableCache> tables_;
  double golden_snr_db_ = 0.0;

  /// Shared with every engine whose trace_key matches; the per-state
  /// once_flag serializes the (single, process-wide) capture.
  std::vector<std::shared_ptr<SchemeState>> schemes_;

  mutable std::atomic<std::uint64_t> batched_trials_{0};
  mutable std::atomic<std::uint64_t> convergent_trials_{0};
  mutable std::atomic<std::uint64_t> peeled_trials_{0};
};

}  // namespace ntc::faultsim
