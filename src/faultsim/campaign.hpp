// Seed-swept Monte-Carlo fault-injection campaigns.
//
// A campaign executes the paper's evaluation workload (the fixed-point
// FFT, execution-driven through the simulated platform) across a
// voltage x mitigation-scheme x fault-scenario grid, several seeds per
// cell, and classifies every run against a fault-free golden reference:
//
//   Clean                  — no fault activity, output exact;
//   Corrected              — faults occurred, mitigation absorbed them,
//                            output exact;
//   DetectedUncorrectable  — output wrong but the scheme flagged it
//                            (trap/rollback possible at system level);
//   SilentDataCorruption   — output wrong and nothing flagged it: the
//                            outcome mitigation exists to prevent;
//   SystemFailure          — OCEAN restore met an uncorrectable
//                            protected-buffer word (quintuple error).
//
// Runs execute std::thread-parallel (each owns its platform instance,
// so results are independent of the thread count) and the ledger is
// exported as CSV or JSON for the bench harness.
#pragma once

#include <complex>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "energy/memory_calculator.hpp"
#include "faultsim/scenario.hpp"
#include "mitigation/scheme.hpp"
#include "ocean/runtime.hpp"

namespace ntc::faultsim {

enum class RunOutcome {
  Clean,
  Corrected,
  DetectedUncorrectable,
  SilentDataCorruption,
  SystemFailure,
};

const char* to_string(RunOutcome outcome);

struct CampaignConfig {
  std::vector<Volt> voltages{Volt{0.44}};
  std::vector<mitigation::SchemeKind> schemes{mitigation::SchemeKind::Secded};
  /// Scripted scenarios; when empty a single no-event "background"
  /// scenario runs (stochastic model only).
  std::vector<Scenario> scenarios;
  std::uint64_t base_seed = 1;
  std::uint32_t seeds_per_cell = 4;
  std::size_t fft_points = 256;  ///< paper uses 1024; tests shrink it
  energy::MemoryStyle style = energy::MemoryStyle::CellBasedImec40;
  Hertz clock{290.0e3};
  /// Keep the analytic stochastic fault model active underneath the
  /// scripted events (false = scripted faults only).
  bool stochastic_background = true;
  /// OCEAN protocol knobs, including the voltage-escalation path.
  ocean::OceanConfig ocean;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

struct RunRecord {
  std::string scenario;
  std::string scheme;
  double vdd = 0.0;
  std::uint64_t seed = 0;
  RunOutcome outcome = RunOutcome::Clean;
  double snr_db = 0.0;
  std::uint64_t corrected_words = 0;
  std::uint64_t uncorrectable_words = 0;
  std::uint64_t injected_flips = 0;  ///< stochastic read+write flips, all arrays
  std::uint64_t stuck_bits = 0;
  std::uint64_t scenario_events_fired = 0;
  std::uint64_t ocean_restores = 0;
  std::uint64_t ocean_voltage_escalations = 0;
  std::uint64_t cycles = 0;
};

struct CampaignSummary {
  std::uint64_t runs = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected_uncorrectable = 0;
  std::uint64_t silent_data_corruption = 0;
  std::uint64_t system_failure = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config);

  /// Execute the full grid; returns the ledger ordered by grid cell.
  const std::vector<RunRecord>& run();

  const std::vector<RunRecord>& records() const { return records_; }
  CampaignSummary summary() const;

  /// Machine-readable ledger exports for the bench harness.
  void write_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;

 private:
  RunRecord execute_one(const Scenario& scenario,
                        mitigation::SchemeKind scheme, Volt vdd,
                        std::uint64_t seed) const;
  void compute_golden();

  CampaignConfig config_;
  std::vector<std::complex<double>> signal_;
  std::vector<std::complex<double>> reference_;  ///< double-precision FFT
  std::vector<std::uint32_t> golden_;            ///< fault-free output words
  std::vector<RunRecord> records_;
};

}  // namespace ntc::faultsim
