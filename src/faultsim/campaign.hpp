// Seed-swept Monte-Carlo fault-injection campaigns.
//
// A campaign executes the paper's evaluation workload (the fixed-point
// FFT, execution-driven through the simulated platform) across a
// voltage x mitigation-scheme x fault-scenario grid, several seeds per
// cell, and classifies every run against a fault-free golden reference:
//
//   Clean                  — no fault activity, output exact;
//   Corrected              — faults occurred, mitigation absorbed them,
//                            output exact;
//   DetectedUncorrectable  — output wrong but the scheme flagged it
//                            (trap/rollback possible at system level);
//   SilentDataCorruption   — output wrong and nothing flagged it: the
//                            outcome mitigation exists to prevent;
//   SystemFailure          — OCEAN restore met an uncorrectable
//                            protected-buffer word (quintuple error).
//
// Runs execute on a persistent work-stealing Executor; each worker owns
// a private PlatformPool (platform arenas are reused across grid cells
// via Platform::reset) and every platform shares one immutable
// ModelTableCache, so throughput scales with the grid instead of with
// platform construction.  Every run's state is a pure function of its
// grid cell — a reused platform is reset to exactly the state a fresh
// one would have — so the ledger is byte-identical whatever the thread
// count, whoever stole which cell, and however often run() is repeated.
// The ledger is exported as CSV or JSON for the bench harness.
#pragma once

#include <complex>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.hpp"
#include "common/units.hpp"
#include "energy/memory_calculator.hpp"
#include "faultsim/scenario.hpp"
#include "faultsim/shard.hpp"
#include "mitigation/scheme.hpp"
#include "ocean/runtime.hpp"

namespace ntc::reliability {
class ModelTableCache;
}
namespace ntc::sim {
class PlatformPool;
struct PlatformConfig;
}
namespace ntc::multitile {
class TiledPool;
struct TiledPlatformConfig;
}

namespace ntc::faultsim {

class BatchEngine;
struct BatchStats;

enum class RunOutcome {
  Clean,
  Corrected,
  DetectedUncorrectable,
  SilentDataCorruption,
  SystemFailure,
};

const char* to_string(RunOutcome outcome);

/// One multi-tile platform configuration on the campaign's scheme axis:
/// `tiles` cores with per-tile mitigation share a `banks`-way banked
/// scratchpad behind the arbitrated interconnect, and every trial runs
/// the sharded FFT instead of the sequential one.
struct TileMixSpec {
  std::uint32_t tiles = 1;  ///< power of two
  std::uint32_t banks = 1;  ///< power of two
  /// Per-tile schemes; shorter lists cycle across the tiles, empty
  /// defaults to SECDED everywhere.
  std::vector<mitigation::SchemeKind> schemes;
  /// Ledger scheme-column label; derived when empty.  A 1-tile/1-bank
  /// mix takes the classic scheme name ("OCEAN", ...), which is what
  /// keeps its ledger byte-identical to the classic platform path;
  /// larger mixes read "t4b2:secded+ocean+...".
  std::string name;
};

/// The spelled-out form of a mix: schemes cycle-extended to one entry
/// per tile, the name derived when empty.  CampaignRunner normalizes
/// its config through this at construction, and config_fingerprint
/// hashes through it, so fingerprints taken before and after
/// normalization agree (same contract as the implicit background
/// scenario).
TileMixSpec normalize_tile_mix(TileMixSpec mix);

struct CampaignConfig {
  std::vector<Volt> voltages{Volt{0.44}};
  std::vector<mitigation::SchemeKind> schemes{mitigation::SchemeKind::Secded};
  /// Multi-tile grid points, appended after `schemes` on the scheme
  /// axis (the grid iterates schemes first, then mixes, so a classic
  /// config's shard plan — and its fingerprint — is untouched when this
  /// is empty).
  std::vector<TileMixSpec> tile_mixes;
  /// Scripted scenarios; when empty a single no-event "background"
  /// scenario runs (stochastic model only).
  std::vector<Scenario> scenarios;
  std::uint64_t base_seed = 1;
  std::uint32_t seeds_per_cell = 4;
  std::size_t fft_points = 256;  ///< paper uses 1024; tests shrink it
  energy::MemoryStyle style = energy::MemoryStyle::CellBasedImec40;
  Hertz clock{290.0e3};
  /// Keep the analytic stochastic fault model active underneath the
  /// scripted events (false = scripted faults only).
  bool stochastic_background = true;
  /// OCEAN protocol knobs, including the voltage-escalation path.
  ocean::OceanConfig ocean;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

struct RunRecord {
  std::string scenario;
  std::string scheme;
  double vdd = 0.0;
  std::uint64_t seed = 0;
  RunOutcome outcome = RunOutcome::Clean;
  double snr_db = 0.0;
  std::uint64_t corrected_words = 0;
  std::uint64_t uncorrectable_words = 0;
  std::uint64_t injected_flips = 0;  ///< stochastic read+write flips, all arrays
  std::uint64_t stuck_bits = 0;
  std::uint64_t scenario_events_fired = 0;
  std::uint64_t ocean_restores = 0;
  std::uint64_t ocean_voltage_escalations = 0;
  std::uint64_t cycles = 0;
  /// Tile-cycles lost to bank contention (multi-tile mixes; always 0 on
  /// the classic single-core path).  Appended last so classic ledgers
  /// keep their field order.
  std::uint64_t contention_cycles = 0;
};

struct CampaignSummary {
  std::uint64_t runs = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected_uncorrectable = 0;
  std::uint64_t silent_data_corruption = 0;
  std::uint64_t system_failure = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config);
  ~CampaignRunner();
  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// Execute the full grid; returns the ledger ordered by grid cell.
  /// Repeatable: subsequent calls reuse the parked executor workers and
  /// the pooled platforms and produce an identical ledger.
  const std::vector<RunRecord>& run();

  const std::vector<RunRecord>& records() const { return records_; }
  CampaignSummary summary() const;

  // --- shard-level execution (run() and the CampaignService are both
  // built on these) -------------------------------------------------

  /// The deterministic shard decomposition of this runner's grid (the
  /// config as normalized at construction).  0 = one shard per cell.
  ShardPlan shard_plan(std::uint32_t seeds_per_shard = 0) const;

  /// Compute the golden reference and spin up the executor + pool
  /// slots.  Idempotent; must be called (once, from one thread) before
  /// any concurrent execute_shard_trial() use — run() and the
  /// CampaignService do so.
  void prepare();

  /// Execute trial `offset` of `shard` (seed = shard.seed_begin +
  /// offset) on worker `worker`'s pooled platform.  Safe to call
  /// concurrently for distinct workers after prepare().
  RunRecord execute_shard_trial(const Shard& shard, std::uint32_t offset,
                                unsigned worker);

  /// Execute trials [offset, offset + count) of `shard` into
  /// out[0..count): the batched replay engine (faultsim/batch.hpp)
  /// handles eligible shards while sim::batch_enabled(); trials it
  /// peels — and every trial of ineligible shards, or with the
  /// kill-switch off — run through the scalar execute_shard_trial
  /// reference path.  Byte-identical to `count` scalar calls, with the
  /// same concurrency contract.
  void execute_shard_trials(const Shard& shard, std::uint32_t offset,
                            std::uint32_t count, unsigned worker,
                            RunRecord* out);

  /// Preferred trial-chunk width for execute_shard_trials callers that
  /// interleave durable appends with execution (the CampaignService):
  /// the NTC_BATCH_TRIALS environment override, default 64, clamped to
  /// [1, 4096] at prepare().
  std::uint32_t batch_chunk_width(const Shard& shard) const;

  /// Batch-path counters (all zero before prepare() or with the engine
  /// never engaged).
  BatchStats batch_stats() const;

  /// The persistent executor (prepare() creates it on first use).
  Executor& executor();

  const CampaignConfig& config() const { return config_; }

  /// Machine-readable ledger exports for the bench harness.
  void write_csv(std::ostream& out) const;
  void write_json(std::ostream& out) const;

  /// Atomic path-based exports (write to `<path>.tmp`, fsync, rename):
  /// a crash mid-export never leaves a truncated ledger that looks
  /// complete.  Return false when the write failed.
  bool save_csv(const std::string& path) const;
  bool save_json(const std::string& path) const;
  bool save_telemetry_jsonl(const std::string& path) const;

  /// Telemetry side-ledger: the recorded trace as JSON lines (build
  /// record first, then one event per line).  Empty unless telemetry
  /// was enabled for the run; kept separate from write_json because
  /// trace timings are wall-clock (not byte-deterministic).
  void write_telemetry_jsonl(std::ostream& out) const;

 private:
  RunRecord execute_one(const Scenario& scenario,
                        mitigation::SchemeKind scheme, Volt vdd,
                        std::uint64_t seed, sim::PlatformPool& pool) const;
  /// The multi-tile counterpart: runs the sharded FFT on the mix's
  /// TiledPlatform (pooled per worker, keyed by mix index).
  RunRecord execute_one_tiled(const Scenario& scenario, std::size_t mix_index,
                              Volt vdd, std::uint64_t seed,
                              multitile::TiledPool& pool) const;
  void compute_golden();
  sim::PlatformConfig platform_base_config() const;
  multitile::TiledPlatformConfig tiled_base_config(
      const TileMixSpec& mix) const;

  CampaignConfig config_;
  std::vector<std::complex<double>> signal_;
  std::vector<std::complex<double>> reference_;  ///< double-precision FFT
  std::vector<std::uint32_t> golden_;            ///< fault-free output words
  bool golden_computed_ = false;
  std::vector<RunRecord> records_;

  /// Campaign-wide immutable model tables shared by every platform.
  std::shared_ptr<reliability::ModelTableCache> tables_;
  /// Trace-replay batch engine (built at prepare(); one per runner so
  /// captured traces are shared by every worker).
  std::unique_ptr<BatchEngine> batch_;
  std::uint32_t batch_width_ = 64;  ///< NTC_BATCH_TRIALS, parsed once
  /// Parked between run() calls; created on first use.
  std::unique_ptr<Executor> executor_;
  /// One private pool per executor worker (index = worker id).
  std::vector<std::unique_ptr<sim::PlatformPool>> pools_;
  /// Per-worker TiledPlatform pools (slot key = tile-mix index); only
  /// populated when the config carries tile mixes.
  std::vector<std::unique_ptr<multitile::TiledPool>> tiled_pools_;
};

}  // namespace ntc::faultsim
