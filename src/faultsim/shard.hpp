// Deterministic shard decomposition of a campaign grid.
//
// A campaign grid is the cross product scenario x scheme x voltage x
// seed, enumerated in exactly that nesting order (CampaignRunner::run
// has always ledgered it that way).  A shard is a contiguous seed range
// of one grid cell: the unit of checkpointing, retry and cross-process
// distribution.  Everything about a shard is a pure function of the
// campaign config and the seeds-per-shard chunking —
//
//   id           — dense index in enumeration order, stable across
//                  processes, restarts and shard-subset runs;
//   seed_begin   — absolute first Monte-Carlo seed of the range;
//   record_base  — index of the shard's first trial in the merged
//                  ledger, so segments merge back into the exact
//                  single-process record order no matter which worker
//                  or process ran which shard, in what order;
//
// — which is what makes exact resume possible: a killed run re-derives
// the identical plan and continues from the trial its segments prove
// durable.  The fingerprint ties segments to the plan that produced
// them; a segment whose header fingerprint disagrees was produced by a
// different grid (or chunking) and must not be resumed into.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ntc::faultsim {

struct CampaignConfig;

struct Shard {
  std::uint64_t id = 0;
  std::uint32_t scenario_index = 0;
  std::uint32_t scheme_index = 0;
  std::uint32_t voltage_index = 0;
  std::uint64_t seed_begin = 0;    ///< absolute seed of trial 0
  std::uint32_t trial_count = 0;   ///< seeds covered by this shard
  std::uint64_t record_base = 0;   ///< merged-ledger index of trial 0
};

struct ShardPlan {
  std::vector<Shard> shards;
  std::uint64_t total_records = 0;
  std::uint32_t seeds_per_shard = 0;
  /// Hash of the grid definition plus the chunking; segment headers
  /// carry it so resume and merge reject foreign segments.
  std::uint64_t fingerprint = 0;
};

/// Build the plan for `config`.  `seeds_per_shard` = 0 uses
/// config.seeds_per_cell (one shard per grid cell).  Empty
/// config.scenarios counts as the single implicit "background" scenario
/// CampaignRunner substitutes.
ShardPlan make_shard_plan(const CampaignConfig& config,
                          std::uint32_t seeds_per_shard = 0);

/// FNV-1a hash over every result-affecting field of the config
/// (voltages, schemes, scenario scripts, seeds, workload size, memory
/// style, clock, OCEAN knobs).  Deliberately excludes `threads`: the
/// ledger is thread-count invariant, so segments written at different
/// worker counts interoperate.
std::uint64_t config_fingerprint(const CampaignConfig& config);

/// Canonical segment file name for a shard: "shard-000042.ntcl".
std::string shard_segment_name(std::uint64_t shard_id);

}  // namespace ntc::faultsim
