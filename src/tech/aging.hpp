// Lifetime threshold-voltage drift (BTI-class power law).
//
// Section IV of the paper notes that the minimal operating voltage of a
// memory changes over the lifetime of a product, which is what motivates
// the run-time monitoring and control loop of the core library.  This
// model supplies that drift: a Vt shift that grows as a power law of
// stress time, which translates one-for-one into a shift of the
// retention and access voltage limits.
#pragma once

#include "common/units.hpp"

namespace ntc::tech {

class AgingModel {
 public:
  /// `drift_at_10_years` is the Vt/Vmin shift accumulated after ten
  /// years of stress; `exponent` is the BTI time exponent (~0.16-0.25).
  explicit AgingModel(Volt drift_at_10_years = Volt{0.040},
                      double exponent = 0.20);

  /// Accumulated voltage-limit shift after `age` of stress.
  Volt drift(Second age) const;

  /// Inverse: stress time after which the drift reaches `shift`.
  Second time_to_drift(Volt shift) const;

 private:
  double drift_10y_v_;
  double exponent_;
  static constexpr double kTenYearsSeconds = 10.0 * 365.25 * 24.0 * 3600.0;
};

}  // namespace ntc::tech
