#include "tech/logic_timing.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::tech {

LogicTiming::LogicTiming(TechnologyNode node, double stages, double margin)
    : inverter_(std::move(node)), stages_(stages), margin_(margin) {
  NTC_REQUIRE(stages > 0.0 && margin >= 0.0 && margin < 1.0);
}

Second LogicTiming::critical_path_delay(Volt vdd, Celsius temperature) const {
  const Second fo4 = inverter_.delay(vdd, temperature);
  return Second{stages_ * fo4.value / (1.0 - margin_)};
}

Hertz LogicTiming::fmax(Volt vdd, Celsius temperature) const {
  return frequency(critical_path_delay(vdd, temperature));
}

Volt LogicTiming::min_voltage_for(Hertz f, Volt lo, Volt hi,
                                  Celsius temperature) const {
  NTC_REQUIRE(lo.value < hi.value);
  if (fmax(hi, temperature) < f) return hi;
  if (fmax(lo, temperature) >= f) return lo;
  double v = bisect(
      [&](double vdd) { return fmax(Volt{vdd}, temperature).value - f.value; },
      lo.value, hi.value);
  return Volt{v};
}

LogicTiming platform_logic_timing_40nm() {
  // Calibration: the paper's platform bottoms out at 290 kHz at its
  // lowest operating voltage, 0.33 V.  With the 40 nm LP inverter model
  // the stage count that satisfies fmax(0.33 V) = 290 kHz is computed
  // here once rather than hard-coded, so device-model tweaks cannot
  // silently break the anchor.
  TechnologyNode node = node_40nm_lp();
  InverterModel inv(node);
  const double fo4_at_anchor = inv.delay(Volt{0.33}).value;
  const double margin = 0.10;
  const double target_period = 1.0 / 290.0e3;
  const double stages = target_period * (1.0 - margin) / fo4_at_anchor;
  return LogicTiming(node, stages, margin);
}

}  // namespace ntc::tech
