// Critical-path timing of the digital logic domain.
//
// The platform studies (Table 2, Figures 8/9) need f_max(VDD) for the
// processor pipeline: the solver combines the reliability-driven minimum
// voltage with the frequency-driven one.  The path is modelled as N
// FO4-equivalent stages plus margin, and is calibrated so the anchor the
// paper states — the platform just sustains 290 kHz at the lowest
// usable supply (0.33 V) — holds.
#pragma once

#include "tech/inverter.hpp"

namespace ntc::tech {

class LogicTiming {
 public:
  /// `stages` is the FO4 depth of the critical path; `margin` is the
  /// fraction of the cycle reserved for clocking overheads/jitter.
  LogicTiming(TechnologyNode node, double stages, double margin = 0.10);

  /// Maximum clock at the given supply.
  Hertz fmax(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// Critical-path delay (incl. margin) at the given supply.
  Second critical_path_delay(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// Lowest supply that sustains `f`, searched on [lo, hi]; returns hi
  /// if even hi is too slow. fmax is monotonic in VDD.
  Volt min_voltage_for(Hertz f, Volt lo = Volt{0.25}, Volt hi = Volt{1.2},
                       Celsius temperature = Celsius{25.0}) const;

  const TechnologyNode& node() const { return inverter_.node(); }

 private:
  InverterModel inverter_;
  double stages_;
  double margin_;
};

/// The evaluated NTC platform's logic timing in 40 nm LP: FO4 depth
/// calibrated such that fmax(0.33 V) ~= 290 kHz, giving
/// fmax(0.44 V) ~= 2.3 MHz and fmax(0.66 V) ~= 29 MHz — consistent with
/// the operating points of Table 2 and the 11 MHz scenario.
LogicTiming platform_logic_timing_40nm();

}  // namespace ntc::tech
