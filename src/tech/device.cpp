#include "tech/device.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::tech {

double thermal_voltage(Celsius temperature) {
  const double kelvin = temperature.value + 273.15;
  NTC_REQUIRE(kelvin > 0.0);
  return 8.617333262e-5 * kelvin;  // k/q in V/K
}

double mismatch_sigma_v(const DeviceParams& p) {
  NTC_REQUIRE(p.width_um > 0.0 && p.length_um > 0.0);
  return p.avt_mv_um * 1e-3 / std::sqrt(p.width_um * p.length_um);
}

double effective_vt(const DeviceParams& p, double vds, Celsius temperature,
                    double corner_sigmas, double delta_vt) {
  return p.vt0 - p.dibl * vds + p.vt_tempco * (temperature.value - 25.0) +
         corner_sigmas * p.corner_sigma_v + delta_vt;
}

Ampere drain_current(const DeviceParams& p, double vgs, double vds,
                     Celsius temperature, double corner_sigmas,
                     double delta_vt) {
  NTC_REQUIRE(vgs >= 0.0 && vds >= 0.0);
  const double vt_th = thermal_voltage(temperature);
  const double vt_eff = effective_vt(p, vds, temperature, corner_sigmas, delta_vt);
  // EKV forward current: i = ln^2(1 + exp((vgs - vt)/(2 n vT))).
  // Sub-threshold limit: exp((vgs-vt)/(n vT)) / 4-ish; strong inversion:
  // ((vgs-vt)/(2 n vT))^2 -> square law.  i_spec is the current at
  // vgs = vt (where the interpolation equals ln^2(2)).
  const double x = (vgs - vt_eff) / (2.0 * p.n * vt_th);
  double lns;
  if (x > 30.0) {
    lns = x;  // log1p(exp(x)) ~ x, avoids overflow
  } else {
    lns = std::log1p(std::exp(x));
  }
  const double i_norm = lns * lns / (M_LN2 * M_LN2);  // == 1 at vgs = vt
  // Drain saturation factor; full current once vds exceeds a few vT.
  const double sat = -std::expm1(-vds / vt_th);
  const double i_ua = p.i_spec_ua_um * p.width_um * i_norm * sat;
  return Ampere{i_ua * 1e-6};
}

Ampere leakage_current(const DeviceParams& p, double vdd, Celsius temperature,
                       double corner_sigmas, double delta_vt) {
  return drain_current(p, 0.0, vdd, temperature, corner_sigmas, delta_vt);
}

double subthreshold_swing_mv_dec(const DeviceParams& p, Celsius temperature) {
  return p.n * thermal_voltage(temperature) * std::log(10.0) * 1e3;
}

}  // namespace ntc::tech
