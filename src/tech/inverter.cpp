#include "tech/inverter.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace ntc::tech {

InverterModel::InverterModel(TechnologyNode node) : node_(std::move(node)) {}

Second InverterModel::delay_with_mismatch(Volt vdd, double dvt_n, double dvt_p,
                                          Celsius temperature) const {
  NTC_REQUIRE(vdd.value > 0.0);
  const double c_load = node_.logic_fo4_load_ff * 1e-15;  // F
  // CV/I for each edge; the stage delay alternates edges, so average.
  const Ampere i_n =
      drain_current(node_.nmos, vdd.value, vdd.value, temperature, 0.0, dvt_n);
  const Ampere i_p =
      drain_current(node_.pmos, vdd.value, vdd.value, temperature, 0.0, dvt_p);
  NTC_REQUIRE(i_n.value > 0.0 && i_p.value > 0.0);
  const double t_fall = c_load * vdd.value / i_n.value;
  const double t_rise = c_load * vdd.value / i_p.value;
  return Second{0.5 * (t_fall + t_rise)};
}

Second InverterModel::delay(Volt vdd, Celsius temperature) const {
  return delay_with_mismatch(vdd, 0.0, 0.0, temperature);
}

Second InverterModel::sample_delay(Volt vdd, Rng& rng,
                                   Celsius temperature) const {
  const double dvt_n = rng.normal(0.0, mismatch_sigma_v(node_.nmos));
  const double dvt_p = rng.normal(0.0, mismatch_sigma_v(node_.pmos));
  return delay_with_mismatch(vdd, dvt_n, dvt_p, temperature);
}

DelayDistribution InverterModel::characterize(Volt vdd, std::size_t samples,
                                              Rng& rng,
                                              Celsius temperature) const {
  NTC_REQUIRE(samples >= 2);
  RunningStats stats;
  std::vector<double> values;
  values.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double d = sample_delay(vdd, rng, temperature).value;
    stats.add(d);
    values.push_back(d);
  }
  DelayDistribution dist;
  dist.mean = Second{stats.mean()};
  dist.sigma = Second{stats.stddev()};
  dist.p99 = Second{percentile(std::move(values), 0.99)};
  dist.sigma_over_mean = dist.sigma.value / dist.mean.value;
  return dist;
}

}  // namespace ntc::tech
