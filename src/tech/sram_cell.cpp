#include "tech/sram_cell.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ntc::tech {

SramCellModel::SramCellModel(TechnologyNode node) : node_(std::move(node)) {
  // The margin sigma tracks device mismatch: roughly a third of the
  // pull-down Vt sigma propagates into the SNM (butterfly-curve
  // sensitivity of a 6T cell).
  sigma_v_ = 0.35 * mismatch_sigma_v(node_.nmos);
}

reliability::NoiseMarginModel SramCellModel::margin_model(
    SramMode mode, const AssistConfig& assist) const {
  NTC_REQUIRE(assist.wl_underdrive_v >= 0.0);
  NTC_REQUIRE(assist.negative_bitline_v >= 0.0);
  NTC_REQUIRE(assist.cell_vdd_boost_v >= 0.0);
  NTC_REQUIRE(assist.cell_vdd_droop_v >= 0.0);
  NTC_REQUIRE(assist.wl_write_boost_v >= 0.0);

  // Baseline linear margins of a 6T cell (typical 40 nm LP butterfly
  // sensitivities); the mismatch term scales with the node's Avt so
  // finFET cells are automatically tighter.
  double c0, c1;
  switch (mode) {
    case SramMode::Hold:
      c0 = 0.30;
      c1 = -0.040;
      break;
    case SramMode::Read:
      // Worst margin: the access transistor disturbs the storage node.
      c0 = 0.25;
      c1 = -0.050;
      break;
    case SramMode::Write:
      c0 = 0.28;
      c1 = -0.045;
      break;
    default:
      NTC_REQUIRE(false);
      c0 = c1 = 0;
  }

  // Assist effects (paper Section III: "strengthen the cell during the
  // access by (temporarily) deviating from the nominal voltage levels
  // on the supply rails, bit-lines, and/or word-lines").
  switch (mode) {
    case SramMode::Hold:
      c1 += c0 * assist.cell_vdd_boost_v;  // boosted cell rail
      break;
    case SramMode::Read:
      c1 += 0.5 * assist.wl_underdrive_v;  // weaker access transistor
      c1 += c0 * assist.cell_vdd_boost_v;  // stronger latch
      break;
    case SramMode::Write:
      c1 -= 0.7 * assist.wl_underdrive_v;  // underdrive HURTS writes
      c1 += 0.8 * assist.negative_bitline_v;
      c1 += 0.8 * c0 * assist.cell_vdd_droop_v;  // weakened latch
      c1 += 0.6 * assist.wl_write_boost_v;
      break;
  }
  return reliability::NoiseMarginModel(c0, c1, sigma_v_);
}

Volt SramCellModel::vmin(SramMode mode, double sigma,
                         const AssistConfig& assist) const {
  NTC_REQUIRE(sigma >= 0.0);
  // A cell `sigma` deviations weak: margin reduced by sigma * c2.
  return margin_model(mode, assist).cell_retention_vmin(-sigma);
}

SramMode SramCellModel::binding_mode(double sigma,
                                     const AssistConfig& assist) const {
  SramMode worst = SramMode::Hold;
  double v_worst = -1.0;
  for (SramMode mode : {SramMode::Hold, SramMode::Read, SramMode::Write}) {
    const double v = vmin(mode, sigma, assist).value;
    if (v > v_worst) {
      v_worst = v;
      worst = mode;
    }
  }
  return worst;
}

double SramCellModel::assist_energy_overhead(const AssistConfig& assist) const {
  const double vdd = node_.vdd_nominal.value;
  // Each knob switches an extra rail or needs a charge pump; costs are
  // proportional to the level deviation relative to VDD.
  return 0.30 * assist.wl_underdrive_v / vdd +
         0.50 * assist.negative_bitline_v / vdd +
         0.60 * assist.cell_vdd_boost_v / vdd +
         0.30 * assist.cell_vdd_droop_v / vdd +
         0.50 * assist.wl_write_boost_v / vdd;
}

}  // namespace ntc::tech
