// Compact MOS device model valid from sub-threshold through strong
// inversion (EKV-style interpolation).  This is the physical core that
// every delay, leakage and minimum-voltage estimate in the library rests
// on; it trades SPICE accuracy for a smooth, monotonic, analytically
// well-behaved I(V) suitable for near-threshold exploration.
#pragma once

#include "common/units.hpp"
#include "tech/corner.hpp"

namespace ntc::tech {

/// Device-class parameters (one set per transistor flavour per node).
struct DeviceParams {
  double vt0 = 0.45;          ///< nominal threshold voltage at 25 C [V]
  double n = 1.5;             ///< subthreshold slope factor (SS = n*vT*ln10)
  double i_spec_ua_um = 0.6;  ///< specific current at vgs = vt0 [uA/um]
  double dibl = 0.10;         ///< Vt reduction per volt of vds [V/V]
  double vt_tempco = -1.0e-3; ///< Vt drift per kelvin [V/K]
  double avt_mv_um = 3.5;     ///< Pelgrom mismatch coefficient [mV*um]
  double width_um = 0.12;     ///< drawn width of the reference device
  double length_um = 0.04;    ///< drawn length of the reference device
  double corner_sigma_v = 0.015;  ///< global-corner Vt sigma [V]
};

/// Thermal voltage kT/q at the given temperature.
double thermal_voltage(Celsius temperature);

/// Random local-mismatch sigma of Vt for this device geometry
/// (Pelgrom: Avt / sqrt(W*L)).
double mismatch_sigma_v(const DeviceParams& p);

/// Effective threshold voltage including corner shift, temperature and
/// DIBL, plus an explicit local mismatch offset `delta_vt`.
double effective_vt(const DeviceParams& p, double vds, Celsius temperature,
                    double corner_sigmas, double delta_vt);

/// Drain current [A] of the reference-width device.  Continuous EKV
/// interpolation: exponential below Vt, square-law above, smooth at Vt.
Ampere drain_current(const DeviceParams& p, double vgs, double vds,
                     Celsius temperature, double corner_sigmas = 0.0,
                     double delta_vt = 0.0);

/// Subthreshold leakage current [A] at vgs = 0, vds = vdd.
Ampere leakage_current(const DeviceParams& p, double vdd, Celsius temperature,
                       double corner_sigmas = 0.0, double delta_vt = 0.0);

/// Subthreshold swing [mV/decade] at the given temperature.
double subthreshold_swing_mv_dec(const DeviceParams& p, Celsius temperature);

}  // namespace ntc::tech
