// Inverter delay model with local-mismatch Monte Carlo.
//
// Reproduces Figure 10 of the paper: mean FO4-class inverter delay and
// its sigma spread as the supply is scaled into the near-threshold
// regime, for each technology node.
#pragma once

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "tech/node.hpp"

namespace ntc::tech {

/// Mean/sigma characterisation of delay at one supply point.
struct DelayDistribution {
  Second mean{0.0};
  Second sigma{0.0};
  Second p99{0.0};  ///< 99th percentile (timing-closure proxy)
  double sigma_over_mean = 0.0;
};

class InverterModel {
 public:
  explicit InverterModel(TechnologyNode node);

  const TechnologyNode& node() const { return node_; }

  /// Nominal (mismatch-free, TT) propagation delay at `vdd`.
  Second delay(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// One Monte-Carlo delay sample with random Vt mismatch on the N and P
  /// devices.
  Second sample_delay(Volt vdd, Rng& rng,
                      Celsius temperature = Celsius{25.0}) const;

  /// Monte-Carlo characterisation at one supply point.
  DelayDistribution characterize(Volt vdd, std::size_t samples, Rng& rng,
                                 Celsius temperature = Celsius{25.0}) const;

 private:
  Second delay_with_mismatch(Volt vdd, double dvt_n, double dvt_p,
                             Celsius temperature) const;

  TechnologyNode node_;
};

}  // namespace ntc::tech
