#include "tech/node.hpp"

namespace ntc::tech {

TechnologyNode node_40nm_lp() {
  TechnologyNode node;
  node.name = "40nm-LP planar";
  node.feature_nm = 40.0;
  node.architecture = DeviceArchitecture::PlanarBulk;
  node.vdd_nominal = Volt{1.1};

  // Logic-flavour Vt chosen so the platform timing window of the paper
  // holds: fmax(0.43 V) < 1.96 MHz <= fmax(0.44 V) with the 290 kHz /
  // 0.33 V anchor (Table 2's frequency-bound OCEAN point).
  node.nmos.vt0 = 0.42;
  node.nmos.n = 1.50;  // SS ~ 92 mV/dec at 25 C: typical LP planar
  node.nmos.i_spec_ua_um = 0.60;
  node.nmos.dibl = 0.08;
  node.nmos.avt_mv_um = 3.5;
  node.nmos.width_um = 0.12;
  node.nmos.length_um = 0.04;
  node.nmos.corner_sigma_v = 0.015;

  node.pmos = node.nmos;
  node.pmos.vt0 = 0.44;
  node.pmos.i_spec_ua_um = 0.30;  // weaker carrier mobility
  node.pmos.width_um = 0.16;

  node.hvt_nmos = node.nmos;
  node.hvt_nmos.vt0 = 0.53;  // memory timing path: HVT for leakage
  node.hvt_nmos.i_spec_ua_um = 0.45;

  node.gate_cap_ff_um = 0.9;
  node.wire_cap_ff_um = 0.20;
  node.logic_fo4_load_ff = 0.62;
  return node;
}

TechnologyNode node_65nm_lp() {
  TechnologyNode node;
  node.name = "65nm-LP planar";
  node.feature_nm = 65.0;
  node.architecture = DeviceArchitecture::PlanarBulk;
  node.vdd_nominal = Volt{1.2};

  node.nmos.vt0 = 0.48;
  node.nmos.n = 1.45;
  node.nmos.i_spec_ua_um = 0.50;
  node.nmos.dibl = 0.06;
  node.nmos.avt_mv_um = 4.5;
  node.nmos.width_um = 0.18;
  node.nmos.length_um = 0.06;
  node.nmos.corner_sigma_v = 0.018;

  node.pmos = node.nmos;
  node.pmos.vt0 = 0.50;
  node.pmos.i_spec_ua_um = 0.25;
  node.pmos.width_um = 0.24;

  node.hvt_nmos = node.nmos;
  node.hvt_nmos.vt0 = 0.56;
  node.hvt_nmos.i_spec_ua_um = 0.38;

  node.gate_cap_ff_um = 1.0;
  node.wire_cap_ff_um = 0.22;
  node.logic_fo4_load_ff = 1.1;
  return node;
}

TechnologyNode node_14nm_finfet() {
  TechnologyNode node;
  node.name = "14nm finFET";
  node.feature_nm = 14.0;
  node.architecture = DeviceArchitecture::FinFet;
  node.vdd_nominal = Volt{0.8};

  // finFET: near-ideal electrostatics -> n close to 1 (SS ~ 70 mV/dec),
  // tight Avt because the channel is undoped.
  node.nmos.vt0 = 0.38;
  node.nmos.n = 1.18;
  node.nmos.i_spec_ua_um = 1.10;
  node.nmos.dibl = 0.035;
  node.nmos.avt_mv_um = 1.4;
  node.nmos.width_um = 0.10;  // effective (fin perimeter) width
  node.nmos.length_um = 0.018;
  node.nmos.corner_sigma_v = 0.010;

  node.pmos = node.nmos;
  node.pmos.vt0 = 0.39;
  node.pmos.i_spec_ua_um = 0.95;  // strained PMOS nearly matches NMOS

  node.hvt_nmos = node.nmos;
  node.hvt_nmos.vt0 = 0.45;
  node.hvt_nmos.i_spec_ua_um = 0.85;

  node.gate_cap_ff_um = 1.2;  // fin gate stack is denser
  node.wire_cap_ff_um = 0.17;
  node.logic_fo4_load_ff = 0.30;
  return node;
}

TechnologyNode node_10nm_multigate() {
  TechnologyNode node;
  node.name = "10nm multi-gate";
  node.feature_nm = 10.0;
  node.architecture = DeviceArchitecture::MultiGateNanowire;
  node.vdd_nominal = Volt{0.75};

  // Gate-all-around-class control: slightly better swing and mismatch
  // than 14 nm, ~40% more drive and ~30% less load -> the ~2x speed-up
  // the paper quotes for the 14 -> 10 nm transition.
  node.nmos.vt0 = 0.36;
  node.nmos.n = 1.12;
  node.nmos.i_spec_ua_um = 1.40;
  node.nmos.dibl = 0.028;
  node.nmos.avt_mv_um = 1.1;
  node.nmos.width_um = 0.09;
  node.nmos.length_um = 0.014;
  node.nmos.corner_sigma_v = 0.008;

  node.pmos = node.nmos;
  node.pmos.vt0 = 0.37;
  node.pmos.i_spec_ua_um = 1.25;

  node.hvt_nmos = node.nmos;
  node.hvt_nmos.vt0 = 0.43;
  node.hvt_nmos.i_spec_ua_um = 1.10;

  node.gate_cap_ff_um = 1.3;
  node.wire_cap_ff_um = 0.15;
  node.logic_fo4_load_ff = 0.23;
  return node;
}

}  // namespace ntc::tech
