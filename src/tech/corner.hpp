// Process / voltage / temperature corner descriptors.
#pragma once

#include <string>

#include "common/units.hpp"

namespace ntc::tech {

/// Global process corner (affects threshold voltage of N and P devices).
enum class Corner { TT, SS, FF, SF, FS };

/// Threshold-voltage shift of the N device at a given corner, as a
/// multiple of the node's corner sigma (slow = higher Vt).
constexpr double corner_nmos_sigma(Corner c) {
  switch (c) {
    case Corner::TT: return 0.0;
    case Corner::SS: return +3.0;
    case Corner::FF: return -3.0;
    case Corner::SF: return +3.0;
    case Corner::FS: return -3.0;
  }
  return 0.0;
}

constexpr double corner_pmos_sigma(Corner c) {
  switch (c) {
    case Corner::TT: return 0.0;
    case Corner::SS: return +3.0;
    case Corner::FF: return -3.0;
    case Corner::SF: return -3.0;
    case Corner::FS: return +3.0;
  }
  return 0.0;
}

inline std::string to_string(Corner c) {
  switch (c) {
    case Corner::TT: return "TT";
    case Corner::SS: return "SS";
    case Corner::FF: return "FF";
    case Corner::SF: return "SF";
    case Corner::FS: return "FS";
  }
  return "??";
}

/// Full operating condition.
struct OperatingPoint {
  Corner corner = Corner::TT;
  Volt vdd{1.1};
  Celsius temperature{25.0};
};

}  // namespace ntc::tech
