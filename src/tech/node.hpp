// Technology node descriptors with calibrated presets.
//
// Presets cover the nodes the paper touches: the 40 nm low-power planar
// process of the test chip, the 65 nm node of the cell-based reference
// design [13], and the 14 nm finFET / 10 nm multi-gate outlook devices
// of Section VI.  Parameters are public-domain-class values chosen so
// the derived figures (subthreshold swing, mismatch sigma, delay ratios)
// reproduce the trends the paper reports.
#pragma once

#include <string>

#include "tech/device.hpp"

namespace ntc::tech {

enum class DeviceArchitecture { PlanarBulk, FinFet, MultiGateNanowire };

struct TechnologyNode {
  std::string name;
  double feature_nm = 40.0;
  DeviceArchitecture architecture = DeviceArchitecture::PlanarBulk;
  Volt vdd_nominal{1.1};

  DeviceParams nmos;  ///< logic NMOS flavour
  DeviceParams pmos;  ///< logic PMOS flavour (|Vt|, current magnitudes)
  /// High-Vt flavour used on memory bit-cell / timing paths; slower but
  /// lower leakage than the logic device.
  DeviceParams hvt_nmos;

  double gate_cap_ff_um = 0.9;    ///< gate capacitance per um width [fF/um]
  double wire_cap_ff_um = 0.20;   ///< wire capacitance per um length [fF/um]
  double logic_fo4_load_ff = 0.6; ///< typical FO4 load of a min inverter [fF]
};

/// imec-class 40 nm low-power planar bulk (the paper's test-chip node).
TechnologyNode node_40nm_lp();

/// 65 nm low-power planar bulk (cell-based reference design [13]).
TechnologyNode node_65nm_lp();

/// 14 nm finFET outlook device (Section VI).
TechnologyNode node_14nm_finfet();

/// 10 nm multi-gate / nanowire outlook device (Section VI).
TechnologyNode node_10nm_multigate();

}  // namespace ntc::tech
