#include "tech/aging.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::tech {

AgingModel::AgingModel(Volt drift_at_10_years, double exponent)
    : drift_10y_v_(drift_at_10_years.value), exponent_(exponent) {
  NTC_REQUIRE(drift_10y_v_ >= 0.0);
  NTC_REQUIRE(exponent > 0.0 && exponent < 1.0);
}

Volt AgingModel::drift(Second age) const {
  NTC_REQUIRE(age.value >= 0.0);
  if (age.value == 0.0) return Volt{0.0};
  return Volt{drift_10y_v_ * std::pow(age.value / kTenYearsSeconds, exponent_)};
}

Second AgingModel::time_to_drift(Volt shift) const {
  NTC_REQUIRE(shift.value >= 0.0);
  if (drift_10y_v_ == 0.0) return Second{1e300};
  return Second{kTenYearsSeconds *
                std::pow(shift.value / drift_10y_v_, 1.0 / exponent_)};
}

}  // namespace ntc::tech
