// 6T SRAM cell stability margins and periphery assist techniques
// (paper Section III).
//
// The three operating modes of an SRAM — read, write, hold — each have
// their own minimum supply, set by different margin mechanisms:
//   * hold:  the cross-coupled pair's static noise margin (SNM);
//   * read:  the worst margin — the access transistor disturbs the
//     internal node while the wordline is high;
//   * write: the ability of the bitline driver to overpower the pull-up.
// All margins are modelled in the paper's linear-Gaussian form
// (Eq. 2: NM = c0·VDD + c1 + c2·sigma), so every margin yields a
// NoiseMarginModel usable by the rest of the library.
//
// Section III's assist techniques act on these margins by (temporarily)
// deviating the wordline/bitline/cell-supply levels; the AssistConfig
// captures the standard knobs and their margin effect, letting the
// ablation bench quantify how much supply headroom each assist buys.
#pragma once

#include "reliability/noise_margin.hpp"
#include "tech/node.hpp"

namespace ntc::tech {

enum class SramMode { Hold, Read, Write };

/// Periphery assist knobs (all voltages in volts, all >= 0).
struct AssistConfig {
  /// Wordline underdrive: WL high level reduced below VDD during reads;
  /// weakens the access transistor -> improves read margin, degrades
  /// write margin.
  double wl_underdrive_v = 0.0;
  /// Negative bitline during writes: BL driven below ground; strengthens
  /// the write driver -> improves write margin only.
  double negative_bitline_v = 0.0;
  /// Cell-supply boost during reads (or droop during writes): raising
  /// the cell rail strengthens the latch -> improves read/hold margins;
  /// the complementary write droop improves write margin.
  double cell_vdd_boost_v = 0.0;
  double cell_vdd_droop_v = 0.0;
  /// Wordline boost above VDD during writes (improves write margin,
  /// costs a charge pump).
  double wl_write_boost_v = 0.0;
};

/// Margin model of a 6T cell in one mode on a given node.
class SramCellModel {
 public:
  /// `cell_sigma_v` is the per-cell margin sigma from mismatch
  /// (Pelgrom on the six devices, dominated by the pull-down pair).
  explicit SramCellModel(TechnologyNode node);

  /// Linear-Gaussian margin model for a mode under given assists.
  reliability::NoiseMarginModel margin_model(
      SramMode mode, const AssistConfig& assist = {}) const;

  /// Minimum supply at which the margin of `mode` holds for a cell at
  /// `sigma` deviations (e.g. 5-6 sigma for Mb-class arrays).
  Volt vmin(SramMode mode, double sigma,
            const AssistConfig& assist = {}) const;

  /// The binding mode (largest vmin) without/with assists.
  SramMode binding_mode(double sigma, const AssistConfig& assist = {}) const;

  /// Energy overhead per access of an assist configuration, as a
  /// fraction of the baseline access energy (charge pumps, extra rail
  /// switching).
  double assist_energy_overhead(const AssistConfig& assist) const;

 private:
  TechnologyNode node_;
  double sigma_v_;  // per-cell margin sigma
};

}  // namespace ntc::tech
