#include "mitigation/word_failure.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::mitigation {

double word_failure_probability(const MitigationScheme& scheme, double p_bit) {
  return binomial_tail_ge(scheme.stored_bits, scheme.failure_threshold, p_bit);
}

double log_word_failure_probability(const MitigationScheme& scheme,
                                    double p_bit) {
  return log_binomial_tail_ge(scheme.stored_bits, scheme.failure_threshold,
                              p_bit);
}

double combined_bit_error_probability(
    const reliability::AccessErrorModel& access,
    const reliability::NoiseMarginModel& retention, Volt vdd,
    double retention_weight) {
  NTC_REQUIRE(retention_weight >= 0.0 && retention_weight <= 1.0);
  const double pa = access.p_bit_err(vdd);
  const double pr = retention_weight * retention.p_bit_fail(vdd);
  // Independent mechanisms: 1 - (1-pa)(1-pr).
  return pa + pr - pa * pr;
}

double failures_per_second(const MitigationScheme& scheme, double p_bit,
                           Hertz transaction_rate) {
  NTC_REQUIRE(transaction_rate.value >= 0.0);
  return word_failure_probability(scheme, p_bit) * transaction_rate.value;
}

}  // namespace ntc::mitigation
