// Minimum-voltage solver under FIT and frequency constraints (Table 2).
//
// For each mitigation scheme the lowest usable supply is the larger of
//   * the reliability limit: smallest VDD where the per-transaction
//     failure probability meets the FIT target, and
//   * the performance limit: smallest VDD where the logic still makes
//     the required clock,
// snapped up to the platform's supply-step grid (10 mV here).  With the
// cell-based array this reproduces the paper's Table 2 ladder exactly:
// 0.55 / 0.44 / 0.33 V at 290 kHz and 0.55 / 0.44 / 0.44 V at 1.96 MHz.
#pragma once

#include <optional>
#include <vector>

#include "mitigation/word_failure.hpp"
#include "tech/logic_timing.hpp"

namespace ntc::mitigation {

struct SolverConstraints {
  double fit_per_transaction = 1e-15;  ///< paper's acceptance bound
  Hertz min_frequency{0.0};            ///< performance requirement
  Volt supply_grid{0.01};              ///< regulator step (snap up)
  double retention_weight = 1.0;       ///< see combined_bit_error_probability
};

struct OperatingPoint {
  Volt voltage{0.0};          ///< chosen supply (grid-snapped)
  Volt reliability_limit{0.0};///< FIT-driven bound before snapping
  Volt performance_limit{0.0};///< frequency-driven bound before snapping
  double p_bit = 0.0;         ///< per-bit error probability at `voltage`
  double word_failure = 0.0;  ///< per-transaction failure at `voltage`
  bool reliability_bound = false;  ///< which constraint was binding
};

class MinVoltageSolver {
 public:
  MinVoltageSolver(reliability::AccessErrorModel access,
                   reliability::NoiseMarginModel retention,
                   tech::LogicTiming timing);

  /// Minimum operating point for one scheme.
  OperatingPoint solve(const MitigationScheme& scheme,
                       const SolverConstraints& constraints) const;

  /// Per-bit error probability at a supply (access + retention terms).
  double p_bit(Volt vdd, double retention_weight = 1.0) const;

 private:
  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  tech::LogicTiming timing_;
};

/// The solver configured for the paper's cell-based 40 nm platform.
MinVoltageSolver cell_based_platform_solver();

/// The solver configured for the commercial-macro platform (the 11 MHz
/// scenario of Figure 9).
MinVoltageSolver commercial_platform_solver();

}  // namespace ntc::mitigation
