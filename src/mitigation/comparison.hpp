// Scheme-by-scheme operating-point comparison (Table 2 and the
// headline savings ratios of the conclusion).
#pragma once

#include <string>
#include <vector>

#include "mitigation/voltage_solver.hpp"

namespace ntc::mitigation {

struct SchemeOperatingPoint {
  MitigationScheme scheme;
  OperatingPoint point;
};

struct FrequencyComparison {
  Hertz frequency{0.0};
  std::vector<SchemeOperatingPoint> schemes;  // no-mit, ECC, OCEAN order
};

/// Operating points of the three paper schemes at each frequency
/// requirement (the rows of Table 2).
std::vector<FrequencyComparison> compare_schemes(
    const MinVoltageSolver& solver, const std::vector<Hertz>& frequencies,
    const SolverConstraints& base_constraints = {});

/// Dynamic-power ratio between two supplies: (v_ref / v)^2 — the
/// paper's conclusion metric ("3.3x lower dynamic power ... beyond the
/// voltage limit for error free operation": (0.6 V / 0.33 V)^2 = 3.3).
double dynamic_power_ratio(Volt v_ref, Volt v);

}  // namespace ntc::mitigation
