// Error-mitigation scheme descriptors (paper Section V).
//
// A scheme is characterised by how many simultaneous bit errors in one
// memory word defeat it (the failure threshold), how many bits it
// actually stores per 32-bit data word, and its codec overheads:
//   * no mitigation — any single bit error is a failure (threshold 1);
//   * SECDED (39,32) — corrects 1, detects 2, a triple-bit error causes
//     system failure (threshold 3);
//   * OCEAN — demand-driven checkpoint/rollback with a quadruple-error-
//     correcting protected buffer; a quintuple error causes system
//     failure (threshold 5).
#pragma once

#include <cstdint>
#include <string>

#include "ecc/code.hpp"

namespace ntc::mitigation {

enum class SchemeKind { NoMitigation, Secded, Ocean, Custom };

struct MitigationScheme {
  SchemeKind kind = SchemeKind::NoMitigation;
  std::string name = "No mitigation";
  std::uint32_t data_bits = 32;
  std::uint32_t stored_bits = 32;     ///< bits physically read/written per word
  std::uint32_t failure_threshold = 1; ///< simultaneous bit errors -> failure
  /// Dynamic memory-energy multiplier (stored_bits / data_bits).
  double memory_energy_factor() const {
    return static_cast<double>(stored_bits) / static_cast<double>(data_bits);
  }
};

/// Running the memory bare: FIT requires error-free operation.
MitigationScheme no_mitigation();

/// The (39,32) SECDED reference scheme.
MitigationScheme secded_scheme();

/// OCEAN: scratchpad stays 32-bit (detection via software CRC +
/// rollback); failure needs 5 simultaneous errors (protected-buffer BCH
/// t=4 exhausted).  Stored bits stay at 32 on the main scratchpad; the
/// checkpoint traffic overhead is charged separately by the platform
/// model.
MitigationScheme ocean_scheme();

/// Derive a scheme from an arbitrary block code: failure at t+1 errors
/// beyond guaranteed correction (conservative: detection-only margin is
/// not counted as survival).
MitigationScheme scheme_from_code(const ecc::BlockCode& code,
                                  std::string name = {});

}  // namespace ntc::mitigation
