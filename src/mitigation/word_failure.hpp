// Word-level failure (FIT) arithmetic.
//
// The paper's acceptance criterion: at most 1e-15 failures per
// read/write transaction.  A transaction fails when at least
// `failure_threshold` of the word's stored bits are simultaneously in
// error; with independent per-bit error probability p this is the
// binomial tail, which must be evaluated in the log domain at these
// magnitudes.
#pragma once

#include "common/units.hpp"
#include "mitigation/scheme.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"

namespace ntc::mitigation {

/// Probability that one transaction on a word fails under `scheme`
/// given per-bit error probability `p_bit`.
double word_failure_probability(const MitigationScheme& scheme, double p_bit);

/// Log-domain variant for tails far below DBL_MIN.
double log_word_failure_probability(const MitigationScheme& scheme,
                                    double p_bit);

/// Combined per-bit error probability at a supply point: access errors
/// (Eq. 5) plus retention errors accumulated since the last refresh of
/// the bit (read-back exposes both).  `retention_weight` derates the
/// retention term for frequently rewritten data (1 = static data).
double combined_bit_error_probability(
    const reliability::AccessErrorModel& access,
    const reliability::NoiseMarginModel& retention, Volt vdd,
    double retention_weight = 1.0);

/// Expected system failure rate per second of operation.
double failures_per_second(const MitigationScheme& scheme, double p_bit,
                           Hertz transaction_rate);

}  // namespace ntc::mitigation
