#include "mitigation/scheme.hpp"

#include "common/assert.hpp"

namespace ntc::mitigation {

MitigationScheme no_mitigation() {
  MitigationScheme s;
  s.kind = SchemeKind::NoMitigation;
  s.name = "No mitigation";
  s.data_bits = 32;
  s.stored_bits = 32;
  s.failure_threshold = 1;
  return s;
}

MitigationScheme secded_scheme() {
  MitigationScheme s;
  s.kind = SchemeKind::Secded;
  s.name = "ECC (SECDED 39,32)";
  s.data_bits = 32;
  s.stored_bits = 39;
  s.failure_threshold = 3;  // triple-bit error defeats SECDED
  return s;
}

MitigationScheme ocean_scheme() {
  MitigationScheme s;
  s.kind = SchemeKind::Ocean;
  s.name = "OCEAN";
  s.data_bits = 32;
  s.stored_bits = 39;       // FIT evaluated on the protected word span
  s.failure_threshold = 5;  // quintuple-bit error defeats OCEAN
  return s;
}

MitigationScheme scheme_from_code(const ecc::BlockCode& code, std::string name) {
  NTC_REQUIRE(code.data_bits() <= 64);
  MitigationScheme s;
  s.kind = SchemeKind::Custom;
  s.name = name.empty() ? code.name() : std::move(name);
  s.data_bits = static_cast<std::uint32_t>(code.data_bits());
  s.stored_bits = static_cast<std::uint32_t>(code.code_bits());
  s.failure_threshold =
      static_cast<std::uint32_t>(code.correct_capability()) + 1;
  return s;
}

}  // namespace ntc::mitigation
