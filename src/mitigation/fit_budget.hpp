// System-level FIT budgeting across multiple memories.
//
// The paper applies a per-transaction acceptance bound (1e-15).  A real
// product spec is a system failure rate over time (classic FIT =
// failures per 1e9 device-hours), which depends on how often each
// memory is actually accessed.  This module composes the word-failure
// probabilities of every memory in the platform, weighted by its
// transaction rate, into a system failure rate — and solves the single
// shared supply that meets a system budget, distributing the budget
// optimally by construction (one rail, one knob).
#pragma once

#include <string>
#include <vector>

#include "mitigation/voltage_solver.hpp"

namespace ntc::mitigation {

/// One memory's contribution to the system failure rate.
struct FitContributor {
  std::string name;
  MitigationScheme scheme;
  reliability::AccessErrorModel access;
  reliability::NoiseMarginModel retention;
  Hertz transaction_rate{0.0};  ///< average accesses per second
  double retention_weight = 1.0;
};

class SystemFitBudget {
 public:
  /// `budget_fit` in classic units: failures per 1e9 hours.
  explicit SystemFitBudget(double budget_fit = 1.0);

  void add(FitContributor contributor);
  std::size_t contributor_count() const { return contributors_.size(); }

  /// System failure rate at a shared supply [failures/hour].
  double failures_per_hour(Volt vdd) const;

  /// Same in classic FIT units (failures per 1e9 hours).
  double fit(Volt vdd) const;

  /// Per-contributor split at a supply (sums to failures_per_hour).
  std::vector<double> contributions_per_hour(Volt vdd) const;

  /// Lowest shared supply meeting the budget (10 mV grid snap-up).
  Volt min_voltage(Volt lo = Volt{0.20}, Volt hi = Volt{1.20}) const;

  double budget_fit() const { return budget_fit_; }

 private:
  double budget_fit_;
  std::vector<FitContributor> contributors_;
};

}  // namespace ntc::mitigation
