#include "mitigation/fit_budget.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::mitigation {

SystemFitBudget::SystemFitBudget(double budget_fit) : budget_fit_(budget_fit) {
  NTC_REQUIRE(budget_fit > 0.0);
}

void SystemFitBudget::add(FitContributor contributor) {
  NTC_REQUIRE(contributor.transaction_rate.value >= 0.0);
  contributors_.push_back(std::move(contributor));
}

std::vector<double> SystemFitBudget::contributions_per_hour(Volt vdd) const {
  std::vector<double> out;
  out.reserve(contributors_.size());
  for (const FitContributor& c : contributors_) {
    const double p_bit = combined_bit_error_probability(
        c.access, c.retention, vdd, c.retention_weight);
    const double per_transaction = word_failure_probability(c.scheme, p_bit);
    out.push_back(per_transaction * c.transaction_rate.value * 3600.0);
  }
  return out;
}

double SystemFitBudget::failures_per_hour(Volt vdd) const {
  double total = 0.0;
  for (double c : contributions_per_hour(vdd)) total += c;
  return total;
}

double SystemFitBudget::fit(Volt vdd) const {
  return failures_per_hour(vdd) * 1e9;
}

Volt SystemFitBudget::min_voltage(Volt lo, Volt hi) const {
  NTC_REQUIRE(!contributors_.empty());
  NTC_REQUIRE(lo.value < hi.value);
  const double budget_per_hour = budget_fit_ * 1e-9;
  if (failures_per_hour(hi) > budget_per_hour) return hi;  // infeasible
  if (failures_per_hour(lo) <= budget_per_hour) return lo;
  const double v = bisect(
      [&](double vdd) {
        // Work in log space: rates span hundreds of decades.
        const double rate = failures_per_hour(Volt{vdd});
        const double lr = rate > 0.0 ? std::log(rate) : -1e6;
        return lr - std::log(budget_per_hour);
      },
      lo.value, hi.value);
  return Volt{std::ceil(v * 100.0 - 1e-9) / 100.0};
}

}  // namespace ntc::mitigation
