#include "mitigation/voltage_solver.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::mitigation {

MinVoltageSolver::MinVoltageSolver(reliability::AccessErrorModel access,
                                   reliability::NoiseMarginModel retention,
                                   tech::LogicTiming timing)
    : access_(std::move(access)),
      retention_(std::move(retention)),
      timing_(std::move(timing)) {}

double MinVoltageSolver::p_bit(Volt vdd, double retention_weight) const {
  return combined_bit_error_probability(access_, retention_, vdd,
                                        retention_weight);
}

OperatingPoint MinVoltageSolver::solve(
    const MitigationScheme& scheme, const SolverConstraints& constraints) const {
  NTC_REQUIRE(constraints.fit_per_transaction > 0.0);
  NTC_REQUIRE(constraints.supply_grid.value > 0.0);

  const double log_fit = std::log(constraints.fit_per_transaction);
  auto log_margin = [&](double v) {
    const double p = p_bit(Volt{v}, constraints.retention_weight);
    return log_word_failure_probability(scheme, p) - log_fit;
  };

  // Reliability limit: the failure probability is monotone decreasing
  // in VDD, reaching exactly 0 (log -> -inf) at the access V0 when the
  // retention term has already vanished.
  const double v_hi = access_.v0().value + 0.30;
  double v_rel;
  if (log_margin(v_hi) > 0.0) {
    // Even far above V0 the FIT cannot be met (retention-limited
    // configuration) — report the ceiling.
    v_rel = v_hi;
  } else {
    double lo = 0.02;
    if (log_margin(lo) <= 0.0) {
      v_rel = lo;  // constraint met everywhere
    } else {
      v_rel = bisect(log_margin, lo, v_hi);
    }
  }

  // Performance limit from the logic timing.
  Volt v_freq{0.0};
  if (constraints.min_frequency.value > 0.0) {
    v_freq = timing_.min_voltage_for(constraints.min_frequency);
  }

  OperatingPoint out;
  out.reliability_limit = Volt{v_rel};
  out.performance_limit = v_freq;
  const double v_raw = std::max(v_rel, v_freq.value);
  const double grid = constraints.supply_grid.value;
  out.voltage = Volt{std::ceil(v_raw / grid - 1e-9) * grid};
  out.reliability_bound = v_rel >= v_freq.value;
  out.p_bit = p_bit(out.voltage, constraints.retention_weight);
  out.word_failure = word_failure_probability(scheme, out.p_bit);
  return out;
}

MinVoltageSolver cell_based_platform_solver() {
  return MinVoltageSolver(reliability::cell_based_40nm_access(),
                          reliability::cell_based_40nm_retention(),
                          tech::platform_logic_timing_40nm());
}

MinVoltageSolver commercial_platform_solver() {
  return MinVoltageSolver(reliability::commercial_40nm_access(),
                          reliability::commercial_40nm_retention(),
                          tech::platform_logic_timing_40nm());
}

}  // namespace ntc::mitigation
