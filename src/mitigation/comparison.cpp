#include "mitigation/comparison.hpp"

#include "common/assert.hpp"

namespace ntc::mitigation {

std::vector<FrequencyComparison> compare_schemes(
    const MinVoltageSolver& solver, const std::vector<Hertz>& frequencies,
    const SolverConstraints& base_constraints) {
  std::vector<FrequencyComparison> out;
  out.reserve(frequencies.size());
  for (Hertz f : frequencies) {
    FrequencyComparison row;
    row.frequency = f;
    SolverConstraints constraints = base_constraints;
    constraints.min_frequency = f;
    for (const MitigationScheme& scheme :
         {no_mitigation(), secded_scheme(), ocean_scheme()}) {
      row.schemes.push_back({scheme, solver.solve(scheme, constraints)});
    }
    out.push_back(std::move(row));
  }
  return out;
}

double dynamic_power_ratio(Volt v_ref, Volt v) {
  NTC_REQUIRE(v.value > 0.0 && v_ref.value > 0.0);
  return (v_ref.value * v_ref.value) / (v.value * v.value);
}

}  // namespace ntc::mitigation
