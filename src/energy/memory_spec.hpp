// Memory implementation styles and geometry (paper Table 1).
#pragma once

#include <cstdint>
#include <string>

namespace ntc::energy {

/// The four implementation styles the paper compares, scaled to a
/// 1k x 32b instance in Table 1.
enum class MemoryStyle {
  CommercialMacro40,  ///< COTS 6T SRAM compiler macro, 40 nm
  CustomSram40,       ///< custom 6T design with charge pump [12], 40 nm
  CellBased65,        ///< dual-Vt standard-cell memory [13], 65 nm
  CellBasedImec40,    ///< imec AOI-cell-based array (the paper's design)
};

inline std::string to_string(MemoryStyle s) {
  switch (s) {
    case MemoryStyle::CommercialMacro40: return "COTS 40nm";
    case MemoryStyle::CustomSram40: return "Custom SRAM [12] 40nm";
    case MemoryStyle::CellBased65: return "Cell-based [13] 65nm";
    case MemoryStyle::CellBasedImec40: return "Cell-based imec 40nm";
  }
  return "?";
}

struct MemoryGeometry {
  std::uint64_t words = 1024;
  std::uint32_t bits_per_word = 32;

  std::uint64_t total_bits() const { return words * bits_per_word; }
  std::uint64_t total_bytes() const { return total_bits() / 8; }
};

/// The Table 1 reference instance: 1k x 32b = 32 kb.
inline MemoryGeometry reference_1k_x_32() { return MemoryGeometry{1024, 32}; }

}  // namespace ntc::energy
