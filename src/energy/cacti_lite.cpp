#include "energy/cacti_lite.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::energy {

CellParameters cell_parameters(MemoryStyle style) {
  CellParameters p;
  switch (style) {
    case MemoryStyle::CommercialMacro40:
      // Dense pushed-rule 6T: Table 1 area anchor 0.01 mm^2 / 32 kb.
      p.area_um2 = 0.30;
      p.width_um = 0.60;
      p.height_um = 0.50;
      p.full_swing_bitlines = false;
      p.sense_swing_v = 0.15;
      break;
    case MemoryStyle::CustomSram40:
      p.area_um2 = 0.72;  // 0.024 mm^2 anchor
      p.width_um = 0.95;
      p.height_um = 0.76;
      p.full_swing_bitlines = false;
      p.sense_swing_v = 0.12;
      break;
    case MemoryStyle::CellBased65:
      p.area_um2 = 5.7;  // 0.19 mm^2 anchor (65 nm + standard cells)
      p.width_um = 2.7;
      p.height_um = 2.1;
      p.junction_ff = 0.08;
      p.gate_ff = 0.16;
      p.full_swing_bitlines = true;
      break;
    case MemoryStyle::CellBasedImec40:
      p.area_um2 = 1.74;  // 0.058 mm^2 anchor
      p.width_um = 1.7;
      p.height_um = 1.0;
      p.junction_ff = 0.055;
      p.gate_ff = 0.11;
      p.full_swing_bitlines = true;
      break;
  }
  return p;
}

CactiLite::CactiLite(MemoryGeometry geometry, tech::TechnologyNode node,
                     CellParameters cell)
    : geometry_(geometry), node_(std::move(node)), cell_(cell) {
  org_ = optimize(geometry_, node_, cell_);
}

namespace {

struct OrgCosts {
  double read_j;
  double io_wire_mm;
};

OrgCosts read_cost(const MemoryGeometry& g, const tech::TechnologyNode& node,
                   const CellParameters& cell, const ArrayOrganization& org,
                   double vdd) {
  const double v2 = vdd * vdd;
  const double wire_f_per_um = node.wire_cap_ff_um * 1e-15;
  // Decoder: predecode + row decode, ~4 gates per address bit plus the
  // wordline driver; modelled as equivalent inverter caps.
  const double addr_bits = std::log2(static_cast<double>(org.rows));
  const double inv_cap = node.logic_fo4_load_ff * 1e-15;
  const double e_decoder = (4.0 * addr_bits + 8.0) * inv_cap * v2;
  // Wordline: every cell on the row loads its pass gates plus the wire.
  const double c_wl = org.cols * (cell.gate_ff * 1e-15 +
                                  cell.width_um * wire_f_per_um);
  const double e_wordline = c_wl * v2;
  // Bitlines: all columns of the bank precharge/swing on a read.
  const double c_bl_per_col =
      org.rows * (cell.junction_ff * 1e-15 + cell.height_um * wire_f_per_um);
  const double swing = cell.full_swing_bitlines
                           ? vdd
                           : std::min(cell.sense_swing_v, vdd);
  const double e_bitline = org.cols * c_bl_per_col * vdd * swing;
  // Sense amps: one per output bit (after the column mux).
  const double e_sense = g.bits_per_word * (2.0e-15) * v2;
  // Global I/O: H-tree across the banks; length ~ sqrt of total area.
  const double total_area_um2 =
      static_cast<double>(g.total_bits()) * cell.area_um2;
  const double io_wire_um =
      std::sqrt(total_area_um2) * (1.0 + 0.5 * std::log2(org.banks));
  const double e_io =
      g.bits_per_word * io_wire_um * wire_f_per_um * v2 * 0.25;

  return OrgCosts{e_decoder + e_wordline + e_bitline + e_sense + e_io,
                  io_wire_um * 1e-3};
}

}  // namespace

ArrayOrganization CactiLite::optimize(const MemoryGeometry& geometry,
                                      const tech::TechnologyNode& node,
                                      const CellParameters& cell) {
  ArrayOrganization best;
  double best_cost = 1e300;
  const double vdd = node.vdd_nominal.value;
  for (std::uint32_t banks : {1u, 2u, 4u, 8u, 16u}) {
    if (banks > geometry.words) continue;
    const std::uint64_t words_per_bank = geometry.words / banks;
    for (std::uint32_t mux : {1u, 2u, 4u, 8u}) {
      const std::uint64_t rows = words_per_bank / mux;
      const std::uint64_t cols =
          static_cast<std::uint64_t>(geometry.bits_per_word) * mux;
      if (rows < 16 || rows > 1024 || cols > 1024) continue;
      if (rows * mux != words_per_bank) continue;
      ArrayOrganization org{banks, static_cast<std::uint32_t>(rows),
                            static_cast<std::uint32_t>(cols), mux};
      const double cost = read_cost(geometry, node, cell, org, vdd).read_j;
      if (cost < best_cost) {
        best_cost = cost;
        best = org;
      }
    }
  }
  NTC_REQUIRE_MSG(best_cost < 1e300, "no feasible array organisation");
  return best;
}

AccessEnergyBreakdown CactiLite::read_energy(Volt vdd) const {
  NTC_REQUIRE(vdd.value > 0.0);
  const double v2 = vdd.value * vdd.value;
  const double wire_f_per_um = node_.wire_cap_ff_um * 1e-15;
  AccessEnergyBreakdown out;

  const double addr_bits = std::log2(static_cast<double>(org_.rows));
  const double inv_cap = node_.logic_fo4_load_ff * 1e-15;
  out.decoder = Joule{(4.0 * addr_bits + 8.0) * inv_cap * v2};

  const double c_wl = org_.cols * (cell_.gate_ff * 1e-15 +
                                   cell_.width_um * wire_f_per_um);
  out.wordline = Joule{c_wl * v2};

  const double c_bl_per_col = org_.rows * (cell_.junction_ff * 1e-15 +
                                           cell_.height_um * wire_f_per_um);
  const double swing = cell_.full_swing_bitlines
                           ? vdd.value
                           : std::min(cell_.sense_swing_v, vdd.value);
  out.bitline = Joule{org_.cols * c_bl_per_col * vdd.value * swing};

  out.senseamp = Joule{geometry_.bits_per_word * 2.0e-15 * v2};

  const double total_area_um2 =
      static_cast<double>(geometry_.total_bits()) * cell_.area_um2;
  const double io_wire_um =
      std::sqrt(total_area_um2) * (1.0 + 0.5 * std::log2(org_.banks));
  out.global_io = Joule{geometry_.bits_per_word * io_wire_um * wire_f_per_um *
                        v2 * 0.25};
  return out;
}

Joule CactiLite::write_energy(Volt vdd) const {
  // Writes drive the bitlines rail-to-rail regardless of sensing style.
  AccessEnergyBreakdown read = read_energy(vdd);
  const double c_bl_per_col = org_.rows * (cell_.junction_ff * 1e-15 +
                                           cell_.height_um * node_.wire_cap_ff_um * 1e-15);
  const Joule full_swing_bl{org_.cols * c_bl_per_col * vdd.value * vdd.value};
  return read.decoder + read.wordline + full_swing_bl + read.global_io;
}

Watt CactiLite::leakage(Volt vdd, Celsius temperature) const {
  // Two leaking paths per cell through the HVT device stack.
  const Ampere per_cell =
      tech::leakage_current(node_.hvt_nmos, vdd.value, temperature);
  const double i_total = 2.0 * per_cell.value *
                         static_cast<double>(geometry_.total_bits());
  return Watt{vdd.value * i_total};
}

SquareMm CactiLite::area() const {
  constexpr double kArrayEfficiency = 0.70;
  const double cells_um2 =
      static_cast<double>(geometry_.total_bits()) * cell_.area_um2;
  return SquareMm{cells_um2 / kArrayEfficiency * 1e-6};
}

}  // namespace ntc::energy
