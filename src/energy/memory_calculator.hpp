// The paper's "memory calculator": key figures of merit of a memory
// instance over a wide supply range, calibrated against the published
// Table 1 anchors (the substitution for the confidential memory
// generator database; see DESIGN.md).
//
// Scaling model:
//   * dynamic energy per access: CV^2 from the style's 1.1 V anchor,
//     scaled with word width (direct) and weakly with depth (decoder);
//   * leakage: per-bit leakage current with DIBL exponential voltage
//     dependence, taken from the style's anchor at nominal VDD;
//   * f_max: memory timing path through the node's HVT device, pinned
//     to the style's anchor frequency at its anchor voltage;
//   * area: per-bit area from the Table 1 instance.
#pragma once

#include "common/units.hpp"
#include "energy/memory_spec.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "tech/node.hpp"

namespace ntc::energy {

/// Figures of merit at one operating point.
struct MemoryFigures {
  Joule read_energy{0.0};   ///< per 32b-word read access
  Joule write_energy{0.0};  ///< per 32b-word write access
  Watt leakage{0.0};        ///< active leakage of the whole instance
  Hertz fmax{0.0};          ///< maximum access rate
  SquareMm area{0.0};       ///< instance area (voltage independent)
};

class MemoryCalculator {
 public:
  MemoryCalculator(MemoryStyle style, MemoryGeometry geometry);

  MemoryStyle style() const { return style_; }
  const MemoryGeometry& geometry() const { return geometry_; }

  /// All figures of merit at the given supply.
  MemoryFigures at(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// The supply below which the style's vendor/datasheet no longer
  /// guarantees operation (commercial macros stop at 0.7 V in the
  /// paper's Figure 1 platform; cell-based arrays scale to their V0).
  Volt vendor_min_voltage() const;

  /// Reliability models of this style (retention Eq. 2/4, access Eq. 5).
  reliability::NoiseMarginModel retention_model() const;
  reliability::AccessErrorModel access_model() const;

  /// Lowest supply at which data is retained with per-bit failure
  /// probability <= p (no mitigation).
  Volt retention_vmin(double p_bit = 1e-9) const;

 private:
  MemoryStyle style_;
  MemoryGeometry geometry_;
  tech::TechnologyNode node_;

  // Calibration anchors for the reference 1k x 32 instance.
  double anchor_vdd_ = 1.1;        // V
  double anchor_read_pj_ = 12.0;   // pJ per access at anchor_vdd
  double write_read_ratio_ = 1.1;  // writes cost slightly more
  double anchor_leak_uw_ = 2.2;    // uW at anchor_vdd
  double anchor_fmax_mhz_ = 820.0; // MHz at anchor_vdd
  double anchor_area_mm2_ = 0.01;  // mm^2 for 32 kb
  double vendor_vmin_ = 0.7;       // V

  double depth_scale() const;   // decoder growth with words
  double width_scale() const;   // direct growth with word width
  double bits_scale() const;    // leakage/area growth with total bits
};

}  // namespace ntc::energy
