// Technology projection of the NTC memory subsystem (paper Section VI).
//
// Section VI argues the approach gains further at 14 nm finFET and
// 10 nm multi-gate: smaller wire capacitance (dynamic energy), higher
// drive (speed), and tightly controlled Avt (which directly lowers the
// minimum operational voltage of the memory).  This module projects a
// 40 nm-calibrated memory instance onto a target node:
//
//   * dynamic energy scales with the wire-capacitance-per-length ratio
//     times the linear feature-size ratio (shorter lines);
//   * f_max scales with the HVT device's CV/I delay factor at each
//     node's nominal point;
//   * leakage scales with the HVT device leakage per bit;
//   * the access V0 shifts by the HVT Vt difference plus 4 sigma of the
//     mismatch improvement (the variability term of the V_min);
//   * the retention model's half-fail voltage shifts the same way and
//     its sigma scales with the Avt ratio.
#pragma once

#include "energy/memory_calculator.hpp"
#include "tech/node.hpp"

namespace ntc::energy {

struct ProjectedMemory {
  tech::TechnologyNode node;
  /// Scale factors applied to the 40 nm baseline figures.
  double dynamic_energy_scale = 1.0;
  double leakage_scale = 1.0;
  double speed_scale = 1.0;   ///< f_max multiplier
  double area_scale = 1.0;
  reliability::AccessErrorModel access;
  reliability::NoiseMarginModel retention;

  /// Figures of merit of the projected instance at a supply.
  MemoryFigures at(const MemoryCalculator& baseline_calc, Volt vdd,
                   Celsius temperature = Celsius{25.0}) const;
};

/// Project a 40 nm style onto a target node.  The baseline style must
/// be 40 nm-calibrated (CommercialMacro40 / CellBasedImec40).
ProjectedMemory project_to_node(MemoryStyle style,
                                const tech::TechnologyNode& target);

}  // namespace ntc::energy
