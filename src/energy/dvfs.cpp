#include "energy/dvfs.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::energy {

DvfsPlanner::DvfsPlanner(LogicModel core, MemoryCalculator memory,
                         tech::LogicTiming timing,
                         double idle_leakage_fraction,
                         double memory_accesses_per_cycle)
    : core_(std::move(core)),
      memory_(std::move(memory)),
      timing_(std::move(timing)),
      idle_leakage_fraction_(idle_leakage_fraction),
      accesses_per_cycle_(memory_accesses_per_cycle) {
  NTC_REQUIRE(idle_leakage_fraction >= 0.0 && idle_leakage_fraction <= 1.0);
  NTC_REQUIRE(memory_accesses_per_cycle >= 0.0);
}

DvfsPlan DvfsPlanner::evaluate(Volt vdd, std::uint64_t task_cycles,
                               Second deadline, bool race_to_idle) const {
  NTC_REQUIRE(task_cycles > 0);
  NTC_REQUIRE(deadline.value > 0.0);
  DvfsPlan plan;
  plan.vdd = vdd;
  plan.policy = race_to_idle ? DvfsPolicy::RaceToIdle
                             : DvfsPolicy::ConstantThroughput;

  const Hertz fmax = timing_.fmax(vdd);
  const double cycles = static_cast<double>(task_cycles);
  const Hertz clock = race_to_idle ? fmax : Hertz{cycles / deadline.value};
  if (fmax < clock) return plan;  // cannot sustain the required clock

  plan.clock = clock;
  plan.active_time = Second{cycles / clock.value};
  if (plan.active_time > deadline) return plan;
  const Second idle_time = deadline - plan.active_time;

  const MemoryFigures mem = memory_.at(vdd);
  const Watt active_leak = core_.leakage(vdd) + mem.leakage;
  Joule energy = core_.dynamic_energy_per_cycle(vdd) * cycles;
  energy += mem.read_energy * (accesses_per_cycle_ * cycles);
  energy += active_leak * plan.active_time;
  energy += (active_leak * idle_leakage_fraction_) * idle_time;
  plan.energy = energy;
  plan.feasible = true;
  return plan;
}

DvfsPlan DvfsPlanner::plan(DvfsPolicy policy, std::uint64_t task_cycles,
                           Second deadline, Volt voltage_floor) const {
  DvfsPlan best;
  double best_energy = 1e300;
  for (double v = voltage_floor.value; v <= 1.10 + 1e-9; v += 0.01) {
    const DvfsPlan candidate =
        evaluate(Volt{v}, task_cycles, deadline,
                 policy == DvfsPolicy::RaceToIdle);
    if (!candidate.feasible) continue;
    if (candidate.energy.value < best_energy) {
      best_energy = candidate.energy.value;
      best = candidate;
    }
  }
  return best;
}

DvfsPlan DvfsPlanner::best(std::uint64_t task_cycles, Second deadline,
                           Volt voltage_floor) const {
  const DvfsPlan constant =
      plan(DvfsPolicy::ConstantThroughput, task_cycles, deadline, voltage_floor);
  const DvfsPlan race =
      plan(DvfsPolicy::RaceToIdle, task_cycles, deadline, voltage_floor);
  if (!constant.feasible) return race;
  if (!race.feasible) return constant;
  return race.energy.value < constant.energy.value ? race : constant;
}

}  // namespace ntc::energy
