#include "energy/platform_power.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntc::energy {

SignalProcessorPlatform::SignalProcessorPlatform(Config config)
    : config_(config),
      logic_(signal_processor_logic_40nm()),
      timing_(tech::platform_logic_timing_40nm()),
      memory_(config.memory_style, config.geometry) {
  NTC_REQUIRE(config_.instances > 0);
  NTC_REQUIRE(config_.accesses_per_cycle > 0.0);
}

Volt SignalProcessorPlatform::memory_voltage(Volt logic_vdd) const {
  return std::max(logic_vdd, config_.memory_voltage_floor);
}

Hertz SignalProcessorPlatform::clock_at(Volt logic_vdd) const {
  return timing_.fmax(logic_vdd);
}

EnergyPerCycleBreakdown SignalProcessorPlatform::energy_per_cycle(
    Volt logic_vdd) const {
  NTC_REQUIRE(logic_vdd.value > 0.0);
  const Hertz f = clock_at(logic_vdd);
  const Volt vmem = memory_voltage(logic_vdd);
  const MemoryFigures mem = memory_.at(vmem);

  EnergyPerCycleBreakdown out;
  out.logic_dynamic = logic_.dynamic_energy_per_cycle(logic_vdd);
  out.logic_leakage = ntc::energy_per_cycle(logic_.leakage(logic_vdd), f);
  // The access stream hits one instance at a time; reads dominate.
  out.memory_dynamic = mem.read_energy * config_.accesses_per_cycle;
  out.memory_leakage = ntc::energy_per_cycle(
      mem.leakage * static_cast<double>(config_.instances), f);
  return out;
}

}  // namespace ntc::energy
