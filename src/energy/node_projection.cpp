#include "energy/node_projection.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::energy {

namespace {

double hvt_delay_factor(const tech::TechnologyNode& node) {
  // CV/I at the node's nominal point: load capacitance shrinks with the
  // node, drive current grows — both contribute to the speed scale.
  const double v = node.vdd_nominal.value;
  const double c = node.logic_fo4_load_ff;
  return c * v / tech::drain_current(node.hvt_nmos, v, v, Celsius{25.0}).value;
}

double hvt_leak_per_um(const tech::TechnologyNode& node) {
  return tech::leakage_current(node.hvt_nmos, node.vdd_nominal.value,
                               Celsius{25.0}).value /
         node.hvt_nmos.width_um;
}

}  // namespace

ProjectedMemory project_to_node(MemoryStyle style,
                                const tech::TechnologyNode& target) {
  NTC_REQUIRE_MSG(style == MemoryStyle::CommercialMacro40 ||
                      style == MemoryStyle::CellBasedImec40,
                  "projection is calibrated for the 40 nm styles");
  const tech::TechnologyNode base = tech::node_40nm_lp();
  MemoryCalculator base_calc(style, reference_1k_x_32());

  ProjectedMemory out{target,
                      1.0,
                      1.0,
                      1.0,
                      1.0,
                      base_calc.access_model(),
                      base_calc.retention_model()};

  // Dynamic energy: wire cap per um times line length (feature size).
  out.dynamic_energy_scale = (target.wire_cap_ff_um / base.wire_cap_ff_um) *
                             (target.feature_nm / base.feature_nm);
  // Speed: CV/I of the memory timing device at nominal conditions.
  out.speed_scale = hvt_delay_factor(base) / hvt_delay_factor(target);
  // Leakage per bit: device leakage per um (cells use near-minimum
  // widths at both nodes).
  out.leakage_scale = hvt_leak_per_um(target) / hvt_leak_per_um(base);
  // Area: classic ~0.5x per node against the feature-size square.
  const double f = target.feature_nm / base.feature_nm;
  out.area_scale = f * f;

  // Reliability: Vt shift plus the variability improvement.
  const double dvt = target.hvt_nmos.vt0 - base.hvt_nmos.vt0;
  const double sigma_base = tech::mismatch_sigma_v(base.nmos);
  const double sigma_target = tech::mismatch_sigma_v(target.nmos);
  const double dv_sigma = 4.0 * (sigma_target - sigma_base);  // < 0: tighter
  const double dv0 = dvt + dv_sigma;

  const auto base_access = base_calc.access_model();
  out.access = reliability::AccessErrorModel(
      base_access.a(), base_access.k(),
      Volt{std::max(base_access.v0().value + dv0, 0.10)});

  const auto base_ret = base_calc.retention_model();
  const double sigma_scale = target.nmos.avt_mv_um / base.nmos.avt_mv_um;
  // Shift the half-fail voltage by dv0 and shrink the spread.
  out.retention = reliability::NoiseMarginModel(
      base_ret.c0(),
      base_ret.c1() - base_ret.c0() * dv0,
      base_ret.c2() * sigma_scale);
  return out;
}

MemoryFigures ProjectedMemory::at(const MemoryCalculator& baseline_calc,
                                  Volt vdd, Celsius temperature) const {
  MemoryFigures fig = baseline_calc.at(vdd, temperature);
  fig.read_energy = fig.read_energy * dynamic_energy_scale;
  fig.write_energy = fig.write_energy * dynamic_energy_scale;
  fig.leakage = fig.leakage * leakage_scale;
  fig.fmax = Hertz{fig.fmax.value * speed_scale};
  fig.area = SquareMm{fig.area.value * area_scale};
  return fig;
}

}  // namespace ntc::energy
