// Digital-logic (processor core) power model.
//
// Dynamic energy per clock follows Ceff*V^2; leakage follows the
// device-model subthreshold current with its DIBL exponential, anchored
// at a calibration point.  The ARM9-class preset is calibrated so the
// platform totals of the paper's Figures 8/9 are reproduced (its 57 mW
// no-mitigation anchor at 0.88 V / 11 MHz); the signal-processor preset
// reproduces the energy-per-cycle breakdown of Figure 1.
#pragma once

#include <string>

#include "common/units.hpp"
#include "tech/node.hpp"

namespace ntc::energy {

class LogicModel {
 public:
  /// `ceff_pf`: switched capacitance per cycle [pF];
  /// `leak_anchor`: leakage power at `leak_anchor_vdd`;
  /// `leak_gamma`: exponential voltage sensitivity of leakage [1/V]
  /// (DIBL + stacking; leakage ~ V * exp(gamma * V)).
  LogicModel(std::string name, double ceff_pf, Watt leak_anchor,
             Volt leak_anchor_vdd, double leak_gamma);

  const std::string& name() const { return name_; }

  /// Switching energy of one clock cycle at the given supply.
  Joule dynamic_energy_per_cycle(Volt vdd) const;

  /// Static power at the given supply (temperature via Arrhenius-like
  /// doubling every 20 C above the 25 C anchor).
  Watt leakage(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// Total power at an operating point.
  Watt power(Volt vdd, Hertz clock, double activity = 1.0,
             Celsius temperature = Celsius{25.0}) const;

 private:
  std::string name_;
  double ceff_f_;          // farads
  double leak_anchor_w_;
  double leak_anchor_v_;
  double leak_gamma_;
};

/// The evaluated platform's 32-bit core (ARM9-class, 40 nm LP).
/// Leakage anchor reproduces the paper's 57 mW no-mitigation platform
/// power at 0.88 V / 11 MHz (Figure 9).
LogicModel arm9_class_core_40nm();

/// ECC codec logic: (39,32) SECDED encoder+decoder tree.
LogicModel secded_codec_logic_40nm();

/// OCEAN hardware: checkpoint DMA engine + BCH codec + control.
LogicModel ocean_hw_logic_40nm();

/// The Figure 1 signal processor's logic domain (ExG-class SoC [3]).
LogicModel signal_processor_logic_40nm();

}  // namespace ntc::energy
