#include "energy/logic_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::energy {

LogicModel::LogicModel(std::string name, double ceff_pf, Watt leak_anchor,
                       Volt leak_anchor_vdd, double leak_gamma)
    : name_(std::move(name)),
      ceff_f_(ceff_pf * 1e-12),
      leak_anchor_w_(leak_anchor.value),
      leak_anchor_v_(leak_anchor_vdd.value),
      leak_gamma_(leak_gamma) {
  NTC_REQUIRE(ceff_pf >= 0.0);
  NTC_REQUIRE(leak_anchor.value >= 0.0);
  NTC_REQUIRE(leak_anchor_vdd.value > 0.0);
  NTC_REQUIRE(leak_gamma >= 0.0);
}

Joule LogicModel::dynamic_energy_per_cycle(Volt vdd) const {
  NTC_REQUIRE(vdd.value > 0.0);
  return Joule{ceff_f_ * vdd.value * vdd.value};
}

Watt LogicModel::leakage(Volt vdd, Celsius temperature) const {
  NTC_REQUIRE(vdd.value > 0.0);
  const double v_shape = (vdd.value / leak_anchor_v_) *
                         std::exp(leak_gamma_ * (vdd.value - leak_anchor_v_));
  const double t_shape = std::pow(2.0, (temperature.value - 25.0) / 20.0);
  return Watt{leak_anchor_w_ * v_shape * t_shape};
}

Watt LogicModel::power(Volt vdd, Hertz clock, double activity,
                       Celsius temperature) const {
  NTC_REQUIRE(activity >= 0.0 && activity <= 1.0);
  const double dyn =
      dynamic_energy_per_cycle(vdd).value * clock.value * activity;
  return Watt{dyn + leakage(vdd, temperature).value};
}

namespace {
// Leakage voltage sensitivity shared by the 40 nm LP presets:
// DIBL of ~0.14 V/V over n*vT ~ 39 mV.
constexpr double kGamma40Lp = 3.6;
}  // namespace

LogicModel arm9_class_core_40nm() {
  // Ceff 25 pF (~30 pJ/cycle at 1.1 V, ARM9-class); leakage anchored so
  // the Figure 9 platform total lands at the published 57 mW:
  // the core dominates platform leakage (see platform_power.cpp).
  return LogicModel("arm9-core", 25.0, milliwatts(56.5), Volt{0.88},
                    kGamma40Lp);
}

LogicModel secded_codec_logic_40nm() {
  // ~500 XOR-class gates of encode/decode tree; leakage is a tiny
  // fraction of the core.
  return LogicModel("secded-codec", 0.9, microwatts(40.0), Volt{0.88},
                    kGamma40Lp);
}

LogicModel ocean_hw_logic_40nm() {
  // Checkpoint DMA + BCH codec + rollback control (Figure 6, red).
  return LogicModel("ocean-hw", 2.2, microwatts(110.0), Volt{0.88},
                    kGamma40Lp);
}

LogicModel signal_processor_logic_40nm() {
  // The ExG-class signal processor of Figure 1 [3]: a low-leakage
  // always-on design (power gating, HVT-heavy), so its energy/cycle
  // curve shows the classic NTC minimum near 0.5-0.6 V.
  return LogicModel("exg-dsp", 18.0, microwatts(65.0), Volt{1.1},
                    kGamma40Lp);
}

}  // namespace ntc::energy
