// CACTI-style array-organisation model (the substitution for CACTI 6.0
// plus the authors' internal 40 nm database).
//
// A memory instance is decomposed into banks of a rows x cols cell
// array plus decoder, wordline drivers, bitlines, sense amplifiers and
// global I/O routing.  Access energy is the sum of the switched
// capacitances; the organisation (bank count, column mux) is chosen by
// exhaustive search to minimise read energy — the "hierarchical
// subdivision" technique Section III describes for limiting switching
// activity to short local lines.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "energy/memory_spec.hpp"
#include "tech/node.hpp"

namespace ntc::energy {

struct ArrayOrganization {
  std::uint32_t banks = 1;
  std::uint32_t rows = 1024;       ///< rows per bank
  std::uint32_t cols = 32;         ///< columns per bank
  std::uint32_t column_mux = 1;    ///< columns sharing one sense amp
};

struct AccessEnergyBreakdown {
  Joule decoder{0.0};
  Joule wordline{0.0};
  Joule bitline{0.0};
  Joule senseamp{0.0};
  Joule global_io{0.0};

  Joule total() const {
    return decoder + wordline + bitline + senseamp + global_io;
  }
};

/// Style-dependent physical cell parameters.
struct CellParameters {
  double area_um2 = 0.30;      ///< effective footprint incl. overheads
  double width_um = 0.60;      ///< cell pitch along the wordline
  double height_um = 0.50;     ///< cell pitch along the bitline
  double junction_ff = 0.040;  ///< bitline junction cap per cell [fF]
  double gate_ff = 0.080;      ///< wordline gate cap per cell [fF]
  bool full_swing_bitlines = false;  ///< cell-based arrays swing rail-to-rail
  double sense_swing_v = 0.15;       ///< bitline swing when sensed
};

/// Published-class cell parameters per implementation style.
CellParameters cell_parameters(MemoryStyle style);

class CactiLite {
 public:
  /// Organisation defaults to the energy-optimal one (see optimize()).
  CactiLite(MemoryGeometry geometry, tech::TechnologyNode node,
            CellParameters cell);

  const ArrayOrganization& organization() const { return org_; }

  /// Read access energy split by component at the given supply.
  AccessEnergyBreakdown read_energy(Volt vdd) const;

  /// Write access energy (always full-swing bitlines).
  Joule write_energy(Volt vdd) const;

  /// Array leakage (all cells leak regardless of banking).
  Watt leakage(Volt vdd, Celsius temperature = Celsius{25.0}) const;

  /// Total silicon area (cells / array efficiency).
  SquareMm area() const;

  /// Exhaustive organisation search minimising read energy at vdd_nom.
  static ArrayOrganization optimize(const MemoryGeometry& geometry,
                                    const tech::TechnologyNode& node,
                                    const CellParameters& cell);

 private:
  MemoryGeometry geometry_;
  tech::TechnologyNode node_;
  CellParameters cell_;
  ArrayOrganization org_;
};

}  // namespace ntc::energy
