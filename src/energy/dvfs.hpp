// DVFS operating-point planning for NTC platforms.
//
// Given a task (cycles) and a deadline, two classic policies compete:
//   * constant throughput — clock exactly fast enough to finish at the
//     deadline, at the lowest supply that sustains that clock (what the
//     paper's platform does);
//   * race to idle — run at a higher point, finish early, and power
//     gate for the remainder (keeping only retention).
// In strongly leakage-dominated NTC designs race-to-idle can win; the
// planner evaluates both against the same energy models and reports the
// crossover, which the ablation bench sweeps.
#pragma once

#include "energy/logic_model.hpp"
#include "energy/memory_calculator.hpp"
#include "tech/logic_timing.hpp"

namespace ntc::energy {

enum class DvfsPolicy { ConstantThroughput, RaceToIdle };

struct DvfsPlan {
  bool feasible = false;
  DvfsPolicy policy = DvfsPolicy::ConstantThroughput;
  Volt vdd{0.0};
  Hertz clock{0.0};
  Second active_time{0.0};  ///< time actually computing
  Joule energy{0.0};        ///< total over the full deadline window
};

class DvfsPlanner {
 public:
  /// Platform = core + memories whose leakage persists while active;
  /// during power-gated idle only `idle_leakage_fraction` of the active
  /// leakage remains (retention rails, always-on logic).
  DvfsPlanner(LogicModel core, MemoryCalculator memory,
              tech::LogicTiming timing, double idle_leakage_fraction = 0.08,
              double memory_accesses_per_cycle = 0.5);

  /// Best plan under one policy.  Voltage floor models the reliability
  /// limit from the mitigation solver (pass its result in).
  DvfsPlan plan(DvfsPolicy policy, std::uint64_t task_cycles, Second deadline,
                Volt voltage_floor) const;

  /// The cheaper of the two policies.
  DvfsPlan best(std::uint64_t task_cycles, Second deadline,
                Volt voltage_floor) const;

  /// Energy of one fully specified configuration (for sweeps).
  DvfsPlan evaluate(Volt vdd, std::uint64_t task_cycles, Second deadline,
                    bool race_to_idle) const;

 private:
  LogicModel core_;
  MemoryCalculator memory_;
  tech::LogicTiming timing_;
  double idle_leakage_fraction_;
  double accesses_per_cycle_;
};

}  // namespace ntc::energy
