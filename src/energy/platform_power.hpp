// Platform-level energy-per-cycle aggregation (paper Figure 1).
//
// Models the measured signal-processor SoC of [3]: a logic domain that
// scales all the way into near-threshold, and commercial memory macros
// whose supply cannot follow below the vendor limit (0.7 V).  The
// energy-per-cycle breakdown over VDD shows the memory bottleneck the
// paper opens with: memory dynamic energy stops scaling at 0.7 V and
// leakage energy per cycle blows up as the clock slows below 0.6 V.
#pragma once

#include "energy/logic_model.hpp"
#include "energy/memory_calculator.hpp"
#include "tech/logic_timing.hpp"

namespace ntc::energy {

struct EnergyPerCycleBreakdown {
  Joule logic_dynamic{0.0};
  Joule logic_leakage{0.0};
  Joule memory_dynamic{0.0};
  Joule memory_leakage{0.0};

  Joule total() const {
    return logic_dynamic + logic_leakage + memory_dynamic + memory_leakage;
  }
  double memory_share() const {
    const double t = total().value;
    return t == 0.0 ? 0.0 : (memory_dynamic + memory_leakage).value / t;
  }
  double leakage_share() const {
    const double t = total().value;
    return t == 0.0 ? 0.0 : (logic_leakage + memory_leakage).value / t;
  }
};

class SignalProcessorPlatform {
 public:
  struct Config {
    MemoryStyle memory_style = MemoryStyle::CommercialMacro40;
    /// Memories cannot operate below this supply; their rail clamps
    /// here while logic keeps scaling (0 = memories track logic fully).
    Volt memory_voltage_floor{0.7};
    /// Memory accesses per clock cycle (instruction + data streams).
    double accesses_per_cycle = 1.2;
    /// Two 32 kb instances: instruction and data memory.
    MemoryGeometry geometry = reference_1k_x_32();
    std::size_t instances = 2;
  };

  SignalProcessorPlatform() : SignalProcessorPlatform(Config{}) {}
  explicit SignalProcessorPlatform(Config config);

  /// Breakdown at one logic supply point; the platform clocks at the
  /// logic domain's f_max for that supply (as in the measurement of
  /// Figure 1).
  EnergyPerCycleBreakdown energy_per_cycle(Volt logic_vdd) const;

  /// The memory rail actually applied for a given logic supply.
  Volt memory_voltage(Volt logic_vdd) const;

  Hertz clock_at(Volt logic_vdd) const;

 private:
  Config config_;
  LogicModel logic_;
  tech::LogicTiming timing_;
  MemoryCalculator memory_;
};

}  // namespace ntc::energy
