#include "energy/memory_calculator.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::energy {

namespace {

// Memory access-time voltage shape: CV/I through the node's HVT device.
double mem_delay_factor(const tech::TechnologyNode& node, double vdd,
                        Celsius temperature) {
  const Ampere i = tech::drain_current(node.hvt_nmos, vdd, vdd, temperature);
  NTC_REQUIRE(i.value > 0.0);
  return vdd / i.value;
}

// Leakage voltage shape: V * Ileak(V) through the HVT device (includes
// the DIBL exponential).
double leak_power_factor(const tech::TechnologyNode& node, double vdd,
                         Celsius temperature) {
  return vdd * tech::leakage_current(node.hvt_nmos, vdd, temperature).value;
}

}  // namespace

MemoryCalculator::MemoryCalculator(MemoryStyle style, MemoryGeometry geometry)
    : style_(style), geometry_(geometry) {
  NTC_REQUIRE(geometry.words > 0 && geometry.bits_per_word > 0);
  switch (style_) {
    case MemoryStyle::CommercialMacro40:
      node_ = tech::node_40nm_lp();
      anchor_vdd_ = 1.1;
      anchor_read_pj_ = 12.0;
      anchor_leak_uw_ = 2.2;
      anchor_fmax_mhz_ = 820.0;
      anchor_area_mm2_ = 0.01;
      vendor_vmin_ = 0.7;  // compiler stops guaranteeing below this
      break;
    case MemoryStyle::CustomSram40:
      node_ = tech::node_40nm_lp();
      anchor_vdd_ = 1.1;
      anchor_read_pj_ = 3.6;
      anchor_leak_uw_ = 11.0;
      anchor_fmax_mhz_ = 454.0;
      anchor_area_mm2_ = 0.024;
      vendor_vmin_ = 0.6;  // charge-pump assisted design [12]
      break;
    case MemoryStyle::CellBased65:
      node_ = tech::node_65nm_lp();
      anchor_vdd_ = 0.65;  // published operating point: 9.5 MHz @ 0.65 V
      anchor_read_pj_ = 0.93 * (0.65 * 0.65) / (0.4 * 0.4);  // from 0.93 pJ @ 0.4 V
      anchor_leak_uw_ = 8.0 * 2.2;  // from 8 uW @ 0.35 V, scaled up in V
      anchor_fmax_mhz_ = 9.5;
      anchor_area_mm2_ = 0.19;
      vendor_vmin_ = 0.25;  // retention-limited, sub-Vt capable
      break;
    case MemoryStyle::CellBasedImec40:
      node_ = tech::node_40nm_lp();
      anchor_vdd_ = 1.1;
      anchor_read_pj_ = 1.4;
      anchor_leak_uw_ = 5.9;
      anchor_fmax_mhz_ = 96.0;
      anchor_area_mm2_ = 0.058;
      vendor_vmin_ = 0.32;  // retention-limited
      break;
  }
}

double MemoryCalculator::width_scale() const {
  return static_cast<double>(geometry_.bits_per_word) / 32.0;
}

double MemoryCalculator::depth_scale() const {
  // Decoder/wordline cost grows ~ log2(words); bitline length with
  // words per column.  Net effect on access energy is sub-linear; use
  // sqrt scaling around the 1k anchor, the CACTI-lite module provides
  // the detailed decomposition.
  return std::sqrt(static_cast<double>(geometry_.words) / 1024.0);
}

double MemoryCalculator::bits_scale() const {
  return static_cast<double>(geometry_.total_bits()) / (1024.0 * 32.0);
}

MemoryFigures MemoryCalculator::at(Volt vdd, Celsius temperature) const {
  NTC_REQUIRE(vdd.value > 0.0);
  MemoryFigures out;
  // Dynamic energy: CV^2 around the anchor.
  const double v_ratio_sq = (vdd.value * vdd.value) / (anchor_vdd_ * anchor_vdd_);
  const double read_pj =
      anchor_read_pj_ * v_ratio_sq * width_scale() * depth_scale();
  out.read_energy = picojoules(read_pj);
  out.write_energy = picojoules(read_pj * write_read_ratio_);
  // Leakage: device-shaped in V, proportional to bit count.
  const double leak_shape = leak_power_factor(node_, vdd.value, temperature) /
                            leak_power_factor(node_, anchor_vdd_, Celsius{25.0});
  out.leakage = microwatts(anchor_leak_uw_ * leak_shape * bits_scale());
  // Timing: HVT-device-shaped around the anchor frequency.
  const double delay_shape = mem_delay_factor(node_, vdd.value, temperature) /
                             mem_delay_factor(node_, anchor_vdd_, Celsius{25.0});
  out.fmax = megahertz(anchor_fmax_mhz_ / (delay_shape * depth_scale()));
  out.area = SquareMm{anchor_area_mm2_ * bits_scale()};
  return out;
}

Volt MemoryCalculator::vendor_min_voltage() const { return Volt{vendor_vmin_}; }

reliability::NoiseMarginModel MemoryCalculator::retention_model() const {
  switch (style_) {
    case MemoryStyle::CommercialMacro40:
      return reliability::commercial_40nm_retention();
    case MemoryStyle::CustomSram40:
      // Custom 6T with assist: between the commercial macro and the
      // cell-based array.
      return reliability::NoiseMarginModel(1.0, -0.24, 0.028);
    case MemoryStyle::CellBased65:
      return reliability::cell_based_65nm_retention();
    case MemoryStyle::CellBasedImec40:
      return reliability::cell_based_40nm_retention();
  }
  NTC_REQUIRE(false);
  return reliability::commercial_40nm_retention();
}

reliability::AccessErrorModel MemoryCalculator::access_model() const {
  switch (style_) {
    case MemoryStyle::CommercialMacro40:
      return reliability::commercial_40nm_access();
    case MemoryStyle::CustomSram40:
      return reliability::AccessErrorModel(5.0, 6.0, Volt{0.70});
    case MemoryStyle::CellBased65:
      return reliability::cell_based_65nm_access();
    case MemoryStyle::CellBasedImec40:
      return reliability::cell_based_40nm_access();
  }
  NTC_REQUIRE(false);
  return reliability::commercial_40nm_access();
}

Volt MemoryCalculator::retention_vmin(double p_bit) const {
  return retention_model().vdd_for_p_fail(p_bit);
}

}  // namespace ntc::energy
