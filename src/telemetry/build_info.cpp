#include "telemetry/build_info.hpp"

#ifndef NTC_BUILD_GIT_HASH
#define NTC_BUILD_GIT_HASH "unknown"
#endif
#ifndef NTC_BUILD_COMPILER
#define NTC_BUILD_COMPILER "unknown"
#endif
#ifndef NTC_BUILD_TYPE
#define NTC_BUILD_TYPE "unknown"
#endif
#ifndef NTC_BUILD_SANITIZER
#define NTC_BUILD_SANITIZER "none"
#endif

#include "common/cpu.hpp"           // header-only: keeps telemetry bottom-layer
#include "telemetry/telemetry.hpp"  // NTC_TELEMETRY

namespace ntc::telemetry {

const BuildInfo& build_info() {
  static const BuildInfo info{
      NTC_BUILD_GIT_HASH, NTC_BUILD_COMPILER,  NTC_BUILD_TYPE,
      NTC_BUILD_SANITIZER, NTC_TELEMETRY != 0, cpu_feature_string(),
  };
  return info;
}

std::string build_info_json() {
  // All fields come from the build system (hex hashes, compiler ids,
  // cache-variable values) — nothing needs JSON escaping.
  const BuildInfo& b = build_info();
  std::string out = "{\"git_hash\":\"";
  out += b.git_hash;
  out += "\",\"compiler\":\"";
  out += b.compiler;
  out += "\",\"build_type\":\"";
  out += b.build_type;
  out += "\",\"sanitizer\":\"";
  out += b.sanitizer;
  out += "\",\"telemetry\":";
  out += b.telemetry ? "true" : "false";
  out += ",\"simd\":\"";
  out += b.simd;
  out += "\"}";
  return out;
}

std::string build_info_csv_comment() {
  const BuildInfo& b = build_info();
  std::string out = "# build git_hash=";
  out += b.git_hash;
  out += " compiler=";
  out += b.compiler;
  out += " build_type=";
  out += b.build_type;
  out += " sanitizer=";
  out += b.sanitizer;
  out += " telemetry=";
  out += b.telemetry ? "on" : "off";
  out += " simd=";
  out += b.simd;
  out += "\n";
  return out;
}

}  // namespace ntc::telemetry
