// Low-overhead tracing for the SRAM/ECC/OCEAN/campaign stack.
//
// The paper's single-supply scheme only works because the runtime
// *observes* the memory (error-rate monitors, voltage control); this
// subsystem gives the reproduction the same visibility at run time: a
// lock-free per-thread ring buffer of typed events (memory bursts, ECC
// decode outcomes, scrubs, OCEAN checkpoint/rollback, voltage changes,
// campaign trials, executor jobs) plus scoped-span RAII timers, drained
// on demand into Chrome trace_event JSON, Prometheus text or JSON
// lines (see exporters.hpp).
//
// Cost model, enforced by bench/perf_suite (fft_platform_run_telemetry,
// campaign_grid_slice_telemetry, <2% over the untraced runs):
//   * compiled out (NTC_TELEMETRY=0): the NTC_TELEM_* macros expand to
//     nothing — call sites vanish, behaviour is bit-identical;
//   * compiled in, disabled (default): one relaxed atomic load + branch
//     per call site;
//   * enabled: events are recorded at *transaction* granularity (one
//     event per burst / decode summary / scrub / trial — never per word
//     or per bit), so the hot scalar access paths stay untouched.
// Instrumentation only observes: it never draws from a fault-model RNG
// or touches simulation state, so traced and untraced runs are
// bit-identical by construction.
//
// Threading: each thread records into its own ring (registered on first
// use, retained after thread exit).  Recording is wait-free for the
// owning thread.  Draining (snapshot/export) is intended for quiescent
// instants — after an executor job parked its workers, after a run
// completed; concurrent recording by *other* threads only risks torn
// events in rings still being appended to, never corruption of the
// registry itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

// Compile-time master switch.  The build defines NTC_TELEMETRY=0|1 (see
// the telemetry / no-telemetry CMake presets); standalone compilation
// defaults to on.
#ifndef NTC_TELEMETRY
#define NTC_TELEMETRY 1
#endif

namespace ntc::telemetry {

// ---------------------------------------------------------------------------
// Event model

enum class EventKind : std::uint8_t {
  Span,            ///< generic scoped timer (name says what)
  MemoryBurst,     ///< a0 = start word index, a1 = word count
  EccDecode,       ///< a0 = corrected words, a1 = uncorrectable words
  InjectedFlips,   ///< a0 = flipped bits, a1 = word count of the access
  Scrub,           ///< span; a0 = words scrubbed, a1 = uncorrectable met
  Checkpoint,      ///< span; a0 = chunk word offset, a1 = words saved
  Restore,         ///< span; a0 = chunk word offset, a1 = uncorrectable
  CrcCheck,        ///< a0 = chunk word offset, a1 = 1 on mismatch
  VoltageChange,   ///< a0 = old rail [mV], a1 = new rail [mV]
  Recovery,        ///< a0 = RecoveryStage, a1 = 1 if the stage recovered
  CampaignTrial,   ///< span; a0 = seed, a1 = RunOutcome ordinal
  ExecutorJob,     ///< span; a0 = indices executed, a1 = indices stolen
  CampaignShard,   ///< span; a0 = shard id, a1 = trials executed
};

const char* to_string(EventKind kind);

/// Stage ordinals for EventKind::Recovery events.
enum class RecoveryStage : std::uint64_t {
  Enter = 0,       ///< uncorrectable read met, escalation begins
  Retry = 1,
  ScrubRetry = 2,
  VoltageBump = 3,
  Failed = 4,      ///< options exhausted, surfaced to the initiator
};

/// One trace record.  `name` must outlive every export of the event —
/// call sites pass string literals.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< nanoseconds since the recorder epoch
  std::uint64_t dur_ns = 0;  ///< 0 for instant events
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  const char* name = nullptr;
  EventKind kind = EventKind::Span;
};

// ---------------------------------------------------------------------------
// Runtime switch + clock

namespace detail {
extern std::atomic<bool> g_enabled;
extern thread_local int t_muted;
}

/// Runtime enable flag on top of the compile-time switch.  Off by
/// default: a disabled call site costs one relaxed load and a branch.
/// A thread with an active ScopedMute reads as disabled; the mute depth
/// is only consulted after the global flag passes, so the disabled
/// fast path stays a single load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed) &&
         detail::t_muted == 0;
}
void set_enabled(bool on);

/// Monotonic nanoseconds since the process-wide recorder epoch (set
/// when telemetry is first enabled).  Uses the TSC where available,
/// calibrated once against steady_clock.
std::uint64_t now_ns();

/// Raw clock sample in unconverted ticks.  The recording hot path
/// stores these verbatim and snapshot() converts to nanoseconds, so a
/// record site pays one TSC read and nothing else for its timestamp —
/// no calibration lookup, no tick-to-ns arithmetic.
#if defined(__x86_64__)
inline std::uint64_t now_raw() { return __builtin_ia32_rdtsc(); }
#else
std::uint64_t now_raw();  // steady_clock ns; defined in telemetry.cpp
#endif

// ---------------------------------------------------------------------------
// Recording

/// Record an instant event into the calling thread's ring.
void record(EventKind kind, const char* name, std::uint64_t a0 = 0,
            std::uint64_t a1 = 0);

/// Record a completed span [begin_raw, now) — `begin_raw` is a
/// now_raw() sample taken at span entry.
void record_span(EventKind kind, const char* name, std::uint64_t begin_raw,
                 std::uint64_t a0 = 0, std::uint64_t a1 = 0);

/// Record `count` identical instant events with one timestamp read and
/// one ring publish — the bulk form for loops whose per-iteration work
/// is too cheap to carry a ScopedSpan (e.g. batch-replayed campaign
/// trials).  Exports see `count` ordinary events, so event-count
/// invariants hold whichever form the producer used.
void record_bulk(EventKind kind, const char* name, std::uint64_t count,
                 std::uint64_t a0 = 0, std::uint64_t a1 = 0);

/// Events to retain per thread before the ring wraps (oldest events are
/// overwritten; wrapped counts are reported as dropped).  Applies to
/// rings created after the call.  Power of two; default 4096 — small
/// enough that the ring's slot writes stay cache-resident under the
/// recorder's <2% overhead budget.
void set_ring_capacity(std::size_t events);

/// Drop every recorded event and zero every metric — fresh start for a
/// new measurement window (tests, benches).  Rings registered by other
/// threads are cleared too; call at a quiescent instant.
void reset_for_testing();

/// Per-thread drain for the exporters: events in record order plus the
/// count lost to ring wrap.
struct ThreadTrace {
  std::uint32_t tid = 0;  ///< stable small id assigned at first use
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// Snapshot every thread's ring (including threads that have exited).
/// Intended for quiescent instants; see the header comment.
std::vector<ThreadTrace> snapshot();

// ---------------------------------------------------------------------------
// Scoped spans

/// RAII timer: records one EventKind span on destruction when telemetry
/// was enabled at construction.  Args can be filled in as the scope
/// learns them (e.g. a trial's outcome).
class ScopedSpan {
 public:
  ScopedSpan(EventKind kind, const char* name) {
    if (enabled()) {
      active_ = true;
      kind_ = kind;
      name_ = name;
      begin_raw_ = now_raw();
    }
  }
  ~ScopedSpan() {
    if (active_) record_span(kind_, name_, begin_raw_, a0_, a1_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_args(std::uint64_t a0, std::uint64_t a1) {
    a0_ = a0;
    a1_ = a1;
  }

 private:
  bool active_ = false;
  EventKind kind_ = EventKind::Span;
  const char* name_ = nullptr;
  std::uint64_t begin_raw_ = 0;
  std::uint64_t a0_ = 0;
  std::uint64_t a1_ = 0;
};

/// Compiled-out stand-in so call sites keep a named span object.
struct NullSpan {
  void set_args(std::uint64_t, std::uint64_t) {}
};

/// RAII: suppress recording on the calling thread for the enclosing
/// scope (nests; other threads are unaffected).  For infrastructure
/// passes that would pollute a trace with events that are not part of
/// the simulation under observation — e.g. the campaign's fault-free
/// golden reference run.
class ScopedMute {
 public:
  ScopedMute() { ++detail::t_muted; }
  ~ScopedMute() { --detail::t_muted; }
  ScopedMute(const ScopedMute&) = delete;
  ScopedMute& operator=(const ScopedMute&) = delete;
};

/// Compiled-out stand-in for NTC_TELEM_MUTE.
struct NullMute {};

}  // namespace ntc::telemetry

// ---------------------------------------------------------------------------
// Call-site macros: the only way the instrumented layers talk to the
// recorder, so the no-telemetry build compiles them to nothing.

#if NTC_TELEMETRY
/// Record an instant event when telemetry is enabled.
#define NTC_TELEM_EVENT(kind, name, a0, a1)                           \
  do {                                                                \
    if (::ntc::telemetry::enabled())                                  \
      ::ntc::telemetry::record((kind), (name),                        \
                               static_cast<std::uint64_t>(a0),        \
                               static_cast<std::uint64_t>(a1));       \
  } while (0)
/// Record `count` identical instant events in one ring publish.
#define NTC_TELEM_EVENTS(kind, name, count, a0, a1)                    \
  do {                                                                 \
    if (::ntc::telemetry::enabled())                                   \
      ::ntc::telemetry::record_bulk((kind), (name),                    \
                                    static_cast<std::uint64_t>(count), \
                                    static_cast<std::uint64_t>(a0),    \
                                    static_cast<std::uint64_t>(a1));   \
  } while (0)
/// Declare a scoped span named `var` (NullSpan when compiled out).
#define NTC_TELEM_SPAN(var, kind, name) \
  ::ntc::telemetry::ScopedSpan var((kind), (name))
/// Guard for instrumentation blocks too irregular for the macros above.
#define NTC_TELEM_ON() (::ntc::telemetry::enabled())
/// Mute recording on this thread for the enclosing scope.
#define NTC_TELEM_MUTE(var) ::ntc::telemetry::ScopedMute var
#else
#define NTC_TELEM_EVENT(kind, name, a0, a1) \
  do {                                      \
  } while (0)
#define NTC_TELEM_EVENTS(kind, name, count, a0, a1) \
  do {                                              \
  } while (0)
#define NTC_TELEM_SPAN(var, kind, name) ::ntc::telemetry::NullSpan var
#define NTC_TELEM_ON() (false)
#define NTC_TELEM_MUTE(var) ::ntc::telemetry::NullMute var
#endif
