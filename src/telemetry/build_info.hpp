// Build provenance: which binary produced this export / ledger / bench
// record.  The values are baked in by the build (see src/CMakeLists.txt
// NTC_BUILD_* definitions); a standalone compile reports "unknown".
//
// Embedded in: telemetry exports (all three formats), campaign CSV
// ("# build ..." comment lines) and JSON ("build" object) ledgers, and
// bench/perf_suite output — so a BENCH_perf.json entry or a trace file
// can always be traced back to a git hash, compiler and sanitizer
// configuration.  Everything here is process-constant, which keeps the
// campaign ledgers byte-deterministic across thread counts.
#pragma once

#include <string>

namespace ntc::telemetry {

struct BuildInfo {
  const char* git_hash;    ///< short commit hash, "unknown" outside git
  const char* compiler;    ///< e.g. "GNU 13.3.0"
  const char* build_type;  ///< CMAKE_BUILD_TYPE, "" for multi-config
  const char* sanitizer;   ///< NTC_SANITIZE value or "none"
  bool telemetry;          ///< compile-time NTC_TELEMETRY switch state
  /// Detected CPU SIMD features, e.g. "sse4.2+avx2+bmi2" or "scalar".
  /// Detection only — deliberately independent of the sim::simd_enabled
  /// kill switch, which may change at run time; results are bit-exact
  /// across both, so the ledger stays byte-identical either way.
  const char* simd;
};

const BuildInfo& build_info();

/// One-line JSON object, e.g.
/// {"git_hash":"abc...","compiler":"GNU 13.3.0",...,"telemetry":true}
std::string build_info_json();

/// CSV-safe comment block (lines starting with "# build "), terminated
/// by a newline.  Ledger readers skip '#' lines.
std::string build_info_csv_comment();

}  // namespace ntc::telemetry
