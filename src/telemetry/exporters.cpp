#include "telemetry/exporters.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

#include "telemetry/build_info.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::telemetry {

namespace {

/// Minimal JSON string escaping.  Names are call-site literals and
/// registry names under our control, but a trace file must stay
/// parseable no matter what.
std::string json_escape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Descriptive Chrome-trace arg keys for each kind's a0/a1 payload
/// (documented on EventKind).
struct ArgKeys {
  const char* a0;
  const char* a1;
};

ArgKeys arg_keys(EventKind kind) {
  switch (kind) {
    case EventKind::Span: return {"a0", "a1"};
    case EventKind::MemoryBurst: return {"start_word", "words"};
    case EventKind::EccDecode: return {"corrected", "uncorrectable"};
    case EventKind::InjectedFlips: return {"flips", "words"};
    case EventKind::Scrub: return {"words", "uncorrectable"};
    case EventKind::Checkpoint: return {"chunk_word", "words"};
    case EventKind::Restore: return {"chunk_word", "uncorrectable"};
    case EventKind::CrcCheck: return {"chunk_word", "mismatch"};
    case EventKind::VoltageChange: return {"old_mv", "new_mv"};
    case EventKind::Recovery: return {"stage", "recovered"};
    case EventKind::CampaignTrial: return {"seed", "outcome"};
    case EventKind::ExecutorJob: return {"executed", "stolen"};
  }
  return {"a0", "a1"};
}

/// Microseconds with nanosecond precision, as trace_event expects.
std::string us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

void export_chrome_trace(std::ostream& out) {
  const auto traces = snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& t : traces) {
    for (const TraceEvent& ev : t.events) {
      if (!first) out << ",";
      first = false;
      const ArgKeys keys = arg_keys(ev.kind);
      out << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
          << to_string(ev.kind) << "\",\"ph\":\""
          << (ev.dur_ns > 0 ? "X" : "i") << "\",\"ts\":" << us(ev.ts_ns);
      if (ev.dur_ns > 0)
        out << ",\"dur\":" << us(ev.dur_ns);
      else
        out << ",\"s\":\"t\"";
      out << ",\"pid\":1,\"tid\":" << t.tid << ",\"args\":{\"" << keys.a0
          << "\":" << ev.a0 << ",\"" << keys.a1 << "\":" << ev.a1 << "}}";
    }
    if (t.dropped > 0) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"dropped_events\",\"cat\":\"telemetry\",\"ph\":\"i\","
             "\"ts\":0.000,\"s\":\"t\",\"pid\":1,\"tid\":"
          << t.tid << ",\"args\":{\"count\":" << t.dropped << "}}";
    }
  }
  out << "],\"otherData\":{\"build\":" << build_info_json() << "}}";
}

void export_prometheus(std::ostream& out) {
  const BuildInfo& b = build_info();
  out << "# TYPE ntc_build_info gauge\n"
      << "ntc_build_info{git_hash=\"" << b.git_hash << "\",compiler=\""
      << b.compiler << "\",build_type=\"" << b.build_type
      << "\",sanitizer=\"" << b.sanitizer << "\",telemetry=\""
      << (b.telemetry ? "on" : "off") << "\"} 1\n";

  const MetricsSnapshot snap = collect();
  for (const auto& c : snap.counters) {
    out << "# TYPE " << c.name << " counter\n"
        << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    out << "# TYPE " << g.name << " gauge\n" << g.name << " " << g.value
        << "\n";
  }
  for (const auto& h : snap.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    // Cumulative buckets; bucket k of the log2 sharding holds samples
    // in [2^(k-1), 2^k), so its inclusive upper bound is 2^k - 1.
    // Empty tail buckets are elided (+Inf carries the total).
    std::size_t last = 0;
    for (std::size_t k = 0; k < h.buckets.size(); ++k)
      if (h.buckets[k] > 0) last = k;
    std::uint64_t cum = 0;
    for (std::size_t k = 0; k <= last; ++k) {
      cum += h.buckets[k];
      const std::uint64_t le =
          k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
      out << h.name << "_bucket{le=\"" << le << "\"} " << cum << "\n";
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << h.name << "_sum " << h.sum << "\n"
        << h.name << "_count " << h.count << "\n";
  }

  std::uint64_t dropped = 0;
  for (const ThreadTrace& t : snapshot()) dropped += t.dropped;
  out << "# TYPE ntc_telemetry_dropped_events_total counter\n"
      << "ntc_telemetry_dropped_events_total " << dropped << "\n";
}

void export_jsonl(std::ostream& out) {
  out << "{\"record\":\"build\",\"build\":" << build_info_json() << "}\n";
  for (const ThreadTrace& t : snapshot()) {
    for (const TraceEvent& ev : t.events) {
      out << "{\"record\":\"event\",\"tid\":" << t.tid << ",\"kind\":\""
          << to_string(ev.kind) << "\",\"name\":\"" << json_escape(ev.name)
          << "\",\"ts_ns\":" << ev.ts_ns << ",\"dur_ns\":" << ev.dur_ns
          << ",\"a0\":" << ev.a0 << ",\"a1\":" << ev.a1 << "}\n";
    }
    if (t.dropped > 0)
      out << "{\"record\":\"dropped\",\"tid\":" << t.tid
          << ",\"count\":" << t.dropped << "}\n";
  }
}

}  // namespace ntc::telemetry
