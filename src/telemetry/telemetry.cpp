// Recorder + metrics registry implementation (both headers' engines
// live here: they share one thread registry).
//
// Each thread gets one ThreadState — trace ring plus metric shards —
// registered under the registry mutex on first use and retained after
// thread exit (a shared_ptr stays in the registry), so exports see the
// totals of finished workers.  The registry itself is intentionally
// leaked: a detached thread recording during static destruction must
// never chase a destroyed registry.
#include "telemetry/telemetry.hpp"

#include <array>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ntc::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local int t_muted = 0;
}

// ---------------------------------------------------------------------------
// Clock: TSC where available, calibrated once against steady_clock over
// a 1 ms busy window when telemetry is first enabled.  Record sites
// store now_raw() ticks verbatim; snapshot() converts to nanoseconds,
// so the per-event timestamp cost is the TSC read alone.  Eager
// calibration (from set_enabled) pins the epoch before any event can be
// recorded, keeping every stored tick >= ticks0.

#if !defined(__x86_64__)
std::uint64_t now_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
#endif

namespace {

inline std::uint64_t raw_ticks() { return now_raw(); }

struct ClockState {
  std::uint64_t ticks0 = 0;
  double ns_per_tick = 1.0;
};

const ClockState& clock_state() {
  static const ClockState state = [] {
    ClockState c;
    const auto s0 = std::chrono::steady_clock::now();
    c.ticks0 = raw_ticks();
#if defined(__x86_64__)
    const auto target = s0 + std::chrono::milliseconds(1);
    auto s1 = s0;
    while ((s1 = std::chrono::steady_clock::now()) < target) {
    }
    const std::uint64_t t1 = raw_ticks();
    const double elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0).count());
    c.ns_per_tick = t1 > c.ticks0
                        ? elapsed_ns / static_cast<double>(t1 - c.ticks0)
                        : 1.0;
#else
    // steady_clock ticks are nanoseconds on every supported platform.
    c.ns_per_tick = 1.0;
#endif
    return c;
  }();
  return state;
}

/// Convert a stored now_raw() sample to epoch-relative nanoseconds.
/// Samples predating calibration (impossible once set_enabled has run,
/// defensive otherwise) clamp to the epoch.
inline std::uint64_t ticks_to_ns(std::uint64_t raw, const ClockState& c) {
  return raw >= c.ticks0
             ? static_cast<std::uint64_t>(
                   static_cast<double>(raw - c.ticks0) * c.ns_per_tick)
             : 0;
}

/// Convert a tick interval (span duration) to nanoseconds.
inline std::uint64_t tick_delta_ns(std::uint64_t delta, const ClockState& c) {
  return static_cast<std::uint64_t>(static_cast<double>(delta) *
                                    c.ns_per_tick);
}

}  // namespace

void set_enabled(bool on) {
  // Calibrate before the flag flips: recording is gated on enabled(),
  // so every stored tick postdates the epoch.
  if (on) clock_state();
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  const ClockState& c = clock_state();
  return ticks_to_ns(raw_ticks(), c);
}

// ---------------------------------------------------------------------------
// Thread registry

namespace {

// 4096 events keep a thread's ring under 200 KiB so the slot writes of
// a hot instrumented loop stay cache-resident; at transaction
// granularity that still retains thousands of bursts/spans.  Deeper
// retention is one set_ring_capacity() call away.
constexpr std::size_t kDefaultRingCapacity = 4096;

struct ThreadState {
  explicit ThreadState(std::uint32_t id, std::size_t ring_capacity)
      : tid(id), ring(ring_capacity) {}

  std::uint32_t tid;
  // Trace ring: single-writer (the owning thread).  `head` counts
  // events ever recorded; the slot for event h is ring[h & (cap - 1)].
  std::vector<TraceEvent> ring;
  std::atomic<std::uint64_t> head{0};
  // Metric shards (zero-initialized; atomics value-initialize).
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>,
             kMaxHistograms * kHistogramBuckets>
      hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_sums{};
};

struct RegistryState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadState>> threads;
  std::uint32_t next_tid = 0;
  std::size_t ring_capacity = kDefaultRingCapacity;

  // Metric descriptors + process-lived handles (stable addresses).
  std::vector<std::string> counter_names;
  std::vector<std::unique_ptr<Counter>> counter_handles;
  std::vector<std::string> gauge_names;
  std::vector<std::unique_ptr<Gauge>> gauge_handles;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauge_bits{};
  std::vector<std::string> histogram_names;
  std::vector<std::unique_ptr<Histogram>> histogram_handles;
};

RegistryState& registry() {
  static RegistryState* state = new RegistryState;  // leaked, see header
  return *state;
}

ThreadState& tls_state() {
  // The raw pointer is the hot-path handle; the shared_ptr keeps the
  // state alive in this thread while the registry copy keeps it alive
  // (and exportable) after the thread exits.
  thread_local ThreadState* state = nullptr;
  thread_local std::shared_ptr<ThreadState> holder;
  if (state == nullptr) {
    RegistryState& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    holder = std::make_shared<ThreadState>(r.next_tid++, r.ring_capacity);
    r.threads.push_back(holder);
    state = holder.get();
  }
  return *state;
}

}  // namespace

void set_ring_capacity(std::size_t events) {
  NTC_REQUIRE(events >= 2 && (events & (events - 1)) == 0);
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.ring_capacity = events;
}

// The record family stores now_raw() ticks in ts_ns/dur_ns; snapshot()
// rewrites both to nanoseconds before events leave the recorder.

void record(EventKind kind, const char* name, std::uint64_t a0,
            std::uint64_t a1) {
  ThreadState& st = tls_state();
  const std::uint64_t h = st.head.load(std::memory_order_relaxed);
  TraceEvent& ev = st.ring[h & (st.ring.size() - 1)];
  ev.ts_ns = now_raw();
  ev.dur_ns = 0;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.name = name;
  ev.kind = kind;
  st.head.store(h + 1, std::memory_order_release);
}

void record_span(EventKind kind, const char* name, std::uint64_t begin_raw,
                 std::uint64_t a0, std::uint64_t a1) {
  ThreadState& st = tls_state();
  const std::uint64_t now = now_raw();
  const std::uint64_t h = st.head.load(std::memory_order_relaxed);
  TraceEvent& ev = st.ring[h & (st.ring.size() - 1)];
  ev.ts_ns = begin_raw;
  ev.dur_ns = now >= begin_raw ? now - begin_raw : 0;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.name = name;
  ev.kind = kind;
  st.head.store(h + 1, std::memory_order_release);
}

void record_bulk(EventKind kind, const char* name, std::uint64_t count,
                 std::uint64_t a0, std::uint64_t a1) {
  if (count == 0) return;
  ThreadState& st = tls_state();
  const std::uint64_t cap = st.ring.size();
  const std::uint64_t ts = now_raw();
  const std::uint64_t h = st.head.load(std::memory_order_relaxed);
  // Writing more than `cap` identical events would only overwrite our
  // own slots; head still advances by the full count so the wrap shows
  // up as dropped events, same as the one-at-a-time path.
  const std::uint64_t n = count < cap ? count : cap;
  for (std::uint64_t k = count - n; k < count; ++k) {
    TraceEvent& ev = st.ring[(h + k) & (cap - 1)];
    ev.ts_ns = ts;
    ev.dur_ns = 0;
    ev.a0 = a0;
    ev.a1 = a1;
    ev.name = name;
    ev.kind = kind;
  }
  st.head.store(h + count, std::memory_order_release);
}

std::vector<ThreadTrace> snapshot() {
  const ClockState& clk = clock_state();
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<ThreadTrace> out;
  out.reserve(r.threads.size());
  for (const auto& st : r.threads) {
    ThreadTrace trace;
    trace.tid = st->tid;
    const std::uint64_t h = st->head.load(std::memory_order_acquire);
    const std::uint64_t cap = st->ring.size();
    const std::uint64_t n = h < cap ? h : cap;
    trace.dropped = h - n;
    trace.events.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i) {
      TraceEvent ev = st->ring[i & (cap - 1)];
      // Rings hold raw ticks (see the record family); events leave the
      // recorder in nanoseconds.
      ev.ts_ns = ticks_to_ns(ev.ts_ns, clk);
      ev.dur_ns = tick_delta_ns(ev.dur_ns, clk);
      trace.events.push_back(ev);
    }
    out.push_back(std::move(trace));
  }
  return out;
}

void reset_for_testing() {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& st : r.threads) {
    st->head.store(0, std::memory_order_release);
    for (auto& c : st->counters) c.store(0, std::memory_order_relaxed);
    for (auto& b : st->hist_buckets) b.store(0, std::memory_order_relaxed);
    for (auto& s : st->hist_sums) s.store(0, std::memory_order_relaxed);
  }
  for (auto& g : r.gauge_bits) g.store(0, std::memory_order_relaxed);
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Span: return "span";
    case EventKind::MemoryBurst: return "memory_burst";
    case EventKind::EccDecode: return "ecc_decode";
    case EventKind::InjectedFlips: return "injected_flips";
    case EventKind::Scrub: return "scrub";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::Restore: return "restore";
    case EventKind::CrcCheck: return "crc_check";
    case EventKind::VoltageChange: return "voltage_change";
    case EventKind::Recovery: return "recovery";
    case EventKind::CampaignTrial: return "campaign_trial";
    case EventKind::ExecutorJob: return "executor_job";
    case EventKind::CampaignShard: return "campaign_shard";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Metrics

namespace {

/// Look up `name` in `names`, or register it (bounded by `max`) and
/// mint a handle via `make`.  Returns the process-lived handle.
template <class Handle, class Make>
Handle& find_or_register(std::vector<std::string>& names,
                         std::vector<std::unique_ptr<Handle>>& handles,
                         const std::string& name, std::size_t max,
                         const Make& make) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return *handles[i];
  NTC_REQUIRE_MSG(names.size() < max, "metric registry ceiling reached");
  names.push_back(name);
  handles.emplace_back(make(names.size() - 1));
  return *handles.back();
}

}  // namespace

Counter& counter(const std::string& name) {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return find_or_register(r.counter_names, r.counter_handles, name,
                          kMaxCounters,
                          [](std::size_t i) { return new Counter(i); });
}

Gauge& gauge(const std::string& name) {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return find_or_register(r.gauge_names, r.gauge_handles, name, kMaxGauges,
                          [](std::size_t i) { return new Gauge(i); });
}

Histogram& histogram(const std::string& name) {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return find_or_register(r.histogram_names, r.histogram_handles, name,
                          kMaxHistograms,
                          [](std::size_t i) { return new Histogram(i); });
}

void Counter::inc(std::uint64_t n) {
  tls_state().counters[index_].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& st : r.threads)
    total += st->counters[index_].load(std::memory_order_relaxed);
  return total;
}

const std::string& Counter::name() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.counter_names[index_];
}

void Gauge::set(double value) {
  registry().gauge_bits[index_].store(std::bit_cast<std::uint64_t>(value),
                                      std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(
      registry().gauge_bits[index_].load(std::memory_order_relaxed));
}

const std::string& Gauge::name() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.gauge_names[index_];
}

void Histogram::observe(std::uint64_t sample) {
  ThreadState& st = tls_state();
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(sample));
  st.hist_buckets[index_ * kHistogramBuckets + bucket].fetch_add(
      1, std::memory_order_relaxed);
  st.hist_sums[index_].fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::buckets() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::uint64_t> out(kHistogramBuckets, 0);
  for (const auto& st : r.threads)
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      out[b] += st->hist_buckets[index_ * kHistogramBuckets + b].load(
          std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets()) total += b;
  return total;
}

std::uint64_t Histogram::sum() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& st : r.threads)
    total += st->hist_sums[index_].load(std::memory_order_relaxed);
  return total;
}

const std::string& Histogram::name() const {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.histogram_names[index_];
}

MetricsSnapshot collect() {
  RegistryState& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& st : r.threads)
      total += st->counters[i].load(std::memory_order_relaxed);
    snap.counters.push_back({r.counter_names[i], total});
  }
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i)
    snap.gauges.push_back(
        {r.gauge_names[i],
         std::bit_cast<double>(
             r.gauge_bits[i].load(std::memory_order_relaxed))});
  for (std::size_t i = 0; i < r.histogram_names.size(); ++i) {
    MetricsSnapshot::HistogramValue h;
    h.name = r.histogram_names[i];
    h.buckets.assign(kHistogramBuckets, 0);
    h.sum = 0;
    for (const auto& st : r.threads) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        h.buckets[b] += st->hist_buckets[i * kHistogramBuckets + b].load(
            std::memory_order_relaxed);
      h.sum += st->hist_sums[i].load(std::memory_order_relaxed);
    }
    h.count = 0;
    for (const std::uint64_t b : h.buckets) h.count += b;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace ntc::telemetry
