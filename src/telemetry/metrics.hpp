// Metrics registry: counters, gauges and log-bucketed histograms,
// sharded per thread and aggregated on demand.
//
// Hot-path cost when enabled is one uncontended relaxed atomic add into
// the calling thread's shard — no locks, no cross-thread cache-line
// traffic.  Aggregation (value()/collect()/the Prometheus exporter)
// walks every registered shard under the registry mutex, including
// shards of threads that have exited (their totals must keep
// contributing).  Metric handles are process-lived: look one up once
// (function-local static at the call site) and reuse it.
//
// Histograms are log2-bucketed: a sample `v` lands in bucket
// bit_width(v), i.e. bucket k holds samples in [2^(k-1), 2^k).  That
// gives fixed-size shards (65 buckets spanning the whole u64 range) and
// the half-order-of-magnitude resolution latency/energy profiles need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace ntc::telemetry {

/// Ceilings keep shards fixed-size (a shard is one flat allocation per
/// thread); registering past a ceiling aborts — raise it deliberately.
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxHistograms = 32;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kHistogramBuckets = 65;  ///< bit_width(u64)+1

class Counter {
 public:
  void inc(std::uint64_t n = 1);
  /// Sum across every thread shard (relaxed reads; exact once the
  /// writing threads are quiescent).
  std::uint64_t value() const;
  const std::string& name() const;

 private:
  friend Counter& counter(const std::string& name);
  explicit Counter(std::size_t index) : index_(index) {}
  std::size_t index_;
};

/// Last-write-wins instantaneous value (rail voltage, pool depth).
/// Gauges are set rarely, so they are a single process-wide atomic.
class Gauge {
 public:
  void set(double value);
  double value() const;
  const std::string& name() const;

 private:
  friend Gauge& gauge(const std::string& name);
  explicit Gauge(std::size_t index) : index_(index) {}
  std::size_t index_;
};

class Histogram {
 public:
  void observe(std::uint64_t sample);
  /// Aggregated per-bucket counts (kHistogramBuckets entries).
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t count() const;
  std::uint64_t sum() const;
  const std::string& name() const;

 private:
  friend Histogram& histogram(const std::string& name);
  explicit Histogram(std::size_t index) : index_(index) {}
  std::size_t index_;
};

/// Look up or register a metric by name.  Names follow Prometheus
/// conventions (snake_case, counters end in _total, histograms name
/// their unit e.g. _ns).  Returned references are process-lived.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Aggregated snapshot for the exporters.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries
    std::uint64_t count;
    std::uint64_t sum;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

MetricsSnapshot collect();

}  // namespace ntc::telemetry

#if NTC_TELEMETRY
/// Bump a named counter when telemetry is enabled.  The registry lookup
/// happens once per call site (function-local static).
#define NTC_TELEM_COUNT(name_literal, n)                            \
  do {                                                              \
    if (::ntc::telemetry::enabled()) {                              \
      static ::ntc::telemetry::Counter& ntc_telem_counter_ =        \
          ::ntc::telemetry::counter(name_literal);                  \
      ntc_telem_counter_.inc(static_cast<std::uint64_t>(n));        \
    }                                                               \
  } while (0)
/// Record a histogram sample when telemetry is enabled.
#define NTC_TELEM_OBSERVE(name_literal, sample)                     \
  do {                                                              \
    if (::ntc::telemetry::enabled()) {                              \
      static ::ntc::telemetry::Histogram& ntc_telem_hist_ =         \
          ::ntc::telemetry::histogram(name_literal);                \
      ntc_telem_hist_.observe(static_cast<std::uint64_t>(sample));  \
    }                                                               \
  } while (0)
/// Set a named gauge when telemetry is enabled.
#define NTC_TELEM_GAUGE(name_literal, value)                        \
  do {                                                              \
    if (::ntc::telemetry::enabled()) {                              \
      static ::ntc::telemetry::Gauge& ntc_telem_gauge_ =            \
          ::ntc::telemetry::gauge(name_literal);                    \
      ntc_telem_gauge_.set(static_cast<double>(value));             \
    }                                                               \
  } while (0)
#else
#define NTC_TELEM_COUNT(name_literal, n) \
  do {                                   \
  } while (0)
#define NTC_TELEM_OBSERVE(name_literal, sample) \
  do {                                          \
  } while (0)
#define NTC_TELEM_GAUGE(name_literal, value) \
  do {                                       \
  } while (0)
#endif
