// Exporters: drain the recorder + metrics registry into standard
// formats.  All three are snapshot-based — call them at a quiescent
// instant (see telemetry.hpp) and they never mutate recorder state, so
// exporting twice yields the same document.
//
//   * export_chrome_trace — Chrome/Perfetto `trace_event` JSON (open
//     chrome://tracing or https://ui.perfetto.dev and load the file).
//     Spans become "X" complete events, instants become "i"; event args
//     carry the kind-specific a0/a1 payloads under descriptive keys.
//   * export_prometheus — text exposition format: every registered
//     counter/gauge/histogram plus ntc_telemetry_dropped_events_total
//     (events lost to ring wrap).  Histogram buckets are cumulative
//     with le="2^k - 1" upper bounds matching the log2 sharding.
//   * export_jsonl — one JSON object per line per event, the embeddable
//     form the campaign ledgers and ad-hoc tooling consume.
//
// Every export opens with the build-info record (see build_info.hpp) so
// a trace file is attributable to the binary that produced it.
#pragma once

#include <iosfwd>

namespace ntc::telemetry {

void export_chrome_trace(std::ostream& out);
void export_prometheus(std::ostream& out);
void export_jsonl(std::ostream& out);

}  // namespace ntc::telemetry
