// 1K-point fixed-point FFT, execution-driven against the simulated
// scratchpad — the paper's evaluation workload.
//
// The transform runs in-place on packed complex Q15 samples living in
// the scratchpad: every butterfly's loads and stores traverse the
// fault-injecting memory model, so bit errors corrupt the numerics
// exactly as they would on the silicon platform.  Stages are the
// streaming phases OCEAN checkpoints: phase 0 is the bit-reverse
// permutation, phases 1..log2(N) the butterfly stages, each scaling by
// 1/2 to prevent overflow (total output scaling 1/N).
#pragma once

#include <complex>
#include <vector>

#include "common/fixed_point.hpp"
#include "workloads/streaming.hpp"

namespace ntc::workloads {

class FixedPointFft final : public StreamingTask {
 public:
  /// `points` must be a power of two (the paper uses 1024);
  /// `spm_word_offset` locates the working buffer in the scratchpad.
  explicit FixedPointFft(std::size_t points, std::uint32_t spm_word_offset = 0);

  std::string name() const override;
  std::size_t phase_count() const override;  // 1 + log2(points)
  ChunkRef initialize(sim::MemoryPort& spm) override;
  ChunkRef input_chunk(std::size_t index) const override;
  PhaseResult run_phase(std::size_t index, sim::MemoryPort& spm) override;

  /// Set the time-domain input (applied at initialize()).  Values must
  /// be within Q15 range.
  void set_input(std::vector<std::complex<double>> input);

  /// Read the transform result back out of the scratchpad.
  std::vector<std::complex<double>> read_output(sim::MemoryPort& spm) const;

  /// The scaling the fixed-point pipeline applies (1/N), needed when
  /// comparing against an unscaled reference FFT.
  double output_scale() const { return 1.0 / static_cast<double>(points_); }

  /// Cycle cost model (ARM9-class): per butterfly and per permutation
  /// element, used to charge core cycles.
  static constexpr std::uint64_t kCyclesPerButterfly = 18;
  static constexpr std::uint64_t kCyclesPerPermute = 6;

 private:
  std::size_t points_;
  std::size_t log2n_;
  std::uint32_t base_;
  std::vector<std::complex<double>> input_;
  /// Twiddle factors for every stage, precomputed at construction with
  /// the same cos/sin → Q15 rounding as the on-demand computation:
  /// stage with half-length L stores its L factors at [L - 1, 2L - 1).
  std::vector<ComplexQ15> twiddles_;

  ComplexQ15 twiddle(std::size_t k, std::size_t len) const;
};

}  // namespace ntc::workloads
