// Golden-model quality metrics for the streaming workloads.
#pragma once

#include <complex>
#include <vector>

namespace ntc::workloads {

/// Reference DFT in double precision (O(n log n) recursive radix-2;
/// n must be a power of two).
std::vector<std::complex<double>> reference_fft(
    std::vector<std::complex<double>> input);

/// Signal-to-noise ratio [dB] of `measured` against `reference`
/// (10*log10(signal power / error power)); +inf is clamped to 300 dB.
double snr_db(const std::vector<std::complex<double>>& measured,
              const std::vector<std::complex<double>>& reference);

/// Root-mean-square error between two real sequences of equal length.
double rmse(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ntc::workloads
