#include "workloads/fir.hpp"

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::workloads {

FirFilter::FirFilter(std::vector<double> taps, std::vector<double> input,
                     std::size_t block_samples, std::uint32_t spm_word_offset)
    : taps_(std::move(taps)),
      input_(std::move(input)),
      block_samples_(block_samples),
      base_(spm_word_offset) {
  NTC_REQUIRE(!taps_.empty() && !input_.empty());
  NTC_REQUIRE(block_samples_ > 0);
  NTC_REQUIRE(input_.size() % block_samples_ == 0);
}

std::string FirFilter::name() const {
  return std::to_string(taps_.size()) + "-tap Q15 FIR";
}

std::size_t FirFilter::phase_count() const {
  return input_.size() / block_samples_;
}

std::uint32_t FirFilter::input_base() const {
  return base_ + static_cast<std::uint32_t>(taps_.size());
}

std::uint32_t FirFilter::output_base() const {
  return input_base() + static_cast<std::uint32_t>(input_.size());
}

ChunkRef FirFilter::initialize(sim::MemoryPort& spm) {
  // Q15 samples stored one per 32-bit word (low half), coefficients
  // first so a burst of weak cells cannot silently hit both.
  std::vector<std::uint32_t> coeffs(taps_.size());
  for (std::size_t i = 0; i < taps_.size(); ++i)
    coeffs[i] = static_cast<std::uint16_t>(Q15::from_double(taps_[i]).raw());
  spm.write_burst(coeff_base(), coeffs);
  std::vector<std::uint32_t> samples(input_.size());
  for (std::size_t i = 0; i < input_.size(); ++i)
    samples[i] = static_cast<std::uint16_t>(Q15::from_double(input_[i]).raw());
  spm.write_burst(input_base(), samples);
  return ChunkRef{input_base(), static_cast<std::uint32_t>(input_.size())};
}

ChunkRef FirFilter::input_chunk(std::size_t index) const {
  NTC_REQUIRE(index < phase_count());
  return ChunkRef{
      input_base() + static_cast<std::uint32_t>(index * block_samples_),
      static_cast<std::uint32_t>(block_samples_)};
}

PhaseResult FirFilter::run_phase(std::size_t index, sim::MemoryPort& spm) {
  NTC_REQUIRE(index < phase_count());
  NTC_TELEM_SPAN(span, telemetry::EventKind::Span, "fir_phase");
  span.set_args(index, block_samples_);
  PhaseResult result;
  bool fault = false;
  const std::size_t begin = index * block_samples_;
  // One burst for the coefficient bank and one for the input window the
  // block convolves over, instead of re-reading both per tap.
  std::vector<std::uint32_t> coeffs(taps_.size());
  if (spm.read_burst(coeff_base(), coeffs) ==
      sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  const std::size_t window_lo =
      begin >= taps_.size() - 1 ? begin - (taps_.size() - 1) : 0;
  const std::size_t window_hi = begin + block_samples_;
  std::vector<std::uint32_t> samples(window_hi - window_lo);
  if (spm.read_burst(input_base() + static_cast<std::uint32_t>(window_lo),
                     samples) == sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  std::vector<std::uint32_t> output(block_samples_);
  for (std::size_t n = begin; n < window_hi; ++n) {
    Q15 acc{0};
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      if (n < t) break;
      const Q15 coeff{static_cast<std::int16_t>(coeffs[t] & 0xFFFFu)};
      const Q15 sample{
          static_cast<std::int16_t>(samples[n - t - window_lo] & 0xFFFFu)};
      acc = acc + coeff * sample;
      result.compute_cycles += kCyclesPerTap;
    }
    output[n - begin] = static_cast<std::uint16_t>(acc.raw());
  }
  if (spm.write_burst(output_base() + static_cast<std::uint32_t>(begin),
                      output) == sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  result.output =
      ChunkRef{output_base() + static_cast<std::uint32_t>(begin),
               static_cast<std::uint32_t>(block_samples_)};
  result.memory_fault = fault;
  return result;
}

std::vector<double> FirFilter::read_output(sim::MemoryPort& spm) const {
  std::vector<std::uint32_t> words(input_.size());
  spm.read_burst(output_base(), words);
  std::vector<double> out(input_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = Q15{static_cast<std::int16_t>(words[i] & 0xFFFFu)}.to_double();
  return out;
}

std::vector<double> FirFilter::reference_output() const {
  std::vector<double> out(input_.size(), 0.0);
  for (std::size_t n = 0; n < input_.size(); ++n) {
    double acc = 0.0;
    for (std::size_t t = 0; t < taps_.size() && t <= n; ++t) {
      // Quantised coefficients/samples to match the Q15 pipeline.
      acc += Q15::from_double(taps_[t]).to_double() *
             Q15::from_double(input_[n - t]).to_double();
    }
    out[n] = acc;
  }
  return out;
}

}  // namespace ntc::workloads
