#include "workloads/fir.hpp"

#include "common/assert.hpp"

namespace ntc::workloads {

FirFilter::FirFilter(std::vector<double> taps, std::vector<double> input,
                     std::size_t block_samples, std::uint32_t spm_word_offset)
    : taps_(std::move(taps)),
      input_(std::move(input)),
      block_samples_(block_samples),
      base_(spm_word_offset) {
  NTC_REQUIRE(!taps_.empty() && !input_.empty());
  NTC_REQUIRE(block_samples_ > 0);
  NTC_REQUIRE(input_.size() % block_samples_ == 0);
}

std::string FirFilter::name() const {
  return std::to_string(taps_.size()) + "-tap Q15 FIR";
}

std::size_t FirFilter::phase_count() const {
  return input_.size() / block_samples_;
}

std::uint32_t FirFilter::input_base() const {
  return base_ + static_cast<std::uint32_t>(taps_.size());
}

std::uint32_t FirFilter::output_base() const {
  return input_base() + static_cast<std::uint32_t>(input_.size());
}

ChunkRef FirFilter::initialize(sim::MemoryPort& spm) {
  // Q15 samples stored one per 32-bit word (low half), coefficients
  // first so a burst of weak cells cannot silently hit both.
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    spm.write_word(coeff_base() + static_cast<std::uint32_t>(i),
                   static_cast<std::uint16_t>(Q15::from_double(taps_[i]).raw()));
  }
  for (std::size_t i = 0; i < input_.size(); ++i) {
    spm.write_word(input_base() + static_cast<std::uint32_t>(i),
                   static_cast<std::uint16_t>(Q15::from_double(input_[i]).raw()));
  }
  return ChunkRef{input_base(), static_cast<std::uint32_t>(input_.size())};
}

ChunkRef FirFilter::input_chunk(std::size_t index) const {
  NTC_REQUIRE(index < phase_count());
  return ChunkRef{
      input_base() + static_cast<std::uint32_t>(index * block_samples_),
      static_cast<std::uint32_t>(block_samples_)};
}

PhaseResult FirFilter::run_phase(std::size_t index, sim::MemoryPort& spm) {
  NTC_REQUIRE(index < phase_count());
  PhaseResult result;
  bool fault = false;
  auto load_q15 = [&](std::uint32_t word) {
    std::uint32_t raw = 0;
    if (spm.read_word(word, raw) == sim::AccessStatus::DetectedUncorrectable)
      fault = true;
    return Q15{static_cast<std::int16_t>(raw & 0xFFFFu)};
  };
  const std::size_t begin = index * block_samples_;
  for (std::size_t n = begin; n < begin + block_samples_; ++n) {
    Q15 acc{0};
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      if (n < t) break;
      const Q15 coeff = load_q15(coeff_base() + static_cast<std::uint32_t>(t));
      const Q15 sample =
          load_q15(input_base() + static_cast<std::uint32_t>(n - t));
      acc = acc + coeff * sample;
      result.compute_cycles += kCyclesPerTap;
    }
    if (spm.write_word(output_base() + static_cast<std::uint32_t>(n),
                       static_cast<std::uint16_t>(acc.raw())) ==
        sim::AccessStatus::DetectedUncorrectable)
      fault = true;
  }
  result.output =
      ChunkRef{output_base() + static_cast<std::uint32_t>(begin),
               static_cast<std::uint32_t>(block_samples_)};
  result.memory_fault = fault;
  return result;
}

std::vector<double> FirFilter::read_output(sim::MemoryPort& spm) const {
  std::vector<double> out(input_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint32_t raw = 0;
    spm.read_word(output_base() + static_cast<std::uint32_t>(i), raw);
    out[i] = Q15{static_cast<std::int16_t>(raw & 0xFFFFu)}.to_double();
  }
  return out;
}

std::vector<double> FirFilter::reference_output() const {
  std::vector<double> out(input_.size(), 0.0);
  for (std::size_t n = 0; n < input_.size(); ++n) {
    double acc = 0.0;
    for (std::size_t t = 0; t < taps_.size() && t <= n; ++t) {
      // Quantised coefficients/samples to match the Q15 pipeline.
      acc += Q15::from_double(taps_[t]).to_double() *
             Q15::from_double(input_[n - t]).to_double();
    }
    out[n] = acc;
  }
  return out;
}

}  // namespace ntc::workloads
