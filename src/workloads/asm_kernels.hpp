// Assembly kernel library for the RISC core.
//
// Small, self-checking programs (source text for the assembler) that
// exercise the core and the protected memories together; each kernel
// leaves its result in a0 and halts with ecall.  Used by the platform
// integration tests and by examples that want "real software" on the
// simulated SoC without bringing a compiler into the build.
#pragma once

#include <cstdint>
#include <string>

namespace ntc::workloads::kernels {

/// Sum of a[i]*b[i], i < n, with a[i] = i and b[i] = 2i, built in the
/// scratchpad.  Expected result: 2 * sum i^2.
std::string dot_product(std::uint32_t n);
std::uint32_t dot_product_expected(std::uint32_t n);

/// Word-wise memcpy of n words (pattern seed*i) followed by a
/// verification loop; a0 = number of mismatching words (0 = pass).
std::string memcpy_check(std::uint32_t n, std::uint32_t seed);

/// Iterative Fibonacci; a0 = fib(n) (n <= 47 to stay in 32 bits).
std::string fibonacci(std::uint32_t n);
std::uint32_t fibonacci_expected(std::uint32_t n);

/// In-place bubble sort of n pseudo-random words in the scratchpad,
/// then a sortedness check; a0 = number of inversions left (0 = pass).
std::string bubble_sort_check(std::uint32_t n, std::uint32_t seed);

/// 32-bit checksum (additive, with rotation via shifts) over n words of
/// scratchpad initialised to a known pattern; a0 = checksum.
std::string checksum(std::uint32_t n);
std::uint32_t checksum_expected(std::uint32_t n);

}  // namespace ntc::workloads::kernels
