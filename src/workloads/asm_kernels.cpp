#include "workloads/asm_kernels.hpp"

#include "common/assert.hpp"

namespace ntc::workloads::kernels {

namespace {
constexpr std::uint32_t kSpmByteBase = 0x40000;  // word 0x10000 on the bus

std::string num(std::uint32_t v) { return std::to_string(v); }
}  // namespace

std::string dot_product(std::uint32_t n) {
  NTC_REQUIRE(n >= 1 && n <= 512);
  return R"(
        li   t0, )" + num(kSpmByteBase) + R"(
        li   t1, )" + num(kSpmByteBase + 4 * n) + R"(
        li   t2, 0
        li   t3, )" + num(n) + R"(
init:   slli t4, t2, 2
        add  t5, t0, t4
        sw   t2, 0(t5)
        add  t5, t1, t4
        slli t6, t2, 1
        sw   t6, 0(t5)
        addi t2, t2, 1
        blt  t2, t3, init
        li   t2, 0
        li   a0, 0
loop:   slli t4, t2, 2
        add  t5, t0, t4
        lw   t6, 0(t5)
        add  t5, t1, t4
        lw   s0, 0(t5)
        mul  t6, t6, s0
        add  a0, a0, t6
        addi t2, t2, 1
        blt  t2, t3, loop
        ecall
)";
}

std::uint32_t dot_product_expected(std::uint32_t n) {
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < n; ++i) acc += i * (2 * i);
  return acc;
}

std::string memcpy_check(std::uint32_t n, std::uint32_t seed) {
  NTC_REQUIRE(n >= 1 && n <= 512);
  return R"(
        li   t0, )" + num(kSpmByteBase) + R"(
        li   t1, )" + num(kSpmByteBase + 4 * n) + R"(
        li   t2, 0
        li   t3, )" + num(n) + R"(
        li   s0, )" + num(seed) + R"(
fill:   slli t4, t2, 2
        add  t5, t0, t4
        mul  t6, t2, s0
        addi t6, t6, 17
        sw   t6, 0(t5)
        addi t2, t2, 1
        blt  t2, t3, fill
        li   t2, 0
copy:   slli t4, t2, 2
        add  t5, t0, t4
        lw   t6, 0(t5)
        add  t5, t1, t4
        sw   t6, 0(t5)
        addi t2, t2, 1
        blt  t2, t3, copy
        li   a0, 0
        li   t2, 0
verify: slli t4, t2, 2
        add  t5, t0, t4
        lw   t6, 0(t5)
        add  t5, t1, t4
        lw   s1, 0(t5)
        beq  t6, s1, match
        addi a0, a0, 1
match:  addi t2, t2, 1
        blt  t2, t3, verify
        ecall
)";
}

std::string fibonacci(std::uint32_t n) {
  NTC_REQUIRE(n <= 47);
  return R"(
        li   t0, 0          # fib(i)
        li   t1, 1          # fib(i+1)
        li   t2, 0          # i
        li   t3, )" + num(n) + R"(
        beq  t2, t3, done
step:   add  t4, t0, t1
        mv   t0, t1
        mv   t1, t4
        addi t2, t2, 1
        blt  t2, t3, step
done:   mv   a0, t0
        ecall
)";
}

std::uint32_t fibonacci_expected(std::uint32_t n) {
  std::uint32_t a = 0, b = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

std::string bubble_sort_check(std::uint32_t n, std::uint32_t seed) {
  NTC_REQUIRE(n >= 2 && n <= 64);
  return R"(
        li   t0, )" + num(kSpmByteBase) + R"(
        li   t1, )" + num(n) + R"(
        li   t2, 0
        li   s0, )" + num(seed | 1u) + R"(
        li   t5, 1103515245
        li   t6, 12345
fill:   mul  s0, s0, t5
        add  s0, s0, t6
        slli t3, t2, 2
        add  t3, t3, t0
        sw   s0, 0(t3)
        addi t2, t2, 1
        blt  t2, t1, fill
        li   t6, )" + num(n - 1) + R"(
        li   t2, 0
pass:   li   s1, 0
inner:  slli t3, s1, 2
        add  t3, t3, t0
        lw   t4, 0(t3)
        lw   t5, 4(t3)
        bgeu t5, t4, noswap
        sw   t5, 0(t3)
        sw   t4, 4(t3)
noswap: addi s1, s1, 1
        blt  s1, t6, inner
        addi t2, t2, 1
        blt  t2, t6, pass
        li   a0, 0
        li   s1, 0
verify: slli t3, s1, 2
        add  t3, t3, t0
        lw   t4, 0(t3)
        lw   t5, 4(t3)
        bgeu t5, t4, ordered
        addi a0, a0, 1
ordered: addi s1, s1, 1
        blt  s1, t6, verify
        ecall
)";
}

std::string checksum(std::uint32_t n) {
  NTC_REQUIRE(n >= 1 && n <= 512);
  return R"(
        li   t0, )" + num(kSpmByteBase) + R"(
        li   t1, )" + num(n) + R"(
        li   t2, 0
        li   t5, 2654435761
fill:   mul  t4, t2, t5
        slli t3, t2, 2
        add  t3, t3, t0
        sw   t4, 0(t3)
        addi t2, t2, 1
        blt  t2, t1, fill
        li   a0, 0
        li   t2, 0
sum:    slli t3, t2, 2
        add  t3, t3, t0
        lw   t4, 0(t3)
        slli t5, a0, 1
        srli t6, a0, 31
        or   a0, t5, t6
        add  a0, a0, t4
        addi t2, t2, 1
        blt  t2, t1, sum
        ecall
)";
}

std::uint32_t checksum_expected(std::uint32_t n) {
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t value = i * 2654435761u;
    acc = (acc << 1) | (acc >> 31);
    acc += value;
  }
  return acc;
}

}  // namespace ntc::workloads::kernels
