// Streaming FIR filter over scratchpad-resident blocks.
//
// The paper notes the analysis "is applicable to other streaming
// applications as well" — this 32-tap Q15 FIR processes the input in
// block-sized phases, giving a second workload with a different
// compute/access ratio for the mitigation comparisons.
#pragma once

#include <vector>

#include "common/fixed_point.hpp"
#include "workloads/streaming.hpp"

namespace ntc::workloads {

class FirFilter final : public StreamingTask {
 public:
  /// `taps` Q15 coefficients; input of `blocks` x `block_samples`
  /// samples processed one block per phase.  Layout in the scratchpad:
  /// [coefficients | input | output].
  FirFilter(std::vector<double> taps, std::vector<double> input,
            std::size_t block_samples, std::uint32_t spm_word_offset = 0);

  std::string name() const override;
  std::size_t phase_count() const override;
  ChunkRef initialize(sim::MemoryPort& spm) override;
  ChunkRef input_chunk(std::size_t index) const override;
  PhaseResult run_phase(std::size_t index, sim::MemoryPort& spm) override;

  /// Filtered output read back from the scratchpad.
  std::vector<double> read_output(sim::MemoryPort& spm) const;

  /// Double-precision reference for quality comparison.
  std::vector<double> reference_output() const;

  static constexpr std::uint64_t kCyclesPerTap = 3;  // MAC + load + index

 private:
  std::uint32_t coeff_base() const { return base_; }
  std::uint32_t input_base() const;
  std::uint32_t output_base() const;

  std::vector<double> taps_;
  std::vector<double> input_;
  std::size_t block_samples_;
  std::uint32_t base_;
};

}  // namespace ntc::workloads
