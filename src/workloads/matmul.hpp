// Integer matrix multiply over scratchpad-resident operands.
//
// Third workload class: dense compute with heavy operand reuse (each
// input element is read N times), stressing read-disturb style access
// errors differently from the FFT's streaming passes.  One output row
// per phase.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/streaming.hpp"

namespace ntc::workloads {

class MatMul final : public StreamingTask {
 public:
  /// C = A * B with n x n int16 operands (values in [-2^14, 2^14)).
  /// Layout in the scratchpad: [A | B | C], one element per word.
  MatMul(std::vector<std::int32_t> a, std::vector<std::int32_t> b,
         std::size_t n, std::uint32_t spm_word_offset = 0);

  std::string name() const override;
  std::size_t phase_count() const override { return n_; }
  ChunkRef initialize(sim::MemoryPort& spm) override;
  ChunkRef input_chunk(std::size_t index) const override;
  PhaseResult run_phase(std::size_t index, sim::MemoryPort& spm) override;

  std::vector<std::int32_t> read_output(sim::MemoryPort& spm) const;
  std::vector<std::int32_t> reference_output() const;

  static constexpr std::uint64_t kCyclesPerMac = 4;

 private:
  std::uint32_t a_base() const { return base_; }
  std::uint32_t b_base() const { return base_ + static_cast<std::uint32_t>(n_ * n_); }
  std::uint32_t c_base() const { return base_ + static_cast<std::uint32_t>(2 * n_ * n_); }

  std::vector<std::int32_t> a_, b_;
  std::size_t n_;
  std::uint32_t base_;
};

}  // namespace ntc::workloads
