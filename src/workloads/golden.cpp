#include "workloads/golden.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::workloads {

namespace {

void fft_in_place(std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  if (n <= 1) return;
  // Bit-reverse permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
}

}  // namespace

std::vector<std::complex<double>> reference_fft(
    std::vector<std::complex<double>> input) {
  NTC_REQUIRE((input.size() & (input.size() - 1)) == 0);
  fft_in_place(input);
  return input;
}

double snr_db(const std::vector<std::complex<double>>& measured,
              const std::vector<std::complex<double>>& reference) {
  NTC_REQUIRE(measured.size() == reference.size() && !measured.empty());
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    signal += std::norm(reference[i]);
    noise += std::norm(measured[i] - reference[i]);
  }
  if (noise == 0.0) return 300.0;
  if (signal == 0.0) return 0.0;
  return 10.0 * std::log10(signal / noise);
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  NTC_REQUIRE(a.size() == b.size() && !a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace ntc::workloads
