#include "workloads/matmul.hpp"

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::workloads {

MatMul::MatMul(std::vector<std::int32_t> a, std::vector<std::int32_t> b,
               std::size_t n, std::uint32_t spm_word_offset)
    : a_(std::move(a)), b_(std::move(b)), n_(n), base_(spm_word_offset) {
  NTC_REQUIRE(n_ > 0);
  NTC_REQUIRE(a_.size() == n_ * n_ && b_.size() == n_ * n_);
}

std::string MatMul::name() const {
  return std::to_string(n_) + "x" + std::to_string(n_) + " int matmul";
}

ChunkRef MatMul::initialize(sim::MemoryPort& spm) {
  std::vector<std::uint32_t> words(a_.size());
  for (std::size_t i = 0; i < a_.size(); ++i)
    words[i] = static_cast<std::uint32_t>(a_[i]);
  spm.write_burst(a_base(), words);
  for (std::size_t i = 0; i < b_.size(); ++i)
    words[i] = static_cast<std::uint32_t>(b_[i]);
  spm.write_burst(b_base(), words);
  return ChunkRef{a_base(), static_cast<std::uint32_t>(2 * n_ * n_)};
}

ChunkRef MatMul::input_chunk(std::size_t index) const {
  NTC_REQUIRE(index < n_);
  // Every phase re-reads both operands; the chunk OCEAN checkpoints is
  // the full operand region.
  return ChunkRef{a_base(), static_cast<std::uint32_t>(2 * n_ * n_)};
}

PhaseResult MatMul::run_phase(std::size_t index, sim::MemoryPort& spm) {
  NTC_REQUIRE(index < n_);
  NTC_TELEM_SPAN(span, telemetry::EventKind::Span, "matmul_phase");
  span.set_args(index, n_);
  PhaseResult result;
  bool fault = false;
  // Burst the A row once and the whole B operand once per phase instead
  // of re-reading both per multiply-accumulate.
  std::vector<std::uint32_t> a_row(n_);
  if (spm.read_burst(a_base() + static_cast<std::uint32_t>(index * n_),
                     a_row) == sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  std::vector<std::uint32_t> b_full(n_ * n_);
  if (spm.read_burst(b_base(), b_full) ==
      sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  std::vector<std::uint32_t> c_row(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < n_; ++k) {
      const std::int32_t av = static_cast<std::int32_t>(a_row[k]);
      const std::int32_t bv = static_cast<std::int32_t>(b_full[k * n_ + j]);
      acc += static_cast<std::int64_t>(av) * bv;
      result.compute_cycles += kCyclesPerMac;
    }
    c_row[j] = static_cast<std::uint32_t>(static_cast<std::int32_t>(acc));
  }
  if (spm.write_burst(c_base() + static_cast<std::uint32_t>(index * n_),
                      c_row) == sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  result.output = ChunkRef{c_base() + static_cast<std::uint32_t>(index * n_),
                           static_cast<std::uint32_t>(n_)};
  result.memory_fault = fault;
  return result;
}

std::vector<std::int32_t> MatMul::read_output(sim::MemoryPort& spm) const {
  std::vector<std::uint32_t> words(n_ * n_);
  spm.read_burst(c_base(), words);
  std::vector<std::int32_t> out(n_ * n_);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::int32_t>(words[i]);
  return out;
}

std::vector<std::int32_t> MatMul::reference_output() const {
  std::vector<std::int32_t> out(n_ * n_, 0);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < n_; ++k)
        acc += static_cast<std::int64_t>(a_[i * n_ + k]) * b_[k * n_ + j];
      out[i * n_ + j] = static_cast<std::int32_t>(acc);
    }
  return out;
}

}  // namespace ntc::workloads
