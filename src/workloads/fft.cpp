#include "workloads/fft.hpp"

#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::workloads {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

FixedPointFft::FixedPointFft(std::size_t points, std::uint32_t spm_word_offset)
    : points_(points), log2n_(ilog2(points)), base_(spm_word_offset) {
  NTC_REQUIRE(is_power_of_two(points) && points >= 4);
  twiddles_.reserve(points_ - 1);
  for (std::size_t len = 2; len <= points_; len <<= 1)
    for (std::size_t k = 0; k < len / 2; ++k)
      twiddles_.push_back(twiddle(k, len));
}

std::string FixedPointFft::name() const {
  return std::to_string(points_) + "-point Q15 FFT";
}

std::size_t FixedPointFft::phase_count() const { return log2n_ + 1; }

void FixedPointFft::set_input(std::vector<std::complex<double>> input) {
  NTC_REQUIRE(input.size() == points_);
  input_ = std::move(input);
}

ChunkRef FixedPointFft::initialize(sim::MemoryPort& spm) {
  NTC_REQUIRE_MSG(!input_.empty(), "set_input() before initialize()");
  std::vector<std::uint32_t> words(points_);
  for (std::size_t i = 0; i < points_; ++i) {
    const ComplexQ15 sample{Q15::from_double(input_[i].real()),
                            Q15::from_double(input_[i].imag())};
    words[i] = sample.pack();
  }
  spm.write_burst(base_, words);
  return ChunkRef{base_, static_cast<std::uint32_t>(points_)};
}

ChunkRef FixedPointFft::input_chunk(std::size_t index) const {
  NTC_REQUIRE(index < phase_count());
  // In-place transform: every phase consumes (and overwrites) the whole
  // working buffer.
  return ChunkRef{base_, static_cast<std::uint32_t>(points_)};
}

ComplexQ15 FixedPointFft::twiddle(std::size_t k, std::size_t len) const {
  const double angle = -2.0 * M_PI * static_cast<double>(k) /
                       static_cast<double>(len);
  return ComplexQ15{Q15::from_double(std::cos(angle)),
                    Q15::from_double(std::sin(angle))};
}

PhaseResult FixedPointFft::run_phase(std::size_t index, sim::MemoryPort& spm) {
  NTC_REQUIRE(index < phase_count());
  NTC_TELEM_SPAN(span, telemetry::EventKind::Span, "fft_phase");
  span.set_args(index, points_);
  PhaseResult result;
  result.output = ChunkRef{base_, static_cast<std::uint32_t>(points_)};
  bool fault = false;

  // Burst the whole working buffer in, transform locally, burst it
  // back: one memory transaction per direction per phase instead of one
  // per butterfly operand.
  std::vector<std::uint32_t> buffer(points_);
  if (spm.read_burst(base_, buffer) ==
      sim::AccessStatus::DetectedUncorrectable)
    fault = true;

  if (index == 0) {
    // Bit-reverse permutation.
    for (std::size_t i = 1, j = 0; i < points_; ++i) {
      std::size_t bit = points_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(buffer[i], buffer[j]);
      result.compute_cycles += kCyclesPerPermute;
    }
  } else {
    // Butterfly stage `index`: len = 2^index; scale outputs by 1/2 to
    // keep Q15 in range (block-floating behaviour of embedded FFTs).
    const std::size_t len = std::size_t{1} << index;
    const ComplexQ15* stage_twiddles = twiddles_.data() + (len / 2 - 1);
    for (std::size_t i = 0; i < points_; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const ComplexQ15 w = stage_twiddles[k];
        const ComplexQ15 u = ComplexQ15::unpack(buffer[i + k]);
        const ComplexQ15 v = ComplexQ15::unpack(buffer[i + k + len / 2]);
        // v * w (complex Q15 multiply).
        const Q15 vr = v.re * w.re - v.im * w.im;
        const Q15 vi = v.re * w.im + v.im * w.re;
        // Scaled butterfly: (u ± vw) / 2.
        const ComplexQ15 out0{(u.re + vr).shr(1), (u.im + vi).shr(1)};
        const ComplexQ15 out1{(u.re - vr).shr(1), (u.im - vi).shr(1)};
        buffer[i + k] = out0.pack();
        buffer[i + k + len / 2] = out1.pack();
        result.compute_cycles += kCyclesPerButterfly;
      }
    }
  }

  if (spm.write_burst(base_, buffer) ==
      sim::AccessStatus::DetectedUncorrectable)
    fault = true;
  result.memory_fault = fault;
  return result;
}

std::vector<std::complex<double>> FixedPointFft::read_output(
    sim::MemoryPort& spm) const {
  std::vector<std::uint32_t> words(points_);
  spm.read_burst(base_, words);
  std::vector<std::complex<double>> out(points_);
  for (std::size_t i = 0; i < points_; ++i) {
    const ComplexQ15 sample = ComplexQ15::unpack(words[i]);
    out[i] = {sample.re.to_double(), sample.im.to_double()};
  }
  return out;
}

}  // namespace ntc::workloads
