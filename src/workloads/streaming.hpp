// Phase-structured streaming computation (the application model of
// OCEAN, paper Figure 7).
//
// A StreamingTask splits into phases; each phase consumes the chunk the
// previous phase produced in scratchpad memory and produces its own
// output chunk.  OCEAN exploits exactly this structure: a phase's
// output chunk is what gets checkpointed into the protected buffer, and
// a corrupted input chunk can be restored from there instead of
// re-running the producer.
#pragma once

#include <cstdint>
#include <string>

#include "sim/memory_port.hpp"

namespace ntc::workloads {

/// A contiguous span of 32-bit words in the scratchpad.
struct ChunkRef {
  std::uint32_t word_offset = 0;
  std::uint32_t words = 0;
};

struct PhaseResult {
  ChunkRef output;                  ///< chunk produced by this phase
  std::uint64_t compute_cycles = 0; ///< core cycles to charge
  bool memory_fault = false;        ///< uncorrectable access met mid-phase
};

class StreamingTask {
 public:
  virtual ~StreamingTask() = default;

  virtual std::string name() const = 0;
  virtual std::size_t phase_count() const = 0;

  /// Write the initial input chunk into the scratchpad.  Returns the
  /// chunk that phase 0 consumes.
  virtual ChunkRef initialize(sim::MemoryPort& spm) = 0;

  /// The chunk phase `index` consumes (the previous phase's output for
  /// classic streaming pipelines).
  virtual ChunkRef input_chunk(std::size_t index) const = 0;

  /// Execute one phase against the scratchpad.
  virtual PhaseResult run_phase(std::size_t index, sim::MemoryPort& spm) = 0;
};

}  // namespace ntc::workloads
