// Retention bit-error-rate model, paper Eq. (4):
//
//   p_bit,err(VDD) = 0.5 * [1 + erf((VDD/d0 - d1) / sqrt(d2^2))]
//
// with d0..d2 fitted to measurement.  This is the closed form of the
// Gaussian noise-margin population model; both directions of the
// correspondence are provided so fitted constants can be sanity-checked
// against the generating NoiseMarginModel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "reliability/noise_margin.hpp"

namespace ntc::reliability {

/// One point of a bit-error-rate sweep: `failures` failing bits out of
/// `total` tested at supply `vdd`.
struct BerPoint {
  Volt vdd{0.0};
  std::uint64_t failures = 0;
  std::uint64_t total = 0;

  double p_hat() const {
    return total == 0 ? 0.0
                      : static_cast<double>(failures) / static_cast<double>(total);
  }
};

class RetentionErrorModel {
 public:
  RetentionErrorModel(double d0, double d1, double d2);

  double d0() const { return d0_; }
  double d1() const { return d1_; }
  double d2() const { return d2_; }

  /// Bit error probability at the given supply (Eq. 4).
  double p_bit_err(Volt vdd) const;

  /// Supply at which the bit error probability equals `p`.
  Volt vdd_for_p(double p) const;

  /// Exact closed-form from the generating noise-margin model.
  static RetentionErrorModel from_noise_margin(const NoiseMarginModel& nm);

  /// Equivalent noise-margin view of this model (c0 normalised to 1).
  NoiseMarginModel to_noise_margin() const;

 private:
  double d0_, d1_, d2_;
};

/// Fit Eq. (4) to measured BER data by probit regression: on the probit
/// scale the model is exactly linear in VDD, so the fit is a weighted
/// least-squares line — robust even when only a handful of sweep points
/// have nonzero failure counts.  Points with zero failures or zero
/// totals are skipped.
RetentionErrorModel fit_retention_model(const std::vector<BerPoint>& data);

}  // namespace ntc::reliability
