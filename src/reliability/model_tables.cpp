#include "reliability/model_tables.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ntc::reliability {

std::size_t RetentionVminTable::failing_count(Volt vdd) const {
  // First entry with vmin <= vdd; everything before it fails.  The
  // comparison (strict >) matches the per-cell scan this replaces.
  const double v = vdd.value;
  const auto it = std::partition_point(
      vmin_desc.begin(), vmin_desc.end(),
      [v](double vmin) { return vmin > v; });
  return static_cast<std::size_t>(it - vmin_desc.begin());
}

std::shared_ptr<const RetentionVminTable> make_retention_vmin_table(
    const NoiseMarginModel& retention, std::uint64_t sigma_seed,
    std::size_t cells) {
  NTC_REQUIRE(cells > 0);
  auto table = std::make_shared<RetentionVminTable>();
  // The deviate stream and its float narrowing reproduce the original
  // per-instance fingerprint draw exactly; only the storage order (and
  // the cell_desc inverse) is new.
  std::vector<double> vmin(cells);
  Rng sigma_rng(sigma_seed);
  for (auto& v : vmin) {
    const double sigma = static_cast<float>(sigma_rng.normal());
    v = retention.cell_retention_vmin(sigma).value;
  }
  std::vector<std::uint32_t> order(cells);
  for (std::size_t i = 0; i < cells; ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (vmin[a] != vmin[b]) return vmin[a] > vmin[b];
              return a < b;
            });
  table->vmin_desc.resize(cells);
  table->cell_desc = std::move(order);
  for (std::size_t i = 0; i < cells; ++i)
    table->vmin_desc[i] = vmin[table->cell_desc[i]];
  table->max_vmin = table->vmin_desc.front();
  return table;
}

std::size_t ModelTableCache::KeyHash::operator()(const VminKey& key) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v : {key.c0, key.c1, key.c2, key.sigma_seed, key.cells}) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

std::size_t ModelTableCache::KeyHash::operator()(const AccessKey& key) const {
  std::uint64_t h = 0x517cc1b727220a95ull;
  for (std::uint64_t v : {key.a, key.k, key.v0, key.vdd}) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const RetentionVminTable> ModelTableCache::retention_vmin(
    const NoiseMarginModel& retention, std::uint64_t sigma_seed,
    std::size_t cells) {
  const VminKey key{std::bit_cast<std::uint64_t>(retention.c0()),
                    std::bit_cast<std::uint64_t>(retention.c1()),
                    std::bit_cast<std::uint64_t>(retention.c2()), sigma_seed,
                    cells};
  // The draw runs under the lock: a cold key is computed exactly once
  // even when several workers demand it simultaneously, and the draw is
  // milliseconds against a campaign of seconds.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = vmin_.find(key);
  if (it == vmin_.end())
    it = vmin_.emplace(key, make_retention_vmin_table(retention, sigma_seed,
                                                      cells))
             .first;
  return it->second;
}

double ModelTableCache::p_access(const AccessErrorModel& access, Volt vdd) {
  const AccessKey key{std::bit_cast<std::uint64_t>(access.a()),
                      std::bit_cast<std::uint64_t>(access.k()),
                      std::bit_cast<std::uint64_t>(access.v0().value),
                      std::bit_cast<std::uint64_t>(vdd.value)};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = access_.find(key);
  if (it == access_.end())
    it = access_.emplace(key, access.p_bit_err(vdd)).first;
  return it->second;
}

std::size_t ModelTableCache::vmin_tables() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return vmin_.size();
}

std::size_t ModelTableCache::access_points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return access_.size();
}

}  // namespace ntc::reliability
