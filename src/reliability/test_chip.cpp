#include "reliability/test_chip.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::reliability {

namespace {

/// Systematic across-die bow: weakest (highest V_min) at the array
/// corners, strongest at the center — the radial pattern visible in the
/// paper's Figure 3 maps.
double spatial_bow(double amplitude, std::size_t x, std::size_t y,
                   std::size_t w, std::size_t h) {
  const double fx = (static_cast<double>(x) / static_cast<double>(w - 1)) - 0.5;
  const double fy = (static_cast<double>(y) / static_cast<double>(h - 1)) - 0.5;
  return amplitude * 2.0 * (fx * fx + fy * fy);  // 0 center, +amp/2 corners
}

}  // namespace

VirtualTestChip::VirtualTestChip(TestChipConfig config)
    : config_(std::move(config)) {
  NTC_REQUIRE(config_.dies > 0);
  NTC_REQUIRE(config_.rows > 1 && config_.cols > 1);
  Rng master(config_.seed);
  dies_.reserve(config_.dies);
  for (std::size_t d = 0; d < config_.dies; ++d) {
    Rng die_rng = master.fork(d);
    Die die(config_.cols, config_.rows);
    die.die_offset_v = die_rng.normal(0.0, config_.die_sigma_v);
    for (std::size_t y = 0; y < config_.rows; ++y) {
      for (std::size_t x = 0; x < config_.cols; ++x) {
        const double bow = spatial_bow(config_.spatial_bow_v, x, y,
                                       config_.cols, config_.rows);
        // Retention: Gaussian noise-margin deviate per cell (Eq. 2).
        const double sigma_cell = die_rng.normal();
        const double ret_vmin =
            config_.retention.cell_retention_vmin(sigma_cell).value +
            die.die_offset_v + bow;
        die.retention_vmin.set_vmin(x, y, Volt{std::max(ret_vmin, 0.0)});
        // Access: power-law CCDF per cell (Eq. 5 as a V_min population).
        const double u = die_rng.uniform();
        const double acc_vmin = config_.access.cell_access_vmin(u).value +
                                die.die_offset_v + bow;
        die.access_vmin.set_vmin(x, y, Volt{std::max(acc_vmin, 0.0)});
      }
    }
    dies_.push_back(std::move(die));
  }
}

const Die& VirtualTestChip::die(std::size_t i) const {
  NTC_REQUIRE(i < dies_.size());
  return dies_[i];
}

std::uint64_t VirtualTestChip::bits_per_die() const {
  return static_cast<std::uint64_t>(config_.rows) * config_.cols;
}

std::uint64_t VirtualTestChip::measure_retention_failures(std::size_t die_index,
                                                          Volt vdd) const {
  return die(die_index).retention_vmin.failing_cells_at(vdd);
}

std::uint64_t VirtualTestChip::measure_access_failures(std::size_t die_index,
                                                       Volt vdd) const {
  return die(die_index).access_vmin.failing_cells_at(vdd);
}

std::vector<BerPoint> VirtualTestChip::retention_sweep(
    const std::vector<double>& voltages) const {
  std::vector<BerPoint> out;
  out.reserve(voltages.size());
  for (double v : voltages) {
    BerPoint pt;
    pt.vdd = Volt{v};
    pt.total = bits_per_die() * dies_.size();
    for (std::size_t d = 0; d < dies_.size(); ++d)
      pt.failures += measure_retention_failures(d, Volt{v});
    out.push_back(pt);
  }
  return out;
}

std::vector<BerPoint> VirtualTestChip::access_sweep(
    const std::vector<double>& voltages) const {
  std::vector<BerPoint> out;
  out.reserve(voltages.size());
  for (double v : voltages) {
    BerPoint pt;
    pt.vdd = Volt{v};
    pt.total = bits_per_die() * dies_.size();
    for (std::size_t d = 0; d < dies_.size(); ++d)
      pt.failures += measure_access_failures(d, Volt{v});
    out.push_back(pt);
  }
  return out;
}

Characterization characterize(const VirtualTestChip& chip,
                              std::size_t sweep_points) {
  NTC_REQUIRE(sweep_points >= 8);
  // Derive sweep windows from the silicon itself: start just above the
  // weakest instance limit, end where a sizeable fraction of bits fail.
  double ret_hi = 0.0, acc_hi = 0.0;
  for (std::size_t d = 0; d < chip.die_count(); ++d) {
    ret_hi = std::max(ret_hi, chip.die(d).retention_vmin.instance_vmin().value);
    acc_hi = std::max(acc_hi, chip.die(d).access_vmin.instance_vmin().value);
  }
  // Retention knee: sweep from far below the median-fail point up past
  // the weakest bit.
  const double ret_lo =
      chip.die(0).retention_vmin.vmin_quantile(0.25).value - 0.02;
  const double acc_lo = chip.die(0).access_vmin.vmin_quantile(0.25).value - 0.02;

  Characterization result{
      RetentionErrorModel(-1.0, -0.3, 0.05),  // placeholders, overwritten
      AccessErrorModel(1.0, 1.0, Volt{1.0}),
      {},
      {}};
  result.retention_data =
      chip.retention_sweep(linspace(std::max(ret_lo, 0.01), ret_hi + 0.02,
                                    sweep_points));
  result.access_data = chip.access_sweep(
      linspace(std::max(acc_lo, 0.01), acc_hi + 0.02, sweep_points));
  result.retention = fit_retention_model(result.retention_data);
  result.access = fit_access_model(result.access_data);
  return result;
}

}  // namespace ntc::reliability
