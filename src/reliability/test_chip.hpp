// Virtual 40 nm test chip (the substitution for the paper's silicon).
//
// The paper characterises two memory instances — one commercial 6T
// macro and one standard-cell-based array — across 9 dies, measuring
// per-cell minimum retention voltage and quasi-static read/write access
// failures.  That measurement data is proprietary, so this module
// generates synthetic silicon from the paper's own published model
// forms: per-cell noise margins are drawn from the Gaussian model of
// Eq. (2) with die-to-die offsets and a systematic across-die bow, and
// per-cell access limits from the power-law CCDF of Eq. (5).  All
// measurement procedures then operate on the synthetic dies exactly as
// the silicon flow would, and the characterisation fit recovers the
// generating constants (validated in tests and in bench/fig4/fig5).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "reliability/access_model.hpp"
#include "reliability/fault_map.hpp"
#include "reliability/noise_margin.hpp"
#include "reliability/retention_model.hpp"

namespace ntc::reliability {

struct TestChipConfig {
  std::size_t rows = 128;   ///< bit-cell rows per instance
  std::size_t cols = 256;   ///< bit-cell columns per instance (128x256 = 32 kb)
  std::size_t dies = 9;     ///< dies measured (the paper tested 9)
  NoiseMarginModel retention = commercial_40nm_retention();
  AccessErrorModel access = commercial_40nm_access();
  double die_sigma_v = 0.008;        ///< die-to-die V_min offset sigma [V]
  double spatial_bow_v = 0.012;      ///< systematic center-to-edge bow [V]
  std::uint64_t seed = 0x5eedu;
};

/// One fabricated die: per-cell retention and access V_min maps.
struct Die {
  FaultMap retention_vmin;
  FaultMap access_vmin;
  double die_offset_v = 0.0;  ///< this die's global V_min shift

  Die(std::size_t w, std::size_t h) : retention_vmin(w, h), access_vmin(w, h) {}
};

class VirtualTestChip {
 public:
  explicit VirtualTestChip(TestChipConfig config);

  const TestChipConfig& config() const { return config_; }
  std::size_t die_count() const { return dies_.size(); }
  const Die& die(std::size_t i) const;

  /// Bits per instance.
  std::uint64_t bits_per_die() const;

  /// Failing bits of one die when *retaining* at the given supply.
  std::uint64_t measure_retention_failures(std::size_t die_index, Volt vdd) const;

  /// Failing bits of one die under quasi-static read/write at `vdd`.
  std::uint64_t measure_access_failures(std::size_t die_index, Volt vdd) const;

  /// Cumulative retention BER sweep across all dies (paper Figure 4).
  std::vector<BerPoint> retention_sweep(const std::vector<double>& voltages) const;

  /// Cumulative access BER sweep across all dies (paper Figure 5).
  std::vector<BerPoint> access_sweep(const std::vector<double>& voltages) const;

 private:
  TestChipConfig config_;
  std::vector<Die> dies_;
};

/// Full characterisation flow: sweep, then fit Eq. (4) and Eq. (5).
struct Characterization {
  RetentionErrorModel retention;
  AccessErrorModel access;
  std::vector<BerPoint> retention_data;
  std::vector<BerPoint> access_data;
};

/// Runs the measurement flow of Section IV on a virtual chip.  Sweep
/// ranges are derived from the chip's own instance limits so the flow
/// needs no prior knowledge of the generating constants.
Characterization characterize(const VirtualTestChip& chip,
                              std::size_t sweep_points = 40);

}  // namespace ntc::reliability
