#include "reliability/noise_margin.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::reliability {

NoiseMarginModel::NoiseMarginModel(double c0, double c1, double c2)
    : c0_(c0), c1_(c1), c2_(c2) {
  NTC_REQUIRE_MSG(c0 > 0.0, "noise margin must improve with VDD");
  NTC_REQUIRE_MSG(c2 > 0.0, "mismatch scale must be positive");
}

double NoiseMarginModel::noise_margin(Volt vdd, double sigma_cell) const {
  return c0_ * vdd.value + c1_ + c2_ * sigma_cell;
}

Volt NoiseMarginModel::cell_retention_vmin(double sigma_cell) const {
  // NM(V) = 0  =>  V = -(c1 + c2*sigma)/c0
  return Volt{-(c1_ + c2_ * sigma_cell) / c0_};
}

double NoiseMarginModel::p_bit_fail(Volt vdd) const {
  return normal_cdf(-(c0_ * vdd.value + c1_) / c2_);
}

Volt NoiseMarginModel::vdd_for_p_fail(double p) const {
  NTC_REQUIRE(p > 0.0 && p < 1.0);
  // Phi(-(c0 V + c1)/c2) = p  =>  V = (-c2 * Phi^-1(p) - c1) / c0
  return Volt{(-c2_ * normal_quantile(p) - c1_) / c0_};
}

NoiseMarginModel NoiseMarginModel::aged(Volt drift) const {
  NTC_REQUIRE(drift.value >= 0.0);
  // A Vt drift of dV costs the cell dV of margin at fixed supply, which
  // is the same as needing dV more supply: shift c1 down by c0*dV.
  return NoiseMarginModel(c0_, c1_ - c0_ * drift.value, c2_);
}

NoiseMarginModel commercial_40nm_retention() {
  // Half-fail at 0.28 V with 30 mV sigma: instance-level V_min (first
  // failing bit of a 32 kb array) lands near 0.40 V, and the BER knee of
  // Figure 4 sits between 0.3 and 0.45 V.
  return NoiseMarginModel(1.0, -0.28, 0.030);
}

NoiseMarginModel cell_based_40nm_retention() {
  // The flip-flop-class cell keeps state deeper and varies less:
  // half-fail 0.20 V, sigma 25 mV -> instance V_min ~ 0.30-0.32 V,
  // matching the measured Table 1 retention entry for the imec array.
  return NoiseMarginModel(1.0, -0.20, 0.025);
}

NoiseMarginModel cell_based_65nm_retention() {
  // Dual-Vt 65 nm sub-Vt memory [13]: retention down to 0.25 V.
  return NoiseMarginModel(1.0, -0.15, 0.024);
}

}  // namespace ntc::reliability
