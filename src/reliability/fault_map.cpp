#include "reliability/fault_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ntc::reliability {

FaultMap::FaultMap(std::size_t width, std::size_t height)
    : width_(width), height_(height), vmin_(width * height, 0.0) {
  NTC_REQUIRE(width > 0 && height > 0);
}

std::size_t FaultMap::index(std::size_t x, std::size_t y) const {
  NTC_REQUIRE(x < width_ && y < height_);
  return y * width_ + x;
}

Volt FaultMap::vmin(std::size_t x, std::size_t y) const {
  return Volt{vmin_[index(x, y)]};
}

void FaultMap::set_vmin(std::size_t x, std::size_t y, Volt v) {
  vmin_[index(x, y)] = v.value;
}

std::uint64_t FaultMap::failing_cells_at(Volt vdd) const {
  std::uint64_t n = 0;
  for (double v : vmin_) n += (v > vdd.value);
  return n;
}

Volt FaultMap::instance_vmin() const {
  return Volt{*std::max_element(vmin_.begin(), vmin_.end())};
}

Volt FaultMap::vmin_quantile(double quantile) const {
  NTC_REQUIRE(quantile >= 0.0 && quantile <= 1.0);
  std::vector<double> sorted = vmin_;
  const auto idx = static_cast<std::size_t>(
      quantile * static_cast<double>(sorted.size() - 1) + 0.5);
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  return Volt{sorted[idx]};
}

std::string FaultMap::render_ascii(Volt lo, Volt hi, std::size_t max_cols) const {
  NTC_REQUIRE(hi.value > lo.value);
  NTC_REQUIRE(max_cols >= 8);
  static const char kShades[] = " .:-=+*#";  // robust ... weakest
  const std::size_t n_shades = sizeof(kShades) - 1;
  // Downsample blocks: each character shows the *worst* cell of its
  // block (weak bits must stay visible after downsampling).
  const std::size_t bx = std::max<std::size_t>(1, (width_ + max_cols - 1) / max_cols);
  const std::size_t by = std::max<std::size_t>(1, 2 * bx);  // chars are ~2x tall
  std::string out;
  for (std::size_t y0 = 0; y0 < height_; y0 += by) {
    for (std::size_t x0 = 0; x0 < width_; x0 += bx) {
      double worst = lo.value;
      for (std::size_t y = y0; y < std::min(y0 + by, height_); ++y)
        for (std::size_t x = x0; x < std::min(x0 + bx, width_); ++x)
          worst = std::max(worst, vmin_[y * width_ + x]);
      double f = (worst - lo.value) / (hi.value - lo.value);
      auto shade = static_cast<std::size_t>(f * static_cast<double>(n_shades));
      shade = std::min(shade, n_shades - 1);
      out += kShades[shade];
    }
    out += '\n';
  }
  return out;
}

}  // namespace ntc::reliability
