// Per-cell minimum-voltage maps (paper Figure 3).
//
// A FaultMap stores, for every (x, y) bit-cell location of one memory
// instance, the minimum supply at which that cell still works (retains
// its state, or completes a read/write access).  It is produced by the
// virtual test chip and rendered as the voltage-coded location map the
// paper shows for one commercial and one cell-based instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace ntc::reliability {

class FaultMap {
 public:
  FaultMap(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t cell_count() const { return vmin_.size(); }

  Volt vmin(std::size_t x, std::size_t y) const;
  void set_vmin(std::size_t x, std::size_t y, Volt v);

  /// Number of cells whose V_min exceeds the given supply (= failing
  /// bits when operating at `vdd`).
  std::uint64_t failing_cells_at(Volt vdd) const;

  /// Instance-level minimum operating voltage: the largest per-cell
  /// V_min (first failing bit defines the instance limit).
  Volt instance_vmin() const;

  /// V_min below which `quantile` of the cells work; e.g. 0.999999
  /// tolerating one-per-million weak cells under error mitigation.
  Volt vmin_quantile(double quantile) const;

  /// ASCII rendering: one character per `cell_step` cells, coded by
  /// V_min bands between `lo` and `hi` (' ' robust ... '#' weakest).
  /// This is the textual equivalent of the paper's colour maps.
  std::string render_ascii(Volt lo, Volt hi, std::size_t max_cols = 96) const;

 private:
  std::size_t index(std::size_t x, std::size_t y) const;

  std::size_t width_, height_;
  std::vector<double> vmin_;
};

}  // namespace ntc::reliability
