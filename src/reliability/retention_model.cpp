#include "reliability/retention_model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "common/statistics.hpp"

namespace ntc::reliability {

RetentionErrorModel::RetentionErrorModel(double d0, double d1, double d2)
    : d0_(d0), d1_(d1), d2_(d2) {
  NTC_REQUIRE_MSG(d0 != 0.0, "d0 scales VDD and cannot be zero");
  NTC_REQUIRE_MSG(d2 != 0.0, "d2 is the spread and cannot be zero");
  // Failure probability must *fall* with rising VDD: the erf argument's
  // dVDD slope is 1/(d0*|d2|), so d0 must be negative.
  NTC_REQUIRE_MSG(d0 < 0.0, "d0 must be negative for p to fall with VDD");
}

double RetentionErrorModel::p_bit_err(Volt vdd) const {
  const double arg = (vdd.value / d0_ - d1_) / std::abs(d2_);
  return 0.5 * (1.0 + std::erf(arg));
}

Volt RetentionErrorModel::vdd_for_p(double p) const {
  NTC_REQUIRE(p > 0.0 && p < 1.0);
  const double arg = erf_inv(2.0 * p - 1.0);
  return Volt{(arg * std::abs(d2_) + d1_) * d0_};
}

RetentionErrorModel RetentionErrorModel::from_noise_margin(
    const NoiseMarginModel& nm) {
  // p(V) = Phi(-(c0 V + c1)/c2) = 0.5[1 + erf((V/d0 - d1)/|d2|)]
  // with d0 = -1, d1 = c1/c0 * (c0/ (c2 sqrt2))... solved directly:
  // erf arg must equal -(c0 V + c1)/(c2 sqrt 2).
  //   V/d0 - d1 = -(c0/c2/sqrt2) * V - c1/(c2 sqrt2)  with |d2| = 1
  // Keeping the paper's three-parameter shape, choose d0 = -1 V so the
  // spread lives in d2: arg = (-V - d1)/|d2| = (Vhalf - V)/(s sqrt2)
  //   => d1 = -Vhalf, |d2| = s*sqrt(2), with Vhalf = -c1/c0, s = c2/c0.
  const double vhalf = nm.half_fail_voltage().value;
  const double s = nm.dvdd_dsigma();
  return RetentionErrorModel(-1.0, -vhalf, s * std::sqrt(2.0));
}

NoiseMarginModel RetentionErrorModel::to_noise_margin() const {
  // Inverse of from_noise_margin with c0 = 1 (only Vhalf and the sigma
  // scale are observable from BER data).
  const double vhalf = -d1_ * (-d0_);
  const double s = std::abs(d2_) * (-d0_) / std::sqrt(2.0);
  return NoiseMarginModel(1.0, -vhalf, s);
}

RetentionErrorModel fit_retention_model(const std::vector<BerPoint>& data) {
  // Probit transform: Phi^-1(p) = (Vhalf - V)/s is linear in V.
  // Weighted by failure count (binomial variance of the probit estimate
  // scales ~ 1/failures for small p).
  std::vector<double> xs, ys, ws;
  for (const auto& pt : data) {
    if (pt.total == 0 || pt.failures == 0 || pt.failures == pt.total) continue;
    xs.push_back(pt.vdd.value);
    ys.push_back(normal_quantile(pt.p_hat()));
    ws.push_back(static_cast<double>(pt.failures));
  }
  NTC_REQUIRE_MSG(xs.size() >= 2,
                  "need at least two sweep points with partial failures");
  // Weighted least squares on y = a + b x.
  double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sw += ws[i];
    swx += ws[i] * xs[i];
    swy += ws[i] * ys[i];
    swxx += ws[i] * xs[i] * xs[i];
    swxy += ws[i] * xs[i] * ys[i];
  }
  const double denom = sw * swxx - swx * swx;
  NTC_REQUIRE_MSG(std::abs(denom) > 1e-30, "degenerate sweep voltages");
  const double b = (sw * swxy - swx * swy) / denom;  // = -1/s
  const double a = (swy - b * swx) / sw;             // = Vhalf/s
  NTC_REQUIRE_MSG(b < 0.0, "BER must fall with VDD");
  const double s = -1.0 / b;
  const double vhalf = a * s;
  return RetentionErrorModel::from_noise_margin(NoiseMarginModel(1.0, -vhalf, s));
}

}  // namespace ntc::reliability
