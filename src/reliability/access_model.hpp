// Read/write access error model, paper Eq. (5):
//
//   p_bit,err(VDD) = A * (V0 - VDD)^k     for VDD < V0, else 0
//
// fitted to quasi-static access testing on the test chip.  The paper
// publishes the commercial-macro constants (A = 6, k = 6.14,
// V0 = 0.85 V) and the cell-based minimum access voltage V0 = 0.55 V;
// the cell-based A and k here are fitted on the virtual test chip and
// chosen to be consistent with the paper's Table 2 operating points.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "reliability/retention_model.hpp"  // BerPoint

namespace ntc::reliability {

class AccessErrorModel {
 public:
  AccessErrorModel(double a, double k, Volt v0);

  double a() const { return a_; }
  double k() const { return k_; }
  Volt v0() const { return Volt{v0_}; }

  /// Bit error probability per access at the given supply, clamped to
  /// [0, 1]; exactly 0 at or above V0.
  double p_bit_err(Volt vdd) const;

  /// Supply at which the access error probability equals `p` (p in
  /// (0, 1]); the inverse of p_bit_err on its support.
  Volt vdd_for_p(double p) const;

  /// Minimum access voltage of a single cell with failure quantile `u`
  /// in [0,1): the population of per-cell access V_min implied by
  /// treating Eq. (5) as the cell V_min CCDF.  Used by the virtual test
  /// chip to place hard access failures at specific cells.
  Volt cell_access_vmin(double u) const;

  /// Model shifted by an aging-induced drift of the access limit.
  AccessErrorModel aged(Volt drift) const;

 private:
  double a_, k_, v0_;
};

/// Published commercial-macro constants (paper Section IV).
AccessErrorModel commercial_40nm_access();

/// Cell-based array: V0 = 0.55 V from the paper; A and k fitted on the
/// virtual test chip (see fit notes in access_model.cpp).
AccessErrorModel cell_based_40nm_access();

/// 65 nm cell-based design of [13]: worst-case access at 0.45 V needs
/// quasi-static operation, modelled with a lower, shallower curve.
AccessErrorModel cell_based_65nm_access();

/// Fit Eq. (5) to access-sweep data: linear regression of log(p) on
/// log(V0 - V) with V0 refined by golden-section search (the fit is
/// linear given V0, so the outer search is one-dimensional).  Points
/// with zero failures are skipped.
AccessErrorModel fit_access_model(const std::vector<BerPoint>& data);

}  // namespace ntc::reliability
