#include "reliability/access_model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "common/statistics.hpp"

namespace ntc::reliability {

AccessErrorModel::AccessErrorModel(double a, double k, Volt v0)
    : a_(a), k_(k), v0_(v0.value) {
  NTC_REQUIRE(a > 0.0);
  NTC_REQUIRE(k > 0.0);
  NTC_REQUIRE(v0.value > 0.0);
}

double AccessErrorModel::p_bit_err(Volt vdd) const {
  NTC_REQUIRE(vdd.value >= 0.0);
  const double margin = v0_ - vdd.value;
  if (margin <= 0.0) return 0.0;
  return clamp(a_ * std::pow(margin, k_), 0.0, 1.0);
}

Volt AccessErrorModel::vdd_for_p(double p) const {
  NTC_REQUIRE(p > 0.0 && p <= 1.0);
  return Volt{v0_ - std::pow(p / a_, 1.0 / k_)};
}

Volt AccessErrorModel::cell_access_vmin(double u) const {
  NTC_REQUIRE(u >= 0.0 && u < 1.0);
  // CCDF of cell V_min: P(Vmin > V) = min(1, A (V0 - V)^k).
  // Inverse sampling: Vmin = V0 - ((1 - u)/A)^(1/k), clamped at >= 0.
  const double v = v0_ - std::pow((1.0 - u) / a_, 1.0 / k_);
  return Volt{std::max(v, 0.0)};
}

AccessErrorModel AccessErrorModel::aged(Volt drift) const {
  NTC_REQUIRE(drift.value >= 0.0);
  return AccessErrorModel(a_, k_, Volt{v0_ + drift.value});
}

AccessErrorModel commercial_40nm_access() {
  return AccessErrorModel(6.0, 6.14, Volt{0.85});
}

AccessErrorModel cell_based_40nm_access() {
  // V0 = 0.55 V as measured (paper Section IV).  A and k are the
  // virtual-test-chip fit; with these constants the FIT <= 1e-15 solver
  // lands on the paper's Table 2 ladder (0.55 / 0.44 / 0.33 V).
  return AccessErrorModel(3.38, 7.20, Volt{0.55});
}

AccessErrorModel cell_based_65nm_access() {
  return AccessErrorModel(2.0, 5.0, Volt{0.45});
}

AccessErrorModel fit_access_model(const std::vector<BerPoint>& data) {
  std::vector<double> xs, ps;
  double vmax_with_failures = 0.0;
  for (const auto& pt : data) {
    if (pt.total == 0 || pt.failures == 0) continue;
    xs.push_back(pt.vdd.value);
    ps.push_back(std::log(pt.p_hat()));
    vmax_with_failures = std::max(vmax_with_failures, pt.vdd.value);
  }
  NTC_REQUIRE_MSG(xs.size() >= 3, "need >= 3 sweep points with failures");

  // Given V0, log p = log A + k log(V0 - V) is linear; scan V0.
  auto cost_at = [&](double v0) {
    std::vector<double> lx;
    lx.reserve(xs.size());
    for (double v : xs) {
      const double margin = v0 - v;
      if (margin <= 1e-6) return 1e18;  // V0 must exceed every failing V
      lx.push_back(std::log(margin));
    }
    auto fit = linear_fit(lx, ps);
    double cost = 0.0;
    for (std::size_t i = 0; i < lx.size(); ++i) {
      const double r = ps[i] - (fit.intercept + fit.slope * lx[i]);
      cost += r * r;
    }
    return cost;
  };
  const double v0 = golden_section_min(cost_at, vmax_with_failures + 1e-4,
                                       vmax_with_failures + 0.5);
  std::vector<double> lx;
  for (double v : xs) lx.push_back(std::log(v0 - v));
  auto fit = linear_fit(lx, ps);
  NTC_REQUIRE_MSG(fit.slope > 0.0, "p must fall as VDD approaches V0");
  return AccessErrorModel(std::exp(fit.intercept), fit.slope, Volt{v0});
}

}  // namespace ntc::reliability
