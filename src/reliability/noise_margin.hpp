// Gaussian noise-margin model of bit-cell retention (paper Eq. 2/3).
//
//   NM = c0 * VDD + c1 + c2 * sigma_cell,   sigma_cell ~ N(0, 1)
//
// A cell loses its state when NM drops below zero, so each cell has a
// deterministic minimum retention voltage that is linear in its mismatch
// deviate; across the population the failure probability at a given VDD
// is the Gaussian CDF the paper exploits in Figure 4.  The invariant the
// paper highlights (Eq. 3) — dVDD/dsigma = c2/c0 is constant — falls
// out of the linear form.
#pragma once

#include "common/units.hpp"

namespace ntc::reliability {

class NoiseMarginModel {
 public:
  /// c0 [1] gain of NM with VDD, c1 [V] offset, c2 [V] mismatch scale.
  NoiseMarginModel(double c0, double c1, double c2);

  double c0() const { return c0_; }
  double c1() const { return c1_; }
  double c2() const { return c2_; }

  /// Noise margin of a cell with normalised mismatch deviate `sigma`.
  double noise_margin(Volt vdd, double sigma_cell) const;

  /// Minimum retention voltage of a cell with the given deviate: the
  /// VDD at which its noise margin crosses zero.
  Volt cell_retention_vmin(double sigma_cell) const;

  /// Population bit-failure probability at the given supply:
  /// P(NM < 0) = Phi(-(c0 V + c1)/c2).
  double p_bit_fail(Volt vdd) const;

  /// Supply at which the population failure probability equals `p`.
  Volt vdd_for_p_fail(double p) const;

  /// The paper's Eq. (3) constant: dVDD per unit of limiting sigma.
  double dvdd_dsigma() const { return c2_ / c0_; }

  /// Voltage at which half the population fails (NM median crosses 0).
  Volt half_fail_voltage() const { return Volt{-c1_ / c0_}; }

  /// Model shifted by an aging-induced voltage drift (raises V_min).
  NoiseMarginModel aged(Volt drift) const;

 private:
  double c0_, c1_, c2_;
};

/// Retention presets used throughout the library (40 nm LP anchors).
/// The commercial 6T macro keeps state down to ~0.40 V per instance but
/// shows wide cell-to-cell spread; the standard-cell-based array holds
/// to ~0.32 V per instance (Table 1 "Retention" row for the imec array),
/// and the 65 nm dual-Vt design of [13] reaches 0.25 V.
NoiseMarginModel commercial_40nm_retention();
NoiseMarginModel cell_based_40nm_retention();
NoiseMarginModel cell_based_65nm_retention();

}  // namespace ntc::reliability
