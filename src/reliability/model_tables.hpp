// Immutable reliability-model tables shared across platform instances.
//
// A voltage x scheme x seed campaign grid re-evaluates the same model
// curves thousands of times: every SramModule instance with the same
// Monte-Carlo seed owns an identical per-cell retention-V_min
// fingerprint (~10^5 Gaussian draws each), and every operating-point
// change re-evaluates the Eq. 5 access error curve at a supply the grid
// visits over and over.  Both are pure functions of (model, seed/vdd),
// so a campaign computes them once here and hands every platform a
// shared read-only view: a 10-voltage x 4-scheme x 50-seed grid then
// evaluates each curve once per distinct input instead of once per grid
// cell.
//
// Sharing is bit-exact by construction — the tables memoise the very
// values the per-instance code computed before, keyed by everything
// that determines them.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"

namespace ntc::reliability {

/// Per-cell retention-V_min fingerprint of one SRAM instance, stored
/// sorted by descending V_min: the failing set at supply V is exactly
/// the prefix with vmin > V (the population is fixed, the threshold
/// moves), so a stuck-cell count is a binary search and a stuck-state
/// rebuild touches only the failing prefix instead of every cell.
struct RetentionVminTable {
  /// Cell V_min, descending (ties in arbitrary order — a tie is either
  /// wholly failing or wholly retained, so the prefix is still exact).
  std::vector<double> vmin_desc;
  /// cell index (word * stored_bits + bit) of each vmin_desc entry.
  std::vector<std::uint32_t> cell_desc;
  double max_vmin = 0.0;  ///< vmin_desc.front() (0 for an empty table)

  /// Number of cells stuck below `vdd`: |{cells : vmin > vdd}|, with
  /// the exact comparison the unsorted per-cell scan used.
  std::size_t failing_count(Volt vdd) const;
};

/// Draw the fingerprint directly (the uncached path; the cache calls
/// this on a miss).  `sigma_seed` seeds the deviate stream — the seed
/// of the Rng the owning injector forks for its silicon fingerprint —
/// and the deviates pass through float exactly like the original
/// per-instance draw, so shared and private fingerprints are
/// bit-identical.
std::shared_ptr<const RetentionVminTable> make_retention_vmin_table(
    const NoiseMarginModel& retention, std::uint64_t sigma_seed,
    std::size_t cells);

/// Thread-safe memoisation of model evaluations, shared by every
/// platform of a campaign.  All returned values are immutable.
class ModelTableCache {
 public:
  /// The fingerprint for (retention model, sigma_seed, cells); computed
  /// once, shared by every caller with the same key.
  std::shared_ptr<const RetentionVminTable> retention_vmin(
      const NoiseMarginModel& retention, std::uint64_t sigma_seed,
      std::size_t cells);

  /// Eq. 5 access error probability, memoised per (model, supply).
  double p_access(const AccessErrorModel& access, Volt vdd);

  /// Entry counts, for ledgers and tests.
  std::size_t vmin_tables() const;
  std::size_t access_points() const;

 private:
  struct VminKey {
    std::uint64_t c0, c1, c2;  ///< bit patterns of the model constants
    std::uint64_t sigma_seed;
    std::uint64_t cells;
    bool operator==(const VminKey&) const = default;
  };
  struct AccessKey {
    std::uint64_t a, k, v0, vdd;  ///< bit patterns
    bool operator==(const AccessKey&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const VminKey& key) const;
    std::size_t operator()(const AccessKey& key) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<VminKey, std::shared_ptr<const RetentionVminTable>,
                     KeyHash>
      vmin_;
  std::unordered_map<AccessKey, double, KeyHash> access_;
};

}  // namespace ntc::reliability
