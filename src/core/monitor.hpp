// Canary-cell degradation monitor.
//
// Section IV: "the minimal voltage will change over lifetime of a
// product requiring a monitoring and control loop that adjusts run-time
// knobs such as the supply voltage level."  The monitor is a small
// replica array whose cells are deliberately weakened by a margin
// offset, so they start failing *before* the functional array does;
// sampling their error rate tells the controller how much slack the
// real memory has left at the current supply and age.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "reliability/access_model.hpp"
#include "tech/aging.hpp"

namespace ntc::core {

struct MonitorConfig {
  std::size_t canary_cells = 256;
  /// The canaries behave as if the supply were this much lower than the
  /// functional array's rail — the early-warning margin.
  Volt weakening{0.05};
  std::uint64_t seed = 0xCA11A12;
};

class CanaryMonitor {
 public:
  CanaryMonitor(reliability::AccessErrorModel access, tech::AgingModel aging,
                MonitorConfig config = {});

  /// One monitoring epoch: exercise every canary cell `trials_per_cell`
  /// times at the given supply and device age; returns observed errors.
  std::uint64_t sample_errors(Volt vdd, Second age,
                              std::size_t trials_per_cell = 16);

  /// Observed canary error rate in [0, 1] for the same epoch inputs.
  double sample_error_rate(Volt vdd, Second age,
                           std::size_t trials_per_cell = 16);

  /// The underlying (true) canary error probability — for tests and
  /// for the analytic lifetime study.
  double true_error_probability(Volt vdd, Second age) const;

  const MonitorConfig& config() const { return config_; }

 private:
  reliability::AccessErrorModel access_;
  tech::AgingModel aging_;
  MonitorConfig config_;
  Rng rng_;
};

}  // namespace ntc::core
