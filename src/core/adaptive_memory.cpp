#include "core/adaptive_memory.hpp"

#include "common/assert.hpp"
#include "energy/memory_calculator.hpp"

namespace ntc::core {

namespace {

reliability::AccessErrorModel access_model_for(const NtcMemoryConfig& config) {
  energy::MemoryCalculator calc(config.style,
                                energy::MemoryGeometry{config.bytes / 4, 32});
  return calc.access_model();
}

}  // namespace

AdaptiveNtcMemory::AdaptiveNtcMemory(AdaptiveConfig config)
    : config_(config),
      memory_(config.memory),
      monitor_(access_model_for(config.memory), config.aging, config.monitor),
      controller_(config.memory.vdd, config.controller) {
  NTC_REQUIRE(config_.canary_trials_per_tick > 0);
}

sim::AccessStatus AdaptiveNtcMemory::read_word(std::uint32_t word_index,
                                               std::uint32_t& data) {
  return memory_.read_word(word_index, data);
}

sim::AccessStatus AdaptiveNtcMemory::write_word(std::uint32_t word_index,
                                                std::uint32_t data) {
  return memory_.write_word(word_index, data);
}

Volt AdaptiveNtcMemory::tick(Second age) {
  NTC_REQUIRE(age.value >= 0.0);
  ++ticks_;
  last_canary_rate_ = monitor_.sample_error_rate(
      controller_.voltage(), age, config_.canary_trials_per_tick);
  const Volt rail = controller_.update(last_canary_rate_);
  if (rail.value != memory_.vdd().value) {
    memory_.set_vdd(rail);
    // A changed rail also changes how close the aged cells are to their
    // limits; a scrub flushes anything the transition disturbed.
    memory_.scrub();
  }
  return rail;
}

}  // namespace ntc::core
