#include "core/adaptive_memory.hpp"

#include "common/assert.hpp"
#include "energy/memory_calculator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace {

inline std::uint64_t to_mv(ntc::Volt v) {
  return static_cast<std::uint64_t>(v.value * 1000.0 + 0.5);
}

}  // namespace

namespace ntc::core {

namespace {

reliability::AccessErrorModel access_model_for(const NtcMemoryConfig& config) {
  energy::MemoryCalculator calc(config.style,
                                energy::MemoryGeometry{config.bytes / 4, 32});
  return calc.access_model();
}

}  // namespace

AdaptiveNtcMemory::AdaptiveNtcMemory(AdaptiveConfig config)
    : config_(config),
      memory_(config.memory),
      monitor_(access_model_for(config.memory), config.aging, config.monitor),
      controller_(config.memory.vdd, config.controller) {
  NTC_REQUIRE(config_.canary_trials_per_tick > 0);
}

sim::AccessStatus AdaptiveNtcMemory::read_word(std::uint32_t word_index,
                                               std::uint32_t& data) {
  const sim::AccessStatus status = memory_.read_word(word_index, data);
  if (status != sim::AccessStatus::DetectedUncorrectable ||
      !config_.recovery.enabled)
    return status;
  return recover_read(word_index, data);
}

sim::AccessStatus AdaptiveNtcMemory::recover_read(std::uint32_t word_index,
                                                  std::uint32_t& data) {
  ++recovery_stats_.uncorrectable_reads;
  NTC_TELEM_EVENT(telemetry::EventKind::Recovery, "recovery_enter",
                  telemetry::RecoveryStage::Enter, 0);
  NTC_TELEM_COUNT("ntc_recovery_uncorrectable_reads_total", 1);

  // 1. Bounded re-read: transient read flips decorrelate between
  // attempts, so a marginal word often decodes on the second try.
  for (std::uint32_t r = 0; r < config_.recovery.max_read_retries; ++r) {
    ++recovery_stats_.read_retries;
    if (memory_.read_word(word_index, data) !=
        sim::AccessStatus::DetectedUncorrectable) {
      ++recovery_stats_.retry_recoveries;
      NTC_TELEM_EVENT(telemetry::EventKind::Recovery, "recovery_retry",
                      telemetry::RecoveryStage::Retry, 1);
      return sim::AccessStatus::CorrectedError;
    }
  }

  // 2. Scrub-and-retry: rewrite the array through the codec so
  // accumulated correctable upsets stop stacking on top of the failing
  // word's own errors.
  for (std::uint32_t s = 0; s < config_.recovery.max_scrub_retries; ++s) {
    ++recovery_stats_.scrub_retries;
    memory_.scrub();
    if (memory_.read_word(word_index, data) !=
        sim::AccessStatus::DetectedUncorrectable) {
      ++recovery_stats_.scrub_recoveries;
      NTC_TELEM_EVENT(telemetry::EventKind::Recovery, "recovery_scrub",
                      telemetry::RecoveryStage::ScrubRetry, 1);
      return sim::AccessStatus::CorrectedError;
    }
  }

  // 3. Voltage-bump escalation: step the (single) rail up the regulator
  // ladder — marginal stuck cells heal, access-error rates collapse —
  // scrub, and retry.  The canary loop walks the rail back down later.
  for (std::uint32_t b = 0; b < config_.recovery.max_voltage_bumps; ++b) {
    const Volt old_rail = memory_.vdd();
    const Volt rail = controller_.escalate();
    if (rail.value <= memory_.vdd().value) break;  // ladder capped
    ++recovery_stats_.voltage_bumps;
    NTC_TELEM_EVENT(telemetry::EventKind::VoltageChange, "recovery_bump",
                    to_mv(old_rail), to_mv(rail));
    NTC_TELEM_COUNT("ntc_recovery_voltage_bumps_total", 1);
    memory_.set_vdd(rail);
    memory_.scrub();
    if (memory_.read_word(word_index, data) !=
        sim::AccessStatus::DetectedUncorrectable) {
      ++recovery_stats_.bump_recoveries;
      NTC_TELEM_EVENT(telemetry::EventKind::Recovery, "recovery_bump",
                      telemetry::RecoveryStage::VoltageBump, 1);
      return sim::AccessStatus::CorrectedError;
    }
  }

  ++recovery_stats_.unrecovered_reads;
  NTC_TELEM_EVENT(telemetry::EventKind::Recovery, "recovery_failed",
                  telemetry::RecoveryStage::Failed, 0);
  return sim::AccessStatus::DetectedUncorrectable;
}

sim::AccessStatus AdaptiveNtcMemory::write_word(std::uint32_t word_index,
                                                std::uint32_t data) {
  return memory_.write_word(word_index, data);
}

sim::AccessStatus AdaptiveNtcMemory::read_burst(
    std::uint32_t word_index, std::span<std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::read_burst(word_index, data);
  if (!config_.recovery.enabled) return memory_.read_burst(word_index, data);
  sim::AccessStatus status = sim::AccessStatus::Ok;
  const std::uint32_t n = static_cast<std::uint32_t>(data.size());
  std::uint32_t off = 0;
  while (off < n) {
    std::uint32_t bad = 0;
    status = sim::worse_status(
        status, memory_.read_burst_tracked(word_index + off, data.subspan(off),
                                           bad));
    if (bad == n - off) break;
    status = sim::worse_status(
        status, recover_read(word_index + off + bad, data[off + bad]));
    off += bad + 1;
  }
  return status;
}

sim::AccessStatus AdaptiveNtcMemory::write_burst(
    std::uint32_t word_index, std::span<const std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::write_burst(word_index, data);
  return memory_.write_burst(word_index, data);
}

Volt AdaptiveNtcMemory::tick(Second age) {
  NTC_REQUIRE(age.value >= 0.0);
  ++ticks_;
  last_canary_rate_ = monitor_.sample_error_rate(
      controller_.voltage(), age, config_.canary_trials_per_tick);
  const Volt rail = controller_.update(last_canary_rate_);
  if (rail.value != memory_.vdd().value) {
    NTC_TELEM_EVENT(telemetry::EventKind::VoltageChange, "controller_tick",
                    to_mv(memory_.vdd()), to_mv(rail));
    NTC_TELEM_GAUGE("ntc_rail_millivolts", rail.value * 1000.0);
    memory_.set_vdd(rail);
    // A changed rail also changes how close the aged cells are to their
    // limits; a scrub flushes anything the transition disturbed.
    memory_.scrub();
  }
  return rail;
}

}  // namespace ntc::core
