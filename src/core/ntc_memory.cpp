#include "core/ntc_memory.hpp"

#include "common/assert.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"

namespace ntc::core {

namespace {

std::shared_ptr<const ecc::BlockCode> code_for(mitigation::SchemeKind kind) {
  switch (kind) {
    case mitigation::SchemeKind::NoMitigation:
      return nullptr;
    case mitigation::SchemeKind::Secded:
      return std::make_shared<ecc::HammingSecded>(32);
    case mitigation::SchemeKind::Ocean:
    case mitigation::SchemeKind::Custom:
      return std::make_shared<ecc::BchCode>(ecc::ocean_buffer_code());
  }
  return nullptr;
}

mitigation::MitigationScheme scheme_for(mitigation::SchemeKind kind) {
  switch (kind) {
    case mitigation::SchemeKind::Secded:
      return mitigation::secded_scheme();
    case mitigation::SchemeKind::Ocean:
    case mitigation::SchemeKind::Custom:
      return mitigation::ocean_scheme();
    case mitigation::SchemeKind::NoMitigation:
      break;
  }
  return mitigation::no_mitigation();
}

}  // namespace

NtcMemory::NtcMemory(NtcMemoryConfig config)
    : config_(config),
      scheme_(scheme_for(config.scheme)),
      calculator_(config.style, energy::MemoryGeometry{config.bytes / 4, 32}) {
  NTC_REQUIRE(config.bytes >= 4 && config.bytes % 4 == 0);
  std::shared_ptr<const ecc::BlockCode> code = code_for(config_.scheme);
  const std::uint32_t stored =
      code ? static_cast<std::uint32_t>(code->code_bits()) : 32u;
  auto array = std::make_unique<sim::SramModule>(
      "ntcmem", config_.bytes / 4, stored, calculator_.access_model(),
      calculator_.retention_model(), config_.vdd, Rng(config_.seed),
      config_.inject_faults);
  inner_ = std::make_unique<sim::EccMemory>(std::move(array), std::move(code));
}

std::uint32_t NtcMemory::word_count() const { return inner_->word_count(); }

sim::AccessStatus NtcMemory::read_word(std::uint32_t word_index,
                                       std::uint32_t& data) {
  maybe_scrub();
  return inner_->read_word(word_index, data);
}

sim::AccessStatus NtcMemory::write_word(std::uint32_t word_index,
                                        std::uint32_t data) {
  maybe_scrub();
  return inner_->write_word(word_index, data);
}

sim::AccessStatus NtcMemory::read_burst(std::uint32_t word_index,
                                        std::span<std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::read_burst(word_index, data);
  sim::AccessStatus status = sim::AccessStatus::Ok;
  const std::uint64_t interval = config_.scrub_interval_accesses;
  const std::uint32_t n = static_cast<std::uint32_t>(data.size());
  std::uint32_t off = 0;
  while (off < n) {
    // maybe_scrub() fires on the access that takes the counter to the
    // interval; `until` accesses from now.  When that lands inside the
    // burst, run the scrub-free prefix, scrub, then the trigger word
    // (which, as per the per-word path, leaves the counter at zero).
    const std::uint64_t until = interval - accesses_since_scrub_;
    if (interval != 0 && until <= n - off) {
      const std::uint32_t plain = static_cast<std::uint32_t>(until - 1);
      if (plain != 0)
        status = sim::worse_status(
            status, inner_->read_burst(word_index + off,
                                       data.subspan(off, plain)));
      accesses_since_scrub_ = 0;
      inner_->scrub();
      ++scrubs_;
      status = sim::worse_status(
          status, inner_->read_burst(word_index + off + plain,
                                     data.subspan(off + plain, 1)));
      off += plain + 1;
    } else {
      const std::uint32_t m = n - off;
      status = sim::worse_status(
          status, inner_->read_burst(word_index + off, data.subspan(off, m)));
      accesses_since_scrub_ += m;
      off += m;
    }
  }
  return status;
}

sim::AccessStatus NtcMemory::write_burst(std::uint32_t word_index,
                                         std::span<const std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::write_burst(word_index, data);
  sim::AccessStatus status = sim::AccessStatus::Ok;
  const std::uint64_t interval = config_.scrub_interval_accesses;
  const std::uint32_t n = static_cast<std::uint32_t>(data.size());
  std::uint32_t off = 0;
  while (off < n) {
    const std::uint64_t until = interval - accesses_since_scrub_;
    if (interval != 0 && until <= n - off) {
      const std::uint32_t plain = static_cast<std::uint32_t>(until - 1);
      if (plain != 0)
        status = sim::worse_status(
            status, inner_->write_burst(word_index + off,
                                        data.subspan(off, plain)));
      accesses_since_scrub_ = 0;
      inner_->scrub();
      ++scrubs_;
      status = sim::worse_status(
          status, inner_->write_burst(word_index + off + plain,
                                      data.subspan(off + plain, 1)));
      off += plain + 1;
    } else {
      const std::uint32_t m = n - off;
      status = sim::worse_status(
          status, inner_->write_burst(word_index + off, data.subspan(off, m)));
      accesses_since_scrub_ += m;
      off += m;
    }
  }
  return status;
}

sim::AccessStatus NtcMemory::read_burst_tracked(std::uint32_t word_index,
                                                std::span<std::uint32_t> data,
                                                std::uint32_t& first_bad) {
  if (!sim::burst_native_enabled())
    return MemoryPort::read_burst_tracked(word_index, data, first_bad);
  sim::AccessStatus status = sim::AccessStatus::Ok;
  const std::uint64_t interval = config_.scrub_interval_accesses;
  const std::uint32_t n = static_cast<std::uint32_t>(data.size());
  std::uint32_t off = 0;
  std::uint32_t bad = 0;
  while (off < n) {
    const std::uint64_t until = interval - accesses_since_scrub_;
    if (interval != 0 && until <= n - off) {
      const std::uint32_t plain = static_cast<std::uint32_t>(until - 1);
      if (plain != 0) {
        status = sim::worse_status(
            status, inner_->read_burst_tracked(word_index + off,
                                               data.subspan(off, plain), bad));
        if (bad < plain) {
          // Words [0, bad] consumed an access each; the counter stays
          // short of the interval (bad + 1 <= plain < until).
          accesses_since_scrub_ += bad + 1;
          first_bad = off + bad;
          return status;
        }
      }
      accesses_since_scrub_ = 0;
      inner_->scrub();
      ++scrubs_;
      status = sim::worse_status(
          status, inner_->read_burst_tracked(word_index + off + plain,
                                             data.subspan(off + plain, 1),
                                             bad));
      if (bad < 1) {
        first_bad = off + plain;
        return status;
      }
      off += plain + 1;
    } else {
      const std::uint32_t m = n - off;
      status = sim::worse_status(
          status, inner_->read_burst_tracked(word_index + off,
                                             data.subspan(off, m), bad));
      if (bad < m) {
        accesses_since_scrub_ += bad + 1;
        first_bad = off + bad;
        return status;
      }
      accesses_since_scrub_ += m;
      off += m;
    }
  }
  first_bad = n;
  return status;
}

void NtcMemory::maybe_scrub() {
  ++accesses_since_scrub_;
  if (config_.scrub_interval_accesses == 0) return;
  if (accesses_since_scrub_ >= config_.scrub_interval_accesses) {
    accesses_since_scrub_ = 0;
    inner_->scrub();
    ++scrubs_;
  }
}

std::uint64_t NtcMemory::scrub() {
  ++scrubs_;
  accesses_since_scrub_ = 0;
  return inner_->scrub();
}

void NtcMemory::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  config_.vdd = vdd;
  inner_->array().set_vdd(vdd);
}

energy::MemoryFigures NtcMemory::figures() const {
  return calculator_.at(config_.vdd);
}

}  // namespace ntc::core
