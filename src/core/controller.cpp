#include "core/controller.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntc::core {

VoltageController::VoltageController(Volt initial, ControllerConfig config)
    : config_(config), vdd_(initial) {
  NTC_REQUIRE(config.step.value > 0.0);
  NTC_REQUIRE(config.v_min.value < config.v_max.value);
  NTC_REQUIRE(config.rate_low < config.rate_high);
  vdd_ = Volt{std::clamp(initial.value, config.v_min.value, config.v_max.value)};
}

Volt VoltageController::escalate() {
  vdd_ = Volt{std::min(vdd_.value + config_.step.value, config_.v_max.value)};
  ++up_steps_;
  ++escalations_;
  quiet_epochs_ = 0;
  return vdd_;
}

Volt VoltageController::update(double canary_error_rate) {
  NTC_REQUIRE(canary_error_rate >= 0.0 && canary_error_rate <= 1.0);
  if (canary_error_rate > config_.rate_high) {
    // Degradation visible: step up immediately (safety direction).
    vdd_ = Volt{std::min(vdd_.value + config_.step.value, config_.v_max.value)};
    ++up_steps_;
    quiet_epochs_ = 0;
  } else if (canary_error_rate < config_.rate_low) {
    // Excess margin: step down only after a calm dwell period.
    if (++quiet_epochs_ >= config_.down_dwell) {
      vdd_ = Volt{std::max(vdd_.value - config_.step.value, config_.v_min.value)};
      ++down_steps_;
      quiet_epochs_ = 0;
    }
  } else {
    quiet_epochs_ = 0;  // in band: hold
  }
  return vdd_;
}

}  // namespace ntc::core
