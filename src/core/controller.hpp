// Closed-loop supply-voltage controller.
//
// Keeps the canary error rate inside a target band by stepping the
// (single) supply rail up or down on the regulator's 10 mV ladder: the
// run-time knob of the paper's monitoring/control/mitigation scheme.
// Because the canaries fail ~50 mV early, the functional array keeps a
// calibrated guard band at all times, while the rail tracks process,
// temperature and aging instead of carrying a worst-case lifetime
// margin.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace ntc::core {

struct ControllerConfig {
  Volt step{0.01};          ///< regulator ladder pitch
  Volt v_min{0.25};
  Volt v_max{1.10};
  /// Canary error-rate band: above `rate_high` the rail steps up,
  /// below `rate_low` it steps down, inside it holds.
  double rate_high = 1e-3;
  double rate_low = 1e-5;
  /// Consecutive in-band epochs required before a down-step (prevents
  /// hunting on noisy canary samples).
  unsigned down_dwell = 3;
};

class VoltageController {
 public:
  VoltageController(Volt initial, ControllerConfig config = {});

  /// Feed one monitoring epoch; returns the (possibly updated) rail.
  Volt update(double canary_error_rate);

  /// Immediate safety escalation outside the canary loop: an
  /// uncorrectable access was met, step the rail up one notch right now
  /// (the canary loop will walk it back down once the danger passes).
  /// Returns the (possibly clamped) rail.
  Volt escalate();

  Volt voltage() const { return vdd_; }
  std::uint64_t up_steps() const { return up_steps_; }
  std::uint64_t down_steps() const { return down_steps_; }
  std::uint64_t escalations() const { return escalations_; }

 private:
  ControllerConfig config_;
  Volt vdd_;
  unsigned quiet_epochs_ = 0;
  std::uint64_t up_steps_ = 0;
  std::uint64_t down_steps_ = 0;
  std::uint64_t escalations_ = 0;
};

}  // namespace ntc::core
