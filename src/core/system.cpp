#include "core/system.hpp"

#include "common/assert.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"
#include "tech/node.hpp"

namespace ntc::core {

namespace {

mitigation::MinVoltageSolver make_solver(const SystemRequirements& req) {
  energy::MemoryCalculator calc(req.memory_style, energy::reference_1k_x_32());
  return mitigation::MinVoltageSolver(calc.access_model(),
                                      calc.retention_model(),
                                      tech::platform_logic_timing_40nm());
}

}  // namespace

NtcSystem::NtcSystem(SystemRequirements requirements)
    : requirements_(requirements),
      solver_(make_solver(requirements)),
      core_(energy::arm9_class_core_40nm()) {
  NTC_REQUIRE(requirements.clock.value > 0.0);
}

sim::PlatformEnergyReport NtcSystem::estimate_power(
    const mitigation::MitigationScheme& scheme, Volt vdd) const {
  const SystemRequirements& req = requirements_;
  const Hertz f = req.clock;
  const auto node = tech::node_40nm_lp();

  const energy::MemoryCalculator imem_calc(
      req.memory_style, energy::MemoryGeometry{req.imem_bytes / 4, 32});
  const energy::MemoryCalculator spm_calc(
      req.memory_style, energy::MemoryGeometry{req.spm_bytes / 4, 32});
  const energy::MemoryCalculator pm_calc(
      req.memory_style, energy::MemoryGeometry{req.pm_bytes / 4, 32});
  const energy::MemoryFigures imem = imem_calc.at(vdd);
  const energy::MemoryFigures spm = spm_calc.at(vdd);
  const energy::MemoryFigures pm = pm_calc.at(vdd);

  const bool ocean = scheme.kind == mitigation::SchemeKind::Ocean;
  const bool secded = scheme.kind == mitigation::SchemeKind::Secded;

  sim::PlatformEnergyReport report;

  // Protocol overhead stretches the cycle count under OCEAN (CRC + DMA
  // run on the core).
  const double cycle_stretch =
      ocean ? 1.0 + req.ocean_checkpoint_fraction * req.spm_accesses_per_cycle
            : 1.0;
  const double cycles_per_s = f.value * cycle_stretch;
  report.core = Watt{core_.dynamic_energy_per_cycle(vdd).value * cycles_per_s} +
                core_.leakage(vdd);

  // Instruction memory: SECDED codewords under ECC and OCEAN.
  const double imem_width = (secded || ocean) ? 39.0 / 32.0 : 1.0;
  const double fetches_per_s = req.fetches_per_cycle * cycles_per_s;
  report.imem =
      Watt{imem.read_energy.value * imem_width * fetches_per_s} + imem.leakage;

  // Scratchpad: SECDED widening under ECC; raw + checkpoint reads under
  // OCEAN.
  const double spm_width = secded ? 39.0 / 32.0 : 1.0;
  const double spm_accesses_per_s =
      req.spm_accesses_per_cycle * f.value *
      (ocean ? 1.0 + req.ocean_checkpoint_fraction : 1.0);
  report.spm =
      Watt{spm.read_energy.value * spm_width * spm_accesses_per_s} + spm.leakage;

  // Protected memory: OCEAN only; BCH codewords are 56/32 wide.
  if (ocean) {
    const double pm_accesses_per_s = req.spm_accesses_per_cycle * f.value *
                                     req.ocean_checkpoint_fraction;
    report.pm =
        Watt{pm.write_energy.value * (56.0 / 32.0) * pm_accesses_per_s} +
        pm.leakage;
  }

  // Codec hardware.
  if (secded || ocean) {
    const ecc::CodecOverhead secded_oh =
        ecc::estimate_codec_overhead(ecc::HammingSecded(32), node);
    double codec_j_per_s =
        secded_oh.decode_energy(vdd).value * fetches_per_s;  // IM fetches
    if (secded)
      codec_j_per_s += secded_oh.decode_energy(vdd).value * spm_accesses_per_s;
    if (ocean) {
      const ecc::CodecOverhead bch_oh =
          ecc::estimate_codec_overhead(ecc::ocean_buffer_code(), node);
      codec_j_per_s += bch_oh.encode_energy(vdd).value *
                       (req.spm_accesses_per_cycle * f.value *
                        req.ocean_checkpoint_fraction);
    }
    const energy::LogicModel codec_logic =
        ocean ? energy::ocean_hw_logic_40nm()
              : energy::secded_codec_logic_40nm();
    report.codec = Watt{codec_j_per_s} + codec_logic.leakage(vdd);
  }
  return report;
}

SavingsReport NtcSystem::analyze() const {
  SavingsReport report;
  mitigation::SolverConstraints constraints;
  constraints.fit_per_transaction = requirements_.fit_per_transaction;
  constraints.min_frequency = requirements_.clock;

  for (const mitigation::MitigationScheme& scheme :
       {mitigation::no_mitigation(), mitigation::secded_scheme(),
        mitigation::ocean_scheme()}) {
    SchemeEstimate estimate;
    estimate.scheme = scheme;
    estimate.operating_point = solver_.solve(scheme, constraints);
    estimate.power = estimate_power(scheme, estimate.operating_point.voltage);
    report.schemes.push_back(std::move(estimate));
  }

  const double p_nomit = report.schemes[0].power.total().value;
  const double p_ecc = report.schemes[1].power.total().value;
  const double p_ocean = report.schemes[2].power.total().value;
  report.ecc_saving_vs_no_mitigation = 1.0 - p_ecc / p_nomit;
  report.ocean_saving_vs_no_mitigation = 1.0 - p_ocean / p_nomit;
  report.ocean_saving_vs_ecc = 1.0 - p_ocean / p_ecc;
  report.energy_ratio_no_mitigation_over_ocean = p_nomit / p_ocean;
  report.energy_ratio_ecc_over_ocean = p_ecc / p_ocean;

  // Headline: dynamic power vs the error-free voltage limit with a PVT
  // margin of ~50 mV (0.55 V + margin ~= 0.6 V for the cell-based
  // array), against the OCEAN supply.
  const Volt error_free_limit =
      report.schemes[0].operating_point.voltage + Volt{0.05};
  const Volt ocean_v = report.schemes[2].operating_point.voltage;
  report.headline_dynamic_power_ratio =
      mitigation::dynamic_power_ratio(error_free_limit, ocean_v);
  return report;
}

}  // namespace ntc::core
