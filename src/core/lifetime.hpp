// Lifetime study: closed-loop voltage control vs a static worst-case
// guard band.
//
// The aging drift raises the memory's minimum voltage over the years.
// A design without monitoring must provision the end-of-life voltage
// from day one; the canary/controller loop instead tracks the actual
// degradation and spends the margin only when it is really needed —
// the energy gap between the two is what this simulation quantifies
// (and what bench/ablation_monitor reports).
#pragma once

#include <vector>

#include "core/controller.hpp"
#include "core/monitor.hpp"
#include "reliability/access_model.hpp"
#include "tech/aging.hpp"

namespace ntc::core {

struct LifetimeConfig {
  reliability::AccessErrorModel access = reliability::cell_based_40nm_access();
  tech::AgingModel aging = tech::AgingModel();
  MonitorConfig monitor = MonitorConfig{};
  ControllerConfig controller = ControllerConfig{};
  Volt initial_vdd{0.44};
  Second lifetime = Second{10.0 * 365.25 * 24 * 3600};
  std::size_t epochs = 200;  ///< monitoring epochs across the lifetime
};

struct LifetimePoint {
  Second age{0.0};
  Volt adaptive_vdd{0.0};   ///< controller-tracked rail
  Volt static_vdd{0.0};     ///< worst-case end-of-life guard band
  double canary_error_rate = 0.0;
};

struct LifetimeResult {
  std::vector<LifetimePoint> timeline;
  /// Mean dynamic-power saving of adaptive over static, averaged over
  /// the lifetime (1 - mean(V_adap^2)/V_static^2).
  double mean_dynamic_power_saving = 0.0;
  Volt final_adaptive_vdd{0.0};
  Volt static_guardband_vdd{0.0};
};

/// Run the closed-loop lifetime simulation.  Epochs are spaced on a
/// square-root time grid so the fast early aging is well resolved.
LifetimeResult simulate_lifetime(const LifetimeConfig& config);

}  // namespace ntc::core
