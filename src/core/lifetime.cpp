#include "core/lifetime.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::core {

LifetimeResult simulate_lifetime(const LifetimeConfig& config) {
  NTC_REQUIRE(config.epochs >= 2);
  NTC_REQUIRE(config.lifetime.value > 0.0);

  CanaryMonitor monitor(config.access, config.aging, config.monitor);
  VoltageController controller(config.initial_vdd, config.controller);

  // Static design point: provision the end-of-life drift on top of the
  // initial requirement (what a design without monitoring must do).
  const Volt eol_drift = config.aging.drift(config.lifetime);
  const Volt static_vdd = config.initial_vdd + eol_drift;

  LifetimeResult result;
  result.static_guardband_vdd = static_vdd;
  double sum_v2 = 0.0;

  for (std::size_t e = 0; e < config.epochs; ++e) {
    // Square-root spacing: dense early, sparse late.
    const double frac = static_cast<double>(e) / (config.epochs - 1);
    const Second age{config.lifetime.value * frac * frac};

    const double rate = monitor.sample_error_rate(controller.voltage(), age);
    const Volt vdd = controller.update(rate);

    LifetimePoint point;
    point.age = age;
    point.adaptive_vdd = vdd;
    point.static_vdd = static_vdd;
    point.canary_error_rate = rate;
    result.timeline.push_back(point);
    sum_v2 += vdd.value * vdd.value;
  }

  const double mean_v2 = sum_v2 / static_cast<double>(config.epochs);
  result.mean_dynamic_power_saving =
      1.0 - mean_v2 / (static_vdd.value * static_vdd.value);
  result.final_adaptive_vdd = result.timeline.back().adaptive_vdd;
  return result;
}

}  // namespace ntc::core
