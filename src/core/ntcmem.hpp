// Umbrella header: the ntcmem public API in one include.
//
//   #include "core/ntcmem.hpp"
//
// pulls in the flagship wrapper (NtcMemory), the monitor/controller
// loop, the system-level configurator (NtcSystem), and the underlying
// model layers a downstream user typically touches.
#pragma once

#include "core/adaptive_memory.hpp"   // closed-loop monitored memory
#include "core/controller.hpp"        // run-time voltage control loop
#include "core/lifetime.hpp"          // aging vs closed-loop study
#include "core/monitor.hpp"           // canary degradation monitor
#include "core/ntc_memory.hpp"        // single-supply memory wrapper
#include "core/system.hpp"            // platform configurator / savings
#include "ecc/bch.hpp"                // OCEAN protected-buffer code
#include "ecc/hamming.hpp"            // SECDED(39,32)
#include "energy/memory_calculator.hpp"
#include "mitigation/comparison.hpp"  // Table 2 style scheme comparison
#include "ocean/optimizer.hpp"        // OCEAN EPA optimiser
#include "ocean/runtime.hpp"          // checkpoint/rollback runtime
#include "reliability/test_chip.hpp"  // virtual silicon + fits
#include "sim/platform.hpp"           // the Figure 6 SoC
#include "workloads/fft.hpp"          // the 1K-point evaluation workload
