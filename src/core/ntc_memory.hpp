// NtcMemory — the library's flagship wrapper: a memory instance that
// runs at the digital domain's near-threshold supply.
//
// Composes the pieces the paper stacks up: a fault-injecting array
// model of the chosen implementation style, an ECC wrapper at/above RTL
// ("adding a digital wrapper around existing commercially available
// memories"), periodic scrubbing so errors cannot accumulate, and
// statistics for the monitor/controller loop.
#pragma once

#include <memory>
#include <optional>

#include "energy/memory_calculator.hpp"
#include "mitigation/scheme.hpp"
#include "sim/ecc_memory.hpp"

namespace ntc::core {

struct NtcMemoryConfig {
  energy::MemoryStyle style = energy::MemoryStyle::CellBasedImec40;
  std::uint32_t bytes = 8 * 1024;
  mitigation::SchemeKind scheme = mitigation::SchemeKind::Secded;
  Volt vdd{0.44};
  /// Scrub after this many accesses (0 = never). Scrubbing rewrites
  /// every word through the codec, flushing correctable upsets.
  std::uint64_t scrub_interval_accesses = 1 << 16;
  std::uint64_t seed = 1;
  bool inject_faults = true;
};

class NtcMemory final : public sim::MemoryPort {
 public:
  explicit NtcMemory(NtcMemoryConfig config);

  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override;
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override;
  std::uint32_t word_count() const override;

  /// Native bursts.  Each burst word counts as one access toward the
  /// scrub interval, and a scrub falling inside the burst splits it at
  /// exactly the word the per-word loop would have scrubbed before —
  /// bit-identical to the word-at-a-time fallback.
  sim::AccessStatus read_burst(std::uint32_t word_index,
                               std::span<std::uint32_t> data) override;
  sim::AccessStatus write_burst(std::uint32_t word_index,
                                std::span<const std::uint32_t> data) override;
  sim::AccessStatus read_burst_tracked(std::uint32_t word_index,
                                       std::span<std::uint32_t> data,
                                       std::uint32_t& first_bad) override;

  /// Run-time voltage knob (the controller drives this).
  void set_vdd(Volt vdd);
  Volt vdd() const { return config_.vdd; }

  /// Figures of merit at the current operating point.
  energy::MemoryFigures figures() const;

  /// Correction statistics since construction/reset.
  const sim::EccMemoryStats& ecc_stats() const { return inner_->stats(); }
  const sim::SramStats& array_stats() const { return inner_->array().stats(); }

  /// Mutable access to the ECC wrapper and its array — the seam for
  /// attaching scripted fault injectors (faultsim) in campaigns/tests.
  sim::EccMemory& ecc() { return *inner_; }

  /// Force a scrub pass now; returns uncorrectable words encountered.
  std::uint64_t scrub();
  std::uint64_t scrubs_performed() const { return scrubs_; }

  const NtcMemoryConfig& config() const { return config_; }
  const mitigation::MitigationScheme& scheme() const { return scheme_; }

 private:
  void maybe_scrub();

  NtcMemoryConfig config_;
  mitigation::MitigationScheme scheme_;
  energy::MemoryCalculator calculator_;
  std::unique_ptr<sim::EccMemory> inner_;
  std::uint64_t accesses_since_scrub_ = 0;
  std::uint64_t scrubs_ = 0;
};

}  // namespace ntc::core
