#include "core/monitor.hpp"

#include "common/assert.hpp"

namespace ntc::core {

CanaryMonitor::CanaryMonitor(reliability::AccessErrorModel access,
                             tech::AgingModel aging, MonitorConfig config)
    : access_(std::move(access)),
      aging_(aging),
      config_(config),
      rng_(config.seed) {
  NTC_REQUIRE(config_.canary_cells > 0);
  NTC_REQUIRE(config_.weakening.value >= 0.0);
}

double CanaryMonitor::true_error_probability(Volt vdd, Second age) const {
  // Aging raises the access limit; the weakening margin makes canaries
  // see an effectively lower rail.
  const reliability::AccessErrorModel aged = access_.aged(aging_.drift(age));
  const double v_eff = vdd.value - config_.weakening.value;
  if (v_eff <= 0.0) return 1.0;
  return aged.p_bit_err(Volt{v_eff});
}

std::uint64_t CanaryMonitor::sample_errors(Volt vdd, Second age,
                                           std::size_t trials_per_cell) {
  NTC_REQUIRE(trials_per_cell > 0);
  const double p = true_error_probability(vdd, age);
  std::uint64_t errors = 0;
  const std::uint64_t trials =
      static_cast<std::uint64_t>(config_.canary_cells) * trials_per_cell;
  // Poisson approximation is exact enough for p*trials << trials and
  // keeps epochs cheap; fall back to Bernoulli when p is large.
  if (p < 0.05) {
    errors = rng_.poisson(p * static_cast<double>(trials));
    if (errors > trials) errors = trials;
  } else {
    for (std::uint64_t i = 0; i < trials; ++i) errors += rng_.bernoulli(p);
  }
  return errors;
}

double CanaryMonitor::sample_error_rate(Volt vdd, Second age,
                                        std::size_t trials_per_cell) {
  const double trials =
      static_cast<double>(config_.canary_cells) * trials_per_cell;
  return static_cast<double>(sample_errors(vdd, age, trials_per_cell)) / trials;
}

}  // namespace ntc::core
