// AdaptiveNtcMemory — the complete single-supply story in one object:
// a mitigated memory, its canary monitor, and the voltage controller,
// closed into the run-time loop the paper's abstract promises
// ("advanced monitoring, control and run-time error mitigation schemes
// enable the operation of these memories at the same optimal near-Vt
// voltage level as the digital logic").
//
// The host calls tick() at its monitoring cadence (e.g. once per
// second of device operation); the loop samples the canaries at the
// device's current age, steps the rail, and propagates the new supply
// into the memory's fault models.
#pragma once

#include "core/controller.hpp"
#include "core/monitor.hpp"
#include "core/ntc_memory.hpp"
#include "tech/aging.hpp"

namespace ntc::core {

/// Graceful degradation on an uncorrectable read: bounded retry (read
/// flips are transient), then scrub-and-retry (flushes accumulated
/// correctable upsets), then escalate the rail one regulator notch at a
/// time (healing marginal stuck cells, as SramModule::set_vdd models)
/// until the read decodes or the options run out.
struct RecoveryConfig {
  bool enabled = true;
  std::uint32_t max_read_retries = 2;
  std::uint32_t max_scrub_retries = 1;
  std::uint32_t max_voltage_bumps = 6;
};

struct RecoveryStats {
  std::uint64_t uncorrectable_reads = 0;  ///< escalations entered
  std::uint64_t read_retries = 0;
  std::uint64_t retry_recoveries = 0;
  std::uint64_t scrub_retries = 0;
  std::uint64_t scrub_recoveries = 0;
  std::uint64_t voltage_bumps = 0;
  std::uint64_t bump_recoveries = 0;
  std::uint64_t unrecovered_reads = 0;  ///< surfaced to the initiator
};

struct AdaptiveConfig {
  NtcMemoryConfig memory = {};
  MonitorConfig monitor = {};
  ControllerConfig controller = {};
  RecoveryConfig recovery = {};
  tech::AgingModel aging = tech::AgingModel();
  std::size_t canary_trials_per_tick = 64;
};

class AdaptiveNtcMemory final : public sim::MemoryPort {
 public:
  explicit AdaptiveNtcMemory(AdaptiveConfig config);

  // MemoryPort: plain data-plane access at the controlled rail.
  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override;
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override;
  std::uint32_t word_count() const override { return memory_.word_count(); }

  /// Native bursts: the read runs as tracked bursts through the
  /// NtcMemory stack, dropping into the per-word recovery escalation
  /// exactly at the first uncorrectable word and resuming the burst
  /// after it — the same access/RNG sequence as the word-at-a-time
  /// fallback.
  sim::AccessStatus read_burst(std::uint32_t word_index,
                               std::span<std::uint32_t> data) override;
  sim::AccessStatus write_burst(std::uint32_t word_index,
                                std::span<const std::uint32_t> data) override;

  /// One monitoring epoch at device age `age`: sample canaries, update
  /// the controller, apply the (possibly changed) rail to the memory
  /// AND its own aging-shifted fault models.  Returns the applied rail.
  Volt tick(Second age);

  Volt vdd() const { return memory_.vdd(); }
  const NtcMemory& memory() const { return memory_; }
  NtcMemory& memory() { return memory_; }
  const VoltageController& controller() const { return controller_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  double last_canary_rate() const { return last_canary_rate_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  sim::AccessStatus recover_read(std::uint32_t word_index,
                                 std::uint32_t& data);

  AdaptiveConfig config_;
  NtcMemory memory_;
  CanaryMonitor monitor_;
  VoltageController controller_;
  RecoveryStats recovery_stats_;
  double last_canary_rate_ = 0.0;
  std::uint64_t ticks_ = 0;
};

}  // namespace ntc::core
