// AdaptiveNtcMemory — the complete single-supply story in one object:
// a mitigated memory, its canary monitor, and the voltage controller,
// closed into the run-time loop the paper's abstract promises
// ("advanced monitoring, control and run-time error mitigation schemes
// enable the operation of these memories at the same optimal near-Vt
// voltage level as the digital logic").
//
// The host calls tick() at its monitoring cadence (e.g. once per
// second of device operation); the loop samples the canaries at the
// device's current age, steps the rail, and propagates the new supply
// into the memory's fault models.
#pragma once

#include "core/controller.hpp"
#include "core/monitor.hpp"
#include "core/ntc_memory.hpp"
#include "tech/aging.hpp"

namespace ntc::core {

struct AdaptiveConfig {
  NtcMemoryConfig memory = {};
  MonitorConfig monitor = {};
  ControllerConfig controller = {};
  tech::AgingModel aging = tech::AgingModel();
  std::size_t canary_trials_per_tick = 64;
};

class AdaptiveNtcMemory final : public sim::MemoryPort {
 public:
  explicit AdaptiveNtcMemory(AdaptiveConfig config);

  // MemoryPort: plain data-plane access at the controlled rail.
  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override;
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override;
  std::uint32_t word_count() const override { return memory_.word_count(); }

  /// One monitoring epoch at device age `age`: sample canaries, update
  /// the controller, apply the (possibly changed) rail to the memory
  /// AND its own aging-shifted fault models.  Returns the applied rail.
  Volt tick(Second age);

  Volt vdd() const { return memory_.vdd(); }
  const NtcMemory& memory() const { return memory_; }
  const VoltageController& controller() const { return controller_; }
  double last_canary_rate() const { return last_canary_rate_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  AdaptiveConfig config_;
  NtcMemory memory_;
  CanaryMonitor monitor_;
  VoltageController controller_;
  double last_canary_rate_ = 0.0;
  std::uint64_t ticks_ = 0;
};

}  // namespace ntc::core
