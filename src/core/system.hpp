// NtcSystem — single-supply platform configurator and savings reporter.
//
// Answers the paper's top-level question for a given application
// requirement (clock, FIT budget, memory style): at which voltage can
// each mitigation scheme run the whole platform on ONE supply, and what
// platform power results.  The analytic model mirrors the simulator's
// per-module accounting (core / IM / SPM / PM / codec) with a fixed
// access-rate profile, so quick API queries agree with the Figure 8/9
// simulation benches on shape.
#pragma once

#include <vector>

#include "ecc/codec_overhead.hpp"
#include "energy/logic_model.hpp"
#include "energy/memory_calculator.hpp"
#include "mitigation/comparison.hpp"
#include "sim/platform.hpp"

namespace ntc::core {

struct SystemRequirements {
  Hertz clock{290.0e3};
  double fit_per_transaction = 1e-15;
  energy::MemoryStyle memory_style = energy::MemoryStyle::CellBasedImec40;
  std::uint32_t imem_bytes = 4 * 1024;
  std::uint32_t spm_bytes = 8 * 1024;
  std::uint32_t pm_bytes = 8 * 1024;
  /// Access-rate profile (per core cycle).
  double fetches_per_cycle = 1.0;
  double spm_accesses_per_cycle = 0.35;
  /// OCEAN protocol traffic as a fraction of SPM accesses.
  double ocean_checkpoint_fraction = 0.15;
};

struct SchemeEstimate {
  mitigation::MitigationScheme scheme;
  mitigation::OperatingPoint operating_point;
  sim::PlatformEnergyReport power;
};

struct SavingsReport {
  std::vector<SchemeEstimate> schemes;  ///< no-mitigation, ECC, OCEAN

  double ecc_saving_vs_no_mitigation = 0.0;    ///< 1 - P_ecc/P_nomit
  double ocean_saving_vs_no_mitigation = 0.0;  ///< paper: up to 70%
  double ocean_saving_vs_ecc = 0.0;            ///< paper: up to 48%
  /// Energy ratios (the intro's "2x vs ECC, 3x vs no mitigation").
  double energy_ratio_no_mitigation_over_ocean = 0.0;
  double energy_ratio_ecc_over_ocean = 0.0;
  /// Conclusion headline: dynamic power reduction beyond the error-free
  /// voltage limit (error-free V0 + margin vs the OCEAN supply).
  double headline_dynamic_power_ratio = 0.0;
};

class NtcSystem {
 public:
  explicit NtcSystem(SystemRequirements requirements);

  /// Per-scheme operating points and platform power, plus ratios.
  SavingsReport analyze() const;

  /// Analytic platform power for one scheme at a given supply.
  sim::PlatformEnergyReport estimate_power(
      const mitigation::MitigationScheme& scheme, Volt vdd) const;

  const SystemRequirements& requirements() const { return requirements_; }

 private:
  SystemRequirements requirements_;
  mitigation::MinVoltageSolver solver_;
  energy::LogicModel core_;
};

}  // namespace ntc::core
