// Common interface of the block codes used as memory-protection
// wrappers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ecc/bits.hpp"

namespace ntc::ecc {

/// What the decoder concluded about a retrieved codeword.
enum class DecodeStatus {
  Ok,                      ///< clean codeword, no correction applied
  Corrected,               ///< error(s) found and corrected
  DetectedUncorrectable,   ///< error detected but beyond correction
};

struct DecodeResult {
  std::uint64_t data = 0;  ///< best-effort decoded data word
  DecodeStatus status = DecodeStatus::Ok;
  int corrected_bits = 0;  ///< number of bit corrections applied
};

/// A systematic binary block code protecting up to 64 data bits.
class BlockCode {
 public:
  virtual ~BlockCode() = default;

  virtual std::string name() const = 0;
  virtual std::size_t data_bits() const = 0;
  virtual std::size_t code_bits() const = 0;
  /// Guaranteed correction capability t (bits per codeword).
  virtual std::size_t correct_capability() const = 0;
  /// Guaranteed detection capability (bits per codeword; >= t).
  virtual std::size_t detect_capability() const = 0;

  virtual Bits encode(std::uint64_t data) const = 0;
  virtual DecodeResult decode(const Bits& received) const = 0;

  /// Storage overhead: code_bits / data_bits.
  double overhead() const {
    return static_cast<double>(code_bits()) / static_cast<double>(data_bits());
  }
};

}  // namespace ntc::ecc
