// Common interface of the block codes used as memory-protection
// wrappers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ecc/bits.hpp"

namespace ntc::ecc {

/// What the decoder concluded about a retrieved codeword.
enum class DecodeStatus {
  Ok,                      ///< clean codeword, no correction applied
  Corrected,               ///< error(s) found and corrected
  DetectedUncorrectable,   ///< error detected but beyond correction
};

struct DecodeResult {
  std::uint64_t data = 0;  ///< best-effort decoded data word
  DecodeStatus status = DecodeStatus::Ok;
  int corrected_bits = 0;  ///< number of bit corrections applied
};

/// Aggregate outcome of a decode_words() call.  The counters sum the
/// per-word DecodeResult fields, so folding them into running memory
/// statistics is bit-identical to folding each word in turn (addition
/// is order-insensitive).  `first_uncorrectable` is the index of the
/// first word whose status was DetectedUncorrectable, or `count` when
/// every word decoded — the burst rollback decision point.
struct BatchDecodeSummary {
  std::uint64_t corrected_words = 0;
  std::uint64_t corrected_bits = 0;
  std::uint64_t uncorrectable_words = 0;
  std::size_t first_uncorrectable = 0;
};

/// A systematic binary block code protecting up to 64 data bits.
class BlockCode {
 public:
  virtual ~BlockCode() = default;

  virtual std::string name() const = 0;
  virtual std::size_t data_bits() const = 0;
  virtual std::size_t code_bits() const = 0;
  /// Guaranteed correction capability t (bits per codeword).
  virtual std::size_t correct_capability() const = 0;
  /// Guaranteed detection capability (bits per codeword; >= t).
  virtual std::size_t detect_capability() const = 0;

  virtual Bits encode(std::uint64_t data) const = 0;
  virtual DecodeResult decode(const Bits& received) const = 0;

  /// Batched raw-codeword kernels for codes whose codeword fits one
  /// 64-bit word (code_bits() <= 64) — the memory-stack burst path.
  /// Raw codewords are packed in the low code_bits() of each element
  /// (the SramModule storage format).  The defaults loop the scalar
  /// encode/decode; bit-parallel codes override with lane kernels that
  /// skip the per-word Bits marshalling.  Results must be bit-identical
  /// to the scalar calls on the same inputs.
  virtual void encode_batch(const std::uint64_t* data, std::size_t count,
                            std::uint64_t* out) const;
  virtual void decode_batch(const std::uint64_t* raw, std::size_t count,
                            DecodeResult* out) const;

  /// Word-direct burst kernels for 32-bit memory words: no widening
  /// pass on encode, no per-word DecodeResult intermediates on decode —
  /// the decoder writes the uint32 data lane directly and returns only
  /// the aggregate summary.  Defaults chunk through
  /// encode_batch/decode_batch; SECDED codes override with fused lanes.
  /// Must be bit-identical to the scalar path (data words, counter
  /// totals, and the first-uncorrectable index).
  virtual void encode_words(const std::uint32_t* data, std::size_t count,
                            std::uint64_t* raw) const;
  virtual void decode_words(const std::uint64_t* raw, std::size_t count,
                            std::uint32_t* data,
                            BatchDecodeSummary& summary) const;

  /// Storage overhead: code_bits / data_bits.
  double overhead() const {
    return static_cast<double>(code_bits()) / static_cast<double>(data_bits());
  }
};

}  // namespace ntc::ecc
