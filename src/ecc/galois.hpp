// GF(2^m) arithmetic with log/antilog tables (m in [3, 12]).
//
// Substrate for the BCH codes that protect the OCEAN checkpoint buffer.
#pragma once

#include <cstdint>
#include <vector>

namespace ntc::ecc {

class GaloisField {
 public:
  /// Field GF(2^m) built over a standard primitive polynomial.
  explicit GaloisField(unsigned m);

  unsigned m() const { return m_; }
  unsigned size() const { return static_cast<unsigned>(exp_.size()) / 2; }
  unsigned order() const { return size() - 1; }  ///< multiplicative order

  unsigned add(unsigned a, unsigned b) const { return a ^ b; }
  unsigned mul(unsigned a, unsigned b) const;
  unsigned div(unsigned a, unsigned b) const;
  unsigned inv(unsigned a) const;
  /// a^e with e taken modulo the multiplicative order (a != 0).
  unsigned pow(unsigned a, long long e) const;
  /// alpha^e for the primitive element alpha.
  unsigned alpha_pow(long long e) const;
  /// Discrete log base alpha (a != 0).
  unsigned log(unsigned a) const;

 private:
  unsigned m_;
  std::vector<unsigned> exp_;  // 2*(2^m) entries, wrap-free indexing
  std::vector<unsigned> log_;
};

/// Polynomials over GF(2) packed LSB-first (bit i = coeff of x^i).
namespace gf2poly {

/// Degree of p (p != 0); degree of 0 defined as -1.
int degree(std::uint64_t p);

/// Product of two GF(2) polynomials.
std::uint64_t multiply(std::uint64_t a, std::uint64_t b);

/// Remainder of a modulo b (b != 0).
std::uint64_t mod(std::uint64_t a, std::uint64_t b);

}  // namespace gf2poly

}  // namespace ntc::ecc
