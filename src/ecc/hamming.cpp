#include "ecc/hamming.hpp"

#include <algorithm>
#include <bit>

#include "common/cpu.hpp"
#include "ecc/bitops.hpp"

namespace ntc::ecc {

namespace {

std::size_t parity_bits_for(std::size_t k) {
  std::size_t r = 2;
  while ((std::size_t{1} << r) < k + r + 1) ++r;
  return r;
}

}  // namespace

HammingSecded::HammingSecded(std::size_t data_bits) : k_(data_bits) {
  NTC_REQUIRE(data_bits >= 4 && data_bits <= 64);
  r_ = parity_bits_for(k_);
  n_ = k_ + r_ + 1;
  NTC_REQUIRE(r_ <= 8 && n_ <= 128);

  const std::size_t m = k_ + r_;
  auto lo_bit = [](std::size_t pos) {
    return pos < 64 ? std::uint64_t{1} << pos : 0;
  };
  auto hi_bit = [](std::size_t pos) {
    return pos >= 64 ? std::uint64_t{1} << (pos - 64) : 0;
  };

  // Contiguous data runs between parity powers of two, and the
  // overall-parity cover mask.
  std::size_t bit = 0;
  for (std::size_t pos = 1; pos <= m; ++pos) {
    if (!is_parity_position(pos)) {
      const bool extend = !runs_.empty() &&
                          runs_.back().word == (pos >> 6) &&
                          runs_.back().shift + std::popcount(runs_.back().mask) ==
                              static_cast<int>(pos & 63);
      if (extend) {
        runs_.back().mask = (runs_.back().mask << 1) | 1u;
      } else {
        runs_.push_back(Run{static_cast<std::uint8_t>(pos >> 6),
                            static_cast<std::uint8_t>(pos & 63),
                            static_cast<std::uint8_t>(bit), 1u});
      }
      ++bit;
    }
    all_lo_ |= lo_bit(pos);
    all_hi_ |= hi_bit(pos);
  }
  all_lo_ |= 1u;  // overall parity covers position 0 too

  // Per-byte XOR-of-positions tables.  Bit j of the accumulated XOR is
  // the parity of the count of set positions with bit j — i.e. the
  // syndrome (and, applied to the scattered data alone, parity bit j).
  code_bytes_ = (m + 8) / 8;  // positions 0..m
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    for (std::size_t v = 1; v < 256; ++v) {
      const std::size_t pos = b * 8 + static_cast<std::size_t>(std::countr_zero(v));
      const std::uint8_t contrib =
          (pos >= 1 && pos <= m) ? static_cast<std::uint8_t>(pos) : 0;
      syn_tab_[b][v] = static_cast<std::uint8_t>(syn_tab_[b][v & (v - 1)] ^ contrib);
    }
  }

  if (n_ <= 64) {
    // Byte-LUT lanes for the batch kernels.  Scatter, parity and gather
    // are all XOR-linear in the input, so each table entry is just the
    // run-shift kernel applied to one isolated byte.
    data_bytes_ = (k_ + 7) / 8;
    auto scatter = [this](std::uint64_t d) {
      std::uint64_t w = 0;
      for (const Run& run : runs_)
        w |= ((d >> run.bit) & run.mask) << run.shift;
      return w;
    };
    auto gather = [this](std::uint64_t c) {
      std::uint64_t d = 0;
      for (const Run& run : runs_)
        d |= ((c >> run.shift) & run.mask) << run.bit;
      return d;
    };
    for (std::size_t b = 0; b < data_bytes_; ++b) {
      for (std::size_t v = 0; v < 256; ++v) {
        std::uint64_t w = scatter(static_cast<std::uint64_t>(v) << (b * 8));
        std::uint64_t parities = 0;
        for (std::size_t cb = 0; cb < code_bytes_; ++cb)
          parities ^= syn_tab_[cb][(w >> (cb * 8)) & 0xFFu];
        for (std::size_t j = 0; j < r_; ++j)
          w ^= ((parities >> j) & 1u) << (std::size_t{1} << j);
        enc_tab_[b][v] = w;
      }
    }
    for (std::size_t b = 0; b < code_bytes_; ++b)
      for (std::size_t v = 0; v < 256; ++v)
        gather_tab_[b][v] = gather(static_cast<std::uint64_t>(v) << (b * 8));
    for (std::size_t pos = 1; pos <= m; ++pos)
      pos_data_[pos] = gather(std::uint64_t{1} << pos);
    packed_dec_ = k_ <= 56;
    if (packed_dec_) {
      for (std::size_t b = 0; b < code_bytes_; ++b)
        for (std::size_t v = 0; v < 256; ++v)
          dec_tab_[b][v] = gather_tab_[b][v] |
                           (static_cast<std::uint64_t>(syn_tab_[b][v]) << 56);
    }

    // Nibble-split vector tables for the (39,32) memory configuration.
    // Syndromes fit 6 bits, so bit 7 is free to carry the byte's own
    // parity: folding the ext tables leaves each lane's low byte zero
    // exactly when syndrome == 0 and the overall parity is even.
    if (k_ == 32 && n_ == 39) {
      for (int b = 0; b < 5; ++b) {
        for (int v = 0; v < 16; ++v) {
          const auto plo =
              static_cast<std::uint8_t>((std::popcount(static_cast<unsigned>(v)) & 1)
                                        << 7);
          simd_.ext_lo[b][v] = static_cast<std::uint8_t>(
              syn_tab_[b][static_cast<std::size_t>(v)] | plo);
          simd_.ext_hi[b][v] = static_cast<std::uint8_t>(
              syn_tab_[b][static_cast<std::size_t>(v) << 4] | plo);
        }
      }
      // Encoder parity-byte tables, decomposed from enc_tab_ (linear in
      // the data): bit 0 is the overall-parity contribution of the
      // scattered nibble plus its induced check bits, bits 1+j the
      // check-bit values at positions 2^j — the pdep source order for
      // parity_sel's ascending set bits {0, 1, 2, 4, 8, 16, 32}.
      auto par_byte = [this](std::uint64_t e) {
        std::uint8_t p = static_cast<std::uint8_t>(parity64(e));
        for (std::size_t j = 0; j < r_; ++j)
          p |= static_cast<std::uint8_t>(((e >> (std::size_t{1} << j)) & 1u)
                                         << (1 + j));
        return p;
      };
      for (int b = 0; b < 4; ++b) {
        for (int v = 0; v < 16; ++v) {
          simd_.par_lo[b][v] = par_byte(enc_tab_[b][static_cast<std::size_t>(v)]);
          simd_.par_hi[b][v] =
              par_byte(enc_tab_[b][static_cast<std::size_t>(v) << 4]);
        }
      }
      simd_.all_lo = all_lo_;
      for (const Run& run : runs_)
        simd_.data_mask |= run.mask << run.shift;
      simd_.parity_sel = 1;
      for (std::size_t j = 0; j < r_; ++j)
        simd_.parity_sel |= std::uint64_t{1} << (std::size_t{1} << j);
      // The vector lanes permute the runs with pext/pdep; without BMI2
      // the scalar LUT lane stays the faster path anyway.
      simd_ok_ = cpu_features().bmi2;
    }
  }
}

std::string HammingSecded::name() const {
  return "SECDED(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

bool HammingSecded::is_parity_position(std::size_t pos) const {
  return std::has_single_bit(pos);
}

Bits HammingSecded::encode(std::uint64_t data) const {
  if (k_ < 64) NTC_REQUIRE((data >> k_) == 0);
  // Scatter data into non-power-of-two Hamming positions 3,5,6,7,...
  std::uint64_t w[2] = {0, 0};
  for (const Run& run : runs_)
    w[run.word] |= ((data >> run.bit) & run.mask) << run.shift;
  // Parity bit at position 2^j covers every data position with bit j
  // set, so it is bit j of the XOR of the set data positions.
  std::uint64_t parities = 0;
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    const std::uint64_t word = b < 8 ? w[0] : w[1];
    parities ^= syn_tab_[b][(word >> ((b & 7) * 8)) & 0xFFu];
  }
  for (std::size_t j = 0; j < r_; ++j) {
    const std::size_t p = std::size_t{1} << j;
    w[p >> 6] |= ((parities >> j) & 1u) << (p & 63);
  }
  // Overall parity over the whole word (position 0) makes total even.
  w[0] |= parity128(w[0], w[1]);
  Bits code;
  code.set_word(0, w[0]);
  code.set_word(1, w[1]);
  return code;
}

DecodeResult HammingSecded::decode(const Bits& received) const {
  const std::uint64_t w0 = received.word(0) & all_lo_;
  const std::uint64_t w1 = received.word(1) & all_hi_;
  // Syndrome: XOR of the positions of all set bits; overall parity of
  // the whole word including position 0.
  std::uint64_t syndrome = 0;
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    const std::uint64_t w = b < 8 ? w0 : w1;
    syndrome ^= syn_tab_[b][(w >> ((b & 7) * 8)) & 0xFFu];
  }
  const bool overall = parity128(w0, w1) != 0;

  const std::size_t m = k_ + r_;
  std::uint64_t c[2] = {w0, w1};
  DecodeResult result;
  if (syndrome == 0 && !overall) {
    result.status = DecodeStatus::Ok;
  } else if (syndrome == 0 && overall) {
    // The overall parity bit itself flipped; data is untouched.
    result.status = DecodeStatus::Corrected;
    result.corrected_bits = 1;
  } else if (overall) {
    // Odd number of errors with a nonzero syndrome: treat as single
    // error at `syndrome` (a triple error mis-corrects here — the
    // SECDED failure mode).
    if (syndrome <= m) {
      c[syndrome >> 6] ^= std::uint64_t{1} << (syndrome & 63);
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
  } else {
    // Even parity with nonzero syndrome: double error, detected.
    result.status = DecodeStatus::DetectedUncorrectable;
  }
  // Gather data bits back out through the run shifts.
  std::uint64_t data = 0;
  for (const Run& run : runs_)
    data |= ((c[run.word] >> run.shift) & run.mask) << run.bit;
  result.data = data;
  return result;
}

void HammingSecded::encode_batch(const std::uint64_t* data, std::size_t count,
                                 std::uint64_t* out) const {
  if (n_ > 64) {
    BlockCode::encode_batch(data, count, out);
    return;
  }
  // n <= 64: every position lives in storage word 0 (all_hi_ == 0), so
  // a lane is data_bytes_ table XORs (scattered data + parity bits in
  // one lookup) plus the overall parity.
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t d = data[i];
    if (k_ < 64) NTC_REQUIRE((d >> k_) == 0);
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < data_bytes_; ++b)
      w ^= enc_tab_[b][(d >> (b * 8)) & 0xFFu];
    w |= parity64(w);
    out[i] = w;
  }
}

void HammingSecded::decode_batch(const std::uint64_t* raw, std::size_t count,
                                 DecodeResult* out) const {
  if (n_ > 64) {
    BlockCode::decode_batch(raw, count, out);
    return;
  }
  // Fused lane: one pass over the code bytes accumulates the syndrome
  // and the gathered data together; a single-bit correction is patched
  // in afterwards via pos_data_ (gather is linear, so gather(w ^ bit)
  // == gather(w) ^ gather(bit)).
  const std::size_t m = k_ + r_;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t w0 = raw[i] & all_lo_;
    std::uint64_t syndrome = 0;
    std::uint64_t data = 0;
    for (std::size_t b = 0; b < code_bytes_; ++b) {
      const std::uint64_t byte = (w0 >> (b * 8)) & 0xFFu;
      syndrome ^= syn_tab_[b][byte];
      data ^= gather_tab_[b][byte];
    }
    const bool overall = parity64(w0) != 0;

    DecodeResult result;
    if (syndrome == 0 && !overall) {
      result.status = DecodeStatus::Ok;
    } else if (syndrome == 0 && overall) {
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else if (overall) {
      if (syndrome <= m) {
        data ^= pos_data_[syndrome];
        result.status = DecodeStatus::Corrected;
        result.corrected_bits = 1;
      } else {
        result.status = DecodeStatus::DetectedUncorrectable;
      }
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
    result.data = data;
    out[i] = result;
  }
}

void HammingSecded::encode_words(const std::uint32_t* data, std::size_t count,
                                 std::uint64_t* raw) const {
  if (n_ > 64) {
    BlockCode::encode_words(data, count, raw);
    return;
  }
  // Word-direct lane: no widening pass, and for 32-bit data only the
  // low data_bytes_ tables contribute.  The 4-byte case (every k in
  // (24, 32], including the (39,32) memory configuration) is unrolled
  // with a fixed trip count so the four loads issue in parallel instead
  // of through the loop's serial XOR chain.
  if (data_bytes_ == 4 && k_ == 32) {
    std::size_t start = 0;
    if (simd_ok_ && simd_avx2_active())
      start = hamming39_encode_words(simd_, data, count, raw);
    for (std::size_t i = start; i < count; ++i) {
      const std::uint32_t d = data[i];
      std::uint64_t w = (enc_tab_[0][d & 0xFFu] ^ enc_tab_[1][(d >> 8) & 0xFFu]) ^
                        (enc_tab_[2][(d >> 16) & 0xFFu] ^ enc_tab_[3][d >> 24]);
      w |= parity64(w);
      raw[i] = w;
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t d = data[i];
    if (k_ < 32) NTC_REQUIRE((d >> k_) == 0);
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < data_bytes_; ++b)
      w ^= enc_tab_[b][(d >> (b * 8)) & 0xFFu];
    w |= parity64(w);
    raw[i] = w;
  }
}

void HammingSecded::decode_words(const std::uint64_t* raw, std::size_t count,
                                 std::uint32_t* data,
                                 BatchDecodeSummary& summary) const {
  if (n_ > 64 || !packed_dec_) {
    BlockCode::decode_words(raw, count, data, summary);
    return;
  }
  summary = BatchDecodeSummary{};
  summary.first_uncorrectable = count;
  // Same fused lane as decode_batch, but through the packed table (one
  // lookup per code byte yields syndrome and gathered data together)
  // with the data word and the aggregate counters written directly — no
  // DecodeResult intermediates.  A SECDED correction is always exactly
  // one bit, so corrected_bits tracks corrected_words.
  const std::size_t m = k_ + r_;
  // Classification tail shared by the unrolled and the generic lane.
  auto finish = [&](std::size_t i, std::uint64_t w0, std::uint64_t acc) {
    const std::uint64_t syndrome = acc >> 56;
    std::uint64_t d = acc & (~std::uint64_t{0} >> 8);
    const bool overall = parity64(w0) != 0;
    if (syndrome == 0) {
      if (overall) {
        ++summary.corrected_words;
        ++summary.corrected_bits;
      }
    } else if (overall && syndrome <= m) {
      d ^= pos_data_[syndrome];
      ++summary.corrected_words;
      ++summary.corrected_bits;
    } else {
      if (summary.uncorrectable_words == 0) summary.first_uncorrectable = i;
      ++summary.uncorrectable_words;
    }
    data[i] = static_cast<std::uint32_t>(d);
  };
  if (code_bytes_ == 5) {
    // (39,32)-class codewords: fixed trip count lets the five table
    // loads issue in parallel instead of through the serial XOR chain.
    const auto decode_one = [&](std::size_t i) {
      const std::uint64_t w0 = raw[i] & all_lo_;
      const std::uint64_t acc =
          (dec_tab_[0][w0 & 0xFFu] ^ dec_tab_[1][(w0 >> 8) & 0xFFu]) ^
          (dec_tab_[2][(w0 >> 16) & 0xFFu] ^ dec_tab_[3][(w0 >> 24) & 0xFFu]) ^
          dec_tab_[4][(w0 >> 32) & 0xFFu];
      finish(i, w0, acc);
    };
    if (simd_ok_ && simd_avx2_active()) {
      // Vector clean spans; any 8-word block with a suspect lane (and
      // the sub-block tail) re-runs through the scalar classifier in
      // index order, so counters and first_uncorrectable match the
      // scalar loop exactly.
      std::size_t i = 0;
      while (i < count) {
        i += hamming39_decode_clean_span(simd_, raw + i, count - i, data + i);
        const std::size_t stop = std::min(count, i + 8);
        for (; i < stop; ++i) decode_one(i);
      }
      return;
    }
    for (std::size_t i = 0; i < count; ++i) decode_one(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t w0 = raw[i] & all_lo_;
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < code_bytes_; ++b)
      acc ^= dec_tab_[b][(w0 >> (b * 8)) & 0xFFu];
    finish(i, w0, acc);
  }
}

}  // namespace ntc::ecc
