#include "ecc/hamming.hpp"

#include <bit>

namespace ntc::ecc {

namespace {

std::size_t parity_bits_for(std::size_t k) {
  std::size_t r = 2;
  while ((std::size_t{1} << r) < k + r + 1) ++r;
  return r;
}

}  // namespace

HammingSecded::HammingSecded(std::size_t data_bits) : k_(data_bits) {
  NTC_REQUIRE(data_bits >= 4 && data_bits <= 64);
  r_ = parity_bits_for(k_);
  n_ = k_ + r_ + 1;
}

std::string HammingSecded::name() const {
  return "SECDED(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

bool HammingSecded::is_parity_position(std::size_t pos) const {
  return std::has_single_bit(pos);
}

Bits HammingSecded::encode(std::uint64_t data) const {
  if (k_ < 64) NTC_REQUIRE((data >> k_) == 0);
  Bits code;
  // Scatter data into non-power-of-two Hamming positions 3,5,6,7,...
  std::size_t bit = 0;
  const std::size_t m = k_ + r_;
  for (std::size_t pos = 1; pos <= m; ++pos) {
    if (is_parity_position(pos)) continue;
    code.set(pos, (data >> bit) & 1u);
    ++bit;
  }
  // Parity bit at position 2^j covers every position with bit j set.
  for (std::size_t j = 0; j < r_; ++j) {
    const std::size_t p = std::size_t{1} << j;
    bool parity = false;
    for (std::size_t pos = 1; pos <= m; ++pos) {
      if (pos == p || !(pos & p)) continue;
      parity ^= code.get(pos);
    }
    code.set(p, parity);
  }
  // Overall parity over the whole word (position 0) makes total even.
  bool overall = false;
  for (std::size_t pos = 1; pos <= m; ++pos) overall ^= code.get(pos);
  code.set(0, overall);
  return code;
}

DecodeResult HammingSecded::decode(const Bits& received) const {
  const std::size_t m = k_ + r_;
  // Syndrome: XOR of the positions of all set bits.
  std::size_t syndrome = 0;
  bool overall = received.get(0);
  for (std::size_t pos = 1; pos <= m; ++pos) {
    if (received.get(pos)) {
      syndrome ^= pos;
      overall ^= true;
    }
  }
  Bits corrected = received;
  DecodeResult result;
  if (syndrome == 0 && !overall) {
    result.status = DecodeStatus::Ok;
  } else if (syndrome == 0 && overall) {
    // The overall parity bit itself flipped.
    corrected.flip(0);
    result.status = DecodeStatus::Corrected;
    result.corrected_bits = 1;
  } else if (overall) {
    // Odd number of errors with a nonzero syndrome: treat as single
    // error at `syndrome` (a triple error mis-corrects here — the
    // SECDED failure mode).
    if (syndrome <= m) {
      corrected.flip(syndrome);
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
  } else {
    // Even parity with nonzero syndrome: double error, detected.
    result.status = DecodeStatus::DetectedUncorrectable;
  }
  // Gather data bits back out.
  std::uint64_t data = 0;
  std::size_t bit = 0;
  for (std::size_t pos = 1; pos <= m; ++pos) {
    if (is_parity_position(pos)) continue;
    data |= static_cast<std::uint64_t>(corrected.get(pos)) << bit;
    ++bit;
  }
  result.data = data;
  return result;
}

}  // namespace ntc::ecc
