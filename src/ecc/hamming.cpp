#include "ecc/hamming.hpp"

#include <bit>

#include "ecc/bitops.hpp"

namespace ntc::ecc {

namespace {

std::size_t parity_bits_for(std::size_t k) {
  std::size_t r = 2;
  while ((std::size_t{1} << r) < k + r + 1) ++r;
  return r;
}

}  // namespace

HammingSecded::HammingSecded(std::size_t data_bits) : k_(data_bits) {
  NTC_REQUIRE(data_bits >= 4 && data_bits <= 64);
  r_ = parity_bits_for(k_);
  n_ = k_ + r_ + 1;
  NTC_REQUIRE(r_ <= 8 && n_ <= 128);

  const std::size_t m = k_ + r_;
  auto lo_bit = [](std::size_t pos) {
    return pos < 64 ? std::uint64_t{1} << pos : 0;
  };
  auto hi_bit = [](std::size_t pos) {
    return pos >= 64 ? std::uint64_t{1} << (pos - 64) : 0;
  };

  // Contiguous data runs between parity powers of two, and the
  // overall-parity cover mask.
  std::size_t bit = 0;
  for (std::size_t pos = 1; pos <= m; ++pos) {
    if (!is_parity_position(pos)) {
      const bool extend = !runs_.empty() &&
                          runs_.back().word == (pos >> 6) &&
                          runs_.back().shift + std::popcount(runs_.back().mask) ==
                              static_cast<int>(pos & 63);
      if (extend) {
        runs_.back().mask = (runs_.back().mask << 1) | 1u;
      } else {
        runs_.push_back(Run{static_cast<std::uint8_t>(pos >> 6),
                            static_cast<std::uint8_t>(pos & 63),
                            static_cast<std::uint8_t>(bit), 1u});
      }
      ++bit;
    }
    all_lo_ |= lo_bit(pos);
    all_hi_ |= hi_bit(pos);
  }
  all_lo_ |= 1u;  // overall parity covers position 0 too

  // Per-byte XOR-of-positions tables.  Bit j of the accumulated XOR is
  // the parity of the count of set positions with bit j — i.e. the
  // syndrome (and, applied to the scattered data alone, parity bit j).
  code_bytes_ = (m + 8) / 8;  // positions 0..m
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    for (std::size_t v = 1; v < 256; ++v) {
      const std::size_t pos = b * 8 + static_cast<std::size_t>(std::countr_zero(v));
      const std::uint8_t contrib =
          (pos >= 1 && pos <= m) ? static_cast<std::uint8_t>(pos) : 0;
      syn_tab_[b][v] = static_cast<std::uint8_t>(syn_tab_[b][v & (v - 1)] ^ contrib);
    }
  }
}

std::string HammingSecded::name() const {
  return "SECDED(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

bool HammingSecded::is_parity_position(std::size_t pos) const {
  return std::has_single_bit(pos);
}

Bits HammingSecded::encode(std::uint64_t data) const {
  if (k_ < 64) NTC_REQUIRE((data >> k_) == 0);
  // Scatter data into non-power-of-two Hamming positions 3,5,6,7,...
  std::uint64_t w[2] = {0, 0};
  for (const Run& run : runs_)
    w[run.word] |= ((data >> run.bit) & run.mask) << run.shift;
  // Parity bit at position 2^j covers every data position with bit j
  // set, so it is bit j of the XOR of the set data positions.
  std::uint64_t parities = 0;
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    const std::uint64_t word = b < 8 ? w[0] : w[1];
    parities ^= syn_tab_[b][(word >> ((b & 7) * 8)) & 0xFFu];
  }
  for (std::size_t j = 0; j < r_; ++j) {
    const std::size_t p = std::size_t{1} << j;
    w[p >> 6] |= ((parities >> j) & 1u) << (p & 63);
  }
  // Overall parity over the whole word (position 0) makes total even.
  w[0] |= parity128(w[0], w[1]);
  Bits code;
  code.set_word(0, w[0]);
  code.set_word(1, w[1]);
  return code;
}

DecodeResult HammingSecded::decode(const Bits& received) const {
  const std::uint64_t w0 = received.word(0) & all_lo_;
  const std::uint64_t w1 = received.word(1) & all_hi_;
  // Syndrome: XOR of the positions of all set bits; overall parity of
  // the whole word including position 0.
  std::uint64_t syndrome = 0;
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    const std::uint64_t w = b < 8 ? w0 : w1;
    syndrome ^= syn_tab_[b][(w >> ((b & 7) * 8)) & 0xFFu];
  }
  const bool overall = parity128(w0, w1) != 0;

  const std::size_t m = k_ + r_;
  std::uint64_t c[2] = {w0, w1};
  DecodeResult result;
  if (syndrome == 0 && !overall) {
    result.status = DecodeStatus::Ok;
  } else if (syndrome == 0 && overall) {
    // The overall parity bit itself flipped; data is untouched.
    result.status = DecodeStatus::Corrected;
    result.corrected_bits = 1;
  } else if (overall) {
    // Odd number of errors with a nonzero syndrome: treat as single
    // error at `syndrome` (a triple error mis-corrects here — the
    // SECDED failure mode).
    if (syndrome <= m) {
      c[syndrome >> 6] ^= std::uint64_t{1} << (syndrome & 63);
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
  } else {
    // Even parity with nonzero syndrome: double error, detected.
    result.status = DecodeStatus::DetectedUncorrectable;
  }
  // Gather data bits back out through the run shifts.
  std::uint64_t data = 0;
  for (const Run& run : runs_)
    data |= ((c[run.word] >> run.shift) & run.mask) << run.bit;
  result.data = data;
  return result;
}

}  // namespace ntc::ecc
