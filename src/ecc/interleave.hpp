// Bit-interleaved composition of block codes.
//
// Spreads the data word across `ways` independent instances of a base
// code so that a burst of up to ways * t adjacent bit errors is
// correctable (each lane sees at most t).  Used as the ablation
// alternative to the BCH protected-buffer code: 4-way interleaved
// SECDED(22,16) also corrects 4 spread errors but fails on 2 errors in
// one lane — the bench quantifies the difference.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "ecc/code.hpp"

namespace ntc::ecc {

class InterleavedCode final : public BlockCode {
 public:
  /// `lanes` must all have identical parameters.  Total data bits
  /// (ways * lane data) must not exceed 64.
  explicit InterleavedCode(std::vector<std::unique_ptr<BlockCode>> lanes);

  std::string name() const override;
  std::size_t data_bits() const override;
  std::size_t code_bits() const override;
  /// Guaranteed correction: t per lane, i.e. only 1*t for adversarial
  /// same-lane placement.
  std::size_t correct_capability() const override;
  std::size_t detect_capability() const override;

  /// Correction capability for *spread* (round-robin adjacent) errors.
  std::size_t burst_correct_capability() const;

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

 private:
  /// Per-lane scatter/gather masks: lane codeword bit i lives at
  /// interleaved position lane + i*ways, so the lane's bits within each
  /// 64-bit storage word of the interleaved codeword form a fixed mask
  /// and one pext/pdep per word moves them all at once.  Usable when
  /// the lane codeword fits one word (every composition in the library;
  /// a 1-way lane wider than 64 bits falls back to the bit loop).
  struct LaneMap {
    std::uint64_t data_mask = 0;  ///< lane's data bits within the data word
    std::array<std::uint64_t, Bits::kCapacity / 64> code_mask{};
    std::array<std::uint8_t, Bits::kCapacity / 64> code_offset{};
  };

  std::vector<std::unique_ptr<BlockCode>> lanes_;
  std::vector<LaneMap> maps_;  ///< empty when the fast path is unusable
};

/// 4-way interleaved SECDED(22,16): 64 data bits, 88 code bits.
InterleavedCode interleaved_secded_4x16();

}  // namespace ntc::ecc
