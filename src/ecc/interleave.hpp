// Bit-interleaved composition of block codes.
//
// Spreads the data word across `ways` independent instances of a base
// code so that a burst of up to ways * t adjacent bit errors is
// correctable (each lane sees at most t).  Used as the ablation
// alternative to the BCH protected-buffer code: 4-way interleaved
// SECDED(22,16) also corrects 4 spread errors but fails on 2 errors in
// one lane — the bench quantifies the difference.
#pragma once

#include <memory>
#include <vector>

#include "ecc/code.hpp"

namespace ntc::ecc {

class InterleavedCode final : public BlockCode {
 public:
  /// `lanes` must all have identical parameters.  Total data bits
  /// (ways * lane data) must not exceed 64.
  explicit InterleavedCode(std::vector<std::unique_ptr<BlockCode>> lanes);

  std::string name() const override;
  std::size_t data_bits() const override;
  std::size_t code_bits() const override;
  /// Guaranteed correction: t per lane, i.e. only 1*t for adversarial
  /// same-lane placement.
  std::size_t correct_capability() const override;
  std::size_t detect_capability() const override;

  /// Correction capability for *spread* (round-robin adjacent) errors.
  std::size_t burst_correct_capability() const;

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

 private:
  std::vector<std::unique_ptr<BlockCode>> lanes_;
};

/// 4-way interleaved SECDED(22,16): 64 data bits, 88 code bits.
InterleavedCode interleaved_secded_4x16();

}  // namespace ntc::ecc
