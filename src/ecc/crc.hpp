// CRC-32 (IEEE 802.3, reflected) for checkpoint-chunk integrity checks.
//
// OCEAN detects corrupted scratchpad chunks before consuming them; the
// software routine is a CRC over the chunk, which detects any burst up
// to 32 bits and any odd number of bit errors — far beyond the error
// multiplicities the FIT target allows to survive.
#pragma once

#include <cstdint>
#include <span>

namespace ntc::ecc {

class Crc32 {
 public:
  Crc32();

  /// CRC of a byte span (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
  std::uint32_t compute(std::span<const std::uint8_t> bytes) const;

  /// CRC of a span of 32-bit words (little-endian byte order).
  std::uint32_t compute_words(std::span<const std::uint32_t> words) const;

  /// Streaming interface.
  std::uint32_t update(std::uint32_t state, std::uint8_t byte) const;
  static std::uint32_t initial() { return 0xFFFFFFFFu; }
  static std::uint32_t finalize(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t table_[256];
};

}  // namespace ntc::ecc
