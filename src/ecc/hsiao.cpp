#include "ecc/hsiao.hpp"

#include <bit>

namespace ntc::ecc {

HsiaoSecded::HsiaoSecded(std::size_t data_bits) : k_(data_bits) {
  NTC_REQUIRE(data_bits >= 4 && data_bits <= 64);
  // Smallest r such that the number of odd-weight-(>=3) columns covers k.
  r_ = 4;
  auto capacity = [](std::size_t r) {
    // C(r,3) + C(r,5) + ... (odd weights >= 3)
    std::size_t total = 0;
    for (std::size_t w = 3; w <= r; w += 2) {
      std::size_t c = 1;
      for (std::size_t i = 0; i < w; ++i) c = c * (r - i) / (i + 1);
      total += c;
    }
    return total;
  };
  while (capacity(r_) < k_) ++r_;
  // Assign data columns: all odd-weight (>=3) masks in increasing weight
  // then numeric order — the canonical Hsiao construction keeps per-row
  // weight balanced well enough for the energy model.
  for (std::size_t weight = 3; weight <= r_ && column_.size() < k_; weight += 2) {
    for (std::size_t mask = 1; mask < (std::size_t{1} << r_) && column_.size() < k_;
         ++mask) {
      if (std::popcount(mask) == static_cast<int>(weight))
        column_.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  NTC_REQUIRE(column_.size() == k_);
}

std::string HsiaoSecded::name() const {
  return "Hsiao(" + std::to_string(k_ + r_) + "," + std::to_string(k_) + ")";
}

std::size_t HsiaoSecded::h_matrix_ones() const {
  std::size_t ones = 0;
  for (auto c : column_) ones += static_cast<std::size_t>(std::popcount(c));
  return ones;
}

Bits HsiaoSecded::encode(std::uint64_t data) const {
  if (k_ < 64) NTC_REQUIRE((data >> k_) == 0);
  Bits code;
  // Systematic layout: data bits at [0, k), check bits at [k, k+r).
  std::uint8_t checks = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const bool bit = (data >> i) & 1u;
    code.set(i, bit);
    if (bit) checks ^= column_[i];
  }
  for (std::size_t j = 0; j < r_; ++j) code.set(k_ + j, (checks >> j) & 1u);
  return code;
}

std::uint8_t HsiaoSecded::syndrome_of(const Bits& word) const {
  std::uint8_t syndrome = 0;
  for (std::size_t i = 0; i < k_; ++i)
    if (word.get(i)) syndrome ^= column_[i];
  for (std::size_t j = 0; j < r_; ++j)
    if (word.get(k_ + j)) syndrome ^= static_cast<std::uint8_t>(1u << j);
  return syndrome;
}

DecodeResult HsiaoSecded::decode(const Bits& received) const {
  DecodeResult result;
  Bits corrected = received;
  const std::uint8_t syndrome = syndrome_of(received);
  if (syndrome == 0) {
    result.status = DecodeStatus::Ok;
  } else if (std::popcount(syndrome) % 2 == 1) {
    // Odd-weight syndrome: single error (or mis-corrected triple).
    bool matched = false;
    for (std::size_t i = 0; i < k_; ++i) {
      if (column_[i] == syndrome) {
        corrected.flip(i);
        matched = true;
        break;
      }
    }
    if (!matched && std::has_single_bit(syndrome)) {
      corrected.flip(k_ + static_cast<std::size_t>(std::countr_zero(syndrome)));
      matched = true;
    }
    if (matched) {
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else {
      // Odd syndrome matching no column: >= 3 errors, detected.
      result.status = DecodeStatus::DetectedUncorrectable;
    }
  } else {
    // Even-weight nonzero syndrome: double error.
    result.status = DecodeStatus::DetectedUncorrectable;
  }
  std::uint64_t data = 0;
  for (std::size_t i = 0; i < k_; ++i)
    data |= static_cast<std::uint64_t>(corrected.get(i)) << i;
  result.data = data;
  return result;
}

}  // namespace ntc::ecc
