#include "ecc/hsiao.hpp"

#include <algorithm>
#include <bit>

#include "common/cpu.hpp"
#include "ecc/bitops.hpp"

namespace ntc::ecc {

namespace {

/// Split a single bit positioned at `offset` of a 128-bit codeword into
/// its word-0 / word-1 halves.  Branch free: the double shifts stay
/// defined for offset 0 and 64.
inline std::uint64_t field_lo(std::uint64_t field, std::size_t offset) {
  return (field << (offset & 63)) * static_cast<std::uint64_t>(offset < 64);
}

inline std::uint64_t field_hi(std::uint64_t field, std::size_t offset) {
  if (offset >= 64) return field << (offset - 64);
  return (field >> 1) >> (63 - offset);
}

}  // namespace

HsiaoSecded::HsiaoSecded(std::size_t data_bits) : k_(data_bits) {
  NTC_REQUIRE(data_bits >= 4 && data_bits <= 64);
  // Smallest r such that the number of odd-weight-(>=3) columns covers k.
  r_ = 4;
  auto capacity = [](std::size_t r) {
    // C(r,3) + C(r,5) + ... (odd weights >= 3)
    std::size_t total = 0;
    for (std::size_t w = 3; w <= r; w += 2) {
      std::size_t c = 1;
      for (std::size_t i = 0; i < w; ++i) c = c * (r - i) / (i + 1);
      total += c;
    }
    return total;
  };
  while (capacity(r_) < k_) ++r_;
  NTC_REQUIRE(r_ <= 8);  // flip_lut_/syndrome tables assume 8-bit syndromes
  // Assign data columns: all odd-weight (>=3) masks in increasing weight
  // then numeric order — the canonical Hsiao construction keeps per-row
  // weight balanced well enough for the energy model.
  for (std::size_t weight = 3; weight <= r_ && column_.size() < k_; weight += 2) {
    for (std::size_t mask = 1; mask < (std::size_t{1} << r_) && column_.size() < k_;
         ++mask) {
      if (std::popcount(mask) == static_cast<int>(weight))
        column_.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  NTC_REQUIRE(column_.size() == k_);

  data_mask_ = ~std::uint64_t{0} >> (64 - k_);
  data_bytes_ = (k_ + 7) / 8;
  code_bytes_ = (k_ + r_ + 7) / 8;

  // Per-byte column-contribution tables.  Column of codeword position
  // p: H column for data bits (p < k), unit vector for check bits
  // (k <= p < k+r), zero beyond the codeword.
  auto column_at = [&](std::size_t pos) -> std::uint8_t {
    if (pos < k_) return column_[pos];
    if (pos < k_ + r_) return static_cast<std::uint8_t>(1u << (pos - k_));
    return 0;
  };
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    for (std::size_t v = 1; v < 256; ++v) {
      const std::size_t low = static_cast<std::size_t>(std::countr_zero(v));
      syn_tab_[b][v] = static_cast<std::uint8_t>(syn_tab_[b][v & (v - 1)] ^
                                                 column_at(b * 8 + low));
    }
  }

  // Syndrome -> flip position.  Data columns have odd weight >= 3 and
  // check columns are the weight-1 unit vectors, so the two key sets
  // cannot collide; every other syndrome maps to "no single-bit match".
  flip_lut_.fill(kNoFlip);
  for (std::size_t i = 0; i < k_; ++i)
    flip_lut_[column_[i]] = static_cast<std::uint8_t>(i);
  for (std::size_t j = 0; j < r_; ++j)
    flip_lut_[std::size_t{1} << j] = static_cast<std::uint8_t>(k_ + j);

  // Nibble-split vector tables for the (39,32) memory configuration:
  // syn_tab_[b][v] == syn_tab_[b][v & 0x0F] ^ syn_tab_[b][v & 0xF0] by
  // GF(2) linearity, so the two 16-entry halves reconstruct it exactly.
  if (k_ == 32 && r_ == 7) {
    for (int b = 0; b < 5; ++b) {
      for (int v = 0; v < 16; ++v) {
        simd_.syn_lo[b][v] = syn_tab_[b][static_cast<std::size_t>(v)];
        simd_.syn_hi[b][v] = syn_tab_[b][static_cast<std::size_t>(v) << 4];
      }
    }
    simd_ok_ = true;
  }
}

std::string HsiaoSecded::name() const {
  return "Hsiao(" + std::to_string(k_ + r_) + "," + std::to_string(k_) + ")";
}

std::size_t HsiaoSecded::h_matrix_ones() const {
  std::size_t ones = 0;
  for (auto c : column_) ones += static_cast<std::size_t>(std::popcount(c));
  return ones;
}

Bits HsiaoSecded::encode(std::uint64_t data) const {
  if (k_ < 64) NTC_REQUIRE((data >> k_) == 0);
  // Systematic layout: data bits at [0, k), check bits at [k, k+r).
  // The check bits are the XOR of the data columns, which is exactly
  // the syndrome of the data bytes alone.
  std::uint64_t checks = 0;
  for (std::size_t b = 0; b < data_bytes_; ++b)
    checks ^= syn_tab_[b][(data >> (b * 8)) & 0xFFu];
  Bits code;
  code.set_word(0, data | field_lo(checks, k_));
  code.set_word(1, field_hi(checks, k_));
  return code;
}

std::uint8_t HsiaoSecded::syndrome_of(const Bits& word) const {
  const std::uint64_t w0 = word.word(0);
  const std::uint64_t w1 = word.word(1);
  std::uint64_t syndrome = 0;
  for (std::size_t b = 0; b < code_bytes_; ++b) {
    const std::uint64_t w = b < 8 ? w0 : w1;
    syndrome ^= syn_tab_[b][(w >> ((b & 7) * 8)) & 0xFFu];
  }
  return static_cast<std::uint8_t>(syndrome);
}

DecodeResult HsiaoSecded::decode(const Bits& received) const {
  DecodeResult result;
  std::uint64_t w0 = received.word(0);
  const std::uint8_t syndrome = syndrome_of(received);
  if (syndrome == 0) {
    result.status = DecodeStatus::Ok;
  } else if (parity64(syndrome) != 0) {
    // Odd-weight syndrome: single error (or mis-corrected triple).
    const std::uint8_t pos = flip_lut_[syndrome];
    if (pos != kNoFlip) {
      // Only a data-bit flip (< 64) can change the extracted word; the
      // trailing data_mask_ discards check-bit flips branch-free.
      w0 ^= field_lo(1, pos);
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else {
      // Odd syndrome matching no column: >= 3 errors, detected.
      result.status = DecodeStatus::DetectedUncorrectable;
    }
  } else {
    // Even-weight nonzero syndrome: double error.
    result.status = DecodeStatus::DetectedUncorrectable;
  }
  result.data = w0 & data_mask_;
  return result;
}

void HsiaoSecded::encode_batch(const std::uint64_t* data, std::size_t count,
                               std::uint64_t* out) const {
  if (k_ + r_ > 64) {
    BlockCode::encode_batch(data, count, out);
    return;
  }
  // k + r <= 64 (and r >= 4, so k <= 60): codeword fits word 0 and the
  // check field never straddles into word 1.
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t d = data[i];
    if (k_ < 64) NTC_REQUIRE((d >> k_) == 0);
    std::uint64_t checks = 0;
    for (std::size_t b = 0; b < data_bytes_; ++b)
      checks ^= syn_tab_[b][(d >> (b * 8)) & 0xFFu];
    out[i] = d | (checks << k_);
  }
}

void HsiaoSecded::decode_batch(const std::uint64_t* raw, std::size_t count,
                               DecodeResult* out) const {
  if (k_ + r_ > 64) {
    BlockCode::decode_batch(raw, count, out);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t w0 = raw[i];
    std::uint64_t syndrome = 0;
    for (std::size_t b = 0; b < code_bytes_; ++b)
      syndrome ^= syn_tab_[b][(w0 >> (b * 8)) & 0xFFu];
    const std::uint8_t syn = static_cast<std::uint8_t>(syndrome);
    DecodeResult result;
    if (syn == 0) {
      result.status = DecodeStatus::Ok;
    } else if (parity64(syn) != 0) {
      const std::uint8_t pos = flip_lut_[syn];
      if (pos != kNoFlip) {
        w0 ^= std::uint64_t{1} << pos;
        result.status = DecodeStatus::Corrected;
        result.corrected_bits = 1;
      } else {
        result.status = DecodeStatus::DetectedUncorrectable;
      }
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
    result.data = w0 & data_mask_;
    out[i] = result;
  }
}

void HsiaoSecded::encode_words(const std::uint32_t* data, std::size_t count,
                               std::uint64_t* raw) const {
  if (k_ + r_ > 64) {
    BlockCode::encode_words(data, count, raw);
    return;
  }
  std::size_t start = 0;
  if (simd_ok_ && simd_avx2_active())
    start = hsiao39_encode_words(simd_, data, count, raw);
  for (std::size_t i = start; i < count; ++i) {
    const std::uint64_t d = data[i];
    if (k_ < 32) NTC_REQUIRE((d >> k_) == 0);
    std::uint64_t checks = 0;
    for (std::size_t b = 0; b < data_bytes_; ++b)
      checks ^= syn_tab_[b][(d >> (b * 8)) & 0xFFu];
    raw[i] = d | (checks << k_);
  }
}

void HsiaoSecded::decode_words(const std::uint64_t* raw, std::size_t count,
                               std::uint32_t* data,
                               BatchDecodeSummary& summary) const {
  if (k_ + r_ > 64) {
    BlockCode::decode_words(raw, count, data, summary);
    return;
  }
  summary = BatchDecodeSummary{};
  summary.first_uncorrectable = count;
  // Same lane as decode_batch with the data word and aggregate counters
  // written directly; a SECDED correction is always one bit.
  const auto decode_one = [&](std::size_t i) {
    std::uint64_t w0 = raw[i];
    std::uint64_t syndrome = 0;
    for (std::size_t b = 0; b < code_bytes_; ++b)
      syndrome ^= syn_tab_[b][(w0 >> (b * 8)) & 0xFFu];
    const std::uint8_t syn = static_cast<std::uint8_t>(syndrome);
    if (syn != 0) {
      if (parity64(syn) != 0 && flip_lut_[syn] != kNoFlip) {
        w0 ^= std::uint64_t{1} << flip_lut_[syn];
        ++summary.corrected_words;
        ++summary.corrected_bits;
      } else {
        if (summary.uncorrectable_words == 0) summary.first_uncorrectable = i;
        ++summary.uncorrectable_words;
      }
    }
    data[i] = static_cast<std::uint32_t>(w0 & data_mask_);
  };
  if (simd_ok_ && simd_avx2_active()) {
    // Vector clean spans; any 8-word block with a suspect lane (and the
    // sub-block tail) re-runs through the scalar classifier in index
    // order, so counters and first_uncorrectable match the scalar loop
    // exactly.
    std::size_t i = 0;
    while (i < count) {
      i += hsiao39_decode_clean_span(simd_, raw + i, count - i, data + i);
      const std::size_t stop = std::min(count, i + 8);
      for (; i < stop; ++i) decode_one(i);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) decode_one(i);
}

}  // namespace ntc::ecc
