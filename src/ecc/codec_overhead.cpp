#include "ecc/codec_overhead.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::ecc {

Joule CodecOverhead::encode_energy(Volt vdd) const {
  NTC_REQUIRE(vdd.value > 0.0);
  return Joule{0.5 * encode_gate_equiv * gate_cap_f * vdd.value * vdd.value};
}

Joule CodecOverhead::decode_energy(Volt vdd) const {
  NTC_REQUIRE(vdd.value > 0.0);
  return Joule{0.5 * decode_gate_equiv * gate_cap_f * vdd.value * vdd.value};
}

Watt CodecOverhead::leakage(Volt vdd) const {
  return Watt{(encode_gate_equiv + decode_gate_equiv) * gate_leak_a_per_gate *
              vdd.value};
}

CodecOverhead estimate_codec_overhead(const BlockCode& code,
                                      const tech::TechnologyNode& node) {
  CodecOverhead overhead;
  const double n = static_cast<double>(code.code_bits());
  const double k = static_cast<double>(code.data_bits());
  const double r = n - k;
  const double t = static_cast<double>(code.correct_capability());

  if (t <= 1.0) {
    // SECDED-class: encoder = r parity trees over ~k/2 inputs each;
    // decoder = same trees + syndrome match (n comparators of r bits).
    overhead.encode_gate_equiv = r * (k / 2.0);
    overhead.decode_gate_equiv = r * (k / 2.0) + n * (r / 2.0);
  } else {
    // BCH-class: LFSR encoder of r flops (~4 gate-equivalents each);
    // decoder = 2t syndrome evaluators over n positions + BM datapath
    // (~2t^2 GF multipliers of ~m^2 gates) + Chien search.
    const double m = std::ceil(std::log2(n + 1.0));
    overhead.encode_gate_equiv = 4.0 * r;
    overhead.decode_gate_equiv =
        2.0 * t * n + 2.0 * t * t * m * m + (t + 1.0) * n;
  }
  overhead.storage_overhead = code.overhead();
  overhead.gate_cap_f = 2.0 * node.logic_fo4_load_ff * 1e-15;
  // Leakage per gate from the node's logic device at nominal conditions.
  overhead.gate_leak_a_per_gate =
      2.0 * tech::leakage_current(node.nmos, node.vdd_nominal.value,
                                  Celsius{25.0}).value;
  return overhead;
}

}  // namespace ntc::ecc
