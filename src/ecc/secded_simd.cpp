#include "ecc/secded_simd.hpp"

#include "common/cpu.hpp"

#if NTC_X86_SIMD
#include <immintrin.h>
#endif

namespace ntc::ecc {

#if NTC_X86_SIMD

namespace {

__attribute__((target("avx2"))) inline __m256i bcast16(
    const std::uint8_t (&tab)[16]) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab)));
}

/// XOR-fold five per-byte nibble-LUT contributions into the low byte of
/// each u64 lane.  Contribution b is wanted only at byte position b, so
/// instead of masking each to its byte and byte-folding at the end,
/// shift each whole contribution down so its byte b lands at byte 0 and
/// XOR; garbage above byte 0 is masked once.
__attribute__((target("avx2"))) inline __m256i fold_syndrome_u64(
    const __m256i lo_tab[5], const __m256i hi_tab[5], __m256i w) {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(w, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(w, 4), nib);
  __m256i acc = _mm256_setzero_si256();
  for (int b = 0; b < 5; ++b) {
    const __m256i contrib =
        _mm256_xor_si256(_mm256_shuffle_epi8(lo_tab[b], lo),
                         _mm256_shuffle_epi8(hi_tab[b], hi));
    acc = _mm256_xor_si256(
        acc, b == 0 ? contrib : _mm256_srli_epi64(contrib, 8 * b));
  }
  return _mm256_and_si256(acc, _mm256_set1_epi64x(0xFF));
}

/// Same shape over u32 lanes and four byte positions: folds each lane's
/// per-byte LUT contributions into its low byte.
__attribute__((target("avx2"))) inline __m256i fold_checks_u32(
    const __m256i lo_tab[4], const __m256i hi_tab[4], __m256i d) {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(d, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(d, 4), nib);
  __m256i acc = _mm256_setzero_si256();
  for (int b = 0; b < 4; ++b) {
    const __m256i contrib =
        _mm256_xor_si256(_mm256_shuffle_epi8(lo_tab[b], lo),
                         _mm256_shuffle_epi8(hi_tab[b], hi));
    acc = _mm256_xor_si256(
        acc, b == 0 ? contrib : _mm256_srli_epi32(contrib, 8 * b));
  }
  return _mm256_and_si256(acc, _mm256_set1_epi32(0xFF));
}

/// Pack the low 32 bits of eight u64 lanes (two vectors) into one
/// vector of eight u32 words.
__attribute__((target("avx2"))) inline __m256i pack_low32(__m256i w0,
                                                          __m256i w1) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i lo = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(w0, idx));
  const __m128i hi = _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(w1, idx));
  return _mm256_set_m128i(hi, lo);
}

__attribute__((target("avx2"))) std::size_t hsiao39_decode_avx2(
    const Hsiao39Simd& t, const std::uint64_t* raw, std::size_t count,
    std::uint32_t* data) {
  __m256i lo_tab[5], hi_tab[5];
  for (int b = 0; b < 5; ++b) {
    lo_tab[b] = bcast16(t.syn_lo[b]);
    hi_tab[b] = bcast16(t.syn_hi[b]);
  }
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i w0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i));
    const __m256i w1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i + 4));
    const __m256i suspect =
        _mm256_or_si256(fold_syndrome_u64(lo_tab, hi_tab, w0),
                        fold_syndrome_u64(lo_tab, hi_tab, w1));
    if (!_mm256_testz_si256(suspect, suspect)) break;
    // Clean Hsiao words extract as their low 32 bits verbatim.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i),
                        pack_low32(w0, w1));
  }
  return i;
}

__attribute__((target("avx2"))) std::size_t hsiao39_encode_avx2(
    const Hsiao39Simd& t, const std::uint32_t* data, std::size_t count,
    std::uint64_t* raw) {
  __m256i lo_tab[4], hi_tab[4];
  for (int b = 0; b < 4; ++b) {
    lo_tab[b] = bcast16(t.syn_lo[b]);
    hi_tab[b] = bcast16(t.syn_hi[b]);
  }
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i checks = fold_checks_u32(lo_tab, hi_tab, d);
    // Widen data and checks to u64 lanes: raw = data | checks << 32.
    const __m256i d_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(d));
    const __m256i d_hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(d, 1));
    const __m256i c_lo =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(checks));
    const __m256i c_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(checks, 1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(raw + i),
        _mm256_or_si256(d_lo, _mm256_slli_epi64(c_lo, 32)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(raw + i + 4),
        _mm256_or_si256(d_hi, _mm256_slli_epi64(c_hi, 32)));
  }
  return i;
}

__attribute__((target("avx2,bmi2"))) std::size_t hamming39_decode_avx2bmi2(
    const Hamming39Simd& t, const std::uint64_t* raw, std::size_t count,
    std::uint32_t* data) {
  __m256i lo_tab[5], hi_tab[5];
  for (int b = 0; b < 5; ++b) {
    lo_tab[b] = bcast16(t.ext_lo[b]);
    hi_tab[b] = bcast16(t.ext_hi[b]);
  }
  const __m256i all_lo = _mm256_set1_epi64x(static_cast<long long>(t.all_lo));
  const std::uint64_t dmask = t.data_mask;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i w0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i)),
        all_lo);
    const __m256i w1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i + 4)),
        all_lo);
    // Folded low byte per lane: syndrome | overall-parity << 7 — zero
    // iff the lane is a clean codeword.
    const __m256i suspect =
        _mm256_or_si256(fold_syndrome_u64(lo_tab, hi_tab, w0),
                        fold_syndrome_u64(lo_tab, hi_tab, w1));
    if (!_mm256_testz_si256(suspect, suspect)) break;
    // Clean lanes: the run gather is one pext (data_mask selects only
    // data positions, so stray bits above the code are ignored).
    for (int j = 0; j < 8; ++j)
      data[i + j] = static_cast<std::uint32_t>(_pext_u64(raw[i + j], dmask));
  }
  return i;
}

__attribute__((target("avx2,bmi2"))) std::size_t hamming39_encode_avx2bmi2(
    const Hamming39Simd& t, const std::uint32_t* data, std::size_t count,
    std::uint64_t* raw) {
  __m256i lo_tab[4], hi_tab[4];
  for (int b = 0; b < 4; ++b) {
    lo_tab[b] = bcast16(t.par_lo[b]);
    hi_tab[b] = bcast16(t.par_hi[b]);
  }
  const std::uint64_t dmask = t.data_mask;
  const std::uint64_t psel = t.parity_sel;
  alignas(32) std::uint32_t par[8];
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    // One parity byte per lane: overall parity at bit 0, check bits
    // 2^0..2^5 at bits 1..6, ready to pdep through parity_sel.
    _mm256_store_si256(reinterpret_cast<__m256i*>(par),
                       fold_checks_u32(lo_tab, hi_tab, d));
    for (int j = 0; j < 8; ++j)
      raw[i + j] =
          _pdep_u64(data[i + j], dmask) | _pdep_u64(par[j], psel);
  }
  return i;
}

}  // namespace

std::size_t hsiao39_decode_clean_span(const Hsiao39Simd& t,
                                      const std::uint64_t* raw,
                                      std::size_t count, std::uint32_t* data) {
  return hsiao39_decode_avx2(t, raw, count, data);
}

std::size_t hsiao39_encode_words(const Hsiao39Simd& t,
                                 const std::uint32_t* data, std::size_t count,
                                 std::uint64_t* raw) {
  return hsiao39_encode_avx2(t, data, count, raw);
}

std::size_t hamming39_decode_clean_span(const Hamming39Simd& t,
                                        const std::uint64_t* raw,
                                        std::size_t count,
                                        std::uint32_t* data) {
  if (!cpu_features().bmi2) return 0;
  return hamming39_decode_avx2bmi2(t, raw, count, data);
}

std::size_t hamming39_encode_words(const Hamming39Simd& t,
                                   const std::uint32_t* data,
                                   std::size_t count, std::uint64_t* raw) {
  if (!cpu_features().bmi2) return 0;
  return hamming39_encode_avx2bmi2(t, data, count, raw);
}

#else  // !NTC_X86_SIMD

std::size_t hsiao39_decode_clean_span(const Hsiao39Simd&,
                                      const std::uint64_t*, std::size_t,
                                      std::uint32_t*) {
  return 0;
}
std::size_t hsiao39_encode_words(const Hsiao39Simd&, const std::uint32_t*,
                                 std::size_t, std::uint64_t*) {
  return 0;
}
std::size_t hamming39_decode_clean_span(const Hamming39Simd&,
                                        const std::uint64_t*, std::size_t,
                                        std::uint32_t*) {
  return 0;
}
std::size_t hamming39_encode_words(const Hamming39Simd&, const std::uint32_t*,
                                   std::size_t, std::uint64_t*) {
  return 0;
}

#endif  // NTC_X86_SIMD

}  // namespace ntc::ecc
