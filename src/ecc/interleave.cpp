#include "ecc/interleave.hpp"

#include "common/assert.hpp"
#include "ecc/bitops.hpp"
#include "ecc/hamming.hpp"

namespace ntc::ecc {

InterleavedCode::InterleavedCode(std::vector<std::unique_ptr<BlockCode>> lanes)
    : lanes_(std::move(lanes)) {
  NTC_REQUIRE(!lanes_.empty());
  for (const auto& lane : lanes_) {
    NTC_REQUIRE(lane != nullptr);
    NTC_REQUIRE(lane->data_bits() == lanes_[0]->data_bits());
    NTC_REQUIRE(lane->code_bits() == lanes_[0]->code_bits());
  }
  NTC_REQUIRE(data_bits() <= 64);
  NTC_REQUIRE(code_bits() <= Bits::kCapacity);

  // Precompute the lane scatter/gather masks (see LaneMap).
  const std::size_t ways = lanes_.size();
  const std::size_t lane_k = lanes_[0]->data_bits();
  const std::size_t lane_n = lanes_[0]->code_bits();
  if (lane_n <= 64) {
    maps_.resize(ways);
    for (std::size_t lane = 0; lane < ways; ++lane) {
      LaneMap& map = maps_[lane];
      for (std::size_t i = 0; i < lane_k; ++i)
        map.data_mask |= std::uint64_t{1} << (lane + i * ways);
      // Lane codeword bits land in storage-word order, so the running
      // offset says how many lane bits earlier words consumed.
      std::size_t consumed = 0;
      for (std::size_t w = 0; w < map.code_mask.size(); ++w) {
        map.code_offset[w] = static_cast<std::uint8_t>(consumed);
        for (std::size_t i = 0; i < lane_n; ++i) {
          const std::size_t pos = lane + i * ways;
          if (pos >> 6 == w) {
            map.code_mask[w] |= std::uint64_t{1} << (pos & 63);
            ++consumed;
          }
        }
      }
    }
  }
}

std::string InterleavedCode::name() const {
  return std::to_string(lanes_.size()) + "x-" + lanes_[0]->name();
}

std::size_t InterleavedCode::data_bits() const {
  return lanes_.size() * lanes_[0]->data_bits();
}

std::size_t InterleavedCode::code_bits() const {
  return lanes_.size() * lanes_[0]->code_bits();
}

std::size_t InterleavedCode::correct_capability() const {
  return lanes_[0]->correct_capability();
}

std::size_t InterleavedCode::detect_capability() const {
  return lanes_[0]->detect_capability();
}

std::size_t InterleavedCode::burst_correct_capability() const {
  return lanes_.size() * lanes_[0]->correct_capability();
}

Bits InterleavedCode::encode(std::uint64_t data) const {
  const std::size_t ways = lanes_.size();
  const std::size_t lane_k = lanes_[0]->data_bits();
  const std::size_t lane_n = lanes_[0]->code_bits();
  Bits out;
  if (!maps_.empty()) {
    for (std::size_t lane = 0; lane < ways; ++lane) {
      const LaneMap& map = maps_[lane];
      const Bits lane_code = lanes_[lane]->encode(pext64(data, map.data_mask));
      const std::uint64_t bits = lane_code.word(0);
      for (std::size_t w = 0; w < map.code_mask.size(); ++w) {
        if (!map.code_mask[w]) continue;
        out.set_word(w, out.word(w) |
                            pdep64(bits >> map.code_offset[w], map.code_mask[w]));
      }
    }
    return out;
  }
  for (std::size_t lane = 0; lane < ways; ++lane) {
    // Lane takes data bits lane, lane+ways, lane+2*ways, ...
    std::uint64_t lane_data = 0;
    for (std::size_t i = 0; i < lane_k; ++i) {
      const std::size_t src = lane + i * ways;
      lane_data |= static_cast<std::uint64_t>((data >> src) & 1u) << i;
    }
    const Bits lane_code = lanes_[lane]->encode(lane_data);
    // Lane codeword bit i lives at interleaved position lane + i*ways.
    for (std::size_t i = 0; i < lane_n; ++i)
      out.set(lane + i * ways, lane_code.get(i));
  }
  return out;
}

DecodeResult InterleavedCode::decode(const Bits& received) const {
  const std::size_t ways = lanes_.size();
  const std::size_t lane_k = lanes_[0]->data_bits();
  const std::size_t lane_n = lanes_[0]->code_bits();
  DecodeResult result;
  result.status = DecodeStatus::Ok;
  std::uint64_t data = 0;
  for (std::size_t lane = 0; lane < ways; ++lane) {
    Bits lane_code;
    if (!maps_.empty()) {
      const LaneMap& map = maps_[lane];
      std::uint64_t bits = 0;
      for (std::size_t w = 0; w < map.code_mask.size(); ++w) {
        if (!map.code_mask[w]) continue;
        bits |= pext64(received.word(w), map.code_mask[w]) << map.code_offset[w];
      }
      lane_code.set_word(0, bits);
    } else {
      for (std::size_t i = 0; i < lane_n; ++i)
        lane_code.set(i, received.get(lane + i * ways));
    }
    const DecodeResult lane_result = lanes_[lane]->decode(lane_code);
    if (!maps_.empty()) {
      data |= pdep64(lane_result.data, maps_[lane].data_mask);
    } else {
      for (std::size_t i = 0; i < lane_k; ++i) {
        data |= static_cast<std::uint64_t>((lane_result.data >> i) & 1u)
                << (lane + i * ways);
      }
    }
    result.corrected_bits += lane_result.corrected_bits;
    if (lane_result.status == DecodeStatus::DetectedUncorrectable) {
      result.status = DecodeStatus::DetectedUncorrectable;
    } else if (lane_result.status == DecodeStatus::Corrected &&
               result.status == DecodeStatus::Ok) {
      result.status = DecodeStatus::Corrected;
    }
  }
  result.data = data;
  return result;
}

InterleavedCode interleaved_secded_4x16() {
  std::vector<std::unique_ptr<BlockCode>> lanes;
  for (int i = 0; i < 4; ++i) lanes.push_back(std::make_unique<HammingSecded>(16));
  return InterleavedCode(std::move(lanes));
}

}  // namespace ntc::ecc
