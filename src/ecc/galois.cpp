#include "ecc/galois.hpp"

#include "common/assert.hpp"

namespace ntc::ecc {

namespace {
// Standard primitive polynomials (Lin & Costello, Appendix A).
unsigned primitive_poly(unsigned m) {
  switch (m) {
    case 3: return 0x0B;    // x^3 + x + 1
    case 4: return 0x13;    // x^4 + x + 1
    case 5: return 0x25;    // x^5 + x^2 + 1
    case 6: return 0x43;    // x^6 + x + 1
    case 7: return 0x89;    // x^7 + x^3 + 1
    case 8: return 0x11D;   // x^8 + x^4 + x^3 + x^2 + 1
    case 9: return 0x211;   // x^9 + x^4 + 1
    case 10: return 0x409;  // x^10 + x^3 + 1
    case 11: return 0x805;  // x^11 + x^2 + 1
    case 12: return 0x1053; // x^12 + x^6 + x^4 + x + 1
    default: NTC_REQUIRE_MSG(false, "unsupported GF(2^m) size"); return 0;
  }
}
}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m) {
  NTC_REQUIRE(m >= 3 && m <= 12);
  const unsigned q = 1u << m;
  const unsigned poly = primitive_poly(m);
  exp_.assign(2 * q, 0);
  log_.assign(q, 0);
  unsigned x = 1;
  for (unsigned i = 0; i < q - 1; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & q) x ^= poly;
  }
  // Duplicate so exp_[i + (q-1)] == exp_[i]: avoids a modulo in mul().
  for (unsigned i = 0; i < q - 1; ++i) exp_[i + q - 1] = exp_[i];
}

unsigned GaloisField::mul(unsigned a, unsigned b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

unsigned GaloisField::div(unsigned a, unsigned b) const {
  NTC_REQUIRE(b != 0);
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

unsigned GaloisField::inv(unsigned a) const {
  NTC_REQUIRE(a != 0);
  return exp_[order() - log_[a]];
}

unsigned GaloisField::pow(unsigned a, long long e) const {
  NTC_REQUIRE(a != 0);
  const long long n = order();
  long long le = ((e % n) + n) % n;
  return exp_[static_cast<unsigned>(
      (static_cast<long long>(log_[a]) * le) % n)];
}

unsigned GaloisField::alpha_pow(long long e) const {
  const long long n = order();
  long long le = ((e % n) + n) % n;
  return exp_[static_cast<unsigned>(le)];
}

unsigned GaloisField::log(unsigned a) const {
  NTC_REQUIRE(a != 0 && a < (1u << m_));
  return log_[a];
}

namespace gf2poly {

int degree(std::uint64_t p) {
  if (p == 0) return -1;
  return 63 - __builtin_clzll(p);
}

std::uint64_t multiply(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  while (b) {
    if (b & 1) out ^= a;
    a <<= 1;
    b >>= 1;
  }
  return out;
}

std::uint64_t mod(std::uint64_t a, std::uint64_t b) {
  NTC_REQUIRE(b != 0);
  const int db = degree(b);
  int da = degree(a);
  while (da >= db) {
    a ^= b << (da - db);
    da = degree(a);
  }
  return a;
}

}  // namespace gf2poly

}  // namespace ntc::ecc
