#include "ecc/crc.hpp"

namespace ntc::ecc {

Crc32::Crc32() {
  constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected 0x04C11DB7
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    table_[i] = c;
  }
}

std::uint32_t Crc32::update(std::uint32_t state, std::uint8_t byte) const {
  return table_[(state ^ byte) & 0xFFu] ^ (state >> 8);
}

std::uint32_t Crc32::compute(std::span<const std::uint8_t> bytes) const {
  std::uint32_t state = initial();
  for (std::uint8_t b : bytes) state = update(state, b);
  return finalize(state);
}

std::uint32_t Crc32::compute_words(std::span<const std::uint32_t> words) const {
  std::uint32_t state = initial();
  for (std::uint32_t w : words) {
    state = update(state, static_cast<std::uint8_t>(w));
    state = update(state, static_cast<std::uint8_t>(w >> 8));
    state = update(state, static_cast<std::uint8_t>(w >> 16));
    state = update(state, static_cast<std::uint8_t>(w >> 24));
  }
  return finalize(state);
}

}  // namespace ntc::ecc
