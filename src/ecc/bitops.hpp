// Word-parallel bit kernels shared by the ECC codecs.
//
// Every codec hot path reduces to three primitives over 64-bit lanes:
// parity of a masked word (one popcount), parallel bit extract
// (gathering interleaved lane bits) and parallel bit deposit
// (scattering them back).  On x86 with BMI2 the extract/deposit pair
// compiles to single PEXT/PDEP instructions; the portable fallback
// walks only the set bits of the mask, which is still far cheaper than
// the per-bit get()/set() loops these kernels replace.
#pragma once

#include <bit>
#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace ntc::ecc {

/// Parity (XOR reduction) of the set bits of `x`.  The XOR fold is the
/// portable fast path: without -mpopcnt, std::popcount lowers to a
/// libgcc call that costs more than the six folds.
inline std::uint64_t parity64(std::uint64_t x) {
#if defined(__POPCNT__)
  return static_cast<std::uint64_t>(std::popcount(x)) & 1u;
#else
  x ^= x >> 32;
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return x & 1u;
#endif
}

/// Parity of a 128-bit value given as two 64-bit halves.
inline std::uint64_t parity128(std::uint64_t lo, std::uint64_t hi) {
  return parity64(lo ^ hi);
}

/// Parallel bit extract: gather the bits of `x` selected by `mask` into
/// the low bits of the result, preserving order.
inline std::uint64_t pext64(std::uint64_t x, std::uint64_t mask) {
#if defined(__BMI2__)
  return _pext_u64(x, mask);
#else
  std::uint64_t out = 0;
  std::uint64_t bit = 1;
  while (mask) {
    const std::uint64_t low = mask & (~mask + 1);
    if (x & low) out |= bit;
    bit <<= 1;
    mask ^= low;
  }
  return out;
#endif
}

/// Parallel bit deposit: scatter the low bits of `x` to the positions
/// selected by `mask`, preserving order.
inline std::uint64_t pdep64(std::uint64_t x, std::uint64_t mask) {
#if defined(__BMI2__)
  return _pdep_u64(x, mask);
#else
  std::uint64_t out = 0;
  while (mask) {
    const std::uint64_t low = mask & (~mask + 1);
    if (x & 1u) out |= low;
    x >>= 1;
    mask ^= low;
  }
  return out;
#endif
}

}  // namespace ntc::ecc
