// Hamming SECDED codes (single-error-correcting, double-error-detecting)
// for arbitrary data widths up to 64 bits.
//
// This is the paper's ECC reference scheme: the (39,32) instance
// protects each 32-bit memory word; Hsiao's variant (hsiao.hpp) is the
// implementation usually synthesised in hardware.  A triple-bit error
// aliases to a valid single-error syndrome and mis-corrects — exactly
// the failure mode that sets the SECDED minimum voltage in Table 2.
//
// The kernels are bit-parallel: data scatters into the Hamming
// positions through precomputed contiguous-run shifts (the data
// positions between consecutive parity powers of two are contiguous),
// and the syndrome is the XOR of per-byte position tables (the XOR of
// the positions of all set bits; bit j of that XOR is exactly parity
// bit j, so the encoder shares the tables).  tests/ecc_reference.hpp
// keeps the original bit-serial kernels for the exhaustive equivalence
// suite.
#pragma once

#include <array>
#include <vector>

#include "ecc/code.hpp"
#include "ecc/secded_simd.hpp"

namespace ntc::ecc {

class HammingSecded final : public BlockCode {
 public:
  /// Construct for `data_bits` in [4, 64].  (39,32) and (72,64) are the
  /// common memory configurations.
  explicit HammingSecded(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return n_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

  /// Single-uint64 lane kernels for codewords that fit one word
  /// (n <= 64, which covers the (39,32) memory configuration); wider
  /// codes fall back to the scalar loop.
  void encode_batch(const std::uint64_t* data, std::size_t count,
                    std::uint64_t* out) const override;
  void decode_batch(const std::uint64_t* raw, std::size_t count,
                    DecodeResult* out) const override;
  void encode_words(const std::uint32_t* data, std::size_t count,
                    std::uint64_t* raw) const override;
  void decode_words(const std::uint64_t* raw, std::size_t count,
                    std::uint32_t* data,
                    BatchDecodeSummary& summary) const override;

  /// Number of parity bits excluding the overall parity.
  std::size_t hamming_parity_bits() const { return r_; }

 private:
  // Codeword layout: bit 0 = overall parity; bits 1..k_+r_ are the
  // classic Hamming positions (powers of two hold parity).
  bool is_parity_position(std::size_t pos) const;

  /// A maximal run of data positions between two parity powers of two:
  /// codeword bits [pos, pos+len) hold data bits [bit, bit+len).
  struct Run {
    std::uint8_t word;   ///< codeword storage word (0 or 1)
    std::uint8_t shift;  ///< bit offset within that word
    std::uint8_t bit;    ///< first data-bit index
    std::uint64_t mask;  ///< (1 << len) - 1
  };

  std::size_t k_;  // data bits
  std::size_t r_;  // Hamming parity bits
  std::size_t n_;  // total bits = k + r + 1

  // Bit-parallel kernel state (fixed by the layout at construction).
  // syn_tab_[b][v] is the XOR of the codeword positions selected by the
  // set bits of byte b holding value v (position 0 and positions beyond
  // the codeword contribute zero).
  std::vector<Run> runs_;
  std::size_t code_bytes_ = 0;  // ceil(n_ / 8)
  std::array<std::array<std::uint8_t, 256>, 9> syn_tab_{};
  std::uint64_t all_lo_ = 0;  // positions 0..m (overall parity cover)
  std::uint64_t all_hi_ = 0;

  // Byte-LUT lanes for the n <= 64 batch kernels (encode/decode are
  // GF(2)-linear, so per-byte table XOR composition is bit-exact with
  // the run-shift kernels above).  enc_tab_[b][v]: scattered data bits
  // plus parity-bit contribution of data byte b holding v (combine
  // bytes with XOR, then add the overall parity).  gather_tab_[b][v]:
  // data bits selected by code byte b holding v.  pos_data_[p]: data
  // bits affected by flipping codeword position p (zero for parity
  // positions), patching a single-bit correction into a gathered word.
  std::size_t data_bytes_ = 0;  // ceil(k_ / 8)
  std::array<std::array<std::uint64_t, 256>, 8> enc_tab_{};
  std::array<std::array<std::uint64_t, 256>, 8> gather_tab_{};
  std::array<std::uint64_t, 64> pos_data_{};

  // Fused decode table for k <= 56: gather_tab_ entry with the syn_tab_
  // entry packed into bits 56..63 (the syndrome is at most 6 bits, data
  // occupies the low k_ bits, so the fields cannot collide).  One
  // lookup per code byte instead of two — the decode_words hot lane.
  bool packed_dec_ = false;
  std::array<std::array<std::uint64_t, 256>, 8> dec_tab_{};

  // AVX2 nibble-LUT lanes for the (39,32) instance; the word kernels
  // dispatch on simd_ok_ && simd_avx2_active() and keep the scalar
  // loops above as the oracle (see ecc/secded_simd.hpp).
  Hamming39Simd simd_{};
  bool simd_ok_ = false;
};

/// The paper's memory-word configuration.
inline HammingSecded secded_39_32() { return HammingSecded(32); }

}  // namespace ntc::ecc
