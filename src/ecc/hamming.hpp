// Hamming SECDED codes (single-error-correcting, double-error-detecting)
// for arbitrary data widths up to 64 bits.
//
// This is the paper's ECC reference scheme: the (39,32) instance
// protects each 32-bit memory word; Hsiao's variant (hsiao.hpp) is the
// implementation usually synthesised in hardware.  A triple-bit error
// aliases to a valid single-error syndrome and mis-corrects — exactly
// the failure mode that sets the SECDED minimum voltage in Table 2.
#pragma once

#include "ecc/code.hpp"

namespace ntc::ecc {

class HammingSecded final : public BlockCode {
 public:
  /// Construct for `data_bits` in [4, 64].  (39,32) and (72,64) are the
  /// common memory configurations.
  explicit HammingSecded(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return n_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

  /// Number of parity bits excluding the overall parity.
  std::size_t hamming_parity_bits() const { return r_; }

 private:
  // Codeword layout: bit 0 = overall parity; bits 1..k_+r_ are the
  // classic Hamming positions (powers of two hold parity).
  bool is_parity_position(std::size_t pos) const;

  std::size_t k_;  // data bits
  std::size_t r_;  // Hamming parity bits
  std::size_t n_;  // total bits = k + r + 1
};

/// The paper's memory-word configuration.
inline HammingSecded secded_39_32() { return HammingSecded(32); }

}  // namespace ntc::ecc
