// Hsiao odd-weight-column SECDED code.
//
// Functionally equivalent to Hamming SECDED but with a parity-check
// matrix whose columns all have odd weight (minimum 3 for data bits),
// which balances the XOR trees and makes double-error detection a
// simple even-weight-syndrome check — the form actually synthesised in
// memory controllers (used by the codec-overhead model and the codec
// microbenchmarks).
//
// Encode/syndrome/decode are bit-parallel: the encoder and the
// syndrome computation XOR precomputed per-byte column contributions
// (one 256-entry table per codeword byte, so a (39,32) syndrome is
// five L1 loads), and the decoder maps the syndrome to the flip
// position through a 256-entry LUT instead of scanning the H columns.
// tests/ecc_reference.hpp keeps the original bit-serial kernels and
// the equivalence suite proves the two bit-exact over every 0/1/2-bit
// error pattern.
#pragma once

#include <array>
#include <vector>

#include "ecc/code.hpp"
#include "ecc/secded_simd.hpp"

namespace ntc::ecc {

class HsiaoSecded final : public BlockCode {
 public:
  /// Data widths up to 64 (needs C(r,3)+C(r,5)+... >= data_bits).
  explicit HsiaoSecded(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return k_ + r_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

  /// Single-uint64 lane kernels for codewords that fit one word
  /// (k + r <= 64); wider codes fall back to the scalar loop.
  void encode_batch(const std::uint64_t* data, std::size_t count,
                    std::uint64_t* out) const override;
  void decode_batch(const std::uint64_t* raw, std::size_t count,
                    DecodeResult* out) const override;
  void encode_words(const std::uint32_t* data, std::size_t count,
                    std::uint64_t* raw) const override;
  void decode_words(const std::uint64_t* raw, std::size_t count,
                    std::uint32_t* data,
                    BatchDecodeSummary& summary) const override;

  /// Total number of ones in H over the data columns — the XOR-tree
  /// size, which the codec energy model consumes.
  std::size_t h_matrix_ones() const;

  /// H column (check-bit mask) protecting data bit `i`.
  std::uint8_t column(std::size_t i) const { return column_[i]; }

 private:
  static constexpr std::uint8_t kNoFlip = 0xFF;

  std::uint8_t syndrome_of(const Bits& word) const;

  std::size_t k_;
  std::size_t r_;
  std::vector<std::uint8_t> column_;  ///< H column per data bit (bitmask of checks)

  // Bit-parallel kernel state (derived from column_ at construction).
  // syn_tab_[b][v] is the XOR of the H columns selected by the set bits
  // of codeword byte b holding value v (check-bit columns are the unit
  // vectors); positions beyond the codeword contribute zero, so stray
  // high bits in a received word are ignored without masking.
  std::uint64_t data_mask_ = 0;               ///< low k_ bits
  std::size_t code_bytes_ = 0;                ///< ceil((k_+r_) / 8)
  std::size_t data_bytes_ = 0;                ///< ceil(k_ / 8)
  std::array<std::array<std::uint8_t, 256>, 9> syn_tab_{};
  std::array<std::uint8_t, 256> flip_lut_{};  ///< syndrome -> codeword flip position

  // AVX2 nibble-LUT lanes for the (39,32) instance; the word kernels
  // dispatch on simd_ok_ && simd_avx2_active() and keep the scalar
  // loops above as the oracle (see ecc/secded_simd.hpp).
  Hsiao39Simd simd_{};
  bool simd_ok_ = false;
};

}  // namespace ntc::ecc
