// Hsiao odd-weight-column SECDED code.
//
// Functionally equivalent to Hamming SECDED but with a parity-check
// matrix whose columns all have odd weight (minimum 3 for data bits),
// which balances the XOR trees and makes double-error detection a
// simple even-weight-syndrome check — the form actually synthesised in
// memory controllers (used by the codec-overhead model and the codec
// microbenchmarks).
#pragma once

#include <vector>

#include "ecc/code.hpp"

namespace ntc::ecc {

class HsiaoSecded final : public BlockCode {
 public:
  /// Data widths up to 64 (needs C(r,3)+C(r,5)+... >= data_bits).
  explicit HsiaoSecded(std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return k_ + r_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

  /// Total number of ones in H over the data columns — the XOR-tree
  /// size, which the codec energy model consumes.
  std::size_t h_matrix_ones() const;

 private:
  std::uint8_t syndrome_of(const Bits& word) const;

  std::size_t k_;
  std::size_t r_;
  std::vector<std::uint8_t> column_;  ///< H column per data bit (bitmask of checks)
};

}  // namespace ntc::ecc
