// Binary BCH codes over GF(2^m) with Berlekamp-Massey decoding.
//
// OCEAN stores checkpoint words in a buffer "with quadruple error
// correction capability" so that only a quintuple-bit error defeats the
// scheme.  The shortened BCH(t=4) instance over GF(2^6) provides
// exactly that: t = 4 guaranteed correction, failure only at >= 5
// errors.  t is a constructor parameter (1..5) so the mitigation
// ablations can sweep correction strength.
#pragma once

#include <vector>

#include "ecc/code.hpp"
#include "ecc/galois.hpp"

namespace ntc::ecc {

class BchCode final : public BlockCode {
 public:
  /// Shortened binary BCH over GF(2^m): full length n = 2^m - 1,
  /// shortened to carry `data_bits` (<= k of the full code, <= 64).
  BchCode(unsigned m, unsigned t, std::size_t data_bits);

  std::string name() const override;
  std::size_t data_bits() const override { return data_bits_; }
  std::size_t code_bits() const override { return data_bits_ + parity_bits_; }
  std::size_t correct_capability() const override { return t_; }
  std::size_t detect_capability() const override { return t_; }

  Bits encode(std::uint64_t data) const override;
  DecodeResult decode(const Bits& received) const override;

  std::size_t parity_bits() const { return parity_bits_; }
  /// Generator polynomial (GF(2), LSB-first).
  std::uint64_t generator() const { return generator_; }

  /// Syndromes S_1..S_2t of a received word (index 0 unused) — the
  /// values Berlekamp-Massey consumes.  Computed word-parallel: only
  /// the set bits of the codeword are visited, each adding a
  /// precomputed alpha-power row.  Exposed so the equivalence suite can
  /// check it against the per-position reference loop.
  std::vector<unsigned> syndromes(const Bits& received) const;

 private:
  std::uint64_t parity_of(std::uint64_t data) const;

  GaloisField field_;
  unsigned t_;
  std::size_t data_bits_;
  std::size_t parity_bits_;
  std::uint64_t generator_ = 0;

  /// syndrome_rows_[j * 2t + (i-1)] = alpha^(i*j): position j's
  /// contribution to syndrome S_i.
  std::vector<unsigned> syndrome_rows_;
  /// CRC-style byte table for the systematic parity (parity_bits_ >= 8
  /// only): remainder update for eight data bits at once.
  std::vector<std::uint64_t> encode_table_;
};

/// The OCEAN protected-buffer code: 32 data bits, t = 4, 24 parity bits
/// (shortened BCH(63,39) -> (56,32)).
BchCode ocean_buffer_code();

}  // namespace ntc::ecc
