#include "ecc/bch.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace ntc::ecc {

namespace {

/// Minimal polynomial of alpha^i over GF(2): product of (x - alpha^j)
/// over the cyclotomic coset of i.
std::uint64_t minimal_polynomial(const GaloisField& field, unsigned i) {
  // Cyclotomic coset {i, 2i, 4i, ...} mod (2^m - 1).
  std::set<unsigned> coset;
  unsigned j = i % field.order();
  while (!coset.count(j)) {
    coset.insert(j);
    j = (j * 2) % field.order();
  }
  // Multiply (x + alpha^j) over the coset, with coefficients in GF(2^m);
  // the result is guaranteed to have GF(2) coefficients.
  std::vector<unsigned> poly{1};  // constant 1, ascending powers
  for (unsigned c : coset) {
    const unsigned root = field.alpha_pow(c);
    std::vector<unsigned> next(poly.size() + 1, 0);
    for (std::size_t d = 0; d < poly.size(); ++d) {
      next[d + 1] ^= poly[d];                   // x * poly
      next[d] ^= field.mul(poly[d], root);      // root * poly
    }
    poly = std::move(next);
  }
  std::uint64_t packed = 0;
  for (std::size_t d = 0; d < poly.size(); ++d) {
    NTC_REQUIRE_MSG(poly[d] <= 1, "minimal polynomial not binary");
    packed |= static_cast<std::uint64_t>(poly[d]) << d;
  }
  return packed;
}

std::uint64_t lcm_gf2(std::uint64_t a, std::uint64_t b) {
  // gcd via Euclid over GF(2)[x], then a*b/gcd.
  std::uint64_t x = a, y = b;
  while (y) {
    std::uint64_t r = gf2poly::mod(x, y);
    x = y;
    y = r;
  }
  // Divide a by gcd: simple long division.
  std::uint64_t quotient = 0, rem = a;
  const int dg = gf2poly::degree(x);
  while (gf2poly::degree(rem) >= dg && rem) {
    const int shift = gf2poly::degree(rem) - dg;
    quotient |= std::uint64_t{1} << shift;
    rem ^= x << shift;
  }
  NTC_REQUIRE(rem == 0);
  return gf2poly::multiply(quotient, b);
}

}  // namespace

BchCode::BchCode(unsigned m, unsigned t, std::size_t data_bits)
    : field_(m), t_(t), data_bits_(data_bits) {
  NTC_REQUIRE(t >= 1 && t <= 5);
  NTC_REQUIRE(data_bits >= 1 && data_bits <= 64);
  // Generator = lcm of the minimal polynomials of alpha^(2j-1).
  generator_ = 1;
  for (unsigned j = 1; j <= 2 * t - 1; j += 2)
    generator_ = lcm_gf2(generator_, minimal_polynomial(field_, j));
  parity_bits_ = static_cast<std::size_t>(gf2poly::degree(generator_));
  const std::size_t n_full = field_.order();
  NTC_REQUIRE_MSG(data_bits_ + parity_bits_ <= n_full,
                  "data does not fit the BCH code; increase m");

  // Per-position syndrome contributions: visiting only the set bits of
  // a received word and XORing these rows replaces 2t * n alpha_pow
  // evaluations per decode.
  const std::size_t n_used = code_bits();
  syndrome_rows_.resize(n_used * 2 * t_);
  for (std::size_t j = 0; j < n_used; ++j)
    for (unsigned i = 1; i <= 2 * t_; ++i)
      syndrome_rows_[j * 2 * t_ + i - 1] =
          field_.alpha_pow(static_cast<long long>(i) * static_cast<long long>(j));

  // Byte-wise remainder table for the systematic encoder (the standard
  // CRC table construction over g(x)); needs r >= 8 so a whole input
  // byte fits above the remainder top.
  if (parity_bits_ >= 8) {
    const std::uint64_t mask = (std::uint64_t{1} << parity_bits_) - 1;
    encode_table_.resize(256);
    for (unsigned byte = 0; byte < 256; ++byte) {
      std::uint64_t rem = static_cast<std::uint64_t>(byte)
                          << (parity_bits_ - 8);
      for (int step = 0; step < 8; ++step) {
        const std::uint64_t top = (rem >> (parity_bits_ - 1)) & 1u;
        rem = (rem << 1) & mask;
        if (top) rem ^= generator_ & mask;
      }
      encode_table_[byte] = rem;
    }
  }
}

std::string BchCode::name() const {
  return "BCH(" + std::to_string(code_bits()) + "," +
         std::to_string(data_bits_) + ",t=" + std::to_string(t_) + ")";
}

std::uint64_t BchCode::parity_of(std::uint64_t data) const {
  // Systematic encoding: parity = (data(x) * x^r) mod g(x).
  // data_bits_ + parity_bits_ can exceed 64, so shift via repeated
  // modular reduction: process data MSB-first accumulating the CRC-like
  // remainder.
  const std::uint64_t mask = (std::uint64_t{1} << parity_bits_) - 1;
  std::uint64_t rem = 0;
  std::size_t i = data_bits_;
  // Leading bits that do not fill a whole byte go through the bit-serial
  // step; the byte table then consumes eight bits per iteration.
  std::size_t head = encode_table_.empty() ? data_bits_ : data_bits_ % 8;
  while (head-- > 0) {
    --i;
    const std::uint64_t in_bit = (data >> i) & 1u;
    const std::uint64_t top = (rem >> (parity_bits_ - 1)) & 1u;
    rem = (rem << 1) & mask;
    if (top ^ in_bit) rem ^= generator_ & mask;
  }
  while (i > 0) {
    i -= 8;
    const std::uint64_t byte = (data >> i) & 0xFFu;
    rem = ((rem << 8) & mask) ^
          encode_table_[((rem >> (parity_bits_ - 8)) ^ byte) & 0xFFu];
  }
  return rem;
}

Bits BchCode::encode(std::uint64_t data) const {
  if (data_bits_ < 64) NTC_REQUIRE((data >> data_bits_) == 0);
  Bits code;
  // Layout: parity at [0, r) (low-order codeword coefficients), data at
  // [r, r + k'): codeword(x) = x^r * data(x) + parity(x).
  const std::uint64_t parity = parity_of(data);
  for (std::size_t i = 0; i < parity_bits_; ++i)
    code.set(i, (parity >> i) & 1u);
  for (std::size_t i = 0; i < data_bits_; ++i)
    code.set(parity_bits_ + i, (data >> i) & 1u);
  return code;
}

std::vector<unsigned> BchCode::syndromes(const Bits& received) const {
  const std::size_t n_used = code_bits();
  // Syndromes S_i = r(alpha^i), i = 1..2t: visit only the set codeword
  // bits word-parallel and accumulate their precomputed rows.
  std::vector<unsigned> syndrome(2 * t_ + 1, 0);
  const std::size_t words = (n_used + 63) / 64;
  for (std::size_t wi = 0; wi < words; ++wi) {
    const std::size_t width = std::min<std::size_t>(64, n_used - wi * 64);
    std::uint64_t w = received.word(wi) & (~std::uint64_t{0} >> (64 - width));
    while (w) {
      const std::size_t j = wi * 64 +
                            static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const unsigned* row = &syndrome_rows_[j * 2 * t_];
      for (unsigned i = 1; i <= 2 * t_; ++i) syndrome[i] ^= row[i - 1];
    }
  }
  return syndrome;
}

DecodeResult BchCode::decode(const Bits& received) const {
  const std::size_t n_used = code_bits();
  const std::vector<unsigned> syndrome = syndromes(received);
  bool all_zero = true;
  for (unsigned i = 1; i <= 2 * t_; ++i)
    if (syndrome[i]) all_zero = false;

  auto extract_data = [&](const Bits& word) {
    return word.extract(parity_bits_, data_bits_);
  };

  DecodeResult result;
  if (all_zero) {
    result.status = DecodeStatus::Ok;
    result.data = extract_data(received);
    return result;
  }

  // Berlekamp-Massey: find the error locator sigma(x).
  std::vector<unsigned> sigma{1}, prev_sigma{1};
  unsigned prev_discrepancy = 1;
  int l = 0, shift = 1;
  for (unsigned step = 1; step <= 2 * t_; ++step) {
    unsigned d = syndrome[step];
    for (int i = 1; i <= l; ++i) {
      if (static_cast<std::size_t>(i) < sigma.size())
        d ^= field_.mul(sigma[static_cast<std::size_t>(i)], syndrome[step - i]);
    }
    if (d == 0) {
      ++shift;
    } else if (2 * l < static_cast<int>(step)) {
      std::vector<unsigned> save = sigma;
      const unsigned scale = field_.div(d, prev_discrepancy);
      sigma.resize(std::max(sigma.size(), prev_sigma.size() + shift), 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i)
        sigma[i + shift] ^= field_.mul(scale, prev_sigma[i]);
      l = static_cast<int>(step) - l;
      prev_sigma = std::move(save);
      prev_discrepancy = d;
      shift = 1;
    } else {
      const unsigned scale = field_.div(d, prev_discrepancy);
      sigma.resize(std::max(sigma.size(), prev_sigma.size() + shift), 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i)
        sigma[i + shift] ^= field_.mul(scale, prev_sigma[i]);
      ++shift;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int errors = static_cast<int>(sigma.size()) - 1;
  if (errors <= 0 || errors > static_cast<int>(t_)) {
    result.status = DecodeStatus::DetectedUncorrectable;
    result.data = extract_data(received);
    return result;
  }

  // Chien search over the *used* positions (shortened code: an error
  // located beyond n_used means the decode is invalid).  Incremental:
  // term c starts at sigma_c and is multiplied by alpha^-c per step, so
  // each candidate position costs |sigma| table multiplies.
  Bits corrected = received;
  int found = 0;
  std::vector<unsigned> term(sigma.size()), step(sigma.size());
  for (std::size_t c = 0; c < sigma.size(); ++c) {
    term[c] = sigma[c];
    step[c] = field_.alpha_pow(-static_cast<long long>(c));
  }
  for (std::size_t j = 0; j < static_cast<std::size_t>(field_.order()); ++j) {
    // sigma(alpha^-j) == 0  <=>  error at position j.
    unsigned value = 0;
    for (std::size_t c = 0; c < sigma.size(); ++c) {
      value ^= term[c];
      term[c] = field_.mul(term[c], step[c]);
    }
    if (value == 0) {
      if (j >= n_used) {
        result.status = DecodeStatus::DetectedUncorrectable;
        result.data = extract_data(received);
        return result;
      }
      corrected.flip(j);
      ++found;
    }
  }
  if (found != errors) {
    result.status = DecodeStatus::DetectedUncorrectable;
    result.data = extract_data(received);
    return result;
  }
  result.status = DecodeStatus::Corrected;
  result.corrected_bits = found;
  result.data = extract_data(corrected);
  return result;
}

BchCode ocean_buffer_code() { return BchCode(6, 4, 32); }

}  // namespace ntc::ecc
