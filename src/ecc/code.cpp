#include "ecc/code.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntc::ecc {

void BlockCode::encode_batch(const std::uint64_t* data, std::size_t count,
                             std::uint64_t* out) const {
  const std::size_t n = code_bits();
  NTC_REQUIRE(n >= 1 && n <= 64);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = encode(data[i]).extract(0, n);
}

void BlockCode::decode_batch(const std::uint64_t* raw, std::size_t count,
                             DecodeResult* out) const {
  const std::size_t n = code_bits();
  NTC_REQUIRE(n >= 1 && n <= 64);
  const std::uint64_t mask = ~std::uint64_t{0} >> (64 - n);
  for (std::size_t i = 0; i < count; ++i) {
    Bits word;
    word.set_word(0, raw[i] & mask);
    out[i] = decode(word);
  }
}

namespace {
/// Scratch chunk for the word-direct defaults (matches the burst-layer
/// chunk so a default-path code sees the same working-set size).
constexpr std::size_t kWordChunk = 256;
}  // namespace

void BlockCode::encode_words(const std::uint32_t* data, std::size_t count,
                             std::uint64_t* raw) const {
  std::uint64_t widened[kWordChunk];
  for (std::size_t off = 0; off < count; off += kWordChunk) {
    const std::size_t m = std::min(count - off, kWordChunk);
    for (std::size_t i = 0; i < m; ++i) widened[i] = data[off + i];
    encode_batch(widened, m, raw + off);
  }
}

void BlockCode::decode_words(const std::uint64_t* raw, std::size_t count,
                             std::uint32_t* data,
                             BatchDecodeSummary& summary) const {
  summary = BatchDecodeSummary{};
  summary.first_uncorrectable = count;
  DecodeResult results[kWordChunk];
  for (std::size_t off = 0; off < count; off += kWordChunk) {
    const std::size_t m = std::min(count - off, kWordChunk);
    decode_batch(raw + off, m, results);
    for (std::size_t i = 0; i < m; ++i) {
      const DecodeResult& r = results[i];
      data[off + i] = static_cast<std::uint32_t>(r.data);
      switch (r.status) {
        case DecodeStatus::Ok:
          break;
        case DecodeStatus::Corrected:
          ++summary.corrected_words;
          summary.corrected_bits += static_cast<std::uint64_t>(r.corrected_bits);
          break;
        case DecodeStatus::DetectedUncorrectable:
          if (summary.uncorrectable_words == 0)
            summary.first_uncorrectable = off + i;
          ++summary.uncorrectable_words;
          break;
      }
    }
  }
}

}  // namespace ntc::ecc
