// Fixed-capacity bit vector for codewords (up to 256 bits).
//
// All codes in this library describe codewords as Bits with LSB-first
// indexing: bit 0 is the first transmitted/stored bit.  The capacity
// covers the largest codeword in use (4-way interleaved SECDED(39,32) =
// 156 bits) with headroom.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace ntc::ecc {

class Bits {
 public:
  static constexpr std::size_t kCapacity = 256;

  constexpr Bits() = default;

  static constexpr Bits from_u64(std::uint64_t value) {
    Bits b;
    b.words_[0] = value;
    return b;
  }

  bool get(std::size_t i) const {
    NTC_REQUIRE(i < kCapacity);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool value) {
    NTC_REQUIRE(i < kCapacity);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    NTC_REQUIRE(i < kCapacity);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  /// Low 64 bits (the data word for codes with <= 64 data bits).
  std::uint64_t to_u64() const { return words_[0]; }

  friend Bits operator^(Bits a, const Bits& b) {
    for (std::size_t i = 0; i < a.words_.size(); ++i) a.words_[i] ^= b.words_[i];
    return a;
  }

  friend bool operator==(const Bits&, const Bits&) = default;

 private:
  std::array<std::uint64_t, kCapacity / 64> words_{};
};

}  // namespace ntc::ecc
