// Fixed-capacity bit vector for codewords (up to 256 bits).
//
// All codes in this library describe codewords as Bits with LSB-first
// indexing: bit 0 is the first transmitted/stored bit.  The capacity
// covers the largest codeword in use (4-way interleaved SECDED(39,32) =
// 156 bits) with headroom.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace ntc::ecc {

class Bits {
 public:
  static constexpr std::size_t kCapacity = 256;

  constexpr Bits() = default;

  static constexpr Bits from_u64(std::uint64_t value) {
    Bits b;
    b.words_[0] = value;
    return b;
  }

  bool get(std::size_t i) const {
    NTC_REQUIRE(i < kCapacity);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool value) {
    NTC_REQUIRE(i < kCapacity);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    NTC_REQUIRE(i < kCapacity);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Number of 64-bit storage words.
  static constexpr std::size_t word_count() { return kCapacity / 64; }

  /// Raw 64-bit storage word `w` (bits [64w, 64w+64)).
  std::uint64_t word(std::size_t w) const {
    NTC_REQUIRE(w < word_count());
    return words_[w];
  }

  /// Overwrite storage word `w` wholesale (bulk codeword assembly).
  void set_word(std::size_t w, std::uint64_t value) {
    NTC_REQUIRE(w < word_count());
    words_[w] = value;
  }

  /// Extract bits [pos, pos + count) as a uint64, LSB-first.  Branch
  /// free: the double shift keeps the cross-word funnel defined for
  /// every alignment, and the trailing mask discards the self-aliased
  /// high word in the pos >= 192 case.
  std::uint64_t extract(std::size_t pos, std::size_t count) const {
    NTC_REQUIRE(count >= 1 && count <= 64);
    NTC_REQUIRE(pos + count <= kCapacity);
    const std::size_t w = pos >> 6;
    const std::size_t sh = pos & 63;
    const std::size_t hi_idx = (w + 1 < word_count()) ? w + 1 : w;
    const std::uint64_t lo = words_[w] >> sh;
    const std::uint64_t hi = (words_[hi_idx] << 1) << (63 - sh);
    return (lo | hi) & (~std::uint64_t{0} >> (64 - count));
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  /// Low 64 bits (the data word for codes with <= 64 data bits).
  std::uint64_t to_u64() const { return words_[0]; }

  friend Bits operator^(Bits a, const Bits& b) {
    for (std::size_t i = 0; i < a.words_.size(); ++i) a.words_[i] ^= b.words_[i];
    return a;
  }

  friend bool operator==(const Bits&, const Bits&) = default;

 private:
  std::array<std::uint64_t, kCapacity / 64> words_{};
};

}  // namespace ntc::ecc
