// Energy/area overhead model of ECC codec hardware.
//
// The paper's Section V explicitly charges the SECDED scheme for
// reading/writing 39 bits instead of 32 *plus* the energy to generate
// the code word, check the syndrome, and correct.  This model estimates
// those costs from the code structure (XOR-tree sizes) and the
// technology node's gate energy, so every mitigation comparison carries
// its codec overhead consistently.
#pragma once

#include "common/units.hpp"
#include "ecc/code.hpp"
#include "tech/node.hpp"

namespace ntc::ecc {

struct CodecOverhead {
  double encode_gate_equiv = 0.0;  ///< XOR2-equivalents in the encoder
  double decode_gate_equiv = 0.0;  ///< XOR2-equivalents in the decoder
  double storage_overhead = 1.0;   ///< code_bits / data_bits

  /// Switching energy of one encode / decode operation at `vdd`
  /// (activity ~0.5 across the trees).
  Joule encode_energy(Volt vdd) const;
  Joule decode_energy(Volt vdd) const;

  /// Static power of the codec logic.
  Watt leakage(Volt vdd) const;

  /// Per-gate energy/leakage coefficients (from the node).
  double gate_cap_f = 1.2e-15;
  double gate_leak_a_per_gate = 2.0e-12;
};

/// Estimate the overhead of a code on the given node.  Gate counts are
/// derived from the code parameters: parity trees of (n-k) x ~k/2 XORs
/// for the linear codes; BCH decoders add the syndrome/BM/Chien datapath
/// (dominant term, estimated from t and m).
CodecOverhead estimate_codec_overhead(const BlockCode& code,
                                      const tech::TechnologyNode& node);

}  // namespace ntc::ecc
