// AVX2 lanes for the (39,32) SECDED codecs.
//
// Both codecs' scalar word kernels are per-byte table XORs; these
// vector variants evaluate the same GF(2)-linear tables with vpshufb
// nibble LUTs, eight codewords per iteration (two 4 x u64 vectors).  A
// byte table splits exactly into two 16-entry nibble tables because the
// syndrome is XOR-linear in the bits: tab[v] == tab[v & 0x0F] ^
// tab[v & 0xF0].  The tables below are precomputed by the codec
// constructors for the k == 32 instances; other widths keep the scalar
// kernels unconditionally (as does BCH, whose Berlekamp-Massey decode
// is not table-linear — see DESIGN.md on the dispatch layer).
//
// Decode splits responsibilities: the vector kernel handles the
// all-clean fast path (overwhelmingly common on memory reads) and
// *stops* at the first 8-word block containing any suspect lane, which
// the caller re-runs through the scalar per-word classifier — so
// counters, first_uncorrectable ordering, and corrections are the
// scalar path's by construction, and the scalar twin remains the oracle
// for the whole path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ntc::ecc {

/// Vector tables for HsiaoSecded(32) — systematic layout, data in the
/// low 32 bits, checks at [32, 39).  The five decode byte positions
/// reuse the scalar syn_tab_; encode folds positions 0..3 only.
struct Hsiao39Simd {
  std::uint8_t syn_lo[5][16];
  std::uint8_t syn_hi[5][16];
};

/// Vector tables for HammingSecded(32) — overall parity at bit 0,
/// check bits at power-of-two positions, data in five contiguous runs.
/// The non-systematic layout makes pure-AVX2 gather/scatter lose to the
/// scalar LUT lane, so these kernels additionally require BMI2: the
/// run permutation collapses to one pext/pdep against `data_mask`.
struct Hamming39Simd {
  // Decode tables: per-byte syndrome with the byte's parity packed into
  // bit 7.  Folding the five masked contributions into each lane's low
  // byte makes "clean" a single zero test: syndrome == 0 AND overall
  // parity even.
  std::uint8_t ext_lo[5][16];
  std::uint8_t ext_hi[5][16];
  // Encode tables: the full check state of a codeword is linear in the
  // data, so each data nibble contributes a 7-bit "parity byte" — bit 0
  // the overall-parity contribution (pre-deposit word plus its induced
  // check bits), bits 1..6 the check bits for positions 2^0..2^5 — laid
  // out to pdep straight through `parity_sel`.
  std::uint8_t par_lo[4][16];
  std::uint8_t par_hi[4][16];
  std::uint64_t all_lo = 0;      ///< valid code-bit mask (bits 0..38)
  std::uint64_t data_mask = 0;   ///< data positions (pext/pdep operand)
  std::uint64_t parity_sel = 0;  ///< position 0 plus the 2^j check bits
};

/// Decode the longest all-clean prefix (a multiple of 8 words): writes
/// the gathered data words and returns the count consumed.  Stops at
/// the first 8-word block containing a suspect lane and before any
/// sub-block tail; the caller finishes those words scalar.  Returns 0
/// on non-x86 builds.
std::size_t hsiao39_decode_clean_span(const Hsiao39Simd& t,
                                      const std::uint64_t* raw,
                                      std::size_t count, std::uint32_t* data);
std::size_t hamming39_decode_clean_span(const Hamming39Simd& t,
                                        const std::uint64_t* raw,
                                        std::size_t count,
                                        std::uint32_t* data);

/// Encode `count & ~7` words and return that count; the caller finishes
/// the tail scalar.  Returns 0 on non-x86 builds.
std::size_t hsiao39_encode_words(const Hsiao39Simd& t,
                                 const std::uint32_t* data, std::size_t count,
                                 std::uint64_t* raw);
std::size_t hamming39_encode_words(const Hamming39Simd& t,
                                   const std::uint32_t* data,
                                   std::size_t count, std::uint64_t* raw);

}  // namespace ntc::ecc
