#include "multitile/arbiter.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::multitile {

Arbiter::Arbiter(ArbiterConfig config) : config_(config) {
  NTC_REQUIRE(config_.tiles >= 1 && config_.banks >= 1);
  pending_.resize(config_.tiles);
  epoch_compute_.assign(config_.tiles, 0);
  tile_stall_.assign(config_.tiles, 0);
  bank_busy_.assign(config_.banks, 0);
}

void Arbiter::log_access(std::uint32_t tile, std::uint32_t bank,
                         std::uint32_t beats) {
  NTC_REQUIRE(tile < config_.tiles && bank < config_.banks);
  if (beats == 0) return;
  std::vector<Request>& queue = pending_[tile];
  if (!queue.empty() && queue.back().bank == bank) {
    queue.back().beats += beats;
    return;
  }
  queue.push_back(Request{bank, beats});
}

void Arbiter::add_compute(std::uint32_t tile, std::uint64_t cycles) {
  NTC_REQUIRE(tile < config_.tiles);
  epoch_compute_[tile] += cycles;
}

std::uint64_t Arbiter::pending_compute_max() const {
  std::uint64_t max = 0;
  for (const std::uint64_t c : epoch_compute_) max = std::max(max, c);
  return max;
}

std::uint64_t Arbiter::end_epoch() {
  const std::uint32_t tiles = config_.tiles;
  // Per-tile replay clocks and stall totals, per-bank free times.
  std::vector<std::size_t> next(tiles, 0);
  std::vector<std::uint64_t> clock(tiles, 0);
  std::vector<std::uint64_t> stall(tiles, 0);
  std::vector<std::uint64_t> free_at(config_.banks, 0);
  std::size_t remaining = 0;
  for (const auto& queue : pending_) remaining += queue.size();

  while (remaining > 0) {
    // Grant the tile whose next request is issued earliest; ties go to
    // the configured policy (rotating pointer or lowest tile id).
    std::uint32_t chosen = tiles;
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < tiles; ++i) {
      const std::uint32_t t = config_.policy == ArbitrationPolicy::RoundRobin
                                  ? (rr_ + i) % tiles
                                  : i;
      if (next[t] >= pending_[t].size()) continue;
      if (clock[t] < best) {
        best = clock[t];
        chosen = t;
      }
    }
    const Request& rq = pending_[chosen][next[chosen]++];
    --remaining;
    const std::uint64_t start = std::max(clock[chosen], free_at[rq.bank]);
    stall[chosen] += start - clock[chosen];
    const std::uint64_t service = rq.beats + config_.arbitration_latency;
    clock[chosen] = start + service;
    free_at[rq.bank] = clock[chosen];
    bank_busy_[rq.bank] += service;
    ++stats_.requests;
    stats_.beats += rq.beats;
    if (config_.policy == ArbitrationPolicy::RoundRobin)
      rr_ = (chosen + 1) % tiles;
  }

  std::uint64_t epoch_max = 0;
  std::uint64_t epoch_stall = 0;
  for (std::uint32_t t = 0; t < tiles; ++t) {
    epoch_max = std::max(epoch_max, epoch_compute_[t] + stall[t]);
    epoch_stall += stall[t];
    tile_stall_[t] += stall[t];
    epoch_compute_[t] = 0;
    pending_[t].clear();
  }
  ++stats_.epochs;
  stats_.contention_cycles += epoch_stall;
  stats_.makespan_cycles += epoch_max;
  NTC_TELEM_EVENT(telemetry::EventKind::Span, "arbiter_epoch", epoch_max,
                  epoch_stall);
  NTC_TELEM_COUNT("ntc_arbiter_epochs_total", 1);
  if (epoch_stall > 0)
    NTC_TELEM_COUNT("ntc_arbiter_contention_cycles_total", epoch_stall);
  return epoch_max;
}

void Arbiter::reset() {
  for (auto& queue : pending_) queue.clear();
  std::fill(epoch_compute_.begin(), epoch_compute_.end(), 0);
  std::fill(tile_stall_.begin(), tile_stall_.end(), 0);
  std::fill(bank_busy_.begin(), bank_busy_.end(), 0);
  rr_ = 0;
  stats_ = ArbiterStats{};
}

}  // namespace ntc::multitile
