// Shared banked scratchpad with per-region mitigation.
//
// The logical word space splits into equal contiguous regions, one per
// tile; a region is encoded with its owning tile's scheme (None stores
// raw 32-bit words, SECDED and OCEAN store (39,32) codewords — OCEAN's
// scratchpad keeps the ECC module exactly as the classic platform
// does).  The protection domain follows the ADDRESS, not the accessor:
// any tile reading a SECDED region decodes codewords, so cross-region
// traffic (the sharded FFT's gather phases) is always well-formed.
// Banks store max(region codeword widths) bits; codeless regions mask
// reads back to 32 bits.
//
// Determinism contract (mirrors sim::EccMemory): native bursts are
// observably identical to the word-at-a-time fallback — bursts split at
// region boundaries, raw words are touched in ascending logical order
// (so the per-bank fault-model RNG draw order never depends on the bank
// count's interleave pattern), and decode consumes no RNG.  A 1-tile /
// 1-bank SharedMemory is therefore byte-identical in data, counters and
// RNG consumption to the classic EccMemory scratchpad.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ecc/code.hpp"
#include "mitigation/scheme.hpp"
#include "multitile/banked_memory.hpp"
#include "sim/ecc_memory.hpp"
#include "sim/memory_port.hpp"

namespace ntc::multitile {

struct SharedRegion {
  std::uint32_t base = 0;
  std::uint32_t words = 0;
  mitigation::SchemeKind scheme = mitigation::SchemeKind::NoMitigation;
  std::shared_ptr<const ecc::BlockCode> code;  ///< null for NoMitigation
  sim::EccMemoryStats stats;
};

class SharedMemory final : public sim::MemoryPort {
 public:
  /// One equal-sized region per entry of `region_schemes` (the banked
  /// word count must divide evenly).  `bank_config.stored_bits` must
  /// accommodate the widest region codeword.
  SharedMemory(BankedMemoryConfig bank_config,
               std::vector<mitigation::SchemeKind> region_schemes);

  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override;
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override;
  std::uint32_t word_count() const override { return banked_.words(); }
  sim::AccessStatus read_burst(std::uint32_t word_index,
                               std::span<std::uint32_t> data) override;
  sim::AccessStatus write_burst(std::uint32_t word_index,
                                std::span<const std::uint32_t> data) override;

  BankedMemory& banks() { return banked_; }
  const BankedMemory& banks() const { return banked_; }

  std::size_t region_count() const { return regions_.size(); }
  const SharedRegion& region(std::size_t r) const { return regions_[r]; }
  std::uint32_t region_words() const { return region_words_; }
  std::uint32_t region_of(std::uint32_t word) const {
    return word / region_words_;
  }

  /// Reseed the banks as construction would and zero region stats.
  void reset(std::uint64_t seed, Volt vdd);
  void set_vdd(Volt vdd) { banked_.set_vdd(vdd); }
  void reset_stats();

  /// Codeword width the banks must store for a scheme mix (39 when any
  /// region is protected, else 32).
  static std::uint32_t required_stored_bits(
      const std::vector<mitigation::SchemeKind>& schemes);

 private:
  sim::AccessStatus note_summary(SharedRegion& region,
                                 const ecc::BatchDecodeSummary& summary);
  sim::AccessStatus burst_read_region(SharedRegion& region, std::uint32_t word,
                                      std::uint32_t count,
                                      std::uint32_t* out);
  void burst_write_region(SharedRegion& region, std::uint32_t word,
                          std::uint32_t count, const std::uint32_t* data);

  BankedMemory banked_;
  std::uint32_t region_words_ = 0;
  std::vector<SharedRegion> regions_;
};

}  // namespace ntc::multitile
