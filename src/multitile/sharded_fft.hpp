// Sharded multi-tile FFT over the banked shared scratchpad.
//
// The N-point transform splits into T = tile-count shards of W = N/T
// consecutive logical indices; tile t owns logical indices
// [tW, (t+1)W), stored in its region of the shared memory at physical
// word addr(x) = (x / W) * region_words + (x % W).  The classic
// radix-2 stage structure decomposes cleanly:
//
//   stage 0 (bit-reverse)  : gather-all, then write own shard;
//   stages with len <= W   : butterflies stay inside one shard — each
//                            tile runs them privately, OCEAN tiles
//                            under their checkpoint protocol;
//   stages with len >  W   : every butterfly partner lives in another
//                            shard — gather-all, compute own outputs,
//                            write own shard (unprotected: the working
//                            set is the whole array, which no tile's
//                            protected buffer could checkpoint).
//
// Every phase ends at a platform barrier, so the arbiter prices the
// tiles' merged bank traffic; all tiles read during gather epochs and
// write only their own shard during write epochs, so there are no
// cross-tile write hazards and the result is bit-exact against the
// sequential FixedPointFft on fault-free runs whatever the tile/bank
// counts.  Butterfly arithmetic, twiddle rounding and the per-element
// cycle charges reuse FixedPointFft's exact definitions.
//
// With one tile the class simply runs FixedPointFft through the tile's
// host (OCEAN runtime for an OCEAN tile), reproducing the classic
// single-core campaign path operation for operation.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "multitile/tiled_platform.hpp"
#include "ocean/runtime.hpp"
#include "workloads/fft.hpp"

namespace ntc::multitile {

class ShardedFft {
 public:
  /// `points` must be a power of two with at least 4 points per tile.
  ShardedFft(TiledPlatform& platform, std::size_t points,
             ocean::OceanConfig ocean_config = {});

  /// Set the time-domain input (Q15 range), length = points.
  void set_input(std::vector<std::complex<double>> input);

  struct RunResult {
    bool completed = false;
    bool system_failure = false;  ///< any tile's OCEAN restore exhausted
    /// Unprotected (tile, phase) executions that met an uncorrectable
    /// access — the "detected" signal of None/SECDED tiles and of the
    /// cross-shard stages.
    std::uint64_t faulted_phases = 0;
    std::uint64_t ocean_restores = 0;
    std::uint64_t ocean_voltage_escalations = 0;
    std::uint64_t crc_mismatches = 0;
  };

  /// Execute the transform; barriers close every phase epoch, so
  /// platform.total_cycles()/contention_cycles() are final afterwards.
  RunResult run();

  /// Physical shared-memory word of logical element x (the campaign
  /// readback and tests address results through this).
  std::uint32_t physical_index(std::uint32_t logical) const {
    return (logical / shard_words_) * region_words_ + logical % shard_words_;
  }

  /// Scaling the fixed-point pipeline applies (1/N).
  double output_scale() const {
    return 1.0 / static_cast<double>(points_);
  }

  std::size_t points() const { return points_; }
  std::uint32_t shard_words() const { return shard_words_; }

 private:
  class TileLocalStages;

  RunResult run_single_tile();
  /// Gather the whole logical array through tile t's link into `out`
  /// (ascending shard order); returns true on an uncorrectable word.
  bool gather_all(std::uint32_t tile, std::vector<std::uint32_t>& out);
  std::uint32_t region_base(std::uint32_t tile) const {
    return tile * region_words_;
  }
  static std::uint32_t bit_reverse(std::uint32_t x, std::uint32_t bits);

  TiledPlatform& platform_;
  std::size_t points_;
  std::uint32_t log2n_;
  std::uint32_t shard_words_;   ///< W = points / tiles
  std::uint32_t region_words_;  ///< stride between tile regions
  ocean::OceanConfig ocean_;
  std::vector<std::complex<double>> input_;
  /// Twiddle table with FixedPointFft's exact layout and rounding:
  /// stage of half-length L at [L - 1, 2L - 1).
  std::vector<ComplexQ15> twiddles_;
};

}  // namespace ntc::multitile
