// Multi-tile near-threshold platform (ROADMAP: "Multi-tile platform
// with shared-memory contention").
//
// N tiles — each a private SECDED-or-raw instruction memory plus, for
// OCEAN tiles, a private BCH-protected checkpoint memory — share one
// banked scratchpad behind an arbitrated interconnect.  All arrays hang
// off the single supply rail (the paper's core argument): an OCEAN
// voltage escalation on ANY tile raises the rail platform-wide.
//
// Per-tile mitigation rides the existing MemoryPort stack: tile t's
// region of the shared memory is encoded with t's scheme, and t's
// TileLink logs every shared-memory access into the arbiter's current
// epoch.  Timing is epoch-based: tiles run their program slices
// execution-driven, the workload calls barrier() at each
// synchronization point, and the arbiter replays the epoch's merged
// request streams to charge stalls (see arbiter.hpp).
//
// RNG salt map (Rng(seed).fork(salt)):
//   tile t I-mem   0x10 + (t << 8)
//   bank b         0x20 + (b << 8)
//   tile t PM      0x30 + (t << 8)
// Tile 0 / bank 0 draw exactly the classic Platform streams, which is
// what makes a 1-tile/1-bank TiledPlatform campaign ledger
// byte-identical to the classic path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/memory_calculator.hpp"
#include "mitigation/scheme.hpp"
#include "multitile/arbiter.hpp"
#include "multitile/shared_memory.hpp"
#include "ocean/runtime.hpp"
#include "sim/ecc_memory.hpp"

namespace ntc::multitile {

struct TiledPlatformConfig {
  energy::MemoryStyle memory_style = energy::MemoryStyle::CellBasedImec40;
  /// One scheme per tile (size = tile count, power of two).
  std::vector<mitigation::SchemeKind> tile_schemes{
      mitigation::SchemeKind::Secded};
  std::uint32_t banks = 1;             ///< power of two
  std::uint32_t interleave_words = 1;  ///< bank stripe granularity
  ArbitrationPolicy arbitration = ArbitrationPolicy::RoundRobin;
  std::uint32_t arbitration_latency = 0;
  Volt vdd{0.55};
  Hertz clock{290.0e3};
  Celsius temperature{25.0};
  std::uint32_t imem_bytes = 4 * 1024;    ///< per tile
  std::uint32_t shared_bytes = 8 * 1024;  ///< banked shared scratchpad, total
  std::uint32_t pm_bytes = 1024;          ///< per OCEAN tile
  std::uint64_t seed = 1;
  bool inject_faults = true;
  std::shared_ptr<reliability::ModelTableCache> tables;
};

class TiledPlatform;

/// One tile's port into the shared memory: forwards every access and
/// logs its bank traffic (beats, coalesced per bank run) into the
/// arbiter's current epoch.
class TileLink final : public sim::MemoryPort {
 public:
  TileLink(SharedMemory& shared, Arbiter& arbiter, std::uint32_t tile)
      : shared_(shared), arbiter_(arbiter), tile_(tile) {}

  sim::AccessStatus read_word(std::uint32_t word_index,
                              std::uint32_t& data) override {
    log_range(word_index, 1);
    return shared_.read_word(word_index, data);
  }
  sim::AccessStatus write_word(std::uint32_t word_index,
                               std::uint32_t data) override {
    log_range(word_index, 1);
    return shared_.write_word(word_index, data);
  }
  std::uint32_t word_count() const override { return shared_.word_count(); }
  sim::AccessStatus read_burst(std::uint32_t word_index,
                               std::span<std::uint32_t> data) override {
    log_range(word_index, static_cast<std::uint32_t>(data.size()));
    return shared_.read_burst(word_index, data);
  }
  sim::AccessStatus write_burst(std::uint32_t word_index,
                                std::span<const std::uint32_t> data) override {
    log_range(word_index, static_cast<std::uint32_t>(data.size()));
    return shared_.write_burst(word_index, data);
  }
  sim::AccessStatus read_burst_tracked(std::uint32_t word_index,
                                       std::span<std::uint32_t> data,
                                       std::uint32_t& first_bad) override {
    // Timing is logged for the full request: the interconnect grants
    // the burst before the decoder can know a word will fail.
    log_range(word_index, static_cast<std::uint32_t>(data.size()));
    return shared_.read_burst_tracked(word_index, data, first_bad);
  }

 private:
  void log_range(std::uint32_t word, std::uint32_t count);

  SharedMemory& shared_;
  Arbiter& arbiter_;
  std::uint32_t tile_;
};

class TiledPlatform {
 public:
  explicit TiledPlatform(TiledPlatformConfig config);

  const TiledPlatformConfig& config() const { return config_; }
  std::uint32_t tile_count() const {
    return static_cast<std::uint32_t>(tiles_.size());
  }
  std::uint32_t bank_count() const { return shared_.banks().bank_count(); }
  mitigation::SchemeKind tile_scheme(std::uint32_t t) const {
    return config_.tile_schemes[t];
  }

  SharedMemory& shared() { return shared_; }
  Arbiter& arbiter() { return arbiter_; }
  sim::EccMemory& imem(std::uint32_t t) { return *tiles_[t].imem; }
  sim::EccMemory* pm(std::uint32_t t) { return tiles_[t].pm.get(); }
  TileLink& link(std::uint32_t t) { return *tiles_[t].link; }

  /// Charge compute cycles of tile `t` into the current epoch (each
  /// cycle also implies `fetches_per_cycle` I-mem fetches of tile t).
  void add_compute_cycles(std::uint32_t t, std::uint64_t cycles,
                          double fetches_per_cycle = 1.0);

  /// Synchronization point: close the arbiter epoch and add its
  /// makespan to the platform clock.
  void barrier();

  /// Platform cycles so far: the sum of epoch makespans (plus the
  /// pending epoch's compute maximum when a barrier is outstanding).
  std::uint64_t total_cycles() const;
  /// Total tile-cycles lost to bank contention so far.
  std::uint64_t contention_cycles() const {
    return arbiter_.stats().contention_cycles;
  }

  /// Per-tile fetch counters (energy accounting of I-mem traffic).
  std::uint64_t tile_fetches(std::uint32_t t) const {
    return tiles_[t].fetches;
  }

  /// Return the platform to the state a fresh TiledPlatform(config)
  /// with this seed/supply would be in (attached injectors survive;
  /// rearm them first — same contract as sim::Platform::reset).
  void reset(std::uint64_t seed, Volt vdd);
  /// Single-rail supply change (every bank, I-mem and PM follows).
  void set_vdd(Volt vdd);

  /// OCEAN host view of one tile: data port = the tile's arbitrated
  /// link, PM = the tile's private protected memory, set_vdd = the
  /// shared rail.
  class TileHost final : public ocean::OceanHost {
   public:
    TileHost(TiledPlatform& platform, std::uint32_t tile)
        : platform_(platform), tile_(tile) {}
    sim::MemoryPort& data_port() override { return platform_.link(tile_); }
    sim::EccMemory* pm() override { return platform_.pm(tile_); }
    void add_compute_cycles(std::uint64_t cycles,
                            double fetches_per_cycle) override {
      platform_.add_compute_cycles(tile_, cycles, fetches_per_cycle);
    }
    Volt vdd() const override { return platform_.config().vdd; }
    void set_vdd(Volt vdd) override { platform_.set_vdd(vdd); }

   private:
    TiledPlatform& platform_;
    std::uint32_t tile_;
  };
  TileHost host(std::uint32_t t) { return TileHost(*this, t); }

  static constexpr std::uint64_t imem_salt(std::uint32_t t) {
    return 0x10 + (static_cast<std::uint64_t>(t) << 8);
  }
  static constexpr std::uint64_t pm_salt(std::uint32_t t) {
    return 0x30 + (static_cast<std::uint64_t>(t) << 8);
  }

 private:
  struct Tile {
    std::unique_ptr<sim::EccMemory> imem;
    std::unique_ptr<sim::EccMemory> pm;  ///< null unless OCEAN
    std::unique_ptr<TileLink> link;
    std::uint64_t compute_cycles = 0;  ///< lifetime total
    std::uint64_t fetches = 0;
  };

  std::unique_ptr<sim::EccMemory> make_private_memory(
      const std::string& name, std::uint32_t bytes, std::uint32_t stored_bits,
      std::shared_ptr<const ecc::BlockCode> code, std::uint64_t salt);

  TiledPlatformConfig config_;
  SharedMemory shared_;
  Arbiter arbiter_;
  std::vector<Tile> tiles_;
  std::uint64_t makespan_ = 0;
};

}  // namespace ntc::multitile
