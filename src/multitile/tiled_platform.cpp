#include "multitile/tiled_platform.hpp"

#include <string>

#include "common/assert.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"

namespace ntc::multitile {

namespace {

bool is_power_of_two(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

const std::shared_ptr<const ecc::BlockCode>& tile_secded_code() {
  static const std::shared_ptr<const ecc::BlockCode> code =
      std::make_shared<ecc::HammingSecded>(32);
  return code;
}

const std::shared_ptr<const ecc::BlockCode>& tile_bch_code() {
  static const std::shared_ptr<const ecc::BlockCode> code =
      std::make_shared<ecc::BchCode>(ecc::ocean_buffer_code());
  return code;
}

BankedMemoryConfig bank_config_for(const TiledPlatformConfig& config) {
  BankedMemoryConfig bank;
  bank.total_words = config.shared_bytes / 4;
  bank.banks = config.banks;
  bank.interleave_words = config.interleave_words;
  bank.stored_bits = SharedMemory::required_stored_bits(config.tile_schemes);
  bank.style = config.memory_style;
  bank.vdd = config.vdd;
  bank.seed = config.seed;
  bank.inject_faults = config.inject_faults;
  bank.tables = config.tables;
  return bank;
}

}  // namespace

TiledPlatform::TiledPlatform(TiledPlatformConfig config)
    : config_(std::move(config)),
      shared_(bank_config_for(config_), config_.tile_schemes),
      arbiter_(ArbiterConfig{
          static_cast<std::uint32_t>(config_.tile_schemes.size()),
          config_.banks, config_.arbitration, config_.arbitration_latency}) {
  NTC_REQUIRE(is_power_of_two(
      static_cast<std::uint32_t>(config_.tile_schemes.size())));
  NTC_REQUIRE(config_.imem_bytes % 4 == 0 && config_.shared_bytes % 4 == 0);
  NTC_REQUIRE(config_.vdd.value > 0.0 && config_.clock.value > 0.0);
  const std::uint32_t tiles =
      static_cast<std::uint32_t>(config_.tile_schemes.size());
  tiles_.resize(tiles);
  for (std::uint32_t t = 0; t < tiles; ++t) {
    const mitigation::SchemeKind kind = config_.tile_schemes[t];
    const bool protected_imem = kind != mitigation::SchemeKind::NoMitigation;
    // I-mem: SECDED under both ECC and OCEAN, exactly as the classic
    // platform builds it (fetches must at least detect).
    tiles_[t].imem = make_private_memory(
        tiles == 1 ? "imem" : "imem" + std::to_string(t), config_.imem_bytes,
        protected_imem
            ? static_cast<std::uint32_t>(tile_secded_code()->code_bits())
            : 32,
        protected_imem ? tile_secded_code() : nullptr, imem_salt(t));
    if (kind == mitigation::SchemeKind::Ocean) {
      tiles_[t].pm = make_private_memory(
          tiles == 1 ? "pm" : "pm" + std::to_string(t), config_.pm_bytes,
          static_cast<std::uint32_t>(tile_bch_code()->code_bits()),
          tile_bch_code(), pm_salt(t));
    }
    tiles_[t].link = std::make_unique<TileLink>(shared_, arbiter_, t);
  }
}

std::unique_ptr<sim::EccMemory> TiledPlatform::make_private_memory(
    const std::string& name, std::uint32_t bytes, std::uint32_t stored_bits,
    std::shared_ptr<const ecc::BlockCode> code, std::uint64_t salt) {
  energy::MemoryCalculator calc(config_.memory_style,
                                energy::MemoryGeometry{bytes / 4, 32});
  auto array = std::make_unique<sim::SramModule>(
      name, bytes / 4, stored_bits, calc.access_model(), calc.retention_model(),
      config_.vdd, Rng(config_.seed).fork(salt), config_.inject_faults,
      config_.tables);
  return std::make_unique<sim::EccMemory>(std::move(array), std::move(code));
}

void TileLink::log_range(std::uint32_t word, std::uint32_t count) {
  const BankedMemory& banks = shared_.banks();
  if (banks.bank_count() == 1) {
    arbiter_.log_access(tile_, 0, count);
    return;
  }
  std::uint32_t i = 0;
  while (i < count) {
    const std::uint32_t bank = banks.map(word + i).bank;
    std::uint32_t run = 1;
    while (i + run < count && banks.map(word + i + run).bank == bank) ++run;
    arbiter_.log_access(tile_, bank, run);
    i += run;
  }
}

void TiledPlatform::add_compute_cycles(std::uint32_t t, std::uint64_t cycles,
                                       double fetches_per_cycle) {
  NTC_REQUIRE(fetches_per_cycle >= 0.0);
  arbiter_.add_compute(t, cycles);
  tiles_[t].compute_cycles += cycles;
  tiles_[t].fetches += static_cast<std::uint64_t>(fetches_per_cycle *
                                                  static_cast<double>(cycles));
}

void TiledPlatform::barrier() { makespan_ += arbiter_.end_epoch(); }

std::uint64_t TiledPlatform::total_cycles() const {
  return makespan_ + arbiter_.pending_compute_max();
}

void TiledPlatform::reset(std::uint64_t seed, Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  config_.seed = seed;
  config_.vdd = vdd;
  shared_.reset(seed, vdd);
  for (std::uint32_t t = 0; t < tile_count(); ++t) {
    tiles_[t].imem->array().reset(vdd, Rng(seed).fork(imem_salt(t)));
    tiles_[t].imem->reset_stats();
    if (tiles_[t].pm) {
      tiles_[t].pm->array().reset(vdd, Rng(seed).fork(pm_salt(t)));
      tiles_[t].pm->reset_stats();
    }
    tiles_[t].compute_cycles = 0;
    tiles_[t].fetches = 0;
  }
  arbiter_.reset();
  makespan_ = 0;
}

void TiledPlatform::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  config_.vdd = vdd;
  shared_.set_vdd(vdd);
  for (auto& tile : tiles_) {
    tile.imem->array().set_vdd(vdd);
    if (tile.pm) tile.pm->array().set_vdd(vdd);
  }
}

}  // namespace ntc::multitile
