// Pool of TiledPlatform arenas for campaign workers.
//
// Mirrors sim::PlatformPool: one slot per campaign tile-mix, platforms
// constructed on first use and reused across grid cells via
// TiledPlatform::reset, with an opaque client_state hook the campaign
// uses to keep scenario injectors attached across runs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "multitile/tiled_platform.hpp"

namespace ntc::multitile {

class TiledPool {
 public:
  struct Slot {
    std::unique_ptr<TiledPlatform> platform;
    /// Client hook: survives with the slot (e.g. the injector set
    /// attached to the platform's arrays).
    std::shared_ptr<void> client_state;
  };

  /// The slot for mix index `key`; `make` supplies the configuration
  /// when the slot is first used.
  Slot& acquire(std::size_t key,
                const std::function<TiledPlatformConfig()>& make) {
    if (key >= slots_.size()) slots_.resize(key + 1);
    if (!slots_[key].platform)
      slots_[key].platform = std::make_unique<TiledPlatform>(make());
    return slots_[key];
  }

  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<Slot> slots_;
};

}  // namespace ntc::multitile
