// Banked near-threshold SRAM: one logical word space striped over M
// independent SramModule banks.
//
// The bank map is a skewed word/line interleave.  With M = 2^s banks
// and an interleave granularity of g words (g = 1 is word interleave,
// g = 4 a 16-byte line), logical word w lives at
//
//   block  = w / g
//   bank   = fold(block) & (M - 1)        fold(x) = x ^ (x>>s) ^ (x>>2s) ^ …
//   offset = (block / M) * g + w % g
//
// The XOR fold skews the classic round-robin stripe so power-of-two
// strides — the natural access pattern of an FFT — do not all land in
// one bank.  The map is bijective (block = q·M + r maps to bank
// r ^ (fold(q) & (M-1)) at line q, and r is recoverable from the bank
// and q), and M = 1 degenerates to the identity, which is what makes a
// 1-bank shared memory byte-identical to the classic flat scratchpad.
//
// Bank b's Monte-Carlo stream is Rng(seed).fork(0x20 + (b << 8)): bank
// 0 draws exactly the classic single-scratchpad stream (salt 0x20), and
// the <<8 spacing keeps tile/bank salt families disjoint.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/memory_calculator.hpp"
#include "sim/sram_module.hpp"

namespace ntc::reliability {
class ModelTableCache;
}

namespace ntc::multitile {

struct BankAddress {
  std::uint32_t bank = 0;
  std::uint32_t offset = 0;
};

struct BankedMemoryConfig {
  std::uint32_t total_words = 2048;
  std::uint32_t banks = 1;             ///< power of two
  std::uint32_t interleave_words = 1;  ///< stripe granularity g (>= 1)
  std::uint32_t stored_bits = 32;      ///< 39 when any region carries SECDED
  energy::MemoryStyle style = energy::MemoryStyle::CellBasedImec40;
  Volt vdd{0.55};
  std::uint64_t seed = 1;
  bool inject_faults = true;
  std::shared_ptr<reliability::ModelTableCache> tables;
};

class BankedMemory {
 public:
  explicit BankedMemory(BankedMemoryConfig config);

  std::uint32_t words() const { return config_.total_words; }
  std::uint32_t bank_count() const { return config_.banks; }
  std::uint32_t words_per_bank() const {
    return config_.total_words / config_.banks;
  }

  /// The skewed-interleave bank map (identity at one bank).
  BankAddress map(std::uint32_t word) const;

  /// Raw codeword access through the map (fault injection applies).
  std::uint64_t read_raw(std::uint32_t word);
  void write_raw(std::uint32_t word, std::uint64_t value);

  sim::SramModule& bank(std::uint32_t b) { return *banks_[b]; }
  const sim::SramModule& bank(std::uint32_t b) const { return *banks_[b]; }

  /// Reseed every bank exactly as construction would (salt per bank).
  void reset(std::uint64_t seed, Volt vdd);
  void set_vdd(Volt vdd);
  void reset_stats();

  static constexpr std::uint64_t bank_salt(std::uint32_t b) {
    return 0x20 + (static_cast<std::uint64_t>(b) << 8);
  }

 private:
  BankedMemoryConfig config_;
  std::uint32_t shift_ = 0;  ///< log2(banks)
  std::vector<std::unique_ptr<sim::SramModule>> banks_;
};

}  // namespace ntc::multitile
