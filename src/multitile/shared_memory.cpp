#include "multitile/shared_memory.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "ecc/hamming.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::multitile {

namespace {

/// Process-wide immutable SECDED code shared by every region (same
/// sharing rationale as sim::Platform's singleton: const decode paths,
/// one codec synthesis per process).
const std::shared_ptr<const ecc::BlockCode>& shared_secded_code() {
  static const std::shared_ptr<const ecc::BlockCode> code =
      std::make_shared<ecc::HammingSecded>(32);
  return code;
}

/// Stack-buffer chunk size for the burst codec scratch (matches
/// sim::EccMemory's kCodecChunk: raw + decode buffers stay ~8 KiB).
constexpr std::uint32_t kCodecChunk = 256;

}  // namespace

std::uint32_t SharedMemory::required_stored_bits(
    const std::vector<mitigation::SchemeKind>& schemes) {
  for (const mitigation::SchemeKind kind : schemes)
    if (kind != mitigation::SchemeKind::NoMitigation)
      return static_cast<std::uint32_t>(shared_secded_code()->code_bits());
  return 32;
}

SharedMemory::SharedMemory(BankedMemoryConfig bank_config,
                           std::vector<mitigation::SchemeKind> region_schemes)
    : banked_(std::move(bank_config)) {
  NTC_REQUIRE(!region_schemes.empty());
  NTC_REQUIRE(banked_.words() % region_schemes.size() == 0);
  region_words_ =
      banked_.words() / static_cast<std::uint32_t>(region_schemes.size());
  regions_.reserve(region_schemes.size());
  for (std::size_t r = 0; r < region_schemes.size(); ++r) {
    SharedRegion region;
    region.base = static_cast<std::uint32_t>(r) * region_words_;
    region.words = region_words_;
    region.scheme = region_schemes[r];
    if (region.scheme != mitigation::SchemeKind::NoMitigation) {
      region.code = shared_secded_code();
      NTC_REQUIRE_MSG(banked_.bank(0).stored_bits() == region.code->code_bits(),
                      "bank word width must match the region codeword width");
    }
    regions_.push_back(std::move(region));
  }
}

sim::AccessStatus SharedMemory::read_word(std::uint32_t word_index,
                                          std::uint32_t& data) {
  SharedRegion& region = regions_[region_of(word_index)];
  const std::uint64_t raw = banked_.read_raw(word_index);
  if (!region.code) {
    data = static_cast<std::uint32_t>(raw);
    return sim::AccessStatus::Ok;
  }
  const ecc::DecodeResult result = region.code->decode(
      sim::unpack_codeword(raw, region.code->code_bits()));
  data = static_cast<std::uint32_t>(result.data);
  switch (result.status) {
    case ecc::DecodeStatus::Ok:
      return sim::AccessStatus::Ok;
    case ecc::DecodeStatus::Corrected:
      ++region.stats.corrected_words;
      region.stats.corrected_bits +=
          static_cast<std::uint64_t>(result.corrected_bits);
      return sim::AccessStatus::CorrectedError;
    case ecc::DecodeStatus::DetectedUncorrectable:
      ++region.stats.uncorrectable_words;
      return sim::AccessStatus::DetectedUncorrectable;
  }
  return sim::AccessStatus::Ok;
}

sim::AccessStatus SharedMemory::write_word(std::uint32_t word_index,
                                           std::uint32_t data) {
  SharedRegion& region = regions_[region_of(word_index)];
  if (!region.code) {
    banked_.write_raw(word_index, data);
    return sim::AccessStatus::Ok;
  }
  banked_.write_raw(word_index,
                    sim::pack_codeword(region.code->encode(data),
                                       region.code->code_bits()));
  return sim::AccessStatus::Ok;
}

sim::AccessStatus SharedMemory::note_summary(
    SharedRegion& region, const ecc::BatchDecodeSummary& summary) {
  region.stats.corrected_words += summary.corrected_words;
  region.stats.corrected_bits += summary.corrected_bits;
  region.stats.uncorrectable_words += summary.uncorrectable_words;
  if (summary.corrected_words > 0 || summary.uncorrectable_words > 0) {
    NTC_TELEM_EVENT(telemetry::EventKind::EccDecode, "shared_batch_decode",
                    summary.corrected_words, summary.uncorrectable_words);
    NTC_TELEM_COUNT("ntc_ecc_corrected_words_total", summary.corrected_words);
    NTC_TELEM_COUNT("ntc_ecc_uncorrectable_words_total",
                    summary.uncorrectable_words);
  }
  if (summary.uncorrectable_words > 0)
    return sim::AccessStatus::DetectedUncorrectable;
  if (summary.corrected_words > 0) return sim::AccessStatus::CorrectedError;
  return sim::AccessStatus::Ok;
}

sim::AccessStatus SharedMemory::burst_read_region(SharedRegion& region,
                                                  std::uint32_t word,
                                                  std::uint32_t count,
                                                  std::uint32_t* out) {
  sim::AccessStatus status = sim::AccessStatus::Ok;
  std::uint64_t raws[kCodecChunk];
  ecc::BatchDecodeSummary summary;
  for (std::uint32_t off = 0; off < count; off += kCodecChunk) {
    const std::uint32_t m = std::min(count - off, kCodecChunk);
    // Raw words in ascending logical order: with one bank this is the
    // amortized raw burst, with several the per-word walk — either way
    // each bank's draws happen in the same order the fallback performs
    // them.
    if (banked_.bank_count() == 1) {
      banked_.bank(0).read_raw_burst(word + off, raws, m);
    } else {
      for (std::uint32_t i = 0; i < m; ++i)
        raws[i] = banked_.read_raw(word + off + i);
    }
    if (!region.code) {
      for (std::uint32_t i = 0; i < m; ++i)
        out[off + i] = static_cast<std::uint32_t>(raws[i]);
      continue;
    }
    region.code->decode_words(raws, m, out + off, summary);
    status = worse_status(status, note_summary(region, summary));
  }
  return status;
}

void SharedMemory::burst_write_region(SharedRegion& region, std::uint32_t word,
                                      std::uint32_t count,
                                      const std::uint32_t* data) {
  std::uint64_t raws[kCodecChunk];
  for (std::uint32_t off = 0; off < count; off += kCodecChunk) {
    const std::uint32_t m = std::min(count - off, kCodecChunk);
    if (region.code) {
      region.code->encode_words(data + off, m, raws);
    } else {
      for (std::uint32_t i = 0; i < m; ++i) raws[i] = data[off + i];
    }
    if (banked_.bank_count() == 1) {
      banked_.bank(0).write_raw_burst(word + off, raws, m);
    } else {
      for (std::uint32_t i = 0; i < m; ++i)
        banked_.write_raw(word + off + i, raws[i]);
    }
  }
}

sim::AccessStatus SharedMemory::read_burst(std::uint32_t word_index,
                                           std::span<std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::read_burst(word_index, data);
  NTC_REQUIRE(static_cast<std::uint64_t>(word_index) + data.size() <=
              banked_.words());
  NTC_TELEM_EVENT(telemetry::EventKind::MemoryBurst, "shared_read_burst",
                  word_index, data.size());
  sim::AccessStatus status = sim::AccessStatus::Ok;
  std::uint32_t word = word_index;
  std::size_t done = 0;
  while (done < data.size()) {
    SharedRegion& region = regions_[region_of(word)];
    const std::uint32_t in_region = std::min<std::uint32_t>(
        region.base + region.words - word,
        static_cast<std::uint32_t>(data.size() - done));
    status = worse_status(
        status, burst_read_region(region, word, in_region, data.data() + done));
    word += in_region;
    done += in_region;
  }
  return status;
}

sim::AccessStatus SharedMemory::write_burst(
    std::uint32_t word_index, std::span<const std::uint32_t> data) {
  if (!sim::burst_native_enabled())
    return MemoryPort::write_burst(word_index, data);
  NTC_REQUIRE(static_cast<std::uint64_t>(word_index) + data.size() <=
              banked_.words());
  NTC_TELEM_EVENT(telemetry::EventKind::MemoryBurst, "shared_write_burst",
                  word_index, data.size());
  std::uint32_t word = word_index;
  std::size_t done = 0;
  while (done < data.size()) {
    SharedRegion& region = regions_[region_of(word)];
    const std::uint32_t in_region = std::min<std::uint32_t>(
        region.base + region.words - word,
        static_cast<std::uint32_t>(data.size() - done));
    burst_write_region(region, word, in_region, data.data() + done);
    word += in_region;
    done += in_region;
  }
  return sim::AccessStatus::Ok;
}

void SharedMemory::reset(std::uint64_t seed, Volt vdd) {
  banked_.reset(seed, vdd);
  for (SharedRegion& region : regions_) region.stats = sim::EccMemoryStats{};
}

void SharedMemory::reset_stats() {
  banked_.reset_stats();
  for (SharedRegion& region : regions_) region.stats = sim::EccMemoryStats{};
}

}  // namespace ntc::multitile
