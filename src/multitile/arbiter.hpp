// Arbitrated interconnect between tiles and the banked shared memory.
//
// The simulator stays execution-driven (memory accesses complete
// immediately, data-wise); the arbiter models *time*.  Each tile logs
// its shared-memory requests (bank + beat count, consecutive same-bank
// beats coalesced into one grant) and its compute cycles into the
// current epoch; at a barrier the epoch is replayed event-driven:
//
//   * every tile replays its requests in issue order behind a private
//     clock starting at 0;
//   * a request is granted at max(tile clock, bank free time) — the
//     difference is the tile's stall — and occupies the bank for
//     `beats + arbitration_latency` cycles;
//   * when several tiles are ready at the same instant the grant order
//     is the configured policy: round-robin (rotating pointer) or fixed
//     priority (lowest tile id wins).
//
// A tile's epoch duration is its compute cycles plus its stalls; the
// epoch costs the slowest tile's duration (barrier semantics), and the
// platform's total cycle count is the sum of epoch makespans.  With one
// tile no request ever waits, so the model degenerates to plain compute
// accumulation — the classic single-core accounting.  The replay is
// pure integer bookkeeping over the logged order, so cycle counts are
// deterministic for a given trial regardless of host thread count.
#pragma once

#include <cstdint>
#include <vector>

namespace ntc::multitile {

enum class ArbitrationPolicy : std::uint8_t { RoundRobin, FixedPriority };

struct ArbiterConfig {
  std::uint32_t tiles = 1;
  std::uint32_t banks = 1;
  ArbitrationPolicy policy = ArbitrationPolicy::RoundRobin;
  /// Extra cycles the interconnect charges per granted request.
  std::uint32_t arbitration_latency = 0;
};

struct ArbiterStats {
  std::uint64_t epochs = 0;
  std::uint64_t requests = 0;  ///< grants (coalesced bank runs)
  std::uint64_t beats = 0;     ///< words moved through the interconnect
  std::uint64_t contention_cycles = 0;  ///< total stall across all tiles
  std::uint64_t makespan_cycles = 0;    ///< sum of epoch maxima
};

class Arbiter {
 public:
  explicit Arbiter(ArbiterConfig config);

  /// Log `beats` consecutive words of tile traffic to `bank` in the
  /// current epoch (coalesced with the tile's previous request when it
  /// targets the same bank).
  void log_access(std::uint32_t tile, std::uint32_t bank, std::uint32_t beats);
  /// Log compute cycles of `tile` in the current epoch.
  void add_compute(std::uint32_t tile, std::uint64_t cycles);

  /// Close the epoch: replay the logged requests, account stalls, and
  /// return the epoch makespan (slowest tile's compute + stall).
  std::uint64_t end_epoch();

  /// Makespan the pending (un-barriered) epoch would contribute if it
  /// held no contention — the compute maximum.  Lets total_cycles()
  /// stay meaningful between barriers.
  std::uint64_t pending_compute_max() const;

  const ArbiterStats& stats() const { return stats_; }
  const std::vector<std::uint64_t>& tile_stall_cycles() const {
    return tile_stall_;
  }
  const std::vector<std::uint64_t>& bank_busy_cycles() const {
    return bank_busy_;
  }
  const ArbiterConfig& config() const { return config_; }

  /// Drop pending epoch state and zero every counter.
  void reset();

 private:
  struct Request {
    std::uint32_t bank = 0;
    std::uint32_t beats = 0;
  };

  ArbiterConfig config_;
  std::vector<std::vector<Request>> pending_;   ///< per tile, issue order
  std::vector<std::uint64_t> epoch_compute_;    ///< per tile
  std::uint32_t rr_ = 0;  ///< round-robin grant pointer (persists epochs)
  ArbiterStats stats_;
  std::vector<std::uint64_t> tile_stall_;  ///< cumulative per tile
  std::vector<std::uint64_t> bank_busy_;   ///< cumulative per bank
};

}  // namespace ntc::multitile
