#include "multitile/banked_memory.hpp"

#include <string>

#include "common/assert.hpp"

namespace ntc::multitile {

namespace {

bool is_power_of_two(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::uint32_t ilog2(std::uint32_t n) {
  std::uint32_t l = 0;
  while ((std::uint32_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

BankedMemory::BankedMemory(BankedMemoryConfig config)
    : config_(std::move(config)), shift_(ilog2(config_.banks)) {
  NTC_REQUIRE(is_power_of_two(config_.banks));
  NTC_REQUIRE(config_.interleave_words >= 1);
  NTC_REQUIRE(config_.total_words %
                  (config_.banks * config_.interleave_words) ==
              0);
  NTC_REQUIRE(config_.stored_bits >= 32 && config_.stored_bits <= 64);
  const std::uint32_t per_bank = config_.total_words / config_.banks;
  banks_.reserve(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    // Bank 0 of a 1-bank memory IS the classic scratchpad: same name,
    // geometry and RNG stream as Platform's "spm" array.
    const std::string name =
        config_.banks == 1 ? "spm" : "bank" + std::to_string(b);
    energy::MemoryCalculator calc(config_.style,
                                  energy::MemoryGeometry{per_bank, 32});
    banks_.push_back(std::make_unique<sim::SramModule>(
        name, per_bank, config_.stored_bits, calc.access_model(),
        calc.retention_model(), config_.vdd, Rng(config_.seed).fork(bank_salt(b)),
        config_.inject_faults, config_.tables));
  }
}

BankAddress BankedMemory::map(std::uint32_t word) const {
  if (config_.banks == 1) return BankAddress{0, word};
  const std::uint32_t g = config_.interleave_words;
  const std::uint32_t block = word / g;
  std::uint32_t folded = block;
  for (std::uint32_t x = block >> shift_; x != 0; x >>= shift_) folded ^= x;
  return BankAddress{folded & (config_.banks - 1),
                     (block / config_.banks) * g + word % g};
}

std::uint64_t BankedMemory::read_raw(std::uint32_t word) {
  const BankAddress a = map(word);
  return banks_[a.bank]->read_raw(a.offset);
}

void BankedMemory::write_raw(std::uint32_t word, std::uint64_t value) {
  const BankAddress a = map(word);
  banks_[a.bank]->write_raw(a.offset, value);
}

void BankedMemory::reset(std::uint64_t seed, Volt vdd) {
  config_.seed = seed;
  config_.vdd = vdd;
  for (std::uint32_t b = 0; b < config_.banks; ++b)
    banks_[b]->reset(vdd, Rng(seed).fork(bank_salt(b)));
}

void BankedMemory::set_vdd(Volt vdd) {
  config_.vdd = vdd;
  for (auto& bank : banks_) bank->set_vdd(vdd);
}

void BankedMemory::reset_stats() {
  for (auto& bank : banks_) bank->reset_stats();
}

}  // namespace ntc::multitile
