#include "multitile/sharded_fft.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "common/assert.hpp"

namespace ntc::multitile {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::uint32_t ilog2(std::size_t n) {
  std::uint32_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

using workloads::FixedPointFft;

}  // namespace

ShardedFft::ShardedFft(TiledPlatform& platform, std::size_t points,
                       ocean::OceanConfig ocean_config)
    : platform_(platform),
      points_(points),
      log2n_(ilog2(points)),
      ocean_(ocean_config) {
  NTC_REQUIRE(is_power_of_two(points_) && points_ >= 4);
  const std::uint32_t tiles = platform_.tile_count();
  NTC_REQUIRE_MSG(points_ % tiles == 0 && points_ / tiles >= 4,
                  "need at least 4 FFT points per tile");
  shard_words_ = static_cast<std::uint32_t>(points_ / tiles);
  region_words_ = platform_.shared().region_words();
  NTC_REQUIRE_MSG(shard_words_ <= region_words_,
                  "tile shard must fit its shared-memory region");
  // Same table, layout and Q15 rounding as FixedPointFft's constructor.
  twiddles_.reserve(points_ - 1);
  for (std::size_t len = 2; len <= points_; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(len);
      twiddles_.push_back(ComplexQ15{Q15::from_double(std::cos(angle)),
                                     Q15::from_double(std::sin(angle))});
    }
  }
}

void ShardedFft::set_input(std::vector<std::complex<double>> input) {
  NTC_REQUIRE(input.size() == points_);
  input_ = std::move(input);
}

std::uint32_t ShardedFft::bit_reverse(std::uint32_t x, std::uint32_t bits) {
  std::uint32_t r = 0;
  for (std::uint32_t b = 0; b < bits; ++b) r |= ((x >> b) & 1u) << (bits - 1 - b);
  return r;
}

ShardedFft::RunResult ShardedFft::run_single_tile() {
  // One tile IS the classic platform: run the sequential FFT through
  // the tile's host so the OCEAN protocol, cycle charges and memory
  // traffic replay the single-core campaign path exactly.
  RunResult result;
  FixedPointFft fft(points_, 0);
  fft.set_input(input_);
  TiledPlatform::TileHost host = platform_.host(0);
  if (platform_.tile_scheme(0) == mitigation::SchemeKind::Ocean) {
    ocean::OceanRuntime runtime(host, ocean_);
    const ocean::OceanRunOutcome outcome = runtime.run(fft);
    result.completed = outcome.completed;
    result.system_failure = outcome.system_failure;
    result.ocean_restores = outcome.stats.restores;
    result.ocean_voltage_escalations = outcome.stats.voltage_escalations;
    result.crc_mismatches = outcome.stats.crc_mismatches;
  } else {
    result.faulted_phases = ocean::run_unprotected(host, fft);
    result.completed = true;
  }
  platform_.barrier();
  return result;
}

bool ShardedFft::gather_all(std::uint32_t tile, std::vector<std::uint32_t>& out) {
  bool fault = false;
  TileLink& link = platform_.link(tile);
  for (std::uint32_t s = 0; s < platform_.tile_count(); ++s) {
    const std::span<std::uint32_t> dst(
        out.data() + static_cast<std::size_t>(s) * shard_words_, shard_words_);
    if (link.read_burst(region_base(s), dst) ==
        sim::AccessStatus::DetectedUncorrectable)
      fault = true;
  }
  return fault;
}

/// The shard-local butterfly stages (global stages with len <= W) as a
/// StreamingTask over one tile's region, so OCEAN tiles run them under
/// the unmodified checkpoint protocol.  Data is staged by the sharded
/// driver, so initialize() only names the chunk.
class ShardedFft::TileLocalStages final : public workloads::StreamingTask {
 public:
  TileLocalStages(ShardedFft& fft, std::uint32_t tile)
      : fft_(fft), tile_(tile) {}

  std::string name() const override {
    return "sharded FFT local stages (tile " + std::to_string(tile_) + ")";
  }
  std::size_t phase_count() const override {
    return ilog2(fft_.shard_words_);
  }
  workloads::ChunkRef initialize(sim::MemoryPort&) override { return chunk(); }
  workloads::ChunkRef input_chunk(std::size_t) const override {
    return chunk();
  }

  workloads::PhaseResult run_phase(std::size_t index,
                                   sim::MemoryPort& spm) override {
    workloads::PhaseResult result;
    result.output = chunk();
    bool fault = false;
    const std::uint32_t words = fft_.shard_words_;
    std::vector<std::uint32_t> buffer(words);
    if (spm.read_burst(fft_.region_base(tile_), buffer) ==
        sim::AccessStatus::DetectedUncorrectable)
      fault = true;

    // Global stage index + 1: len <= W, so every butterfly block lies
    // inside the shard and the global twiddle index equals the local
    // one.  Arithmetic is FixedPointFft::run_phase verbatim.
    const std::size_t len = std::size_t{1} << (index + 1);
    const ComplexQ15* stage_twiddles = fft_.twiddles_.data() + (len / 2 - 1);
    for (std::size_t i = 0; i < words; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const ComplexQ15 w = stage_twiddles[k];
        const ComplexQ15 u = ComplexQ15::unpack(buffer[i + k]);
        const ComplexQ15 v = ComplexQ15::unpack(buffer[i + k + len / 2]);
        const Q15 vr = v.re * w.re - v.im * w.im;
        const Q15 vi = v.re * w.im + v.im * w.re;
        const ComplexQ15 out0{(u.re + vr).shr(1), (u.im + vi).shr(1)};
        const ComplexQ15 out1{(u.re - vr).shr(1), (u.im - vi).shr(1)};
        buffer[i + k] = out0.pack();
        buffer[i + k + len / 2] = out1.pack();
        result.compute_cycles += FixedPointFft::kCyclesPerButterfly;
      }
    }

    if (spm.write_burst(fft_.region_base(tile_), buffer) ==
        sim::AccessStatus::DetectedUncorrectable)
      fault = true;
    result.memory_fault = fault;
    return result;
  }

 private:
  workloads::ChunkRef chunk() const {
    return workloads::ChunkRef{fft_.region_base(tile_), fft_.shard_words_};
  }

  ShardedFft& fft_;
  std::uint32_t tile_;
};

ShardedFft::RunResult ShardedFft::run() {
  NTC_REQUIRE_MSG(!input_.empty(), "set_input() before run()");
  const std::uint32_t tiles = platform_.tile_count();
  if (tiles == 1) return run_single_tile();

  RunResult result;
  result.completed = true;
  const std::uint32_t W = shard_words_;

  // Staging epoch: each tile packs and writes its own input shard.
  {
    std::vector<std::uint32_t> words(W);
    for (std::uint32_t t = 0; t < tiles; ++t) {
      for (std::uint32_t i = 0; i < W; ++i) {
        const std::complex<double>& sample =
            input_[static_cast<std::size_t>(t) * W + i];
        words[i] = ComplexQ15{Q15::from_double(sample.real()),
                              Q15::from_double(sample.imag())}
                       .pack();
      }
      platform_.link(t).write_burst(region_base(t), words);
    }
    platform_.barrier();
  }

  std::vector<std::vector<std::uint32_t>> outs(
      tiles, std::vector<std::uint32_t>(W));
  std::vector<std::uint32_t> gathered(points_);
  std::vector<bool> fault(tiles, false);

  auto commit_shards = [&]() {
    // Write epoch: every tile stores only its own shard, so the
    // gather/compute epoch above never races a producer.
    for (std::uint32_t t = 0; t < tiles; ++t) {
      if (platform_.link(t).write_burst(region_base(t), outs[t]) ==
          sim::AccessStatus::DetectedUncorrectable)
        fault[t] = true;
      if (fault[t]) ++result.faulted_phases;
    }
    platform_.barrier();
  };

  // Phase 0 — bit-reverse permutation: out[x] = in[reverse(x)], the
  // sources scatter across every shard, so gather-all then write-own.
  for (std::uint32_t t = 0; t < tiles; ++t) {
    fault[t] = gather_all(t, gathered);
    const std::uint32_t base = t * W;
    for (std::uint32_t i = 0; i < W; ++i)
      outs[t][i] = gathered[bit_reverse(base + i, log2n_)];
    platform_.add_compute_cycles(
        t, static_cast<std::uint64_t>(W) * FixedPointFft::kCyclesPerPermute,
        1.0);
  }
  platform_.barrier();
  commit_shards();

  // Shard-local stages (len <= W): private butterflies, OCEAN tiles
  // under the checkpoint protocol, one shared contention epoch.
  for (std::uint32_t t = 0; t < tiles; ++t) {
    TileLocalStages task(*this, t);
    TiledPlatform::TileHost host = platform_.host(t);
    if (platform_.tile_scheme(t) == mitigation::SchemeKind::Ocean) {
      ocean::OceanRuntime runtime(host, ocean_);
      const ocean::OceanRunOutcome outcome = runtime.run(task);
      if (!outcome.completed) result.completed = false;
      if (outcome.system_failure) result.system_failure = true;
      result.ocean_restores += outcome.stats.restores;
      result.ocean_voltage_escalations += outcome.stats.voltage_escalations;
      result.crc_mismatches += outcome.stats.crc_mismatches;
    } else {
      result.faulted_phases += ocean::run_unprotected(host, task, 1.0);
    }
  }
  platform_.barrier();

  // Cross-shard stages (len > W): every butterfly partner lives in
  // another shard.  Gather-all, compute this shard's half-butterflies
  // (each output charged the full butterfly cost — the pair work is
  // genuinely duplicated across the two owning tiles), write-own.
  for (std::uint32_t stage = ilog2(W) + 1; stage <= log2n_; ++stage) {
    const std::uint32_t len = std::uint32_t{1} << stage;
    const std::uint32_t half = len >> 1;
    for (std::uint32_t t = 0; t < tiles; ++t) {
      fault[t] = gather_all(t, gathered);
      const std::uint32_t base = t * W;
      for (std::uint32_t i = 0; i < W; ++i) {
        const std::uint32_t x = base + i;
        const std::uint32_t k = x & (half - 1);
        const ComplexQ15 w = twiddles_[half - 1 + k];
        ComplexQ15 out;
        if ((x & half) == 0) {
          const ComplexQ15 u = ComplexQ15::unpack(gathered[x]);
          const ComplexQ15 v = ComplexQ15::unpack(gathered[x + half]);
          const Q15 vr = v.re * w.re - v.im * w.im;
          const Q15 vi = v.re * w.im + v.im * w.re;
          out = ComplexQ15{(u.re + vr).shr(1), (u.im + vi).shr(1)};
        } else {
          const ComplexQ15 u = ComplexQ15::unpack(gathered[x - half]);
          const ComplexQ15 v = ComplexQ15::unpack(gathered[x]);
          const Q15 vr = v.re * w.re - v.im * w.im;
          const Q15 vi = v.re * w.im + v.im * w.re;
          out = ComplexQ15{(u.re - vr).shr(1), (u.im - vi).shr(1)};
        }
        outs[t][i] = out.pack();
      }
      platform_.add_compute_cycles(
          t, static_cast<std::uint64_t>(W) * FixedPointFft::kCyclesPerButterfly,
          1.0);
    }
    platform_.barrier();
    commit_shards();
  }

  return result;
}

}  // namespace ntc::multitile
