// OCEAN's energy-performance-area optimiser.
//
// The paper: "OCEAN applies nonlinear programming to achieve the
// minimal energy overhead possible."  The decision variables are the
// operating voltage and the phase granularity (how finely the task is
// chunked); the objective is total task energy including the protocol
// overheads; the constraints are the FIT bound (quintuple-error
// threshold) and the task deadline.  The feasible region is small and
// the objective cheap, so the solver is an exact grid sweep over the
// 10 mV supply ladder crossed with power-of-two phase counts.
#pragma once

#include "energy/logic_model.hpp"
#include "energy/memory_calculator.hpp"
#include "mitigation/voltage_solver.hpp"

namespace ntc::ocean {

/// Static profile of a streaming task.
struct TaskProfile {
  std::uint64_t compute_cycles = 0;  ///< pure compute, all phases
  std::uint32_t chunk_words = 0;     ///< live data set checkpointed per phase
  std::uint64_t spm_accesses = 0;    ///< workload data accesses, all phases
};

struct OceanPlan {
  bool feasible = false;
  Volt vdd{0.0};
  std::size_t phases = 1;
  Joule energy{0.0};
  Second duration{0.0};
  double expected_restores_per_phase = 0.0;
  double protocol_overhead = 0.0;  ///< protocol cycles / compute cycles
};

class EpaOptimizer {
 public:
  EpaOptimizer(energy::MemoryStyle style,
               mitigation::SolverConstraints constraints = {});

  /// Minimise task energy subject to FIT and `deadline`.
  OceanPlan optimize(const TaskProfile& profile, Second deadline) const;

  /// Energy/duration of one concrete configuration (exposed for the
  /// ablation bench that sweeps phase counts at fixed voltage).
  /// Constant-throughput semantics, matching the paper's platform: the
  /// task is clocked to finish exactly at `deadline` (leakage is paid
  /// over the whole period); infeasible if even f_max(vdd) misses it.
  OceanPlan evaluate(const TaskProfile& profile, Volt vdd, std::size_t phases,
                     Second deadline) const;

 private:
  energy::MemoryStyle style_;
  mitigation::SolverConstraints constraints_;
  mitigation::MinVoltageSolver solver_;
  energy::LogicModel core_;
  tech::LogicTiming timing_;
};

}  // namespace ntc::ocean
