#include "ocean/protected_buffer.hpp"

#include "common/assert.hpp"

namespace ntc::ocean {

ProtectedBuffer::ProtectedBuffer(sim::EccMemory& pm) : pm_(pm) {
  NTC_REQUIRE_MSG(pm.code() != nullptr,
                  "the protected buffer requires a coded memory");
  NTC_REQUIRE_MSG(pm.word_count() >= 2, "PM too small for two slots");
}

ProtectedBuffer::SaveResult ProtectedBuffer::save_with_crc(
    sim::MemoryPort& spm, workloads::ChunkRef chunk, const ecc::Crc32& crc) {
  NTC_REQUIRE_MSG(chunk.words <= slot_capacity_words(),
                  "chunk exceeds checkpoint slot capacity");
  const std::uint32_t base = slot_base(current_slot_ ^ 1u);  // idle slot
  SaveResult result;
  std::uint32_t state = ecc::Crc32::initial();
  for (std::uint32_t i = 0; i < chunk.words; ++i) {
    std::uint32_t word = 0;
    if (spm.read_word(chunk.word_offset + i, word) ==
        sim::AccessStatus::DetectedUncorrectable)
      ++result.uncorrectable_words;
    pm_.write_word(base + i, word);
    state = crc.update(state, static_cast<std::uint8_t>(word));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 8));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 16));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 24));
  }
  result.crc = ecc::Crc32::finalize(state);
  return result;
}

RestoreResult ProtectedBuffer::restore(sim::MemoryPort& spm,
                                       workloads::ChunkRef chunk) {
  NTC_REQUIRE(chunk.words <= slot_capacity_words());
  const std::uint32_t base = slot_base(current_slot_);
  RestoreResult result;
  for (std::uint32_t i = 0; i < chunk.words; ++i) {
    std::uint32_t word = 0;
    const sim::AccessStatus status = pm_.read_word(base + i, word);
    if (status == sim::AccessStatus::DetectedUncorrectable)
      ++result.uncorrectable_words;
    spm.write_word(chunk.word_offset + i, word);
    ++result.words_restored;
  }
  return result;
}

}  // namespace ntc::ocean
