#include "ocean/protected_buffer.hpp"

#include <span>
#include <vector>

#include "common/assert.hpp"

namespace ntc::ocean {

ProtectedBuffer::ProtectedBuffer(sim::EccMemory& pm) : pm_(pm) {
  NTC_REQUIRE_MSG(pm.code() != nullptr,
                  "the protected buffer requires a coded memory");
  NTC_REQUIRE_MSG(pm.word_count() >= 2, "PM too small for two slots");
}

namespace {

/// Burst-read [base, base + out.size()) from `port` into `out`,
/// counting detected-uncorrectable words by resuming after each one —
/// the same per-word read order (and fault-model draw order) as a
/// word-at-a-time copy loop, with burst speed on the clean spans.
std::uint64_t read_counting_uncorrectable(sim::MemoryPort& port,
                                          std::uint32_t base,
                                          std::span<std::uint32_t> out) {
  std::uint64_t uncorrectable = 0;
  std::uint32_t off = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(out.size());
  while (off < n) {
    std::uint32_t bad = 0;
    port.read_burst_tracked(base + off, out.subspan(off), bad);
    if (bad == n - off) break;
    ++uncorrectable;
    off += bad + 1;
  }
  return uncorrectable;
}

}  // namespace

ProtectedBuffer::SaveResult ProtectedBuffer::save_with_crc(
    sim::MemoryPort& spm, workloads::ChunkRef chunk, const ecc::Crc32& crc) {
  NTC_REQUIRE_MSG(chunk.words <= slot_capacity_words(),
                  "chunk exceeds checkpoint slot capacity");
  const std::uint32_t base = slot_base(current_slot_ ^ 1u);  // idle slot
  SaveResult result;
  std::vector<std::uint32_t> buffer(chunk.words);
  result.uncorrectable_words =
      read_counting_uncorrectable(spm, chunk.word_offset, buffer);
  pm_.write_burst(base, buffer);
  std::uint32_t state = ecc::Crc32::initial();
  for (const std::uint32_t word : buffer) {
    state = crc.update(state, static_cast<std::uint8_t>(word));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 8));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 16));
    state = crc.update(state, static_cast<std::uint8_t>(word >> 24));
  }
  result.crc = ecc::Crc32::finalize(state);
  return result;
}

RestoreResult ProtectedBuffer::restore(sim::MemoryPort& spm,
                                       workloads::ChunkRef chunk) {
  NTC_REQUIRE(chunk.words <= slot_capacity_words());
  const std::uint32_t base = slot_base(current_slot_);
  RestoreResult result;
  std::vector<std::uint32_t> buffer(chunk.words);
  result.uncorrectable_words =
      read_counting_uncorrectable(pm_, base, buffer);
  spm.write_burst(chunk.word_offset, buffer);
  result.words_restored = chunk.words;
  return result;
}

}  // namespace ntc::ocean
