// OCEAN checkpoint/rollback runtime (paper Figure 7).
//
// Drives a StreamingTask on the simulated platform with the OCEAN
// protocol: after each phase the output chunk is DMA-copied into the
// BCH-protected buffer together with a CRC-32 signature; before each
// phase the input chunk's CRC is re-checked, and on mismatch the chunk
// is restored from the protected buffer instead of re-running its
// producer.  All checkpoint, check and restore work is charged to the
// platform's cycle/energy accounting.
//
// The runtime talks to its execution environment through the OceanHost
// interface — a data port, a protected memory, a cycle sink and the
// (single) supply rail — so the same protocol runs unchanged on the
// classic single-core sim::Platform and on one tile of a
// multitile::TiledPlatform.
#pragma once

#include <memory>

#include "ecc/crc.hpp"
#include "ocean/protected_buffer.hpp"
#include "sim/platform.hpp"
#include "workloads/streaming.hpp"

namespace ntc::ocean {

struct OceanConfig {
  std::uint32_t max_restore_attempts = 3;
  /// Software CRC cost (core cycles per 32-bit word checked).
  std::uint64_t crc_cycles_per_word = 4;
  /// Instruction fetches charged per compute cycle of the workload.
  double fetches_per_cycle = 1.0;
  /// Graceful degradation on an uncorrectable protected-buffer word:
  /// before declaring system failure, bump the (single) rail one
  /// regulator step at a time — healing marginal cells, as
  /// SramModule::set_vdd models — scrub the PM and retry the restore.
  /// 0 keeps the legacy fail-fast behaviour.
  std::uint32_t max_voltage_escalations = 0;
  Volt escalation_step{0.05};
  Volt escalation_vmax{1.10};
};

struct OceanRunStats {
  std::uint64_t phases_run = 0;
  std::uint64_t crc_checks = 0;
  std::uint64_t crc_mismatches = 0;
  std::uint64_t restores = 0;
  std::uint64_t reexecutions = 0;  ///< phases re-run after detected errors
  std::uint64_t restore_uncorrectable_words = 0;  ///< quintuple-error hits
  std::uint64_t checkpoint_words = 0;
  std::uint64_t protocol_cycles = 0;  ///< CRC + DMA overhead cycles
  std::uint64_t voltage_escalations = 0;   ///< rail bumps on failed restores
  std::uint64_t escalation_recoveries = 0; ///< restores saved by a bump
};

struct OceanRunOutcome {
  bool completed = false;
  /// True if a restore met an uncorrectable protected-buffer word — the
  /// OCEAN system-failure condition (quintuple bit error).
  bool system_failure = false;
  OceanRunStats stats;
};

/// Execution environment the OCEAN protocol runs against.  The classic
/// adapter wraps sim::Platform; multitile::TiledPlatform exposes one
/// host per tile (data port = the tile's arbitrated shared-memory link,
/// PM = the tile-private protected buffer, set_vdd = the shared rail).
class OceanHost {
 public:
  virtual ~OceanHost() = default;
  /// The working memory the streaming task reads and writes.
  virtual sim::MemoryPort& data_port() = 0;
  /// The BCH-protected checkpoint memory (never null for OCEAN hosts).
  virtual sim::EccMemory* pm() = 0;
  /// Charge workload/protocol cycles (and the implied I-mem fetches).
  virtual void add_compute_cycles(std::uint64_t cycles,
                                  double fetches_per_cycle) = 0;
  /// Current supply voltage of the (single) rail.
  virtual Volt vdd() const = 0;
  /// Raise/lower the single rail (affects every array sharing it).
  virtual void set_vdd(Volt vdd) = 0;
};

/// OceanHost over the classic single-core platform.
class PlatformOceanHost final : public OceanHost {
 public:
  explicit PlatformOceanHost(sim::Platform& platform) : platform_(platform) {}
  sim::MemoryPort& data_port() override { return platform_.spm(); }
  sim::EccMemory* pm() override { return platform_.pm(); }
  void add_compute_cycles(std::uint64_t cycles,
                          double fetches_per_cycle) override {
    platform_.add_compute_cycles(cycles, fetches_per_cycle);
  }
  Volt vdd() const override { return platform_.config().vdd; }
  void set_vdd(Volt vdd) override { platform_.set_vdd(vdd); }

 private:
  sim::Platform& platform_;
};

class OceanRuntime {
 public:
  /// The host must expose a protected memory (pm() != nullptr).
  explicit OceanRuntime(OceanHost& host, OceanConfig config = {});
  /// Convenience: the platform must be built with SchemeKind::Ocean
  /// (it owns the PM).  Wraps it in an internal PlatformOceanHost.
  explicit OceanRuntime(sim::Platform& platform, OceanConfig config = {});

  /// Run the task to completion under OCEAN protection.
  OceanRunOutcome run(workloads::StreamingTask& task);

 private:
  std::uint32_t crc_of_chunk(workloads::ChunkRef chunk);
  void charge(std::uint64_t cycles);
  /// Restore `chunk` from `buffer`, escalating the rail on uncorrectable
  /// words when configured; sets system_failure when out of options.
  RestoreResult restore_with_escalation(ProtectedBuffer& buffer,
                                        sim::MemoryPort& spm,
                                        workloads::ChunkRef chunk,
                                        OceanRunOutcome& outcome);

  std::unique_ptr<OceanHost> owned_host_;  ///< Platform-ctor adapter
  OceanHost& host_;
  OceanConfig config_;
  ecc::Crc32 crc_;
};

/// Baseline runner for the No-mitigation and plain-ECC configurations:
/// phases execute back to back with no checkpoint protocol; compute
/// cycles and fetches are charged identically.  Returns the number of
/// phases that reported an uncorrectable memory fault.
std::uint64_t run_unprotected(OceanHost& host, workloads::StreamingTask& task,
                              double fetches_per_cycle = 1.0);
std::uint64_t run_unprotected(sim::Platform& platform,
                              workloads::StreamingTask& task,
                              double fetches_per_cycle = 1.0);

}  // namespace ntc::ocean
