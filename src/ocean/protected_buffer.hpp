// OCEAN's error-protected checkpoint buffer.
//
// Phase output chunks are copied into the protected memory (PM), whose
// words carry the BCH(t=4) code: reads back through the codec correct
// up to quadruple bit errors, so only a quintuple error in one word can
// defeat a restore — the paper's OCEAN failure threshold.
//
// The buffer is organised as two ping-pong slots: checkpoint N is
// written (and validated while copying) into the idle slot, and only
// once the copy is known error-free does it become current.  That way
// the previous checkpoint survives until the new one commits, which is
// what makes producer-phase re-execution possible for in-place tasks.
#pragma once

#include <cstdint>

#include "ecc/crc.hpp"
#include "sim/ecc_memory.hpp"
#include "workloads/streaming.hpp"

namespace ntc::ocean {

struct RestoreResult {
  std::uint64_t words_restored = 0;
  std::uint64_t uncorrectable_words = 0;  ///< quintuple-error casualties
  bool ok() const { return uncorrectable_words == 0; }
};

class ProtectedBuffer {
 public:
  /// `pm` must be an OCEAN protected memory (BCH-coded EccMemory).
  explicit ProtectedBuffer(sim::EccMemory& pm);

  /// Capacity of one checkpoint slot (half the PM).
  std::uint32_t slot_capacity_words() const { return pm_.word_count() / 2; }

  struct SaveResult {
    std::uint32_t crc = 0;
    /// Words whose scratchpad read-back was detected-uncorrectable at
    /// save time: the chunk is NOT error-free and the producer phase
    /// must be re-executed (the paper: "each phase generates a chunk of
    /// data that is required ... to be error-free").
    std::uint64_t uncorrectable_words = 0;
    bool clean() const { return uncorrectable_words == 0; }
  };

  /// Copy `chunk` from the scratchpad into the idle slot, computing the
  /// CRC-32 signature of the copied data and validating while copying.
  /// Does NOT commit; call commit() when the save is acceptable.
  /// Requires chunk.words <= slot_capacity_words().
  SaveResult save_with_crc(sim::MemoryPort& spm, workloads::ChunkRef chunk,
                           const ecc::Crc32& crc);

  /// Promote the last save to be the current checkpoint.
  void commit() { current_slot_ ^= 1u; }

  /// Copy the *current* checkpoint back over `chunk` in the scratchpad.
  RestoreResult restore(sim::MemoryPort& spm, workloads::ChunkRef chunk);

  /// DMA cycle cost of a save/restore pass (2 cycles per word: one read
  /// beat, one write beat).
  static std::uint64_t copy_cycles(workloads::ChunkRef chunk) {
    return 2ull * chunk.words;
  }

 private:
  std::uint32_t slot_base(std::uint32_t slot) const {
    return slot * slot_capacity_words();
  }

  sim::EccMemory& pm_;
  std::uint32_t current_slot_ = 0;  ///< idle slot is current_slot_ ^ 1
};

}  // namespace ntc::ocean
