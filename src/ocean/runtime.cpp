#include "ocean/runtime.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::ocean {

OceanRuntime::OceanRuntime(OceanHost& host, OceanConfig config)
    : host_(host), config_(config) {
  NTC_REQUIRE_MSG(host_.pm() != nullptr,
                  "OCEAN runtime needs a host with a protected memory");
}

OceanRuntime::OceanRuntime(sim::Platform& platform, OceanConfig config)
    : owned_host_(std::make_unique<PlatformOceanHost>(platform)),
      host_(*owned_host_), config_(config) {
  NTC_REQUIRE_MSG(host_.pm() != nullptr,
                  "OCEAN runtime needs a platform with a protected memory");
}

void OceanRuntime::charge(std::uint64_t cycles) {
  host_.add_compute_cycles(cycles, /*fetches_per_cycle=*/0.25);
}

RestoreResult OceanRuntime::restore_with_escalation(ProtectedBuffer& buffer,
                                                    sim::MemoryPort& spm,
                                                    workloads::ChunkRef chunk,
                                                    OceanRunOutcome& outcome) {
  NTC_TELEM_SPAN(span, telemetry::EventKind::Restore, "ocean_restore");
  NTC_TELEM_COUNT("ntc_ocean_restores_total", 1);
  RestoreResult restored = buffer.restore(spm, chunk);
  outcome.stats.restore_uncorrectable_words += restored.uncorrectable_words;
  const std::uint64_t copy_cycles = ProtectedBuffer::copy_cycles(chunk);
  outcome.stats.protocol_cycles += copy_cycles;
  charge(copy_cycles);
  while (!restored.ok() &&
         outcome.stats.voltage_escalations < config_.max_voltage_escalations) {
    // Bump the single rail one step: marginal PM cells heal (set_vdd
    // re-derives the stuck population), a scrub rewrites what just
    // became correctable, and the restore is retried at the safer
    // operating point.
    const Volt bumped{std::min(host_.vdd().value + config_.escalation_step.value,
                               config_.escalation_vmax.value)};
    if (bumped.value <= host_.vdd().value) break;  // rail capped
    ++outcome.stats.voltage_escalations;
    NTC_TELEM_EVENT(
        telemetry::EventKind::VoltageChange, "ocean_escalation",
        static_cast<std::uint64_t>(host_.vdd().value * 1000.0 + 0.5),
        static_cast<std::uint64_t>(bumped.value * 1000.0 + 0.5));
    NTC_TELEM_COUNT("ntc_ocean_voltage_escalations_total", 1);
    host_.set_vdd(bumped);
    host_.pm()->scrub();
    const std::uint64_t scrub_cycles = 2ull * host_.pm()->word_count();
    outcome.stats.protocol_cycles += scrub_cycles;
    charge(scrub_cycles);
    restored = buffer.restore(spm, chunk);
    outcome.stats.restore_uncorrectable_words += restored.uncorrectable_words;
    outcome.stats.protocol_cycles += copy_cycles;
    charge(copy_cycles);
    if (restored.ok()) ++outcome.stats.escalation_recoveries;
  }
  if (!restored.ok()) outcome.system_failure = true;
  span.set_args(chunk.word_offset, restored.uncorrectable_words);
  return restored;
}

std::uint32_t OceanRuntime::crc_of_chunk(workloads::ChunkRef chunk) {
  std::vector<std::uint32_t> buffer(chunk.words);
  host_.data_port().read_burst(chunk.word_offset, buffer);
  std::uint32_t state = ecc::Crc32::initial();
  for (const std::uint32_t word : buffer) {
    state = crc_.update(state, static_cast<std::uint8_t>(word));
    state = crc_.update(state, static_cast<std::uint8_t>(word >> 8));
    state = crc_.update(state, static_cast<std::uint8_t>(word >> 16));
    state = crc_.update(state, static_cast<std::uint8_t>(word >> 24));
  }
  return ecc::Crc32::finalize(state);
}

OceanRunOutcome OceanRuntime::run(workloads::StreamingTask& task) {
  OceanRunOutcome outcome;
  ProtectedBuffer buffer(*host_.pm());
  sim::MemoryPort& spm = host_.data_port();

  auto charge_checkpoint = [&](workloads::ChunkRef c) {
    const std::uint64_t cycles = ProtectedBuffer::copy_cycles(c) +
                                 config_.crc_cycles_per_word * c.words;
    outcome.stats.protocol_cycles += cycles;
    charge(cycles);
  };

  // Stage in the input and checkpoint it; a dirty read-back during the
  // copy means the staging writes failed — redo them.
  workloads::ChunkRef chunk = task.initialize(spm);
  ProtectedBuffer::SaveResult saved;
  for (std::uint32_t attempt = 0;; ++attempt) {
    {
      NTC_TELEM_SPAN(cp, telemetry::EventKind::Checkpoint, "ocean_checkpoint");
      cp.set_args(chunk.word_offset, chunk.words);
      saved = buffer.save_with_crc(spm, chunk, crc_);
    }
    NTC_TELEM_COUNT("ntc_ocean_checkpoint_words_total", chunk.words);
    NTC_TELEM_OBSERVE("ntc_ocean_checkpoint_words", chunk.words);
    outcome.stats.checkpoint_words += chunk.words;
    charge_checkpoint(chunk);
    if (saved.clean() || attempt >= config_.max_restore_attempts) break;
    chunk = task.initialize(spm);
  }
  buffer.commit();
  std::uint32_t expected_crc = saved.crc;

  for (std::size_t phase = 0; phase < task.phase_count(); ++phase) {
    // 1. Consume-time validation: the checkpoint holds exactly the last
    // output chunk, so the check applies when this phase consumes that
    // chunk (always true for classic streaming pipelines; disjoint
    // producer/consumer layouts skip it).
    const workloads::ChunkRef input = task.input_chunk(phase);
    const bool has_checkpoint = input.word_offset == chunk.word_offset &&
                                input.words == chunk.words;
    for (std::uint32_t attempt = 0; has_checkpoint; ++attempt) {
      ++outcome.stats.crc_checks;
      const std::uint64_t check_cycles =
          config_.crc_cycles_per_word * input.words;
      outcome.stats.protocol_cycles += check_cycles;
      charge(check_cycles);
      const bool match = crc_of_chunk(input) == expected_crc;
      NTC_TELEM_EVENT(telemetry::EventKind::CrcCheck, "ocean_crc_check",
                      input.word_offset, match ? 0 : 1);
      if (match) break;
      ++outcome.stats.crc_mismatches;
      NTC_TELEM_COUNT("ntc_ocean_crc_mismatches_total", 1);
      if (attempt >= config_.max_restore_attempts) break;  // best effort
      ++outcome.stats.restores;
      restore_with_escalation(buffer, spm, input, outcome);
    }

    // 2. Produce: run the phase and checkpoint its output into the idle
    // slot, validating while copying.  A mid-phase detected-uncorrectable
    // access or a dirty output chunk triggers rollback: restore the
    // input from the still-committed previous checkpoint and re-execute
    // the producer.
    workloads::PhaseResult result;
    for (std::uint32_t attempt = 0;; ++attempt) {
      result = task.run_phase(phase, spm);
      ++outcome.stats.phases_run;
      host_.add_compute_cycles(result.compute_cycles,
                               config_.fetches_per_cycle);
      {
        NTC_TELEM_SPAN(cp, telemetry::EventKind::Checkpoint,
                       "ocean_checkpoint");
        cp.set_args(result.output.word_offset, result.output.words);
        saved = buffer.save_with_crc(spm, result.output, crc_);
      }
      NTC_TELEM_COUNT("ntc_ocean_checkpoint_words_total", result.output.words);
      NTC_TELEM_OBSERVE("ntc_ocean_checkpoint_words", result.output.words);
      outcome.stats.checkpoint_words += result.output.words;
      charge_checkpoint(result.output);
      const bool good = !result.memory_fault && saved.clean();
      if (good || attempt >= config_.max_restore_attempts) break;
      ++outcome.stats.reexecutions;
      if (!has_checkpoint) break;  // producer inputs not recoverable
      ++outcome.stats.restores;
      restore_with_escalation(buffer, spm, input, outcome);
    }
    buffer.commit();
    chunk = result.output;
    expected_crc = saved.crc;
  }

  outcome.completed = true;
  return outcome;
}

std::uint64_t run_unprotected(OceanHost& host, workloads::StreamingTask& task,
                              double fetches_per_cycle) {
  sim::MemoryPort& spm = host.data_port();
  task.initialize(spm);
  std::uint64_t faulted_phases = 0;
  for (std::size_t phase = 0; phase < task.phase_count(); ++phase) {
    const workloads::PhaseResult result = task.run_phase(phase, spm);
    host.add_compute_cycles(result.compute_cycles, fetches_per_cycle);
    if (result.memory_fault) ++faulted_phases;
  }
  return faulted_phases;
}

std::uint64_t run_unprotected(sim::Platform& platform,
                              workloads::StreamingTask& task,
                              double fetches_per_cycle) {
  PlatformOceanHost host(platform);
  return run_unprotected(host, task, fetches_per_cycle);
}

}  // namespace ntc::ocean
