#include "ocean/optimizer.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace ntc::ocean {

namespace {

mitigation::MinVoltageSolver make_solver(energy::MemoryStyle style) {
  energy::MemoryCalculator calc(style, energy::reference_1k_x_32());
  return mitigation::MinVoltageSolver(calc.access_model(),
                                      calc.retention_model(),
                                      tech::platform_logic_timing_40nm());
}

}  // namespace

EpaOptimizer::EpaOptimizer(energy::MemoryStyle style,
                           mitigation::SolverConstraints constraints)
    : style_(style),
      constraints_(constraints),
      solver_(make_solver(style)),
      core_(energy::arm9_class_core_40nm()),
      timing_(tech::platform_logic_timing_40nm()) {}

OceanPlan EpaOptimizer::evaluate(const TaskProfile& profile, Volt vdd,
                                 std::size_t phases, Second deadline) const {
  NTC_REQUIRE(phases >= 1);
  NTC_REQUIRE(profile.compute_cycles > 0 && profile.chunk_words > 0);
  NTC_REQUIRE(deadline.value > 0.0);
  OceanPlan plan;
  plan.vdd = vdd;
  plan.phases = phases;

  const energy::MemoryCalculator spm_calc(style_,
                                          energy::MemoryGeometry{2048, 32});
  const energy::MemoryCalculator pm_calc(style_,
                                         energy::MemoryGeometry{1024, 32});
  const energy::MemoryFigures spm = spm_calc.at(vdd);
  const energy::MemoryFigures pm = pm_calc.at(vdd);

  const double words = profile.chunk_words;
  const double p_word_err =
      any_of_n(32, solver_.p_bit(vdd, constraints_.retention_weight));
  // A chunk validation reads every word; a mismatch triggers a restore.
  const double p_chunk_dirty = any_of_n(profile.chunk_words, p_word_err);
  plan.expected_restores_per_phase = p_chunk_dirty;

  // Cycle budget: compute + per-phase protocol (CRC ~4 cy/word, DMA
  // 2 cy/word, restore 2 cy/word weighted by its probability).
  const double n_phases = static_cast<double>(phases);
  const double protocol_cycles =
      n_phases * words * (4.0 + 2.0 + p_chunk_dirty * 2.0);
  const double total_cycles =
      static_cast<double>(profile.compute_cycles) + protocol_cycles;
  plan.protocol_overhead =
      protocol_cycles / static_cast<double>(profile.compute_cycles);

  // Constant-throughput operation: the clock is set so the task ends
  // exactly at the deadline; vdd must sustain that clock.
  const Hertz f_needed{total_cycles / deadline.value};
  if (timing_.fmax(vdd) < f_needed) {
    plan.feasible = false;
    return plan;
  }
  plan.duration = deadline;

  // Energy: core dynamic + SPM traffic + PM checkpoint traffic (BCH
  // codewords are 56/32 wider) + platform leakage over the duration.
  const double spm_accesses =
      static_cast<double>(profile.spm_accesses) +
      n_phases * words * (2.0 + p_chunk_dirty);
  const double pm_accesses = n_phases * words * (1.0 + p_chunk_dirty);
  const double pm_width_factor = 56.0 / 32.0;

  Joule energy = core_.dynamic_energy_per_cycle(vdd) * total_cycles;
  energy += spm.read_energy * spm_accesses;
  energy += pm.write_energy * (pm_accesses * pm_width_factor);
  const Watt leak = core_.leakage(vdd) + spm.leakage + pm.leakage;
  energy += leak * plan.duration;
  plan.energy = energy;
  plan.feasible = true;
  return plan;
}

OceanPlan EpaOptimizer::optimize(const TaskProfile& profile,
                                 Second deadline) const {
  NTC_REQUIRE(deadline.value > 0.0);
  // FIT feasibility floor from the quintuple-error threshold.
  mitigation::SolverConstraints constraints = constraints_;
  constraints.min_frequency = Hertz{0.0};
  const mitigation::OperatingPoint fit_floor =
      solver_.solve(mitigation::ocean_scheme(), constraints);

  OceanPlan best;
  double best_energy = 1e300;
  for (double v = fit_floor.voltage.value; v <= 1.10 + 1e-9; v += 0.01) {
    for (std::size_t phases : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      OceanPlan plan = evaluate(profile, Volt{v}, phases, deadline);
      if (!plan.feasible) continue;  // cannot make the deadline at v
      if (plan.energy.value < best_energy) {
        best_energy = plan.energy.value;
        best = plan;
      }
    }
  }
  return best;
}

}  // namespace ntc::ocean
