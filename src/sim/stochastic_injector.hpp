// The silicon-calibrated stochastic fault model of Section IV as a
// FaultInjector:
//   * retention faults — cells whose retention V_min exceeds the supply
//     are stuck at a random value (sampled from the Gaussian
//     noise-margin population, Eq. 2);
//   * access faults — on every read each stored bit flips transiently
//     with p = Eq. 5's access error probability; on every write each
//     bit fails to latch with the same probability (persistent until
//     rewritten).
// Per-cell mismatch deviates are drawn once at construction (the
// silicon fingerprint of the instance) and persist across voltage
// changes, so the same cells fail first every time the rail droops.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/fault_injector.hpp"

namespace ntc::sim {

class StochasticInjector final : public FaultInjector {
 public:
  StochasticInjector(reliability::AccessErrorModel access,
                     reliability::NoiseMarginModel retention, Rng rng,
                     std::uint32_t words, std::uint32_t stored_bits);

  std::string name() const override { return "stochastic"; }
  void stuck_overlay(std::uint32_t index, const FaultContext& ctx,
                     std::uint64_t& mask, std::uint64_t& value) override;
  std::uint64_t access_flips(AccessKind kind, std::uint32_t index,
                             const FaultContext& ctx) override;
  void on_operating_point(const FaultContext& ctx) override;

  /// Current per-bit access error probability (Eq. 5 at the last-seen
  /// supply).
  double p_access() const { return p_access_; }

 private:
  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  Rng rng_;
  std::uint32_t stored_bits_;
  double p_access_ = 0.0;
  double p_no_flip_ = 1.0;  ///< (1 - p_access)^stored_bits, fast path

  /// Per-word masks of retention-failed cells and their stuck values.
  std::vector<std::uint64_t> stuck_mask_;
  std::vector<std::uint64_t> stuck_value_;
  /// Per-cell mismatch deviates (fixed per instance, like silicon).
  std::vector<float> cell_sigma_;
};

}  // namespace ntc::sim
