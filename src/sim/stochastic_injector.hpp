// The silicon-calibrated stochastic fault model of Section IV as a
// FaultInjector:
//   * retention faults — cells whose retention V_min exceeds the supply
//     are stuck at a random value (sampled from the Gaussian
//     noise-margin population, Eq. 2);
//   * access faults — on every read each stored bit flips transiently
//     with p = Eq. 5's access error probability; on every write each
//     bit fails to latch with the same probability (persistent until
//     rewritten).
// Per-cell mismatch deviates are drawn once at construction (the
// silicon fingerprint of the instance) and persist across voltage
// changes, so the same cells fail first every time the rail droops.
// The deviates are folded into per-cell retention V_min at
// construction, so a supply change is one vectorisable threshold count
// instead of a full words x bits model evaluation; the stuck-value
// redraw is skipped entirely when the failing set did not change
// (bit-exact with the full rescan, which forks a fresh value stream
// per operating point).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/fault_injector.hpp"

namespace ntc::sim {

class StochasticInjector final : public FaultInjector {
 public:
  StochasticInjector(reliability::AccessErrorModel access,
                     reliability::NoiseMarginModel retention, Rng rng,
                     std::uint32_t words, std::uint32_t stored_bits);

  std::string name() const override { return "stochastic"; }
  void stuck_overlay(std::uint32_t index, const FaultContext& ctx,
                     std::uint64_t& mask, std::uint64_t& value) override;
  std::uint64_t access_flips(AccessKind kind, std::uint32_t index,
                             const FaultContext& ctx) override;
  void on_operating_point(const FaultContext& ctx) override;
  /// Retention stuck state depends only on the supply, never on the
  /// access counter.
  bool overlay_is_stationary() const override { return true; }

  /// Current per-bit access error probability (Eq. 5 at the last-seen
  /// supply).
  double p_access() const { return p_access_; }

 private:
  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  Rng rng_;
  std::uint32_t stored_bits_;
  double p_access_ = 0.0;
  double p_no_flip_ = 1.0;  ///< (1 - p_access)^stored_bits, fast path

  /// Per-word masks of retention-failed cells and their stuck values.
  std::vector<std::uint64_t> stuck_mask_;
  std::vector<std::uint64_t> stuck_value_;
  /// Per-cell retention V_min derived from the mismatch deviates
  /// (fixed per instance, like silicon).  The failing set at any supply
  /// is {cells with V_min > vdd}; it is monotone in vdd, so an equal
  /// count means an identical set and the size alone detects changes.
  std::vector<double> cell_vmin_;
  std::size_t stuck_count_ = 0;  ///< current failing-set size
};

}  // namespace ntc::sim
