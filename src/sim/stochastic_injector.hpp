// The silicon-calibrated stochastic fault model of Section IV as a
// FaultInjector:
//   * retention faults — cells whose retention V_min exceeds the supply
//     are stuck at a random value (sampled from the Gaussian
//     noise-margin population, Eq. 2);
//   * access faults — on every read each stored bit flips transiently
//     with p = Eq. 5's access error probability; on every write each
//     bit fails to latch with the same probability (persistent until
//     rewritten).
// Per-cell mismatch deviates are the silicon fingerprint of the
// instance and persist across voltage changes, so the same cells fail
// first every time the rail droops.  The fingerprint is expensive
// (~10^5 Gaussian draws) and is therefore:
//   * lazy — Box-Muller deviates over 53-bit uniforms are bounded
//     (|sigma| <= Rng::max_normal_magnitude()), so any supply above the
//     V_min that bound implies provably retains every cell and the
//     fingerprint need not exist at all.  A campaign cell at a healthy
//     supply never draws it;
//   * shared — when a reliability::ModelTableCache is attached, the
//     fingerprint is fetched from it keyed by (model, seed, cells), so
//     every platform with the same Monte-Carlo seed reuses one
//     immutable table instead of re-drawing it per grid cell.
// Both paths are bit-exact against the eager per-instance draw: the
// deviate stream, the failing set at every supply, and the stuck-value
// redraw order are preserved by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "reliability/access_model.hpp"
#include "reliability/model_tables.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/fault_injector.hpp"

namespace ntc::sim {

/// The nonzero flip mask for one word access: `stored_bits` iid
/// Bernoulli(p_access) bits conditioned on at least one being set.
/// Sampled by an exact conditional chain rather than rejection: while
/// no bit has flipped yet, bit b flips with p / (1 - (1-p)^(bits-b)) —
/// the product telescopes back to the iid-conditioned law exactly —
/// and once one has, the remaining bits are plain Bernoulli(p).  This
/// consumes exactly `stored_bits` engine steps; the rejection sampler
/// it replaces consumed an expected 1/(1-(1-p)^bits) full rounds,
/// millions of steps per mask at campaign probabilities.  Shared by
/// the scalar injector and the batched trace-replay engine
/// (faultsim/batch.cpp) so the two stay draw-for-draw identical.
inline std::uint64_t draw_conditional_nonzero_flips(
    Rng& rng, double p_access, std::uint32_t stored_bits) {
  std::uint64_t flips = 0;
  // -expm1(k*log1p(-p)) = 1 - (1-p)^k without the cancellation the
  // direct power suffers at tiny p.
  const double log_q = std::log1p(-p_access);
  for (std::uint32_t b = 0; b < stored_bits; ++b) {
    if (flips == 0) {
      const double p_first =
          p_access /
          -std::expm1(static_cast<double>(stored_bits - b) * log_q);
      const bool hit = rng.uniform() < p_first;
      // The final chain step has p_first == 1 exactly; guard the
      // floating-point edge so the mask can never come out zero.
      if (hit || b + 1 == stored_bits) flips |= std::uint64_t{1} << b;
    } else if (rng.bernoulli(p_access)) {
      flips |= std::uint64_t{1} << b;
    }
  }
  return flips;
}

class StochasticInjector final : public FaultInjector {
 public:
  StochasticInjector(reliability::AccessErrorModel access,
                     reliability::NoiseMarginModel retention, Rng rng,
                     std::uint32_t words, std::uint32_t stored_bits,
                     std::shared_ptr<reliability::ModelTableCache> tables =
                         nullptr);

  std::string name() const override { return "stochastic"; }
  void stuck_overlay(std::uint32_t index, const FaultContext& ctx,
                     std::uint64_t& mask, std::uint64_t& value) override;
  std::uint64_t access_flips(AccessKind kind, std::uint32_t index,
                             const FaultContext& ctx) override;
  void on_operating_point(const FaultContext& ctx) override;
  /// Retention stuck state depends only on the supply, never on the
  /// access counter.
  bool overlay_is_stationary() const override { return true; }

  /// Current per-bit access error probability (Eq. 5 at the last-seen
  /// supply).
  double p_access() const { return p_access_; }

  /// Fill flips[0..count) with the masks `count` consecutive
  /// access_flips calls would draw, in the same order (the burst fast
  /// path; access kind and word index do not enter the distribution).
  /// Must only be called while p_access() > 0 — the zero-rate case
  /// draws nothing per word and is handled by the caller's fault-free
  /// path.
  void access_flips_burst(std::uint32_t count, std::uint64_t* flips);

  /// RNG snapshot/restore for burst rollback (SramModule::txn_save):
  /// the flip stream is the injector's only access-visible state.
  Rng rng_state() const { return rng_; }
  void restore_rng(const Rng& rng) { rng_ = rng; }

  /// Restart as a freshly-constructed instance over `rng`: new silicon
  /// fingerprint, no stuck cells, untouched flip stream — the
  /// Platform::reset fast path.  The caller re-derives the operating
  /// point afterwards.
  void reseed(Rng rng);

  /// True once the fingerprint has been drawn or fetched (test hook for
  /// the lazy path).
  bool fingerprint_materialized() const { return vmin_ != nullptr; }

 private:
  void materialize_fingerprint();
  void rebuild_stuck_state(std::size_t count);
  std::uint64_t draw_flip_mask();
  std::uint64_t draw_nonzero_flips();

  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  Rng rng_;
  std::uint32_t stored_bits_;
  std::shared_ptr<reliability::ModelTableCache> tables_;
  double p_access_ = 0.0;
  double p_no_flip_ = 1.0;  ///< (1 - p_access)^stored_bits, fast path
  /// Integer image of p_no_flip_ for the burst gate scan: a 53-bit
  /// uniform u gates a flip when (u >> 11) >= gate_threshold_
  /// (simd::gate_threshold keeps this exactly equivalent to the
  /// double compare draw_flip_mask performs).
  std::uint64_t gate_threshold_ = std::uint64_t{1} << 53;

  /// Supplies at or above this provably retain every cell whatever the
  /// (undrawn) deviates are: V_min of a cell at the Box-Muller bound.
  double lazy_safe_vdd_ = 0.0;
  /// The fingerprint, null until a supply below lazy_safe_vdd_ forces
  /// it into existence; shared when a table cache is attached.
  std::shared_ptr<const reliability::RetentionVminTable> vmin_;

  /// Per-word masks of retention-failed cells and their stuck values.
  std::vector<std::uint64_t> stuck_mask_;
  std::vector<std::uint64_t> stuck_value_;
  std::size_t stuck_count_ = 0;  ///< current failing-set size
};

}  // namespace ntc::sim
