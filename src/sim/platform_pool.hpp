// Per-worker pool of reusable Platform instances.
//
// A campaign grid cell needs a platform in a specific (scheme, seed,
// vdd) state; constructing one per cell spends most of the cell's wall
// clock on arena allocation and model setup.  A PlatformPool keeps one
// platform per mitigation scheme alive and hands it out for
// Platform::reset-based reuse.  The pool is intentionally NOT
// thread-safe: each campaign worker owns a private pool, so pooled
// platforms are never shared between threads and reuse needs no
// locking.
//
// The pool stores an opaque `client_state` per slot so the owner can
// keep per-platform companions (e.g. the scenario injectors attached to
// the platform's arrays) alive and findable across acquisitions.
#pragma once

#include <memory>
#include <vector>

#include "sim/platform.hpp"

namespace ntc::sim {

class PlatformPool {
 public:
  struct Slot {
    std::unique_ptr<Platform> platform;
    /// Owner-defined companion state bound to this platform's lifetime
    /// (null until the owner sets it on first acquisition).
    std::shared_ptr<void> client_state;
  };

  /// `base` supplies everything but the scheme (style, sizes, clock,
  /// tables, ...); each slot's platform is constructed from it with the
  /// slot's scheme on first acquisition.
  explicit PlatformPool(PlatformConfig base) : base_(std::move(base)) {}

  PlatformPool(const PlatformPool&) = delete;
  PlatformPool& operator=(const PlatformPool&) = delete;

  /// The pooled platform for `scheme`, constructed on first use.  The
  /// platform keeps whatever state its previous run left; callers rearm
  /// their injectors and Platform::reset it before use.
  Slot& acquire(mitigation::SchemeKind scheme);

  /// Platforms constructed so far (for tests and ledgers).
  std::size_t size() const;

 private:
  PlatformConfig base_;
  /// Indexed by SchemeKind; small and fixed, so a flat array beats a map.
  std::vector<Slot> slots_;
};

}  // namespace ntc::sim
