// Memory access tracing: record the transaction stream of a workload
// and replay it later — against a different memory configuration,
// voltage, or fault seed.
//
// This is the standard simulator workflow for memory studies: capture a
// trace once (expensive execution-driven run), then sweep the memory
// design space trace-driven.  The Figure 8/9 benches run execution-
// driven; the trace infrastructure backs the design-space example and
// lets users bring their own workloads as traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/memory_port.hpp"

namespace ntc::sim {

struct TraceEntry {
  enum class Kind : std::uint8_t { Read, Write };
  Kind kind = Kind::Read;
  std::uint32_t word_index = 0;
  std::uint32_t data = 0;  ///< written data (writes) / observed data (reads)
};

/// A recorded transaction stream.
class AccessTrace {
 public:
  void append(TraceEntry entry) { entries_.push_back(entry); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& operator[](std::size_t i) const { return entries_[i]; }

  std::uint64_t read_count() const;
  std::uint64_t write_count() const;
  /// Number of distinct words touched (the trace's footprint).
  std::uint64_t footprint_words() const;

  /// Text serialisation: one "R addr data" / "W addr data" line each.
  void save(std::ostream& out) const;
  static AccessTrace load(std::istream& in);

 private:
  std::vector<TraceEntry> entries_;
};

/// Pass-through port that records every transaction.
class TracingPort final : public MemoryPort {
 public:
  explicit TracingPort(MemoryPort& inner) : inner_(inner) {}

  AccessStatus read_word(std::uint32_t word_index, std::uint32_t& data) override;
  AccessStatus write_word(std::uint32_t word_index, std::uint32_t data) override;
  std::uint32_t word_count() const override { return inner_.word_count(); }

  const AccessTrace& trace() const { return trace_; }
  AccessTrace take_trace() { return std::move(trace_); }

 private:
  MemoryPort& inner_;
  AccessTrace trace_;
};

/// Replay statistics: how the target memory behaved under the trace.
struct ReplayResult {
  std::uint64_t transactions = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  /// Reads whose data differed from the recorded (golden) value.
  std::uint64_t wrong_reads = 0;
};

/// Drive `target` with the trace.  Writes use the recorded data; reads
/// compare against the recorded data (golden-trace checking).
ReplayResult replay(const AccessTrace& trace, MemoryPort& target);

}  // namespace ntc::sim
