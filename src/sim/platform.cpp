#include "sim/platform.hpp"

#include "common/assert.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"
#include "tech/node.hpp"

namespace ntc::sim {

namespace {

energy::MemoryGeometry geometry_for(std::uint32_t bytes) {
  return energy::MemoryGeometry{bytes / 4, 32};
}

// Process-wide immutable singletons.  Every platform uses the same two
// codes and codec overheads; the decode/encode paths are const with no
// mutable state, so sharing them across platforms — and across campaign
// worker threads — is safe and spares each construction a BCH table
// build and two codec syntheses.
const std::shared_ptr<const ecc::BlockCode>& shared_secded_code() {
  static const std::shared_ptr<const ecc::BlockCode> code =
      std::make_shared<ecc::HammingSecded>(32);
  return code;
}

const std::shared_ptr<const ecc::BlockCode>& shared_bch_code() {
  static const std::shared_ptr<const ecc::BlockCode> code =
      std::make_shared<ecc::BchCode>(ecc::ocean_buffer_code());
  return code;
}

const ecc::CodecOverhead& shared_secded_overhead() {
  static const ecc::CodecOverhead overhead = ecc::estimate_codec_overhead(
      ecc::HammingSecded(32), tech::node_40nm_lp());
  return overhead;
}

const ecc::CodecOverhead& shared_bch_overhead() {
  static const ecc::CodecOverhead overhead = ecc::estimate_codec_overhead(
      ecc::ocean_buffer_code(), tech::node_40nm_lp());
  return overhead;
}

mitigation::MitigationScheme scheme_for(mitigation::SchemeKind kind) {
  return kind == mitigation::SchemeKind::Secded
             ? mitigation::secded_scheme()
             : kind == mitigation::SchemeKind::Ocean
                   ? mitigation::ocean_scheme()
                   : mitigation::no_mitigation();
}

energy::LogicModel codec_model_for(mitigation::SchemeKind kind) {
  return kind == mitigation::SchemeKind::Ocean
             ? energy::ocean_hw_logic_40nm()
             : energy::secded_codec_logic_40nm();
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      scheme_(scheme_for(config_.scheme)),
      imem_calc_(config_.memory_style, geometry_for(config_.imem_bytes)),
      spm_calc_(config_.memory_style, geometry_for(config_.spm_bytes)),
      pm_calc_(config_.memory_style, geometry_for(config_.pm_bytes)),
      core_model_(energy::arm9_class_core_40nm()),
      codec_model_(codec_model_for(config_.scheme)),
      secded_overhead_(shared_secded_overhead()),
      bch_overhead_(shared_bch_overhead()),
      bus_(0) {
  NTC_REQUIRE(config_.imem_bytes % 4 == 0 && config_.spm_bytes % 4 == 0);
  NTC_REQUIRE(config_.vdd.value > 0.0 && config_.clock.value > 0.0);
  build_memories();
}

void Platform::build_memories() {
  const bool secded_memories = config_.scheme == mitigation::SchemeKind::Secded;
  const bool ocean = config_.scheme == mitigation::SchemeKind::Ocean;

  const std::shared_ptr<const ecc::BlockCode>& secded = shared_secded_code();
  const std::shared_ptr<const ecc::BlockCode>& bch = shared_bch_code();

  // IM: SECDED under both ECC and OCEAN (fetches must at least detect).
  imem_ = make_memory("imem", config_.imem_bytes,
                      (secded_memories || ocean) ? 39 : 32,
                      (secded_memories || ocean) ? secded : nullptr, 0x10);
  // SPM: SECDED under ECC and OCEAN — Figure 6 keeps the ECC module in
  // the OCEAN configuration; OCEAN adds rollback for what SECDED can
  // only *detect*, which is how it tolerates the deeper supply.
  spm_ = make_memory("spm", config_.spm_bytes,
                     (secded_memories || ocean) ? 39 : 32,
                     (secded_memories || ocean) ? secded : nullptr, 0x20);
  pm_.reset();
  if (ocean) {
    pm_ = make_memory("pm", config_.pm_bytes,
                      static_cast<std::uint32_t>(bch->code_bits()), bch, 0x30);
  }

  bus_ = Bus(0);
  bus_.map("imem", PlatformMap::kImemBase, imem_.get());
  bus_.map("spm", PlatformMap::kSpmBase, spm_.get());
  if (pm_) bus_.map("pm", PlatformMap::kPmBase, pm_.get());
  // The core references bus_ (the member object, stable across the
  // assignment above), so it survives rebuilds; it only needs creating
  // once.
  if (!cpu_) cpu_ = std::make_unique<Cpu>(bus_);
  cpu_->reset(PlatformMap::kImemBase * 4);
}

void Platform::reset(std::uint64_t seed, Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  config_.seed = seed;
  config_.vdd = vdd;
  // Salts match make_memory's construction-time streams, so a reset
  // platform draws exactly what a fresh Platform(config) would.
  imem_->array().reset(vdd, Rng(seed).fork(0x10));
  imem_->reset_stats();
  spm_->array().reset(vdd, Rng(seed).fork(0x20));
  spm_->reset_stats();
  if (pm_) {
    pm_->array().reset(vdd, Rng(seed).fork(0x30));
    pm_->reset_stats();
  }
  bus_.reset_stats();
  extra_cycles_ = 0;
  extra_fetches_ = 0;
  cpu_->reset(PlatformMap::kImemBase * 4);
}

void Platform::reset(std::uint64_t seed, Volt vdd,
                     mitigation::SchemeKind scheme) {
  if (scheme == config_.scheme) {
    reset(seed, vdd);
    return;
  }
  config_.scheme = scheme;
  config_.seed = seed;
  config_.vdd = vdd;
  scheme_ = scheme_for(scheme);
  codec_model_ = codec_model_for(scheme);
  extra_cycles_ = 0;
  extra_fetches_ = 0;
  build_memories();
}

std::unique_ptr<EccMemory> Platform::make_memory(
    const std::string& name, std::uint32_t bytes, std::uint32_t stored_bits,
    std::shared_ptr<const ecc::BlockCode> code, std::uint64_t salt) {
  energy::MemoryCalculator calc(config_.memory_style, geometry_for(bytes));
  auto array = std::make_unique<SramModule>(
      name, bytes / 4, stored_bits, calc.access_model(), calc.retention_model(),
      config_.vdd, Rng(config_.seed).fork(salt), config_.inject_faults,
      config_.tables);
  return std::make_unique<EccMemory>(std::move(array), std::move(code));
}

void Platform::load_program(const std::vector<std::uint32_t>& words) {
  NTC_REQUIRE(words.size() <= imem_->word_count());
  // Programming happens at safe voltage: suspend fault injection by
  // writing through a temporarily raised rail.
  const Volt run_vdd = config_.vdd;
  imem_->array().set_vdd(Volt{1.1});
  for (std::uint32_t i = 0; i < words.size(); ++i) imem_->write_word(i, words[i]);
  imem_->array().set_vdd(run_vdd);
  imem_->array().reset_stats();
  imem_->reset_stats();
  cpu_->reset(PlatformMap::kImemBase * 4);
}

void Platform::add_compute_cycles(std::uint64_t cycles, double fetches_per_cycle) {
  NTC_REQUIRE(fetches_per_cycle >= 0.0);
  extra_cycles_ += cycles;
  extra_fetches_ +=
      static_cast<std::uint64_t>(fetches_per_cycle * static_cast<double>(cycles));
}

std::uint64_t Platform::total_cycles() const {
  return cpu_->stats().cycles + extra_cycles_;
}

Second Platform::elapsed() const {
  return Second{static_cast<double>(total_cycles()) / config_.clock.value};
}

void Platform::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  config_.vdd = vdd;
  imem_->array().set_vdd(vdd);
  spm_->array().set_vdd(vdd);
  if (pm_) pm_->array().set_vdd(vdd);
}

PlatformEnergyReport Platform::energy_report() const {
  const Second t = elapsed();
  NTC_REQUIRE_MSG(t.value > 0.0, "no activity to report");
  const Volt v = config_.vdd;
  const Celsius temp = config_.temperature;

  PlatformEnergyReport report;

  // --- Core: dynamic per cycle + leakage.
  const std::uint64_t cycles = total_cycles();
  const Joule core_dyn =
      core_model_.dynamic_energy_per_cycle(v) * static_cast<double>(cycles);
  report.core = core_dyn / t + core_model_.leakage(v, temp);

  // --- Memories: per-access dynamic (scaled by stored word width) plus
  // leakage.  Fetch counts for execution-driven workloads are charged
  // via extra_fetches_.
  auto memory_power = [&](const EccMemory& mem,
                          const energy::MemoryCalculator& calc,
                          std::uint64_t extra_reads) {
    const energy::MemoryFigures fig = calc.at(v, temp);
    const auto& st = mem.array().stats();
    const double width_factor =
        static_cast<double>(mem.array().stored_bits()) / 32.0;
    const Joule dyn =
        fig.read_energy * (static_cast<double>(st.reads + extra_reads) * width_factor) +
        fig.write_energy * (static_cast<double>(st.writes) * width_factor);
    return dyn / t + fig.leakage;
  };
  report.imem = memory_power(*imem_, imem_calc_, extra_fetches_);
  report.spm = memory_power(*spm_, spm_calc_, 0);
  if (pm_) report.pm = memory_power(*pm_, pm_calc_, 0);

  // --- Codec hardware: per protected access plus its leakage.
  Joule codec_dyn{0.0};
  auto charge_codec = [&](const EccMemory& mem, const ecc::CodecOverhead& oh,
                          std::uint64_t extra_reads) {
    if (!mem.code()) return;
    const auto& st = mem.array().stats();
    codec_dyn += oh.decode_energy(v) * static_cast<double>(st.reads + extra_reads);
    codec_dyn += oh.encode_energy(v) * static_cast<double>(st.writes);
  };
  charge_codec(*imem_, secded_overhead_, extra_fetches_);
  charge_codec(*spm_, secded_overhead_, 0);
  if (pm_) charge_codec(*pm_, bch_overhead_, 0);
  Watt codec_leak{0.0};
  if (config_.scheme != mitigation::SchemeKind::NoMitigation)
    codec_leak = codec_model_.leakage(v, temp);
  report.codec = codec_dyn / t + codec_leak;

  return report;
}

}  // namespace ntc::sim
