#include "sim/sram_module.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/stochastic_injector.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::sim {

SramModule::SramModule(std::string name, std::uint32_t words,
                       std::uint32_t stored_bits,
                       reliability::AccessErrorModel access,
                       reliability::NoiseMarginModel retention, Volt vdd,
                       Rng rng, bool inject_faults,
                       std::shared_ptr<reliability::ModelTableCache> tables)
    : name_(std::move(name)),
      stored_bits_(stored_bits),
      access_(std::move(access)),
      retention_(std::move(retention)),
      vdd_(vdd),
      inject_faults_(inject_faults),
      data_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  if (inject_faults_) {
    stochastic_ = std::make_shared<StochasticInjector>(
        access_, retention_, rng, words, stored_bits_, std::move(tables));
    injectors_.push_back(stochastic_);
  }
  derive_fault_state();
}

void SramModule::reset(Volt vdd, Rng rng) {
  NTC_REQUIRE(vdd.value > 0.0);
  vdd_ = vdd;
  std::fill(data_.begin(), data_.end(), 0);
  stats_ = SramStats{};
  if (stochastic_) stochastic_->reseed(rng);
  // One derive replays what construction plus injector attachment did:
  // it re-derives every injector at the new operating point and commits
  // the merged overlay into the zeroed array.
  derive_fault_state();
}

void SramModule::merged_overlay(std::uint32_t index, const FaultContext& ctx,
                                std::uint64_t& mask_bits,
                                std::uint64_t& value_bits) const {
  mask_bits = 0;
  value_bits = 0;
  for (const auto& injector : injectors_) {
    std::uint64_t m = 0, v = 0;
    injector->stuck_overlay(index, ctx, m, v);
    value_bits |= v & m & ~mask_bits;
    mask_bits |= m;
  }
}

std::uint64_t SramModule::gather_flips(AccessKind kind, std::uint32_t index,
                                       const FaultContext& ctx) {
  std::uint64_t flips = 0;
  for (const auto& injector : injectors_)
    flips ^= injector->access_flips(kind, index, ctx);
  return flips;
}

void SramModule::derive_fault_state() {
  ctx_.words = words();
  ctx_.stored_bits = stored_bits_;
  ctx_.vdd = vdd_;
  ctx_.access_count = stats_.reads + stats_.writes;
  for (const auto& injector : injectors_) injector->on_operating_point(ctx_);

  // The merged overlay can be cached per word only while no injector's
  // overlay depends on the access counter; it is re-derived here on
  // every operating-point or chain change, so voltage-dependent stuck
  // state (healing) stays exact.
  overlay_cached_ = true;
  for (const auto& injector : injectors_)
    if (!injector->overlay_is_stationary()) overlay_cached_ = false;
  if (overlay_cached_) {
    overlay_mask_.assign(words(), 0);
    overlay_value_.assign(words(), 0);
  } else {
    overlay_mask_.clear();
    overlay_value_.clear();
  }

  stats_.stuck_bits = 0;
  bool any_overlay = false;
  for (std::uint32_t w = 0; w < words(); ++w) {
    std::uint64_t m = 0, v = 0;
    merged_overlay(w, ctx_, m, v);
    // A forced cell physically flips to its imposed state: commit the
    // loss so data stays corrupted even if the rail is raised again
    // later (drowsy-mode data loss is real).
    data_[w] = (data_[w] & ~m) | (v & m);
    stats_.stuck_bits +=
        static_cast<std::uint64_t>(__builtin_popcountll(m));
    if (overlay_cached_) {
      overlay_mask_[w] = m;
      overlay_value_[w] = v & m;
    }
    any_overlay = any_overlay || m != 0;
  }
  overlay_zero_ = overlay_cached_ && !any_overlay;

  // Access flips are possible whenever the stochastic rate is nonzero
  // or any scripted injector is attached (its burst events arm on the
  // access counter, so assume the worst).
  flips_possible_ = false;
  for (const auto& injector : injectors_) {
    if (injector == stochastic_) {
      if (stochastic_->p_access() > 0.0) flips_possible_ = true;
    } else {
      flips_possible_ = true;
    }
  }
}

void SramModule::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  vdd_ = vdd;
  derive_fault_state();
}

void SramModule::attach_injector(std::shared_ptr<FaultInjector> injector) {
  NTC_REQUIRE(injector != nullptr);
  injectors_.push_back(std::move(injector));
  derive_fault_state();
}

double SramModule::access_error_probability() const {
  return stochastic_ ? stochastic_->p_access() : 0.0;
}

std::uint64_t SramModule::read_raw(std::uint32_t index) {
  NTC_REQUIRE(index < words());
  ++stats_.reads;
  ++ctx_.access_count;
  if (!flips_possible_) {
    // Fault-free fast path: no transient flips pending and the stuck
    // overlay is known, so the access is a plain array load.
    if (overlay_zero_) return data_[index] & mask();
    if (overlay_cached_) {
      const std::uint64_t m = overlay_mask_[index];
      return ((data_[index] & ~m) | overlay_value_[index]) & mask();
    }
  }
  std::uint64_t m = 0, v = 0;
  if (overlay_cached_) {
    m = overlay_mask_[index];
    v = overlay_value_[index];
  } else {
    merged_overlay(index, ctx_, m, v);
  }
  const std::uint64_t value = (data_[index] & ~m) | v;
  std::uint64_t flips = 0;
  if (flips_possible_) {
    flips = gather_flips(AccessKind::Read, index, ctx_);
    stats_.injected_read_flips +=
        static_cast<std::uint64_t>(__builtin_popcountll(flips));
  }
  return (value ^ flips) & mask();
}

void SramModule::read_raw_burst(std::uint32_t index, std::uint64_t* out,
                                std::uint32_t count) {
  NTC_REQUIRE(static_cast<std::uint64_t>(index) + count <= words());
  if (count == 0) return;
  const std::uint64_t msk = mask();
  if (!flips_possible_ && overlay_cached_) {
    // Fault-free fast path: the whole range is a masked copy.
    stats_.reads += count;
    ctx_.access_count += count;
    if (overlay_zero_) {
      for (std::uint32_t i = 0; i < count; ++i)
        out[i] = data_[index + i] & msk;
    } else {
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t m = overlay_mask_[index + i];
        out[i] = ((data_[index + i] & ~m) | overlay_value_[index + i]) & msk;
      }
    }
    return;
  }
  if (injectors_.size() == 1 && stochastic_ && injectors_[0] == stochastic_ &&
      overlay_cached_) {
    // Stochastic-only chain: draw the per-word flip masks in word order
    // (identical stream to per-word access_flips calls) without the
    // per-access chain walk and virtual dispatch.
    stats_.reads += count;
    ctx_.access_count += count;
    constexpr std::uint32_t kChunk = 64;
    std::uint64_t flips[kChunk];
    std::uint64_t flipped_bits = 0;
    for (std::uint32_t done = 0; done < count;) {
      const std::uint32_t m = std::min(count - done, kChunk);
      stochastic_->access_flips_burst(m, flips);
      for (std::uint32_t i = 0; i < m; ++i) {
        const std::uint32_t w = index + done + i;
        const std::uint64_t om = overlay_mask_[w];
        const std::uint64_t value = (data_[w] & ~om) | overlay_value_[w];
        flipped_bits +=
            static_cast<std::uint64_t>(__builtin_popcountll(flips[i]));
        out[done + i] = (value ^ flips[i]) & msk;
      }
      done += m;
    }
    stats_.injected_read_flips += flipped_bits;
    if (flipped_bits > 0) {
      NTC_TELEM_EVENT(telemetry::EventKind::InjectedFlips, "sram_read_flips",
                      flipped_bits, count);
      NTC_TELEM_COUNT("ntc_sram_injected_read_flips_total", flipped_bits);
    }
    return;
  }
  // Scripted injectors attached: their hooks see every access in
  // per-word order (burst events arm on exact access counts).
  for (std::uint32_t i = 0; i < count; ++i) out[i] = read_raw(index + i);
}

void SramModule::write_raw_burst(std::uint32_t index,
                                 const std::uint64_t* values,
                                 std::uint32_t count) {
  NTC_REQUIRE(static_cast<std::uint64_t>(index) + count <= words());
  if (count == 0) return;
  const std::uint64_t msk = mask();
  if (!flips_possible_) {
    stats_.writes += count;
    ctx_.access_count += count;
    for (std::uint32_t i = 0; i < count; ++i) {
      NTC_REQUIRE((values[i] & ~msk) == 0);
      data_[index + i] = values[i];
    }
    return;
  }
  if (injectors_.size() == 1 && stochastic_ && injectors_[0] == stochastic_) {
    stats_.writes += count;
    ctx_.access_count += count;
    constexpr std::uint32_t kChunk = 64;
    std::uint64_t flips[kChunk];
    std::uint64_t flipped_bits = 0;
    for (std::uint32_t done = 0; done < count;) {
      const std::uint32_t m = std::min(count - done, kChunk);
      stochastic_->access_flips_burst(m, flips);
      for (std::uint32_t i = 0; i < m; ++i) {
        NTC_REQUIRE((values[done + i] & ~msk) == 0);
        flipped_bits +=
            static_cast<std::uint64_t>(__builtin_popcountll(flips[i]));
        data_[index + done + i] = (values[done + i] ^ flips[i]) & msk;
      }
      done += m;
    }
    stats_.injected_write_flips += flipped_bits;
    if (flipped_bits > 0) {
      NTC_TELEM_EVENT(telemetry::EventKind::InjectedFlips, "sram_write_flips",
                      flipped_bits, count);
      NTC_TELEM_COUNT("ntc_sram_injected_write_flips_total", flipped_bits);
    }
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) write_raw(index + i, values[i]);
}

bool SramModule::txn_supported() const {
  return injectors_.empty() ||
         (injectors_.size() == 1 && injectors_[0] == stochastic_);
}

SramModule::Txn SramModule::txn_save() const {
  Txn txn;
  txn.stats = stats_;
  txn.access_count = ctx_.access_count;
  if (stochastic_) {
    txn.rng = stochastic_->rng_state();
    txn.has_rng = true;
  }
  return txn;
}

void SramModule::txn_restore(const Txn& txn) {
  stats_ = txn.stats;
  ctx_.access_count = txn.access_count;
  if (txn.has_rng) stochastic_->restore_rng(txn.rng);
}

void SramModule::write_raw(std::uint32_t index, std::uint64_t value) {
  NTC_REQUIRE(index < words());
  NTC_REQUIRE((value & ~mask()) == 0);
  ++stats_.writes;
  ++ctx_.access_count;
  if (!flips_possible_) {
    data_[index] = value;
    return;
  }
  const std::uint64_t flips = gather_flips(AccessKind::Write, index, ctx_);
  stats_.injected_write_flips +=
      static_cast<std::uint64_t>(__builtin_popcountll(flips));
  data_[index] = (value ^ flips) & mask();
}

}  // namespace ntc::sim
