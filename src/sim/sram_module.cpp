#include "sim/sram_module.hpp"

#include "common/assert.hpp"
#include "sim/stochastic_injector.hpp"

namespace ntc::sim {

SramModule::SramModule(std::string name, std::uint32_t words,
                       std::uint32_t stored_bits,
                       reliability::AccessErrorModel access,
                       reliability::NoiseMarginModel retention, Volt vdd,
                       Rng rng, bool inject_faults)
    : name_(std::move(name)),
      stored_bits_(stored_bits),
      access_(std::move(access)),
      retention_(std::move(retention)),
      vdd_(vdd),
      inject_faults_(inject_faults),
      data_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  if (inject_faults_) {
    stochastic_ = std::make_shared<StochasticInjector>(access_, retention_, rng,
                                                       words, stored_bits_);
    injectors_.push_back(stochastic_);
  }
  derive_fault_state();
}

FaultContext SramModule::context() const {
  FaultContext ctx;
  ctx.words = words();
  ctx.stored_bits = stored_bits_;
  ctx.vdd = vdd_;
  ctx.access_count = stats_.reads + stats_.writes;
  return ctx;
}

void SramModule::merged_overlay(std::uint32_t index, const FaultContext& ctx,
                                std::uint64_t& mask_bits,
                                std::uint64_t& value_bits) const {
  mask_bits = 0;
  value_bits = 0;
  for (const auto& injector : injectors_) {
    std::uint64_t m = 0, v = 0;
    injector->stuck_overlay(index, ctx, m, v);
    value_bits |= v & m & ~mask_bits;
    mask_bits |= m;
  }
}

std::uint64_t SramModule::gather_flips(AccessKind kind, std::uint32_t index,
                                       const FaultContext& ctx) {
  std::uint64_t flips = 0;
  for (const auto& injector : injectors_)
    flips ^= injector->access_flips(kind, index, ctx);
  return flips;
}

void SramModule::derive_fault_state() {
  const FaultContext ctx = context();
  for (const auto& injector : injectors_) injector->on_operating_point(ctx);
  stats_.stuck_bits = 0;
  for (std::uint32_t w = 0; w < words(); ++w) {
    std::uint64_t m = 0, v = 0;
    merged_overlay(w, ctx, m, v);
    // A forced cell physically flips to its imposed state: commit the
    // loss so data stays corrupted even if the rail is raised again
    // later (drowsy-mode data loss is real).
    data_[w] = (data_[w] & ~m) | (v & m);
    stats_.stuck_bits +=
        static_cast<std::uint64_t>(__builtin_popcountll(m));
  }
}

void SramModule::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  vdd_ = vdd;
  derive_fault_state();
}

void SramModule::attach_injector(std::shared_ptr<FaultInjector> injector) {
  NTC_REQUIRE(injector != nullptr);
  injectors_.push_back(std::move(injector));
  derive_fault_state();
}

double SramModule::access_error_probability() const {
  return stochastic_ ? stochastic_->p_access() : 0.0;
}

std::uint64_t SramModule::read_raw(std::uint32_t index) {
  NTC_REQUIRE(index < words());
  ++stats_.reads;
  const FaultContext ctx = context();
  std::uint64_t m = 0, v = 0;
  merged_overlay(index, ctx, m, v);
  std::uint64_t value = (data_[index] & ~m) | (v & m);
  const std::uint64_t flips = gather_flips(AccessKind::Read, index, ctx);
  stats_.injected_read_flips +=
      static_cast<std::uint64_t>(__builtin_popcountll(flips));
  return (value ^ flips) & mask();
}

void SramModule::write_raw(std::uint32_t index, std::uint64_t value) {
  NTC_REQUIRE(index < words());
  NTC_REQUIRE((value & ~mask()) == 0);
  ++stats_.writes;
  const FaultContext ctx = context();
  const std::uint64_t flips = gather_flips(AccessKind::Write, index, ctx);
  stats_.injected_write_flips +=
      static_cast<std::uint64_t>(__builtin_popcountll(flips));
  data_[index] = (value ^ flips) & mask();
}

}  // namespace ntc::sim
