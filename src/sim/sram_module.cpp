#include "sim/sram_module.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::sim {

SramModule::SramModule(std::string name, std::uint32_t words,
                       std::uint32_t stored_bits,
                       reliability::AccessErrorModel access,
                       reliability::NoiseMarginModel retention, Volt vdd,
                       Rng rng, bool inject_faults)
    : name_(std::move(name)),
      stored_bits_(stored_bits),
      access_(std::move(access)),
      retention_(std::move(retention)),
      vdd_(vdd),
      rng_(rng),
      inject_faults_(inject_faults),
      data_(words, 0),
      stuck_mask_(words, 0),
      stuck_value_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  // Per-cell mismatch deviates are the silicon fingerprint of this
  // instance; they persist across voltage changes.
  cell_sigma_.resize(static_cast<std::size_t>(words) * stored_bits_);
  Rng sigma_rng = rng_.fork(0x51d3);
  for (auto& s : cell_sigma_) s = static_cast<float>(sigma_rng.normal());
  derive_fault_state();
}

void SramModule::derive_fault_state() {
  p_access_ = inject_faults_ ? access_.p_bit_err(vdd_) : 0.0;
  p_no_flip_ = std::pow(1.0 - p_access_, static_cast<double>(stored_bits_));
  stats_.stuck_bits = 0;
  if (!inject_faults_) {
    for (auto& m : stuck_mask_) m = 0;
    return;
  }
  Rng stuck_rng = rng_.fork(0x57);
  for (std::uint32_t w = 0; w < words(); ++w) {
    std::uint64_t mask_bits = 0, value_bits = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b) {
      const double sigma =
          cell_sigma_[static_cast<std::size_t>(w) * stored_bits_ + b];
      if (retention_.cell_retention_vmin(sigma) > vdd_) {
        mask_bits |= std::uint64_t{1} << b;
        if (stuck_rng.bernoulli(0.5)) value_bits |= std::uint64_t{1} << b;
      }
    }
    stuck_mask_[w] = mask_bits;
    stuck_value_[w] = value_bits;
    // The cell physically flips to its preferred state below its
    // retention limit: commit the loss so data stays corrupted even if
    // the rail is raised again later (drowsy-mode data loss is real).
    data_[w] = (data_[w] & ~mask_bits) | (value_bits & mask_bits);
    stats_.stuck_bits += static_cast<std::uint64_t>(__builtin_popcountll(mask_bits));
  }
}

void SramModule::set_vdd(Volt vdd) {
  NTC_REQUIRE(vdd.value > 0.0);
  vdd_ = vdd;
  derive_fault_state();
}

std::uint64_t SramModule::apply_stuck_bits(std::uint32_t index,
                                           std::uint64_t value) const {
  const std::uint64_t m = stuck_mask_[index];
  return (value & ~m) | (stuck_value_[index] & m);
}

std::uint64_t SramModule::random_flips(std::uint64_t value,
                                       std::uint64_t& flip_count) {
  if (p_access_ <= 0.0) return value;
  // Fast path: with probability (1-p)^bits nothing flips — one uniform
  // draw.  Otherwise rejection-sample the (rare) nonzero flip mask,
  // which preserves the exact per-bit Bernoulli distribution.
  if (rng_.uniform() < p_no_flip_) return value;
  std::uint64_t flips = 0;
  do {
    flips = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b) {
      if (rng_.bernoulli(p_access_)) flips |= std::uint64_t{1} << b;
    }
  } while (flips == 0);
  flip_count += static_cast<std::uint64_t>(__builtin_popcountll(flips));
  return value ^ flips;
}

std::uint64_t SramModule::read_raw(std::uint32_t index) {
  NTC_REQUIRE(index < words());
  ++stats_.reads;
  std::uint64_t value = apply_stuck_bits(index, data_[index]);
  value = random_flips(value, stats_.injected_read_flips);
  return value & mask();
}

void SramModule::write_raw(std::uint32_t index, std::uint64_t value) {
  NTC_REQUIRE(index < words());
  NTC_REQUIRE((value & ~mask()) == 0);
  ++stats_.writes;
  value = random_flips(value, stats_.injected_write_flips);
  data_[index] = value & mask();
}

}  // namespace ntc::sim
