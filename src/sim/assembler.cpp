#include "sim/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace ntc::sim {

namespace {

const std::map<std::string, int>& abi_names() {
  static const std::map<std::string, int> names = [] {
    std::map<std::string, int> m;
    const char* abi[] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
                         "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
                         "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
                         "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
    for (int i = 0; i < 32; ++i) m[abi[i]] = i;
    m["fp"] = 8;
    return m;
  }();
  return names;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Instruction encoders (RISC-V base formats).
std::uint32_t enc_r(unsigned op, unsigned rd, unsigned f3, unsigned rs1,
                    unsigned rs2, unsigned f7) {
  return op | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (f7 << 25);
}
std::uint32_t enc_i(unsigned op, unsigned rd, unsigned f3, unsigned rs1,
                    std::int32_t imm) {
  return op | (rd << 7) | (f3 << 12) | (rs1 << 15) |
         (static_cast<std::uint32_t>(imm & 0xFFF) << 20);
}
std::uint32_t enc_s(unsigned op, unsigned f3, unsigned rs1, unsigned rs2,
                    std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xFFFu;
  return op | ((u & 0x1F) << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) |
         ((u >> 5) << 25);
}
std::uint32_t enc_b(unsigned op, unsigned f3, unsigned rs1, unsigned rs2,
                    std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return op | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xF) << 8) | (f3 << 12) |
         (rs1 << 15) | (rs2 << 20) | (((u >> 5) & 0x3F) << 25) |
         (((u >> 12) & 1) << 31);
}
std::uint32_t enc_u(unsigned op, unsigned rd, std::int64_t imm) {
  return op | (rd << 7) | (static_cast<std::uint32_t>(imm) & 0xFFFFF000u);
}
std::uint32_t enc_j(unsigned op, unsigned rd, std::int32_t imm) {
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return op | (rd << 7) | (((u >> 12) & 0xFF) << 12) | (((u >> 11) & 1) << 20) |
         (((u >> 1) & 0x3FF) << 21) | (((u >> 20) & 1) << 31);
}

struct OpInfo {
  enum Kind { R, I, Load, Store, Branch, U, J, Jalr, Shift, System } kind;
  unsigned f3 = 0;
  unsigned f7 = 0;
};

const std::map<std::string, OpInfo>& opcodes() {
  static const std::map<std::string, OpInfo> table = {
      {"add", {OpInfo::R, 0, 0x00}},  {"sub", {OpInfo::R, 0, 0x20}},
      {"sll", {OpInfo::R, 1, 0x00}},  {"slt", {OpInfo::R, 2, 0x00}},
      {"sltu", {OpInfo::R, 3, 0x00}}, {"xor", {OpInfo::R, 4, 0x00}},
      {"srl", {OpInfo::R, 5, 0x00}},  {"sra", {OpInfo::R, 5, 0x20}},
      {"or", {OpInfo::R, 6, 0x00}},   {"and", {OpInfo::R, 7, 0x00}},
      {"mul", {OpInfo::R, 0, 0x01}},
      {"addi", {OpInfo::I, 0}},       {"slti", {OpInfo::I, 2}},
      {"sltiu", {OpInfo::I, 3}},      {"xori", {OpInfo::I, 4}},
      {"ori", {OpInfo::I, 6}},        {"andi", {OpInfo::I, 7}},
      {"slli", {OpInfo::Shift, 1, 0x00}},
      {"srli", {OpInfo::Shift, 5, 0x00}},
      {"srai", {OpInfo::Shift, 5, 0x20}},
      {"lb", {OpInfo::Load, 0}},      {"lh", {OpInfo::Load, 1}},
      {"lw", {OpInfo::Load, 2}},      {"lbu", {OpInfo::Load, 4}},
      {"lhu", {OpInfo::Load, 5}},
      {"sb", {OpInfo::Store, 0}},     {"sh", {OpInfo::Store, 1}},
      {"sw", {OpInfo::Store, 2}},
      {"beq", {OpInfo::Branch, 0}},   {"bne", {OpInfo::Branch, 1}},
      {"blt", {OpInfo::Branch, 4}},   {"bge", {OpInfo::Branch, 5}},
      {"bltu", {OpInfo::Branch, 6}},  {"bgeu", {OpInfo::Branch, 7}},
      {"lui", {OpInfo::U}},           {"auipc", {OpInfo::U}},
      {"jal", {OpInfo::J}},           {"jalr", {OpInfo::Jalr}},
      {"ecall", {OpInfo::System}},
  };
  return table;
}

class Assembler {
  struct Line {
    std::size_t number = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
    std::vector<std::pair<std::size_t, std::string>> labels_before;
    std::uint32_t address = 0;
  };

 public:
  Assembler(const std::string& source, std::uint32_t origin)
      : origin_(origin) {
    parse_lines(source);
  }

  AssemblyResult run() {
    AssemblyResult result;
    if (!error_.empty()) {
      result.error = error_;
      return result;
    }
    layout();  // pass 1: addresses of every line and label
    if (!error_.empty()) {
      result.error = error_;
      return result;
    }
    for (const Line& line : lines_) emit(line);  // pass 2
    if (!error_.empty()) {
      result.error = error_;
      return result;
    }
    result.ok = true;
    result.words = std::move(words_);
    result.symbols = std::move(symbols_);
    return result;
  }

 private:
  void fail(std::size_t line, const std::string& message) {
    if (error_.empty())
      error_ = "line " + std::to_string(line) + ": " + message;
  }

  void parse_lines(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    std::size_t number = 0;
    while (std::getline(in, raw)) {
      ++number;
      // Strip comments.
      for (const char* marker : {"#", "//", ";"}) {
        auto pos = raw.find(marker);
        if (pos != std::string::npos) raw = raw.substr(0, pos);
      }
      std::string text = trim(raw);
      // Peel off leading labels (several may stack on one line).
      while (true) {
        auto colon = text.find(':');
        if (colon == std::string::npos) break;
        std::string candidate = trim(text.substr(0, colon));
        if (candidate.empty() || candidate.find(' ') != std::string::npos ||
            candidate.find(',') != std::string::npos) {
          break;
        }
        pending_labels_.push_back({number, candidate});
        text = trim(text.substr(colon + 1));
      }
      if (text.empty()) continue;
      Line line;
      line.number = number;
      std::istringstream ls(text);
      ls >> line.mnemonic;
      line.mnemonic = lower(line.mnemonic);
      std::string rest;
      std::getline(ls, rest);
      // Split operands on commas.
      std::string token;
      std::istringstream rs(rest);
      while (std::getline(rs, token, ',')) {
        token = trim(token);
        if (!token.empty()) line.operands.push_back(token);
      }
      line.labels_before = std::move(pending_labels_);
      pending_labels_.clear();
      lines_.push_back(std::move(line));
    }
  }

  std::size_t size_of(const Line& line) {
    const std::string& m = line.mnemonic;
    if (m == ".word") return line.operands.size();
    if (m == "li") {
      std::optional<std::int64_t> imm = parse_int(line.operands.size() > 1
                                                      ? line.operands[1]
                                                      : std::string{});
      if (!imm) return 2;  // conservatively assume the long form
      return (*imm >= -2048 && *imm < 2048) ? 1 : 2;
    }
    return 1;  // every other (pseudo-)instruction is one word
  }

  void layout() {
    std::uint32_t addr = origin_;
    for (Line& line : lines_) {
      for (const auto& [num, label] : line.labels_before) {
        if (symbols_.count(label)) {
          fail(num, "duplicate label '" + label + "'");
          return;
        }
        symbols_[label] = addr;
      }
      line.address = addr;
      addr += static_cast<std::uint32_t>(4 * size_of(line));
    }
    // Labels trailing at end of file.
    for (const auto& [num, label] : pending_labels_) {
      (void)num;
      symbols_[label] = addr;
    }
  }

  static std::optional<std::int64_t> parse_int(const std::string& token) {
    if (token.empty()) return std::nullopt;
    try {
      std::size_t used = 0;
      long long v = std::stoll(token, &used, 0);
      if (used != token.size()) return std::nullopt;
      return v;
    } catch (...) {
      return std::nullopt;
    }
  }

  std::optional<std::int64_t> value_of(const Line& line, const std::string& token) {
    if (auto v = parse_int(token)) return v;
    auto it = symbols_.find(token);
    if (it != symbols_.end()) return static_cast<std::int64_t>(it->second);
    fail(line.number, "cannot resolve '" + token + "'");
    return std::nullopt;
  }

  int reg_of(const Line& line, std::size_t index) {
    if (index >= line.operands.size()) {
      fail(line.number, "missing register operand");
      return 0;
    }
    int r = parse_register(line.operands[index]);
    if (r < 0) {
      fail(line.number, "bad register '" + line.operands[index] + "'");
      return 0;
    }
    return r;
  }

  /// "imm(rs)" memory operand.
  bool mem_operand(const Line& line, std::size_t index, std::int32_t& imm,
                   int& rs) {
    if (index >= line.operands.size()) {
      fail(line.number, "missing memory operand");
      return false;
    }
    const std::string& token = line.operands[index];
    auto open = token.find('(');
    auto close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(line.number, "expected imm(reg), got '" + token + "'");
      return false;
    }
    std::string imm_str = trim(token.substr(0, open));
    if (imm_str.empty()) imm_str = "0";
    auto v = value_of(line, imm_str);
    if (!v) return false;
    imm = static_cast<std::int32_t>(*v);
    rs = parse_register(trim(token.substr(open + 1, close - open - 1)));
    if (rs < 0) {
      fail(line.number, "bad register in '" + token + "'");
      return false;
    }
    return true;
  }

  void push(std::uint32_t word) { words_.push_back(word); }

  void emit(const Line& line) {
    if (!error_.empty()) return;
    const std::string& m = line.mnemonic;

    // Directives and pseudo-instructions first.
    if (m == ".word") {
      for (const auto& op : line.operands) {
        auto v = value_of(line, op);
        if (!v) return;
        push(static_cast<std::uint32_t>(*v));
      }
      return;
    }
    if (m == "nop") return push(enc_i(0x13, 0, 0, 0, 0));
    if (m == "halt" || m == "ebreak") return push(0x73);
    if (m == "ret") return push(enc_i(0x67, 0, 0, 1, 0));  // jalr x0, ra, 0
    if (m == "mv") {
      int rd = reg_of(line, 0), rs = reg_of(line, 1);
      return push(enc_i(0x13, rd, 0, rs, 0));
    }
    if (m == "li") {
      int rd = reg_of(line, 0);
      if (line.operands.size() < 2) return fail(line.number, "li needs an immediate");
      // Symbols always take the two-word form so pass-1 sizing (which
      // cannot resolve forward references) stays consistent.
      const bool literal = parse_int(line.operands[1]).has_value();
      auto v = value_of(line, line.operands[1]);
      if (!v) return;
      std::int64_t imm = *v;
      if (literal && imm >= -2048 && imm < 2048) {
        return push(enc_i(0x13, rd, 0, 0, static_cast<std::int32_t>(imm)));
      }
      const std::int64_t hi = (imm + 0x800) & ~0xFFFll;
      const std::int32_t lo = static_cast<std::int32_t>(imm - hi);
      push(enc_u(0x37, rd, hi));
      push(enc_i(0x13, rd, 0, rd, lo));
      return;
    }
    if (m == "j") {
      auto v = value_of(line, line.operands.empty() ? "" : line.operands[0]);
      if (!v) return;
      return push(enc_j(0x6F, 0, static_cast<std::int32_t>(*v - line.address)));
    }
    if (m == "beqz" || m == "bnez") {
      int rs = reg_of(line, 0);
      auto v = value_of(line, line.operands.size() > 1 ? line.operands[1] : "");
      if (!v) return;
      return push(enc_b(0x63, m == "beqz" ? 0 : 1, rs, 0,
                        static_cast<std::int32_t>(*v - line.address)));
    }

    auto it = opcodes().find(m);
    if (it == opcodes().end()) return fail(line.number, "unknown mnemonic '" + m + "'");
    const OpInfo& info = it->second;
    switch (info.kind) {
      case OpInfo::R: {
        int rd = reg_of(line, 0), rs1 = reg_of(line, 1), rs2 = reg_of(line, 2);
        return push(enc_r(0x33, rd, info.f3, rs1, rs2, info.f7));
      }
      case OpInfo::I: {
        int rd = reg_of(line, 0), rs1 = reg_of(line, 1);
        auto v = value_of(line, line.operands.size() > 2 ? line.operands[2] : "");
        if (!v) return;
        return push(enc_i(0x13, rd, info.f3, rs1, static_cast<std::int32_t>(*v)));
      }
      case OpInfo::Shift: {
        int rd = reg_of(line, 0), rs1 = reg_of(line, 1);
        auto v = value_of(line, line.operands.size() > 2 ? line.operands[2] : "");
        if (!v || *v < 0 || *v > 31) return fail(line.number, "bad shift amount");
        return push(enc_r(0x13, rd, info.f3, rs1, static_cast<unsigned>(*v), info.f7));
      }
      case OpInfo::Load: {
        int rd = reg_of(line, 0);
        std::int32_t imm;
        int rs1;
        if (!mem_operand(line, 1, imm, rs1)) return;
        return push(enc_i(0x03, rd, info.f3, rs1, imm));
      }
      case OpInfo::Store: {
        int rs2 = reg_of(line, 0);
        std::int32_t imm;
        int rs1;
        if (!mem_operand(line, 1, imm, rs1)) return;
        return push(enc_s(0x23, info.f3, rs1, rs2, imm));
      }
      case OpInfo::Branch: {
        int rs1 = reg_of(line, 0), rs2 = reg_of(line, 1);
        auto v = value_of(line, line.operands.size() > 2 ? line.operands[2] : "");
        if (!v) return;
        return push(enc_b(0x63, info.f3, rs1, rs2,
                          static_cast<std::int32_t>(*v - line.address)));
      }
      case OpInfo::U: {
        int rd = reg_of(line, 0);
        auto v = value_of(line, line.operands.size() > 1 ? line.operands[1] : "");
        if (!v) return;
        // lui/auipc take the immediate already shifted by the user
        // (standard assembler semantics: operand is the upper-20 value).
        return push(enc_u(m == "lui" ? 0x37 : 0x17, rd, *v << 12));
      }
      case OpInfo::J: {
        // jal rd,label  or  jal label (rd = ra).
        int rd = 1;
        std::size_t target_index = 0;
        if (line.operands.size() > 1) {
          rd = reg_of(line, 0);
          target_index = 1;
        }
        auto v = value_of(line, line.operands.size() > target_index
                                    ? line.operands[target_index]
                                    : "");
        if (!v) return;
        return push(enc_j(0x6F, rd, static_cast<std::int32_t>(*v - line.address)));
      }
      case OpInfo::Jalr: {
        int rd = reg_of(line, 0);
        std::int32_t imm;
        int rs1;
        if (!mem_operand(line, 1, imm, rs1)) return;
        return push(enc_i(0x67, rd, 0, rs1, imm));
      }
      case OpInfo::System:
        return push(0x73);
    }
  }

  std::uint32_t origin_;
  std::string error_;
  std::vector<Line> lines_;
  std::vector<std::pair<std::size_t, std::string>> pending_labels_;
  std::vector<std::uint32_t> words_;
  std::map<std::string, std::uint32_t> symbols_;
};

}  // namespace

int parse_register(const std::string& token) {
  std::string t = lower(trim(token));
  if (t.size() >= 2 && t[0] == 'x') {
    try {
      std::size_t used = 0;
      int n = std::stoi(t.substr(1), &used);
      if (used == t.size() - 1 && n >= 0 && n < 32) return n;
    } catch (...) {
    }
    return -1;
  }
  auto it = abi_names().find(t);
  return it == abi_names().end() ? -1 : it->second;
}

AssemblyResult assemble(const std::string& source, std::uint32_t origin) {
  return Assembler(source, origin).run();
}

}  // namespace ntc::sim
