#include "sim/drowsy_memory.hpp"

#include "common/assert.hpp"
#include "ecc/hamming.hpp"

namespace ntc::sim {

DrowsyMemory::DrowsyMemory(DrowsyConfig config)
    : config_(config),
      bank_calc_(config.style,
                 energy::MemoryGeometry{config.words_per_bank, 32}) {
  NTC_REQUIRE(config_.banks >= 1);
  NTC_REQUIRE(config_.words_per_bank >= 1);
  NTC_REQUIRE(config_.drowsy_vdd.value > 0.0);
  NTC_REQUIRE(config_.drowsy_vdd.value <= config_.active_vdd.value);

  std::shared_ptr<const ecc::BlockCode> code =
      config_.protect_with_secded ? std::make_shared<ecc::HammingSecded>(32)
                                  : nullptr;
  const std::uint32_t stored = code ? 39u : 32u;
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    auto array = std::make_unique<SramModule>(
        "bank" + std::to_string(b), config_.words_per_bank, stored,
        bank_calc_.access_model(), bank_calc_.retention_model(),
        config_.active_vdd, Rng(config_.seed).fork(b), config_.inject_faults);
    banks_.push_back(std::make_unique<EccMemory>(std::move(array), code));
    modes_.push_back(BankMode::Active);
  }
}

std::uint32_t DrowsyMemory::word_count() const {
  return config_.banks * config_.words_per_bank;
}

std::uint32_t DrowsyMemory::bank_of(std::uint32_t word_index) const {
  NTC_REQUIRE(word_index < word_count());
  return word_index / config_.words_per_bank;
}

BankMode DrowsyMemory::bank_mode(std::uint32_t bank) const {
  NTC_REQUIRE(bank < config_.banks);
  return modes_[bank];
}

EccMemory& DrowsyMemory::bank(std::uint32_t index) {
  NTC_REQUIRE(index < config_.banks);
  return *banks_[index];
}

void DrowsyMemory::set_bank_mode(std::uint32_t bank, BankMode mode) {
  NTC_REQUIRE(bank < config_.banks);
  if (modes_[bank] == mode) return;
  switch (mode) {
    case BankMode::Active:
      banks_[bank]->array().set_vdd(config_.active_vdd);
      break;
    case BankMode::Drowsy:
      banks_[bank]->array().set_vdd(config_.drowsy_vdd);
      break;
    case BankMode::Off:
      // Power collapse destroys the content; model as dropping to a
      // rail far below any retention limit.
      banks_[bank]->array().set_vdd(Volt{0.01});
      break;
  }
  modes_[bank] = mode;
}

void DrowsyMemory::sleep_all_except(std::uint32_t keep_active) {
  NTC_REQUIRE(keep_active < config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b)
    set_bank_mode(b, b == keep_active ? BankMode::Active : BankMode::Drowsy);
}

void DrowsyMemory::wake(std::uint32_t bank) {
  if (modes_[bank] == BankMode::Active) return;
  set_bank_mode(bank, BankMode::Active);
  ++stats_.wakeups;
  stats_.wake_cycles_spent += config_.wake_cycles;
}

AccessStatus DrowsyMemory::read_word(std::uint32_t word_index,
                                     std::uint32_t& data) {
  const std::uint32_t b = bank_of(word_index);
  wake(b);
  ++stats_.accesses;
  return banks_[b]->read_word(word_index % config_.words_per_bank, data);
}

AccessStatus DrowsyMemory::write_word(std::uint32_t word_index,
                                      std::uint32_t data) {
  const std::uint32_t b = bank_of(word_index);
  wake(b);
  ++stats_.accesses;
  return banks_[b]->write_word(word_index % config_.words_per_bank, data);
}

Watt DrowsyMemory::leakage_power() const {
  Watt total{0.0};
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    switch (modes_[b]) {
      case BankMode::Active:
        total += bank_calc_.at(config_.active_vdd).leakage;
        break;
      case BankMode::Drowsy:
        total += bank_calc_.at(config_.drowsy_vdd).leakage;
        break;
      case BankMode::Off:
        break;  // power-collapsed banks leak (approximately) nothing
    }
  }
  return total;
}

Watt DrowsyMemory::all_active_leakage() const {
  return bank_calc_.at(config_.active_vdd).leakage *
         static_cast<double>(config_.banks);
}

}  // namespace ntc::sim
