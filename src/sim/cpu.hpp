// 32-bit in-order RISC core (RV32I subset + MUL).
//
// Stand-in for the ARM9 of the paper's platform (Figure 6): the
// experiments need a realistic instruction/data access stream and cycle
// counts, not ARM ISA fidelity — see DESIGN.md.  The core fetches from
// whatever the bus maps at its reset PC and issues data accesses
// through the same port, so every fetch and load/store traverses the
// fault-injecting memory models.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/memory_port.hpp"

namespace ntc::sim {

enum class CpuHaltReason {
  Running,
  Ecall,            ///< clean program exit
  MemoryFault,      ///< uncorrectable memory error signalled on the bus
  IllegalOpcode,
  CycleLimit,
};

struct CpuStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t fetches = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t corrected_accesses = 0;  ///< ECC fix-ups seen by the core
};

class Cpu {
 public:
  /// The core fetches and loads/stores through `memory` (byte
  /// addressing; the port is word-based, sub-word ops read-modify-write).
  explicit Cpu(MemoryPort& memory);

  void reset(std::uint32_t pc);

  /// Execute one instruction; returns false once halted.
  bool step();

  /// Run until ecall/fault or the cycle limit.
  CpuHaltReason run(std::uint64_t max_cycles = 10'000'000);

  std::uint32_t reg(std::size_t index) const;
  void set_reg(std::size_t index, std::uint32_t value);
  std::uint32_t pc() const { return pc_; }
  CpuHaltReason halt_reason() const { return halt_; }
  const CpuStats& stats() const { return stats_; }

 private:
  std::uint32_t load(std::uint32_t addr, unsigned bytes, bool sign_extend,
                     bool& fault);
  void store(std::uint32_t addr, std::uint32_t value, unsigned bytes,
             bool& fault);

  MemoryPort& memory_;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  CpuHaltReason halt_ = CpuHaltReason::Running;
  CpuStats stats_;
};

}  // namespace ntc::sim
