#include "sim/platform_pool.hpp"

namespace ntc::sim {

PlatformPool::Slot& PlatformPool::acquire(mitigation::SchemeKind scheme) {
  const std::size_t index = static_cast<std::size_t>(scheme);
  if (slots_.size() <= index) slots_.resize(index + 1);
  Slot& slot = slots_[index];
  if (!slot.platform) {
    PlatformConfig config = base_;
    config.scheme = scheme;
    slot.platform = std::make_unique<Platform>(std::move(config));
  }
  return slot;
}

std::size_t PlatformPool::size() const {
  std::size_t count = 0;
  for (const Slot& slot : slots_) count += slot.platform != nullptr;
  return count;
}

}  // namespace ntc::sim
