// AMBA-AHB-class single-master bus with a flat address map.
//
// The Figure 6 platform hangs the instruction memory, scratchpad and
// (for OCEAN) the protected memory off one bus; the model adds the
// per-transfer wait states of a simple AHB fabric and counts traffic
// per slave for the energy accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/memory_port.hpp"

namespace ntc::sim {

struct BusRegion {
  std::string name;
  std::uint32_t base_word = 0;  ///< first word index of the region
  MemoryPort* port = nullptr;   ///< not owned
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

class Bus final : public MemoryPort {
 public:
  /// `wait_states`: extra cycles charged per transfer (AHB setup).
  explicit Bus(std::uint32_t wait_states = 0);

  /// Map `port` at [base_word, base_word + port->word_count()).
  /// Regions must not overlap; mapping order is irrelevant.
  void map(std::string name, std::uint32_t base_word, MemoryPort* port);

  AccessStatus read_word(std::uint32_t word_index, std::uint32_t& data) override;
  AccessStatus write_word(std::uint32_t word_index, std::uint32_t data) override;
  std::uint32_t word_count() const override;

  /// Native bursts.  A burst crossing a region boundary is split
  /// deterministically at the boundary and forwarded per-region; words
  /// falling into unmapped gaps are error-responded individually
  /// (decode_errors counts each) — a straddling burst is never wrapped
  /// or silently clipped.  Bursts running past the 32-bit word space
  /// are rejected (NTC_REQUIRE), matching the fallback path.
  AccessStatus read_burst(std::uint32_t word_index,
                          std::span<std::uint32_t> data) override;
  AccessStatus write_burst(std::uint32_t word_index,
                           std::span<const std::uint32_t> data) override;

  /// Total bus cycles consumed by traffic so far.
  std::uint64_t cycles_consumed() const { return cycles_; }
  const std::vector<BusRegion>& regions() const { return regions_; }

  /// Accesses that decoded to no slave (answered with an AHB-style
  /// error response, surfaced as DetectedUncorrectable to the master).
  std::uint64_t decode_errors() const { return decode_errors_; }

  /// Zero the traffic counters (cycles, decode errors, per-region
  /// reads/writes) while keeping the address map.  Platform::reset calls
  /// this so pooled platforms don't accumulate stale bus stats across
  /// campaign trials.
  void reset_stats();

  /// True if `word_index` decodes to a mapped region.
  bool decodes(std::uint32_t word_index) const;

 private:
  BusRegion* find(std::uint32_t word_index);

  std::uint32_t wait_states_;
  std::uint64_t cycles_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::vector<BusRegion> regions_;
};

}  // namespace ntc::sim
