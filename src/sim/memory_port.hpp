// Word-addressed memory port: the interface between execution engines
// (the RISC core, the execution-driven workloads) and the simulated
// memory subsystem.
#pragma once

#include <cstdint>
#include <span>

namespace ntc::sim {

/// Status of one memory transaction as seen by the initiator.
enum class AccessStatus {
  Ok,
  CorrectedError,        ///< ECC corrected on the fly
  DetectedUncorrectable, ///< error detected, data invalid (trap/rollback)
};

/// Aggregate of two per-word statuses: the worse one wins
/// (DetectedUncorrectable > CorrectedError > Ok).
constexpr AccessStatus worse_status(AccessStatus a, AccessStatus b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Process-wide kill switch for the native burst implementations: when
/// disabled, every read_burst/write_burst override delegates to the
/// word-at-a-time base-class fallback.  The burst-vs-scalar equivalence
/// suite runs identical workloads under both settings and requires
/// byte-identical platform state — native bursts must preserve the
/// per-word path's RNG draw order, counters and energy exactly.
void set_burst_native_enabled(bool enabled);
bool burst_native_enabled();

/// Process-wide kill switch for the batched Monte-Carlo campaign
/// engine (faultsim/batch).  When disabled, CampaignRunner executes
/// every trial on the scalar execute_shard_trial reference path.  The
/// batched engine must produce per-trial ledger records byte-identical
/// to the scalar path; this switch exists for the equivalence harness
/// and as an operational escape hatch.
void set_batch_enabled(bool enabled);
bool batch_enabled();

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Word index addressing (not bytes); the platform's bus handles the
  /// address map.
  virtual AccessStatus read_word(std::uint32_t word_index,
                                 std::uint32_t& data) = 0;
  virtual AccessStatus write_word(std::uint32_t word_index,
                                  std::uint32_t data) = 0;
  virtual std::uint32_t word_count() const = 0;

  /// Burst transaction over [word_index, word_index + data.size()).
  /// The default decomposes into word accesses; native overrides must
  /// be observably identical to that decomposition (same fault-model
  /// RNG consumption, same counters, same returned data) and report
  /// the worst per-word status.  A burst whose end would pass the
  /// 32-bit word-index space is rejected (NTC_REQUIRE), never wrapped.
  virtual AccessStatus read_burst(std::uint32_t word_index,
                                  std::span<std::uint32_t> data);
  virtual AccessStatus write_burst(std::uint32_t word_index,
                                   std::span<const std::uint32_t> data);

  /// Burst read that stops at the first DetectedUncorrectable word, so
  /// a burst-aware initiator can react (retry, scrub, escalate) at the
  /// exact access position the per-word loop would have: data[0 ..
  /// first_bad] is filled (the failing word best-effort), fault-model
  /// state advances only for those words, and the return value
  /// aggregates the *clean prefix* [0, first_bad).  first_bad ==
  /// data.size() when every word decodes, in which case the return
  /// value covers the whole burst.
  virtual AccessStatus read_burst_tracked(std::uint32_t word_index,
                                          std::span<std::uint32_t> data,
                                          std::uint32_t& first_bad);
};

}  // namespace ntc::sim
