// Word-addressed memory port: the interface between execution engines
// (the RISC core, the execution-driven workloads) and the simulated
// memory subsystem.
#pragma once

#include <cstdint>

namespace ntc::sim {

/// Status of one memory transaction as seen by the initiator.
enum class AccessStatus {
  Ok,
  CorrectedError,        ///< ECC corrected on the fly
  DetectedUncorrectable, ///< error detected, data invalid (trap/rollback)
};

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Word index addressing (not bytes); the platform's bus handles the
  /// address map.
  virtual AccessStatus read_word(std::uint32_t word_index,
                                 std::uint32_t& data) = 0;
  virtual AccessStatus write_word(std::uint32_t word_index,
                                  std::uint32_t data) = 0;
  virtual std::uint32_t word_count() const = 0;
};

}  // namespace ntc::sim
