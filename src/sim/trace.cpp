#include "sim/trace.hpp"

#include <istream>
#include <ostream>
#include <set>
#include <string>

#include "common/assert.hpp"

namespace ntc::sim {

std::uint64_t AccessTrace::read_count() const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) n += (e.kind == TraceEntry::Kind::Read);
  return n;
}

std::uint64_t AccessTrace::write_count() const {
  return entries_.size() - read_count();
}

std::uint64_t AccessTrace::footprint_words() const {
  std::set<std::uint32_t> words;
  for (const auto& e : entries_) words.insert(e.word_index);
  return words.size();
}

void AccessTrace::save(std::ostream& out) const {
  for (const auto& e : entries_) {
    out << (e.kind == TraceEntry::Kind::Read ? 'R' : 'W') << ' '
        << e.word_index << ' ' << e.data << '\n';
  }
}

AccessTrace AccessTrace::load(std::istream& in) {
  AccessTrace trace;
  char kind;
  std::uint32_t index, data;
  while (in >> kind >> index >> data) {
    NTC_REQUIRE_MSG(kind == 'R' || kind == 'W', "malformed trace line");
    trace.append({kind == 'R' ? TraceEntry::Kind::Read : TraceEntry::Kind::Write,
                  index, data});
  }
  return trace;
}

AccessStatus TracingPort::read_word(std::uint32_t word_index,
                                    std::uint32_t& data) {
  const AccessStatus status = inner_.read_word(word_index, data);
  trace_.append({TraceEntry::Kind::Read, word_index, data});
  return status;
}

AccessStatus TracingPort::write_word(std::uint32_t word_index,
                                     std::uint32_t data) {
  trace_.append({TraceEntry::Kind::Write, word_index, data});
  return inner_.write_word(word_index, data);
}

ReplayResult replay(const AccessTrace& trace, MemoryPort& target) {
  ReplayResult result;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEntry& entry = trace[i];
    ++result.transactions;
    if (entry.kind == TraceEntry::Kind::Write) {
      const AccessStatus status = target.write_word(entry.word_index, entry.data);
      if (status == AccessStatus::DetectedUncorrectable) ++result.uncorrectable;
    } else {
      std::uint32_t data = 0;
      const AccessStatus status = target.read_word(entry.word_index, data);
      if (status == AccessStatus::CorrectedError) ++result.corrected;
      if (status == AccessStatus::DetectedUncorrectable)
        ++result.uncorrectable;
      else if (data != entry.data)
        ++result.wrong_reads;
    }
  }
  return result;
}

}  // namespace ntc::sim
