// Block-code wrapper around an SRAM array: the "digital wrapper around
// existing commercially available memories" of the paper's abstract.
//
// Writes encode the 32-bit data word into the code's codeword; reads
// decode and transparently correct.  Correction/detection counters are
// exposed for the monitor, and a scrub() pass rewrites every word
// through the codec so accumulated soft/stuck errors cannot pile up
// beyond the code's correction capability.
#pragma once

#include <memory>

#include "ecc/code.hpp"
#include "sim/memory_port.hpp"
#include "sim/sram_module.hpp"

namespace ntc::sim {

struct EccMemoryStats {
  std::uint64_t corrected_words = 0;
  std::uint64_t corrected_bits = 0;
  std::uint64_t uncorrectable_words = 0;
  std::uint64_t scrub_passes = 0;
};

class EccMemory final : public MemoryPort {
 public:
  /// Observer for the logical access stream.  The batched campaign
  /// engine installs one on a fault-free platform to capture the golden
  /// transaction trace (array, direction, word range, decoded data) a
  /// workload generates; replaying that trace against per-trial fault
  /// state is what lets trials skip the full platform pipeline.  The
  /// sink sees each public transaction once (a native burst as one
  /// call, the word-at-a-time fallback as per-word calls — the same
  /// flat word sequence either way) and is never invoked when null.
  struct TraceSink {
    virtual ~TraceSink() = default;
    virtual void on_access(bool is_write, std::uint32_t base,
                           const std::uint32_t* data, std::uint32_t count) = 0;
  };

  /// `code` may be null for an unprotected (no-mitigation) memory; the
  /// array must then store exactly 32 bits per word.
  EccMemory(std::unique_ptr<SramModule> array,
            std::shared_ptr<const ecc::BlockCode> code);

  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  AccessStatus read_word(std::uint32_t word_index, std::uint32_t& data) override;
  AccessStatus write_word(std::uint32_t word_index, std::uint32_t data) override;
  std::uint32_t word_count() const override { return array_->words(); }

  /// Native bursts: raw-burst the array, then batch-decode/encode over
  /// the code's lane kernels.  Bit-identical to the word-at-a-time
  /// fallback (raw access draws are per-word in order; decode consumes
  /// no RNG, so decode-after-raw-burst reordering is unobservable).
  AccessStatus read_burst(std::uint32_t word_index,
                          std::span<std::uint32_t> data) override;
  AccessStatus write_burst(std::uint32_t word_index,
                           std::span<const std::uint32_t> data) override;

  /// Native tracked burst: chunks run speculatively; a chunk met by a
  /// detected-uncorrectable word is rolled back (array + injector RNG)
  /// and replayed word-at-a-time up to the failing word, so the
  /// observable state stops exactly where the per-word loop would.
  AccessStatus read_burst_tracked(std::uint32_t word_index,
                                  std::span<std::uint32_t> data,
                                  std::uint32_t& first_bad) override;

  /// Rewrite every word through the codec (corrects what is
  /// correctable).  Uncorrectable words are counted but left untouched:
  /// their raw bits stay available for recovery at a healthier
  /// operating point instead of being laundered into a valid codeword
  /// of wrong data.  Returns the number of uncorrectable words met.
  std::uint64_t scrub();

  SramModule& array() { return *array_; }
  const SramModule& array() const { return *array_; }
  const ecc::BlockCode* code() const { return code_.get(); }
  const EccMemoryStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EccMemoryStats{}; }

 private:
  /// Fold a chunk's batch-decode summary into the stats and return the
  /// worst status the chunk saw (sums are order-insensitive, so this is
  /// bit-identical to folding every word in turn).
  AccessStatus note_summary(const ecc::BatchDecodeSummary& summary);

  std::unique_ptr<SramModule> array_;
  std::shared_ptr<const ecc::BlockCode> code_;
  EccMemoryStats stats_;
  TraceSink* trace_sink_ = nullptr;
};

/// Pack the low `bits` of a Bits codeword into a uint64 (and back) for
/// storage in the SRAM array.
std::uint64_t pack_codeword(const ecc::Bits& code, std::size_t bits);
ecc::Bits unpack_codeword(std::uint64_t raw, std::size_t bits);

}  // namespace ntc::sim
