// Banked memory with per-bank standby modes (paper Sections II/III).
//
// "Applications benefitting from NTC typically have significant standby
// times.  Whereas digital logic can largely be powered off, memories
// have to retain their content."  The classic answer is drowsy
// operation: idle banks drop to a retention-only supply (near or below
// threshold, [6][9]) and wake to the active rail on access — Section
// III's hierarchical subdivision makes the bank the natural granule.
//
// Each bank is a full EccMemory (array + optional SECDED), so retention
// failures in too-drowsy banks surface exactly like any other bit
// error.  Accesses to a non-active bank auto-wake it, charging a
// wake-up latency; the power report integrates per-bank leakage at each
// bank's actual rail.
#pragma once

#include <memory>
#include <vector>

#include "energy/memory_calculator.hpp"
#include "mitigation/scheme.hpp"
#include "sim/ecc_memory.hpp"

namespace ntc::sim {

enum class BankMode { Active, Drowsy, Off };

struct DrowsyConfig {
  energy::MemoryStyle style = energy::MemoryStyle::CellBasedImec40;
  std::uint32_t banks = 8;
  std::uint32_t words_per_bank = 1024;
  Volt active_vdd{0.44};
  Volt drowsy_vdd{0.32};  ///< retention-only rail for idle banks
  std::uint32_t wake_cycles = 2;  ///< rail-switch latency per wake-up
  bool protect_with_secded = true;
  std::uint64_t seed = 1;
  bool inject_faults = true;
};

struct DrowsyStats {
  std::uint64_t wakeups = 0;
  std::uint64_t wake_cycles_spent = 0;
  std::uint64_t accesses = 0;
};

class DrowsyMemory final : public MemoryPort {
 public:
  explicit DrowsyMemory(DrowsyConfig config);

  AccessStatus read_word(std::uint32_t word_index, std::uint32_t& data) override;
  AccessStatus write_word(std::uint32_t word_index, std::uint32_t data) override;
  std::uint32_t word_count() const override;

  std::uint32_t banks() const { return config_.banks; }
  BankMode bank_mode(std::uint32_t bank) const;

  /// Put a bank into a mode.  Active -> Drowsy drops its rail to the
  /// drowsy supply (weak cells lose their data per the retention
  /// model); Drowsy/Off -> Active restores the rail.  Off clears the
  /// bank entirely (power collapsed).
  void set_bank_mode(std::uint32_t bank, BankMode mode);

  /// Drop every bank except `keep_active` to drowsy.
  void sleep_all_except(std::uint32_t keep_active);

  /// Leakage power with the current mode mix (off banks leak nothing).
  Watt leakage_power() const;

  /// Leakage if every bank were held at the active rail (baseline for
  /// the standby-savings experiments).
  Watt all_active_leakage() const;

  const DrowsyStats& stats() const { return stats_; }
  EccMemory& bank(std::uint32_t index);

 private:
  std::uint32_t bank_of(std::uint32_t word_index) const;
  void wake(std::uint32_t bank);

  DrowsyConfig config_;
  energy::MemoryCalculator bank_calc_;
  std::vector<std::unique_ptr<EccMemory>> banks_;
  std::vector<BankMode> modes_;
  DrowsyStats stats_;
};

}  // namespace ntc::sim
