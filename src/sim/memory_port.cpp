#include "sim/memory_port.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace ntc::sim {

namespace {

// Relaxed is enough: the flag is a test harness switch, flipped only
// between runs, never racing an access in a correctness-relevant way.
std::atomic<bool> g_burst_native{true};
std::atomic<bool> g_batch_enabled{true};

void require_no_wrap(std::uint32_t word_index, std::size_t words) {
  NTC_REQUIRE_MSG(static_cast<std::uint64_t>(word_index) + words <=
                      (std::uint64_t{1} << 32),
                  "burst would wrap the 32-bit word-index space");
}

}  // namespace

void set_burst_native_enabled(bool enabled) {
  g_burst_native.store(enabled, std::memory_order_relaxed);
}

bool burst_native_enabled() {
  return g_burst_native.load(std::memory_order_relaxed);
}

void set_batch_enabled(bool enabled) {
  g_batch_enabled.store(enabled, std::memory_order_relaxed);
}

bool batch_enabled() {
  return g_batch_enabled.load(std::memory_order_relaxed);
}

AccessStatus MemoryPort::read_burst(std::uint32_t word_index,
                                    std::span<std::uint32_t> data) {
  require_no_wrap(word_index, data.size());
  AccessStatus status = AccessStatus::Ok;
  for (std::size_t i = 0; i < data.size(); ++i)
    status = worse_status(
        status, read_word(word_index + static_cast<std::uint32_t>(i), data[i]));
  return status;
}

AccessStatus MemoryPort::write_burst(std::uint32_t word_index,
                                     std::span<const std::uint32_t> data) {
  require_no_wrap(word_index, data.size());
  AccessStatus status = AccessStatus::Ok;
  for (std::size_t i = 0; i < data.size(); ++i)
    status = worse_status(
        status,
        write_word(word_index + static_cast<std::uint32_t>(i), data[i]));
  return status;
}

AccessStatus MemoryPort::read_burst_tracked(std::uint32_t word_index,
                                            std::span<std::uint32_t> data,
                                            std::uint32_t& first_bad) {
  require_no_wrap(word_index, data.size());
  AccessStatus status = AccessStatus::Ok;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const AccessStatus word_status =
        read_word(word_index + static_cast<std::uint32_t>(i), data[i]);
    if (word_status == AccessStatus::DetectedUncorrectable) {
      first_bad = static_cast<std::uint32_t>(i);
      return status;
    }
    status = worse_status(status, word_status);
  }
  first_bad = static_cast<std::uint32_t>(data.size());
  return status;
}

}  // namespace ntc::sim
