// Pluggable fault-injection seam of the SRAM array model.
//
// SramModule delegates every error mechanism to a chain of
// FaultInjector implementations: the silicon-calibrated stochastic
// model of Section IV (StochasticInjector) is one of them, and scripted
// scenario injectors (faultsim::ScenarioInjector) compose with it so
// correlated multi-bit, stuck-at and aging-drift scenarios can be
// driven deterministically on top of the analytic background rates.
//
// Three mechanisms cover the fault taxonomy:
//   * stuck_overlay()  — persistent cell state forced while the fault is
//     active (retention failures, hard defects); applied on every read
//     and committed into the array when the operating point changes
//     (data held by a failing cell is physically lost);
//   * access_flips()   — transient per-access flip mask; on reads the
//     flip is transient, on writes it latches into the stored word
//     until rewritten;
//   * on_operating_point() — supply changed: voltage-dependent fault
//     state must be re-derived (raising the rail heals marginal cells).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace ntc::sim {

enum class AccessKind { Read, Write };

/// Array geometry and dynamic state handed to injectors on every hook.
struct FaultContext {
  std::uint32_t words = 0;
  std::uint32_t stored_bits = 0;
  Volt vdd{0.0};
  /// Total accesses (reads + writes) performed on the array so far,
  /// including the one in flight — the time base for armed events.
  std::uint64_t access_count = 0;
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  virtual std::string name() const = 0;

  /// Contribute persistently forced cells for `index`: bits set in
  /// `mask` read back as the matching bits of `value`.  Contributions
  /// from earlier injectors in the chain win on overlapping bits.
  virtual void stuck_overlay(std::uint32_t index, const FaultContext& ctx,
                             std::uint64_t& mask, std::uint64_t& value) {
    (void)index, (void)ctx, (void)mask, (void)value;
  }

  /// Flip mask XORed into the value moving through this access.
  virtual std::uint64_t access_flips(AccessKind kind, std::uint32_t index,
                                     const FaultContext& ctx) {
    (void)kind, (void)index, (void)ctx;
    return 0;
  }

  /// The supply (or the injector chain) changed; re-derive any
  /// voltage-dependent fault state before the next stuck_overlay().
  virtual void on_operating_point(const FaultContext& ctx) { (void)ctx; }

  /// True when stuck_overlay() cannot change between on_operating_point
  /// calls (no dependence on the access counter).  Lets SramModule
  /// cache the merged overlay per word instead of re-walking the chain
  /// on every access; injectors with access-armed stuck events must
  /// keep the default false.
  virtual bool overlay_is_stationary() const { return false; }
};

}  // namespace ntc::sim
