// RV32I(+MUL) disassembler — the inverse of the assembler, for
// debugging traces and for round-trip property testing of the
// instruction encoders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ntc::sim {

/// Disassemble one instruction word into assembler-compatible syntax
/// ("addi x1, x0, 5").  Branch/jump targets are rendered as pc-relative
/// byte offsets ("beq x1, x2, 8").  Unknown encodings render as
/// ".word 0x........".
std::string disassemble(std::uint32_t instruction);

/// Whether the word decodes to an instruction the core executes.
bool is_decodable(std::uint32_t instruction);

/// Disassemble a program image, one line per word, with addresses.
std::vector<std::string> disassemble_program(
    const std::vector<std::uint32_t>& words, std::uint32_t base_address = 0);

}  // namespace ntc::sim
