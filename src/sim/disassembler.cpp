#include "sim/disassembler.hpp"

#include <cstdio>

namespace ntc::sim {

namespace {

std::string reg(unsigned index) { return "x" + std::to_string(index); }

std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ m) - m);
}

std::string word_literal(std::uint32_t instruction) {
  char buf[24];
  std::snprintf(buf, sizeof buf, ".word 0x%08X", instruction);
  return buf;
}

}  // namespace

std::string disassemble(std::uint32_t inst) {
  const unsigned opcode = inst & 0x7Fu;
  const unsigned rd = (inst >> 7) & 0x1Fu;
  const unsigned funct3 = (inst >> 12) & 0x7u;
  const unsigned rs1 = (inst >> 15) & 0x1Fu;
  const unsigned rs2 = (inst >> 20) & 0x1Fu;
  const unsigned funct7 = inst >> 25;
  const std::int32_t i_imm = sign_extend(inst >> 20, 12);

  switch (opcode) {
    case 0x37:
      return "lui " + reg(rd) + ", " + std::to_string(inst >> 12);
    case 0x17:
      return "auipc " + reg(rd) + ", " + std::to_string(inst >> 12);
    case 0x6F: {
      std::uint32_t imm = ((inst >> 31) << 20) | (((inst >> 12) & 0xFFu) << 12) |
                          (((inst >> 20) & 1u) << 11) |
                          (((inst >> 21) & 0x3FFu) << 1);
      return "jal " + reg(rd) + ", " + std::to_string(sign_extend(imm, 21));
    }
    case 0x67:
      if (funct3 != 0) return word_literal(inst);
      return "jalr " + reg(rd) + ", " + std::to_string(i_imm) + "(" + reg(rs1) + ")";
    case 0x63: {
      static const char* names[] = {"beq", "bne", nullptr, nullptr,
                                    "blt", "bge", "bltu", "bgeu"};
      if (!names[funct3]) return word_literal(inst);
      std::uint32_t imm = ((inst >> 31) << 12) | (((inst >> 7) & 1u) << 11) |
                          (((inst >> 25) & 0x3Fu) << 5) |
                          (((inst >> 8) & 0xFu) << 1);
      return std::string(names[funct3]) + " " + reg(rs1) + ", " + reg(rs2) +
             ", " + std::to_string(sign_extend(imm, 13));
    }
    case 0x03: {
      static const char* names[] = {"lb", "lh", "lw", nullptr,
                                    "lbu", "lhu", nullptr, nullptr};
      if (!names[funct3]) return word_literal(inst);
      return std::string(names[funct3]) + " " + reg(rd) + ", " +
             std::to_string(i_imm) + "(" + reg(rs1) + ")";
    }
    case 0x23: {
      static const char* names[] = {"sb", "sh", "sw"};
      if (funct3 > 2) return word_literal(inst);
      const std::int32_t imm =
          sign_extend(((inst >> 25) << 5) | ((inst >> 7) & 0x1Fu), 12);
      return std::string(names[funct3]) + " " + reg(rs2) + ", " +
             std::to_string(imm) + "(" + reg(rs1) + ")";
    }
    case 0x13: {
      switch (funct3) {
        case 0: return "addi " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 2: return "slti " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 3: return "sltiu " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 4: return "xori " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 6: return "ori " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 7: return "andi " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(i_imm);
        case 1:
          if (funct7 != 0) return word_literal(inst);
          return "slli " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(rs2);
        case 5:
          if (funct7 == 0)
            return "srli " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(rs2);
          if (funct7 == 0x20)
            return "srai " + reg(rd) + ", " + reg(rs1) + ", " + std::to_string(rs2);
          return word_literal(inst);
      }
      return word_literal(inst);
    }
    case 0x33: {
      if (funct7 == 0x01) {
        if (funct3 == 0)
          return "mul " + reg(rd) + ", " + reg(rs1) + ", " + reg(rs2);
        return word_literal(inst);
      }
      if (funct7 != 0 && funct7 != 0x20) return word_literal(inst);
      static const char* base[] = {"add", "sll", "slt", "sltu",
                                   "xor", "srl", "or", "and"};
      std::string name = base[funct3];
      if (funct7 == 0x20) {
        if (funct3 == 0)
          name = "sub";
        else if (funct3 == 5)
          name = "sra";
        else
          return word_literal(inst);
      }
      return name + " " + reg(rd) + ", " + reg(rs1) + ", " + reg(rs2);
    }
    case 0x73:
      if (inst == 0x73) return "ecall";
      return word_literal(inst);
    default:
      return word_literal(inst);
  }
}

bool is_decodable(std::uint32_t instruction) {
  return disassemble(instruction).rfind(".word", 0) != 0;
}

std::vector<std::string> disassemble_program(
    const std::vector<std::uint32_t>& words, std::uint32_t base_address) {
  std::vector<std::string> out;
  out.reserve(words.size());
  char prefix[32];
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::snprintf(prefix, sizeof prefix, "%08x:  ",
                  base_address + static_cast<std::uint32_t>(4 * i));
    out.push_back(prefix + disassemble(words[i]));
  }
  return out;
}

}  // namespace ntc::sim
