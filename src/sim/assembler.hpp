// Two-pass assembler for the RV32I-subset core.
//
// Lets the tests, examples and workloads express programs as readable
// assembly instead of hand-packed machine words.  Supports labels,
// `.word` data, ABI register names, comments (# or //) and the common
// pseudo-instructions (li, mv, j, nop, ret, beqz, bnez, halt).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ntc::sim {

struct AssemblyResult {
  bool ok = false;
  std::string error;               ///< first error, with line number
  std::vector<std::uint32_t> words;
  std::map<std::string, std::uint32_t> symbols;  ///< label -> byte address
};

/// Assemble `source` with the first instruction at byte address
/// `origin` (labels and branches are resolved relative to it).
AssemblyResult assemble(const std::string& source, std::uint32_t origin = 0);

/// Parse a register name ("x7", "a0", "sp", ...); returns -1 if invalid.
int parse_register(const std::string& token);

}  // namespace ntc::sim
