#include "sim/bus.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntc::sim {

namespace {

/// First mapped base strictly above `word_index`, or 2^32 when none:
/// the end of the unmapped gap an errant burst is walking through.
std::uint64_t next_region_base(const std::vector<BusRegion>& regions,
                               std::uint32_t word_index) {
  std::uint64_t next = std::uint64_t{1} << 32;
  for (const auto& region : regions) {
    if (region.base_word > word_index)
      next = std::min(next, static_cast<std::uint64_t>(region.base_word));
  }
  return next;
}

}  // namespace

Bus::Bus(std::uint32_t wait_states) : wait_states_(wait_states) {}

void Bus::map(std::string name, std::uint32_t base_word, MemoryPort* port) {
  NTC_REQUIRE(port != nullptr);
  const std::uint64_t new_lo = base_word;
  const std::uint64_t new_hi = new_lo + port->word_count();
  NTC_REQUIRE(new_hi <= (std::uint64_t{1} << 32));
  for (const auto& region : regions_) {
    const std::uint64_t lo = region.base_word;
    const std::uint64_t hi = lo + region.port->word_count();
    NTC_REQUIRE_MSG(new_hi <= lo || new_lo >= hi, "bus regions overlap");
  }
  regions_.push_back(BusRegion{std::move(name), base_word, port, 0, 0});
}

BusRegion* Bus::find(std::uint32_t word_index) {
  for (auto& region : regions_) {
    const std::uint64_t lo = region.base_word;
    const std::uint64_t hi = lo + region.port->word_count();
    if (word_index >= lo && word_index < hi) return &region;
  }
  return nullptr;
}

void Bus::reset_stats() {
  cycles_ = 0;
  decode_errors_ = 0;
  for (auto& region : regions_) {
    region.reads = 0;
    region.writes = 0;
  }
}

bool Bus::decodes(std::uint32_t word_index) const {
  return const_cast<Bus*>(this)->find(word_index) != nullptr;
}

AccessStatus Bus::read_word(std::uint32_t word_index, std::uint32_t& data) {
  BusRegion* region = find(word_index);
  cycles_ += 1 + wait_states_;
  if (region == nullptr) {
    // Decode miss: an AHB error response (errant software at deep NTV
    // can compute wild addresses; the master sees a bus fault).
    ++decode_errors_;
    data = 0;
    return AccessStatus::DetectedUncorrectable;
  }
  ++region->reads;
  return region->port->read_word(word_index - region->base_word, data);
}

AccessStatus Bus::write_word(std::uint32_t word_index, std::uint32_t data) {
  BusRegion* region = find(word_index);
  cycles_ += 1 + wait_states_;
  if (region == nullptr) {
    ++decode_errors_;
    return AccessStatus::DetectedUncorrectable;
  }
  ++region->writes;
  return region->port->write_word(word_index - region->base_word, data);
}

AccessStatus Bus::read_burst(std::uint32_t word_index,
                             std::span<std::uint32_t> data) {
  if (!burst_native_enabled()) return MemoryPort::read_burst(word_index, data);
  NTC_REQUIRE_MSG(static_cast<std::uint64_t>(word_index) + data.size() <=
                      (std::uint64_t{1} << 32),
                  "burst runs past the 32-bit word address space");
  cycles_ += static_cast<std::uint64_t>(1 + wait_states_) * data.size();
  AccessStatus status = AccessStatus::Ok;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::uint32_t index = word_index + static_cast<std::uint32_t>(off);
    BusRegion* region = find(index);
    if (region == nullptr) {
      const std::uint64_t gap_end =
          std::min(static_cast<std::uint64_t>(word_index) + data.size(),
                   next_region_base(regions_, index));
      const std::size_t gap = static_cast<std::size_t>(gap_end - index);
      decode_errors_ += gap;
      for (std::size_t i = 0; i < gap; ++i) data[off + i] = 0;
      status = worse_status(status, AccessStatus::DetectedUncorrectable);
      off += gap;
      continue;
    }
    const std::uint64_t region_end =
        static_cast<std::uint64_t>(region->base_word) +
        region->port->word_count();
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::uint64_t>(data.size() - off, region_end - index));
    region->reads += m;
    status = worse_status(
        status, region->port->read_burst(index - region->base_word,
                                         data.subspan(off, m)));
    off += m;
  }
  return status;
}

AccessStatus Bus::write_burst(std::uint32_t word_index,
                              std::span<const std::uint32_t> data) {
  if (!burst_native_enabled()) return MemoryPort::write_burst(word_index, data);
  NTC_REQUIRE_MSG(static_cast<std::uint64_t>(word_index) + data.size() <=
                      (std::uint64_t{1} << 32),
                  "burst runs past the 32-bit word address space");
  cycles_ += static_cast<std::uint64_t>(1 + wait_states_) * data.size();
  AccessStatus status = AccessStatus::Ok;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::uint32_t index = word_index + static_cast<std::uint32_t>(off);
    BusRegion* region = find(index);
    if (region == nullptr) {
      const std::uint64_t gap_end =
          std::min(static_cast<std::uint64_t>(word_index) + data.size(),
                   next_region_base(regions_, index));
      const std::size_t gap = static_cast<std::size_t>(gap_end - index);
      decode_errors_ += gap;
      status = worse_status(status, AccessStatus::DetectedUncorrectable);
      off += gap;
      continue;
    }
    const std::uint64_t region_end =
        static_cast<std::uint64_t>(region->base_word) +
        region->port->word_count();
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::uint64_t>(data.size() - off, region_end - index));
    region->writes += m;
    status = worse_status(
        status, region->port->write_burst(index - region->base_word,
                                          data.subspan(off, m)));
    off += m;
  }
  return status;
}

std::uint32_t Bus::word_count() const {
  std::uint64_t hi = 0;
  for (const auto& region : regions_)
    hi = std::max(hi, static_cast<std::uint64_t>(region.base_word) +
                          region.port->word_count());
  return static_cast<std::uint32_t>(hi);
}

}  // namespace ntc::sim
