#include "sim/bus.hpp"

#include "common/assert.hpp"

namespace ntc::sim {

Bus::Bus(std::uint32_t wait_states) : wait_states_(wait_states) {}

void Bus::map(std::string name, std::uint32_t base_word, MemoryPort* port) {
  NTC_REQUIRE(port != nullptr);
  const std::uint64_t new_lo = base_word;
  const std::uint64_t new_hi = new_lo + port->word_count();
  NTC_REQUIRE(new_hi <= (std::uint64_t{1} << 32));
  for (const auto& region : regions_) {
    const std::uint64_t lo = region.base_word;
    const std::uint64_t hi = lo + region.port->word_count();
    NTC_REQUIRE_MSG(new_hi <= lo || new_lo >= hi, "bus regions overlap");
  }
  regions_.push_back(BusRegion{std::move(name), base_word, port, 0, 0});
}

BusRegion* Bus::find(std::uint32_t word_index) {
  for (auto& region : regions_) {
    const std::uint64_t lo = region.base_word;
    const std::uint64_t hi = lo + region.port->word_count();
    if (word_index >= lo && word_index < hi) return &region;
  }
  return nullptr;
}

bool Bus::decodes(std::uint32_t word_index) const {
  return const_cast<Bus*>(this)->find(word_index) != nullptr;
}

AccessStatus Bus::read_word(std::uint32_t word_index, std::uint32_t& data) {
  BusRegion* region = find(word_index);
  cycles_ += 1 + wait_states_;
  if (region == nullptr) {
    // Decode miss: an AHB error response (errant software at deep NTV
    // can compute wild addresses; the master sees a bus fault).
    ++decode_errors_;
    data = 0;
    return AccessStatus::DetectedUncorrectable;
  }
  ++region->reads;
  return region->port->read_word(word_index - region->base_word, data);
}

AccessStatus Bus::write_word(std::uint32_t word_index, std::uint32_t data) {
  BusRegion* region = find(word_index);
  cycles_ += 1 + wait_states_;
  if (region == nullptr) {
    ++decode_errors_;
    return AccessStatus::DetectedUncorrectable;
  }
  ++region->writes;
  return region->port->write_word(word_index - region->base_word, data);
}

std::uint32_t Bus::word_count() const {
  std::uint64_t hi = 0;
  for (const auto& region : regions_)
    hi = std::max(hi, static_cast<std::uint64_t>(region.base_word) +
                          region.port->word_count());
  return static_cast<std::uint32_t>(hi);
}

}  // namespace ntc::sim
