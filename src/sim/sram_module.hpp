// Fault-injecting SRAM array model.
//
// Stores raw codewords of up to 64 bits per word; every error mechanism
// is delegated to a chain of FaultInjector implementations.  The
// default chain holds the silicon-calibrated StochasticInjector
// (Section IV retention + access faults at the configured supply);
// scripted scenario injectors can be attached on top for deterministic
// campaigns.  Access/leakage counters feed the energy meter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/fault_injector.hpp"

namespace ntc::reliability {
class ModelTableCache;
}

namespace ntc::sim {

struct SramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t injected_read_flips = 0;
  std::uint64_t injected_write_flips = 0;
  std::uint64_t stuck_bits = 0;  ///< persistently forced cells at this supply
};

class SramModule {
 public:
  /// `stored_bits` <= 64 per word (39 for SECDED codewords, 56 for the
  /// BCH-protected buffer).  Fault injection can be disabled for
  /// golden-reference runs (no stochastic injector is attached then).
  /// `tables`, when given, is a campaign-wide cache the stochastic
  /// injector fetches its (immutable) model tables from instead of
  /// recomputing them per instance.
  SramModule(std::string name, std::uint32_t words, std::uint32_t stored_bits,
             reliability::AccessErrorModel access,
             reliability::NoiseMarginModel retention, Volt vdd, Rng rng,
             bool inject_faults = true,
             std::shared_ptr<reliability::ModelTableCache> tables = nullptr);

  const std::string& name() const { return name_; }
  std::uint32_t words() const { return static_cast<std::uint32_t>(data_.size()); }
  std::uint32_t stored_bits() const { return stored_bits_; }
  Volt vdd() const { return vdd_; }

  /// Change the supply: re-derives stuck cells and error probabilities.
  /// Raising the voltage heals stuck cells; cells keep whatever value
  /// the stuck state imposed (as real silicon would).
  void set_vdd(Volt vdd);

  /// Return to the as-constructed state over a new Monte-Carlo stream:
  /// zeroed data, cleared counters, a reseeded stochastic model, and the
  /// fault state re-derived at `vdd`.  Attached scripted injectors stay
  /// attached — the caller rearms them first — so a pooled array is
  /// indistinguishable from a freshly constructed one.
  void reset(Volt vdd, Rng rng);

  /// Append a scripted injector to the fault chain (after the
  /// stochastic model, if any).  Re-derives the persistent fault state
  /// so already-active stuck events take hold immediately.
  void attach_injector(std::shared_ptr<FaultInjector> injector);

  /// Raw codeword access with fault injection.
  std::uint64_t read_raw(std::uint32_t index);
  void write_raw(std::uint32_t index, std::uint64_t value);

  /// Raw burst access over [index, index + count): observably identical
  /// to `count` consecutive read_raw/write_raw calls — same per-word
  /// fault-model RNG draw order, same counters — with the chain walk,
  /// stat updates and overlay probes amortized over the whole range.
  /// Out-of-range bursts are rejected up front (NTC_REQUIRE), never
  /// wrapped or clipped.
  void read_raw_burst(std::uint32_t index, std::uint64_t* out,
                      std::uint32_t count);
  void write_raw_burst(std::uint32_t index, const std::uint64_t* values,
                       std::uint32_t count);

  /// Snapshot of the access-visible mutable state (counters + the
  /// stochastic model's RNG), used by burst-aware initiators to roll a
  /// speculative burst back to its start and replay word-at-a-time up
  /// to a failing word.  Only meaningful while txn_supported().
  struct Txn {
    SramStats stats;
    std::uint64_t access_count = 0;
    Rng rng{0};
    bool has_rng = false;
  };

  /// Rollback is supported only while every injector's access-visible
  /// state is captured by the snapshot — i.e. the chain is at most the
  /// stochastic model (scripted scenario injectors carry one-shot event
  /// state that cannot be rewound).
  bool txn_supported() const;
  Txn txn_save() const;
  void txn_restore(const Txn& txn);

  /// Debug/test view of the raw stored words (no access performed, no
  /// fault model applied).
  const std::vector<std::uint64_t>& raw_words() const { return data_; }

  const SramStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = SramStats{};
    // The access counter arming scripted events is derived from the
    // stats, so it restarts with them.
    ctx_.access_count = 0;
  }

  /// Current per-bit access error probability of the stochastic model
  /// (0 when fault injection is disabled).
  double access_error_probability() const;

 private:
  std::uint64_t mask() const {
    return stored_bits_ == 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << stored_bits_) - 1);
  }
  /// Merged stuck overlay for `index` (earlier injectors win on
  /// overlapping bits).
  void merged_overlay(std::uint32_t index, const FaultContext& ctx,
                      std::uint64_t& mask_bits, std::uint64_t& value_bits) const;
  /// Flip mask for the access in flight, summed over the chain.
  std::uint64_t gather_flips(AccessKind kind, std::uint32_t index,
                             const FaultContext& ctx);
  void derive_fault_state();

  std::string name_;
  std::uint32_t stored_bits_;
  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  Volt vdd_;
  bool inject_faults_;

  std::vector<std::uint64_t> data_;
  std::shared_ptr<class StochasticInjector> stochastic_;
  std::vector<std::shared_ptr<FaultInjector>> injectors_;
  SramStats stats_;

  /// Context handed to the injector hooks, updated incrementally per
  /// access instead of being rebuilt from the stats every time.
  FaultContext ctx_;
  /// Per-word merged overlay cache, valid while every injector reports
  /// a stationary overlay (invalidated by derive_fault_state, i.e. on
  /// every set_vdd/attach_injector).
  std::vector<std::uint64_t> overlay_mask_;
  std::vector<std::uint64_t> overlay_value_;
  bool overlay_cached_ = false;
  bool overlay_zero_ = false;      ///< cache valid and entirely empty
  bool flips_possible_ = false;    ///< some injector may flip accesses
};

}  // namespace ntc::sim
