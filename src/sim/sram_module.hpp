// Fault-injecting SRAM array model.
//
// Stores raw codewords of up to 64 bits per word and injects the two
// silicon error mechanisms of Section IV at the configured supply:
//   * retention faults — cells whose retention V_min exceeds the supply
//     are stuck at a random value (sampled from the Gaussian
//     noise-margin population, Eq. 2);
//   * access faults — on every read each stored bit flips transiently
//     with p = Eq. 5's access error probability; on every write each
//     bit fails to latch with the same probability (persistent until
//     rewritten).
// Access/leakage counters feed the energy meter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"

namespace ntc::sim {

struct SramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t injected_read_flips = 0;
  std::uint64_t injected_write_flips = 0;
  std::uint64_t stuck_bits = 0;  ///< retention-failed cells at this supply
};

class SramModule {
 public:
  /// `stored_bits` <= 64 per word (39 for SECDED codewords, 56 for the
  /// BCH-protected buffer).  Fault injection can be disabled for
  /// golden-reference runs.
  SramModule(std::string name, std::uint32_t words, std::uint32_t stored_bits,
             reliability::AccessErrorModel access,
             reliability::NoiseMarginModel retention, Volt vdd, Rng rng,
             bool inject_faults = true);

  const std::string& name() const { return name_; }
  std::uint32_t words() const { return static_cast<std::uint32_t>(data_.size()); }
  std::uint32_t stored_bits() const { return stored_bits_; }
  Volt vdd() const { return vdd_; }

  /// Change the supply: re-derives stuck cells and error probabilities.
  /// Raising the voltage heals stuck cells; cells keep whatever value
  /// the stuck state imposed (as real silicon would).
  void set_vdd(Volt vdd);

  /// Raw codeword access with fault injection.
  std::uint64_t read_raw(std::uint32_t index);
  void write_raw(std::uint32_t index, std::uint64_t value);

  const SramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SramStats{}; }

  /// Current per-bit access error probability.
  double access_error_probability() const { return p_access_; }

 private:
  std::uint64_t mask() const {
    return stored_bits_ == 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << stored_bits_) - 1);
  }
  std::uint64_t apply_stuck_bits(std::uint32_t index, std::uint64_t value) const;
  std::uint64_t random_flips(std::uint64_t value, std::uint64_t& flip_count);
  void derive_fault_state();

  std::string name_;
  std::uint32_t stored_bits_;
  reliability::AccessErrorModel access_;
  reliability::NoiseMarginModel retention_;
  Volt vdd_;
  Rng rng_;
  bool inject_faults_;
  double p_access_ = 0.0;
  double p_no_flip_ = 1.0;  ///< (1 - p_access)^stored_bits, fast path

  std::vector<std::uint64_t> data_;
  /// Per-word masks of retention-failed cells and their stuck values.
  std::vector<std::uint64_t> stuck_mask_;
  std::vector<std::uint64_t> stuck_value_;
  /// Per-cell mismatch deviates (fixed per instance, like silicon).
  std::vector<float> cell_sigma_;
  SramStats stats_;
};

}  // namespace ntc::sim
