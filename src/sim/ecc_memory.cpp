#include "sim/ecc_memory.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc::sim {

std::uint64_t pack_codeword(const ecc::Bits& code, std::size_t bits) {
  NTC_REQUIRE(bits >= 1 && bits <= 64);
  return code.extract(0, bits);
}

ecc::Bits unpack_codeword(std::uint64_t raw, std::size_t bits) {
  NTC_REQUIRE(bits >= 1 && bits <= 64);
  ecc::Bits out;
  out.set_word(0, raw & (~std::uint64_t{0} >> (64 - bits)));
  return out;
}

EccMemory::EccMemory(std::unique_ptr<SramModule> array,
                     std::shared_ptr<const ecc::BlockCode> code)
    : array_(std::move(array)), code_(std::move(code)) {
  NTC_REQUIRE(array_ != nullptr);
  if (code_) {
    NTC_REQUIRE(code_->data_bits() == 32);
    NTC_REQUIRE_MSG(array_->stored_bits() == code_->code_bits(),
                    "array word width must match the codeword width");
  } else {
    NTC_REQUIRE(array_->stored_bits() == 32);
  }
}

AccessStatus EccMemory::read_word(std::uint32_t word_index, std::uint32_t& data) {
  const std::uint64_t raw = array_->read_raw(word_index);
  if (!code_) {
    data = static_cast<std::uint32_t>(raw);
    if (trace_sink_) trace_sink_->on_access(false, word_index, &data, 1);
    return AccessStatus::Ok;
  }
  const ecc::DecodeResult result =
      code_->decode(unpack_codeword(raw, code_->code_bits()));
  data = static_cast<std::uint32_t>(result.data);
  if (trace_sink_) trace_sink_->on_access(false, word_index, &data, 1);
  switch (result.status) {
    case ecc::DecodeStatus::Ok:
      return AccessStatus::Ok;
    case ecc::DecodeStatus::Corrected:
      ++stats_.corrected_words;
      stats_.corrected_bits += static_cast<std::uint64_t>(result.corrected_bits);
      return AccessStatus::CorrectedError;
    case ecc::DecodeStatus::DetectedUncorrectable:
      ++stats_.uncorrectable_words;
      return AccessStatus::DetectedUncorrectable;
  }
  return AccessStatus::Ok;
}

namespace {
/// Stack-buffer chunk size for the burst codec scratch (256 words keeps
/// the raw + decode-result buffers ~8 KiB, comfortably in L1).
constexpr std::uint32_t kCodecChunk = 256;
}  // namespace

AccessStatus EccMemory::read_burst(std::uint32_t word_index,
                                   std::span<std::uint32_t> data) {
  if (!burst_native_enabled()) return MemoryPort::read_burst(word_index, data);
  NTC_REQUIRE(static_cast<std::uint64_t>(word_index) + data.size() <=
              array_->words());
  // One event per burst; the word count rides in a1 rather than a
  // histogram observe so the benched hot path pays a single record().
  NTC_TELEM_EVENT(telemetry::EventKind::MemoryBurst, "ecc_read_burst",
                  word_index, data.size());
  AccessStatus status = AccessStatus::Ok;
  std::uint64_t raws[kCodecChunk];
  if (!code_) {
    for (std::size_t off = 0; off < data.size(); off += kCodecChunk) {
      const std::uint32_t m = static_cast<std::uint32_t>(
          std::min<std::size_t>(data.size() - off, kCodecChunk));
      array_->read_raw_burst(word_index + static_cast<std::uint32_t>(off), raws,
                             m);
      for (std::uint32_t i = 0; i < m; ++i)
        data[off + i] = static_cast<std::uint32_t>(raws[i]);
    }
    if (trace_sink_)
      trace_sink_->on_access(false, word_index, data.data(),
                             static_cast<std::uint32_t>(data.size()));
    return status;
  }
  ecc::BatchDecodeSummary summary;
  for (std::size_t off = 0; off < data.size(); off += kCodecChunk) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        std::min<std::size_t>(data.size() - off, kCodecChunk));
    array_->read_raw_burst(word_index + static_cast<std::uint32_t>(off), raws,
                           m);
    code_->decode_words(raws, m, data.data() + off, summary);
    status = worse_status(status, note_summary(summary));
  }
  if (trace_sink_)
    trace_sink_->on_access(false, word_index, data.data(),
                           static_cast<std::uint32_t>(data.size()));
  return status;
}

AccessStatus EccMemory::note_summary(const ecc::BatchDecodeSummary& summary) {
  stats_.corrected_words += summary.corrected_words;
  stats_.corrected_bits += summary.corrected_bits;
  stats_.uncorrectable_words += summary.uncorrectable_words;
  if (summary.corrected_words > 0 || summary.uncorrectable_words > 0) {
    NTC_TELEM_EVENT(telemetry::EventKind::EccDecode, "ecc_batch_decode",
                    summary.corrected_words, summary.uncorrectable_words);
    NTC_TELEM_COUNT("ntc_ecc_corrected_words_total", summary.corrected_words);
    NTC_TELEM_COUNT("ntc_ecc_uncorrectable_words_total",
                    summary.uncorrectable_words);
  }
  if (summary.uncorrectable_words > 0) return AccessStatus::DetectedUncorrectable;
  if (summary.corrected_words > 0) return AccessStatus::CorrectedError;
  return AccessStatus::Ok;
}

AccessStatus EccMemory::write_burst(std::uint32_t word_index,
                                    std::span<const std::uint32_t> data) {
  if (!burst_native_enabled()) return MemoryPort::write_burst(word_index, data);
  NTC_REQUIRE(static_cast<std::uint64_t>(word_index) + data.size() <=
              array_->words());
  NTC_TELEM_EVENT(telemetry::EventKind::MemoryBurst, "ecc_write_burst",
                  word_index, data.size());
  std::uint64_t raws[kCodecChunk];
  if (!code_) {
    for (std::size_t off = 0; off < data.size(); off += kCodecChunk) {
      const std::uint32_t m = static_cast<std::uint32_t>(
          std::min<std::size_t>(data.size() - off, kCodecChunk));
      for (std::uint32_t i = 0; i < m; ++i) raws[i] = data[off + i];
      array_->write_raw_burst(word_index + static_cast<std::uint32_t>(off),
                              raws, m);
    }
    if (trace_sink_)
      trace_sink_->on_access(true, word_index, data.data(),
                             static_cast<std::uint32_t>(data.size()));
    return AccessStatus::Ok;
  }
  for (std::size_t off = 0; off < data.size(); off += kCodecChunk) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        std::min<std::size_t>(data.size() - off, kCodecChunk));
    code_->encode_words(data.data() + off, m, raws);
    array_->write_raw_burst(word_index + static_cast<std::uint32_t>(off), raws,
                            m);
  }
  if (trace_sink_)
    trace_sink_->on_access(true, word_index, data.data(),
                           static_cast<std::uint32_t>(data.size()));
  return AccessStatus::Ok;
}

AccessStatus EccMemory::read_burst_tracked(std::uint32_t word_index,
                                           std::span<std::uint32_t> data,
                                           std::uint32_t& first_bad) {
  if (!code_) {
    // Without a code no word can decode as uncorrectable.
    const AccessStatus status = read_burst(word_index, data);
    first_bad = static_cast<std::uint32_t>(data.size());
    return status;
  }
  if (!burst_native_enabled() || !array_->txn_supported())
    return MemoryPort::read_burst_tracked(word_index, data, first_bad);
  NTC_REQUIRE(static_cast<std::uint64_t>(word_index) + data.size() <=
              array_->words());
  AccessStatus status = AccessStatus::Ok;
  std::uint64_t raws[kCodecChunk];
  ecc::BatchDecodeSummary summary;
  for (std::size_t off = 0; off < data.size(); off += kCodecChunk) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        std::min<std::size_t>(data.size() - off, kCodecChunk));
    const std::uint32_t base = word_index + static_cast<std::uint32_t>(off);
    // Run the chunk speculatively under a transaction so a mid-chunk
    // uncorrectable word can be unwound to the exact per-word state.
    // Stats are only merged once the chunk is known clean, so they need
    // no rollback of their own.
    const SramModule::Txn txn = array_->txn_save();
    array_->read_raw_burst(base, raws, m);
    code_->decode_words(raws, m, data.data() + off, summary);
    if (summary.first_uncorrectable == m) {
      status = worse_status(status, note_summary(summary));
      if (trace_sink_) trace_sink_->on_access(false, base, data.data() + off, m);
      continue;
    }
    // Roll back and replay word-at-a-time through the failing word:
    // determinism replays identical draws, and the fault-model state
    // stops exactly where the per-word loop would.
    const std::uint32_t bad =
        static_cast<std::uint32_t>(summary.first_uncorrectable);
    array_->txn_restore(txn);
    for (std::uint32_t i = 0; i < bad; ++i)
      status = worse_status(status, read_word(base + i, data[off + i]));
    (void)read_word(base + bad, data[off + bad]);
    first_bad = static_cast<std::uint32_t>(off) + bad;
    return status;
  }
  first_bad = static_cast<std::uint32_t>(data.size());
  return status;
}

AccessStatus EccMemory::write_word(std::uint32_t word_index, std::uint32_t data) {
  if (!code_) {
    array_->write_raw(word_index, data);
    if (trace_sink_) trace_sink_->on_access(true, word_index, &data, 1);
    return AccessStatus::Ok;
  }
  array_->write_raw(word_index, pack_codeword(code_->encode(data), code_->code_bits()));
  if (trace_sink_) trace_sink_->on_access(true, word_index, &data, 1);
  return AccessStatus::Ok;
}

std::uint64_t EccMemory::scrub() {
  NTC_TELEM_SPAN(span, telemetry::EventKind::Scrub, "ecc_scrub");
  ++stats_.scrub_passes;
  std::uint64_t uncorrectable = 0;
  for (std::uint32_t w = 0; w < array_->words(); ++w) {
    std::uint32_t data = 0;
    const AccessStatus status = read_word(w, data);
    if (status == AccessStatus::DetectedUncorrectable) {
      // Do NOT write back: re-encoding a best-effort decode would turn a
      // detected error into a valid codeword of wrong data (silent
      // corruption), and discard raw bits a later retry at a healthier
      // operating point could still recover.
      ++uncorrectable;
      continue;
    }
    write_word(w, data);
  }
  span.set_args(array_->words(), uncorrectable);
  NTC_TELEM_COUNT("ntc_ecc_scrub_passes_total", 1);
  return uncorrectable;
}

}  // namespace ntc::sim
