#include "sim/ecc_memory.hpp"

#include "common/assert.hpp"

namespace ntc::sim {

std::uint64_t pack_codeword(const ecc::Bits& code, std::size_t bits) {
  NTC_REQUIRE(bits >= 1 && bits <= 64);
  return code.extract(0, bits);
}

ecc::Bits unpack_codeword(std::uint64_t raw, std::size_t bits) {
  NTC_REQUIRE(bits >= 1 && bits <= 64);
  ecc::Bits out;
  out.set_word(0, raw & (~std::uint64_t{0} >> (64 - bits)));
  return out;
}

EccMemory::EccMemory(std::unique_ptr<SramModule> array,
                     std::shared_ptr<const ecc::BlockCode> code)
    : array_(std::move(array)), code_(std::move(code)) {
  NTC_REQUIRE(array_ != nullptr);
  if (code_) {
    NTC_REQUIRE(code_->data_bits() == 32);
    NTC_REQUIRE_MSG(array_->stored_bits() == code_->code_bits(),
                    "array word width must match the codeword width");
  } else {
    NTC_REQUIRE(array_->stored_bits() == 32);
  }
}

AccessStatus EccMemory::read_word(std::uint32_t word_index, std::uint32_t& data) {
  const std::uint64_t raw = array_->read_raw(word_index);
  if (!code_) {
    data = static_cast<std::uint32_t>(raw);
    return AccessStatus::Ok;
  }
  const ecc::DecodeResult result =
      code_->decode(unpack_codeword(raw, code_->code_bits()));
  data = static_cast<std::uint32_t>(result.data);
  switch (result.status) {
    case ecc::DecodeStatus::Ok:
      return AccessStatus::Ok;
    case ecc::DecodeStatus::Corrected:
      ++stats_.corrected_words;
      stats_.corrected_bits += static_cast<std::uint64_t>(result.corrected_bits);
      return AccessStatus::CorrectedError;
    case ecc::DecodeStatus::DetectedUncorrectable:
      ++stats_.uncorrectable_words;
      return AccessStatus::DetectedUncorrectable;
  }
  return AccessStatus::Ok;
}

AccessStatus EccMemory::write_word(std::uint32_t word_index, std::uint32_t data) {
  if (!code_) {
    array_->write_raw(word_index, data);
    return AccessStatus::Ok;
  }
  array_->write_raw(word_index, pack_codeword(code_->encode(data), code_->code_bits()));
  return AccessStatus::Ok;
}

std::uint64_t EccMemory::scrub() {
  ++stats_.scrub_passes;
  std::uint64_t uncorrectable = 0;
  for (std::uint32_t w = 0; w < array_->words(); ++w) {
    std::uint32_t data = 0;
    const AccessStatus status = read_word(w, data);
    if (status == AccessStatus::DetectedUncorrectable) {
      // Do NOT write back: re-encoding a best-effort decode would turn a
      // detected error into a valid codeword of wrong data (silent
      // corruption), and discard raw bits a later retry at a healthier
      // operating point could still recover.
      ++uncorrectable;
      continue;
    }
    write_word(w, data);
  }
  return uncorrectable;
}

}  // namespace ntc::sim
