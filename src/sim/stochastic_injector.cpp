#include "sim/stochastic_injector.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ntc::sim {

StochasticInjector::StochasticInjector(reliability::AccessErrorModel access,
                                       reliability::NoiseMarginModel retention,
                                       Rng rng, std::uint32_t words,
                                       std::uint32_t stored_bits)
    : access_(std::move(access)),
      retention_(std::move(retention)),
      rng_(rng),
      stored_bits_(stored_bits),
      stuck_mask_(words, 0),
      stuck_value_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  // Per-cell mismatch deviates are the silicon fingerprint of this
  // instance; they persist across voltage changes.
  cell_sigma_.resize(static_cast<std::size_t>(words) * stored_bits_);
  Rng sigma_rng = rng_.fork(0x51d3);
  for (auto& s : cell_sigma_) s = static_cast<float>(sigma_rng.normal());
}

void StochasticInjector::on_operating_point(const FaultContext& ctx) {
  p_access_ = access_.p_bit_err(ctx.vdd);
  p_no_flip_ = std::pow(1.0 - p_access_, static_cast<double>(stored_bits_));
  Rng stuck_rng = rng_.fork(0x57);
  for (std::uint32_t w = 0; w < ctx.words; ++w) {
    std::uint64_t mask_bits = 0, value_bits = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b) {
      const double sigma =
          cell_sigma_[static_cast<std::size_t>(w) * stored_bits_ + b];
      if (retention_.cell_retention_vmin(sigma) > ctx.vdd) {
        mask_bits |= std::uint64_t{1} << b;
        if (stuck_rng.bernoulli(0.5)) value_bits |= std::uint64_t{1} << b;
      }
    }
    stuck_mask_[w] = mask_bits;
    stuck_value_[w] = value_bits;
  }
}

void StochasticInjector::stuck_overlay(std::uint32_t index,
                                       const FaultContext& ctx,
                                       std::uint64_t& mask,
                                       std::uint64_t& value) {
  (void)ctx;
  mask = stuck_mask_[index];
  value = stuck_value_[index] & stuck_mask_[index];
}

std::uint64_t StochasticInjector::access_flips(AccessKind kind,
                                               std::uint32_t index,
                                               const FaultContext& ctx) {
  (void)kind, (void)index, (void)ctx;
  if (p_access_ <= 0.0) return 0;
  // Fast path: with probability (1-p)^bits nothing flips — one uniform
  // draw.  Otherwise rejection-sample the (rare) nonzero flip mask,
  // which preserves the exact per-bit Bernoulli distribution.
  if (rng_.uniform() < p_no_flip_) return 0;
  std::uint64_t flips = 0;
  do {
    flips = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b) {
      if (rng_.bernoulli(p_access_)) flips |= std::uint64_t{1} << b;
    }
  } while (flips == 0);
  return flips;
}

}  // namespace ntc::sim
