#include "sim/stochastic_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ntc::sim {

StochasticInjector::StochasticInjector(reliability::AccessErrorModel access,
                                       reliability::NoiseMarginModel retention,
                                       Rng rng, std::uint32_t words,
                                       std::uint32_t stored_bits)
    : access_(std::move(access)),
      retention_(std::move(retention)),
      rng_(rng),
      stored_bits_(stored_bits),
      stuck_mask_(words, 0),
      stuck_value_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  // Per-cell mismatch deviates are the silicon fingerprint of this
  // instance; they persist across voltage changes, so fold them into
  // per-cell retention V_min once.  The deviates pass through float
  // like the original per-access model evaluation did, keeping the
  // derived V_min bit-identical.
  const std::size_t cells = static_cast<std::size_t>(words) * stored_bits_;
  cell_vmin_.resize(cells);
  Rng sigma_rng = rng_.fork(0x51d3);
  for (auto& vmin : cell_vmin_) {
    const double sigma = static_cast<float>(sigma_rng.normal());
    vmin = retention_.cell_retention_vmin(sigma).value;
  }
}

void StochasticInjector::on_operating_point(const FaultContext& ctx) {
  p_access_ = access_.p_bit_err(ctx.vdd);
  p_no_flip_ = std::pow(1.0 - p_access_, static_cast<double>(stored_bits_));
  // The failing set {V_min > vdd} is monotone in the supply, so sets at
  // two voltages are nested and equal counts mean an identical set —
  // and, because the value stream is forked fresh per operating point
  // and consumed in cell order, identical stuck values too: skip the
  // redraw entirely.
  const double vdd = ctx.vdd.value;
  const std::size_t count = static_cast<std::size_t>(std::count_if(
      cell_vmin_.begin(), cell_vmin_.end(),
      [vdd](double vmin) { return vmin > vdd; }));
  if (count == stuck_count_) return;
  stuck_count_ = count;

  // Redraw in ascending cell order — the order the full words x bits
  // rescan visited the failing cells — so results stay bit-exact.
  Rng stuck_rng = rng_.fork(0x57);
  const double* vmin = cell_vmin_.data();
  for (std::size_t w = 0; w < stuck_mask_.size(); ++w) {
    std::uint64_t mask_bits = 0, value_bits = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b, ++vmin) {
      if (*vmin > vdd) {
        mask_bits |= std::uint64_t{1} << b;
        if (stuck_rng.bernoulli(0.5)) value_bits |= std::uint64_t{1} << b;
      }
    }
    stuck_mask_[w] = mask_bits;
    stuck_value_[w] = value_bits;
  }
}

void StochasticInjector::stuck_overlay(std::uint32_t index,
                                       const FaultContext& ctx,
                                       std::uint64_t& mask,
                                       std::uint64_t& value) {
  (void)ctx;
  mask = stuck_mask_[index];
  value = stuck_value_[index] & stuck_mask_[index];
}

std::uint64_t StochasticInjector::access_flips(AccessKind kind,
                                               std::uint32_t index,
                                               const FaultContext& ctx) {
  (void)kind, (void)index, (void)ctx;
  if (p_access_ <= 0.0) return 0;
  // Fast path: with probability (1-p)^bits nothing flips — one uniform
  // draw.  Otherwise rejection-sample the (rare) nonzero flip mask,
  // which preserves the exact per-bit Bernoulli distribution.
  if (rng_.uniform() < p_no_flip_) return 0;
  std::uint64_t flips = 0;
  do {
    flips = 0;
    for (std::uint32_t b = 0; b < stored_bits_; ++b) {
      if (rng_.bernoulli(p_access_)) flips |= std::uint64_t{1} << b;
    }
  } while (flips == 0);
  return flips;
}

}  // namespace ntc::sim
