#include "sim/stochastic_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/simd.hpp"

namespace ntc::sim {

StochasticInjector::StochasticInjector(
    reliability::AccessErrorModel access, reliability::NoiseMarginModel
    retention, Rng rng, std::uint32_t words, std::uint32_t stored_bits,
    std::shared_ptr<reliability::ModelTableCache> tables)
    : access_(std::move(access)),
      retention_(std::move(retention)),
      rng_(rng),
      stored_bits_(stored_bits),
      tables_(std::move(tables)),
      stuck_mask_(words, 0),
      stuck_value_(words, 0) {
  NTC_REQUIRE(words > 0);
  NTC_REQUIRE(stored_bits >= 1 && stored_bits <= 64);
  // V_min is affine in the deviate, so its extreme over the population
  // lies at one of the Box-Muller endpoints; any supply at or above it
  // provably retains every cell without drawing the fingerprint.
  const double bound = Rng::max_normal_magnitude();
  lazy_safe_vdd_ = std::max(retention_.cell_retention_vmin(-bound).value,
                            retention_.cell_retention_vmin(bound).value);
}

void StochasticInjector::reseed(Rng rng) {
  rng_ = rng;
  // As-if freshly constructed over `rng`: the old fingerprint belongs to
  // the old seed, and the flip stream restarts from the new engine.
  vmin_ = nullptr;
  if (stuck_count_ != 0) {
    std::fill(stuck_mask_.begin(), stuck_mask_.end(), 0);
    std::fill(stuck_value_.begin(), stuck_value_.end(), 0);
    stuck_count_ = 0;
  }
  p_access_ = 0.0;
  p_no_flip_ = 1.0;
  gate_threshold_ = simd::gate_threshold(p_no_flip_);
}

void StochasticInjector::materialize_fingerprint() {
  if (vmin_) return;
  const std::size_t cells = stuck_mask_.size() * stored_bits_;
  // fork() is const, so keying the table on the forked seed consumes
  // nothing from rng_ — exactly like the eager draw did.
  const std::uint64_t sigma_seed = rng_.fork(0x51d3).seed();
  vmin_ = tables_
              ? tables_->retention_vmin(retention_, sigma_seed, cells)
              : reliability::make_retention_vmin_table(retention_, sigma_seed,
                                                       cells);
}

void StochasticInjector::on_operating_point(const FaultContext& ctx) {
  p_access_ = tables_ ? tables_->p_access(access_, ctx.vdd)
                      : access_.p_bit_err(ctx.vdd);
  p_no_flip_ = std::pow(1.0 - p_access_, static_cast<double>(stored_bits_));
  gate_threshold_ = simd::gate_threshold(p_no_flip_);
  if (!vmin_) {
    if (ctx.vdd.value >= lazy_safe_vdd_) return;  // failing set provably empty
    materialize_fingerprint();
  }
  // The failing set {V_min > vdd} is monotone in the supply, so sets at
  // two voltages are nested and equal counts mean an identical set —
  // and, because the value stream is forked fresh per operating point
  // and consumed in cell order, identical stuck values too: skip the
  // redraw entirely.
  const std::size_t count = vmin_->failing_count(ctx.vdd);
  if (count == stuck_count_) return;
  rebuild_stuck_state(count);
}

void StochasticInjector::rebuild_stuck_state(std::size_t count) {
  // Old and new failing sets are nested prefixes of the sorted table, so
  // the longer prefix covers every word either set touches: clear those
  // and rebuild the new prefix, leaving the (vast) retained remainder
  // untouched.
  const auto& cell_desc = vmin_->cell_desc;
  const std::size_t touched = std::max(stuck_count_, count);
  for (std::size_t i = 0; i < touched; ++i) {
    const std::uint32_t word = cell_desc[i] / stored_bits_;
    stuck_mask_[word] = 0;
    stuck_value_[word] = 0;
  }
  stuck_count_ = count;
  if (count == 0) return;

  // Redraw in ascending cell order — the order the full words x bits
  // rescan visited the failing cells — so results stay bit-exact.
  std::vector<std::uint32_t> failing(cell_desc.begin(),
                                     cell_desc.begin() + count);
  std::sort(failing.begin(), failing.end());
  Rng stuck_rng = rng_.fork(0x57);
  for (const std::uint32_t cell : failing) {
    const std::uint32_t word = cell / stored_bits_;
    const std::uint64_t bit = std::uint64_t{1} << (cell % stored_bits_);
    stuck_mask_[word] |= bit;
    if (stuck_rng.bernoulli(0.5)) stuck_value_[word] |= bit;
  }
}

void StochasticInjector::stuck_overlay(std::uint32_t index,
                                       const FaultContext& ctx,
                                       std::uint64_t& mask,
                                       std::uint64_t& value) {
  (void)ctx;
  mask = stuck_mask_[index];
  value = stuck_value_[index] & stuck_mask_[index];
}

std::uint64_t StochasticInjector::draw_flip_mask() {
  // Fast path: with probability (1-p)^bits nothing flips — one uniform
  // draw.  Otherwise draw the (rare) nonzero mask by the exact
  // conditional chain, which preserves the per-bit Bernoulli law.
  if (rng_.uniform() < p_no_flip_) return 0;
  return draw_nonzero_flips();
}

std::uint64_t StochasticInjector::draw_nonzero_flips() {
  return draw_conditional_nonzero_flips(rng_, p_access_, stored_bits_);
}

std::uint64_t StochasticInjector::access_flips(AccessKind kind,
                                               std::uint32_t index,
                                               const FaultContext& ctx) {
  (void)kind, (void)index, (void)ctx;
  if (p_access_ <= 0.0) return 0;
  return draw_flip_mask();
}

void StochasticInjector::access_flips_burst(std::uint32_t count,
                                            std::uint64_t* flips) {
  NTC_REQUIRE(p_access_ > 0.0);
  // SoA bulk path: one fill_u64 per chunk supplies the gate uniforms
  // for up to kGateChunk words at once.  A chunk with no flip (the
  // overwhelmingly common case at campaign voltages) consumes exactly
  // one engine step per word, identical to the scalar loop.  On a flip
  // the engine rewinds to the chunk snapshot, re-consumes the gate
  // draws scalar-style through the flipping word, draws the nonzero
  // mask, and the scan resumes on the next word — so the draw stream
  // stays bit-exact against per-word draw_flip_mask calls.
  constexpr std::uint32_t kGateChunk = 128;
  std::uint64_t gates[kGateChunk];
  std::uint32_t i = 0;
  while (i < count) {
    const std::uint32_t n = std::min(count - i, kGateChunk);
    const Rng snapshot = rng_;
    rng_.fill_u64({gates, n});
    // Integer-exact gate compare (see simd::gate_threshold): the vector
    // and scalar scans agree with the double compare bit for bit.
    const std::uint32_t flip_at =
        simd::find_first_gate(gates, n, gate_threshold_);
    std::fill_n(flips + i, flip_at, std::uint64_t{0});
    if (flip_at == n) {
      i += n;
      continue;
    }
    rng_ = snapshot;
    for (std::uint32_t j = 0; j <= flip_at; ++j) rng_.next_u64();
    flips[i + flip_at] = draw_nonzero_flips();
    i += flip_at + 1;
  }
}

}  // namespace ntc::sim
