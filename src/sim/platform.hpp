// The evaluated single-core SoC (paper Figure 6).
//
// 32-bit core + 4 KB instruction memory + 8 KB scratchpad data memory,
// AHB-class bus; OCEAN configurations add the protected memory (PM) and
// checkpoint hardware.  Construction picks the mitigation scheme:
//   * NoMitigation — both memories store raw 32-bit words;
//   * Secded      — IM and SPM store (39,32) codewords, codec charged
//                    per access;
//   * Ocean       — IM keeps SECDED (detect-and-rollback for fetches),
//                    SPM raw, plus a BCH(t=4)-protected PM for
//                    checkpoint chunks.
// Energy is accounted per module from access counters and the
// calibrated memory/logic models; workloads that execute natively
// (execution-driven, e.g. the FFT) charge their compute cycles through
// add_compute_cycles().
#pragma once

#include <memory>
#include <optional>

#include "ecc/codec_overhead.hpp"
#include "energy/logic_model.hpp"
#include "energy/memory_calculator.hpp"
#include "mitigation/scheme.hpp"
#include "sim/bus.hpp"
#include "sim/cpu.hpp"
#include "sim/ecc_memory.hpp"

namespace ntc::reliability {
class ModelTableCache;
}

namespace ntc::sim {

struct PlatformConfig {
  energy::MemoryStyle memory_style = energy::MemoryStyle::CellBasedImec40;
  mitigation::SchemeKind scheme = mitigation::SchemeKind::NoMitigation;
  Volt vdd{0.55};
  Hertz clock{290.0e3};
  Celsius temperature{25.0};
  std::uint32_t imem_bytes = 4 * 1024;
  std::uint32_t spm_bytes = 8 * 1024;
  std::uint32_t pm_bytes = 1024;  ///< OCEAN protected buffer
  std::uint64_t seed = 1;
  bool inject_faults = true;
  /// Optional campaign-wide cache of immutable model tables (retention
  /// fingerprints, access-error curve points) shared by every platform
  /// handed the same cache.  Null keeps the models platform-private.
  std::shared_ptr<reliability::ModelTableCache> tables;
};

/// Word-index base addresses on the bus (byte addresses are 4x).
struct PlatformMap {
  static constexpr std::uint32_t kImemBase = 0x0000'0000;
  static constexpr std::uint32_t kSpmBase = 0x0001'0000;
  static constexpr std::uint32_t kPmBase = 0x0002'0000;
};

/// Per-module power/energy split (the bars of Figures 8 and 9).
struct PlatformEnergyReport {
  Watt core{0.0};
  Watt imem{0.0};
  Watt spm{0.0};
  Watt pm{0.0};
  Watt codec{0.0};  ///< ECC / OCEAN hardware

  Watt total() const { return core + imem + spm + pm + codec; }
};

class Platform {
 public:
  explicit Platform(PlatformConfig config);

  const PlatformConfig& config() const { return config_; }
  Cpu& cpu() { return *cpu_; }
  Bus& bus() { return bus_; }
  EccMemory& imem() { return *imem_; }
  EccMemory& spm() { return *spm_; }
  EccMemory* pm() { return pm_.get(); }  ///< null unless OCEAN

  /// Load a program image into the instruction memory (fault injection
  /// bypassed during load) and reset the core to its start.
  void load_program(const std::vector<std::uint32_t>& words);

  /// Charge compute cycles for execution-driven workloads that do not
  /// run on the RISC core (each charged cycle also implies one
  /// instruction fetch worth of IM traffic unless `with_fetches` = 0).
  void add_compute_cycles(std::uint64_t cycles, double fetches_per_cycle = 1.0);

  /// Total platform cycles so far (core + charged compute cycles).
  std::uint64_t total_cycles() const;

  /// Elapsed wall-clock time at the configured clock.
  Second elapsed() const;

  /// Average power over the elapsed execution, split per module.
  PlatformEnergyReport energy_report() const;

  /// Change the (single) supply rail at run time — the monitor/control
  /// loop knob.  Affects fault injection and all energy figures of
  /// subsequent activity (the report uses the current supply).
  void set_vdd(Volt vdd);

  /// Fast re-init: return the platform to the state a fresh
  /// Platform(config) with the given seed/supply would be in, without
  /// reconstructing the memory arenas.  Memories are zeroed and
  /// reseeded, counters cleared, the core reset.  Scripted injectors
  /// attached to the arrays survive (rearm them first); the stochastic
  /// model is reseeded like a new instance.
  void reset(std::uint64_t seed, Volt vdd);

  /// As above, additionally switching the mitigation scheme.  A scheme
  /// change rebuilds the memories and codec models (their geometry and
  /// codes differ per scheme) — still cheaper than a full construction,
  /// but attached injectors are dropped with the old arrays.
  void reset(std::uint64_t seed, Volt vdd, mitigation::SchemeKind scheme);

  /// The mitigation scheme descriptor in effect.
  const mitigation::MitigationScheme& scheme() const { return scheme_; }

 private:
  std::unique_ptr<EccMemory> make_memory(const std::string& name,
                                         std::uint32_t bytes,
                                         std::uint32_t stored_bits,
                                         std::shared_ptr<const ecc::BlockCode> code,
                                         std::uint64_t salt);
  /// Build memories, bus map and core from config_ (construction and
  /// scheme-change reset share this).
  void build_memories();

  PlatformConfig config_;
  mitigation::MitigationScheme scheme_;
  energy::MemoryCalculator imem_calc_;
  energy::MemoryCalculator spm_calc_;
  energy::MemoryCalculator pm_calc_;
  energy::LogicModel core_model_;
  energy::LogicModel codec_model_;
  ecc::CodecOverhead secded_overhead_;
  ecc::CodecOverhead bch_overhead_;

  Bus bus_;
  std::unique_ptr<EccMemory> imem_;
  std::unique_ptr<EccMemory> spm_;
  std::unique_ptr<EccMemory> pm_;
  std::unique_ptr<Cpu> cpu_;

  std::uint64_t extra_cycles_ = 0;
  std::uint64_t extra_fetches_ = 0;
};

}  // namespace ntc::sim
