#include "sim/cpu.hpp"

#include "common/assert.hpp"

namespace ntc::sim {

namespace {
inline std::int32_t sign_extend_bits(std::uint32_t value, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ m) - m);
}
}  // namespace

Cpu::Cpu(MemoryPort& memory) : memory_(memory) {}

void Cpu::reset(std::uint32_t pc) {
  regs_.fill(0);
  pc_ = pc;
  halt_ = CpuHaltReason::Running;
  stats_ = CpuStats{};
}

std::uint32_t Cpu::reg(std::size_t index) const {
  NTC_REQUIRE(index < 32);
  return regs_[index];
}

void Cpu::set_reg(std::size_t index, std::uint32_t value) {
  NTC_REQUIRE(index < 32);
  if (index != 0) regs_[index] = value;
}

std::uint32_t Cpu::load(std::uint32_t addr, unsigned bytes, bool sign, bool& fault) {
  std::uint32_t word = 0;
  const AccessStatus status = memory_.read_word(addr >> 2, word);
  if (status == AccessStatus::DetectedUncorrectable) {
    fault = true;
    return 0;
  }
  if (status == AccessStatus::CorrectedError) ++stats_.corrected_accesses;
  const unsigned offset = (addr & 3u) * 8;
  std::uint32_t value;
  switch (bytes) {
    case 1: value = (word >> offset) & 0xFFu; break;
    case 2: value = (word >> offset) & 0xFFFFu; break;
    default: value = word; break;
  }
  if (sign && bytes < 4)
    value = static_cast<std::uint32_t>(sign_extend_bits(value, bytes * 8));
  return value;
}

void Cpu::store(std::uint32_t addr, std::uint32_t value, unsigned bytes,
                bool& fault) {
  if (bytes == 4) {
    if (memory_.write_word(addr >> 2, value) ==
        AccessStatus::DetectedUncorrectable)
      fault = true;
    return;
  }
  // Sub-word store: read-modify-write the containing word.
  std::uint32_t word = 0;
  const AccessStatus status = memory_.read_word(addr >> 2, word);
  if (status == AccessStatus::DetectedUncorrectable) {
    fault = true;
    return;
  }
  if (status == AccessStatus::CorrectedError) ++stats_.corrected_accesses;
  const unsigned offset = (addr & 3u) * 8;
  const std::uint32_t mask = (bytes == 1 ? 0xFFu : 0xFFFFu) << offset;
  word = (word & ~mask) | ((value << offset) & mask);
  if (memory_.write_word(addr >> 2, word) == AccessStatus::DetectedUncorrectable)
    fault = true;
}

bool Cpu::step() {
  if (halt_ != CpuHaltReason::Running) return false;

  std::uint32_t inst = 0;
  const AccessStatus fstat = memory_.read_word(pc_ >> 2, inst);
  ++stats_.fetches;
  if (fstat == AccessStatus::DetectedUncorrectable) {
    halt_ = CpuHaltReason::MemoryFault;
    return false;
  }
  if (fstat == AccessStatus::CorrectedError) ++stats_.corrected_accesses;

  const std::uint32_t opcode = inst & 0x7Fu;
  const std::uint32_t rd = (inst >> 7) & 0x1Fu;
  const std::uint32_t funct3 = (inst >> 12) & 0x7u;
  const std::uint32_t rs1 = (inst >> 15) & 0x1Fu;
  const std::uint32_t rs2 = (inst >> 20) & 0x1Fu;
  const std::uint32_t funct7 = inst >> 25;
  const std::uint32_t a = regs_[rs1];
  const std::uint32_t b = regs_[rs2];

  std::uint32_t next_pc = pc_ + 4;
  std::uint64_t cost = 1;
  bool fault = false;

  switch (opcode) {
    case 0x37:  // LUI
      set_reg(rd, inst & 0xFFFFF000u);
      break;
    case 0x17:  // AUIPC
      set_reg(rd, pc_ + (inst & 0xFFFFF000u));
      break;
    case 0x6F: {  // JAL
      std::uint32_t imm = ((inst >> 31) << 20) | (((inst >> 12) & 0xFFu) << 12) |
                          (((inst >> 20) & 1u) << 11) | (((inst >> 21) & 0x3FFu) << 1);
      set_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sign_extend_bits(imm, 21));
      cost = 2;
      ++stats_.taken_branches;
      break;
    }
    case 0x67: {  // JALR
      const std::int32_t imm = sign_extend_bits(inst >> 20, 12);
      const std::uint32_t target = (a + static_cast<std::uint32_t>(imm)) & ~1u;
      set_reg(rd, pc_ + 4);
      next_pc = target;
      cost = 2;
      ++stats_.taken_branches;
      break;
    }
    case 0x63: {  // branches
      std::uint32_t imm = ((inst >> 31) << 12) | (((inst >> 7) & 1u) << 11) |
                          (((inst >> 25) & 0x3Fu) << 5) | (((inst >> 8) & 0xFu) << 1);
      const std::int32_t offset = sign_extend_bits(imm, 13);
      bool taken = false;
      switch (funct3) {
        case 0: taken = (a == b); break;
        case 1: taken = (a != b); break;
        case 4: taken = (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)); break;
        case 5: taken = (static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b)); break;
        case 6: taken = (a < b); break;
        case 7: taken = (a >= b); break;
        default: halt_ = CpuHaltReason::IllegalOpcode; return false;
      }
      if (taken) {
        next_pc = pc_ + static_cast<std::uint32_t>(offset);
        cost = 2;
        ++stats_.taken_branches;
      }
      break;
    }
    case 0x03: {  // loads
      const std::int32_t imm = sign_extend_bits(inst >> 20, 12);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      ++stats_.loads;
      cost = 2;
      switch (funct3) {
        case 0: set_reg(rd, load(addr, 1, true, fault)); break;
        case 1: set_reg(rd, load(addr, 2, true, fault)); break;
        case 2: set_reg(rd, load(addr, 4, false, fault)); break;
        case 4: set_reg(rd, load(addr, 1, false, fault)); break;
        case 5: set_reg(rd, load(addr, 2, false, fault)); break;
        default: halt_ = CpuHaltReason::IllegalOpcode; return false;
      }
      break;
    }
    case 0x23: {  // stores
      std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1Fu);
      const std::uint32_t addr = a + static_cast<std::uint32_t>(sign_extend_bits(imm, 12));
      ++stats_.stores;
      cost = 2;
      switch (funct3) {
        case 0: store(addr, b, 1, fault); break;
        case 1: store(addr, b, 2, fault); break;
        case 2: store(addr, b, 4, fault); break;
        default: halt_ = CpuHaltReason::IllegalOpcode; return false;
      }
      break;
    }
    case 0x13: {  // ALU immediate
      const std::int32_t imm = sign_extend_bits(inst >> 20, 12);
      const std::uint32_t ui = static_cast<std::uint32_t>(imm);
      const std::uint32_t shamt = rs2;
      switch (funct3) {
        case 0: set_reg(rd, a + ui); break;
        case 2: set_reg(rd, static_cast<std::int32_t>(a) < imm ? 1 : 0); break;
        case 3: set_reg(rd, a < ui ? 1 : 0); break;
        case 4: set_reg(rd, a ^ ui); break;
        case 6: set_reg(rd, a | ui); break;
        case 7: set_reg(rd, a & ui); break;
        case 1: set_reg(rd, a << shamt); break;
        case 5:
          if (funct7 & 0x20u)
            set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> shamt));
          else
            set_reg(rd, a >> shamt);
          break;
        default: halt_ = CpuHaltReason::IllegalOpcode; return false;
      }
      break;
    }
    case 0x33: {  // ALU register
      if (funct7 == 0x01u) {  // M extension: MUL only
        if (funct3 == 0) {
          set_reg(rd, a * b);
          cost = 3;
        } else {
          halt_ = CpuHaltReason::IllegalOpcode;
          return false;
        }
        break;
      }
      switch (funct3) {
        case 0: set_reg(rd, (funct7 & 0x20u) ? a - b : a + b); break;
        case 1: set_reg(rd, a << (b & 31u)); break;
        case 2: set_reg(rd, static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1 : 0); break;
        case 3: set_reg(rd, a < b ? 1 : 0); break;
        case 4: set_reg(rd, a ^ b); break;
        case 5:
          if (funct7 & 0x20u)
            set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31u)));
          else
            set_reg(rd, a >> (b & 31u));
          break;
        case 6: set_reg(rd, a | b); break;
        case 7: set_reg(rd, a & b); break;
        default: halt_ = CpuHaltReason::IllegalOpcode; return false;
      }
      break;
    }
    case 0x73:  // ECALL / EBREAK -> clean halt
      halt_ = CpuHaltReason::Ecall;
      ++stats_.instructions;
      ++stats_.cycles;
      return false;
    default:
      halt_ = CpuHaltReason::IllegalOpcode;
      return false;
  }

  if (fault) {
    halt_ = CpuHaltReason::MemoryFault;
    return false;
  }
  pc_ = next_pc;
  ++stats_.instructions;
  stats_.cycles += cost;
  return true;
}

CpuHaltReason Cpu::run(std::uint64_t max_cycles) {
  while (halt_ == CpuHaltReason::Running) {
    if (stats_.cycles >= max_cycles) {
      halt_ = CpuHaltReason::CycleLimit;
      break;
    }
    step();
  }
  return halt_;
}

}  // namespace ntc::sim
