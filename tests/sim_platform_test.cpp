// Platform-level properties across all three mitigation configurations.
#include <gtest/gtest.h>

#include "mitigation/scheme.hpp"
#include "sim/platform.hpp"

namespace ntc::sim {
namespace {

class PlatformPerScheme
    : public ::testing::TestWithParam<mitigation::SchemeKind> {
 protected:
  PlatformConfig config_for(double vdd) const {
    PlatformConfig config;
    config.scheme = GetParam();
    config.vdd = Volt{vdd};
    config.pm_bytes = 8 * 1024;
    config.seed = 4;
    return config;
  }
};

TEST_P(PlatformPerScheme, MemoryWidthsMatchScheme) {
  Platform platform(config_for(0.55));
  switch (GetParam()) {
    case mitigation::SchemeKind::NoMitigation:
      EXPECT_EQ(platform.imem().array().stored_bits(), 32u);
      EXPECT_EQ(platform.spm().array().stored_bits(), 32u);
      EXPECT_EQ(platform.pm(), nullptr);
      break;
    case mitigation::SchemeKind::Secded:
      EXPECT_EQ(platform.imem().array().stored_bits(), 39u);
      EXPECT_EQ(platform.spm().array().stored_bits(), 39u);
      EXPECT_EQ(platform.pm(), nullptr);
      break;
    case mitigation::SchemeKind::Ocean:
      EXPECT_EQ(platform.imem().array().stored_bits(), 39u);
      EXPECT_EQ(platform.spm().array().stored_bits(), 39u);
      ASSERT_NE(platform.pm(), nullptr);
      EXPECT_EQ(platform.pm()->array().stored_bits(), 56u);  // BCH t=4
      break;
    default:
      break;
  }
}

TEST_P(PlatformPerScheme, EnergyReportRespondsToActivity) {
  Platform platform(config_for(0.55));
  platform.add_compute_cycles(1000, 1.0);
  const auto report = platform.energy_report();
  EXPECT_GT(report.core.value, 0.0);
  EXPECT_GT(report.imem.value, 0.0);
  EXPECT_GT(report.spm.value, 0.0);
  EXPECT_GT(report.total().value, report.core.value);
}

TEST_P(PlatformPerScheme, LowerVoltageLowersPower) {
  Platform high(config_for(0.55));
  Platform low(config_for(0.44));
  high.add_compute_cycles(1000, 1.0);
  low.add_compute_cycles(1000, 1.0);
  EXPECT_LT(low.energy_report().total().value,
            high.energy_report().total().value);
}

TEST_P(PlatformPerScheme, SetVddPropagatesToAllArrays) {
  Platform platform(config_for(0.55));
  platform.set_vdd(Volt{0.40});
  EXPECT_DOUBLE_EQ(platform.imem().array().vdd().value, 0.40);
  EXPECT_DOUBLE_EQ(platform.spm().array().vdd().value, 0.40);
  if (platform.pm() != nullptr) {
    EXPECT_DOUBLE_EQ(platform.pm()->array().vdd().value, 0.40);
  }
}

TEST_P(PlatformPerScheme, ElapsedTracksCyclesAndClock) {
  PlatformConfig config = config_for(0.55);
  config.clock = megahertz(1.0);
  Platform platform(config);
  platform.add_compute_cycles(1'000'000, 0.0);
  EXPECT_NEAR(platform.elapsed().value, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Schemes, PlatformPerScheme,
                         ::testing::Values(mitigation::SchemeKind::NoMitigation,
                                           mitigation::SchemeKind::Secded,
                                           mitigation::SchemeKind::Ocean),
                         [](const auto& info) {
                           switch (info.param) {
                             case mitigation::SchemeKind::NoMitigation:
                               return "NoMitigation";
                             case mitigation::SchemeKind::Secded:
                               return "Secded";
                             case mitigation::SchemeKind::Ocean:
                               return "Ocean";
                             default:
                               return "Custom";
                           }
                         });

TEST(Platform, ProtectionCostsPowerAtEqualVoltage) {
  // At the SAME voltage the protected platform must burn more than the
  // bare one (codec energy + wider words) — the overhead the paper says
  // is "superseded by the gains from lowering the operational voltage".
  auto run = [](mitigation::SchemeKind kind) {
    PlatformConfig config;
    config.scheme = kind;
    config.vdd = Volt{0.55};
    config.seed = 5;
    config.inject_faults = false;
    Platform platform(config);
    // Equal traffic on both.
    for (int i = 0; i < 2000; ++i) {
      std::uint32_t v;
      platform.spm().write_word(i % 512, i);
      platform.spm().read_word(i % 512, v);
    }
    platform.add_compute_cycles(4000, 1.0);
    return platform.energy_report().total().value;
  };
  EXPECT_GT(run(mitigation::SchemeKind::Secded),
            run(mitigation::SchemeKind::NoMitigation));
}

TEST(Platform, LoadProgramRestoresRunVoltage) {
  PlatformConfig config;
  config.vdd = Volt{0.44};
  config.scheme = mitigation::SchemeKind::Secded;
  Platform platform(config);
  platform.load_program({0x73});  // ecall
  EXPECT_DOUBLE_EQ(platform.imem().array().vdd().value, 0.44);
  EXPECT_EQ(platform.cpu().pc(), 0u);
}

TEST(Platform, BusMapMatchesConfiguredSizes) {
  PlatformConfig config;
  config.scheme = mitigation::SchemeKind::Ocean;
  config.imem_bytes = 4096;
  config.spm_bytes = 8192;
  config.pm_bytes = 8192;
  Platform platform(config);
  EXPECT_TRUE(platform.bus().decodes(PlatformMap::kImemBase));
  EXPECT_TRUE(platform.bus().decodes(PlatformMap::kImemBase + 1023));
  EXPECT_FALSE(platform.bus().decodes(PlatformMap::kImemBase + 1024));
  EXPECT_TRUE(platform.bus().decodes(PlatformMap::kSpmBase + 2047));
  EXPECT_TRUE(platform.bus().decodes(PlatformMap::kPmBase + 2047));
}

}  // namespace
}  // namespace ntc::sim
