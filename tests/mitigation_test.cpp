#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "ecc/bch.hpp"
#include "mitigation/comparison.hpp"
#include "mitigation/voltage_solver.hpp"
#include "mitigation/word_failure.hpp"

namespace ntc::mitigation {
namespace {

TEST(Scheme, PaperFailureThresholds) {
  EXPECT_EQ(no_mitigation().failure_threshold, 1u);
  EXPECT_EQ(secded_scheme().failure_threshold, 3u);   // triple defeats ECC
  EXPECT_EQ(ocean_scheme().failure_threshold, 5u);    // quintuple defeats OCEAN
  EXPECT_EQ(secded_scheme().stored_bits, 39u);
  EXPECT_NEAR(secded_scheme().memory_energy_factor(), 39.0 / 32.0, 1e-12);
}

TEST(Scheme, FromCodeDerivesThreshold) {
  ecc::BchCode bch = ecc::ocean_buffer_code();
  MitigationScheme s = scheme_from_code(bch);
  EXPECT_EQ(s.failure_threshold, 5u);
  EXPECT_EQ(s.stored_bits, 56u);
  EXPECT_EQ(s.data_bits, 32u);
}

TEST(WordFailure, MatchesDominantBinomialTerm) {
  const double p = 1e-6;
  // SECDED: P(>=3 of 39) ~ C(39,3) p^3.
  EXPECT_NEAR(word_failure_probability(secded_scheme(), p) /
                  (9139.0 * std::pow(p, 3)),
              1.0, 1e-3);
  // No mitigation: P(>=1 of 32) ~ 32 p.
  EXPECT_NEAR(word_failure_probability(no_mitigation(), p) / (32.0 * p), 1.0,
              1e-4);
}

TEST(WordFailure, OrderingAtFixedPbit) {
  // At a fixed raw error rate, stronger schemes fail far less often.
  const double p = 1e-4;
  double pn = word_failure_probability(no_mitigation(), p);
  double pe = word_failure_probability(secded_scheme(), p);
  double po = word_failure_probability(ocean_scheme(), p);
  EXPECT_GT(pn / pe, 1e3);
  EXPECT_GT(pe / po, 1e3);
}

TEST(WordFailure, LogDomainConsistent) {
  const double p = 1e-9;
  double linear = word_failure_probability(ocean_scheme(), p);
  double logv = log_word_failure_probability(ocean_scheme(), p);
  if (linear > 0.0) {
    EXPECT_NEAR(std::log(linear), logv, 1e-9);
  } else {
    EXPECT_LT(logv, std::log(1e-300));
  }
}

TEST(CombinedPbit, AccessDominatesAtTable2Voltages) {
  auto access = reliability::cell_based_40nm_access();
  auto retention = reliability::cell_based_40nm_retention();
  for (double v : {0.33, 0.44}) {
    double combined =
        combined_bit_error_probability(access, retention, Volt{v});
    double access_only = access.p_bit_err(Volt{v});
    EXPECT_NEAR(combined / access_only, 1.0, 0.05) << "V=" << v;
  }
}

TEST(CombinedPbit, RetentionTermAppearsNearRetentionLimit) {
  auto access = reliability::cell_based_40nm_access();
  auto retention = reliability::cell_based_40nm_retention();
  double with_ret =
      combined_bit_error_probability(access, retention, Volt{0.25}, 1.0);
  double without_ret =
      combined_bit_error_probability(access, retention, Volt{0.25}, 0.0);
  EXPECT_GT(with_ret, without_ret);
}

TEST(VoltageSolver, ReproducesTable2CellBased) {
  // Paper Table 2 (FIT <= 1e-15):
  //   290 kHz:  0.55 / 0.44 / 0.33 V
  //   1.96 MHz: 0.55 / 0.44 / 0.44 V
  auto solver = cell_based_platform_solver();
  auto rows = compare_schemes(solver, {kilohertz(290.0), megahertz(1.96)});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].schemes[0].point.voltage.value, 0.55, 1e-9);
  EXPECT_NEAR(rows[0].schemes[1].point.voltage.value, 0.44, 1e-9);
  EXPECT_NEAR(rows[0].schemes[2].point.voltage.value, 0.33, 1e-9);
  EXPECT_NEAR(rows[1].schemes[0].point.voltage.value, 0.55, 1e-9);
  EXPECT_NEAR(rows[1].schemes[1].point.voltage.value, 0.44, 1e-9);
  EXPECT_NEAR(rows[1].schemes[2].point.voltage.value, 0.44, 1e-9);
}

TEST(VoltageSolver, OceanIsFrequencyBoundAt196MHz) {
  auto solver = cell_based_platform_solver();
  SolverConstraints constraints;
  constraints.min_frequency = megahertz(1.96);
  auto point = solver.solve(ocean_scheme(), constraints);
  EXPECT_FALSE(point.reliability_bound);
  EXPECT_GT(point.performance_limit.value, point.reliability_limit.value);
}

TEST(VoltageSolver, MeetsFitAtChosenVoltage) {
  auto solver = cell_based_platform_solver();
  SolverConstraints constraints;
  constraints.min_frequency = kilohertz(290.0);
  for (const auto& scheme :
       {no_mitigation(), secded_scheme(), ocean_scheme()}) {
    auto point = solver.solve(scheme, constraints);
    EXPECT_LE(point.word_failure, constraints.fit_per_transaction * 1.001)
        << scheme.name;
  }
}

TEST(VoltageSolver, CommercialPlatformOrdering) {
  // The 11 MHz scenario: paper reports 0.88 / 0.77 / 0.66; our solver's
  // exact values are close (0.85 / 0.79 / 0.70) and strictly ordered.
  auto solver = commercial_platform_solver();
  SolverConstraints constraints;
  constraints.min_frequency = megahertz(11.0);
  auto no_mit = solver.solve(no_mitigation(), constraints);
  auto ecc = solver.solve(secded_scheme(), constraints);
  auto ocean = solver.solve(ocean_scheme(), constraints);
  EXPECT_GT(no_mit.voltage.value, ecc.voltage.value);
  EXPECT_GT(ecc.voltage.value, ocean.voltage.value);
  EXPECT_NEAR(no_mit.voltage.value, 0.85, 0.04);
  EXPECT_NEAR(ecc.voltage.value, 0.77, 0.04);
  EXPECT_NEAR(ocean.voltage.value, 0.66, 0.06);
}

TEST(VoltageSolver, TighterFitRaisesVoltage) {
  auto solver = cell_based_platform_solver();
  SolverConstraints loose, tight;
  loose.fit_per_transaction = 1e-12;
  tight.fit_per_transaction = 1e-18;
  auto v_loose = solver.solve(secded_scheme(), loose);
  auto v_tight = solver.solve(secded_scheme(), tight);
  EXPECT_LT(v_loose.voltage.value, v_tight.voltage.value + 1e-12);
}

TEST(VoltageSolver, StrongerCodesUnlockLowerVoltage) {
  auto solver = cell_based_platform_solver();
  SolverConstraints constraints;
  double prev = 1.0;
  for (unsigned t = 1; t <= 5; ++t) {
    ecc::BchCode code(6, t, 32);
    auto point = solver.solve(scheme_from_code(code), constraints);
    EXPECT_LE(point.voltage.value, prev + 1e-12) << "t=" << t;
    prev = point.voltage.value;
  }
}

TEST(Comparison, HeadlineDynamicPowerRatio) {
  // Conclusion: "3.3x lower dynamic power beyond the voltage limit for
  // error free operation" — error-free limit with margin ~0.6 V vs the
  // OCEAN point 0.33 V.
  EXPECT_NEAR(dynamic_power_ratio(Volt{0.6}, Volt{0.33}), 3.3, 0.05);
}

}  // namespace
}  // namespace ntc::mitigation
