#include "sim/sram_module.hpp"

#include <gtest/gtest.h>

#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"

namespace ntc::sim {
namespace {

SramModule make_sram(Volt vdd, bool inject = true, std::uint64_t seed = 1,
                     std::uint32_t words = 256, std::uint32_t bits = 32) {
  return SramModule("test", words, bits, reliability::cell_based_40nm_access(),
                    reliability::cell_based_40nm_retention(), vdd, Rng(seed),
                    inject);
}

TEST(SramModule, CleanRoundTripAtSafeVoltage) {
  SramModule sram = make_sram(Volt{1.1});
  for (std::uint32_t i = 0; i < sram.words(); ++i)
    sram.write_raw(i, i * 2654435761u & 0xFFFFFFFFull);
  for (std::uint32_t i = 0; i < sram.words(); ++i)
    EXPECT_EQ(sram.read_raw(i), (i * 2654435761u) & 0xFFFFFFFFull);
  EXPECT_EQ(sram.stats().injected_read_flips, 0u);
  EXPECT_EQ(sram.stats().stuck_bits, 0u);
}

TEST(SramModule, NoFaultsWhenInjectionDisabled) {
  SramModule sram = make_sram(Volt{0.10}, /*inject=*/false);
  sram.write_raw(0, 0xDEADBEEF);
  EXPECT_EQ(sram.read_raw(0), 0xDEADBEEFu);
  EXPECT_EQ(sram.stats().stuck_bits, 0u);
  EXPECT_DOUBLE_EQ(sram.access_error_probability(), 0.0);
}

TEST(SramModule, StuckCellsAppearBelowRetentionLimit) {
  // At 0.15 V a cell-based array (half-fail 0.20 V) has most cells dead.
  SramModule sram = make_sram(Volt{0.15});
  EXPECT_GT(sram.stats().stuck_bits, sram.words() * 32 / 10);
  // At 0.44 V essentially none.
  SramModule healthy = make_sram(Volt{0.44});
  EXPECT_EQ(healthy.stats().stuck_bits, 0u);
}

TEST(SramModule, RaisingVoltageHealsStuckCells) {
  SramModule sram = make_sram(Volt{0.18});
  ASSERT_GT(sram.stats().stuck_bits, 0u);
  sram.set_vdd(Volt{0.6});
  EXPECT_EQ(sram.stats().stuck_bits, 0u);
}

TEST(SramModule, StuckCellsDeterministicPerSeed) {
  SramModule a = make_sram(Volt{0.18}, true, 42);
  SramModule b = make_sram(Volt{0.18}, true, 42);
  SramModule c = make_sram(Volt{0.18}, true, 43);
  EXPECT_EQ(a.stats().stuck_bits, b.stats().stuck_bits);
  EXPECT_NE(a.stats().stuck_bits, c.stats().stuck_bits);  // different die
}

TEST(SramModule, ReadFlipRateTracksAccessModel) {
  // At 0.40 V the cell-based access model predicts a measurable rate.
  SramModule sram = make_sram(Volt{0.40}, true, 7, 64);
  const double p = reliability::cell_based_40nm_access().p_bit_err(Volt{0.40});
  sram.write_raw(0, 0);
  const int reads = 200000;
  for (int i = 0; i < reads; ++i) (void)sram.read_raw(0);
  const double expected_flips = p * 32 * reads;
  const double observed =
      static_cast<double>(sram.stats().injected_read_flips);
  EXPECT_NEAR(observed / expected_flips, 1.0, 0.15);
}

TEST(SramModule, WriteFailuresPersistUntilRewrite) {
  // Run deep below V0 so write errors are frequent.
  SramModule sram = make_sram(Volt{0.30}, true, 9, 16);
  int persistent = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    sram.write_raw(0, 0xAAAAAAAA);
    // Two reads: a persistent (written-wrong) bit differs on both reads
    // in the same position; transient read flips are uncorrelated.
    std::uint64_t r1 = sram.read_raw(0) ^ 0xAAAAAAAAull;
    std::uint64_t r2 = sram.read_raw(0) ^ 0xAAAAAAAAull;
    if (r1 & r2) ++persistent;
  }
  EXPECT_GT(persistent, 0);
}

TEST(SramModule, StatsCountAccesses) {
  SramModule sram = make_sram(Volt{1.1});
  sram.write_raw(1, 5);
  (void)sram.read_raw(1);
  (void)sram.read_raw(2);
  EXPECT_EQ(sram.stats().writes, 1u);
  EXPECT_EQ(sram.stats().reads, 2u);
  sram.reset_stats();
  EXPECT_EQ(sram.stats().reads, 0u);
}

TEST(SramModule, WideWordsSupported) {
  SramModule sram = make_sram(Volt{1.1}, true, 1, 64, 56);
  const std::uint64_t v = 0x00FFEEDDCCBBAAull;
  sram.write_raw(3, v);
  EXPECT_EQ(sram.read_raw(3), v);
}

}  // namespace
}  // namespace ntc::sim
