#include <gtest/gtest.h>

#include <memory>

#include "core/adaptive_memory.hpp"
#include "faultsim/scenario.hpp"

namespace ntc::core {
namespace {

// Recovery tests run scripted-only: the stochastic model is off, so
// every escalation step below is exercised deterministically.
AdaptiveConfig base_config() {
  AdaptiveConfig config;
  config.memory.bytes = 1024;
  config.memory.scheme = mitigation::SchemeKind::Secded;
  config.memory.vdd = Volt{0.44};
  config.memory.inject_faults = false;
  return config;
}

void attach(AdaptiveNtcMemory& adaptive,
            std::vector<faultsim::FaultEvent> events) {
  adaptive.memory().ecc().array().attach_injector(
      std::make_shared<faultsim::ScenarioInjector>(std::move(events)));
}

TEST(Recovery, DisabledRecoverySurfacesUncorrectableReads) {
  AdaptiveConfig config = base_config();
  config.recovery.enabled = false;
  AdaptiveNtcMemory adaptive(config);
  attach(adaptive, {faultsim::FaultEvent::read_burst(5, 36, 3)});
  ASSERT_EQ(adaptive.write_word(5, 0xABCD1234), sim::AccessStatus::Ok);
  std::uint32_t data = 0;
  EXPECT_EQ(adaptive.read_word(5, data),
            sim::AccessStatus::DetectedUncorrectable);
  EXPECT_EQ(adaptive.recovery_stats().uncorrectable_reads, 0u);
  EXPECT_EQ(adaptive.vdd().value, 0.44);  // no escalation happened
}

TEST(Recovery, ReReadRecoversTransientDoubleFlip) {
  // A one-shot double flip is the transient case re-reads exist for:
  // the first read fails decode, the retry sees the clean word.
  AdaptiveNtcMemory adaptive(base_config());
  attach(adaptive, {faultsim::FaultEvent::transient_flip(5, 0b11)});
  ASSERT_EQ(adaptive.write_word(5, 0xABCD1234), sim::AccessStatus::Ok);
  std::uint32_t data = 0;
  EXPECT_EQ(adaptive.read_word(5, data), sim::AccessStatus::CorrectedError);
  EXPECT_EQ(data, 0xABCD1234u);
  EXPECT_EQ(adaptive.recovery_stats().uncorrectable_reads, 1u);
  EXPECT_EQ(adaptive.recovery_stats().retry_recoveries, 1u);
  EXPECT_EQ(adaptive.recovery_stats().voltage_bumps, 0u);
  EXPECT_EQ(adaptive.vdd().value, 0.44);  // no escalation needed
}

TEST(Recovery, VoltageBumpEscalationHealsMarginalBurst) {
  // A persistent triple-bit burst from marginal cells that heal at
  // 0.46 V: re-reads and scrubs cannot help, so the controller steps
  // the rail up its 10 mV ladder until the burst disappears.
  AdaptiveNtcMemory adaptive(base_config());
  attach(adaptive,
         {faultsim::FaultEvent::read_burst(5, 36, 3, /*heal_at_v=*/0.46)});
  ASSERT_EQ(adaptive.write_word(5, 0xABCD1234), sim::AccessStatus::Ok);
  std::uint32_t data = 0;
  EXPECT_EQ(adaptive.read_word(5, data), sim::AccessStatus::CorrectedError);
  EXPECT_EQ(data, 0xABCD1234u);

  const RecoveryStats& stats = adaptive.recovery_stats();
  EXPECT_EQ(stats.retry_recoveries, 0u);
  EXPECT_EQ(stats.scrub_recoveries, 0u);
  EXPECT_EQ(stats.voltage_bumps, 2u);  // 0.44 -> 0.45 -> 0.46
  EXPECT_EQ(stats.bump_recoveries, 1u);
  EXPECT_NEAR(adaptive.vdd().value, 0.46, 1e-9);
  EXPECT_EQ(adaptive.controller().escalations(), 2u);
  // Subsequent reads at the healed rail are clean.
  EXPECT_EQ(adaptive.read_word(5, data), sim::AccessStatus::Ok);
}

TEST(Recovery, HardDefectExhaustsEscalationAndIsReported) {
  AdaptiveConfig config = base_config();
  config.recovery.max_voltage_bumps = 3;
  AdaptiveNtcMemory adaptive(config);
  attach(adaptive, {faultsim::FaultEvent::read_burst(5, 36, 3)});  // no heal
  ASSERT_EQ(adaptive.write_word(5, 0xABCD1234), sim::AccessStatus::Ok);
  std::uint32_t data = 0;
  EXPECT_EQ(adaptive.read_word(5, data),
            sim::AccessStatus::DetectedUncorrectable);

  const RecoveryStats& stats = adaptive.recovery_stats();
  EXPECT_EQ(stats.read_retries, config.recovery.max_read_retries);
  EXPECT_EQ(stats.scrub_retries, config.recovery.max_scrub_retries);
  EXPECT_EQ(stats.voltage_bumps, 3u);
  EXPECT_EQ(stats.bump_recoveries, 0u);
  EXPECT_EQ(stats.unrecovered_reads, 1u);
  // Other words are unaffected throughout the whole ordeal.
  ASSERT_EQ(adaptive.write_word(6, 0x5555AAAA), sim::AccessStatus::Ok);
  EXPECT_EQ(adaptive.read_word(6, data), sim::AccessStatus::Ok);
  EXPECT_EQ(data, 0x5555AAAAu);
}

}  // namespace
}  // namespace ntc::core
