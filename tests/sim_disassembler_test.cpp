#include "sim/disassembler.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/assembler.hpp"
#include "workloads/asm_kernels.hpp"

namespace ntc::sim {
namespace {

TEST(Disassembler, KnownEncodings) {
  EXPECT_EQ(disassemble(0x00500093), "addi x1, x0, 5");
  EXPECT_EQ(disassemble(0x002081B3), "add x3, x1, x2");
  EXPECT_EQ(disassemble(0x402081B3), "sub x3, x1, x2");
  EXPECT_EQ(disassemble(0x00812283), "lw x5, 8(x2)");
  EXPECT_EQ(disassemble(0x00512623), "sw x5, 12(x2)");
  EXPECT_EQ(disassemble(0x00208463), "beq x1, x2, 8");
  EXPECT_EQ(disassemble(0x010000EF), "jal x1, 16");
  EXPECT_EQ(disassemble(0x123452B7), "lui x5, 74565");
  EXPECT_EQ(disassemble(0x00000073), "ecall");
  EXPECT_EQ(disassemble(0x4030D113), "srai x2, x1, 3");
  EXPECT_EQ(disassemble(0x022081B3), "mul x3, x1, x2");
}

TEST(Disassembler, UnknownWordsRenderAsData) {
  EXPECT_EQ(disassemble(0xFFFFFFFF), ".word 0xFFFFFFFF");
  EXPECT_FALSE(is_decodable(0xFFFFFFFF));
  EXPECT_TRUE(is_decodable(0x00000013));  // nop
}

TEST(Disassembler, RoundTripsThroughTheAssembler) {
  // Property: re-assembling the disassembly reproduces the exact word.
  // Branch/jump offsets come back as numeric pc-relative immediates, so
  // each instruction is assembled in isolation (offsets resolve against
  // address 0, matching the disassembler's convention).
  const char* sources[] = {
      "addi x1, x0, -2048", "andi x7, x7, 255",  "sltiu x1, x2, 10",
      "add x3, x1, x2",     "sub x3, x1, x2",    "xor x9, x10, x11",
      "sra x4, x5, x6",     "mul x3, x1, x2",    "slli x2, x1, 31",
      "srai x2, x1, 1",     "lw x5, -8(x2)",     "lbu x5, 3(x2)",
      "sh x5, 6(x2)",       "sw x5, -12(x2)",    "lui x5, 1048575",
      "auipc x5, 1",        "jalr x1, 4(x2)",    "ecall",
  };
  for (const char* source : sources) {
    const AssemblyResult first = assemble(source);
    ASSERT_TRUE(first.ok) << source;
    ASSERT_EQ(first.words.size(), 1u) << source;
    const std::string listing = disassemble(first.words[0]);
    const AssemblyResult second = assemble(listing);
    ASSERT_TRUE(second.ok) << listing;
    ASSERT_EQ(second.words.size(), 1u) << listing;
    EXPECT_EQ(second.words[0], first.words[0]) << source << " -> " << listing;
  }
}

TEST(Disassembler, WholeKernelRoundTrips) {
  // Every word of a real program must disassemble to something the
  // assembler accepts and re-encode identically (branches excepted —
  // their pc-relative immediates only resolve at the original address,
  // so they are compared per-word at address 0 semantics).
  const AssemblyResult program =
      assemble(workloads::kernels::checksum(16));
  ASSERT_TRUE(program.ok);
  int decodable = 0;
  for (std::uint32_t word : program.words) {
    if (!is_decodable(word)) continue;
    ++decodable;
    const std::string listing = disassemble(word);
    // Branch immediates are encoded relative to the instruction; when
    // reassembled standalone the immediate is interpreted the same way,
    // so the round trip still holds word-for-word.
    const AssemblyResult again = assemble(listing);
    ASSERT_TRUE(again.ok) << listing;
    EXPECT_EQ(again.words[0], word) << listing;
  }
  EXPECT_EQ(static_cast<std::size_t>(decodable), program.words.size());
}

TEST(Disassembler, RandomWordsNeverCrash) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next_u64());
    const std::string text = disassemble(word);
    EXPECT_FALSE(text.empty());
  }
}

TEST(Disassembler, ProgramListingHasAddresses) {
  const auto listing = disassemble_program({0x00000013, 0x00000073}, 0x100);
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0], "00000100:  addi x0, x0, 0");
  EXPECT_EQ(listing[1], "00000104:  ecall");
}

}  // namespace
}  // namespace ntc::sim
