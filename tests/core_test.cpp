#include <gtest/gtest.h>

#include "core/ntcmem.hpp"

namespace ntc::core {
namespace {

TEST(CanaryMonitor, CanariesFailBeforeTheArray) {
  CanaryMonitor monitor(reliability::cell_based_40nm_access(),
                        tech::AgingModel());
  const double canary = monitor.true_error_probability(Volt{0.50}, Second{0});
  const double array =
      reliability::cell_based_40nm_access().p_bit_err(Volt{0.50});
  EXPECT_GT(canary, array);  // early warning by construction
}

TEST(CanaryMonitor, ErrorRateGrowsWithAge) {
  CanaryMonitor monitor(reliability::cell_based_40nm_access(),
                        tech::AgingModel(Volt{0.060}, 0.2));
  double young = monitor.true_error_probability(Volt{0.50}, Second{0});
  double old = monitor.true_error_probability(Volt{0.50}, years(10.0));
  EXPECT_GT(old, young * 2.0);
}

TEST(CanaryMonitor, SampleTracksTrueProbability) {
  CanaryMonitor monitor(reliability::cell_based_40nm_access(),
                        tech::AgingModel());
  const Volt v{0.38};  // canaries see 0.33 V effective: p ~ 6e-5
  const double p = monitor.true_error_probability(v, Second{0});
  ASSERT_GT(p, 1e-5);  // measurable at this margin
  double rate = monitor.sample_error_rate(v, Second{0}, 4096);
  EXPECT_NEAR(rate / p, 1.0, 0.3);
}

TEST(VoltageController, StepsUpOnHighErrorRate) {
  VoltageController controller(Volt{0.40});
  Volt v = controller.update(0.01);
  EXPECT_NEAR(v.value, 0.41, 1e-12);
  EXPECT_EQ(controller.up_steps(), 1u);
}

TEST(VoltageController, StepsDownOnlyAfterDwell) {
  ControllerConfig config;
  config.down_dwell = 3;
  VoltageController controller(Volt{0.50}, config);
  EXPECT_NEAR(controller.update(0.0).value, 0.50, 1e-12);
  EXPECT_NEAR(controller.update(0.0).value, 0.50, 1e-12);
  EXPECT_NEAR(controller.update(0.0).value, 0.49, 1e-12);  // third epoch
  EXPECT_EQ(controller.down_steps(), 1u);
}

TEST(VoltageController, HoldsInsideTheBand) {
  VoltageController controller(Volt{0.45});
  for (int i = 0; i < 10; ++i) controller.update(1e-4);  // in band
  EXPECT_NEAR(controller.voltage().value, 0.45, 1e-12);
}

TEST(VoltageController, RespectsRailLimits) {
  ControllerConfig config;
  config.v_min = Volt{0.40};
  config.v_max = Volt{0.44};
  VoltageController controller(Volt{0.42}, config);
  for (int i = 0; i < 20; ++i) controller.update(0.5);
  EXPECT_NEAR(controller.voltage().value, 0.44, 1e-12);
  for (int i = 0; i < 100; ++i) controller.update(0.0);
  EXPECT_NEAR(controller.voltage().value, 0.40, 1e-12);
}

TEST(NtcMemory, RoundTripWithSecdedAtOperatingPoint) {
  NtcMemoryConfig config;
  config.vdd = Volt{0.44};  // the paper's ECC point
  config.seed = 3;
  NtcMemory memory(config);
  for (std::uint32_t i = 0; i < 64; ++i) memory.write_word(i, i * 2654435761u);
  int wrong = 0;
  for (int pass = 0; pass < 200; ++pass) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      std::uint32_t v = 0;
      if (memory.read_word(i, v) != sim::AccessStatus::DetectedUncorrectable &&
          v != i * 2654435761u)
        ++wrong;
    }
  }
  EXPECT_EQ(wrong, 0);
}

TEST(NtcMemory, AutoScrubFiresOnSchedule) {
  NtcMemoryConfig config;
  config.scrub_interval_accesses = 100;
  config.inject_faults = false;
  NtcMemory memory(config);
  std::uint32_t v;
  for (int i = 0; i < 350; ++i) memory.read_word(0, v);
  EXPECT_EQ(memory.scrubs_performed(), 3u);
}

TEST(NtcMemory, FiguresTrackVoltageKnob) {
  NtcMemoryConfig config;
  config.inject_faults = false;
  NtcMemory memory(config);
  memory.set_vdd(Volt{0.33});
  const double low = memory.figures().read_energy.value;
  memory.set_vdd(Volt{0.55});
  const double high = memory.figures().read_energy.value;
  EXPECT_NEAR(high / low, (0.55 * 0.55) / (0.33 * 0.33), 1e-9);
}

TEST(Lifetime, ControllerTracksAgingAndSavesPower) {
  LifetimeConfig config;
  config.controller.v_min = Volt{0.40};
  config.initial_vdd = Volt{0.44};
  LifetimeResult result = simulate_lifetime(config);
  ASSERT_FALSE(result.timeline.empty());
  // The static guard band carries the full end-of-life drift.
  EXPECT_GT(result.static_guardband_vdd.value, config.initial_vdd.value);
  // Closed loop ends below the static point but above where it started
  // stepping from (it must have stepped up as the device aged).
  EXPECT_LT(result.final_adaptive_vdd.value,
            result.static_guardband_vdd.value + 1e-9);
  EXPECT_GT(result.mean_dynamic_power_saving, 0.05);
}

TEST(Lifetime, AdaptiveRailNeverExceedsStaticProvision) {
  LifetimeConfig config;
  LifetimeResult result = simulate_lifetime(config);
  for (const auto& point : result.timeline) {
    EXPECT_LE(point.adaptive_vdd.value,
              result.static_guardband_vdd.value + 0.011);
  }
}

TEST(NtcSystem, SchemeOrderingMatchesPaperAt290kHz) {
  SystemRequirements requirements;
  requirements.clock = kilohertz(290.0);
  NtcSystem system(requirements);
  SavingsReport report = system.analyze();
  ASSERT_EQ(report.schemes.size(), 3u);
  // Table 2 voltages.
  EXPECT_NEAR(report.schemes[0].operating_point.voltage.value, 0.55, 1e-9);
  EXPECT_NEAR(report.schemes[1].operating_point.voltage.value, 0.44, 1e-9);
  EXPECT_NEAR(report.schemes[2].operating_point.voltage.value, 0.33, 1e-9);
  // Power ordering and the paper's savings bands.
  const double p0 = report.schemes[0].power.total().value;
  const double p1 = report.schemes[1].power.total().value;
  const double p2 = report.schemes[2].power.total().value;
  EXPECT_GT(p0, p1);
  EXPECT_GT(p1, p2);
  EXPECT_GT(report.ocean_saving_vs_no_mitigation, 0.5);
  EXPECT_GT(report.ocean_saving_vs_ecc, 0.25);
  EXPECT_GT(report.headline_dynamic_power_ratio, 2.5);
  EXPECT_LT(report.headline_dynamic_power_ratio, 4.0);
}

TEST(NtcSystem, EstimatePowerChargesSchemeOverheads) {
  SystemRequirements requirements;
  NtcSystem system(requirements);
  // Same voltage: protection must cost extra power.
  const double bare =
      system.estimate_power(mitigation::no_mitigation(), Volt{0.55}).total().value;
  const double ecc =
      system.estimate_power(mitigation::secded_scheme(), Volt{0.55}).total().value;
  EXPECT_GT(ecc, bare);
}

}  // namespace
}  // namespace ntc::core
