// Integration: real software on the simulated SoC, across voltages and
// mitigation schemes — the CPU, assembler, bus, ECC wrapper and fault
// models working together.
#include "workloads/asm_kernels.hpp"

#include <gtest/gtest.h>

#include "sim/assembler.hpp"
#include "sim/platform.hpp"

namespace ntc::workloads::kernels {
namespace {

std::uint32_t run_kernel(const std::string& source, double vdd,
                         mitigation::SchemeKind scheme =
                             mitigation::SchemeKind::Secded,
                         bool inject = true, std::uint64_t seed = 5,
                         sim::CpuHaltReason* reason_out = nullptr) {
  sim::PlatformConfig config;
  config.scheme = scheme;
  config.vdd = Volt{vdd};
  config.seed = seed;
  config.inject_faults = inject;
  sim::Platform platform(config);
  const sim::AssemblyResult assembled = sim::assemble(source);
  EXPECT_TRUE(assembled.ok) << assembled.error;
  platform.load_program(assembled.words);
  const sim::CpuHaltReason reason = platform.cpu().run(5'000'000);
  if (reason_out) *reason_out = reason;
  EXPECT_EQ(reason, sim::CpuHaltReason::Ecall);
  return platform.cpu().reg(10);
}

TEST(AsmKernels, DotProductMatchesClosedForm) {
  EXPECT_EQ(run_kernel(dot_product(64), 1.1, mitigation::SchemeKind::Secded,
                       false),
            dot_product_expected(64));
  EXPECT_EQ(dot_product_expected(64), 170688u);
}

TEST(AsmKernels, MemcpyVerifiesCleanOnHealthyMemory) {
  EXPECT_EQ(run_kernel(memcpy_check(128, 0xBEEF), 1.1,
                       mitigation::SchemeKind::NoMitigation, false),
            0u);
}

TEST(AsmKernels, FibonacciAcrossRange) {
  for (std::uint32_t n : {0u, 1u, 2u, 10u, 30u, 47u}) {
    EXPECT_EQ(run_kernel(fibonacci(n), 1.1, mitigation::SchemeKind::Secded,
                         false),
              fibonacci_expected(n))
        << "n=" << n;
  }
  EXPECT_EQ(fibonacci_expected(10), 55u);
}

TEST(AsmKernels, BubbleSortLeavesNoInversions) {
  EXPECT_EQ(run_kernel(bubble_sort_check(32, 0xC0FFEE), 1.1,
                       mitigation::SchemeKind::Secded, false),
            0u);
}

TEST(AsmKernels, ChecksumMatchesReference) {
  EXPECT_EQ(run_kernel(checksum(200), 1.1, mitigation::SchemeKind::Secded,
                       false),
            checksum_expected(200));
}

class KernelsAtOperatingPoints
    : public ::testing::TestWithParam<double> {};

TEST_P(KernelsAtOperatingPoints, SecdedKeepsSoftwareExactAtTable2Voltages) {
  // At the ECC ladder points the protected platform must compute exact
  // results despite injected faults.
  const double vdd = GetParam();
  EXPECT_EQ(run_kernel(dot_product(64), vdd), dot_product_expected(64));
  EXPECT_EQ(run_kernel(checksum(100), vdd), checksum_expected(100));
  EXPECT_EQ(run_kernel(bubble_sort_check(24, 7), vdd), 0u);
}

INSTANTIATE_TEST_SUITE_P(Table2Points, KernelsAtOperatingPoints,
                         ::testing::Values(0.55, 0.44),
                         [](const auto& info) {
                           return "V" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(AsmKernels, DeepVoltageCorruptsUnprotectedSoftware) {
  // Property: far below the access limit, the bare platform either
  // faults or computes wrong results for at least one seed.
  int anomalies = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::PlatformConfig config;
    config.scheme = mitigation::SchemeKind::NoMitigation;
    config.vdd = Volt{0.30};
    config.seed = seed;
    sim::Platform platform(config);
    const auto assembled = sim::assemble(checksum(200));
    ASSERT_TRUE(assembled.ok);
    platform.load_program(assembled.words);
    const auto reason = platform.cpu().run(5'000'000);
    if (reason != sim::CpuHaltReason::Ecall ||
        platform.cpu().reg(10) != checksum_expected(200))
      ++anomalies;
  }
  EXPECT_GT(anomalies, 0);
}

TEST(AsmKernels, EccFixupsAreObservedUnderStress) {
  sim::PlatformConfig config;
  config.scheme = mitigation::SchemeKind::Secded;
  config.vdd = Volt{0.40};  // p_bit ~ 4e-6: upsets happen, ECC corrects
  config.seed = 11;
  sim::Platform platform(config);
  const auto assembled = sim::assemble(checksum(400));
  ASSERT_TRUE(assembled.ok);
  platform.load_program(assembled.words);
  std::uint64_t total_corrections = 0;
  for (int run = 0; run < 30; ++run) {
    platform.cpu().reset(0);
    const auto reason = platform.cpu().run(5'000'000);
    ASSERT_EQ(reason, sim::CpuHaltReason::Ecall);
    EXPECT_EQ(platform.cpu().reg(10), checksum_expected(400));
    total_corrections += platform.cpu().stats().corrected_accesses;
  }
  EXPECT_GT(total_corrections, 0u);
}

}  // namespace
}  // namespace ntc::workloads::kernels
