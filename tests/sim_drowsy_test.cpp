#include "sim/drowsy_memory.hpp"

#include <gtest/gtest.h>

namespace ntc::sim {
namespace {

DrowsyConfig base_config() {
  DrowsyConfig config;
  config.banks = 4;
  config.words_per_bank = 256;
  config.active_vdd = Volt{0.44};
  config.drowsy_vdd = Volt{0.32};
  config.seed = 13;
  return config;
}

TEST(DrowsyMemory, FlatAddressSpaceAcrossBanks) {
  DrowsyMemory memory(base_config());
  EXPECT_EQ(memory.word_count(), 1024u);
  for (std::uint32_t i = 0; i < 1024; i += 100) memory.write_word(i, i * 3);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 1024; i += 100) {
    memory.read_word(i, v);
    EXPECT_EQ(v, i * 3);
  }
}

TEST(DrowsyMemory, DrowsyBanksRetainAtSafeRetentionVoltage) {
  // 0.32 V is at/above the cell-based instance retention limit: data
  // must survive a sleep/wake cycle (with SECDED mopping up stragglers).
  DrowsyMemory memory(base_config());
  for (std::uint32_t i = 0; i < 1024; ++i) memory.write_word(i, i * 2654435761u);
  memory.sleep_all_except(0);
  EXPECT_EQ(memory.bank_mode(0), BankMode::Active);
  EXPECT_EQ(memory.bank_mode(3), BankMode::Drowsy);
  int wrong = 0;
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    if (memory.read_word(i, v) != AccessStatus::DetectedUncorrectable &&
        v != i * 2654435761u)
      ++wrong;
  }
  EXPECT_EQ(wrong, 0);
}

TEST(DrowsyMemory, TooDeepDrowsyVoltageLosesData) {
  DrowsyConfig config = base_config();
  config.drowsy_vdd = Volt{0.15};  // far below the retention knee
  config.protect_with_secded = false;
  DrowsyMemory memory(config);
  for (std::uint32_t i = 0; i < 1024; ++i) memory.write_word(i, 0xA5A5A5A5u);
  memory.sleep_all_except(0);
  int wrong = 0;
  std::uint32_t v = 0;
  for (std::uint32_t i = 256; i < 1024; ++i) {  // the slept banks
    memory.read_word(i, v);
    wrong += (v != 0xA5A5A5A5u);
  }
  EXPECT_GT(wrong, 10);
}

TEST(DrowsyMemory, DataLossPersistsAfterWake) {
  // The physical point: raising the rail back does NOT restore bits the
  // drowsy period destroyed.
  DrowsyConfig config = base_config();
  config.drowsy_vdd = Volt{0.15};
  config.protect_with_secded = false;
  DrowsyMemory memory(config);
  for (std::uint32_t i = 256; i < 512; ++i) memory.write_word(i, 0xFFFFFFFFu);
  memory.set_bank_mode(1, BankMode::Drowsy);
  memory.set_bank_mode(1, BankMode::Active);  // wake without access
  int wrong = 0;
  std::uint32_t v = 0;
  for (std::uint32_t i = 256; i < 512; ++i) {
    memory.read_word(i, v);
    wrong += (v != 0xFFFFFFFFu);
  }
  EXPECT_GT(wrong, 3);
}

TEST(DrowsyMemory, OffBanksAreClearedAndLeakNothing) {
  DrowsyMemory memory(base_config());
  memory.write_word(300, 777);
  memory.set_bank_mode(1, BankMode::Off);
  const Watt off_leak = memory.leakage_power();
  memory.set_bank_mode(1, BankMode::Active);
  EXPECT_LT(off_leak.value, memory.leakage_power().value);
}

TEST(DrowsyMemory, AccessAutoWakesAndCountsLatency) {
  DrowsyMemory memory(base_config());
  memory.sleep_all_except(0);
  std::uint32_t v = 0;
  memory.read_word(900, v);  // bank 3
  EXPECT_EQ(memory.bank_mode(3), BankMode::Active);
  EXPECT_EQ(memory.stats().wakeups, 1u);
  EXPECT_EQ(memory.stats().wake_cycles_spent, 2u);
}

TEST(DrowsyMemory, DrowsyStandbySavesMostOfTheLeakage) {
  DrowsyMemory memory(base_config());
  memory.sleep_all_except(0);
  const double standby = memory.leakage_power().value;
  const double all_active = memory.all_active_leakage().value;
  // 3 of 4 banks at the retention rail (0.32 V leaks ~0.57x of 0.44 V):
  // expected ratio (1 + 3*0.57)/4 ~ 0.68.
  EXPECT_LT(standby, 0.75 * all_active);
  EXPECT_GT(standby, 0.50 * all_active);
}

TEST(DrowsyMemory, TenXStaticPowerClaim) {
  // Paper Section II: "supply voltage is a leverage achieving up to 10x
  // better static power."  Compare the instance leakage at the nominal
  // 1.1 V rail against the 0.32 V retention rail.
  energy::MemoryCalculator calc(energy::MemoryStyle::CellBasedImec40,
                                energy::reference_1k_x_32());
  const double nominal = calc.at(Volt{1.1}).leakage.value;
  const double retention = calc.at(Volt{0.32}).leakage.value;
  EXPECT_GT(nominal / retention, 10.0);
}

}  // namespace
}  // namespace ntc::sim
