// Exhaustive equivalence of the bit-parallel ECC kernels against the
// original bit-serial reference implementations (ecc_reference.hpp).
//
// The production codecs replaced per-bit loops with byte-indexed
// syndrome tables, contiguous-run scatter/gather and pext/pdep lane
// moves; these tests pin them bit-exact — status, decoded data and
// corrected-bit count — over every zero/single/double error pattern
// (and sampled triples) so any table-construction slip is caught at
// the exact offending pattern.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ecc/bch.hpp"
#include "ecc/galois.hpp"
#include "ecc/hamming.hpp"
#include "ecc/hsiao.hpp"
#include "ecc/interleave.hpp"
#include "ecc_reference.hpp"

namespace ntc::ecc {
namespace {

/// A spread of data words exercising every byte lane of the codecs'
/// tables, clipped to the code's data width.
std::vector<std::uint64_t> sample_words(const BlockCode& code, Rng& rng,
                                        int random_count) {
  const std::size_t k = code.data_bits();
  const std::uint64_t mask =
      k == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << k) - 1);
  std::vector<std::uint64_t> words = {0,
                                      mask,
                                      0xAAAAAAAAAAAAAAAAull & mask,
                                      0x5555555555555555ull & mask,
                                      0x0123456789ABCDEFull & mask,
                                      0x8000000000000001ull & mask};
  for (int i = 0; i < random_count; ++i) words.push_back(rng.next_u64() & mask);
  return words;
}

void expect_same_decode(const BlockCode& fast, const BlockCode& ref,
                        const Bits& received, const char* what) {
  const DecodeResult a = fast.decode(received);
  const DecodeResult b = ref.decode(received);
  ASSERT_EQ(static_cast<int>(a.status), static_cast<int>(b.status)) << what;
  ASSERT_EQ(a.data, b.data) << what;
  ASSERT_EQ(a.corrected_bits, b.corrected_bits) << what;
}

/// Every 0-, 1- and 2-bit error pattern on every sample word.
void exhaustive_equivalence(const BlockCode& fast, const BlockCode& ref,
                            Rng& rng) {
  ASSERT_EQ(fast.data_bits(), ref.data_bits());
  ASSERT_EQ(fast.code_bits(), ref.code_bits());
  const std::size_t n = fast.code_bits();
  for (std::uint64_t data : sample_words(fast, rng, 4)) {
    const Bits code = fast.encode(data);
    ASSERT_EQ(code, ref.encode(data)) << "encode mismatch";
    expect_same_decode(fast, ref, code, "clean");
    for (std::size_t i = 0; i < n; ++i) {
      Bits one = code;
      one.flip(i);
      expect_same_decode(fast, ref, one, "single error");
      for (std::size_t j = i + 1; j < n; ++j) {
        Bits two = one;
        two.flip(j);
        expect_same_decode(fast, ref, two, "double error");
      }
    }
    // Triple errors alias to valid single-error syndromes (the SECDED
    // failure mode): sample them rather than cubing the pattern space.
    for (int s = 0; s < 64; ++s) {
      Bits three = code;
      three.flip(rng.uniform_u64(n));
      three.flip(rng.uniform_u64(n));
      three.flip(rng.uniform_u64(n));
      expect_same_decode(fast, ref, three, "triple error");
    }
  }
}

TEST(EccBitParallelEquivalence, HammingAllWidths) {
  Rng rng(0x9a5e01);
  for (std::size_t k : {8u, 16u, 32u, 64u}) {
    HammingSecded fast(k);
    reference::ReferenceHamming ref(k);
    SCOPED_TRACE("k=" + std::to_string(k));
    exhaustive_equivalence(fast, ref, rng);
  }
}

TEST(EccBitParallelEquivalence, HsiaoAllWidths) {
  Rng rng(0x9a5e02);
  for (std::size_t k : {16u, 32u, 64u}) {
    HsiaoSecded fast(k);
    reference::ReferenceHsiao ref(k);
    SCOPED_TRACE("k=" + std::to_string(k));
    exhaustive_equivalence(fast, ref, rng);
  }
}

TEST(EccBitParallelEquivalence, InterleavedRandomPatterns) {
  Rng rng(0x9a5e03);
  const InterleavedCode fast = interleaved_secded_4x16();
  std::vector<std::unique_ptr<BlockCode>> lanes;
  for (int i = 0; i < 4; ++i)
    lanes.push_back(std::make_unique<reference::ReferenceHamming>(16));
  const reference::ReferenceInterleaved ref(std::move(lanes));
  const std::size_t n = fast.code_bits();
  for (std::uint64_t data : sample_words(fast, rng, 8)) {
    const Bits code = fast.encode(data);
    ASSERT_EQ(code, ref.encode(data)) << "encode mismatch";
    // Random k-bit error patterns, k = 0..8: covers clean words,
    // correctable spread errors and uncorrectable same-lane pileups.
    for (int k = 0; k <= 8; ++k) {
      for (int s = 0; s < 32; ++s) {
        Bits received = code;
        for (int e = 0; e < k; ++e) received.flip(rng.uniform_u64(n));
        expect_same_decode(fast, ref, received, "random pattern");
      }
    }
  }
}

TEST(EccBitParallelEquivalence, BchEncodeAndSyndromes) {
  Rng rng(0x9a5e04);
  const BchCode code = ocean_buffer_code();
  const GaloisField field(6);
  for (std::uint64_t data : sample_words(code, rng, 16)) {
    // Byte-table parity vs long division.
    const Bits word = code.encode(data);
    Bits serial;
    const std::uint64_t parity = reference::bch_parity(code, data);
    for (std::size_t i = 0; i < code.parity_bits(); ++i)
      serial.set(i, (parity >> i) & 1u);
    for (std::size_t i = 0; i < code.data_bits(); ++i)
      serial.set(code.parity_bits() + i, (data >> i) & 1u);
    ASSERT_EQ(word, serial) << "encode mismatch";

    // Set-bit-iteration syndromes vs per-position evaluation, on clean
    // and corrupted words.
    for (int errors = 0; errors <= 5; ++errors) {
      Bits received = word;
      for (int e = 0; e < errors; ++e)
        received.flip(rng.uniform_u64(code.code_bits()));
      ASSERT_EQ(code.syndromes(received),
                reference::bch_syndromes(code, field, received))
          << "syndrome mismatch with " << errors << " errors";
    }
  }
}

}  // namespace
}  // namespace ntc::ecc
