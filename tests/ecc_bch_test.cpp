#include "ecc/bch.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/galois.hpp"

namespace ntc::ecc {
namespace {

TEST(GaloisField, AxiomsHoldInGf64) {
  GaloisField gf(6);
  EXPECT_EQ(gf.order(), 63u);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    unsigned a = 1 + static_cast<unsigned>(rng.uniform_u64(63));
    unsigned b = 1 + static_cast<unsigned>(rng.uniform_u64(63));
    unsigned c = 1 + static_cast<unsigned>(rng.uniform_u64(63));
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
    EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u);
    EXPECT_EQ(gf.div(gf.mul(a, b), b), a);
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST(GaloisField, AlphaGeneratesTheField) {
  GaloisField gf(6);
  std::set<unsigned> seen;
  for (unsigned e = 0; e < gf.order(); ++e) seen.insert(gf.alpha_pow(e));
  EXPECT_EQ(seen.size(), 63u);  // every nonzero element
  EXPECT_EQ(gf.alpha_pow(63), gf.alpha_pow(0));  // order wraps
  EXPECT_EQ(gf.alpha_pow(-1), gf.inv(gf.alpha_pow(1)));
}

TEST(GaloisField, PowAndLogConsistent) {
  GaloisField gf(8);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    unsigned a = 1 + static_cast<unsigned>(rng.uniform_u64(255));
    EXPECT_EQ(gf.alpha_pow(gf.log(a)), a);
    EXPECT_EQ(gf.pow(a, 3), gf.mul(a, gf.mul(a, a)));
  }
}

TEST(Gf2Poly, DegreeMultiplyMod) {
  using namespace gf2poly;
  EXPECT_EQ(degree(0), -1);
  EXPECT_EQ(degree(1), 0);
  EXPECT_EQ(degree(0b1011), 3);
  // (x+1)(x+1) = x^2 + 1 over GF(2).
  EXPECT_EQ(multiply(0b11, 0b11), 0b101u);
  // x^3 mod (x^2+1): x^3 = x*(x^2+1) + x -> x.
  EXPECT_EQ(mod(0b1000, 0b101), 0b10u);
}

class BchParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BchParamTest, ParityBitsAre6tForGf64) {
  const unsigned t = GetParam();
  BchCode code(6, t, 32);
  // For BCH over GF(2^6) with t <= 4, each odd minimal polynomial has
  // degree 6 (t=5 hits the degree-3 coset of alpha^9).
  if (t <= 4) {
    EXPECT_EQ(code.parity_bits(), 6u * t);
  }
  EXPECT_EQ(code.correct_capability(), t);
}

TEST_P(BchParamTest, CorrectsUpToTErrorsRandomised) {
  const unsigned t = GetParam();
  BchCode code(6, t, 32);
  Rng rng(100 + t);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint64_t data = rng.next_u64() & 0xFFFFFFFFull;
    Bits word = code.encode(data);
    const unsigned nerr = 1 + static_cast<unsigned>(rng.uniform_u64(t));
    std::vector<std::size_t> positions;
    while (positions.size() < nerr) {
      std::size_t p = rng.uniform_u64(code.code_bits());
      if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
        positions.push_back(p);
        word.flip(p);
      }
    }
    auto result = code.decode(word);
    EXPECT_EQ(result.data, data) << "t=" << t << " nerr=" << nerr;
    EXPECT_EQ(result.status, DecodeStatus::Corrected);
    EXPECT_EQ(result.corrected_bits, static_cast<int>(nerr));
  }
}

TEST_P(BchParamTest, CleanWordDecodesOk) {
  BchCode code(6, GetParam(), 32);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t data = rng.next_u64() & 0xFFFFFFFFull;
    auto result = code.decode(code.encode(data));
    EXPECT_EQ(result.status, DecodeStatus::Ok);
    EXPECT_EQ(result.data, data);
  }
}

INSTANTIATE_TEST_SUITE_P(CorrectionStrengths, BchParamTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Bch, OceanBufferCodeShape) {
  BchCode code = ocean_buffer_code();
  EXPECT_EQ(code.data_bits(), 32u);
  EXPECT_EQ(code.correct_capability(), 4u);  // quadruple correction
  EXPECT_EQ(code.code_bits(), 56u);          // shortened BCH(63,39)
}

TEST(Bch, QuintupleErrorsDefeatTheBufferCode) {
  // The paper: "in OCEAN a quintuple (5 bits) error is needed for
  // system failure" — with t=4, 5-bit errors must not decode cleanly.
  BchCode code = ocean_buffer_code();
  Rng rng(9);
  int undetected_corruption = 0, handled = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t data = rng.next_u64() & 0xFFFFFFFFull;
    Bits word = code.encode(data);
    std::vector<std::size_t> positions;
    while (positions.size() < 5) {
      std::size_t p = rng.uniform_u64(code.code_bits());
      if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
        positions.push_back(p);
        word.flip(p);
      }
    }
    auto result = code.decode(word);
    if (result.status == DecodeStatus::DetectedUncorrectable) {
      ++handled;  // detected (would trigger a higher-level response)
    } else if (result.data != data) {
      ++undetected_corruption;  // the genuine failure mode
    }
  }
  // Most quintuples are at least detected, but silent corruption exists:
  // that residue is what the FIT <= 1e-15 budget constrains.
  EXPECT_GT(handled, 500);
  EXPECT_GT(undetected_corruption, 0);
}

TEST(Bch, GeneratorDividesCodewords) {
  BchCode code(6, 2, 32);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t data = rng.next_u64() & 0xFFFFFFFFull;
    Bits word = code.encode(data);
    // Pack the codeword into a GF(2) polynomial and check g | c.
    std::uint64_t c = 0;
    for (std::size_t j = 0; j < code.code_bits(); ++j)
      c |= static_cast<std::uint64_t>(word.get(j)) << j;
    EXPECT_EQ(gf2poly::mod(c, code.generator()), 0u);
  }
}

TEST(Bch, WorksOverLargerFields) {
  BchCode code(8, 3, 64);  // shortened BCH over GF(256)
  Rng rng(13);
  std::uint64_t data = rng.next_u64();
  Bits word = code.encode(data);
  word.flip(3);
  word.flip(40);
  word.flip(70);
  auto result = code.decode(word);
  EXPECT_EQ(result.data, data);
  EXPECT_EQ(result.corrected_bits, 3);
}

}  // namespace
}  // namespace ntc::ecc
