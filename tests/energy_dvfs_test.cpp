#include "energy/dvfs.hpp"

#include <gtest/gtest.h>

namespace ntc::energy {
namespace {

DvfsPlanner make_planner(double idle_fraction = 0.08) {
  return DvfsPlanner(arm9_class_core_40nm(),
                     MemoryCalculator(MemoryStyle::CellBasedImec40,
                                      reference_1k_x_32()),
                     tech::platform_logic_timing_40nm(), idle_fraction);
}

TEST(DvfsPlanner, EvaluateRejectsUnreachableClock) {
  DvfsPlanner planner = make_planner();
  // 1e6 cycles in 1 ms needs 1 GHz — beyond this platform at any V.
  auto plan = planner.evaluate(Volt{1.1}, 1'000'000, Second{1e-3}, false);
  EXPECT_FALSE(plan.feasible);
}

TEST(DvfsPlanner, ConstantThroughputUsesExactlyTheDeadline) {
  DvfsPlanner planner = make_planner();
  auto plan = planner.evaluate(Volt{0.44}, 100'000, Second{0.5}, false);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.active_time.value, 0.5, 1e-9);
  EXPECT_NEAR(plan.clock.value, 200'000.0, 1.0);
}

TEST(DvfsPlanner, RaceToIdleRunsAtFmax) {
  DvfsPlanner planner = make_planner();
  auto plan = planner.evaluate(Volt{0.44}, 100'000, Second{0.5}, true);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.active_time.value, 0.1);  // finishes early, idles after
}

TEST(DvfsPlanner, RaceToIdleWinsWhenLeakageDominates) {
  // This ARM9-class platform is heavily leakage-dominated at NTV, so
  // racing and gating beats crawling at the deadline clock.
  DvfsPlanner planner = make_planner(/*idle_fraction=*/0.05);
  auto best = planner.best(100'000, Second{0.5}, Volt{0.33});
  ASSERT_TRUE(best.feasible);
  EXPECT_EQ(best.policy, DvfsPolicy::RaceToIdle);
}

TEST(DvfsPlanner, PoorPowerGatingFlipsTheDecision) {
  // If idle leaks nearly as much as active, racing buys nothing and the
  // lowest-voltage crawl wins.
  DvfsPlanner planner = make_planner(/*idle_fraction=*/1.0);
  auto constant =
      planner.plan(DvfsPolicy::ConstantThroughput, 100'000, Second{0.5},
                   Volt{0.33});
  auto race = planner.plan(DvfsPolicy::RaceToIdle, 100'000, Second{0.5},
                           Volt{0.33});
  ASSERT_TRUE(constant.feasible && race.feasible);
  EXPECT_LE(constant.energy.value, race.energy.value * 1.001);
}

TEST(DvfsPlanner, VoltageFloorIsRespected) {
  DvfsPlanner planner = make_planner();
  auto plan =
      planner.plan(DvfsPolicy::ConstantThroughput, 100'000, Second{0.5},
                   Volt{0.50});
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.vdd.value, 0.50 - 1e-9);
}

TEST(DvfsPlanner, LongerIdleTailCostsIdleLeakage) {
  // Energy is accounted over the whole deadline window, so with
  // imperfect power gating a longer window means more idle leakage.
  DvfsPlanner planner = make_planner(/*idle_fraction=*/0.08);
  auto short_window = planner.evaluate(Volt{0.55}, 100'000, Second{0.1}, true);
  auto long_window = planner.evaluate(Volt{0.55}, 100'000, Second{1.0}, true);
  ASSERT_TRUE(short_window.feasible && long_window.feasible);
  EXPECT_GT(long_window.energy.value, short_window.energy.value);
}

TEST(DvfsPlanner, PerfectGatingMakesRaceEnergyWindowIndependent) {
  DvfsPlanner planner = make_planner(/*idle_fraction=*/0.0);
  auto a = planner.evaluate(Volt{0.55}, 100'000, Second{0.1}, true);
  auto b = planner.evaluate(Volt{0.55}, 100'000, Second{1.0}, true);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.energy.value, b.energy.value, a.energy.value * 1e-9);
}

}  // namespace
}  // namespace ntc::energy
