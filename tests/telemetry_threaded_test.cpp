// Multi-threaded recorder proof: eight campaign workers record trial,
// executor and memory events concurrently into their per-thread rings,
// and the drained trace still exports as a valid Chrome trace and
// Prometheus text.  Under the sanitize-thread preset this is the
// telemetry TSan target (label tier2-telemetry).
//
// Instrumentation must also be purely observational: the ledger a
// traced campaign writes is byte-identical to an untraced one.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "faultsim/campaign.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace ntc {
namespace {

faultsim::CampaignConfig eight_worker_grid() {
  faultsim::CampaignConfig config;
  config.voltages = {Volt{0.30}, Volt{0.44}};
  config.schemes = {mitigation::SchemeKind::NoMitigation,
                    mitigation::SchemeKind::Secded,
                    mitigation::SchemeKind::Ocean};
  config.seeds_per_cell = 2;
  config.fft_points = 16;
  config.threads = 8;

  faultsim::Scenario burst;
  burst.name = "burst";
  burst.spm_events = {faultsim::FaultEvent::read_burst(3, 4, 3),
                      faultsim::FaultEvent::stuck_at(9, 0x7, 0x5, 0.6)};
  burst.imem_events = {faultsim::FaultEvent::transient_flip(2, 0x10, 40)};
  burst.pm_events = {faultsim::FaultEvent::write_burst(1, 0x3)};
  config.scenarios = {faultsim::Scenario{"background", {}, {}, {}}, burst};
  return config;
}

class TelemetryThreadedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::reset_for_testing();
    telemetry::set_enabled(true);
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset_for_testing();
  }
};

TEST_F(TelemetryThreadedTest, EightWorkerCampaignProducesValidExports) {
  faultsim::CampaignRunner runner(eight_worker_grid());
  runner.run();
  const std::size_t trials = runner.records().size();
  ASSERT_EQ(trials, 2u * 3u * 2u * 2u);

  std::ostringstream chrome;
  telemetry::export_chrome_trace(chrome);
  const std::string trace = chrome.str();
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));

  std::ostringstream prom;
  telemetry::export_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("ntc_build_info{"), std::string::npos);

#if NTC_TELEMETRY
  // One trial span per grid cell, spread across the worker rings.
  std::size_t trial_events = 0;
  std::size_t rings_with_events = 0;
  for (const telemetry::ThreadTrace& t : telemetry::snapshot()) {
    if (!t.events.empty()) ++rings_with_events;
    for (const telemetry::TraceEvent& ev : t.events)
      if (ev.kind == telemetry::EventKind::CampaignTrial) ++trial_events;
  }
  EXPECT_EQ(trial_events, trials);
  EXPECT_GT(rings_with_events, 1u) << "expected events from several workers";
  EXPECT_NE(trace.find("\"name\":\"campaign_trial\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"executor_job\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE ntc_campaign_trials_total counter"),
            std::string::npos);
  EXPECT_EQ(telemetry::counter("ntc_campaign_trials_total").value(), trials);
#endif

  std::ostringstream jsonl;
  runner.write_telemetry_jsonl(jsonl);
  EXPECT_EQ(jsonl.str().rfind("{\"record\":\"build\"", 0), 0u);
}

TEST_F(TelemetryThreadedTest, TracingDoesNotPerturbTheLedger) {
  // Telemetry only observes — it must never draw RNG or touch simulated
  // state, so the traced ledger byte-matches the untraced one.
  faultsim::CampaignRunner traced(eight_worker_grid());
  traced.run();
  std::ostringstream traced_csv;
  traced.write_csv(traced_csv);

  telemetry::set_enabled(false);
  faultsim::CampaignRunner untraced(eight_worker_grid());
  untraced.run();
  std::ostringstream untraced_csv;
  untraced.write_csv(untraced_csv);

  EXPECT_EQ(traced_csv.str(), untraced_csv.str());
}

}  // namespace
}  // namespace ntc
