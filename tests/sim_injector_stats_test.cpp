// Write/read fault-accounting symmetry (the seam's stats contract):
// write-latch failures land in SramStats.injected_write_flips exactly
// as read upsets land in injected_read_flips, for scripted and
// stochastic injectors alike.
#include <gtest/gtest.h>

#include <memory>

#include "faultsim/scenario.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/sram_module.hpp"

namespace ntc::sim {
namespace {

SramModule make_sram(Volt vdd, bool inject, std::uint64_t seed = 1,
                     std::uint32_t words = 64) {
  return SramModule("test", words, 32, reliability::cell_based_40nm_access(),
                    reliability::cell_based_40nm_retention(), vdd, Rng(seed),
                    inject);
}

TEST(InjectorStats, ScriptedWriteFlipsCountedSymmetrically) {
  SramModule sram = make_sram(Volt{0.44}, /*inject=*/false);
  sram.attach_injector(std::make_shared<faultsim::ScenarioInjector>(
      std::vector<faultsim::FaultEvent>{
          faultsim::FaultEvent::write_burst(2, 0b111),
          faultsim::FaultEvent::read_burst(7, 0, 2)}));

  sram.write_raw(2, 0);
  EXPECT_EQ(sram.stats().injected_write_flips, 3u);
  EXPECT_EQ(sram.stats().injected_read_flips, 0u);
  EXPECT_EQ(sram.read_raw(2), 0b111ull);  // latched, not a read flip
  EXPECT_EQ(sram.stats().injected_read_flips, 0u);

  sram.write_raw(7, 0);
  (void)sram.read_raw(7);
  EXPECT_EQ(sram.stats().injected_read_flips, 2u);
  EXPECT_EQ(sram.stats().injected_write_flips, 3u);  // unchanged
}

TEST(InjectorStats, StochasticWriteFlipRateMatchesReadFlipRate) {
  // Same word, same access count, same model: the two counters must
  // estimate the same per-access flip rate (Eq. 5 applies to the latch
  // on both directions of the port).
  // Enough accesses that the expected flip count (~500) puts the 15%
  // band at >3 Poisson sigma — the estimate, not the seed, decides.
  const Volt vdd{0.40};
  const double p = reliability::cell_based_40nm_access().p_bit_err(vdd);
  const int accesses = 4000000;

  SramModule reader = make_sram(vdd, /*inject=*/true, 7);
  reader.write_raw(0, 0);
  for (int i = 0; i < accesses; ++i) (void)reader.read_raw(0);

  SramModule writer = make_sram(vdd, /*inject=*/true, 7);
  for (int i = 0; i < accesses; ++i) writer.write_raw(0, 0);

  const double expected = p * 32 * accesses;
  EXPECT_NEAR(static_cast<double>(reader.stats().injected_read_flips) /
                  expected,
              1.0, 0.15);
  EXPECT_NEAR(static_cast<double>(writer.stats().injected_write_flips) /
                  expected,
              1.0, 0.15);
  EXPECT_EQ(reader.stats().injected_write_flips, 0u);
  EXPECT_EQ(writer.stats().injected_read_flips, 0u);
}

TEST(InjectorStats, ResetClearsBothDirections) {
  SramModule sram = make_sram(Volt{0.44}, /*inject=*/false);
  sram.attach_injector(std::make_shared<faultsim::ScenarioInjector>(
      std::vector<faultsim::FaultEvent>{
          faultsim::FaultEvent::write_burst(0, 0b1),
          faultsim::FaultEvent::read_burst(0, 1, 1)}));
  sram.write_raw(0, 0);
  (void)sram.read_raw(0);
  EXPECT_EQ(sram.stats().injected_write_flips, 1u);
  EXPECT_EQ(sram.stats().injected_read_flips, 1u);
  sram.reset_stats();
  EXPECT_EQ(sram.stats().injected_write_flips, 0u);
  EXPECT_EQ(sram.stats().injected_read_flips, 0u);
}

}  // namespace
}  // namespace ntc::sim
