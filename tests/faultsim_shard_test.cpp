#include "faultsim/shard.hpp"

#include <gtest/gtest.h>

#include <set>

#include "faultsim/campaign.hpp"

namespace ntc::faultsim {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.voltages = {Volt{0.30}, Volt{0.44}, Volt{0.60}};
  config.schemes = {mitigation::SchemeKind::NoMitigation,
                    mitigation::SchemeKind::Secded};
  Scenario burst;
  burst.name = "burst";
  burst.spm_events = {FaultEvent::read_burst(3, 4, 3)};
  config.scenarios = {Scenario{"background", {}, {}, {}}, burst};
  config.base_seed = 10;
  config.seeds_per_cell = 6;
  config.fft_points = 32;
  return config;
}

TEST(ShardPlanTest, CoversGridExactlyOncePerCell) {
  const CampaignConfig config = small_config();
  const ShardPlan plan = make_shard_plan(config);
  // 2 scenarios x 2 schemes x 3 voltages, one shard per cell.
  ASSERT_EQ(plan.shards.size(), 12u);
  EXPECT_EQ(plan.total_records, 12u * 6u);
  EXPECT_EQ(plan.seeds_per_shard, 6u);

  std::set<std::uint64_t> ids;
  std::set<std::uint64_t> bases;
  for (const Shard& shard : plan.shards) {
    EXPECT_EQ(shard.id, plan.shards[shard.id].id) << "ids must be dense";
    EXPECT_EQ(shard.trial_count, 6u);
    EXPECT_EQ(shard.seed_begin, config.base_seed);
    EXPECT_LT(shard.scenario_index, 2u);
    EXPECT_LT(shard.scheme_index, 2u);
    EXPECT_LT(shard.voltage_index, 3u);
    ids.insert(shard.id);
    bases.insert(shard.record_base);
  }
  EXPECT_EQ(ids.size(), plan.shards.size());
  EXPECT_EQ(bases.size(), plan.shards.size());

  // Enumeration order: scenario outermost, then scheme, then voltage —
  // record_base must advance in exactly that nesting.
  for (std::size_t i = 0; i < plan.shards.size(); ++i)
    EXPECT_EQ(plan.shards[i].record_base, i * 6u);
  EXPECT_EQ(plan.shards[1].voltage_index, 1u);
  EXPECT_EQ(plan.shards[3].scheme_index, 1u);
  EXPECT_EQ(plan.shards[6].scenario_index, 1u);
}

TEST(ShardPlanTest, SeedChunkingSplitsCells) {
  const CampaignConfig config = small_config();  // 6 seeds per cell
  const ShardPlan plan = make_shard_plan(config, 4);
  // Each cell splits into chunks of 4 and 2 seeds.
  ASSERT_EQ(plan.shards.size(), 24u);
  EXPECT_EQ(plan.total_records, 72u);
  for (std::size_t i = 0; i < plan.shards.size(); i += 2) {
    const Shard& head = plan.shards[i];
    const Shard& tail = plan.shards[i + 1];
    EXPECT_EQ(head.trial_count, 4u);
    EXPECT_EQ(tail.trial_count, 2u);
    EXPECT_EQ(tail.seed_begin, head.seed_begin + 4);
    EXPECT_EQ(tail.record_base, head.record_base + 4);
    EXPECT_EQ(tail.scenario_index, head.scenario_index);
    EXPECT_EQ(tail.scheme_index, head.scheme_index);
    EXPECT_EQ(tail.voltage_index, head.voltage_index);
  }
  // Chunking changes the plan identity even though the grid is the same.
  EXPECT_NE(plan.fingerprint, make_shard_plan(config).fingerprint);
  // Oversized chunk clamps to the cell: identical to the unchunked plan.
  EXPECT_EQ(make_shard_plan(config, 100).fingerprint,
            make_shard_plan(config).fingerprint);
}

TEST(ShardPlanTest, EmptyScenariosMatchImplicitBackground) {
  CampaignConfig with = small_config();
  with.scenarios = {Scenario{"background", {}, {}, {}}};
  CampaignConfig without = small_config();
  without.scenarios.clear();
  EXPECT_EQ(make_shard_plan(with).fingerprint,
            make_shard_plan(without).fingerprint);
  EXPECT_EQ(make_shard_plan(without).shards.size(), 6u);
}

TEST(ConfigFingerprintTest, SensitiveToResultAffectingFields) {
  const CampaignConfig base = small_config();
  const std::uint64_t reference = config_fingerprint(base);
  EXPECT_EQ(config_fingerprint(small_config()), reference) << "deterministic";

  CampaignConfig mutated = small_config();
  mutated.base_seed = 11;
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.seeds_per_cell = 7;
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.fft_points = 64;
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.voltages[1] = Volt{0.45};
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.schemes.push_back(mitigation::SchemeKind::Ocean);
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.scenarios[1].spm_events[0] = FaultEvent::read_burst(3, 4, 4);
  EXPECT_NE(config_fingerprint(mutated), reference);

  mutated = small_config();
  mutated.stochastic_background = !mutated.stochastic_background;
  EXPECT_NE(config_fingerprint(mutated), reference);
}

TEST(ConfigFingerprintTest, ThreadCountInvariant) {
  CampaignConfig config = small_config();
  config.threads = 1;
  const std::uint64_t one = config_fingerprint(config);
  config.threads = 8;
  EXPECT_EQ(config_fingerprint(config), one)
      << "segments written at different worker counts must interoperate";
}

TEST(ShardSegmentNameTest, StableZeroPaddedNames) {
  EXPECT_EQ(shard_segment_name(0), "shard-000000.ntcl");
  EXPECT_EQ(shard_segment_name(42), "shard-000042.ntcl");
  EXPECT_EQ(shard_segment_name(1234567), "shard-1234567.ntcl");
}

}  // namespace
}  // namespace ntc::faultsim
