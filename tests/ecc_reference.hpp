// Bit-serial reference kernels for the ECC equivalence suite.
//
// These are the original per-bit encode/syndrome/decode loops the
// production codecs used before the bit-parallel rewrite (byte-indexed
// syndrome tables, contiguous-run scatter/gather, pext/pdep lane
// moves).  They re-derive their own construction from scratch so a
// table-building bug in the production path cannot hide: the
// equivalence tests compare the two implementations bit-exactly over
// exhaustive error patterns.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "ecc/bch.hpp"
#include "ecc/code.hpp"
#include "ecc/galois.hpp"

namespace ntc::ecc::reference {

/// Bit-serial Hamming SECDED: overall parity at position 0, parity bits
/// at the powers of two, data at the remaining positions.
class ReferenceHamming final : public BlockCode {
 public:
  explicit ReferenceHamming(std::size_t data_bits) : k_(data_bits) {
    r_ = 2;
    while ((std::size_t{1} << r_) < k_ + r_ + 1) ++r_;
    n_ = k_ + r_ + 1;
  }

  std::string name() const override { return "ref-secded"; }
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return n_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override {
    Bits code;
    std::size_t bit = 0;
    const std::size_t m = k_ + r_;
    for (std::size_t pos = 1; pos <= m; ++pos) {
      if (std::has_single_bit(pos)) continue;
      code.set(pos, (data >> bit) & 1u);
      ++bit;
    }
    for (std::size_t j = 0; j < r_; ++j) {
      const std::size_t p = std::size_t{1} << j;
      bool parity = false;
      for (std::size_t pos = 1; pos <= m; ++pos) {
        if (pos == p || !(pos & p)) continue;
        parity ^= code.get(pos);
      }
      code.set(p, parity);
    }
    bool overall = false;
    for (std::size_t pos = 1; pos <= m; ++pos) overall ^= code.get(pos);
    code.set(0, overall);
    return code;
  }

  DecodeResult decode(const Bits& received) const override {
    const std::size_t m = k_ + r_;
    std::size_t syndrome = 0;
    bool overall = received.get(0);
    for (std::size_t pos = 1; pos <= m; ++pos) {
      if (received.get(pos)) {
        syndrome ^= pos;
        overall ^= true;
      }
    }
    Bits corrected = received;
    DecodeResult result;
    if (syndrome == 0 && !overall) {
      result.status = DecodeStatus::Ok;
    } else if (syndrome == 0 && overall) {
      corrected.flip(0);
      result.status = DecodeStatus::Corrected;
      result.corrected_bits = 1;
    } else if (overall) {
      if (syndrome <= m) {
        corrected.flip(syndrome);
        result.status = DecodeStatus::Corrected;
        result.corrected_bits = 1;
      } else {
        result.status = DecodeStatus::DetectedUncorrectable;
      }
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
    std::uint64_t data = 0;
    std::size_t bit = 0;
    for (std::size_t pos = 1; pos <= m; ++pos) {
      if (std::has_single_bit(pos)) continue;
      data |= static_cast<std::uint64_t>(corrected.get(pos)) << bit;
      ++bit;
    }
    result.data = data;
    return result;
  }

 private:
  std::size_t k_, r_, n_;
};

/// Bit-serial Hsiao SECDED with the canonical odd-weight-column
/// assignment (same construction order as the production codec).
class ReferenceHsiao final : public BlockCode {
 public:
  explicit ReferenceHsiao(std::size_t data_bits) : k_(data_bits) {
    r_ = 4;
    auto capacity = [](std::size_t r) {
      std::size_t total = 0;
      for (std::size_t w = 3; w <= r; w += 2) {
        std::size_t c = 1;
        for (std::size_t i = 0; i < w; ++i) c = c * (r - i) / (i + 1);
        total += c;
      }
      return total;
    };
    while (capacity(r_) < k_) ++r_;
    for (std::size_t weight = 3; weight <= r_ && column_.size() < k_;
         weight += 2) {
      for (std::size_t mask = 1;
           mask < (std::size_t{1} << r_) && column_.size() < k_; ++mask) {
        if (std::popcount(mask) == static_cast<int>(weight))
          column_.push_back(static_cast<std::uint8_t>(mask));
      }
    }
  }

  std::string name() const override { return "ref-hsiao"; }
  std::size_t data_bits() const override { return k_; }
  std::size_t code_bits() const override { return k_ + r_; }
  std::size_t correct_capability() const override { return 1; }
  std::size_t detect_capability() const override { return 2; }

  Bits encode(std::uint64_t data) const override {
    Bits code;
    std::uint8_t checks = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const bool bit = (data >> i) & 1u;
      code.set(i, bit);
      if (bit) checks ^= column_[i];
    }
    for (std::size_t j = 0; j < r_; ++j) code.set(k_ + j, (checks >> j) & 1u);
    return code;
  }

  std::uint8_t syndrome_of(const Bits& word) const {
    std::uint8_t syndrome = 0;
    for (std::size_t i = 0; i < k_; ++i)
      if (word.get(i)) syndrome ^= column_[i];
    for (std::size_t j = 0; j < r_; ++j)
      if (word.get(k_ + j)) syndrome ^= static_cast<std::uint8_t>(1u << j);
    return syndrome;
  }

  DecodeResult decode(const Bits& received) const override {
    DecodeResult result;
    Bits corrected = received;
    const std::uint8_t syndrome = syndrome_of(received);
    if (syndrome == 0) {
      result.status = DecodeStatus::Ok;
    } else if (std::popcount(syndrome) % 2 == 1) {
      bool matched = false;
      for (std::size_t i = 0; i < k_; ++i) {
        if (column_[i] == syndrome) {
          corrected.flip(i);
          matched = true;
          break;
        }
      }
      if (!matched && std::has_single_bit(syndrome)) {
        corrected.flip(k_ +
                       static_cast<std::size_t>(std::countr_zero(syndrome)));
        matched = true;
      }
      if (matched) {
        result.status = DecodeStatus::Corrected;
        result.corrected_bits = 1;
      } else {
        result.status = DecodeStatus::DetectedUncorrectable;
      }
    } else {
      result.status = DecodeStatus::DetectedUncorrectable;
    }
    std::uint64_t data = 0;
    for (std::size_t i = 0; i < k_; ++i)
      data |= static_cast<std::uint64_t>(corrected.get(i)) << i;
    result.data = data;
    return result;
  }

 private:
  std::size_t k_, r_ = 0;
  std::vector<std::uint8_t> column_;
};

/// Bit-serial interleaving wrapper: per-bit scatter/gather between the
/// interleaved word and the lanes (the production code moves whole lane
/// masks with pext/pdep).
class ReferenceInterleaved final : public BlockCode {
 public:
  explicit ReferenceInterleaved(std::vector<std::unique_ptr<BlockCode>> lanes)
      : lanes_(std::move(lanes)) {}

  std::string name() const override { return "ref-interleaved"; }
  std::size_t data_bits() const override {
    return lanes_.size() * lanes_[0]->data_bits();
  }
  std::size_t code_bits() const override {
    return lanes_.size() * lanes_[0]->code_bits();
  }
  std::size_t correct_capability() const override {
    return lanes_[0]->correct_capability();
  }
  std::size_t detect_capability() const override {
    return lanes_[0]->detect_capability();
  }

  Bits encode(std::uint64_t data) const override {
    const std::size_t ways = lanes_.size();
    const std::size_t lane_k = lanes_[0]->data_bits();
    const std::size_t lane_n = lanes_[0]->code_bits();
    Bits out;
    for (std::size_t lane = 0; lane < ways; ++lane) {
      std::uint64_t lane_data = 0;
      for (std::size_t i = 0; i < lane_k; ++i) {
        const std::size_t src = lane + i * ways;
        lane_data |= static_cast<std::uint64_t>((data >> src) & 1u) << i;
      }
      const Bits lane_code = lanes_[lane]->encode(lane_data);
      for (std::size_t i = 0; i < lane_n; ++i)
        out.set(lane + i * ways, lane_code.get(i));
    }
    return out;
  }

  DecodeResult decode(const Bits& received) const override {
    const std::size_t ways = lanes_.size();
    const std::size_t lane_k = lanes_[0]->data_bits();
    const std::size_t lane_n = lanes_[0]->code_bits();
    DecodeResult result;
    result.status = DecodeStatus::Ok;
    std::uint64_t data = 0;
    for (std::size_t lane = 0; lane < ways; ++lane) {
      Bits lane_code;
      for (std::size_t i = 0; i < lane_n; ++i)
        lane_code.set(i, received.get(lane + i * ways));
      const DecodeResult lane_result = lanes_[lane]->decode(lane_code);
      for (std::size_t i = 0; i < lane_k; ++i) {
        data |= static_cast<std::uint64_t>((lane_result.data >> i) & 1u)
                << (lane + i * ways);
      }
      result.corrected_bits += lane_result.corrected_bits;
      if (lane_result.status == DecodeStatus::DetectedUncorrectable) {
        result.status = DecodeStatus::DetectedUncorrectable;
      } else if (lane_result.status == DecodeStatus::Corrected &&
                 result.status == DecodeStatus::Ok) {
        result.status = DecodeStatus::Corrected;
      }
    }
    result.data = data;
    return result;
  }

 private:
  std::vector<std::unique_ptr<BlockCode>> lanes_;
};

/// Bit-serial systematic BCH parity: long division of data(x) * x^r by
/// the generator, one data bit per step (the production encoder folds
/// eight bits per step through a byte table).
inline std::uint64_t bch_parity(const BchCode& code, std::uint64_t data) {
  const std::size_t r = code.parity_bits();
  const std::uint64_t mask = (std::uint64_t{1} << r) - 1;
  std::uint64_t rem = 0;
  for (std::size_t i = code.data_bits(); i-- > 0;) {
    const std::uint64_t in_bit = (data >> i) & 1u;
    const std::uint64_t top = (rem >> (r - 1)) & 1u;
    rem = (rem << 1) & mask;
    if (top ^ in_bit) rem ^= code.generator() & mask;
  }
  return rem;
}

/// Per-position BCH syndromes S_1..S_2t (index 0 unused): evaluate the
/// received polynomial at alpha^i position by position (the production
/// path visits only the set bits with precomputed rows).
inline std::vector<unsigned> bch_syndromes(const BchCode& code,
                                           const GaloisField& field,
                                           const Bits& received) {
  const std::size_t n_used = code.code_bits();
  const unsigned two_t = 2 * static_cast<unsigned>(code.correct_capability());
  std::vector<unsigned> syndrome(two_t + 1, 0);
  for (unsigned i = 1; i <= two_t; ++i) {
    unsigned s = 0;
    for (std::size_t j = 0; j < n_used; ++j) {
      if (received.get(j))
        s ^= field.alpha_pow(static_cast<long long>(i) *
                             static_cast<long long>(j));
    }
    syndrome[i] = s;
  }
  return syndrome;
}

}  // namespace ntc::ecc::reference
