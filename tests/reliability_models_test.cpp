#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "reliability/retention_model.hpp"

namespace ntc::reliability {
namespace {

TEST(NoiseMargin, LinearInVddAndSigma) {
  NoiseMarginModel nm(1.0, -0.28, 0.030);
  EXPECT_NEAR(nm.noise_margin(Volt{0.5}, 0.0), 0.22, 1e-12);
  EXPECT_NEAR(nm.noise_margin(Volt{0.5}, -2.0), 0.16, 1e-12);
}

TEST(NoiseMargin, CellVminIsZeroCrossing) {
  NoiseMarginModel nm(1.0, -0.28, 0.030);
  for (double s : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    Volt v = nm.cell_retention_vmin(s);
    EXPECT_NEAR(nm.noise_margin(v, s), 0.0, 1e-12) << "sigma=" << s;
  }
}

TEST(NoiseMargin, HalfFailAtMedianVoltage) {
  NoiseMarginModel nm = commercial_40nm_retention();
  EXPECT_NEAR(nm.p_bit_fail(nm.half_fail_voltage()), 0.5, 1e-12);
}

TEST(NoiseMargin, PFailMonotonicallyFallsWithVdd) {
  NoiseMarginModel nm = commercial_40nm_retention();
  double prev = 1.0;
  for (double v = 0.2; v <= 0.6; v += 0.02) {
    double p = nm.p_bit_fail(Volt{v});
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(NoiseMargin, VddForPFailInverts) {
  NoiseMarginModel nm = cell_based_40nm_retention();
  for (double p : {1e-9, 1e-6, 1e-3, 0.1, 0.5}) {
    EXPECT_NEAR(nm.p_bit_fail(nm.vdd_for_p_fail(p)), p, p * 1e-6)
        << "p=" << p;
  }
}

TEST(NoiseMargin, Eq3ConstantSlope) {
  // Eq. (3): dVDD/dsigma = c2/c0 is constant — fixing NM at failure,
  // moving the limiting sigma by ds moves the voltage by (c2/c0)*ds.
  NoiseMarginModel nm = commercial_40nm_retention();
  const double s = nm.dvdd_dsigma();
  Volt v1 = nm.vdd_for_p_fail(normal_cdf(-4.0));  // 4-sigma cell limit
  Volt v2 = nm.vdd_for_p_fail(normal_cdf(-5.0));  // 5-sigma cell limit
  EXPECT_NEAR(v2.value - v1.value, s, 1e-9);
}

TEST(NoiseMargin, AgingRaisesVmin) {
  NoiseMarginModel nm = cell_based_40nm_retention();
  NoiseMarginModel old = nm.aged(Volt{0.03});
  EXPECT_NEAR(old.half_fail_voltage().value,
              nm.half_fail_voltage().value + 0.03, 1e-12);
  EXPECT_GT(old.p_bit_fail(Volt{0.3}), nm.p_bit_fail(Volt{0.3}));
}

TEST(NoiseMargin, PresetsOrderedByRobustness) {
  // 65nm sub-Vt design retains deepest, commercial macro shallowest.
  Volt commercial = commercial_40nm_retention().vdd_for_p_fail(1e-6);
  Volt cell40 = cell_based_40nm_retention().vdd_for_p_fail(1e-6);
  Volt cell65 = cell_based_65nm_retention().vdd_for_p_fail(1e-6);
  EXPECT_GT(commercial.value, cell40.value);
  EXPECT_GT(cell40.value, cell65.value);
}

TEST(RetentionModel, MatchesGeneratingNoiseMargin) {
  NoiseMarginModel nm = commercial_40nm_retention();
  RetentionErrorModel model = RetentionErrorModel::from_noise_margin(nm);
  for (double v = 0.2; v <= 0.5; v += 0.05) {
    EXPECT_NEAR(model.p_bit_err(Volt{v}), nm.p_bit_fail(Volt{v}), 1e-12)
        << "v=" << v;
  }
}

TEST(RetentionModel, RoundTripThroughNoiseMargin) {
  RetentionErrorModel m(-1.0, -0.28, 0.0425);
  NoiseMarginModel nm = m.to_noise_margin();
  RetentionErrorModel back = RetentionErrorModel::from_noise_margin(nm);
  EXPECT_NEAR(back.d1(), m.d1(), 1e-12);
  EXPECT_NEAR(back.d2(), m.d2(), 1e-12);
}

TEST(RetentionModel, VddForPInverts) {
  RetentionErrorModel m =
      RetentionErrorModel::from_noise_margin(cell_based_40nm_retention());
  for (double p : {1e-9, 1e-5, 1e-2}) {
    EXPECT_NEAR(m.p_bit_err(m.vdd_for_p(p)), p, p * 1e-5);
  }
}

TEST(AccessModel, ZeroAboveV0) {
  AccessErrorModel m = commercial_40nm_access();
  EXPECT_DOUBLE_EQ(m.p_bit_err(Volt{0.85}), 0.0);
  EXPECT_DOUBLE_EQ(m.p_bit_err(Volt{1.1}), 0.0);
  EXPECT_GT(m.p_bit_err(Volt{0.84}), 0.0);
}

TEST(AccessModel, PublishedCommercialConstants) {
  AccessErrorModel m = commercial_40nm_access();
  // Spot values of Eq. (5) with A=6, k=6.14, V0=0.85.
  EXPECT_NEAR(m.p_bit_err(Volt{0.77}), 6.0 * std::pow(0.08, 6.14), 1e-12);
  EXPECT_NEAR(m.p_bit_err(Volt{0.66}), 6.0 * std::pow(0.19, 6.14), 1e-12);
}

TEST(AccessModel, ClampsToProbabilityOne) {
  AccessErrorModel m(1e6, 2.0, Volt{0.9});
  EXPECT_DOUBLE_EQ(m.p_bit_err(Volt{0.1}), 1.0);
}

TEST(AccessModel, VddForPInverts) {
  AccessErrorModel m = cell_based_40nm_access();
  for (double p : {1e-12, 1e-8, 1e-4}) {
    EXPECT_NEAR(m.p_bit_err(m.vdd_for_p(p)), p, p * 1e-9) << "p=" << p;
  }
}

TEST(AccessModel, CellVminCcdfMatchesEq5) {
  // Sampling cells via cell_access_vmin(u) must reproduce Eq. (5) as the
  // population failure fraction.
  AccessErrorModel m = commercial_40nm_access();
  const int n = 200000;
  int failing_at_070 = 0;
  for (int i = 0; i < n; ++i) {
    double u = (i + 0.5) / n;  // stratified
    if (m.cell_access_vmin(u).value > 0.70) ++failing_at_070;
  }
  EXPECT_NEAR(static_cast<double>(failing_at_070) / n,
              m.p_bit_err(Volt{0.70}), 5e-5);
}

TEST(AccessModel, AgingShiftsV0) {
  AccessErrorModel m = cell_based_40nm_access();
  AccessErrorModel old = m.aged(Volt{0.02});
  EXPECT_NEAR(old.v0().value, 0.57, 1e-12);
  EXPECT_GT(old.p_bit_err(Volt{0.5}), m.p_bit_err(Volt{0.5}));
}

TEST(AccessModel, CellBasedMinAccessVoltageMatchesPaper) {
  // Paper: "In case of the cell based memory, the minimal access
  // voltage is V0 = 0.55".
  EXPECT_DOUBLE_EQ(cell_based_40nm_access().v0().value, 0.55);
}

}  // namespace
}  // namespace ntc::reliability
