#include "common/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace ntc {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ntc_atomic_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }
  std::string dir_;
};

TEST_F(AtomicFileTest, CommitPublishesExactly) {
  const std::string target = path("out.csv");
  AtomicFile file(target);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.write("header\n"));
  EXPECT_TRUE(file.write("row,1\n"));
  EXPECT_FALSE(fs::exists(target)) << "target must not appear before commit";
  EXPECT_TRUE(fs::exists(target + ".tmp"));
  EXPECT_TRUE(file.commit());
  EXPECT_EQ(slurp(target), "header\nrow,1\n");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicFileTest, CommitIsIdempotent) {
  const std::string target = path("twice.txt");
  AtomicFile file(target);
  file.write("payload");
  EXPECT_TRUE(file.commit());
  EXPECT_TRUE(file.commit());
  EXPECT_EQ(slurp(target), "payload");
}

TEST_F(AtomicFileTest, DestructorCommits) {
  const std::string target = path("scoped.txt");
  {
    AtomicFile file(target);
    file.write("on scope exit");
  }
  EXPECT_EQ(slurp(target), "on scope exit");
}

TEST_F(AtomicFileTest, DiscardLeavesOldContent) {
  const std::string target = path("keep.json");
  ASSERT_TRUE(atomic_write_file(target, "{\"old\": true}"));
  {
    AtomicFile file(target);
    file.write("{\"incomplete\":");
    file.discard();
  }
  EXPECT_EQ(slurp(target), "{\"old\": true}");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicFileTest, ReplaceIsAllOrNothing) {
  const std::string target = path("ledger.csv");
  ASSERT_TRUE(atomic_write_file(target, "version,1\n"));
  ASSERT_TRUE(atomic_write_file(target, "version,2\nmore,rows\n"));
  EXPECT_EQ(slurp(target), "version,2\nmore,rows\n");
}

TEST_F(AtomicFileTest, UnwritableDirectoryFails) {
  AtomicFile file(dir_ + "/no/such/subdir/out.txt");
  EXPECT_FALSE(file.ok());
  EXPECT_FALSE(file.write("x"));
  EXPECT_FALSE(file.commit());
  EXPECT_FALSE(atomic_write_file(dir_ + "/no/such/subdir/out.txt", "x"));
}

TEST_F(AtomicFileTest, HandlesBinaryAndEmptyContent) {
  const std::string target = path("bin.dat");
  std::string blob("\0\x01\xff payload \n\r\0", 14);
  ASSERT_TRUE(atomic_write_file(target, blob));
  EXPECT_EQ(slurp(target), blob);
  ASSERT_TRUE(atomic_write_file(target, ""));
  EXPECT_EQ(slurp(target), "");
}

}  // namespace
}  // namespace ntc
