#include "energy/node_projection.hpp"

#include <gtest/gtest.h>

namespace ntc::energy {
namespace {

TEST(NodeProjection, DynamicEnergyShrinksWithFeatureSize) {
  auto p14 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_14nm_finfet());
  auto p10 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_10nm_multigate());
  EXPECT_LT(p14.dynamic_energy_scale, 0.5);
  EXPECT_LT(p10.dynamic_energy_scale, p14.dynamic_energy_scale);
}

TEST(NodeProjection, SpeedupRoughlyTwoXFrom14To10) {
  auto p14 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_14nm_finfet());
  auto p10 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_10nm_multigate());
  const double ratio = p10.speed_scale / p14.speed_scale;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(NodeProjection, TighterAvtLowersAccessV0) {
  auto base = MemoryCalculator(MemoryStyle::CellBasedImec40,
                               reference_1k_x_32());
  auto p14 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_14nm_finfet());
  EXPECT_LT(p14.access.v0().value, base.access_model().v0().value);
  // Power-law steepness is preserved.
  EXPECT_DOUBLE_EQ(p14.access.k(), base.access_model().k());
}

TEST(NodeProjection, RetentionSpreadScalesWithAvt) {
  auto base = MemoryCalculator(MemoryStyle::CellBasedImec40,
                               reference_1k_x_32());
  auto p10 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_10nm_multigate());
  EXPECT_LT(p10.retention.dvdd_dsigma(),
            base.retention_model().dvdd_dsigma());
  EXPECT_LT(p10.retention.half_fail_voltage().value,
            base.retention_model().half_fail_voltage().value);
}

TEST(NodeProjection, ProjectedFiguresApplyAllScales) {
  MemoryCalculator base(MemoryStyle::CellBasedImec40, reference_1k_x_32());
  auto p14 = project_to_node(MemoryStyle::CellBasedImec40,
                             tech::node_14nm_finfet());
  const Volt v{0.4};
  const MemoryFigures b = base.at(v);
  const MemoryFigures f = p14.at(base, v);
  EXPECT_NEAR(f.read_energy.value / b.read_energy.value,
              p14.dynamic_energy_scale, 1e-12);
  EXPECT_NEAR(f.leakage.value / b.leakage.value, p14.leakage_scale, 1e-12);
  EXPECT_NEAR(f.fmax.value / b.fmax.value, p14.speed_scale, 1e-9);
  EXPECT_NEAR(f.area.value / b.area.value, p14.area_scale, 1e-12);
}

TEST(NodeProjection, RejectsNon40nmBaselines) {
  EXPECT_DEATH(project_to_node(MemoryStyle::CellBased65,
                               tech::node_14nm_finfet()),
               "40 nm");
}

}  // namespace
}  // namespace ntc::energy
