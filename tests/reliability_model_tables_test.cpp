#include "reliability/model_tables.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "reliability/access_model.hpp"
#include "reliability/noise_margin.hpp"
#include "sim/sram_module.hpp"

namespace ntc {
namespace {

TEST(RngBoundTest, NoNormalDeviateExceedsTheBound) {
  const double bound = Rng::max_normal_magnitude();
  // Analytic cap: sqrt(-2 ln 2^-53) ~ 8.5716.
  EXPECT_GT(bound, 8.57);
  EXPECT_LT(bound, 8.58);
  Rng rng(12345);
  for (int i = 0; i < 2'000'000; ++i)
    ASSERT_LE(std::abs(rng.normal()), bound);
}

TEST(RetentionVminTableTest, MatchesDirectPerCellDraw) {
  const reliability::NoiseMarginModel retention =
      reliability::cell_based_40nm_retention();
  constexpr std::size_t kCells = 4096;
  constexpr std::uint64_t kSeed = 99;

  // The eager per-cell draw the table replaces.
  std::vector<double> direct(kCells);
  Rng sigma_rng(kSeed);
  for (auto& v : direct) {
    const double sigma = static_cast<float>(sigma_rng.normal());
    v = retention.cell_retention_vmin(sigma).value;
  }

  const auto table =
      reliability::make_retention_vmin_table(retention, kSeed, kCells);
  ASSERT_EQ(table->vmin_desc.size(), kCells);
  ASSERT_EQ(table->cell_desc.size(), kCells);
  EXPECT_TRUE(std::is_sorted(table->vmin_desc.begin(), table->vmin_desc.end(),
                             std::greater<double>()));
  EXPECT_EQ(table->max_vmin, table->vmin_desc.front());

  // cell_desc is a permutation carrying the same values.
  std::vector<bool> seen(kCells, false);
  for (std::size_t i = 0; i < kCells; ++i) {
    const std::uint32_t cell = table->cell_desc[i];
    ASSERT_LT(cell, kCells);
    EXPECT_FALSE(seen[cell]);
    seen[cell] = true;
    EXPECT_EQ(table->vmin_desc[i], direct[cell]);
  }

  // failing_count agrees with the unsorted strict-> scan at supplies
  // spanning none to all failing.
  for (double vdd : {0.05, 0.2, 0.25, 0.3, 0.32, 0.36, 0.45, 1.0}) {
    const auto expected = static_cast<std::size_t>(std::count_if(
        direct.begin(), direct.end(),
        [vdd](double vmin) { return vmin > vdd; }));
    EXPECT_EQ(table->failing_count(Volt{vdd}), expected) << "vdd " << vdd;
  }
  // Exact boundary: a supply equal to a cell's vmin retains that cell
  // (the scan used strict >, the binary search must too).
  const double boundary = table->vmin_desc[kCells / 2];
  const auto at = table->failing_count(Volt{boundary});
  EXPECT_LE(at, kCells / 2);
  if (at > 0) EXPECT_GT(table->vmin_desc[at - 1], boundary);
}

TEST(ModelTableCacheTest, SharesTablesPerKeyAndMemoisesAccessCurve) {
  reliability::ModelTableCache cache;
  const reliability::NoiseMarginModel retention =
      reliability::cell_based_40nm_retention();
  const auto a = cache.retention_vmin(retention, 7, 1024);
  const auto b = cache.retention_vmin(retention, 7, 1024);
  EXPECT_EQ(a.get(), b.get());  // same key -> same shared table
  const auto c = cache.retention_vmin(retention, 8, 1024);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.vmin_tables(), 2u);

  const reliability::AccessErrorModel access =
      reliability::cell_based_40nm_access();
  const double p = cache.p_access(access, Volt{0.4});
  EXPECT_EQ(p, access.p_bit_err(Volt{0.4}));
  cache.p_access(access, Volt{0.4});
  cache.p_access(access, Volt{0.45});
  EXPECT_EQ(cache.access_points(), 2u);
}

sim::SramModule make_module(std::uint64_t seed, Volt vdd,
                            std::shared_ptr<reliability::ModelTableCache> tables) {
  return sim::SramModule(
      "t", 256, 39, reliability::cell_based_40nm_access(),
      reliability::cell_based_40nm_retention(), vdd, Rng(seed),
      /*inject_faults=*/true, std::move(tables));
}

TEST(SharedTablesTest, CachedAndPrivatePathsAreBitIdentical) {
  // Deep supply: stuck cells present and access flips active, so both
  // the fingerprint and the flip stream are exercised.
  auto tables = std::make_shared<reliability::ModelTableCache>();
  for (double vdd : {0.26, 0.32, 0.5}) {
    sim::SramModule with_cache = make_module(42, Volt{vdd}, tables);
    sim::SramModule without = make_module(42, Volt{vdd}, nullptr);
    EXPECT_EQ(with_cache.stats().stuck_bits, without.stats().stuck_bits);
    for (std::uint32_t w = 0; w < 256; ++w)
      ASSERT_EQ(with_cache.read_raw(w), without.read_raw(w)) << w;
  }
}

TEST(SharedTablesTest, VoltageSweepHealsIdentically) {
  auto tables = std::make_shared<reliability::ModelTableCache>();
  sim::SramModule with_cache = make_module(7, Volt{0.26}, tables);
  sim::SramModule without = make_module(7, Volt{0.26}, nullptr);
  for (double vdd : {0.24, 0.3, 0.45, 0.7, 0.26}) {
    with_cache.set_vdd(Volt{vdd});
    without.set_vdd(Volt{vdd});
    EXPECT_EQ(with_cache.stats().stuck_bits, without.stats().stuck_bits);
    for (std::uint32_t w = 0; w < 256; ++w)
      ASSERT_EQ(with_cache.read_raw(w), without.read_raw(w))
          << "vdd " << vdd << " word " << w;
  }
}

TEST(SramResetTest, ResetMatchesFreshConstruction) {
  auto tables = std::make_shared<reliability::ModelTableCache>();
  // Run a pooled module through a different seed's history first.
  sim::SramModule pooled = make_module(1, Volt{0.26}, tables);
  for (std::uint32_t w = 0; w < 256; ++w)
    pooled.write_raw(w, (w * 2654435761ull) & ((1ull << 39) - 1));
  pooled.set_vdd(Volt{0.5});
  pooled.reset(Volt{0.26}, Rng(2));

  sim::SramModule fresh = make_module(2, Volt{0.26}, nullptr);
  EXPECT_EQ(pooled.stats().stuck_bits, fresh.stats().stuck_bits);
  for (std::uint32_t w = 0; w < 256; ++w)
    ASSERT_EQ(pooled.read_raw(w), fresh.read_raw(w)) << w;
  // Interleave writes after reset too: the flip streams must stay in
  // lock-step.
  for (std::uint32_t w = 0; w < 256; ++w) {
    const std::uint64_t v = (w * 0x9e3779b9ull) & ((1ull << 39) - 1);
    pooled.write_raw(w, v);
    fresh.write_raw(w, v);
    ASSERT_EQ(pooled.read_raw(w), fresh.read_raw(w)) << w;
  }
}

}  // namespace
}  // namespace ntc
