// Property suite for the memory calculator and CACTI-lite, swept over
// every implementation style.
#include <gtest/gtest.h>

#include "energy/cacti_lite.hpp"
#include "energy/memory_calculator.hpp"
#include "energy/platform_power.hpp"

namespace ntc::energy {
namespace {

class CalculatorPerStyle : public ::testing::TestWithParam<MemoryStyle> {
 protected:
  MemoryStyle style() const { return GetParam(); }
  double anchor_v() const {
    return style() == MemoryStyle::CellBased65 ? 0.65 : 1.1;
  }
};

TEST_P(CalculatorPerStyle, DynamicEnergyIsQuadraticInVoltage) {
  MemoryCalculator calc(style(), reference_1k_x_32());
  const double e1 = calc.at(Volt{0.4}).read_energy.value;
  const double e2 = calc.at(Volt{0.8}).read_energy.value;
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST_P(CalculatorPerStyle, LeakageAndSpeedMonotonicInVoltage) {
  MemoryCalculator calc(style(), reference_1k_x_32());
  double prev_leak = 0.0, prev_fmax = 0.0;
  for (double v = 0.3; v <= 1.1; v += 0.1) {
    const MemoryFigures fig = calc.at(Volt{v});
    EXPECT_GT(fig.leakage.value, prev_leak) << "v=" << v;
    EXPECT_GT(fig.fmax.value, prev_fmax) << "v=" << v;
    prev_leak = fig.leakage.value;
    prev_fmax = fig.fmax.value;
  }
}

TEST_P(CalculatorPerStyle, LeakageAndAreaScaleWithBits) {
  MemoryCalculator small(style(), MemoryGeometry{1024, 32});
  MemoryCalculator big(style(), MemoryGeometry{4096, 32});
  const Volt v{anchor_v()};
  EXPECT_NEAR(big.at(v).leakage.value / small.at(v).leakage.value, 4.0, 1e-9);
  EXPECT_NEAR(big.at(v).area.value / small.at(v).area.value, 4.0, 1e-9);
}

TEST_P(CalculatorPerStyle, WiderWordsCostProportionalEnergy) {
  MemoryCalculator narrow(style(), MemoryGeometry{1024, 32});
  MemoryCalculator wide(style(), MemoryGeometry{1024, 64});
  const Volt v{anchor_v()};
  EXPECT_NEAR(wide.at(v).read_energy.value / narrow.at(v).read_energy.value,
              2.0, 1e-9);
}

TEST_P(CalculatorPerStyle, DeeperArraysAreSlower) {
  MemoryCalculator shallow(style(), MemoryGeometry{1024, 32});
  MemoryCalculator deep(style(), MemoryGeometry{16384, 32});
  const Volt v{anchor_v()};
  EXPECT_LT(deep.at(v).fmax.value, shallow.at(v).fmax.value);
}

TEST_P(CalculatorPerStyle, WritesCostMoreThanReads) {
  MemoryCalculator calc(style(), reference_1k_x_32());
  const MemoryFigures fig = calc.at(Volt{anchor_v()});
  EXPECT_GT(fig.write_energy.value, fig.read_energy.value);
}

TEST_P(CalculatorPerStyle, TemperatureRaisesLeakage) {
  MemoryCalculator calc(style(), reference_1k_x_32());
  const Volt v{anchor_v()};
  EXPECT_GT(calc.at(v, Celsius{85.0}).leakage.value,
            calc.at(v, Celsius{25.0}).leakage.value * 3.0);
}

TEST_P(CalculatorPerStyle, ReliabilityModelsAreSelfConsistent) {
  MemoryCalculator calc(style(), reference_1k_x_32());
  // Access V0 must sit above the retention limit (the paper: access
  // fails "a few 10mV above the retention voltage" or higher).
  EXPECT_GT(calc.access_model().v0().value,
            calc.retention_vmin(1e-6).value);
}

INSTANTIATE_TEST_SUITE_P(
    Styles, CalculatorPerStyle,
    ::testing::Values(MemoryStyle::CommercialMacro40, MemoryStyle::CustomSram40,
                      MemoryStyle::CellBased65, MemoryStyle::CellBasedImec40),
    [](const auto& info) {
      switch (info.param) {
        case MemoryStyle::CommercialMacro40: return "Cots40";
        case MemoryStyle::CustomSram40: return "Custom40";
        case MemoryStyle::CellBased65: return "Cell65";
        case MemoryStyle::CellBasedImec40: return "CellImec40";
      }
      return "Unknown";
    });

TEST(CactiLite, BankingReducesReadEnergyForDeepArrays) {
  const MemoryGeometry deep{16384, 32};
  auto node = tech::node_40nm_lp();
  auto cell = cell_parameters(MemoryStyle::CommercialMacro40);
  CactiLite optimized(deep, node, cell);
  EXPECT_GT(optimized.organization().banks, 1u);
}

TEST(CactiLite, BreakdownComponentsArePositive) {
  CactiLite model(reference_1k_x_32(), tech::node_40nm_lp(),
                  cell_parameters(MemoryStyle::CommercialMacro40));
  const auto breakdown = model.read_energy(Volt{1.1});
  EXPECT_GT(breakdown.decoder.value, 0.0);
  EXPECT_GT(breakdown.wordline.value, 0.0);
  EXPECT_GT(breakdown.bitline.value, 0.0);
  EXPECT_GT(breakdown.senseamp.value, 0.0);
  EXPECT_GT(breakdown.global_io.value, 0.0);
  EXPECT_NEAR(breakdown.total().value,
              breakdown.decoder.value + breakdown.wordline.value +
                  breakdown.bitline.value + breakdown.senseamp.value +
                  breakdown.global_io.value,
              1e-18);
}

TEST(CactiLite, FullSwingBitlinesDominateCellBasedReads) {
  CactiLite model(reference_1k_x_32(), tech::node_40nm_lp(),
                  cell_parameters(MemoryStyle::CellBasedImec40));
  const auto breakdown = model.read_energy(Volt{1.1});
  EXPECT_GT(breakdown.bitline.value, breakdown.decoder.value);
  EXPECT_GT(breakdown.bitline.value, breakdown.wordline.value);
}

TEST(CactiLite, WriteAtLeastAsExpensiveAsSensedRead) {
  CactiLite model(reference_1k_x_32(), tech::node_40nm_lp(),
                  cell_parameters(MemoryStyle::CommercialMacro40));
  EXPECT_GE(model.write_energy(Volt{1.1}).value,
            model.read_energy(Volt{1.1}).bitline.value);
}

TEST(CactiLite, LeakageProportionalToBits) {
  auto node = tech::node_40nm_lp();
  auto cell = cell_parameters(MemoryStyle::CommercialMacro40);
  CactiLite small(MemoryGeometry{1024, 32}, node, cell);
  CactiLite big(MemoryGeometry{2048, 32}, node, cell);
  EXPECT_NEAR(big.leakage(Volt{1.1}).value / small.leakage(Volt{1.1}).value,
              2.0, 1e-9);
}

TEST(SignalProcessorPlatform, MemoryVoltageClampsAtFloor) {
  SignalProcessorPlatform platform;
  EXPECT_DOUBLE_EQ(platform.memory_voltage(Volt{0.4}).value, 0.7);
  EXPECT_DOUBLE_EQ(platform.memory_voltage(Volt{0.9}).value, 0.9);
}

TEST(SignalProcessorPlatform, MemoryDynamicEnergyFlatBelowFloor) {
  SignalProcessorPlatform platform;
  const double e1 = platform.energy_per_cycle(Volt{0.4}).memory_dynamic.value;
  const double e2 = platform.energy_per_cycle(Volt{0.6}).memory_dynamic.value;
  EXPECT_NEAR(e1, e2, e1 * 1e-9);  // clamped: no scaling below 0.7 V
}

TEST(SignalProcessorPlatform, NtcMemoriesKeepScaling) {
  SignalProcessorPlatform::Config config;
  config.memory_style = MemoryStyle::CellBasedImec40;
  config.memory_voltage_floor = Volt{0.0};
  SignalProcessorPlatform platform(config);
  const double e1 = platform.energy_per_cycle(Volt{0.4}).memory_dynamic.value;
  const double e2 = platform.energy_per_cycle(Volt{0.6}).memory_dynamic.value;
  EXPECT_LT(e1, e2 * 0.6);  // quadratic scaling persists
}

TEST(SignalProcessorPlatform, EnergyMinimumSitsInNtvRegion) {
  SignalProcessorPlatform platform;
  double best_v = 0.0, best_e = 1e300;
  for (double v = 0.35; v <= 1.1; v += 0.01) {
    const double e = platform.energy_per_cycle(Volt{v}).total().value;
    if (e < best_e) {
      best_e = e;
      best_v = v;
    }
  }
  EXPECT_GT(best_v, 0.38);
  EXPECT_LT(best_v, 0.65);
}

TEST(LogicModel, PowerCombinesDynamicAndLeakage) {
  LogicModel core = arm9_class_core_40nm();
  const Volt v{0.55};
  const Hertz f = kilohertz(290.0);
  const double expected = core.dynamic_energy_per_cycle(v).value * f.value +
                          core.leakage(v).value;
  EXPECT_NEAR(core.power(v, f).value, expected, expected * 1e-12);
  // Activity derates only the dynamic part.
  EXPECT_LT(core.power(v, f, 0.5).value, core.power(v, f, 1.0).value);
}

TEST(LogicModel, LeakageAnchorsReproduce) {
  LogicModel core = arm9_class_core_40nm();
  EXPECT_NEAR(core.leakage(Volt{0.88}).value, 56.5e-3, 1e-6);
}

}  // namespace
}  // namespace ntc::energy
