#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tech/aging.hpp"
#include "tech/inverter.hpp"
#include "tech/logic_timing.hpp"

namespace ntc::tech {
namespace {

TEST(InverterModel, DelayDecreasesWithVoltage) {
  InverterModel inv(node_40nm_lp());
  double prev = 1e9;
  for (double v = 0.3; v <= 1.1; v += 0.1) {
    double d = inv.delay(Volt{v}).value;
    EXPECT_LT(d, prev) << "v=" << v;
    prev = d;
  }
}

TEST(InverterModel, NearThresholdDelayExplodes) {
  InverterModel inv(node_40nm_lp());
  double d_nom = inv.delay(Volt{1.1}).value;
  double d_ntv = inv.delay(Volt{0.35}).value;
  EXPECT_GT(d_ntv / d_nom, 50.0);  // orders of magnitude slower near Vt
}

TEST(InverterModel, MonteCarloSigmaGrowsTowardThreshold) {
  InverterModel inv(node_40nm_lp());
  Rng rng(1);
  auto low = inv.characterize(Volt{0.35}, 2000, rng);
  auto high = inv.characterize(Volt{1.0}, 2000, rng);
  EXPECT_GT(low.sigma_over_mean, high.sigma_over_mean * 3.0);
}

TEST(InverterModel, TenNmIsAboutTwiceAsFastAsFourteen) {
  // The paper: "Going from 14nm to 10nm results in a 2x speed-up".
  InverterModel inv14(node_14nm_finfet());
  InverterModel inv10(node_10nm_multigate());
  for (double v : {0.4, 0.5, 0.6, 0.7}) {
    double ratio = inv14.delay(Volt{v}).value / inv10.delay(Volt{v}).value;
    EXPECT_GT(ratio, 1.5) << "v=" << v;
    EXPECT_LT(ratio, 3.5) << "v=" << v;
  }
}

TEST(InverterModel, FinFetSigmaTighterThanPlanar) {
  InverterModel planar(node_40nm_lp());
  InverterModel finfet(node_14nm_finfet());
  Rng rng(2);
  auto p = planar.characterize(Volt{0.4}, 3000, rng);
  auto f = finfet.characterize(Volt{0.4}, 3000, rng);
  EXPECT_LT(f.sigma_over_mean, p.sigma_over_mean);
}

TEST(LogicTiming, FmaxMonotonicInVoltage) {
  auto timing = platform_logic_timing_40nm();
  EXPECT_LT(timing.fmax(Volt{0.4}).value, timing.fmax(Volt{0.6}).value);
  EXPECT_LT(timing.fmax(Volt{0.6}).value, timing.fmax(Volt{1.1}).value);
}

TEST(LogicTiming, CalibrationAnchors) {
  // Anchors from the paper's evaluation: 290 kHz at 0.33 V (exact by
  // construction), ~2 MHz at 0.44 V, >= 11 MHz at 0.66 V.
  auto timing = platform_logic_timing_40nm();
  EXPECT_NEAR(in_megahertz(timing.fmax(Volt{0.33})), 0.29, 0.01);
  EXPECT_GT(in_megahertz(timing.fmax(Volt{0.44})), 1.96);
  EXPECT_LT(in_megahertz(timing.fmax(Volt{0.33})), 1.96);
  EXPECT_GT(in_megahertz(timing.fmax(Volt{0.66})), 11.0);
}

TEST(LogicTiming, MinVoltageForInvertsFmax) {
  auto timing = platform_logic_timing_40nm();
  Volt v = timing.min_voltage_for(megahertz(1.96));
  EXPECT_NEAR(in_megahertz(timing.fmax(v)), 1.96, 0.01);
  // Below-floor requests return the floor.
  EXPECT_DOUBLE_EQ(timing.min_voltage_for(Hertz{1.0}, Volt{0.25}).value, 0.25);
}

TEST(AgingModel, PowerLawDrift) {
  AgingModel aging(Volt{0.040}, 0.20);
  EXPECT_DOUBLE_EQ(aging.drift(Second{0.0}).value, 0.0);
  EXPECT_NEAR(aging.drift(years(10.0)).value, 0.040, 1e-9);
  // One year: (0.1)^0.2 = 0.631 of the 10-year drift.
  EXPECT_NEAR(aging.drift(years(1.0)).value, 0.040 * 0.631, 1e-3);
}

TEST(AgingModel, TimeToDriftInvertsDrift) {
  AgingModel aging(Volt{0.040}, 0.20);
  Second t = aging.time_to_drift(Volt{0.020});
  EXPECT_NEAR(aging.drift(t).value, 0.020, 1e-9);
}

TEST(AgingModel, MonotonicInTime) {
  AgingModel aging;
  double prev = -1.0;
  for (double y : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    double d = aging.drift(years(y)).value;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace ntc::tech
