#include <gtest/gtest.h>

#include <cmath>

#include "sim/platform.hpp"
#include "workloads/fft.hpp"
#include "workloads/fir.hpp"
#include "workloads/golden.hpp"
#include "workloads/matmul.hpp"

namespace ntc::workloads {
namespace {

sim::Platform clean_platform() {
  sim::PlatformConfig config;
  config.inject_faults = false;
  config.spm_bytes = 16 * 1024;  // room for the larger test layouts
  return sim::Platform(config);
}

std::vector<std::complex<double>> two_tone(std::size_t n) {
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = 0.30 * std::sin(2.0 * M_PI * 17.0 * t / static_cast<double>(n)) +
           0.20 * std::cos(2.0 * M_PI * 83.0 * t / static_cast<double>(n));
  }
  return x;
}

TEST(GoldenFft, MatchesDirectDftOnImpulse) {
  // FFT of a unit impulse is all ones.
  std::vector<std::complex<double>> x(64, 0.0);
  x[0] = 1.0;
  auto spectrum = reference_fft(x);
  for (const auto& bin : spectrum) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(GoldenFft, SingleToneLandsInOneBin) {
  const std::size_t n = 256;
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::cos(2.0 * M_PI * 5.0 * static_cast<double>(i) / n);
  auto spectrum = reference_fft(x);
  EXPECT_NEAR(std::abs(spectrum[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[n - 5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[9]), 0.0, 1e-9);
}

TEST(SnrDb, PerfectAndNoisySignals) {
  std::vector<std::complex<double>> ref{{1, 0}, {0, 1}, {-1, 0}};
  EXPECT_DOUBLE_EQ(snr_db(ref, ref), 300.0);
  auto noisy = ref;
  noisy[0] += 0.01;
  EXPECT_GT(snr_db(noisy, ref), 30.0);
  EXPECT_LT(snr_db(noisy, ref), 60.0);
}

TEST(FixedPointFft, FaultFreeMatchesReference) {
  sim::Platform platform = clean_platform();
  FixedPointFft fft(1024);
  EXPECT_EQ(fft.phase_count(), 11u);  // permutation + 10 stages
  fft.set_input(two_tone(1024));

  fft.initialize(platform.spm());
  for (std::size_t phase = 0; phase < fft.phase_count(); ++phase) {
    auto result = fft.run_phase(phase, platform.spm());
    EXPECT_FALSE(result.memory_fault);
    EXPECT_GT(result.compute_cycles, 0u);
  }
  auto measured = fft.read_output(platform.spm());
  auto reference = reference_fft(two_tone(1024));
  // Undo the fixed-point pipeline's 1/N scaling.
  for (auto& v : measured) v /= fft.output_scale();
  // Q15 with per-stage scaling: ~40+ dB for this signal level.
  EXPECT_GT(snr_db(measured, reference), 35.0);
}

TEST(FixedPointFft, AccessCountsMatchAlgorithm) {
  sim::Platform platform = clean_platform();
  FixedPointFft fft(256);
  fft.set_input(two_tone(256));
  fft.initialize(platform.spm());
  platform.spm().array().reset_stats();
  (void)fft.run_phase(1, platform.spm());  // first butterfly stage
  // 128 butterflies x (2 loads + 2 stores).
  EXPECT_EQ(platform.spm().array().stats().reads, 256u);
  EXPECT_EQ(platform.spm().array().stats().writes, 256u);
}

TEST(FixedPointFft, ChunksCoverWholeWorkingSet) {
  FixedPointFft fft(1024, 128);
  for (std::size_t p = 0; p < fft.phase_count(); ++p) {
    ChunkRef chunk = fft.input_chunk(p);
    EXPECT_EQ(chunk.word_offset, 128u);
    EXPECT_EQ(chunk.words, 1024u);
  }
}

TEST(FirFilter, FaultFreeMatchesReference) {
  sim::Platform platform = clean_platform();
  // Simple low-pass: boxcar of 8 taps.
  std::vector<double> taps(8, 0.12);
  std::vector<double> input(512);
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = 0.4 * std::sin(2.0 * M_PI * i / 64.0);
  FirFilter fir(taps, input, 64);
  EXPECT_EQ(fir.phase_count(), 8u);

  fir.initialize(platform.spm());
  for (std::size_t p = 0; p < fir.phase_count(); ++p) {
    auto result = fir.run_phase(p, platform.spm());
    EXPECT_FALSE(result.memory_fault);
  }
  EXPECT_LT(rmse(fir.read_output(platform.spm()), fir.reference_output()),
            2e-3);
}

TEST(MatMul, FaultFreeMatchesReference) {
  sim::Platform platform = clean_platform();
  const std::size_t n = 12;
  std::vector<std::int32_t> a(n * n), b(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = static_cast<std::int32_t>((i * 7) % 100) - 50;
    b[i] = static_cast<std::int32_t>((i * 13) % 90) - 45;
  }
  MatMul mm(a, b, n);
  mm.initialize(platform.spm());
  for (std::size_t p = 0; p < mm.phase_count(); ++p)
    (void)mm.run_phase(p, platform.spm());
  EXPECT_EQ(mm.read_output(platform.spm()), mm.reference_output());
}

TEST(MatMul, FaultsCorruptResultsAtLowVoltage) {
  // Property check of the whole fault chain: deep below V0 the matmul
  // result must differ from the golden one.
  sim::PlatformConfig config;
  config.vdd = Volt{0.30};
  config.spm_bytes = 16 * 1024;
  config.seed = 5;
  sim::Platform platform(config);
  const std::size_t n = 12;
  std::vector<std::int32_t> a(n * n, 3), b(n * n, 4);
  MatMul mm(a, b, n);
  mm.initialize(platform.spm());
  for (std::size_t p = 0; p < mm.phase_count(); ++p)
    (void)mm.run_phase(p, platform.spm());
  EXPECT_NE(mm.read_output(platform.spm()), mm.reference_output());
}

}  // namespace
}  // namespace ntc::workloads
