#include "faultsim/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/framing.hpp"
#include "faultsim/shard.hpp"

namespace ntc::faultsim {
namespace {

namespace fs = std::filesystem;

RunRecord sample_record(std::uint64_t seed) {
  RunRecord record;
  record.scenario = "burst \"quoted\", with comma\nand newline";
  record.scheme = "OCEAN";
  record.vdd = 0.31;
  record.seed = seed;
  record.outcome = RunOutcome::Corrected;
  record.snr_db = 42.125;
  record.corrected_words = 3;
  record.uncorrectable_words = 1;
  record.injected_flips = 7;
  record.stuck_bits = 2;
  record.scenario_events_fired = 4;
  record.ocean_restores = 1;
  record.ocean_voltage_escalations = 0;
  record.cycles = 123456789;
  record.contention_cycles = 4242;
  return record;
}

ShardPlan tiny_plan(std::uint32_t trials) {
  ShardPlan plan;
  plan.total_records = trials * 2;
  plan.seeds_per_shard = trials;
  plan.fingerprint = 0xFEEDFACECAFEF00Dull;
  Shard first;
  first.id = 0;
  first.seed_begin = 1;
  first.trial_count = trials;
  first.record_base = 0;
  Shard second = first;
  second.id = 1;
  second.voltage_index = 1;
  second.record_base = trials;
  plan.shards = {first, second};
  return plan;
}

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ntc_ledger_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string seg(std::uint64_t id) const {
    return dir_ + "/" + shard_segment_name(id);
  }
  std::string dir_;
};

TEST(RunRecordSerdeTest, RoundTripsBitExactly) {
  const RunRecord original = sample_record(99);
  ByteWriter writer;
  serialize_run_record(writer, original);
  ByteReader reader(writer.bytes());
  const RunRecord copy = deserialize_run_record(reader);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(copy.scenario, original.scenario);
  EXPECT_EQ(copy.scheme, original.scheme);
  EXPECT_DOUBLE_EQ(copy.vdd, original.vdd);
  EXPECT_EQ(copy.seed, original.seed);
  EXPECT_EQ(copy.outcome, original.outcome);
  EXPECT_DOUBLE_EQ(copy.snr_db, original.snr_db);
  EXPECT_EQ(copy.corrected_words, original.corrected_words);
  EXPECT_EQ(copy.uncorrectable_words, original.uncorrectable_words);
  EXPECT_EQ(copy.injected_flips, original.injected_flips);
  EXPECT_EQ(copy.stuck_bits, original.stuck_bits);
  EXPECT_EQ(copy.scenario_events_fired, original.scenario_events_fired);
  EXPECT_EQ(copy.ocean_restores, original.ocean_restores);
  EXPECT_EQ(copy.ocean_voltage_escalations,
            original.ocean_voltage_escalations);
  EXPECT_EQ(copy.cycles, original.cycles);
  EXPECT_EQ(copy.contention_cycles, original.contention_cycles);
}

TEST(RunRecordSerdeTest, NanSnrSurvives) {
  RunRecord original = sample_record(1);
  original.snr_db = std::nan("");
  ByteWriter writer;
  serialize_run_record(writer, original);
  ByteReader reader(writer.bytes());
  const RunRecord copy = deserialize_run_record(reader);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(std::isnan(copy.snr_db));
}

TEST_F(LedgerTest, WriteScanRoundTrip) {
  const ShardPlan plan = tiny_plan(3);
  {
    LedgerWriter writer(seg(0), plan, plan.shards[0], false);
    ASSERT_TRUE(writer.ok());
    for (std::uint32_t i = 0; i < 3; ++i)
      writer.append_trial(i, sample_record(plan.shards[0].seed_begin + i));
    writer.commit(3);
  }
  const SegmentScan scan = scan_segment(seg(0), true);
  EXPECT_TRUE(scan.exists);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_TRUE(scan.completed);
  EXPECT_EQ(scan.trials_durable, 3u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.fingerprint, plan.fingerprint);
  EXPECT_EQ(scan.shard_id, 0u);
  EXPECT_EQ(scan.record_base, 0u);
  EXPECT_EQ(scan.seed_begin, 1u);
  EXPECT_EQ(scan.trial_count, 3u);
  EXPECT_EQ(scan.total_records, plan.total_records);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[2].seed, 3u);
}

TEST_F(LedgerTest, MissingSegmentScansEmpty) {
  const SegmentScan scan = scan_segment(seg(7), true);
  EXPECT_FALSE(scan.exists);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_FALSE(scan.completed);
  EXPECT_EQ(scan.trials_durable, 0u);
}

TEST_F(LedgerTest, TornTailIsDetectedAndResumeTruncatesIt) {
  const ShardPlan plan = tiny_plan(4);
  {
    LedgerWriter writer(seg(0), plan, plan.shards[0], false);
    writer.append_trial(0, sample_record(1));
    writer.append_trial(1, sample_record(2));
    // No commit: the process "died" here.
  }
  // Simulate the torn frame a crash mid-write leaves behind: a header
  // promising more payload than follows.
  {
    std::ofstream torn(seg(0), std::ios::binary | std::ios::app);
    const char garbage[] = {64, 0, 0, 0, '\xde', '\xad', 1, 2, 3};
    torn.write(garbage, sizeof garbage);
  }
  SegmentScan scan = scan_segment(seg(0), true);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_FALSE(scan.completed);
  EXPECT_EQ(scan.trials_durable, 2u);
  EXPECT_EQ(scan.torn_bytes, 9u);
  ASSERT_EQ(scan.records.size(), 2u);

  // Resume: truncate the tail, append the missing trials, commit.
  {
    LedgerWriter writer(seg(0), scan.valid_bytes, false);
    ASSERT_TRUE(writer.ok());
    writer.append_trial(2, sample_record(3));
    writer.append_trial(3, sample_record(4));
    writer.commit(4);
  }
  scan = scan_segment(seg(0), true);
  EXPECT_TRUE(scan.completed);
  EXPECT_EQ(scan.trials_durable, 4u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(scan.records[i].seed, i + 1);
}

TEST_F(LedgerTest, CorruptHeaderIsRejected) {
  const ShardPlan plan = tiny_plan(2);
  {
    LedgerWriter writer(seg(0), plan, plan.shards[0], false);
    writer.append_trial(0, sample_record(1));
    writer.commit(1);
  }
  // Flip a byte inside the header region.
  {
    std::fstream file(seg(0),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    char byte = 0;
    file.seekg(20);
    file.get(byte);
    byte ^= 0x01;
    file.seekp(20);
    file.put(byte);
  }
  const SegmentScan scan = scan_segment(seg(0), true);
  EXPECT_TRUE(scan.exists);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_EQ(scan.trials_durable, 0u);
  EXPECT_FALSE(scan.note.empty());
}

TEST_F(LedgerTest, MergeReassemblesRecordOrderFromAnySegmentOrder) {
  const ShardPlan plan = tiny_plan(3);
  for (const Shard& shard : plan.shards) {
    LedgerWriter writer(seg(shard.id), plan, shard, false);
    for (std::uint32_t i = 0; i < shard.trial_count; ++i) {
      RunRecord record = sample_record(shard.seed_begin + i);
      record.cycles = shard.record_base + i;  // tag with global index
      writer.append_trial(i, record);
    }
    writer.commit(shard.trial_count);
  }
  // Present the segments in reverse order; the merge must not care.
  const MergedLedger merged = merge_segments({seg(1), seg(0)});
  EXPECT_TRUE(merged.complete);
  EXPECT_EQ(merged.duplicate_records, 0u);
  EXPECT_TRUE(merged.incomplete_shards.empty());
  ASSERT_EQ(merged.records.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_EQ(merged.records[i].cycles, i) << "record order must be global";
}

TEST_F(LedgerTest, MergeReportsIncompleteAndToleratesDuplicates) {
  const ShardPlan plan = tiny_plan(2);
  {
    LedgerWriter writer(seg(0), plan, plan.shards[0], false);
    writer.append_trial(0, sample_record(1));
    writer.append_trial(1, sample_record(2));
    writer.commit(2);
  }
  {
    // Shard 1: only one durable trial, no commit.
    LedgerWriter writer(seg(1), plan, plan.shards[1], false);
    writer.append_trial(0, sample_record(1));
  }
  MergedLedger merged = merge_segments({seg(0), seg(1)});
  EXPECT_FALSE(merged.complete);
  ASSERT_EQ(merged.incomplete_shards.size(), 1u);
  EXPECT_EQ(merged.incomplete_shards[0], 1u);
  EXPECT_EQ(merged.records.size(), 3u);

  // A duplicate delivery of shard 0 (same bytes under another name)
  // must be tolerated: trials are deterministic, first delivery wins.
  fs::copy_file(seg(0), dir_ + "/copy.ntcl");
  merged = merge_segments({seg(0), seg(1), dir_ + "/copy.ntcl"});
  EXPECT_EQ(merged.duplicate_records, 2u);
  EXPECT_EQ(merged.records.size(), 3u);
}

TEST_F(LedgerTest, MergeSkipsForeignSegmentsWithNote) {
  const ShardPlan plan = tiny_plan(2);
  ShardPlan foreign = plan;
  foreign.fingerprint ^= 0x1234;
  {
    LedgerWriter writer(seg(0), plan, plan.shards[0], false);
    writer.append_trial(0, sample_record(1));
    writer.append_trial(1, sample_record(2));
    writer.commit(2);
  }
  {
    LedgerWriter writer(seg(1), foreign, foreign.shards[1], false);
    writer.append_trial(0, sample_record(1));
    writer.append_trial(1, sample_record(2));
    writer.commit(2);
  }
  const MergedLedger merged = merge_segments({seg(0), seg(1)});
  EXPECT_FALSE(merged.complete);
  EXPECT_EQ(merged.records.size(), 2u);
  EXPECT_EQ(merged.fingerprint, plan.fingerprint);
  ASSERT_FALSE(merged.notes.empty());
}

}  // namespace
}  // namespace ntc::faultsim
