#include "faultsim/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntc::faultsim {
namespace {

// All campaign tests run scripted-only (stochastic_background = false):
// the fixed-point pipeline and the fault scripts are both deterministic,
// so every classification below is exact, for every seed.
constexpr std::size_t kPoints = 64;  // PM gets 2 slots of 64 words each

Scenario background() { return Scenario{"background", {}, {}, {}}; }

// A persistent triple-bit burst on SPM word 3 (codeword bits 36..38:
// syndrome 36^37^38 = 39 points past the 39-bit SECDED codeword, forcing
// detection rather than miscorrection).
Scenario spm_triple_burst() {
  Scenario s;
  s.name = "spm-triple-burst";
  s.spm_events.push_back(FaultEvent::read_burst(3, 36, 3));
  return s;
}

// The OCEAN killer: the SPM burst forces rollback-restores, and a
// quintuple-bit burst in *both* protected-buffer slots exhausts the
// BCH t=4 code whichever slot the restore reads.
Scenario pm_quintuple_burst() {
  Scenario s = spm_triple_burst();
  s.name = "pm-quintuple-burst";
  s.pm_events.push_back(FaultEvent::read_burst(3, 10, 5));
  s.pm_events.push_back(FaultEvent::read_burst(3 + kPoints, 10, 5));
  return s;
}

CampaignConfig base_config() {
  CampaignConfig config;
  config.fft_points = kPoints;
  config.seeds_per_cell = 2;
  config.stochastic_background = false;
  config.threads = 2;
  return config;
}

const RunRecord* find(const std::vector<RunRecord>& records,
                      const std::string& scenario, const std::string& scheme,
                      std::uint64_t seed) {
  for (const RunRecord& r : records)
    if (r.scenario == scenario && r.scheme == scheme && r.seed == seed)
      return &r;
  return nullptr;
}

TEST(Campaign, ClassifiesScriptedScenariosAcrossTheGrid) {
  CampaignConfig config = base_config();
  config.schemes = {mitigation::SchemeKind::Secded,
                    mitigation::SchemeKind::Ocean};
  config.scenarios = {background(), spm_triple_burst(), pm_quintuple_burst()};
  CampaignRunner runner(config);
  const auto& records = runner.run();
  ASSERT_EQ(records.size(), 3u * 2u * 2u);  // scenarios x schemes x seeds

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    // No events, no stochastic model: both schemes run clean.
    const RunRecord* r = find(records, "background", "ECC (SECDED 39,32)", seed);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->outcome, RunOutcome::Clean);
    r = find(records, "background", "OCEAN", seed);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->outcome, RunOutcome::Clean);

    // The triple burst defeats SECDED: wrong output, but flagged.
    r = find(records, "spm-triple-burst", "ECC (SECDED 39,32)", seed);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->outcome, RunOutcome::DetectedUncorrectable);
    EXPECT_GT(r->uncorrectable_words, 0u);

    // The quintuple PM burst is OCEAN's system-failure condition.
    r = find(records, "pm-quintuple-burst", "OCEAN", seed);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->outcome, RunOutcome::SystemFailure);
    EXPECT_GT(r->ocean_restores, 0u);
  }

  // The framework's reason to exist: mitigation never lies. Every wrong
  // output in this grid was detected.
  EXPECT_EQ(runner.summary().silent_data_corruption, 0u);
  EXPECT_EQ(runner.summary().runs, records.size());
}

TEST(Campaign, NoMitigationSuffersSilentDataCorruption) {
  // Control experiment for the SDC accounting itself: a burst on a bare
  // 32-bit memory corrupts the output with nothing to flag it.
  CampaignConfig config = base_config();
  config.schemes = {mitigation::SchemeKind::NoMitigation};
  Scenario s;
  s.name = "bare-burst";
  s.spm_events.push_back(FaultEvent::read_burst(3, 4, 3));
  config.scenarios = {s};
  CampaignRunner runner(config);
  runner.run();
  EXPECT_EQ(runner.summary().silent_data_corruption, runner.summary().runs);
}

TEST(Campaign, VoltageEscalationRecoversOtherwiseFatalRun) {
  // A marginal-cell fault population: a transient double flip on SPM
  // word 3 (armed after the initial checkpoint committed) forces a
  // rollback, and quintuple bursts in both PM slots defeat the restore
  // at 0.44 V — but every burst heals at/above 0.50 V.
  Scenario s;
  s.name = "healable-pm-burst";
  FaultEvent trigger = FaultEvent::transient_flip(3, 0b11, /*at_access=*/200);
  s.spm_events.push_back(trigger);
  s.pm_events.push_back(FaultEvent::read_burst(3, 10, 5, /*heal_at_v=*/0.50));
  s.pm_events.push_back(
      FaultEvent::read_burst(3 + kPoints, 10, 5, /*heal_at_v=*/0.50));

  CampaignConfig config = base_config();
  config.schemes = {mitigation::SchemeKind::Ocean};
  config.scenarios = {s};

  // Legacy fail-fast protocol: the restore meets the uncorrectable PM
  // words and the run is lost.
  CampaignConfig fail_fast = config;
  fail_fast.ocean.max_voltage_escalations = 0;
  CampaignRunner baseline(fail_fast);
  baseline.run();
  EXPECT_EQ(baseline.summary().system_failure, baseline.summary().runs);

  // Graceful degradation: bump the rail (0.44 -> 0.49 -> 0.54), scrub,
  // retry — the healed PM restores the clean checkpoint and the re-run
  // completes with an exact output.
  CampaignConfig graceful = config;
  graceful.ocean.max_voltage_escalations = 3;
  CampaignRunner recovered(graceful);
  const auto& records = recovered.run();
  EXPECT_EQ(recovered.summary().system_failure, 0u);
  for (const RunRecord& r : records) {
    EXPECT_EQ(r.outcome, RunOutcome::Corrected) << r.scenario << " seed "
                                                << r.seed;
    EXPECT_GE(r.ocean_voltage_escalations, 1u);
    EXPECT_GE(r.ocean_restores, 1u);
  }
}

TEST(Campaign, LedgerIsDeterministicAcrossThreadCounts) {
  CampaignConfig config = base_config();
  config.schemes = {mitigation::SchemeKind::Secded,
                    mitigation::SchemeKind::Ocean};
  config.scenarios = {background(), spm_triple_burst()};
  config.stochastic_background = true;  // exercise the layered model too
  config.threads = 4;
  CampaignRunner a(config);
  config.threads = 1;
  CampaignRunner b(config);
  const auto& ra = a.run();
  const auto& rb = b.run();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].scenario, rb[i].scenario);
    EXPECT_EQ(ra[i].seed, rb[i].seed);
    EXPECT_EQ(ra[i].outcome, rb[i].outcome);
    EXPECT_EQ(ra[i].snr_db, rb[i].snr_db);
    EXPECT_EQ(ra[i].corrected_words, rb[i].corrected_words);
    EXPECT_EQ(ra[i].uncorrectable_words, rb[i].uncorrectable_words);
    EXPECT_EQ(ra[i].injected_flips, rb[i].injected_flips);
    EXPECT_EQ(ra[i].cycles, rb[i].cycles);
  }
}

TEST(Campaign, ExportsMachineReadableLedgers) {
  CampaignConfig config = base_config();
  config.seeds_per_cell = 1;
  config.scenarios = {spm_triple_burst()};
  CampaignRunner runner(config);
  runner.run();

  std::ostringstream csv;
  runner.write_csv(csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("scenario,scheme,vdd,seed,outcome"),
            std::string::npos);
  EXPECT_NE(csv_text.find("spm-triple-burst"), std::string::npos);
  EXPECT_NE(csv_text.find("detected-uncorrectable"), std::string::npos);
  // The SECDED scheme name contains a comma and must be RFC 4180 quoted,
  // or every later column in the row shifts.
  EXPECT_NE(csv_text.find("\"ECC (SECDED 39,32)\""), std::string::npos);
  EXPECT_EQ(csv_text.find("32),"), std::string::npos);

  std::ostringstream json;
  runner.write_json(json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"summary\""), std::string::npos);
  EXPECT_NE(json_text.find("\"detected_uncorrectable\": 1"),
            std::string::npos);
  EXPECT_NE(json_text.find("\"outcome\": \"detected-uncorrectable\""),
            std::string::npos);
}

}  // namespace
}  // namespace ntc::faultsim
