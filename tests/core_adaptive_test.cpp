#include "core/adaptive_memory.hpp"

#include <gtest/gtest.h>

namespace ntc::core {
namespace {

AdaptiveConfig stress_config() {
  AdaptiveConfig config;
  config.memory.vdd = Volt{0.44};
  config.memory.scrub_interval_accesses = 0;  // only transition scrubs
  config.memory.seed = 21;
  config.controller.v_min = Volt{0.40};
  config.controller.v_max = Volt{0.60};
  // Canary band tuned so the 50 mV-weakened replicas regulate the rail
  // to ~40-60 mV above the true limit.
  config.controller.rate_high = 1e-4;
  config.controller.rate_low = 1e-6;
  config.aging = tech::AgingModel(Volt{0.100}, 0.20);  // aggressive aging
  return config;
}

TEST(AdaptiveNtcMemory, DataPlaneWorksThroughTheWrapper) {
  AdaptiveNtcMemory memory(stress_config());
  memory.write_word(3, 0xFEEDC0DE);
  std::uint32_t v = 0;
  EXPECT_NE(memory.read_word(3, v), sim::AccessStatus::DetectedUncorrectable);
  EXPECT_EQ(v, 0xFEEDC0DEu);
}

TEST(AdaptiveNtcMemory, RailTracksAgingUpward) {
  AdaptiveNtcMemory memory(stress_config());
  const Volt start = memory.vdd();
  // March through the lifetime; aggressive aging must force up-steps.
  for (int epoch = 0; epoch <= 200; ++epoch) {
    const double frac = epoch / 200.0;
    memory.tick(years(10.0 * frac * frac));
  }
  EXPECT_GT(memory.vdd().value, start.value);
  EXPECT_GT(memory.controller().up_steps(), 0u);
  EXPECT_EQ(memory.ticks(), 201u);
}

TEST(AdaptiveNtcMemory, FreshDeviceRelaxesTowardVmin) {
  AdaptiveConfig config = stress_config();
  config.memory.vdd = Volt{0.55};  // start with excess margin
  AdaptiveNtcMemory memory(config);
  for (int epoch = 0; epoch < 50; ++epoch) memory.tick(Second{0.0});
  // The rail relaxes until the canary rate enters the control band —
  // well below the conservative start, well above the hard floor.
  EXPECT_LT(memory.vdd().value, 0.50);
  EXPECT_GE(memory.vdd().value, 0.40);
  EXPECT_GT(memory.controller().down_steps(), 0u);
}

TEST(AdaptiveNtcMemory, TickAppliesRailToTheArray) {
  AdaptiveConfig config = stress_config();
  config.memory.vdd = Volt{0.55};
  AdaptiveNtcMemory memory(config);
  for (int epoch = 0; epoch < 20; ++epoch) memory.tick(Second{0.0});
  EXPECT_LT(memory.memory().vdd().value, 0.55);
  // Data survives the rail transitions (scrub-on-transition).
  memory.write_word(0, 123456u);
  std::uint32_t v = 0;
  memory.read_word(0, v);
  EXPECT_EQ(v, 123456u);
}

TEST(AdaptiveNtcMemory, CanaryRateIsObservable) {
  AdaptiveConfig config = stress_config();
  config.memory.vdd = Volt{0.40};  // canaries see 0.35 V: measurable rate
  config.canary_trials_per_tick = 2048;
  AdaptiveNtcMemory memory(config);
  memory.tick(Second{0.0});
  EXPECT_GT(memory.last_canary_rate(), 0.0);
}

}  // namespace
}  // namespace ntc::core
