#include "reliability/test_chip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/fault_map.hpp"

namespace ntc::reliability {
namespace {

TestChipConfig small_config() {
  TestChipConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.dies = 4;
  cfg.seed = 77;
  return cfg;
}

TEST(FaultMap, SetGetAndFailureCount) {
  FaultMap map(4, 2);
  map.set_vmin(0, 0, Volt{0.3});
  map.set_vmin(3, 1, Volt{0.5});
  EXPECT_DOUBLE_EQ(map.vmin(0, 0).value, 0.3);
  EXPECT_EQ(map.failing_cells_at(Volt{0.4}), 1u);   // only the 0.5 cell
  EXPECT_EQ(map.failing_cells_at(Volt{0.25}), 2u);
  EXPECT_EQ(map.failing_cells_at(Volt{0.6}), 0u);
  EXPECT_DOUBLE_EQ(map.instance_vmin().value, 0.5);
}

TEST(FaultMap, QuantileOrdering) {
  FaultMap map(10, 10);
  for (std::size_t y = 0; y < 10; ++y)
    for (std::size_t x = 0; x < 10; ++x)
      map.set_vmin(x, y, Volt{0.01 * static_cast<double>(y * 10 + x)});
  EXPECT_NEAR(map.vmin_quantile(0.5).value, 0.50, 0.011);
  EXPECT_LE(map.vmin_quantile(0.1).value, map.vmin_quantile(0.9).value);
}

TEST(FaultMap, AsciiRenderShowsWeakCells) {
  FaultMap map(32, 32);
  for (std::size_t y = 0; y < 32; ++y)
    for (std::size_t x = 0; x < 32; ++x) map.set_vmin(x, y, Volt{0.2});
  map.set_vmin(16, 16, Volt{0.59});
  std::string art = map.render_ascii(Volt{0.2}, Volt{0.6}, 32);
  EXPECT_NE(art.find('#'), std::string::npos);  // the weak cell shows
  EXPECT_NE(art.find(' '), std::string::npos);  // background is robust
}

TEST(VirtualTestChip, Deterministic) {
  VirtualTestChip a(small_config()), b(small_config());
  for (std::size_t d = 0; d < a.die_count(); ++d) {
    EXPECT_DOUBLE_EQ(a.die(d).retention_vmin.instance_vmin().value,
                     b.die(d).retention_vmin.instance_vmin().value);
  }
}

TEST(VirtualTestChip, DiesDiffer) {
  VirtualTestChip chip(small_config());
  EXPECT_NE(chip.die(0).retention_vmin.instance_vmin().value,
            chip.die(1).retention_vmin.instance_vmin().value);
}

TEST(VirtualTestChip, RetentionFailuresMonotonicInVoltage) {
  VirtualTestChip chip(small_config());
  std::uint64_t prev = chip.bits_per_die();
  for (double v = 0.15; v <= 0.5; v += 0.05) {
    auto fails = chip.measure_retention_failures(0, Volt{v});
    EXPECT_LE(fails, prev);
    prev = fails;
  }
  EXPECT_EQ(chip.measure_retention_failures(0, Volt{1.0}), 0u);
}

TEST(VirtualTestChip, RetentionPopulationTracksModel) {
  TestChipConfig cfg = small_config();
  cfg.rows = 128;
  cfg.cols = 256;
  cfg.dies = 9;
  cfg.die_sigma_v = 0.0;  // isolate the cell-level population
  cfg.spatial_bow_v = 0.0;
  VirtualTestChip chip(cfg);
  auto sweep = chip.retention_sweep({0.24, 0.28, 0.32});
  for (const auto& pt : sweep) {
    double expect = cfg.retention.p_bit_fail(pt.vdd);
    double tolerance = 4.0 * std::sqrt(expect * (1 - expect) /
                                       static_cast<double>(pt.total)) + 1e-4;
    EXPECT_NEAR(pt.p_hat(), expect, tolerance) << "V=" << pt.vdd.value;
  }
}

TEST(VirtualTestChip, AccessPopulationTracksEq5) {
  TestChipConfig cfg = small_config();
  cfg.rows = 128;
  cfg.cols = 256;
  cfg.dies = 9;
  cfg.die_sigma_v = 0.0;
  cfg.spatial_bow_v = 0.0;
  VirtualTestChip chip(cfg);
  for (double v : {0.70, 0.75, 0.80}) {
    auto sweep = chip.access_sweep({v});
    double expect = cfg.access.p_bit_err(Volt{v});
    double tol = 4.0 * std::sqrt(expect / static_cast<double>(sweep[0].total)) +
                 2e-5;
    EXPECT_NEAR(sweep[0].p_hat(), expect, tol) << "V=" << v;
  }
}

TEST(VirtualTestChip, SpatialBowMakesCornersWeaker) {
  TestChipConfig cfg = small_config();
  cfg.die_sigma_v = 0.0;
  cfg.spatial_bow_v = 0.10;  // exaggerate for the test
  VirtualTestChip chip(cfg);
  const auto& map = chip.die(0).retention_vmin;
  // Average corner block vs center block V_min.
  double corner = 0.0, center = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      corner += map.vmin(i, j).value;
      center += map.vmin(28 + i, 28 + j).value;
      ++n;
    }
  EXPECT_GT(corner / n, center / n + 0.02);
}

TEST(Characterization, RecoversRetentionConstants) {
  TestChipConfig cfg;
  cfg.rows = 128;
  cfg.cols = 256;
  cfg.dies = 9;
  cfg.seed = 3;
  VirtualTestChip chip(cfg);
  auto result = characterize(chip);
  // The fitted Eq. (4) must reproduce the generating Gaussian within the
  // die-to-die/systematic noise floor (compare knee voltages).
  Volt fit_v = result.retention.vdd_for_p(1e-4);
  Volt gen_v = cfg.retention.vdd_for_p_fail(1e-4);
  EXPECT_NEAR(fit_v.value, gen_v.value, 0.02);
}

TEST(Characterization, RecoversAccessConstantsNearPublished) {
  TestChipConfig cfg;
  cfg.rows = 128;
  cfg.cols = 256;
  cfg.dies = 9;
  cfg.seed = 3;
  VirtualTestChip chip(cfg);
  auto result = characterize(chip);
  // Paper publishes A=6, k=6.14, V0=0.85 for the commercial macro; the
  // virtual flow must land in that neighbourhood.
  EXPECT_NEAR(result.access.v0().value, 0.85, 0.03);
  EXPECT_NEAR(result.access.k(), 6.14, 1.2);
  // Functional agreement at the voltages that matter for Table 2.
  for (double v : {0.70, 0.75, 0.80}) {
    double fit_p = result.access.p_bit_err(Volt{v});
    double gen_p = cfg.access.p_bit_err(Volt{v});
    EXPECT_LT(std::abs(std::log10(fit_p / gen_p)), 0.5) << "V=" << v;
  }
}

}  // namespace
}  // namespace ntc::reliability
