#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/bch.hpp"
#include "ecc/codec_overhead.hpp"
#include "ecc/crc.hpp"
#include "ecc/hamming.hpp"
#include "ecc/hsiao.hpp"
#include "ecc/interleave.hpp"
#include "tech/node.hpp"

namespace ntc::ecc {
namespace {

TEST(Crc32, KnownVector) {
  Crc32 crc;
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc.compute(check), 0xCBF43926u);  // the canonical check value
}

TEST(Crc32, EmptyInput) {
  Crc32 crc;
  EXPECT_EQ(crc.compute({}), 0x00000000u);
}

TEST(Crc32, DetectsSingleBitFlipsInWords) {
  Crc32 crc;
  Rng rng(1);
  std::vector<std::uint32_t> words(64);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
  const std::uint32_t reference = crc.compute_words(words);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = words;
    corrupted[rng.uniform_u64(64)] ^= 1u << rng.uniform_u64(32);
    EXPECT_NE(crc.compute_words(corrupted), reference);
  }
}

TEST(Crc32, WordAndByteInterfacesAgree) {
  Crc32 crc;
  std::vector<std::uint32_t> words{0x04030201u, 0x08070605u};
  std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(crc.compute_words(words), crc.compute(bytes));
}

TEST(Interleave, ParametersOf4x16) {
  InterleavedCode code = interleaved_secded_4x16();
  EXPECT_EQ(code.data_bits(), 64u);
  EXPECT_EQ(code.code_bits(), 88u);
  EXPECT_EQ(code.correct_capability(), 1u);       // adversarial same-lane
  EXPECT_EQ(code.burst_correct_capability(), 4u); // spread errors
}

TEST(Interleave, CorrectsFourAdjacentErrors) {
  InterleavedCode code = interleaved_secded_4x16();
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t data = rng.next_u64();
    Bits word = code.encode(data);
    std::size_t start = rng.uniform_u64(code.code_bits() - 3);
    for (std::size_t i = 0; i < 4; ++i) word.flip(start + i);
    auto result = code.decode(word);
    EXPECT_EQ(result.data, data);
    EXPECT_EQ(result.status, DecodeStatus::Corrected);
    EXPECT_EQ(result.corrected_bits, 4);
  }
}

TEST(Interleave, DetectsTwoErrorsInOneLane) {
  InterleavedCode code = interleaved_secded_4x16();
  Rng rng(3);
  std::uint64_t data = rng.next_u64();
  Bits word = code.encode(data);
  // Positions p and p+4*k land in the same lane.
  word.flip(1);
  word.flip(1 + 4 * 7);
  EXPECT_EQ(code.decode(word).status, DecodeStatus::DetectedUncorrectable);
}

TEST(CodecOverhead, StorageOverheadMatchesCode) {
  auto node = tech::node_40nm_lp();
  HammingSecded secded(32);
  auto overhead = estimate_codec_overhead(secded, node);
  EXPECT_NEAR(overhead.storage_overhead, 39.0 / 32.0, 1e-12);
}

TEST(CodecOverhead, BchDecoderCostsMoreThanSecded) {
  auto node = tech::node_40nm_lp();
  HammingSecded secded(32);
  BchCode bch = ocean_buffer_code();
  auto so = estimate_codec_overhead(secded, node);
  auto bo = estimate_codec_overhead(bch, node);
  EXPECT_GT(bo.decode_gate_equiv, so.decode_gate_equiv);
  EXPECT_GT(bo.decode_energy(Volt{0.5}).value,
            so.decode_energy(Volt{0.5}).value);
}

TEST(CodecOverhead, EnergyScalesQuadraticallyWithVoltage) {
  auto node = tech::node_40nm_lp();
  HammingSecded secded(32);
  auto overhead = estimate_codec_overhead(secded, node);
  double e_low = overhead.encode_energy(Volt{0.4}).value;
  double e_high = overhead.encode_energy(Volt{0.8}).value;
  EXPECT_NEAR(e_high / e_low, 4.0, 1e-9);
}

TEST(CodecOverhead, SecdedCodecEnergyIsSmallVsMemoryAccess) {
  // "Low overhead" claim: the (39,32) codec at 0.44 V must cost well
  // under a pJ — small against the ~0.2-2 pJ memory access it guards.
  auto node = tech::node_40nm_lp();
  HammingSecded secded(32);
  auto overhead = estimate_codec_overhead(secded, node);
  EXPECT_LT(overhead.decode_energy(Volt{0.44}).value, 0.5e-12);
}

}  // namespace
}  // namespace ntc::ecc
